// TelemetryHub contracts at the unit level: one record per estimation
// interval with per-app/per-tap shape, cumulative (resume-safe) DRAM
// columns, an exact TELE save/load round-trip, batch path resolution, and
// the flush writers producing the documented file shapes.  The end-to-end
// halves of these contracts (kill+resume byte-identity, on/off stdout
// identity, Perfetto loadability) live in tools/check_telemetry.sh and
// tools/check_determinism.sh.
#include "telemetry/hub.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/simstate.hpp"
#include "dase/dase_model.hpp"
#include "gpu/gpu.hpp"
#include "gpu/simulator.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "kernels/app_registry.hpp"
#include "telemetry/registry.hpp"

namespace gpusim {
namespace {

namespace fs = std::filesystem;

constexpr Cycle kInterval = 5'000;  // short epochs keep the test fast

struct HubRig {
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<DaseModel> dase;
  std::unique_ptr<TelemetryHub> hub;
};

HubRig make_rig() {
  GpuConfig cfg;
  cfg.estimation_interval = kInterval;
  HubRig rig;
  rig.sim = std::make_unique<Simulation>(
      cfg, std::vector<AppLaunch>{AppLaunch{*find_app("SD"), 11},
                                  AppLaunch{*find_app("SA"), 12}});
  rig.sim->gpu().set_partition(even_partition(rig.sim->gpu().num_sms(), 2));
  rig.dase = std::make_unique<DaseModel>();
  rig.sim->add_observer(rig.dase.get());
  rig.hub = std::make_unique<TelemetryHub>(
      std::vector<TelemetryEstimatorTap>{{"DASE", rig.dase.get()}},
      [] { return u64{0}; });
  rig.sim->add_observer(rig.hub.get());
  return rig;
}

TEST(TelemetryHubTest, OneRecordPerIntervalWithFullShape) {
  HubRig rig = make_rig();
  rig.sim->run(5 * kInterval);

  const TelemetryHub& hub = *rig.hub;
  EXPECT_EQ(hub.epochs_seen(), 5u);
  ASSERT_EQ(hub.records().size(), 5u);
  EXPECT_EQ(hub.records_dropped(), 0u);
  const int num_sms = rig.sim->gpu().num_sms();
  for (std::size_t i = 0; i < hub.records().size(); ++i) {
    const TelemetryRecord& r = hub.records()[i];
    EXPECT_EQ(r.epoch, i);
    EXPECT_EQ(r.start, i * kInterval);
    EXPECT_EQ(r.length, kInterval);
    ASSERT_EQ(r.apps.size(), 2u);
    int sms = 0;
    for (const TelemetryAppSample& a : r.apps) {
      EXPECT_GE(a.num_sms, 1);
      sms += a.num_sms;
      ASSERT_EQ(a.estimates.size(), 1u) << "one sample per tap";
    }
    EXPECT_EQ(sms, num_sms);
    if (i > 0) {
      // DRAM columns are cumulative grand totals so a resumed run replays
      // them exactly; exporters diff neighbours for rates.
      EXPECT_GE(r.dram_requests, hub.records()[i - 1].dram_requests);
    }
  }
  // A memory-heavy co-run must have issued and touched DRAM by now.
  EXPECT_GT(hub.records().back().apps[0].instructions, 0u);
  EXPECT_GT(hub.records().back().dram_requests, 0u);
}

TEST(TelemetryHubTest, SaveLoadRoundTripIsByteExact) {
  HubRig rig = make_rig();
  rig.sim->run(3 * kInterval);

  StateWriter w;
  rig.hub->save_state(w);
  const std::vector<u8> bytes = w.bytes();

  // A fresh hub (as built on resume, before load) must adopt the state
  // exactly: re-serialization and the determinism hash both match.
  TelemetryHub fresh(
      std::vector<TelemetryEstimatorTap>{{"DASE", rig.dase.get()}},
      [] { return u64{0}; });
  StateReader r(bytes);
  fresh.load_state(r);
  StateWriter w2;
  fresh.save_state(w2);
  EXPECT_EQ(w2.bytes(), bytes);

  Hasher ha, hb;
  rig.hub->hash_state(ha);
  fresh.hash_state(hb);
  EXPECT_EQ(ha.digest(), hb.digest());
  EXPECT_EQ(fresh.records().size(), rig.hub->records().size());
  EXPECT_EQ(fresh.epochs_seen(), rig.hub->epochs_seen());
  EXPECT_EQ(fresh.trace_events().size(), rig.hub->trace_events().size());
}

TEST(TelemetryHubTest, BatchPathResolutionSanitizesLabels) {
  EXPECT_EQ(telemetry_file_for("d", "SD+SA", ".trace.json"),
            "d/SD_SA.trace.json");
  EXPECT_EQ(telemetry_file_for("d", "BS,AA even/7", ".x"), "d/BS_AA_even_7.x");

  TelemetryPaths batch;
  batch.dir = "out/tel";
  const TelemetryPaths resolved = resolve_telemetry_paths(batch, "SD+SA");
  EXPECT_EQ(resolved.series, "out/tel/SD_SA.telemetry.jsonl");
  EXPECT_EQ(resolved.trace, "out/tel/SD_SA.trace.json");
  EXPECT_EQ(resolved.metrics, "out/tel/SD_SA.metrics.prom");
  EXPECT_TRUE(resolved.dir.empty()) << "dir must not survive resolution";

  TelemetryPaths single;
  single.series = "a.jsonl";
  const TelemetryPaths passthrough = resolve_telemetry_paths(single, "SD+SA");
  EXPECT_EQ(passthrough.series, "a.jsonl");
  EXPECT_TRUE(passthrough.trace.empty());
  EXPECT_FALSE(TelemetryPaths{}.any());
  EXPECT_TRUE(single.any());
}

TEST(TelemetryHubTest, FlushWritesDocumentedFileShapes) {
  HubRig rig = make_rig();
  rig.sim->run(4 * kInterval);

  const fs::path dir =
      fs::temp_directory_path() /
      ("gpusim_hub_flush_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  TelemetryFlushContext ctx;
  ctx.label = "SD+SA";
  ctx.apps = {"SD", "SA"};
  ctx.estimators = {"DASE"};
  ctx.interval_length = kInterval;
  ctx.final_cycle = rig.sim->gpu().now();
  ctx.ipc_alone = {1.0, 1.0};

  TelemetryPaths paths;
  paths.series = (dir / "t.jsonl").string();
  paths.trace = (dir / "t.trace.json").string();
  paths.metrics = (dir / "t.prom").string();
  flush_telemetry(*rig.hub, rig.sim->gpu(), paths, ctx);

  // JSONL: schema-versioned header line + exactly one line per record.
  std::ifstream series(paths.series);
  ASSERT_TRUE(series.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(series, line));
  EXPECT_NE(line.find("\"schema\":\"gpusim-telemetry-v1\""), std::string::npos)
      << line;
  std::size_t body_lines = 0;
  while (std::getline(series, line)) {
    ++body_lines;
    EXPECT_NE(line.find("\"estimates\""), std::string::npos);
  }
  EXPECT_EQ(body_lines, rig.hub->records().size());

  // Trace: a traceEvents array with epoch spans and thread-name metadata.
  std::ifstream trace(paths.trace);
  ASSERT_TRUE(trace.is_open());
  std::stringstream tbuf;
  tbuf << trace.rdbuf();
  const std::string t = tbuf.str();
  EXPECT_EQ(t.rfind("{", 0), 0u);
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.find("epoch"), std::string::npos);
  EXPECT_NE(t.find("thread_name"), std::string::npos);

  // Metrics: the Prometheus snapshot carries the headline families.
  std::ifstream prom(paths.metrics);
  ASSERT_TRUE(prom.is_open());
  std::stringstream pbuf;
  pbuf << prom.rdbuf();
  const std::string p = pbuf.str();
  EXPECT_NE(p.find("# TYPE gpusim_intervals_total counter"),
            std::string::npos);
  EXPECT_NE(p.find("gpusim_estimation_error"), std::string::npos);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(TelemetryHubTest, RunnerResultIsIdenticalWithTelemetryOnAndOff) {
  // The harness-level transparency half: ExperimentRunner attaches the hub
  // unconditionally, so asking for output files cannot change the result.
  Workload w;
  w.apps.push_back(*find_app("SD"));
  w.apps.push_back(*find_app("SA"));

  RunConfig rc;
  rc.co_run_cycles = 120'000;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  ExperimentRunner off(rc);
  const std::string off_json =
      SweepRunner::to_json(off.run(w, ModelSet{.dase = true}));

  const fs::path dir =
      fs::temp_directory_path() /
      ("gpusim_hub_runner_" + std::to_string(::getpid()));
  rc.telemetry.series = (dir / "r.jsonl").string();
  rc.telemetry.trace = (dir / "r.trace.json").string();
  rc.telemetry.metrics = (dir / "r.prom").string();
  ExperimentRunner on(rc);
  const std::string on_json =
      SweepRunner::to_json(on.run(w, ModelSet{.dase = true}));

  EXPECT_EQ(on_json, off_json);
  EXPECT_GT(fs::file_size(rc.telemetry.series), 0u);
  EXPECT_GT(fs::file_size(rc.telemetry.trace), 0u);
  EXPECT_GT(fs::file_size(rc.telemetry.metrics), 0u);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace gpusim
