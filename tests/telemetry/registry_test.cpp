// MetricsRegistry contracts: Prometheus text exposition shape (one
// HELP/TYPE pair per family even under interleaved registration),
// deterministic ordering, histogram bucket math, and exact double
// rendering.  The renderer's output is byte-compared across runs by the
// determinism gates, so the shape asserted here is load-bearing.
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

namespace gpusim {
namespace {

std::string render(const MetricsRegistry& reg) {
  std::ostringstream out;
  reg.render(out);
  return out.str();
}

std::size_t count_occurrences(const std::string& text, const std::string& sub) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(sub); pos != std::string::npos;
       pos = text.find(sub, pos + sub.size())) {
    ++n;
  }
  return n;
}

TEST(MetricsRegistryTest, InterleavedFamiliesRenderOneTypePerFamily) {
  // Collectors register per-app samples in app-major order, so families
  // interleave: a_total{app=0}, b_total{app=0}, a_total{app=1}, ...  The
  // text format forbids repeating HELP/TYPE, so render must regroup.
  MetricsRegistry reg;
  for (int app = 0; app < 3; ++app) {
    const std::string l = "app=\"" + std::to_string(app) + "\"";
    reg.counter("gpusim_a_total", l, "a help") = app;
    reg.counter("gpusim_b_total", l, "b help") = app * 10;
  }
  const std::string text = render(reg);
  EXPECT_EQ(count_occurrences(text, "# TYPE gpusim_a_total counter"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE gpusim_b_total counter"), 1u);
  EXPECT_EQ(count_occurrences(text, "# HELP gpusim_a_total a help"), 1u);
  // Families keep first-registration order; samples stay contiguous.
  const std::size_t a_type = text.find("# TYPE gpusim_a_total");
  const std::size_t b_type = text.find("# TYPE gpusim_b_total");
  ASSERT_NE(a_type, std::string::npos);
  ASSERT_NE(b_type, std::string::npos);
  EXPECT_LT(a_type, b_type);
  const std::size_t a_last = text.find("gpusim_a_total{app=\"2\"}");
  ASSERT_NE(a_last, std::string::npos);
  EXPECT_LT(a_last, b_type) << "family samples must be contiguous";
}

TEST(MetricsRegistryTest, SamplesWithinAFamilyKeepRegistrationOrder) {
  MetricsRegistry reg;
  reg.gauge("gpusim_g", "part=\"1\"", "h") = 1.0;
  reg.gauge("gpusim_g", "part=\"0\"", "h") = 0.0;
  const std::string text = render(reg);
  EXPECT_LT(text.find("part=\"1\""), text.find("part=\"0\""))
      << "no sorting — registration order is the deterministic order";
}

TEST(MetricsRegistryTest, CounterRefindReturnsSameSlot) {
  MetricsRegistry reg;
  reg.counter("gpusim_c_total", "", "h") = 1.0;
  reg.counter("gpusim_c_total", "", "h") += 2.0;
  const std::string text = render(reg);
  EXPECT_EQ(count_occurrences(text, "\ngpusim_c_total "), 1u)
      << "re-registration must not create a second sample";
  EXPECT_NE(text.find("gpusim_c_total 3"), std::string::npos);
}

TEST(MetricsRegistryTest, UnlabeledSamplesRenderWithoutBraces) {
  MetricsRegistry reg;
  reg.gauge("gpusim_plain", "", "h") = 7.0;
  const std::string text = render(reg);
  EXPECT_NE(text.find("gpusim_plain 7\n"), std::string::npos);
  EXPECT_EQ(text.find("gpusim_plain{"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry reg;
  // Bounds that are exact in binary, so the %.17g-rendered le labels stay
  // short and predictable.
  auto& h = reg.histogram("gpusim_err", "est=\"DASE\"", "h", {0.25, 0.5});
  MetricsRegistry::observe(h, 0.05);   // <= 0.25
  MetricsRegistry::observe(h, 0.3);    // <= 0.5
  MetricsRegistry::observe(h, 0.3);    // <= 0.5
  MetricsRegistry::observe(h, 2.0);    // +Inf
  const std::string text = render(reg);
  EXPECT_NE(text.find("gpusim_err_bucket{est=\"DASE\",le=\"0.25\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gpusim_err_bucket{est=\"DASE\",le=\"0.5\"} 3"),
            std::string::npos)
      << "buckets are cumulative, not per-bin";
  EXPECT_NE(text.find("gpusim_err_bucket{est=\"DASE\",le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("gpusim_err_count{est=\"DASE\"} 4"), std::string::npos);
  EXPECT_NE(text.find("gpusim_err_sum{est=\"DASE\"} "), std::string::npos);
}

TEST(MetricsRegistryTest, FmtRoundTripsDoublesExactly) {
  // %.17g guarantees strtod(fmt(v)) == v bit-for-bit; the byte-identity
  // gates depend on that (two runs at the same state → the same text).
  for (const double v : {0.1, 1.0 / 3.0, 12345.678901234567, 1e-300, 0.0}) {
    const std::string s = MetricsRegistry::fmt(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(MetricsRegistry::fmt(1.0), "1");
}

}  // namespace
}  // namespace gpusim
