#include "mem/dram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace gpusim {
namespace {

/// Runs the controller until `count` requests complete or `max` cycles pass;
/// returns the completion cycles in order.
std::vector<Cycle> run_until_complete(MemoryController& mc, Cycle start,
                                      int count, Cycle max = 100000) {
  std::vector<Cycle> completions;
  std::vector<DramCmd> done;
  for (Cycle now = start; now < start + max; ++now) {
    done.clear();
    mc.cycle(now, done);
    for (std::size_t i = 0; i < done.size(); ++i) completions.push_back(now);
    if (static_cast<int>(completions.size()) >= count) break;
  }
  return completions;
}

DramCmd cmd(AppId app, int bank, u64 row, Cycle enq = 0) {
  DramCmd c;
  c.app = app;
  c.bank = bank;
  c.row = row;
  c.enqueued = enq;
  return c;
}

TEST(DramTest, ClosedBankTimingIsActivatePlusCasPlusBurst) {
  GpuConfig cfg;
  MemoryController mc(cfg, 1);
  ASSERT_TRUE(mc.try_enqueue(cmd(0, 3, 7)));
  const auto completions = run_until_complete(mc, 0, 1);
  ASSERT_EQ(completions.size(), 1u);
  // Issue at cycle 0, tRCD(18) prep, +1 cycle prep-retire, tCL(18) lead,
  // tBurst(6): completes within a small window of the sum.
  const Cycle expected = cfg.t_rcd() + cfg.t_cl() + cfg.t_burst();
  EXPECT_GE(completions[0], expected);
  EXPECT_LE(completions[0], expected + 4);
}

TEST(DramTest, RowHitFasterThanRowMiss) {
  GpuConfig cfg;
  MemoryController mc(cfg, 1);
  mc.try_enqueue(cmd(0, 0, 5));
  auto first = run_until_complete(mc, 0, 1);
  ASSERT_EQ(first.size(), 1u);
  const Cycle t0 = first[0];

  // Row hit: same bank, same row.
  mc.try_enqueue(cmd(0, 0, 5, t0 + 1));
  auto hit = run_until_complete(mc, t0 + 1, 1);
  const Cycle hit_latency = hit[0] - (t0 + 1);

  // Row miss: same bank, other row (needs PRE + ACT).
  mc.try_enqueue(cmd(0, 0, 9, hit[0] + 1));
  auto miss = run_until_complete(mc, hit[0] + 1, 1);
  const Cycle miss_latency = miss[0] - (hit[0] + 1);

  EXPECT_LT(hit_latency, miss_latency);
  EXPECT_GE(miss_latency - hit_latency, cfg.t_rp());
  EXPECT_EQ(mc.counters().row_hits.total(0), 1u);
  EXPECT_EQ(mc.counters().row_misses.total(0), 2u);
}

TEST(DramTest, FrFcfsPrefersRowHitOverOlderMiss) {
  GpuConfig cfg;
  MemoryController mc(cfg, 2);
  // Open row 5 on bank 0.
  mc.try_enqueue(cmd(0, 0, 5));
  run_until_complete(mc, 0, 1);

  // Older request: app 1, row miss on bank 0.  Newer: app 0 row hit.
  mc.try_enqueue(cmd(1, 0, 9, 1000));
  mc.try_enqueue(cmd(0, 0, 5, 1001));
  std::vector<DramCmd> done;
  std::vector<AppId> order;
  for (Cycle now = 1002; now < 2000 && order.size() < 2; ++now) {
    done.clear();
    mc.cycle(now, done);
    for (const auto& d : done) order.push_back(d.app);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0) << "row hit must be served first";
  EXPECT_EQ(order[1], 1);
}

TEST(DramTest, PriorityAppWinsTheIssueSlot) {
  // Both requests target the same bank (service serialises), the
  // non-priority one is older: with a priority app set, its request must
  // be issued — and therefore served — first.
  GpuConfig cfg;
  MemoryController mc(cfg, 2);
  mc.set_priority_app(1);
  mc.try_enqueue(cmd(0, 0, 5, 0));  // older, non-priority
  mc.try_enqueue(cmd(1, 0, 9, 1));  // newer, priority app
  std::vector<DramCmd> done;
  std::vector<AppId> order;
  for (Cycle now = 2; now < 3000 && order.size() < 2; ++now) {
    done.clear();
    mc.cycle(now, done);
    for (const auto& d : done) order.push_back(d.app);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1) << "priority request issued first";
  EXPECT_EQ(mc.counters().priority_served.total(1), 1u);
}

TEST(DramTest, QueueCapacityEnforced) {
  GpuConfig cfg;
  cfg.dram_queue_capacity = 4;
  MemoryController mc(cfg, 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(mc.try_enqueue(cmd(0, i, 1)));
  }
  EXPECT_TRUE(mc.queue_full());
  EXPECT_FALSE(mc.try_enqueue(cmd(0, 5, 1)));
  EXPECT_EQ(mc.total_outstanding(), 4);
}

TEST(DramTest, ExtraRowBufferMissDetection) {
  GpuConfig cfg;
  MemoryController mc(cfg, 2);
  // App 0 opens row 5 in bank 0; app 1 then opens row 9 in bank 0 (closing
  // app 0's row); app 0 returns to row 5 -> one ERBMiss for app 0 (Eq. 10).
  mc.try_enqueue(cmd(0, 0, 5));
  run_until_complete(mc, 0, 1);
  mc.try_enqueue(cmd(1, 0, 9, 500));
  run_until_complete(mc, 500, 1);
  mc.try_enqueue(cmd(0, 0, 5, 1500));
  run_until_complete(mc, 1500, 1);
  EXPECT_EQ(mc.counters().erb_miss.total(0), 1u);
  EXPECT_EQ(mc.counters().erb_miss.total(1), 0u);
}

TEST(DramTest, NoErbMissWhenOwnStreamChangesRows) {
  GpuConfig cfg;
  MemoryController mc(cfg, 1);
  // The same app walking different rows is not interference.
  for (u64 row = 0; row < 5; ++row) {
    mc.try_enqueue(cmd(0, 0, row, row * 500));
    run_until_complete(mc, row * 500, 1);
  }
  EXPECT_EQ(mc.counters().erb_miss.total(0), 0u);
}

TEST(DramTest, SaturatedThroughputMatchesEfficiencyCap) {
  // At saturation, useful throughput depends on the row-miss ratio: a
  // row hit occupies the bus for t_burst + gap; a row miss additionally
  // pays the miss bubble.  Sequential traffic approaches the hit cap,
  // random traffic the miss cap.
  GpuConfig cfg;
  Rng rng(3);
  const Cycle cycles = 50000;
  auto saturate = [&](bool sequential) {
    MemoryController mc(cfg, 1);
    u64 served = 0;
    u64 seq = 0;
    std::vector<DramCmd> done;
    for (Cycle now = 0; now < cycles; ++now) {
      while (!mc.queue_full()) {
        if (sequential) {
          const u64 line = seq++;
          mc.try_enqueue(
              cmd(0, static_cast<int>((line / 16) % 16), line / 256, now));
        } else {
          mc.try_enqueue(cmd(0, static_cast<int>(rng.next_below(16)),
                             rng.next_below(1 << 20), now));
        }
      }
      done.clear();
      mc.cycle(now, done);
      served += done.size();
    }
    return served;
  };
  const double hit_cap = static_cast<double>(cycles) /
                         (cfg.t_burst() + cfg.t_bus_gap());
  const double miss_cap =
      static_cast<double>(cycles) /
      (cfg.t_burst() + cfg.t_bus_gap() + cfg.t_miss_bubble());
  const u64 seq_served = saturate(true);
  const u64 rnd_served = saturate(false);
  EXPECT_GT(seq_served, hit_cap * 0.90);
  EXPECT_LE(seq_served, hit_cap * 1.01);
  EXPECT_GT(rnd_served, miss_cap * 0.92);
  EXPECT_LE(rnd_served, miss_cap * 1.01);
}

TEST(DramTest, BandwidthDecompositionCoversAllCycles) {
  GpuConfig cfg;
  MemoryController mc(cfg, 2);
  Rng rng(5);
  std::vector<DramCmd> done;
  const Cycle cycles = 30000;
  for (Cycle now = 0; now < cycles; ++now) {
    if (rng.next_bool(0.05)) {
      mc.try_enqueue(cmd(static_cast<AppId>(rng.next_below(2)),
                         static_cast<int>(rng.next_below(16)),
                         rng.next_below(1024), now));
    }
    done.clear();
    mc.cycle(now, done);
  }
  const McCounters& c = mc.counters();
  const u64 accounted = c.bus_data_cycles.grand_total() +
                        c.wasted_cycles.total() + c.idle_cycles.total();
  // Lump accounting can run slightly ahead/behind at the edges.
  EXPECT_NEAR(static_cast<double>(accounted), static_cast<double>(cycles),
              cycles * 0.02);
}

TEST(DramTest, BlpCountersTrackOutstandingWork) {
  GpuConfig cfg;
  MemoryController mc(cfg, 2);
  // Four banks' worth of requests for app 0, nothing for app 1.
  for (int b = 0; b < 4; ++b) mc.try_enqueue(cmd(0, b, 1));
  std::vector<DramCmd> done;
  for (Cycle now = 0; now < 10; ++now) {
    done.clear();
    mc.cycle(now, done);
  }
  const McCounters& c = mc.counters();
  EXPECT_GT(c.blp_time.total(0), 0u);
  EXPECT_EQ(c.blp_time.total(1), 0u);
  EXPECT_GT(c.blp_occupancy_int.total(0), c.blp_access_int.total(0))
      << "queued-but-not-executing banks count toward BLP only";
  // Average BLP over the window is at most the bank count.
  EXPECT_LE(c.blp_occupancy_int.total(0),
            c.blp_time.total(0) * static_cast<u64>(cfg.banks_per_mc));
}

TEST(DramTest, ServiceTimeAccumulatesPerApp) {
  GpuConfig cfg;
  MemoryController mc(cfg, 2);
  mc.try_enqueue(cmd(0, 0, 1));
  mc.try_enqueue(cmd(1, 8, 2));
  run_until_complete(mc, 0, 2);
  EXPECT_EQ(mc.counters().requests_served.total(0), 1u);
  EXPECT_EQ(mc.counters().requests_served.total(1), 1u);
  EXPECT_GT(mc.counters().bank_service_time.total(0), 0u);
  EXPECT_GT(mc.counters().bank_service_time.total(1), 0u);
}

TEST(DramTest, OutstandingReturnsToZeroAfterDrain) {
  GpuConfig cfg;
  MemoryController mc(cfg, 1);
  for (int i = 0; i < 10; ++i) {
    mc.try_enqueue(cmd(0, i % 16, i));
  }
  run_until_complete(mc, 0, 10);
  EXPECT_EQ(mc.total_outstanding(), 0);
  EXPECT_EQ(mc.queue_size(), 0);
  EXPECT_EQ(mc.bus_ready_size(), 0);
  EXPECT_EQ(mc.inflight_size(), 0);
  EXPECT_EQ(mc.preparing_banks(), 0);
}

class DramLocalitySweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DramLocalitySweepTest, MoreLocalityNeverHurtsServiceRate) {
  // Property: raising the fraction of row-hit traffic cannot reduce served
  // throughput at fixed offered load.
  const double hit_fraction = GetParam();
  GpuConfig cfg;
  MemoryController mc(cfg, 1);
  Rng rng(9);
  u64 served = 0;
  u64 seq = 0;
  std::vector<DramCmd> done;
  const Cycle cycles = 40000;
  for (Cycle now = 0; now < cycles; ++now) {
    if (rng.next_bool(0.2) && !mc.queue_full()) {
      DramCmd c;
      c.app = 0;
      c.enqueued = now;
      if (rng.next_bool(hit_fraction)) {
        const u64 line = seq++;
        c.bank = static_cast<int>((line / 16) % 16);
        c.row = line / 256;
      } else {
        c.bank = static_cast<int>(rng.next_below(16));
        c.row = rng.next_below(1 << 20);
      }
      mc.try_enqueue(c);
    }
    done.clear();
    mc.cycle(now, done);
    served += done.size();
  }
  // At 0.2 req/cycle offered the system saturates; throughput must match
  // the locality-dependent efficiency cap: one request per
  // (t_burst + gap + miss_bubble * miss_fraction) cycles.
  const double per_req = (cfg.t_burst() + cfg.t_bus_gap()) +
                         cfg.t_miss_bubble() * (1.0 - hit_fraction);
  const double cap = static_cast<double>(cycles) / per_req;
  EXPECT_GT(served, cap * 0.80);
  EXPECT_LE(served, cap * 1.05);
}

INSTANTIATE_TEST_SUITE_P(HitFractions, DramLocalitySweepTest,
                         ::testing::Values(0.0, 0.3, 0.6, 0.9, 1.0));

}  // namespace
}  // namespace gpusim
