#include "mem/partition.hpp"

#include <gtest/gtest.h>

#include "common/bounded_queue.hpp"

namespace gpusim {
namespace {

MemRequestPacket request(u64 line_addr, AppId app, SmId sm = 0,
                         WarpId warp = 0, Cycle ready = 0) {
  MemRequestPacket p;
  p.line_addr = line_addr;
  p.app = app;
  p.sm = sm;
  p.warp = warp;
  p.ready = ready;
  return p;
}

/// Drives the partition until `count` responses arrive or `max` elapses.
std::vector<MemResponsePacket> collect_responses(
    MemoryPartition& part, BoundedQueue<MemRequestPacket>& in, Cycle& now,
    int count, Cycle max = 50000) {
  std::vector<MemResponsePacket> out;
  const Cycle stop = now + max;
  while (now < stop && static_cast<int>(out.size()) < count) {
    part.cycle(now, in);
    auto& rq = part.resp_queue();
    while (!rq.empty() && rq.front().ready <= now) {
      out.push_back(rq.pop());
    }
    ++now;
  }
  return out;
}

class PartitionTest : public ::testing::Test {
 protected:
  GpuConfig cfg_;
  MemoryPartition part_{cfg_, 2, 0};
  BoundedQueue<MemRequestPacket> in_{32};
  Cycle now_ = 0;
};

TEST_F(PartitionTest, MissGoesToDramAndResponds) {
  // Address in partition 0: line 0.
  in_.try_push(request(0, 0, 3, 7));
  const auto resp = collect_responses(part_, in_, now_, 1);
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_EQ(resp[0].sm, 3);
  EXPECT_EQ(resp[0].warp, 7);
  EXPECT_EQ(resp[0].line_addr, 0u);
  EXPECT_EQ(part_.counters().l2_accesses.total(0), 1u);
  EXPECT_EQ(part_.counters().l2_hits.total(0), 0u);
  // Fill happened: second access hits.
  in_.try_push(request(0, 0, 3, 8, now_));
  const auto resp2 = collect_responses(part_, in_, now_, 1);
  ASSERT_EQ(resp2.size(), 1u);
  EXPECT_EQ(part_.counters().l2_hits.total(0), 1u);
}

TEST_F(PartitionTest, L2HitLatencyShorterThanMiss) {
  in_.try_push(request(0, 0));
  Cycle start = now_;
  collect_responses(part_, in_, now_, 1);
  const Cycle miss_latency = now_ - start;

  in_.try_push(request(0, 0, 0, 0, now_));
  start = now_;
  collect_responses(part_, in_, now_, 1);
  const Cycle hit_latency = now_ - start;
  EXPECT_LT(hit_latency, miss_latency);
  EXPECT_GE(hit_latency, cfg_.l2_hit_latency);
}

TEST_F(PartitionTest, MshrMergesConcurrentMissesToOneLine) {
  in_.try_push(request(0, 0, 1, 1));
  in_.try_push(request(0, 0, 2, 2));
  in_.try_push(request(0, 0, 3, 3));
  const auto resp = collect_responses(part_, in_, now_, 3);
  ASSERT_EQ(resp.size(), 3u);
  // Only one DRAM request was actually served.
  EXPECT_EQ(part_.mc().counters().requests_served.total(0), 1u);
  EXPECT_EQ(part_.counters().l2_accesses.total(0), 3u);
}

TEST_F(PartitionTest, AtdDetectsContentionMiss) {
  // App 0 fills a line; app 1 floods the same L2 set to evict it; app 0's
  // re-access misses L2 but hits its private ATD -> one contention sample.
  const int sets = cfg_.l2_num_sets();
  // Line mapping to sampled set 0 of partition 0: line_addr with
  // (addr/128) % sets == 0 and partition_of == 0.
  // partition = (addr/128) % 6 == 0 and set = (addr/128) % sets.
  // Choose line ids that are multiples of lcm(6, sets).
  const u64 stride_lines = static_cast<u64>(sets) * 6;
  auto line_in_set0 = [&](u64 k) { return k * stride_lines * 128; };

  in_.try_push(request(line_in_set0(0), 0));
  collect_responses(part_, in_, now_, 1);
  // Evict with app 1: fill the same set with > assoc distinct lines.
  const int flood = cfg_.l2_assoc + 2;
  for (int k = 1; k <= flood; ++k) {
    in_.try_push(request(line_in_set0(k), 1, 0, k, now_));
  }
  collect_responses(part_, in_, now_, flood);
  // App 0 returns.
  in_.try_push(request(line_in_set0(0), 0, 0, 0, now_));
  collect_responses(part_, in_, now_, 1);
  EXPECT_EQ(part_.counters().atd_extra_miss_samples.total(0), 1u);
  EXPECT_EQ(part_.counters().atd_extra_miss_samples.total(1), 0u);
  EXPECT_GT(part_.interval_scaled_extra_misses(0), 0u);
}

TEST_F(PartitionTest, SelfEvictionIsNotContention) {
  // One app thrashing its own set must not raise the contention counter:
  // the ATD (same geometry) misses too.
  const int sets = cfg_.l2_num_sets();
  const u64 stride_lines = static_cast<u64>(sets) * 6;
  const int flood = cfg_.l2_assoc * 3;
  for (int rep = 0; rep < 2; ++rep) {
    for (int k = 0; k < flood; ++k) {
      in_.try_push(request(k * stride_lines * 128, 0, 0, k, now_));
      collect_responses(part_, in_, now_, 1);
    }
  }
  EXPECT_EQ(part_.counters().atd_extra_miss_samples.total(0), 0u);
}

TEST_F(PartitionTest, QuiescentAfterDrain) {
  EXPECT_TRUE(part_.quiescent());
  in_.try_push(request(0, 0));
  part_.cycle(now_, in_);
  EXPECT_FALSE(part_.quiescent());
  collect_responses(part_, in_, now_, 1);
  EXPECT_TRUE(part_.quiescent());
}

TEST_F(PartitionTest, TinyResponseQueueBackpressuresInsteadOfOverflowing) {
  // Regression: a saturated response queue used to be an assert (silent in
  // Release).  With depth 2 and a burst of misses + hits the partition
  // must defer/retry, never throw, and still deliver every response.
  GpuConfig cfg;
  cfg.partition_resp_queue_depth = 2;
  MemoryPartition part(cfg, 2, 0);
  BoundedQueue<MemRequestPacket> in(64);
  Cycle now = 0;

  const int kRequests = 24;
  int pushed = 0;
  std::vector<MemResponsePacket> got;
  // A slow consumer: drain at most one response every 4 cycles while the
  // producer floods distinct lines (misses) and repeats (hits).
  while (static_cast<int>(got.size()) < kRequests && now < 200'000) {
    while (pushed < kRequests && !in.full()) {
      // Lines in partition 0 (line id multiple of num_partitions).
      const u64 line = static_cast<u64>(pushed % 6) * 6 * 128;
      in.try_push(request(line, pushed % 2, 0, pushed, now));
      ++pushed;
    }
    part.cycle(now, in);
    auto& rq = part.resp_queue();
    if (now % 4 == 0 && !rq.empty() && rq.front().ready <= now) {
      got.push_back(rq.pop());
    }
    ++now;
  }
  EXPECT_EQ(static_cast<int>(got.size()), kRequests);
  EXPECT_LE(part.resp_queue().capacity(), 2u);
  // Everything delivered: nothing stuck in the deferred overflow path.
  EXPECT_TRUE(part.quiescent());
}

TEST_F(PartitionTest, InFlightCountMatchesOutstandingResponses) {
  in_.try_push(request(0, 0, 1, 1));
  in_.try_push(request(6 * 128, 1, 2, 2));
  // Let the partition accept both requests but not yet respond.
  for (int i = 0; i < 3; ++i) part_.cycle(now_++, in_);
  std::array<u64, kMaxApps> in_flight{};
  part_.count_in_flight(in_flight);
  EXPECT_EQ(in_flight[0] + in_flight[1], 2u);
  collect_responses(part_, in_, now_, 2);
  std::array<u64, kMaxApps> after{};
  part_.count_in_flight(after);
  EXPECT_EQ(after[0] + after[1], 0u);
}

TEST_F(PartitionTest, RespectsPacketReadyTime) {
  in_.try_push(request(0, 0, 0, 0, /*ready=*/100));
  for (; now_ < 100; ++now_) {
    part_.cycle(now_, in_);
    EXPECT_TRUE(in_.empty() || part_.counters().l2_accesses.total(0) == 0u);
  }
  collect_responses(part_, in_, now_, 1);
  EXPECT_EQ(part_.counters().l2_accesses.total(0), 1u);
}

}  // namespace
}  // namespace gpusim
