#include "mem/address_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"

namespace gpusim {
namespace {

TEST(AddressMapTest, SequentialLinesInterleavePartitions) {
  GpuConfig cfg;
  AddressMap map(cfg);
  for (u64 line = 0; line < 600; ++line) {
    EXPECT_EQ(map.partition_of(line * 128),
              static_cast<PartitionId>(line % 6));
  }
}

TEST(AddressMapTest, DecodePartitionAgreesWithPartitionOf) {
  GpuConfig cfg;
  AddressMap map(cfg);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const u64 addr = rng.next_u64() >> 8 << 7;  // line aligned
    EXPECT_EQ(map.decode(addr).partition, map.partition_of(addr));
  }
}

TEST(AddressMapTest, RowSpansNinetySixConsecutiveLines) {
  // With 6 partitions, 16-line rows: one bank-row covers 96 consecutive
  // cache lines (16 per partition), then the bank advances.
  GpuConfig cfg;
  AddressMap map(cfg);
  const DramCoordinates first = map.decode(0);
  for (u64 line = 0; line < 96; ++line) {
    const DramCoordinates c = map.decode(line * 128);
    EXPECT_EQ(c.bank, first.bank) << "line " << line;
    EXPECT_EQ(c.row, first.row) << "line " << line;
  }
  const DramCoordinates next = map.decode(96 * 128);
  EXPECT_NE(next.bank, first.bank);
}

TEST(AddressMapTest, BankRotationCoversAllBanks) {
  GpuConfig cfg;
  AddressMap map(cfg);
  std::set<int> banks;
  for (u64 line = 0; line < 96 * 16; line += 96) {
    banks.insert(map.decode(line * 128).bank);
  }
  EXPECT_EQ(banks.size(), 16u);
}

TEST(AddressMapTest, RowAdvancesAfterFullBankRotation) {
  GpuConfig cfg;
  AddressMap map(cfg);
  const u64 rotation_lines = 96 * 16;
  EXPECT_EQ(map.decode(0).row, 0u);
  const DramCoordinates c = map.decode(rotation_lines * 128);
  EXPECT_EQ(c.row, 1u);
  EXPECT_EQ(c.bank, 0);
}

TEST(AddressMapTest, FieldsWithinBounds) {
  GpuConfig cfg;
  AddressMap map(cfg);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const u64 addr = rng.next_u64() & ((1ull << 44) - 1);
    const DramCoordinates c = map.decode(addr);
    ASSERT_GE(c.partition, 0);
    ASSERT_LT(c.partition, cfg.num_partitions);
    ASSERT_GE(c.bank, 0);
    ASSERT_LT(c.bank, cfg.banks_per_mc);
  }
}

class AddressMapBalanceTest : public ::testing::TestWithParam<int> {};

TEST_P(AddressMapBalanceTest, RandomTrafficBalancesPartitionsAndBanks) {
  GpuConfig cfg;
  cfg.num_partitions = GetParam();
  // Keep total L2 size coherent for validate(); not needed by AddressMap.
  AddressMap map(cfg);
  Rng rng(77);
  std::map<int, int> parts;
  std::map<int, int> banks;
  constexpr int kSamples = 60000;
  for (int i = 0; i < kSamples; ++i) {
    const u64 addr = rng.next_below(1ull << 32) * 128;
    const DramCoordinates c = map.decode(addr);
    ++parts[c.partition];
    ++banks[c.bank];
  }
  const double per_part = static_cast<double>(kSamples) / cfg.num_partitions;
  for (auto [p, n] : parts) EXPECT_NEAR(n, per_part, per_part * 0.1);
  const double per_bank = static_cast<double>(kSamples) / cfg.banks_per_mc;
  for (auto [b, n] : banks) EXPECT_NEAR(n, per_bank, per_bank * 0.1);
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, AddressMapBalanceTest,
                         ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace gpusim
