#include "noc/crossbar.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace gpusim {
namespace {

struct Packet {
  int dest = 0;
  int payload = 0;
  Cycle ready = 0;
};

class CrossbarTest : public ::testing::Test {
 protected:
  static constexpr int kSources = 4;
  static constexpr int kDests = 2;

  CrossbarTest()
      : channel_(kSources, kDests, /*latency=*/5, /*accepts=*/1,
                 /*depth=*/8, [](const Packet& p) { return p.dest; }) {
    for (int s = 0; s < kSources; ++s) {
      queues_.emplace_back(std::make_unique<BoundedQueue<Packet>>(16));
      sources_.push_back(queues_.back().get());
    }
  }

  CrossbarChannel<Packet> channel_;
  std::vector<std::unique_ptr<BoundedQueue<Packet>>> queues_;
  std::vector<BoundedQueue<Packet>*> sources_;
};

TEST_F(CrossbarTest, DeliversWithLatency) {
  queues_[0]->try_push({.dest = 1, .payload = 42, .ready = 0});
  channel_.transfer(10, sources_);
  auto& dq = channel_.dest_queue(1);
  ASSERT_EQ(dq.size(), 1u);
  EXPECT_EQ(dq.front().payload, 42);
  EXPECT_EQ(dq.front().ready, 15u);
}

TEST_F(CrossbarTest, OnePacketPerSourcePerCycle) {
  queues_[0]->try_push({.dest = 0});
  queues_[0]->try_push({.dest = 1});
  channel_.transfer(0, sources_);
  // Source 0 may feed only one destination per cycle.
  EXPECT_EQ(channel_.dest_queue(0).size() + channel_.dest_queue(1).size(),
            1u);
  channel_.transfer(1, sources_);
  EXPECT_EQ(channel_.dest_queue(0).size() + channel_.dest_queue(1).size(),
            2u);
}

TEST_F(CrossbarTest, AcceptLimitPerDestination) {
  for (int s = 0; s < kSources; ++s) {
    queues_[s]->try_push({.dest = 0, .payload = s});
  }
  channel_.transfer(0, sources_);
  EXPECT_EQ(channel_.dest_queue(0).size(), 1u) << "1 accept per cycle";
  channel_.transfer(1, sources_);
  channel_.transfer(2, sources_);
  channel_.transfer(3, sources_);
  EXPECT_EQ(channel_.dest_queue(0).size(), 4u);
}

TEST_F(CrossbarTest, RoundRobinIsFairAcrossSources) {
  // All 4 sources permanently loaded toward dest 0; over many cycles each
  // must receive an equal share.
  std::map<int, int> delivered;
  for (Cycle now = 0; now < 400; ++now) {
    for (int s = 0; s < kSources; ++s) {
      if (queues_[s]->empty()) {
        queues_[s]->try_push({.dest = 0, .payload = s});
      }
    }
    channel_.transfer(now, sources_);
    auto& dq = channel_.dest_queue(0);
    while (!dq.empty()) ++delivered[dq.pop().payload];
  }
  for (int s = 0; s < kSources; ++s) {
    EXPECT_NEAR(delivered[s], 100, 2) << "source " << s;
  }
}

TEST_F(CrossbarTest, RespectsPacketReadyGate) {
  queues_[0]->try_push({.dest = 0, .payload = 1, .ready = 50});
  channel_.transfer(0, sources_);
  EXPECT_TRUE(channel_.dest_queue(0).empty());
  channel_.transfer(50, sources_);
  EXPECT_EQ(channel_.dest_queue(0).size(), 1u);
}

TEST_F(CrossbarTest, BackpressureWhenDestinationFull) {
  // Depth is 8; fill it and verify the 9th packet stays at the source.
  for (int i = 0; i < 9; ++i) queues_[0]->try_push({.dest = 0, .payload = i});
  for (Cycle now = 0; now < 20; ++now) channel_.transfer(now, sources_);
  EXPECT_EQ(channel_.dest_queue(0).size(), 8u);
  EXPECT_EQ(queues_[0]->size(), 1u);
  // Draining one slot lets it through.
  channel_.dest_queue(0).pop();
  channel_.transfer(100, sources_);
  EXPECT_EQ(channel_.dest_queue(0).size(), 8u);
  EXPECT_TRUE(queues_[0]->empty());
}

TEST_F(CrossbarTest, HeadOfLineBlocking) {
  // Head packet targets the full dest 0; a dest-1 packet behind it waits.
  for (int i = 0; i < 8; ++i) queues_[1]->try_push({.dest = 0});
  for (Cycle now = 0; now < 20; ++now) channel_.transfer(now, sources_);
  ASSERT_TRUE(channel_.dest_queue(0).full());
  queues_[0]->try_push({.dest = 0, .payload = 7});
  queues_[0]->try_push({.dest = 1, .payload = 8});
  channel_.transfer(100, sources_);
  EXPECT_TRUE(channel_.dest_queue(1).empty())
      << "dest-1 packet must wait behind the blocked head";
}

TEST_F(CrossbarTest, AllEmptyReflectsState) {
  EXPECT_TRUE(channel_.all_empty());
  queues_[2]->try_push({.dest = 1});
  channel_.transfer(0, sources_);
  EXPECT_FALSE(channel_.all_empty());
}

}  // namespace
}  // namespace gpusim
