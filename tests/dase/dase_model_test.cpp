// Unit tests for the DASE equations on hand-constructed counter samples.
//
// The expected values below are computed by hand from the paper's
// equations with the default Table II configuration: tRP = tRCD = 18 SM
// cycles, TimePerReq = 6 SM cycles, 6 partitions, Requestmax factor 0.6.
#include "dase/dase_model.hpp"

#include <gtest/gtest.h>

#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

class DaseModelTest : public ::testing::Test {
 protected:
  DaseModelTest() : gpu_(cfg_, {AppLaunch{*find_app("VA"), 1}}) {}

  /// Feeds one synthetic sample through the model and returns the
  /// estimates (warmup disabled so the first interval already counts).
  std::vector<SlowdownEstimate> feed(DaseModel& model,
                                     const IntervalSample& sample) {
    model.on_interval(sample, gpu_);
    return model.latest();
  }

  static IntervalSample base_sample() {
    IntervalSample s;
    s.length = 50'000;
    s.total_sms = 16;
    s.count_apps = 2;
    s.apps.resize(1);
    AppIntervalData& d = s.apps[0];
    d.app = 0;
    d.num_sms = 8;
    d.sm_cycles = 8 * 50'000;
    d.instructions = 100'000;
    d.active_blocks = 8;
    d.remaining_blocks = 1'000'000;
    return s;
  }

  GpuConfig cfg_;
  Gpu gpu_;
};

TEST_F(DaseModelTest, RequestMaxFollowsEq20) {
  // Requestmax = T / TimePerReq * partitions * 0.6 = 50000/6*6*0.6 = 30000.
  EXPECT_NEAR(DaseModel::request_max(cfg_, 50'000), 30'000.0, 1e-9);
  EXPECT_NEAR(DaseModel::request_max(cfg_, 25'000), 15'000.0, 1e-9);
}

TEST_F(DaseModelTest, NmbbSlowdownMatchesHandComputation) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 0.5;
  d.requests_served = 5'000;
  d.bank_service_time = 250'000;  // T_avg = 50
  d.erb_miss = 100;
  d.ellc_miss_scaled = 200;
  d.blp = 4.0;
  d.blp_access = 3.0;
  s.total_requests_served = 8'000;  // well below Requestmax -> NMBB

  DaseModel model({}, /*warmup=*/0);
  const auto est = feed(model, s);
  ASSERT_EQ(est.size(), 1u);
  EXPECT_TRUE(est[0].valid);
  EXPECT_FALSE(est[0].mbb);
  // T_BK = 50000*(4-3) = 50000; T_RB = 100*36 = 3600; T_LLC = 200*50 =
  // 10000; T_interf = 63600/4 = 15900; ratio = 50000/34100;
  // slowdown = 0.5 + 0.5*ratio = 1.23314; all-SMs: *2 = 2.46628.
  EXPECT_NEAR(est[0].interference_cycles, 15'900.0, 1e-6);
  EXPECT_NEAR(est[0].slowdown_assigned, 1.233137, 1e-5);
  EXPECT_NEAR(est[0].slowdown_all, 2.466276, 1e-5);
}

TEST_F(DaseModelTest, MbbClassificationAndSlowdown) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 0.9;
  d.requests_served = 20'000;
  d.bank_service_time = 400'000;
  d.blp = 6.0;
  d.blp_access = 5.0;
  s.total_requests_served = 35'000;  // Eq. 19: >= 30000

  DaseModel model({}, 0);
  const auto est = feed(model, s);
  EXPECT_TRUE(est[0].mbb);
  // Eq. 16/18: slowdown = total / own = 35000/20000.
  EXPECT_NEAR(est[0].slowdown_assigned, 1.75, 1e-9);
  EXPECT_NEAR(est[0].slowdown_all, 1.75, 1e-9)
      << "MBB kernels do not scale with SMs (Section 4.3)";
}

TEST_F(DaseModelTest, MbbNeedsAllThreeConditions) {
  // Eq. 21 violated: the app's own share is below 1/CountApp.
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 0.9;
  d.requests_served = 10'000;  // share 1/3 < 1/2
  d.bank_service_time = 100'000;
  d.blp = 6.0;
  d.blp_access = 5.5;
  s.total_requests_served = 32'000;
  DaseModel model({}, 0);
  EXPECT_FALSE(feed(model, s)[0].mbb);

  // Eq. 22 violated: ample TLP slack (low alpha) despite high share.
  IntervalSample s2 = base_sample();
  AppIntervalData& d2 = s2.apps[0];
  d2.alpha = 0.05;
  d2.requests_served = 16'000;
  d2.bank_service_time = 100'000;
  d2.blp = 6.0;
  d2.blp_access = 5.5;
  s2.total_requests_served = 31'000;
  // 16000 / (1-0.05) = 16842 < 30000 -> NMBB.
  DaseModel model2({}, 0);
  EXPECT_FALSE(feed(model2, s2)[0].mbb);
}

TEST_F(DaseModelTest, AlphaClampAboveThreshold) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 0.8;  // above the 0.7 clamp threshold
  d.requests_served = 2'000;
  d.bank_service_time = 80'000;  // T_avg = 40
  d.erb_miss = 0;
  d.blp = 2.0;
  d.blp_access = 1.5;
  s.total_requests_served = 3'000;

  DaseModel clamped({.clamp_alpha = true}, 0);
  DaseModel unclamped({.clamp_alpha = false}, 0);
  const double with_clamp = feed(clamped, s)[0].slowdown_assigned;
  const double without = feed(unclamped, s)[0].slowdown_assigned;
  // With alpha = 1 the full interference ratio applies -> larger estimate.
  EXPECT_GT(with_clamp, without);
  // T_interf = 50000*0.5/2 = 12500; ratio = 50000/37500 = 4/3.
  EXPECT_NEAR(with_clamp, 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(without, 1.0 - 0.8 + 0.8 * 4.0 / 3.0, 1e-9);
}

TEST_F(DaseModelTest, BandwidthCapEq25Binds) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.num_sms = 2;  // aggressive x8 SM scaling
  d.sm_cycles = 2 * 50'000;
  d.alpha = 1.0;
  d.requests_served = 15'000;
  d.bank_service_time = 300'000;
  d.blp = 2.0;
  d.blp_access = 1.0;  // T_BK = 50000 -> big assigned slowdown
  s.total_requests_served = 20'000;

  DaseModel model({}, 0);
  const auto est = feed(model, s);
  ASSERT_FALSE(est[0].mbb);
  // bw_cap = 30000 / 15000 = 2.0 must bound the x8 extrapolation.
  EXPECT_NEAR(est[0].slowdown_all, 2.0, 1e-9);

  DaseModel uncapped({.apply_bw_cap = false}, 0);
  EXPECT_GT(feed(uncapped, s)[0].slowdown_all, 2.0);
}

TEST_F(DaseModelTest, TlpCapEq24Binds) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 0.2;
  d.requests_served = 1'000;
  d.bank_service_time = 30'000;
  d.blp = 1.5;
  d.blp_access = 1.4;
  d.active_blocks = 8;
  d.remaining_blocks = 9;  // almost no blocks left: cannot fill 16 SMs
  s.total_requests_served = 1'500;

  DaseModel model({}, 0);
  const auto est = feed(model, s);
  // tlp_cap = slowdown_assigned * 9/8 < slowdown_assigned * 2.
  EXPECT_LE(est[0].slowdown_all, est[0].slowdown_assigned * 9.0 / 8.0 + 1e-9);
}

TEST_F(DaseModelTest, InactiveAppIsInvalid) {
  IntervalSample s = base_sample();
  s.apps[0].num_sms = 0;
  s.apps[0].sm_cycles = 0;
  DaseModel model({}, 0);
  EXPECT_FALSE(feed(model, s)[0].valid);
}

TEST_F(DaseModelTest, NoMemoryActivityMeansNoSlowdown) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 0.0;
  d.requests_served = 0;
  d.blp = 0.0;
  d.blp_access = 0.0;
  s.total_requests_served = 0;
  DaseModel model({}, 0);
  const auto est = feed(model, s);
  EXPECT_TRUE(est[0].valid);
  EXPECT_NEAR(est[0].slowdown_assigned, 1.0, 1e-9);
  // A pure-compute app on half the SMs still slows by the SM ratio.
  EXPECT_NEAR(est[0].slowdown_all, 2.0, 1e-9);
}

TEST_F(DaseModelTest, InterferenceClampPreventsDivergence) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 1.0;
  d.requests_served = 100;
  d.bank_service_time = 10'000'000;  // absurd T_avg
  d.ellc_miss_scaled = 10'000;
  d.erb_miss = 100'000;
  d.blp = 1.0;
  d.blp_access = 0.0;
  s.total_requests_served = 200;
  DaseModel model({}, 0);
  const auto est = feed(model, s);
  EXPECT_TRUE(std::isfinite(est[0].slowdown_assigned));
  // ratio capped at 1/(1-0.95) = 20.
  EXPECT_LE(est[0].slowdown_assigned, 20.0 + 1e-9);
}

TEST_F(DaseModelTest, DivideByBlpAblation) {
  IntervalSample s = base_sample();
  AppIntervalData& d = s.apps[0];
  d.alpha = 0.5;
  d.requests_served = 5'000;
  d.bank_service_time = 250'000;
  d.erb_miss = 100;
  d.blp = 4.0;
  d.blp_access = 3.0;
  s.total_requests_served = 8'000;
  DaseModel with({}, 0);
  DaseModel without({.divide_by_blp = false}, 0);
  EXPECT_LT(feed(with, s)[0].slowdown_assigned,
            feed(without, s)[0].slowdown_assigned)
      << "Eq. 14 divides aggregate interference across parallel banks";
}

}  // namespace
}  // namespace gpusim
