#include "dase/estimator.hpp"

#include <gtest/gtest.h>

#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

/// Estimator returning a fixed, scriptable slowdown per interval.
class ScriptedEstimator final : public SlowdownEstimator {
 public:
  explicit ScriptedEstimator(int warmup) : SlowdownEstimator(warmup) {}
  std::string name() const override { return "scripted"; }
  std::vector<double> script;
  bool valid = true;

 protected:
  std::vector<SlowdownEstimate> estimate(const IntervalSample&,
                                         Gpu&) override {
    SlowdownEstimate e;
    e.valid = valid;
    e.slowdown_all = script.at(index_++);
    return {e};
  }

 private:
  std::size_t index_ = 0;
};

class EstimatorTest : public ::testing::Test {
 protected:
  EstimatorTest() : gpu_(cfg_, {AppLaunch{*find_app("VA"), 1}}) {}

  IntervalSample sample() {
    IntervalSample s;
    s.length = 1000;
    s.apps.resize(1);
    return s;
  }

  GpuConfig cfg_;
  Gpu gpu_;
};

TEST_F(EstimatorTest, WarmupIntervalsExcludedFromMean) {
  ScriptedEstimator est(/*warmup=*/2);
  est.script = {100.0, 100.0, 2.0, 4.0};
  for (int i = 0; i < 4; ++i) est.on_interval(sample(), gpu_);
  EXPECT_DOUBLE_EQ(est.mean_slowdown(0), 3.0);
  EXPECT_EQ(est.intervals_seen(), 4u);
}

TEST_F(EstimatorTest, NoValidSamplesDefaultsToOne) {
  ScriptedEstimator est(0);
  est.valid = false;
  est.script = {5.0, 5.0};
  est.on_interval(sample(), gpu_);
  est.on_interval(sample(), gpu_);
  EXPECT_DOUBLE_EQ(est.mean_slowdown(0), 1.0);
}

TEST_F(EstimatorTest, LatestAlwaysReflectsMostRecentInterval) {
  ScriptedEstimator est(5);  // warm-up longer than run
  est.script = {7.0, 9.0};
  est.on_interval(sample(), gpu_);
  EXPECT_DOUBLE_EQ(est.latest()[0].slowdown_all, 7.0);
  est.on_interval(sample(), gpu_);
  EXPECT_DOUBLE_EQ(est.latest()[0].slowdown_all, 9.0)
      << "latest() works during warm-up even though the mean excludes it";
  EXPECT_DOUBLE_EQ(est.mean_slowdown(0), 1.0);
}

}  // namespace
}  // namespace gpusim
