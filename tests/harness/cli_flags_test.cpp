// The CLI's one-table contract: every flag the parser accepts comes from
// flag_table(), and --help is generated from the same rows — so asserting
// "every table row appears in the rendered help, and every row resolves
// through find_flag" pins the property that a flag cannot exist without
// being documented.
#include "harness/cli_flags.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace gpusim {
namespace {

TEST(CliFlagsTest, EveryFlagAppearsInHelp) {
  const std::string help = render_usage("gpusim_cli");
  for (const FlagInfo& flag : flag_table()) {
    EXPECT_NE(help.find(flag.name), std::string::npos)
        << flag.name << " missing from --help output";
  }
}

TEST(CliFlagsTest, EveryFlagRoundTripsThroughFindFlag) {
  for (const FlagInfo& flag : flag_table()) {
    const FlagInfo* found = find_flag(flag.name);
    ASSERT_NE(found, nullptr) << flag.name;
    EXPECT_EQ(found->id, flag.id) << flag.name;
  }
}

TEST(CliFlagsTest, FlagNamesAreUniqueAndWellFormed) {
  std::set<std::string> names;
  std::set<FlagId> ids;
  for (const FlagInfo& flag : flag_table()) {
    const std::string name = flag.name;
    EXPECT_TRUE(name.rfind("--", 0) == 0) << name << " must start with --";
    EXPECT_TRUE(names.insert(name).second) << "duplicate flag " << name;
    EXPECT_TRUE(ids.insert(flag.id).second) << "duplicate id for " << name;
    ASSERT_NE(flag.help, nullptr) << name;
    EXPECT_NE(flag.help[0], '\0') << name << " has empty help";
  }
}

TEST(CliFlagsTest, ShortHelpAliasResolves) {
  const FlagInfo* flag = find_flag("-h");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->id, FlagId::kHelp);
}

TEST(CliFlagsTest, UnknownFlagsAreRejected) {
  EXPECT_EQ(find_flag("--no-such-flag"), nullptr);
  EXPECT_EQ(find_flag("apps"), nullptr);      // missing the dashes
  EXPECT_EQ(find_flag("--apps="), nullptr);   // inline values unsupported
  EXPECT_EQ(find_flag(""), nullptr);
}

TEST(CliFlagsTest, ExitCodeTableCoversTheContract) {
  const auto& table = exit_code_table();
  ASSERT_EQ(table.size(), 10u);  // 0..9, the documented contract
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table[i].code, static_cast<int>(i));
    ASSERT_NE(table[i].meaning, nullptr);
    EXPECT_NE(table[i].meaning[0], '\0');
  }
  const std::string help = render_usage("gpusim_cli");
  EXPECT_NE(help.find("exit codes:"), std::string::npos);
}

TEST(CliFlagsTest, ExitCodeForMapsTheRobustnessKinds) {
  EXPECT_EQ(exit_code_for(SimErrorKind::kInterrupted), 6);
  EXPECT_EQ(exit_code_for(SimErrorKind::kDeadlineExceeded), 7);
  EXPECT_EQ(exit_code_for(SimErrorKind::kBudgetExceeded), 8);
  EXPECT_EQ(exit_code_for(SimErrorKind::kQuarantined), 9);
  // Everything else is the generic simulation-error code.
  EXPECT_EQ(exit_code_for(SimErrorKind::kInvariant), 3);
  EXPECT_EQ(exit_code_for(SimErrorKind::kWatchdogStall), 3);
  EXPECT_EQ(exit_code_for(SimErrorKind::kConfig), 3);
  EXPECT_EQ(exit_code_for(SimErrorKind::kHarness), 3);
}

}  // namespace
}  // namespace gpusim
