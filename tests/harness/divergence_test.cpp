// Divergence auditor tests: identical runs audit clean across execution
// strategies (fast-forward on/off, thread placement); intentionally
// different runs are caught at the first sampled cycle with the diverging
// components named.
#include "harness/divergence.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/sim_error.hpp"
#include "harness/runner.hpp"
#include "kernels/app_registry.hpp"
#include "sched/policies.hpp"

namespace gpusim {
namespace {

std::unique_ptr<Simulation> make_sim(u64 base_seed) {
  GpuConfig cfg;
  std::vector<AppLaunch> launches;
  launches.push_back(AppLaunch{*find_app("SD"), harness_app_seed(base_seed, 0)});
  launches.push_back(AppLaunch{*find_app("SA"), harness_app_seed(base_seed, 1)});
  auto sim = std::make_unique<Simulation>(cfg, std::move(launches));
  sim->gpu().set_partition(even_partition(sim->gpu().num_sms(), 2));
  return sim;
}

TEST(DivergenceAudit, IdenticalRunsAuditClean) {
  auto a = make_sim(42);
  auto b = make_sim(42);
  const DivergenceReport report = audit_divergence(*a, *b, 40'000, 5'000);
  EXPECT_FALSE(report.diverged) << report.to_string();
  EXPECT_EQ(report.samples_checked, 9u);  // cycle 0 + 8 strides
  EXPECT_NE(report.to_string().find("no divergence"), std::string::npos);
}

TEST(DivergenceAudit, FastForwardOnOffAuditsClean) {
  auto a = make_sim(42);
  auto b = make_sim(42);
  a->set_fast_forward(true);
  b->set_fast_forward(false);
  const DivergenceReport report = audit_divergence(*a, *b, 60'000, 10'000);
  EXPECT_FALSE(report.diverged) << report.to_string();
}

TEST(DivergenceAudit, DifferentSeedsDivergeWithComponentsNamed) {
  auto a = make_sim(42);
  auto b = make_sim(43);
  const DivergenceReport report = audit_divergence(*a, *b, 40'000, 5'000);
  ASSERT_TRUE(report.diverged);
  EXPECT_EQ(report.first_divergent_cycle, 0u);  // differ before any cycle
  EXPECT_NE(report.hash_a, report.hash_b);
  EXPECT_FALSE(report.component_mismatches.empty());
  EXPECT_FALSE(report.dump_a.empty());
  EXPECT_FALSE(report.dump_b.empty());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("DIVERGENCE at cycle 0"), std::string::npos) << text;
  EXPECT_NE(text.find("component "), std::string::npos) << text;
}

TEST(DivergenceAudit, MidRunPerturbationIsLocalizedToFirstSample) {
  auto a = make_sim(42);
  auto b = make_sim(42);
  a->run(10'000);
  b->run(10'000);
  // Perturb one application's block counter in run B only.
  b->gpu().runtime(0).on_block_complete(0);
  const DivergenceReport report = audit_divergence(*a, *b, 20'000, 5'000);
  ASSERT_TRUE(report.diverged);
  EXPECT_EQ(report.first_divergent_cycle, 10'000u);
  bool names_app_runtime = false;
  for (const ComponentMismatch& m : report.component_mismatches) {
    if (m.name == "app_runtime[0]") names_app_runtime = true;
  }
  EXPECT_TRUE(names_app_runtime) << report.to_string();
}

TEST(DivergenceAudit, RejectsMisalignedStarts) {
  auto a = make_sim(42);
  auto b = make_sim(42);
  a->run(1'000);
  EXPECT_THROW(audit_divergence(*a, *b, 10'000, 1'000), SimError);
  auto c = make_sim(42);
  auto d = make_sim(42);
  EXPECT_THROW(audit_divergence(*c, *d, 10'000, 0), SimError);
}

TEST(DivergenceAudit, StateHashIndependentOfThreadPlacement) {
  // The --jobs N guarantee at the state level: running the same workload
  // on different threads produces the same state hash at every checkpoint.
  u64 hash_main = 0;
  u64 hash_thread = 0;
  {
    auto sim = make_sim(42);
    sim->run(30'000);
    hash_main = sim->state_hash();
  }
  std::thread worker([&hash_thread]() {
    auto sim = make_sim(42);
    sim->run(30'000);
    hash_thread = sim->state_hash();
  });
  worker.join();
  EXPECT_EQ(hash_main, hash_thread);
}

}  // namespace
}  // namespace gpusim
