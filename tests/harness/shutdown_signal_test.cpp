// Real-signal process tests (fork + kill), pinning two contracts that
// in-process unit tests cannot reach:
//
//   1. the shutdown handler's escape hatch: the first SIGINT/SIGTERM
//      requests a drain, the second hard-exits with status 130 from the
//      async-signal-safe handler itself;
//   2. crash-bundle atomicity under arbitrary process death: a SIGTERM
//      landing mid-emission may leave a ".tmp-" work directory behind, but
//      every *published* bundle directory is complete — rename-after-
//      manifest is the commit point, so a torn bundle is never visible
//      under its published name.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "common/sim_error.hpp"
#include "harness/crash_bundle.hpp"
#include "harness/runner.hpp"
#include "harness/shutdown.hpp"
#include "harness/triage.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

namespace fs = std::filesystem;

fs::path test_dir() {
  return fs::temp_directory_path() /
         ("gpusim_signal_" +
          std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
          "_" +
          ::testing::UnitTest::GetInstance()->current_test_info()->name());
}

int wait_for_exit(pid_t child) {
  int status = 0;
  waitpid(child, &status, 0);
  EXPECT_TRUE(WIFEXITED(status)) << "child must exit, not die on a signal";
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ShutdownSignalTest, FirstSignalDrainsSecondSignalHardExits130) {
  // Child A: one signal only — the handler must set the drain flag and
  // let the process keep running (it exits 42 itself).
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    install_shutdown_handlers();
    raise(SIGTERM);
    _exit(shutdown_requested() ? 42 : 43);
  }
  EXPECT_EQ(wait_for_exit(child), 42)
      << "one signal must drain, not terminate";

  // Child B: a second signal while the drain is still pending must
  // hard-exit 130 straight from the handler — the operator's escape hatch
  // out of a wedged drain.
  child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    install_shutdown_handlers();
    raise(SIGTERM);   // drain requested
    raise(SIGINT);    // operator is done waiting: _exit(130) in the handler
    _exit(44);        // unreachable if the contract holds
  }
  EXPECT_EQ(wait_for_exit(child), 130);
}

TEST(ShutdownSignalTest, SigtermMidEmissionNeverPublishesATornBundle) {
  const fs::path dir = test_dir();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path bundle_root = dir / "bundles";

  // Child: crash-loop with bundling armed.  No shutdown handlers — the
  // parent's SIGTERM takes the default disposition and kills the process
  // at an arbitrary instruction, the harshest version of the race.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    for (int i = 0; i < 200; ++i) {
      RunConfig rc;
      rc.co_run_cycles = 10'000;
      rc.cycle_budget = 2'000;
      rc.crash_bundle_dir = bundle_root.string();
      Workload w;
      w.apps.push_back(*find_app("SD"));
      w.apps.push_back(*find_app("SA"));
      try {
        ExperimentRunner runner(rc);
        runner.run(w, ModelSet{.dase = true});
      } catch (const SimError&) {
      }
    }
    _exit(0);
  }

  // Kill shortly after the first bundle publishes, while later emissions
  // are in flight.
  for (int i = 0; i < 60'000; ++i) {
    std::error_code ec;
    if (fs::exists(bundle_root, ec) &&
        !fs::is_empty(bundle_root, ec)) {
      break;
    }
    if (waitpid(child, nullptr, WNOHANG) == child) {
      FAIL() << "child finished before producing any bundle";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  kill(child, SIGTERM);
  int status = 0;
  waitpid(child, &status, 0);

  // Every published (non-".tmp-") directory must be a complete bundle:
  // manifest present, parseable, and triageable to a bit-exact VERIFIED.
  ASSERT_TRUE(fs::exists(bundle_root));
  int published = 0;
  int tmp_dirs = 0;
  for (const auto& entry : fs::directory_iterator(bundle_root)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(".tmp-", 0) == 0) {
      ++tmp_dirs;  // interrupted work-in-progress: legal, loaders skip it
      continue;
    }
    ++published;
    EXPECT_TRUE(fs::exists(entry.path() / "manifest.json"))
        << name << " published without its completeness marker";
    EXPECT_NO_THROW(read_crash_bundle_manifest(entry.path().string()))
        << name;
    std::ostringstream out;
    EXPECT_EQ(run_triage(entry.path().string(), out), 0)
        << name << ":\n" << out.str();
  }
  EXPECT_GE(published, 1);
  // (tmp_dirs may be 0 or 1 depending on where the signal landed; both
  // are correct.  What must never exist is a published torn bundle.)
  (void)tmp_dirs;

  fs::remove_all(dir);
}

}  // namespace
}  // namespace gpusim
