// Crash-forensics bundle tests: a terminal SimError in the runner (and in a
// chaos job) must publish one complete, atomically-renamed bundle whose
// manifest round-trips, and `run_triage` must replay the bundled state to
// the recorded failure cycle with a bit-exact state hash.  Also pins the
// negative space: tampered hashes report divergence (exit 4), malformed
// bundles are typed errors (exit 3), and in-progress ".tmp-" directories
// are never mistaken for bundles.
#include "harness/crash_bundle.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/sim_error.hpp"
#include "harness/chaos.hpp"
#include "harness/runner.hpp"
#include "harness/triage.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

namespace fs = std::filesystem;

Workload two_apps(const char* a, const char* b) {
  Workload w;
  w.apps.push_back(*find_app(a));
  w.apps.push_back(*find_app(b));
  return w;
}

class CrashBundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gpusim_bundle_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string bundle_root() const { return (dir_ / "bundles").string(); }

  /// Runs SD+SA into a cycle-budget kill with bundling armed and returns
  /// the published bundle directory.
  std::string crash_one_run(Cycle budget = 6'000) {
    RunConfig rc;
    rc.co_run_cycles = 20'000;
    rc.cycle_budget = budget;
    rc.crash_bundle_dir = bundle_root();
    const ModelSet models{.dase = true};
    ExperimentRunner runner(rc);
    try {
      runner.run(two_apps("SD", "SA"), models);
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), SimErrorKind::kBudgetExceeded);
    }
    for (const auto& entry : fs::directory_iterator(bundle_root())) {
      if (entry.path().filename().string().rfind(".tmp-", 0) != 0) {
        return entry.path().string();
      }
    }
    return "";
  }

  fs::path dir_;
};

TEST_F(CrashBundleTest, RunnerCrashPublishesACompleteBundle) {
  const std::string bundle = crash_one_run();
  ASSERT_FALSE(bundle.empty());
  EXPECT_TRUE(fs::exists(fs::path(bundle) / "manifest.json"));
  EXPECT_TRUE(fs::exists(fs::path(bundle) / "snapshot.simstate"));
  EXPECT_TRUE(fs::exists(fs::path(bundle) / "config.txt"));
  EXPECT_TRUE(fs::exists(fs::path(bundle) / "events.txt"));
  // No half-written work left behind.
  for (const auto& entry : fs::directory_iterator(bundle_root())) {
    EXPECT_EQ(entry.path().filename().string().rfind(".tmp-", 0),
              std::string::npos);
  }

  const CrashBundleManifest m = read_crash_bundle_manifest(bundle);
  EXPECT_EQ(m.schema, "gpusim-crash-bundle-v1");
  EXPECT_NE(m.build, 0u);
  EXPECT_EQ(m.ctx.mode, "run");
  EXPECT_EQ(m.ctx.label, "SD+SA");
  ASSERT_EQ(m.ctx.apps.size(), 2u);
  EXPECT_EQ(m.ctx.apps[0], "SD");
  EXPECT_EQ(m.ctx.apps[1], "SA");
  EXPECT_EQ(m.ctx.policy, "even");
  EXPECT_TRUE(m.ctx.dase);
  EXPECT_EQ(m.failure_cycle, 6'000u);
  EXPECT_NE(m.failure_state_hash, 0u);
  EXPECT_EQ(m.error_kind, "budget-exceeded");
  EXPECT_EQ(m.snapshot_file, "snapshot.simstate");
  EXPECT_NE(m.replay.find("--triage"), std::string::npos);
}

TEST_F(CrashBundleTest, TriageReplaysToTheExactFailureState) {
  const std::string bundle = crash_one_run();
  ASSERT_FALSE(bundle.empty());
  std::ostringstream out;
  EXPECT_EQ(run_triage(bundle, out), 0) << out.str();
  EXPECT_NE(out.str().find("VERIFIED"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("flight recorder:"), std::string::npos)
      << out.str();
}

TEST_F(CrashBundleTest, TamperedStateHashReportsDivergence) {
  const std::string bundle = crash_one_run();
  ASSERT_FALSE(bundle.empty());
  const fs::path manifest = fs::path(bundle) / "manifest.json";
  std::ifstream in(manifest);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::string key = "\"failure_state_hash\": ";
  const std::size_t pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  // Flip the recorded hash's first digit to a different digit.
  const std::size_t digit = pos + key.size();
  text[digit] = text[digit] == '1' ? '2' : '1';
  std::ofstream(manifest) << text;

  std::ostringstream out;
  EXPECT_EQ(run_triage(bundle, out), 4);
  EXPECT_NE(out.str().find("MISMATCH"), std::string::npos) << out.str();
}

TEST_F(CrashBundleTest, MalformedBundlesAreTypedNotFatal) {
  // Nonexistent directory.
  std::ostringstream out1;
  EXPECT_EQ(run_triage((dir_ / "no-such-bundle").string(), out1), 3);

  // Directory without a manifest (an interrupted emission, post-crash).
  const fs::path torn = dir_ / ".tmp-run-SD+SA-c100";
  fs::create_directories(torn);
  std::ostringstream out2;
  EXPECT_EQ(run_triage(torn.string(), out2), 3);

  // Manifest with the wrong schema.
  const fs::path bad = dir_ / "bad-bundle";
  fs::create_directories(bad);
  std::ofstream(bad / "manifest.json")
      << "{\n\"schema\": \"something-else\"\n}\n";
  EXPECT_THROW(read_crash_bundle_manifest(bad.string()), SimError);
  std::ostringstream out3;
  EXPECT_EQ(run_triage(bad.string(), out3), 3);
}

TEST_F(CrashBundleTest, ManifestPathTraversalIsRejected) {
  const std::string bundle = crash_one_run();
  ASSERT_FALSE(bundle.empty());
  const fs::path manifest = fs::path(bundle) / "manifest.json";
  std::ifstream in(manifest);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::string key = "\"snapshot\": \"snapshot.simstate\"";
  const std::size_t pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, key.size(), "\"snapshot\": \"../../etc/passwd\"");
  std::ofstream(manifest) << text;

  try {
    read_crash_bundle_manifest(bundle);
    FAIL() << "expected SimError(kSnapshot)";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot);
  }
}

TEST_F(CrashBundleTest, CollidingBundleNamesGetSuffixes) {
  // Two identical crashes land under distinct directories.
  crash_one_run();
  crash_one_run();
  int published = 0;
  for (const auto& entry : fs::directory_iterator(bundle_root())) {
    if (entry.path().filename().string().rfind(".tmp-", 0) != 0) ++published;
  }
  EXPECT_EQ(published, 2);
}

TEST_F(CrashBundleTest, ChaosJobBundlesAndTriagesGuardCaughtFailures) {
  ChaosOptions opts;
  opts.cycles = 30'000;
  opts.recovery = false;
  opts.crash_bundle_dir = bundle_root();
  const FaultSchedule schedule = FaultSchedule::parse("stall:part=0,from=2000");
  const ChaosJobResult r =
      run_chaos_job(opts, two_apps("SD", "SA"), /*dase_fair=*/false, schedule);
  ASSERT_EQ(r.outcome, ChaosOutcome::kHang) << r.detail;

  std::string bundle;
  for (const auto& entry : fs::directory_iterator(bundle_root())) {
    if (entry.path().filename().string().rfind(".tmp-", 0) != 0) {
      bundle = entry.path().string();
    }
  }
  ASSERT_FALSE(bundle.empty());
  const CrashBundleManifest m = read_crash_bundle_manifest(bundle);
  EXPECT_EQ(m.ctx.mode, "chaos");
  EXPECT_EQ(m.ctx.faults, schedule.to_string());
  EXPECT_EQ(m.error_kind, "watchdog-stall");

  std::ostringstream out;
  EXPECT_EQ(run_triage(bundle, out), 0) << out.str();
}

TEST_F(CrashBundleTest, InterruptedRunsNeverBundle) {
  RunConfig rc;
  rc.co_run_cycles = 50'000;
  rc.crash_bundle_dir = bundle_root();
  std::atomic<bool> cancel{true};  // cancel before the first chunk
  rc.cancel = &cancel;
  const ModelSet models{.dase = true};
  ExperimentRunner runner(rc);
  EXPECT_THROW(
      {
        try {
          runner.run(two_apps("SD", "SA"), models);
        } catch (const SimError& e) {
          EXPECT_EQ(e.kind(), SimErrorKind::kInterrupted);
          throw;
        }
      },
      SimError);
  // A drain is not a crash: no bundle directory appears at all.
  EXPECT_FALSE(fs::exists(bundle_root()));
}

}  // namespace
}  // namespace gpusim
