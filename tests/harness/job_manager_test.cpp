// JobManager unit + integration tests: spec parsing, the circuit breaker,
// retry classification, manifest resume, and the any-worker-count
// determinism of the final batch report.
#include "harness/job_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/sim_error.hpp"

namespace gpusim {
namespace {

namespace fs = std::filesystem;

class JobManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gpusim_jobs_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  JobManagerOptions options(const std::string& manifest) const {
    JobManagerOptions opts;
    opts.manifest_path = path(manifest);
    opts.default_cycles = 6'000;
    opts.backoff_base_ms = 0;  // tests never sleep between retries
    opts.snapshot_every = 0;
    return opts;
  }

  fs::path dir_;
};

// ---- JobSpec parsing ---------------------------------------------------

TEST_F(JobManagerTest, ParsesRunSpec) {
  const JobSpec spec = JobSpec::parse(
      "run apps=SD,SA policy=dase-fair cycles=12345 watchdog=777 "
      "deadline-ms=250 max-retries=1 cycle-budget=99 mem-budget=88",
      3);
  EXPECT_EQ(spec.index, 3);
  EXPECT_EQ(spec.type, JobType::kRun);
  EXPECT_EQ(spec.apps, (std::vector<std::string>{"SD", "SA"}));
  EXPECT_EQ(spec.policy, "dase-fair");
  EXPECT_EQ(spec.cycles, 12345u);
  EXPECT_EQ(spec.watchdog, 777u);
  EXPECT_EQ(spec.deadline_ms, 250.0);
  EXPECT_EQ(spec.max_retries, 1);
  EXPECT_EQ(spec.cycle_budget, 99u);
  EXPECT_EQ(spec.mem_budget, 88u);
}

TEST_F(JobManagerTest, ParsesSweepAndChaosSpecs) {
  const JobSpec sweep = JobSpec::parse("sweep which=random:6 cycles=5000", 0);
  EXPECT_EQ(sweep.type, JobType::kSweep);
  EXPECT_EQ(sweep.sweep_which, "random:6");

  const JobSpec chaos = JobSpec::parse("chaos schedules=8 seed=7", 1);
  EXPECT_EQ(chaos.type, JobType::kChaos);
  EXPECT_EQ(chaos.chaos_schedules, 8);
  EXPECT_EQ(chaos.chaos_seed, 7u);
}

TEST_F(JobManagerTest, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "",                                   // empty
      "launch apps=SD,SA",                  // unknown type
      "run",                                // missing apps=
      "run apps=",                          // no applications
      "run apps=SD,NOPE",                   // unknown app
      "run apps=SD,SA policy=leftover",     // unsupported policy
      "run apps=SD,SA cycles=abc",          // non-numeric
      "run apps=SD,SA cycles=0",            // below minimum
      "run apps=SD,SA faults=bogus",        // unparseable schedule
      "run apps=SD,SA which=all",           // sweep key on a run job
      "sweep",                              // missing which=
      "sweep which=some",                   // bad which
      "sweep which=random:0",               // zero count
      "chaos",                              // missing schedules=
      "chaos schedules=0",                  // zero schedules
  };
  for (const std::string& line : bad) {
    try {
      JobSpec::parse(line, 0);
      FAIL() << "accepted: '" << line << "'";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), SimErrorKind::kConfig) << line;
    }
  }
}

TEST_F(JobManagerTest, ParsesJobFileWithCommentsAndBlanks) {
  const std::string file = path("batch.jobs");
  {
    std::ofstream out(file);
    out << "# a comment line\n"
        << "\n"
        << "  run apps=SD,SA cycles=5000   # trailing comment\n"
        << "sweep which=random:2\n";
  }
  const std::vector<JobSpec> specs = parse_job_file(file);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].type, JobType::kRun);
  EXPECT_EQ(specs[0].raw, "run apps=SD,SA cycles=5000");
  EXPECT_EQ(specs[1].index, 1);
}

TEST_F(JobManagerTest, JobFileErrorsNameTheLine) {
  const std::string file = path("bad.jobs");
  {
    std::ofstream out(file);
    out << "run apps=SD,SA\n"
        << "run apps=WAT\n";
  }
  try {
    parse_job_file(file);
    FAIL() << "accepted a bad job file";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kConfig);
    EXPECT_NE(std::string(e.what()).find("file_line: 2"), std::string::npos);
  }
  EXPECT_THROW(parse_job_file(path("missing.jobs")), SimError);
}

TEST_F(JobManagerTest, ConfigKeyIgnoresIndexOnly) {
  const JobSpec a = JobSpec::parse("run apps=SD,SA cycles=5000", 0);
  const JobSpec b = JobSpec::parse("run apps=SD,SA cycles=5000", 7);
  EXPECT_EQ(a.config_key(), b.config_key());
  const JobSpec c = JobSpec::parse("run apps=SD,SA cycles=5001", 0);
  EXPECT_NE(a.config_key(), c.config_key());
  const JobSpec d = JobSpec::parse("run apps=SD,SA policy=dase-fair "
                                   "cycles=5000", 0);
  EXPECT_NE(a.config_key(), d.config_key());
}

TEST_F(JobManagerTest, ReproducerCommandReplaysTheConfig) {
  JobManagerOptions opts = options("m.jsonl");
  const JobSpec spec = JobSpec::parse(
      "run apps=SD,SA cycles=20000 watchdog=2000 faults=stall:part=0,from=10",
      0);
  const std::string cmd = job_reproducer_command(spec, opts);
  EXPECT_EQ(cmd,
            "gpusim_cli --apps SD,SA --cycles 20000 --watchdog 2000 "
            "--fault-schedule 'stall:part=0,from=10'");
}

// ---- report plumbing ---------------------------------------------------

TEST_F(JobManagerTest, ExitCodePrecedence) {
  JobBatchReport report;
  EXPECT_EQ(report.exit_code(), 0);
  report.failed = 1;
  JobResult failed;
  failed.status = JobStatus::kFailed;
  failed.error_kind = "watchdog-stall";
  report.jobs.push_back(failed);
  EXPECT_EQ(report.exit_code(), 1);
  report.jobs.back().error_kind = "budget-exceeded";
  EXPECT_EQ(report.exit_code(), 8);
  JobResult deadline;
  deadline.status = JobStatus::kFailed;
  deadline.error_kind = "deadline-exceeded";
  report.jobs.push_back(deadline);
  EXPECT_EQ(report.exit_code(), 7);  // deadline outranks budget
  report.quarantined = 1;
  EXPECT_EQ(report.exit_code(), 9);
  report.interrupted = true;
  EXPECT_EQ(report.exit_code(), 6);  // interrupted outranks everything
}

// ---- execution ---------------------------------------------------------

TEST_F(JobManagerTest, RunsAMixedBatchAndWritesTheManifest) {
  const std::string file = path("mix.jobs");
  {
    std::ofstream out(file);
    out << "run apps=SD,SA cycles=5000\n"
        << "sweep which=random:2 cycles=4000\n"
        << "chaos schedules=2 seed=3 cycles=4000\n";
  }
  JobManager manager(options("mix.manifest.jsonl"));
  const JobBatchReport report = manager.run(parse_job_file(file));
  EXPECT_EQ(report.total, 3);
  EXPECT_EQ(report.ok, 3);
  EXPECT_EQ(report.exit_code(), 0);
  ASSERT_EQ(report.jobs.size(), 3u);
  for (const JobResult& r : report.jobs) {
    EXPECT_EQ(r.status, JobStatus::kOk);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_FALSE(r.payload_json.empty());
    EXPECT_EQ(r.payload_json.find('\n'), std::string::npos)
        << "payload must be one line for the JSONL manifest";
  }

  // The manifest holds a header, one spec line and one result line per job.
  std::ifstream in(path("mix.manifest.jsonl"));
  std::string line;
  int headers = 0, specs = 0, results = 0;
  while (std::getline(in, line)) {
    if (line.rfind("{\"gpusim_jobs\":", 0) == 0) ++headers;
    else if (line.find("\"spec\":\"") != std::string::npos) ++specs;
    else if (line.find("\"status\":\"") != std::string::npos) ++results;
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(specs, 3);
  EXPECT_EQ(results, 3);

  // A fresh run() must refuse the already-populated manifest.
  JobManager again(options("mix.manifest.jsonl"));
  EXPECT_THROW(again.run(parse_job_file(file)), SimError);
}

TEST_F(JobManagerTest, ResumeOfCompleteBatchReplaysVerbatim) {
  const std::string file = path("b.jobs");
  {
    std::ofstream out(file);
    out << "run apps=SD,SA cycles=5000\n"
        << "run apps=VA,CT cycles=5000\n";
  }
  JobManager fresh(options("b.manifest.jsonl"));
  const JobBatchReport first = fresh.run(parse_job_file(file));
  EXPECT_EQ(first.ok, 2);

  JobManager resumed(options("b.manifest.jsonl"));
  const JobBatchReport second = resumed.resume();
  EXPECT_EQ(second.ok, 2);
  EXPECT_EQ(second.exit_code(), 0);
  for (const JobResult& r : second.jobs) EXPECT_TRUE(r.from_manifest);
  EXPECT_EQ(first.to_json(), second.to_json());
}

TEST_F(JobManagerTest, TransientFailuresRetryThenRecordTheError) {
  // A stalled partition under a tight watchdog fails deterministically with
  // kWatchdogStall — a transient kind, so all attempts are spent.
  const std::string file = path("r.jobs");
  {
    std::ofstream out(file);
    out << "run apps=SD,SA cycles=20000 watchdog=2000 "
           "faults=stall:part=0,from=10 max-retries=2\n";
  }
  JobManager manager(options("r.manifest.jsonl"));
  const JobBatchReport report = manager.run(parse_job_file(file));
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(report.exit_code(), 1);
  const JobResult& r = report.jobs[0];
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.attempts, 3);  // 1 + max-retries
  EXPECT_EQ(r.error_kind, "watchdog-stall");
  EXPECT_FALSE(r.reproducer.empty());
}

TEST_F(JobManagerTest, BudgetErrorsFailFastAndMapToExitEight) {
  // A cycle budget below the requested run length is a deterministic
  // config-shaped failure: one attempt only, no retries.
  const std::string file = path("f.jobs");
  {
    std::ofstream out(file);
    out << "run apps=SD,SA cycles=20000 cycle-budget=4000 max-retries=5\n";
  }
  JobManager manager(options("f.manifest.jsonl"));
  const JobBatchReport report = manager.run(parse_job_file(file));
  EXPECT_EQ(report.failed, 1);
  const JobResult& r = report.jobs[0];
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.error_kind, "budget-exceeded");
  EXPECT_EQ(report.exit_code(), 8);
}

TEST_F(JobManagerTest, QuarantineIsDeterministicAcrossWorkerCounts) {
  const std::string file = path("q.jobs");
  {
    std::ofstream out(file);
    // Three instances of one crash-looping config interleaved with healthy
    // jobs; quarantine_after=2 must quarantine exactly the third instance,
    // no matter how many workers race.
    out << "run apps=SD,SA cycles=20000 watchdog=2000 "
           "faults=stall:part=0,from=10 max-retries=0\n"
        << "run apps=VA,CT cycles=5000\n"
        << "run apps=SD,SA cycles=20000 watchdog=2000 "
           "faults=stall:part=0,from=10 max-retries=0\n"
        << "run apps=SD,SA cycles=20000 watchdog=2000 "
           "faults=stall:part=0,from=10 max-retries=0\n"
        << "run apps=AA,SD cycles=5000\n";
  }
  std::string reference;
  for (const int jobs : {1, 4}) {
    JobManagerOptions opts =
        options("q" + std::to_string(jobs) + ".manifest.jsonl");
    opts.quarantine_after = 2;
    opts.jobs = jobs;
    JobManager manager(opts);
    const JobBatchReport report = manager.run(parse_job_file(file));
    EXPECT_EQ(report.ok, 2) << "jobs=" << jobs;
    EXPECT_EQ(report.failed, 2) << "jobs=" << jobs;
    EXPECT_EQ(report.quarantined, 1) << "jobs=" << jobs;
    EXPECT_EQ(report.jobs[3].status, JobStatus::kQuarantined);
    EXPECT_EQ(report.jobs[3].error_kind, "quarantined");
    EXPECT_FALSE(report.jobs[3].reproducer.empty());
    EXPECT_EQ(report.exit_code(), 9);
    if (reference.empty()) {
      reference = report.to_json();
    } else {
      EXPECT_EQ(report.to_json(), reference)
          << "report differs between worker counts";
    }
  }
}

TEST_F(JobManagerTest, CancelFlagDrainsAndResumeCompletes) {
  const std::string file = path("c.jobs");
  {
    std::ofstream out(file);
    out << "run apps=SD,SA cycles=5000\n"
        << "run apps=VA,CT cycles=5000\n";
  }
  // Reference: the uninterrupted report.
  JobManager ref_manager(options("cref.manifest.jsonl"));
  const JobBatchReport reference = ref_manager.run(parse_job_file(file));

  // Cancel already set: the batch drains immediately, everything pending.
  std::atomic<bool> cancel{true};
  JobManagerOptions opts = options("c.manifest.jsonl");
  opts.cancel = &cancel;
  JobManager manager(opts);
  const JobBatchReport drained = manager.run(parse_job_file(file));
  EXPECT_TRUE(drained.interrupted);
  EXPECT_EQ(drained.pending, 2);
  EXPECT_EQ(drained.exit_code(), 6);

  // Resume with the flag cleared finishes the batch; the report matches the
  // uninterrupted reference byte for byte.
  cancel.store(false);
  JobManager resumed(opts);
  const JobBatchReport done = resumed.resume();
  EXPECT_FALSE(done.interrupted);
  EXPECT_EQ(done.ok, 2);
  EXPECT_EQ(done.to_json(), reference.to_json());
}

TEST_F(JobManagerTest, TornManifestLinesAreSkippedAndReRun) {
  const std::string file = path("t.jobs");
  {
    std::ofstream out(file);
    out << "run apps=SD,SA cycles=5000\n"
        << "run apps=VA,CT cycles=5000\n";
  }
  JobManager fresh(options("t.manifest.jsonl"));
  const JobBatchReport first = fresh.run(parse_job_file(file));
  EXPECT_EQ(first.ok, 2);

  // Tear the last result line the way a mid-write kill would.
  std::string manifest;
  {
    std::ifstream in(path("t.manifest.jsonl"));
    std::ostringstream ss;
    ss << in.rdbuf();
    manifest = ss.str();
  }
  const auto cut = manifest.rfind("\"payload\"");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path("t.manifest.jsonl"), std::ios::trunc);
    out << manifest.substr(0, cut);  // no closing brace, no newline
  }

  JobManager resumed(options("t.manifest.jsonl"));
  const JobBatchReport second = resumed.resume();
  EXPECT_EQ(resumed.torn_lines_skipped(), 1);
  EXPECT_EQ(second.ok, 2);  // the torn job re-ran
  EXPECT_EQ(second.to_json(), first.to_json());
}

}  // namespace
}  // namespace gpusim
