// Harness-level contracts of the policy safety governor (DESIGN.md §14):
// a healthy co-run is byte-identical with the governor on or off, breaker
// interventions surface through ExperimentRunner results, adversarial
// fault schedules never push an invalid or low-confidence partition into
// the GPU, and governor state rides the full-simulation snapshot walk —
// including snapshots exchanged between --governor and --no-governor runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/flight_recorder.hpp"
#include "common/sim_error.hpp"
#include "dase/dase_model.hpp"
#include "gpu/gpu.hpp"
#include "gpu/simulator.hpp"
#include "harness/chaos.hpp"
#include "harness/runner.hpp"
#include "kernels/app_registry.hpp"
#include "kernels/workload_sets.hpp"
#include "sched/governor.hpp"

namespace gpusim {
namespace {

Workload unfair_pair() {
  Workload w;
  w.apps.push_back(*find_app("VA"));
  w.apps.push_back(*find_app("SD"));
  return w;
}

RunConfig quick_rc(bool governor_on) {
  RunConfig rc;
  rc.co_run_cycles = 60'000;
  rc.gpu.estimation_interval = 10'000;
  rc.governor = governor_on;
  return rc;
}

bool has_event(const Gpu& gpu, FrEvent kind) {
  for (const FlightEvent& e : gpu.flight_recorder().events_in_order()) {
    if (e.kind == kind) return true;
  }
  return false;
}

/// Records the post-boundary world every interval: the actual SM owners,
/// the estimator's sanitizer counter, and the boundary cycle.  Attached
/// after the governor so it sees exactly what the next epoch starts from.
class PartitionWatch final : public IntervalObserver {
 public:
  explicit PartitionWatch(const SlowdownEstimator* est) : est_(est) {}

  struct Tick {
    Cycle cycle = 0;
    u64 sanitized = 0;
    std::vector<AppId> partition;
  };
  std::vector<Tick> ticks;

  void on_interval(const IntervalSample&, Gpu& gpu) override {
    ticks.push_back(
        {gpu.now(), est_->sanitized_estimates(), gpu.current_partition()});
  }

 private:
  const SlowdownEstimator* est_;
};

// With no pathology to intervene on, an enabled governor must be
// invisible: the simulated GPU evolves bit-identically with the governor
// on or off, for both the static even split and the live DASE-Fair loop.
TEST(GovernorHarnessTest, HealthyRunIsByteIdenticalWithGovernorOnOrOff) {
  const Workload workload = unfair_pair();
  const ModelSet models{.dase = true};
  for (const PolicyKind policy : {PolicyKind::kEven, PolicyKind::kDaseFair}) {
    CoRunAssembly on = assemble_corun(quick_rc(true), workload, models, policy);
    CoRunAssembly off =
        assemble_corun(quick_rc(false), workload, models, policy);
    on.sim->run(60'000);
    off.sim->run(60'000);
    EXPECT_EQ(on.sim->gpu().state_hash(), off.sim->gpu().state_hash())
        << "policy " << to_string(policy);
    EXPECT_EQ(on.governor->interventions(), 0u) << "policy "
                                                << to_string(policy);
  }
}

// A static 15/1 split pins the second app at the min-SM floor; the
// starvation breaker must trip and the intervention must surface through
// the ExperimentRunner result exactly when the governor is enabled.
TEST(GovernorHarnessTest, StarvedSplitSurfacesInterventionsThroughTheRunner) {
  const Workload workload = unfair_pair();
  const ModelSet models{.dase = true};
  const std::vector<int> split = {15, 1};

  RunConfig rc = quick_rc(true);
  rc.co_run_cycles = 40'000;
  rc.gpu.governor_starvation_window = 2;
  ExperimentRunner on(rc);
  const CoRunResult guarded =
      on.run(workload, models, PolicyKind::kEven, &split);
  EXPECT_GE(guarded.governor_interventions, 1u);

  rc.governor = false;
  ExperimentRunner off(rc);
  const CoRunResult unguarded =
      off.run(workload, models, PolicyKind::kEven, &split);
  EXPECT_EQ(unguarded.governor_interventions, 0u);
}

// With the trip allowance at one, the first starvation trip must abandon
// the split for the even-partition fallback and say so on the recorder.
TEST(GovernorHarnessTest, StarvationFallbackAbandonsTheSplitForEven) {
  const Workload workload = unfair_pair();
  const ModelSet models{.dase = true};
  const std::vector<int> split = {15, 1};

  RunConfig rc = quick_rc(true);
  rc.gpu.governor_starvation_window = 2;
  rc.gpu.governor_breaker_trips = 1;
  rc.gpu.flight_recorder_events = 4096;
  CoRunAssembly a = assemble_corun(rc, workload, models, PolicyKind::kEven,
                                   &split);
  a.sim->run(60'000);

  EXPECT_TRUE(a.governor->fell_back_even());
  EXPECT_GE(a.governor->breaker_trips(), 1u);
  EXPECT_GE(a.governor->fallbacks(), 1u);
  EXPECT_TRUE(has_event(a.sim->gpu(), FrEvent::kGovBreakerTrip));
  EXPECT_TRUE(has_event(a.sim->gpu(), FrEvent::kGovFallbackEven));
  // The starved app is being handed SMs back (drains permitting).
  EXPECT_GE(a.sim->gpu().sms_assigned(1), 1);
}

// Adversarial schedule — windowed partition stalls, a NACK and a dropped
// response with the modeled retry recovery armed.  Whatever the estimator
// makes of that, the partition visible at every epoch boundary must stay
// structurally valid, and no migration may start on an epoch whose
// estimates needed the sanitizer.
TEST(GovernorHarnessTest, AdversarialScheduleNeverYieldsAnInvalidPartition) {
  const Workload workload = unfair_pair();
  const ModelSet models{.dase = true};

  RunConfig rc = quick_rc(true);
  rc.co_run_cycles = 100'000;
  rc.gpu.flight_recorder_events = 4096;
  rc.gpu.mshr_retry_enabled = true;
  rc.gpu.mshr_retry_timeout = 10'000;
  rc.faults = FaultSchedule{}
                  .stall_partition(1, 20'000, 28'000)
                  .stall_partition(3, 45'000, 52'000)
                  .nack_response(30'000, 400)
                  .drop_response_nth(500);

  CoRunAssembly a = assemble_corun(rc, workload, models, PolicyKind::kDaseFair);
  PartitionWatch watch(a.dase.get());
  a.sim->add_observer(&watch);
  a.sim->run(rc.co_run_cycles);

  ASSERT_GE(watch.ticks.size(), 5u);
  const int num_apps = a.sim->gpu().num_apps();
  for (const PartitionWatch::Tick& t : watch.ticks) {
    ASSERT_EQ(t.partition.size(), 16u);
    std::vector<int> owned(static_cast<std::size_t>(num_apps), 0);
    for (const AppId owner : t.partition) {
      ASSERT_GE(owner, 0) << "unowned SM at cycle " << t.cycle;
      ASSERT_LT(owner, num_apps) << "bogus owner at cycle " << t.cycle;
      ++owned[static_cast<std::size_t>(owner)];
    }
    for (int app = 0; app < num_apps; ++app) {
      EXPECT_GE(owned[static_cast<std::size_t>(app)], 1)
          << "app " << app << " starved out at cycle " << t.cycle;
    }
  }

  // No migration may have been requested at a boundary whose epoch the
  // sanitizer had to repair (the governor holds the last-good partition).
  for (std::size_t k = 1; k < watch.ticks.size(); ++k) {
    if (watch.ticks[k].sanitized == watch.ticks[k - 1].sanitized) continue;
    for (const FlightEvent& e :
         a.sim->gpu().flight_recorder().events_in_order()) {
      if (e.kind == FrEvent::kMigrationRequested) {
        EXPECT_NE(e.cycle, watch.ticks[k].cycle)
            << "migration forwarded on a sanitized epoch";
      }
    }
  }
}

// Governor state (epochs, last-good partition, breaker counters) rides
// the full-simulation snapshot: restoring into a freshly assembled co-run
// reproduces the byte stream and the continued run exactly.
TEST(GovernorHarnessTest, GovernorStateRidesTheFullSimulationSnapshot) {
  const Workload workload = unfair_pair();
  const ModelSet models{.dase = true};

  CoRunAssembly a =
      assemble_corun(quick_rc(true), workload, models, PolicyKind::kDaseFair);
  a.sim->run(60'000);
  const std::vector<u8> bytes = a.sim->snapshot();

  CoRunAssembly b =
      assemble_corun(quick_rc(true), workload, models, PolicyKind::kDaseFair);
  b.sim->restore(bytes);
  EXPECT_EQ(a.sim->state_hash(), b.sim->state_hash());
  EXPECT_EQ(bytes, b.sim->snapshot());

  a.sim->run(20'000);
  b.sim->run(20'000);
  EXPECT_EQ(a.sim->state_hash(), b.sim->state_hash());
}

// The governor observer is attached (and serialized) whether enabled or
// not, so a snapshot taken under --governor restores under --no-governor
// and vice versa: the flag is caller configuration, not simulated state.
TEST(GovernorHarnessTest, SnapshotsInterchangeBetweenGovernorOnAndOff) {
  const Workload workload = unfair_pair();
  const ModelSet models{.dase = true};

  for (const bool first_on : {true, false}) {
    CoRunAssembly first = assemble_corun(quick_rc(first_on), workload, models,
                                         PolicyKind::kDaseFair);
    first.sim->run(40'000);
    const std::vector<u8> bytes = first.sim->snapshot();

    CoRunAssembly second = assemble_corun(quick_rc(!first_on), workload,
                                          models, PolicyKind::kDaseFair);
    ASSERT_NO_THROW(second.sim->restore(bytes))
        << "snapshot taken with governor " << (first_on ? "on" : "off");
    EXPECT_EQ(second.sim->gpu().now(), 40'000u);
    ASSERT_NO_THROW(second.sim->run(20'000));
    EXPECT_EQ(second.sim->gpu().now(), 60'000u);
  }
}

// A partition stalled forever must land a governed chaos job in the hang
// class — the one bucket the triage runbook sends to the drain/watchdog
// page — never in "recovered" or an unclassified escape.
TEST(GovernorHarnessTest, StallForeverChaosJobLandsInTheHangClass) {
  ChaosOptions opts;
  opts.cycles = 40'000;
  opts.recovery = false;
  opts.governor = true;
  const FaultSchedule wedge = FaultSchedule{}.stall_partition(0, 2'000, 0);

  const ChaosJobResult r =
      run_chaos_job(opts, unfair_pair(), /*dase_fair=*/true, wedge);
  EXPECT_EQ(r.outcome, ChaosOutcome::kHang) << r.detail;
  EXPECT_FALSE(r.detail.empty());
}

}  // namespace
}  // namespace gpusim
