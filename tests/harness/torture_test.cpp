// Corruption torture: every loader in the forensics path — the snapshot
// restorer, the crash-bundle manifest reader, and the whole --triage
// pipeline — must survive arbitrary byte-level damage (truncations, bit
// flips, torn files) with a typed SimError or a clean result, never a
// crash, hang or silent acceptance of corrupt state.  tools/check_sanitize.sh
// runs this suite under ASan/UBSan, which is what turns "didn't crash in
// the test harness" into "provably no out-of-bounds read or UB".
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/sim_error.hpp"
#include "gpu/simulator.hpp"
#include "gpu/snapshot.hpp"
#include "harness/crash_bundle.hpp"
#include "harness/runner.hpp"
#include "harness/triage.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

namespace fs = std::filesystem;

/// SplitMix64: deterministic corruption positions, independent of libc.
u64 splitmix(u64& state) {
  state += 0x9E3779B97F4A7C15ull;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<unsigned char> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gpusim_torture_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    // One real crash bundle to torture: SD+SA killed by a cycle budget.
    rc_.co_run_cycles = 20'000;
    rc_.cycle_budget = 5'000;
    rc_.crash_bundle_dir = (dir_ / "bundles").string();
    workload_.apps.push_back(*find_app("SD"));
    workload_.apps.push_back(*find_app("SA"));
    ExperimentRunner runner(rc_);
    try {
      runner.run(workload_, models_);
    } catch (const SimError&) {
    }
    for (const auto& entry : fs::directory_iterator(rc_.crash_bundle_dir)) {
      if (entry.path().filename().string().rfind(".tmp-", 0) != 0) {
        bundle_ = entry.path();
      }
    }
    ASSERT_FALSE(bundle_.empty());
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A fresh simulation assembled exactly like the crashed one, the way
  /// triage does it — the restore target for snapshot torture.
  CoRunAssembly fresh_assembly() {
    return assemble_corun(rc_, workload_, models_, PolicyKind::kEven);
  }

  fs::path dir_;
  fs::path bundle_;
  RunConfig rc_;
  Workload workload_;
  ModelSet models_{.dase = true};
};

TEST_F(TortureTest, SnapshotTruncationsAlwaysRaiseTypedErrors) {
  const CrashBundleManifest m = read_crash_bundle_manifest(bundle_.string());
  const std::vector<unsigned char> orig =
      read_file(bundle_ / "snapshot.simstate");
  ASSERT_GT(orig.size(), 64u);
  const fs::path mutant = dir_ / "truncated.simstate";

  // A spread of truncation points: inside the header, on the payload
  // boundary, and scattered through the payload (including length 0).
  std::vector<std::size_t> cuts = {0, 1, 7, 8, 15, 16, 31, 63};
  for (int i = 1; i <= 24; ++i) {
    cuts.push_back(orig.size() * static_cast<std::size_t>(i) / 25);
  }
  for (const std::size_t cut : cuts) {
    if (cut >= orig.size()) continue;
    write_file(mutant,
               std::vector<unsigned char>(orig.begin(),
                                          orig.begin() +
                                              static_cast<std::ptrdiff_t>(cut)));
    CoRunAssembly assembly = fresh_assembly();
    try {
      restore_snapshot_file(mutant.string(), *assembly.sim,
                            m.ctx.fingerprint);
      FAIL() << "truncation to " << cut << " bytes restored cleanly";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot) << "cut=" << cut;
    }
  }
}

TEST_F(TortureTest, SnapshotBitFlipsNeverRestoreSilently) {
  const CrashBundleManifest m = read_crash_bundle_manifest(bundle_.string());
  const std::vector<unsigned char> orig =
      read_file(bundle_ / "snapshot.simstate");
  const fs::path mutant = dir_ / "flipped.simstate";

  u64 rng = 0xC0FFEE;
  int rejected = 0;
  constexpr int kFlips = 160;
  for (int i = 0; i < kFlips; ++i) {
    std::vector<unsigned char> bytes = orig;
    const std::size_t pos =
        static_cast<std::size_t>(splitmix(rng) % bytes.size());
    bytes[pos] ^=
        static_cast<unsigned char>(1u << (splitmix(rng) % 8));
    write_file(mutant, bytes);
    CoRunAssembly assembly = fresh_assembly();
    try {
      restore_snapshot_file(mutant.string(), *assembly.sim,
                            m.ctx.fingerprint);
      // The only header bytes the integrity chain deliberately leaves
      // uncovered are the informational build/cycle fields; a flip there
      // may restore cleanly, but then the restored *state* must still be
      // bit-exact.  Silent acceptance of corrupt state is the one
      // forbidden outcome.
      EXPECT_EQ(assembly.sim->state_hash(), m.failure_state_hash)
          << "flip at byte " << pos << " restored corrupt state silently";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot)
          << "flip at byte " << pos << ": " << e.what();
      ++rejected;
    }
  }
  // The chain covers everything except those 16 informational bytes, so
  // nearly every flip must be rejected outright.
  EXPECT_GE(rejected, kFlips - 8);
}

TEST_F(TortureTest, ManifestDamageNeverCrashesTriage) {
  const fs::path manifest = bundle_ / "manifest.json";
  const std::vector<unsigned char> orig = read_file(manifest);
  ASSERT_GT(orig.size(), 32u);

  // Truncations: triage must return an exit code, never throw or crash.
  for (int i = 0; i < 16; ++i) {
    const std::size_t cut = orig.size() * static_cast<std::size_t>(i) / 16;
    write_file(manifest,
               std::vector<unsigned char>(orig.begin(),
                                          orig.begin() +
                                              static_cast<std::ptrdiff_t>(cut)));
    std::ostringstream out;
    const int code = run_triage(bundle_.string(), out);
    EXPECT_TRUE(code == 0 || code == 3 || code == 4)
        << "cut=" << cut << " code=" << code;
  }

  // Seeded bit flips, including ones inside string values and numbers.
  u64 rng = 0xDECAF;
  for (int i = 0; i < 64; ++i) {
    std::vector<unsigned char> bytes = orig;
    const std::size_t pos =
        static_cast<std::size_t>(splitmix(rng) % bytes.size());
    bytes[pos] ^= static_cast<unsigned char>(1u << (splitmix(rng) % 8));
    write_file(manifest, bytes);
    std::ostringstream out;
    const int code = run_triage(bundle_.string(), out);
    EXPECT_TRUE(code == 0 || code == 3 || code == 4)
        << "flip at byte " << pos << " code=" << code;
  }
  write_file(manifest, orig);
}

TEST_F(TortureTest, ConfigDamageIsContainedToExitCode3) {
  const fs::path config = bundle_ / "config.txt";
  const std::vector<unsigned char> orig = read_file(config);
  u64 rng = 0xBADC0DE;
  for (int i = 0; i < 32; ++i) {
    std::vector<unsigned char> bytes = orig;
    const std::size_t pos =
        static_cast<std::size_t>(splitmix(rng) % bytes.size());
    bytes[pos] ^= static_cast<unsigned char>(1u << (splitmix(rng) % 8));
    write_file(config, bytes);
    std::ostringstream out;
    const int code = run_triage(bundle_.string(), out);
    // A flip that survives config parsing changes the config, which the
    // snapshot fingerprint then rejects (3); a flip that lands in
    // whitespace or a comment can still verify (0).  Either way: typed.
    EXPECT_TRUE(code == 0 || code == 3 || code == 4)
        << "flip at byte " << pos << " code=" << code;
  }
  write_file(config, orig);
}

TEST_F(TortureTest, EmptyAndGarbageManifestsAreTyped) {
  const fs::path garbage = dir_ / "garbage-bundle";
  fs::create_directories(garbage);

  std::ofstream(garbage / "manifest.json") << "";
  EXPECT_THROW(read_crash_bundle_manifest(garbage.string()), SimError);

  std::ofstream(garbage / "manifest.json") << "not json at all \x01\x02";
  EXPECT_THROW(read_crash_bundle_manifest(garbage.string()), SimError);

  std::ofstream(garbage / "manifest.json")
      << "{\"schema\": \"gpusim-crash-bundle-v1\"}";
  // Right schema, everything else missing: still typed.
  try {
    read_crash_bundle_manifest(garbage.string());
    FAIL() << "expected SimError(kSnapshot)";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot);
  }
}

}  // namespace
}  // namespace gpusim
