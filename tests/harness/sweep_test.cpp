// Crash-safe sweep semantics: retry with backoff, checkpoint after every
// pair, resume without recomputation, and byte-identical final results
// whether or not the sweep was interrupted.
#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/sim_error.hpp"
#include "kernels/workload_sets.hpp"

namespace gpusim {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "gpusim_sweep_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Deterministic fake result: the same workload always serializes to the
/// same bytes, like the (seeded) real simulator.
CoRunResult fake_result(const Workload& w) {
  CoRunResult r;
  r.label = w.label();
  r.cycles = 1'000 + w.label().size();
  r.unfairness = 1.25;
  r.harmonic_speedup = 0.5;
  r.wasted_bw_share = 1.0 / 3.0;  // exercises %.17g round-tripping
  r.idle_bw_share = 0.125;
  for (const KernelProfile& app : w.apps) {
    AppResult a;
    a.abbr = app.abbr;
    a.instructions = 10'000 + app.abbr.size();
    a.ipc_shared = 0.5;
    a.ipc_alone = 1.0;
    a.actual_slowdown = 2.0;
    a.estimates["DASE"] = 1.9;
    r.apps.push_back(a);
    r.app_bw_share.push_back(0.25);
  }
  return r;
}

std::vector<Workload> first_workloads(int n) {
  auto all = all_two_app_workloads();
  all.resize(n);
  return all;
}

TEST(SweepRunnerTest, RunsEveryWorkloadWithoutCheckpoint) {
  const auto workloads = first_workloads(4);
  int calls = 0;
  SweepRunner sweep({}, [&](const Workload& w) {
    ++calls;
    return fake_result(w);
  });
  const auto entries = sweep.run(workloads);
  EXPECT_EQ(calls, 4);
  ASSERT_EQ(entries.size(), 4u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(entries[i].ok);
    EXPECT_EQ(entries[i].label, workloads[i].label());
    EXPECT_FALSE(entries[i].from_checkpoint);
    EXPECT_EQ(entries[i].attempts, 1);
  }
}

TEST(SweepRunnerTest, FlakyPairIsRetriedUntilItSucceeds) {
  const auto workloads = first_workloads(3);
  const std::string flaky = workloads[1].label();
  std::map<std::string, int> calls;
  SweepOptions opts;
  opts.max_attempts = 3;
  SweepRunner sweep(opts, [&](const Workload& w) {
    if (++calls[w.label()] < 3 && w.label() == flaky) {
      throw std::runtime_error("transient failure");
    }
    return fake_result(w);
  });
  const auto entries = sweep.run(workloads);
  EXPECT_TRUE(entries[1].ok);
  EXPECT_EQ(entries[1].attempts, 3);
  EXPECT_EQ(calls[flaky], 3);
  EXPECT_EQ(entries[0].attempts, 1);
  EXPECT_EQ(sweep.attempts_spent(), 5);
}

TEST(SweepRunnerTest, BackoffDelaysEachRetry) {
  SweepOptions opts;
  opts.max_attempts = 3;
  opts.backoff_ms = 15;
  int calls = 0;
  SweepRunner sweep(opts, [&](const Workload& w) {
    if (++calls < 3) throw std::runtime_error("transient failure");
    return fake_result(w);
  });
  const auto start = std::chrono::steady_clock::now();
  const auto entries = sweep.run(first_workloads(1));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].ok);
  EXPECT_EQ(entries[0].attempts, 3);
  // Linear backoff: 15 ms after the first failure + 30 ms after the second.
  EXPECT_GE(elapsed.count(), 40);
}

TEST(SweepRunnerTest, PermanentFailureIsRecordedAndSweepContinues) {
  const auto workloads = first_workloads(3);
  const std::string bad = workloads[0].label();
  SweepOptions opts;
  opts.max_attempts = 2;
  SweepRunner sweep(opts, [&](const Workload& w) {
    if (w.label() == bad) throw std::runtime_error("broken pair");
    return fake_result(w);
  });
  const auto entries = sweep.run(workloads);
  EXPECT_FALSE(entries[0].ok);
  EXPECT_EQ(entries[0].attempts, 2);
  EXPECT_NE(entries[0].error.find("broken pair"), std::string::npos);
  EXPECT_TRUE(entries[1].ok);
  EXPECT_TRUE(entries[2].ok);
}

TEST(SweepRunnerTest, FailFastAbortsOnFirstPermanentFailure) {
  const auto workloads = first_workloads(3);
  const std::string bad = workloads[0].label();
  SweepOptions opts;
  opts.max_attempts = 2;
  opts.fail_fast = true;
  int calls = 0;
  SweepRunner sweep(opts, [&](const Workload&) -> CoRunResult {
    ++calls;
    throw std::runtime_error("broken pair");
  });
  try {
    sweep.run(workloads);
    FAIL() << "fail_fast did not abort";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kHarness);
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos);
  }
  EXPECT_EQ(calls, 2);  // only the first pair was attempted
}

TEST(SweepRunnerTest, ResumeSkipsCompletedPairs) {
  const std::string ckpt = temp_path("resume.jsonl");
  std::remove(ckpt.c_str());
  const auto workloads = first_workloads(5);

  // "Crash" after the first two pairs: run a sweep over only the prefix.
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    SweepRunner sweep(opts, fake_result);
    sweep.run(first_workloads(2));
  }

  int calls = 0;
  SweepOptions opts;
  opts.checkpoint_path = ckpt;
  SweepRunner sweep(opts, [&](const Workload& w) {
    ++calls;
    return fake_result(w);
  });
  const auto entries = sweep.run(workloads);
  EXPECT_EQ(calls, 3);  // only the three missing pairs ran
  EXPECT_EQ(sweep.resumed(), 2);
  EXPECT_TRUE(entries[0].from_checkpoint);
  EXPECT_TRUE(entries[1].from_checkpoint);
  EXPECT_FALSE(entries[2].from_checkpoint);
  for (const SweepEntry& e : entries) EXPECT_TRUE(e.ok);
  std::remove(ckpt.c_str());
}

TEST(SweepRunnerTest, InterruptedAndResumedSweepWritesIdenticalBytes) {
  const auto workloads = first_workloads(6);

  // Uninterrupted reference sweep.
  const std::string ref_out = temp_path("ref.json");
  {
    SweepRunner sweep({}, fake_result);
    SweepRunner::write_results(ref_out, sweep.run(workloads));
  }

  // Interrupted sweep: first 3 pairs, then a fresh process resumes.
  const std::string ckpt = temp_path("interrupted.jsonl");
  std::remove(ckpt.c_str());
  const std::string out = temp_path("resumed.json");
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    SweepRunner sweep(opts, fake_result);
    sweep.run(first_workloads(3));  // killed here
  }
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    SweepRunner sweep(opts, fake_result);
    SweepRunner::write_results(out, sweep.run(workloads));
    EXPECT_EQ(sweep.resumed(), 3);
  }

  const std::string expected = slurp(ref_out);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(expected, slurp(out));
  std::remove(ckpt.c_str());
  std::remove(ref_out.c_str());
  std::remove(out.c_str());
}

TEST(SweepRunnerTest, FailedPairIsRetriedOnResume) {
  const std::string ckpt = temp_path("retry_resume.jsonl");
  std::remove(ckpt.c_str());
  const auto workloads = first_workloads(2);
  const std::string bad = workloads[0].label();

  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    opts.max_attempts = 1;
    SweepRunner sweep(opts, [&](const Workload& w) -> CoRunResult {
      if (w.label() == bad) throw std::runtime_error("flaky machine");
      return fake_result(w);
    });
    const auto entries = sweep.run(workloads);
    EXPECT_FALSE(entries[0].ok);
  }
  // The machine is healthy again: the failed pair re-runs, the good pair
  // is replayed from the checkpoint.
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    int calls = 0;
    SweepRunner sweep(opts, [&](const Workload& w) {
      ++calls;
      return fake_result(w);
    });
    const auto entries = sweep.run(workloads);
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(entries[0].ok);
    EXPECT_FALSE(entries[0].from_checkpoint);
    EXPECT_TRUE(entries[1].from_checkpoint);
  }
  std::remove(ckpt.c_str());
}

TEST(SweepRunnerTest, TornCheckpointLineIsIgnored) {
  const std::string ckpt = temp_path("torn.jsonl");
  const auto workloads = first_workloads(2);
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    SweepRunner sweep(opts, fake_result);
    sweep.run(first_workloads(1));
  }
  // Simulate a crash mid-write: append half a line.
  {
    std::ofstream out(ckpt, std::ios::app);
    out << "{\"label\":\"" << workloads[1].label() << "\",\"ok\":tr";
  }
  SweepOptions opts;
  opts.checkpoint_path = ckpt;
  int calls = 0;
  SweepRunner sweep(opts, [&](const Workload& w) {
    ++calls;
    return fake_result(w);
  });
  const auto entries = sweep.run(workloads);
  EXPECT_EQ(calls, 1);  // the torn pair re-ran, the complete one did not
  EXPECT_TRUE(entries[0].from_checkpoint);
  EXPECT_TRUE(entries[1].ok);
  EXPECT_EQ(sweep.torn_lines_skipped(), 1);  // warned, not silent
  std::remove(ckpt.c_str());
}

TEST(SweepRunnerTest, CleanCheckpointReportsNoTornLines) {
  const std::string ckpt = temp_path("clean.jsonl");
  const auto workloads = first_workloads(2);
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    SweepRunner sweep(opts, fake_result);
    sweep.run(workloads);
    EXPECT_EQ(sweep.torn_lines_skipped(), 0);
  }
  SweepOptions opts;
  opts.checkpoint_path = ckpt;
  SweepRunner sweep(opts, fake_result);
  sweep.run(workloads);
  EXPECT_EQ(sweep.torn_lines_skipped(), 0);
  EXPECT_EQ(sweep.resumed(), 2);
  std::remove(ckpt.c_str());
}

TEST(SweepRunnerTest, ResumeSealsTornTailBeforeAppending) {
  const std::string ckpt = temp_path("torn_tail.jsonl");
  const auto workloads = first_workloads(2);
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    SweepRunner sweep(opts, fake_result);
    sweep.run(first_workloads(1));
  }
  // A torn fragment that already reached its "result" object: if a resume
  // appends straight after it, the glued line parses as the fragment's
  // label with the appended pair's payload.
  {
    std::ofstream out(ckpt, std::ios::app);
    out << "{\"label\":\"" << workloads[1].label()
        << "\",\"ok\":true,\"attempts\":1,\"result\":{\"label\":\""
        << workloads[1].label() << "\",\"cyc";
  }
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    SweepRunner sweep(opts, fake_result);
    sweep.run(workloads);
  }
  // A second resume over the repaired checkpoint must replay both pairs
  // with intact result objects, not the glued garbage.
  SweepOptions opts;
  opts.checkpoint_path = ckpt;
  int calls = 0;
  SweepRunner sweep(opts, [&](const Workload& w) {
    ++calls;
    return fake_result(w);
  });
  const auto entries = sweep.run(workloads);
  EXPECT_EQ(calls, 0);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].result_json,
            SweepRunner::to_json(fake_result(workloads[1])));
  std::remove(ckpt.c_str());
}

TEST(SweepRunnerTest, WriteResultsRecordsFailuresWithErrors) {
  std::vector<SweepEntry> entries(2);
  entries[0].label = "A+B";
  entries[0].ok = true;
  entries[0].result_json = "{\"label\":\"A+B\"}";
  entries[1].label = "C+D";
  entries[1].error = "queue overflow\nat cycle 7";
  const std::string out = temp_path("failures.json");
  SweepRunner::write_results(out, entries);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("{\"label\":\"A+B\"}"), std::string::npos);
  EXPECT_NE(text.find("\"failed\":true"), std::string::npos);
  EXPECT_NE(text.find("queue overflow\\nat cycle 7"), std::string::npos);
  std::remove(out.c_str());
}

TEST(SweepRunnerTest, ToJsonIsDeterministic) {
  const auto workloads = first_workloads(1);
  const CoRunResult r = fake_result(workloads[0]);
  EXPECT_EQ(SweepRunner::to_json(r), SweepRunner::to_json(r));
  EXPECT_NE(SweepRunner::to_json(r).find("0.33333333333333331"),
            std::string::npos);
}

TEST(SweepRunnerTest, RejectsZeroAttempts) {
  SweepOptions opts;
  opts.max_attempts = 0;
  EXPECT_THROW(SweepRunner(opts, fake_result), SimError);
}

TEST(SweepRunnerTest, RejectsNegativeJobs) {
  SweepOptions opts;
  opts.jobs = -1;
  EXPECT_THROW(SweepRunner(opts, fake_result), SimError);
}

// --- parallel sweep (jobs > 1): same bytes, same crash-safety ---

std::string sweep_and_serialize(SweepOptions opts,
                                const std::vector<Workload>& workloads,
                                const std::string& tag) {
  const std::string out = temp_path(tag + ".json");
  SweepRunner sweep(opts, fake_result);
  SweepRunner::write_results(out, sweep.run(workloads));
  const std::string text = slurp(out);
  std::remove(out.c_str());
  return text;
}

TEST(SweepRunnerParallelTest, JobsEightWritesBytesIdenticalToSerial) {
  const auto workloads = first_workloads(8);
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions parallel;
  parallel.jobs = 8;
  const std::string a = sweep_and_serialize(serial, workloads, "par_serial");
  const std::string b = sweep_and_serialize(parallel, workloads, "par_jobs8");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SweepRunnerParallelTest, InterruptedParallelSweepResumesByteIdentical) {
  const auto workloads = first_workloads(8);

  // Uninterrupted serial reference.
  const std::string expected =
      sweep_and_serialize({}, workloads, "par_resume_ref");

  // Parallel sweep "killed" after a prefix, with a torn line appended the
  // way a mid-write crash would leave it; a parallel resume must repair
  // the tail and produce the reference bytes.
  const std::string ckpt = temp_path("par_resume.jsonl");
  std::remove(ckpt.c_str());
  {
    SweepOptions opts;
    opts.checkpoint_path = ckpt;
    opts.jobs = 4;
    SweepRunner sweep(opts, fake_result);
    sweep.run(first_workloads(4));  // killed here
  }
  {
    std::ofstream out(ckpt, std::ios::app);
    out << "{\"label\":\"" << workloads[5].label() << "\",\"ok\":tr";
  }
  SweepOptions opts;
  opts.checkpoint_path = ckpt;
  opts.jobs = 8;
  const std::string out = temp_path("par_resumed.json");
  SweepRunner sweep(opts, fake_result);
  SweepRunner::write_results(out, sweep.run(workloads));
  EXPECT_EQ(sweep.resumed(), 4);
  EXPECT_EQ(expected, slurp(out));
  std::remove(ckpt.c_str());
  std::remove(out.c_str());
}

TEST(SweepRunnerParallelTest, FlakyPairIsRetriedOnItsWorker) {
  const auto workloads = first_workloads(6);
  const std::string flaky = workloads[2].label();
  std::mutex mu;
  std::map<std::string, int> calls;
  SweepOptions opts;
  opts.max_attempts = 3;
  opts.jobs = 4;
  SweepRunner sweep(opts, [&](const Workload& w) {
    int attempt;
    {
      std::lock_guard<std::mutex> lock(mu);
      attempt = ++calls[w.label()];
    }
    if (w.label() == flaky && attempt < 3) {
      throw std::runtime_error("transient failure");
    }
    return fake_result(w);
  });
  const auto entries = sweep.run(workloads);
  ASSERT_EQ(entries.size(), 6u);
  EXPECT_TRUE(entries[2].ok);
  EXPECT_EQ(entries[2].attempts, 3);
  EXPECT_EQ(sweep.attempts_spent(), 8);
}

TEST(SweepRunnerParallelTest, FailFastRethrowsLowestIndexFailure) {
  const auto workloads = first_workloads(6);
  SweepOptions opts;
  opts.max_attempts = 1;
  opts.fail_fast = true;
  opts.jobs = 8;
  SweepRunner sweep(opts, [&](const Workload&) -> CoRunResult {
    throw std::runtime_error("broken pair");
  });
  try {
    sweep.run(workloads);
    FAIL() << "fail_fast did not abort";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kHarness);
    // Several pairs fail concurrently; the rethrow must deterministically
    // name the lowest-index one.
    EXPECT_NE(std::string(e.what()).find(workloads[0].label()),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepRunnerParallelTest, FactoryRunsOncePerWorkerOnMainThread) {
  const auto workloads = first_workloads(6);
  const std::thread::id main_thread = std::this_thread::get_id();
  std::atomic<int> factory_calls{0};
  SweepOptions opts;
  opts.jobs = 3;
  SweepRunner sweep(opts, SweepRunner::RunFnFactory([&]() {
                      ++factory_calls;
                      EXPECT_EQ(std::this_thread::get_id(), main_thread)
                          << "factories must not be required thread-safe";
                      return SweepRunner::RunFn(fake_result);
                    }));
  const auto entries = sweep.run(workloads);
  EXPECT_EQ(factory_calls.load(), 3);
  for (const SweepEntry& e : entries) EXPECT_TRUE(e.ok);
}

TEST(SweepRunnerParallelTest, JobsZeroMeansHardwareConcurrency) {
  SweepOptions opts;
  opts.jobs = 0;
  SweepRunner sweep(opts, fake_result);
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  EXPECT_EQ(sweep.effective_jobs(1000), hw);
  EXPECT_EQ(sweep.effective_jobs(1), 1);  // never more workers than pairs
  const auto entries = sweep.run(first_workloads(3));
  ASSERT_EQ(entries.size(), 3u);
  for (const SweepEntry& e : entries) EXPECT_TRUE(e.ok);
}

TEST(SweepRunnerParallelTest, WorkersOverlapInTime) {
  // Not a throughput claim (the host may have one core): sleeping runs
  // overlap iff the pool really dispatches pairs to distinct threads.
  const auto workloads = first_workloads(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  SweepOptions opts;
  opts.jobs = 4;
  SweepRunner sweep(opts, [&](const Workload& w) {
    const int now = ++in_flight;
    int seen = max_in_flight.load();
    while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    --in_flight;
    return fake_result(w);
  });
  sweep.run(workloads);
  EXPECT_GE(max_in_flight.load(), 2);
}

}  // namespace
}  // namespace gpusim
