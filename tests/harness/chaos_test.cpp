// ChaosLab campaign engine: every job in a campaign must land in exactly
// one of the four outcome classes (there is no "unknown"), a planted
// multi-event failure must delta-debug down to a tiny reproducer that
// replays to the same class, and the campaign report must be byte-for-byte
// deterministic — across worker counts and across a kill/resume with a
// torn checkpoint tail.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "harness/chaos.hpp"
#include "kernels/workload_sets.hpp"

namespace gpusim {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Small fast campaign used by the determinism/resume tests.
ChaosOptions small_campaign() {
  ChaosOptions opts;
  opts.schedules = 8;
  opts.seed = 2026;
  opts.cycles = 10'000;
  opts.minimize = false;
  return opts;
}

TEST(ChaosCampaignTest, EveryScheduleIsClassified) {
  ChaosOptions opts;
  opts.schedules = 50;
  opts.seed = 7;
  opts.cycles = 10'000;
  opts.jobs = 0;  // one worker per hardware thread
  opts.minimize = false;
  const ChaosReport report = run_chaos_campaign(opts);

  ASSERT_EQ(report.jobs.size(), 50u);
  const int classified = report.count(ChaosOutcome::kRecovered) +
                         report.count(ChaosOutcome::kGuardCaught) +
                         report.count(ChaosOutcome::kWrongResult) +
                         report.count(ChaosOutcome::kHang);
  EXPECT_EQ(classified, 50);
  for (const ChaosJobResult& job : report.jobs) {
    EXPECT_FALSE(job.schedule.empty()) << "job " << job.index;
    EXPECT_FALSE(job.detail.empty()) << "job " << job.index;
    EXPECT_FALSE(job.replay.empty()) << "job " << job.index;
    EXPECT_FALSE(job.json.empty()) << "job " << job.index;
    EXPECT_GT(job.final_cycle, 0u) << "job " << job.index;
  }
  // A healthy campaign mix exercises more than one class.
  EXPECT_GT(report.count(ChaosOutcome::kRecovered), 0);
  EXPECT_LT(report.count(ChaosOutcome::kRecovered), 50);
}

TEST(ChaosCampaignTest, RandomSchedulesAreSeedDeterministic) {
  const FaultSchedule a = random_fault_schedule(99, 40'000, 4, 4);
  const FaultSchedule b = random_fault_schedule(99, 40'000, 4, 4);
  EXPECT_EQ(a.to_string(), b.to_string());
  ASSERT_GE(a.events.size(), 1u);
  ASSERT_LE(a.events.size(), 4u);
  const FaultSchedule c = random_fault_schedule(100, 40'000, 4, 4);
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(ChaosCampaignTest, PlantedLeakMinimizesToTinyReproducer) {
  // One real bug (a dropped response with recovery off) buried in three
  // harmless noise events.  Delta debugging must strip the noise and keep
  // a reproducer of at most two events that replays to the same class.
  const FaultSchedule planted = FaultSchedule{}
                                    .nack_response(80, 120)
                                    .stall_partition(1, 2'000, 5'000)
                                    .drop_response_nth(200)
                                    .nack_response(400, 90);
  ChaosOptions opts;
  opts.cycles = 40'000;
  opts.recovery = false;
  const Workload workload = all_two_app_workloads().front();

  const ChaosJobResult full = run_chaos_job(opts, workload, false, planted);
  ASSERT_EQ(full.outcome, ChaosOutcome::kGuardCaught) << full.detail;

  const FaultSchedule minimal = minimize_failing_schedule(
      opts, workload, false, planted, full.outcome);
  EXPECT_LE(minimal.events.size(), 2u) << minimal.to_string();
  bool kept_the_bug = false;
  for (const FaultEvent& e : minimal.events) {
    if (e.kind == FaultKind::kDropResponse) kept_the_bug = true;
  }
  EXPECT_TRUE(kept_the_bug) << minimal.to_string();

  // The minimized schedule must reproduce the original failure class
  // through the same entry point the CLI replay uses.
  const ChaosJobResult replay = run_chaos_job(opts, workload, false, minimal);
  EXPECT_EQ(replay.outcome, full.outcome) << replay.detail;
}

TEST(ChaosCampaignTest, ReportIsByteIdenticalForAnyWorkerCount) {
  ChaosOptions serial = small_campaign();
  serial.jobs = 1;
  ChaosOptions parallel = small_campaign();
  parallel.jobs = 4;
  const std::string a = run_chaos_campaign(serial).to_json();
  const std::string b = run_chaos_campaign(parallel).to_json();
  EXPECT_EQ(a, b);
}

TEST(ChaosCampaignTest, ResumedCampaignReproducesTheReportByteForByte) {
  ChaosOptions opts = small_campaign();
  const std::string expected = run_chaos_campaign(opts).to_json();

  // First attempt "killed" mid-campaign: keep the first three checkpoint
  // lines plus a torn fragment the way a crash mid-write would leave it.
  const std::string ckpt = temp_path("chaos_resume.jsonl");
  std::remove(ckpt.c_str());
  opts.checkpoint_path = ckpt;
  run_chaos_campaign(opts);
  std::vector<std::string> lines;
  {
    std::ifstream in(ckpt);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 8u);
  {
    std::ofstream out(ckpt, std::ios::trunc);
    for (int i = 0; i < 3; ++i) out << lines[static_cast<std::size_t>(i)] << "\n";
    out << "{\"index\":6,\"workload\":\"SD";  // torn tail, no newline
  }

  const ChaosReport resumed = run_chaos_campaign(opts);
  EXPECT_EQ(resumed.resumed, 3);
  EXPECT_EQ(resumed.to_json(), expected);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace gpusim
