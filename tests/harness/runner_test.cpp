#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/sim_error.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

RunConfig quick_config() {
  RunConfig rc;
  rc.co_run_cycles = 60'000;
  rc.gpu.estimation_interval = 20'000;
  return rc;
}

TEST(RunnerTest, CoRunProducesConsistentResult) {
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("VA"), *find_app("SD")}};
  const CoRunResult r = runner.run(w, ModelSet{.dase = true});
  EXPECT_EQ(r.label, "VA+SD");
  EXPECT_EQ(r.cycles, 60'000u);
  ASSERT_EQ(r.apps.size(), 2u);
  for (const AppResult& a : r.apps) {
    EXPECT_GT(a.instructions, 0u);
    EXPECT_GT(a.ipc_shared, 0.0);
    EXPECT_GT(a.ipc_alone, 0.0);
    EXPECT_GT(a.actual_slowdown, 1.0) << "sharing must cost something";
    EXPECT_GT(a.estimates.at("DASE"), 0.9);
  }
  EXPECT_GE(r.unfairness, 1.0);
  EXPECT_GT(r.harmonic_speedup, 0.0);
  EXPECT_LE(r.harmonic_speedup, 1.0);
  // Bandwidth decomposition is a sane partition of capacity.
  double total = r.wasted_bw_share + r.idle_bw_share;
  for (double share : r.app_bw_share) {
    EXPECT_GE(share, 0.0);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(RunnerTest, CustomSmSplitApplied) {
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("VA"), *find_app("SA")}};
  const std::vector<int> split = {4, 12};
  const CoRunResult r4 =
      runner.run(w, ModelSet{.dase = true}, PolicyKind::kEven, &split);
  const CoRunResult r8 = runner.run(w, ModelSet{.dase = true});
  // With only 4 SMs, VA executes fewer instructions than with 8.
  EXPECT_LT(r4.apps[0].instructions, r8.apps[0].instructions);
  EXPECT_GT(r4.apps[1].instructions, r8.apps[1].instructions);
}

TEST(RunnerTest, AloneStatsAreCachedAndPlausible) {
  ExperimentRunner runner(quick_config());
  const KernelProfile va = *find_app("VA");
  const AloneStats& first = runner.alone_stats(va);
  EXPECT_GT(first.ipc, 0.0);
  EXPECT_GT(first.bw_util, 0.0);
  EXPECT_LT(first.bw_util, 1.0);
  const AloneStats& second = runner.alone_stats(va);
  EXPECT_EQ(&first, &second) << "same cached object";
}

TEST(RunnerTest, ExactReplayAndCachedIpcAgree) {
  // Our kernels are stationary, so the cheap cached-IPC mode must land
  // close to the exact-replay methodology (DESIGN.md Section 2).
  RunConfig rc = quick_config();
  rc.co_run_cycles = 100'000;
  const Workload w{{*find_app("VA"), *find_app("SA")}};

  rc.alone_mode = RunConfig::AloneMode::kExactReplay;
  ExperimentRunner exact(rc);
  const CoRunResult re = exact.run(w, ModelSet{});

  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  ExperimentRunner cached(rc);
  const CoRunResult rc2 = cached.run(w, ModelSet{});

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(re.apps[i].actual_slowdown, rc2.apps[i].actual_slowdown,
                re.apps[i].actual_slowdown * 0.08)
        << w.apps[i].abbr;
  }
}

TEST(RunnerTest, EpochModelsAttachWithoutDisturbingResult) {
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("VA"), *find_app("SD")}};
  const CoRunResult r = runner.run(
      w, ModelSet{.dase = true, .mise = true, .asm_model = true});
  for (const AppResult& a : r.apps) {
    EXPECT_TRUE(a.estimates.contains("DASE"));
    EXPECT_TRUE(a.estimates.contains("MISE"));
    EXPECT_TRUE(a.estimates.contains("ASM"));
  }
}

TEST(RunnerTest, MeanErrorAggregatesPerApp) {
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("CS"), *find_app("CT")}};
  const CoRunResult r = runner.run(w, ModelSet{.dase = true});
  double sum = 0.0;
  for (const AppResult& a : r.apps) sum += a.estimation_error_of("DASE");
  EXPECT_NEAR(r.mean_error_of("DASE"), sum / 2.0, 1e-12);
}

TEST(RunnerTest, MissingModelEstimateRaisesStructuredError) {
  AppResult app;
  app.abbr = "VA";
  app.actual_slowdown = 2.0;
  app.estimates["DASE"] = 1.8;
  try {
    app.estimation_error_of("MISE");
    FAIL() << "estimation_error_of accepted a model that never ran";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kHarness);
    const std::string what = e.what();
    EXPECT_NE(what.find("MISE"), std::string::npos);
    EXPECT_NE(what.find("DASE"), std::string::npos)
        << "message should list the models that are available";
    EXPECT_NE(what.find("VA"), std::string::npos);
  }
}

TEST(RunnerTest, OversubscribedSplitRaisesStructuredError) {
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("VA"), *find_app("SD")}};
  const std::vector<int> split = {100, 100};
  EXPECT_THROW(runner.run(w, ModelSet{.dase = true}, PolicyKind::kEven,
                          &split),
               SimError);
}

TEST(RunnerTest, CyclesFromEnvParsesAndFallsBack) {
  ::setenv("GPUSIM_TEST_CYCLES", "12345", 1);
  EXPECT_EQ(cycles_from_env("GPUSIM_TEST_CYCLES", 5), 12345u);
  ::setenv("GPUSIM_TEST_CYCLES", "not-a-number", 1);
  EXPECT_EQ(cycles_from_env("GPUSIM_TEST_CYCLES", 5), 5u);
  ::unsetenv("GPUSIM_TEST_CYCLES");
  EXPECT_EQ(cycles_from_env("GPUSIM_TEST_CYCLES", 7), 7u);
}

}  // namespace
}  // namespace gpusim
