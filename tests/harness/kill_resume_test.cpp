// End-to-end crash recovery: a child process running a snapshot-enabled
// co-run is SIGKILLed mid-simulation; re-running the same experiment in
// the parent auto-resumes from the orphaned snapshot file and must produce
// results byte-identical to a run that was never interrupted.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

namespace fs = std::filesystem;

Workload test_workload() {
  Workload w;
  w.apps.push_back(*find_app("SD"));
  w.apps.push_back(*find_app("SA"));
  return w;
}

RunConfig base_config(const std::string& snapshot_dir) {
  RunConfig rc;
  rc.co_run_cycles = 150'000;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  rc.snapshot_every = 5'000;
  rc.snapshot_dir = snapshot_dir;
  return rc;
}

TEST(KillResume, Sigkill9ThenRestartIsByteIdentical) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("gpusim_kill_resume_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  const std::string snap_file = (dir / "SD+SA.simstate").string();

  // Reference: uninterrupted run, no snapshotting at all.
  std::string expected;
  {
    RunConfig rc = base_config(dir.string());
    rc.snapshot_every = 0;
    ExperimentRunner runner(rc);
    expected = SweepRunner::to_json(runner.run(test_workload(), ModelSet{}));
  }

  // Child: same experiment with snapshotting on; killed as soon as the
  // first snapshot file is published.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    RunConfig rc = base_config(dir.string());
    try {
      ExperimentRunner runner(rc);
      runner.run(test_workload(), ModelSet{});
    } catch (...) {
    }
    _exit(0);
  }
  bool killed = false;
  for (int i = 0; i < 20'000; ++i) {  // up to ~20s
    if (fs::exists(snap_file)) {
      kill(child, SIGKILL);
      killed = true;
      break;
    }
    int status = 0;
    if (waitpid(child, &status, WNOHANG) == child) break;  // finished early
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (killed) {
    int status = 0;
    waitpid(child, &status, 0);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
    ASSERT_TRUE(fs::exists(snap_file))
        << "the orphaned snapshot must survive the kill";
  }

  // Restart: auto-resumes from the orphaned snapshot (when the kill won
  // the race) and must reproduce the uninterrupted result byte-for-byte.
  RunConfig rc = base_config(dir.string());
  ExperimentRunner runner(rc);
  const std::string resumed =
      SweepRunner::to_json(runner.run(test_workload(), ModelSet{}));
  EXPECT_EQ(resumed, expected);
  EXPECT_FALSE(fs::exists(snap_file))
      << "completed runs must delete their resume point";

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(KillResume, StaleSnapshotFromOtherConfigIsSkippedWithFreshRun) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("gpusim_stale_snap_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  // Plant a snapshot written under a *different* run length; the
  // fingerprint mismatch must be skipped (fresh run), not fatal.
  {
    RunConfig other = base_config(dir.string());
    other.co_run_cycles = 60'000;
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      try {
        ExperimentRunner r2(other);
        r2.run(test_workload(), ModelSet{});
      } catch (...) {
      }
      _exit(0);
    }
    const std::string snap_file = (dir / "SD+SA.simstate").string();
    for (int i = 0; i < 20'000 && !fs::exists(snap_file); ++i) {
      int status = 0;
      if (waitpid(child, &status, WNOHANG) == child) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    kill(child, SIGKILL);
    int status = 0;
    waitpid(child, &status, 0);
    ASSERT_TRUE(fs::exists(snap_file));
  }

  RunConfig rc = base_config(dir.string());  // different co_run_cycles
  std::string expected;
  {
    RunConfig plain = rc;
    plain.snapshot_every = 0;
    ExperimentRunner runner(plain);
    expected = SweepRunner::to_json(runner.run(test_workload(), ModelSet{}));
  }
  ExperimentRunner runner(rc);
  const std::string got =
      SweepRunner::to_json(runner.run(test_workload(), ModelSet{}));
  EXPECT_EQ(got, expected);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace gpusim
