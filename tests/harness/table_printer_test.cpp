#include "harness/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gpusim {
namespace {

TEST(TablePrinterTest, HeaderIsAlignedAndRuled) {
  TablePrinter table({"a", "bb"}, 6);
  std::ostringstream out;
  table.print_header(out);
  EXPECT_EQ(out.str(), "     a    bb\n------------\n");
}

TEST(TablePrinterTest, PercentFormatting) {
  EXPECT_EQ(TablePrinter::pct(0.123), "12.3%");
  EXPECT_EQ(TablePrinter::pct(0.5, 0), "50%");
  EXPECT_EQ(TablePrinter::pct(1.0, 1), "100.0%");
  EXPECT_EQ(TablePrinter::pct(0.0), "0.0%");
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(2.5), "2.500");
  EXPECT_EQ(TablePrinter::num(2.5, 1), "2.5");
  EXPECT_EQ(TablePrinter::num(-1.25, 2), "-1.25");
  EXPECT_EQ(TablePrinter::num(3.14159, 0), "3");
}

}  // namespace
}  // namespace gpusim
