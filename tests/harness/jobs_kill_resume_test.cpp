// End-to-end batch resilience: a child process running a heterogeneous job
// batch (runs + a sweep + a chaos campaign) is SIGTERMed mid-flight.  The
// child's shutdown handlers drain gracefully — finished jobs have whole
// manifest lines, engine checkpoints are flushed — and resuming the
// manifest in the parent must produce a final report byte-identical to a
// batch that was never interrupted, for a different worker count too.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/job_manager.hpp"
#include "harness/shutdown.hpp"

namespace gpusim {
namespace {

namespace fs = std::filesystem;

std::vector<JobSpec> batch_specs() {
  const std::vector<std::string> lines = {
      "run apps=SD,SA cycles=60000",
      "run apps=VA,CT policy=dase-fair cycles=60000",
      "sweep which=random:3 cycles=30000",
      "chaos schedules=3 seed=7 cycles=20000",
      "run apps=AA,SD cycles=60000",
  };
  std::vector<JobSpec> specs;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    specs.push_back(JobSpec::parse(lines[i], static_cast<int>(i)));
  }
  return specs;
}

JobManagerOptions batch_options(const std::string& manifest, int jobs) {
  JobManagerOptions opts;
  opts.manifest_path = manifest;
  opts.jobs = jobs;
  opts.backoff_base_ms = 0;
  opts.snapshot_every = 10'000;
  return opts;
}

int count_result_lines(const std::string& manifest) {
  std::ifstream in(manifest);
  std::string line;
  int results = 0;
  while (std::getline(in, line)) {
    if (line.find("\"status\":\"") != std::string::npos) ++results;
  }
  return results;
}

TEST(JobsKillResume, SigtermMidBatchThenResumeIsByteIdentical) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("gpusim_jobs_kill_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Reference: the uninterrupted batch, serial.
  std::string expected;
  {
    JobManager manager(batch_options((dir / "ref.jsonl").string(), 1));
    const JobBatchReport report = manager.run(batch_specs());
    ASSERT_EQ(report.ok, report.total)
        << "reference batch must succeed cleanly";
    expected = report.to_json();
  }

  // Child: same batch with two workers and the real signal path — the
  // handlers it installs are exactly what gpusim_cli installs.
  const std::string manifest = (dir / "killed.jsonl").string();
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    install_shutdown_handlers();
    int code = 1;
    try {
      JobManagerOptions opts = batch_options(manifest, 2);
      opts.cancel = shutdown_flag();
      JobManager manager(opts);
      code = manager.run(batch_specs()).exit_code();
    } catch (...) {
      code = 3;
    }
    _exit(code);
  }

  // SIGTERM as soon as the first result line lands, so the drain happens
  // with jobs both finished and in flight.
  bool signalled = false;
  int status = 0;
  for (int i = 0; i < 60'000; ++i) {  // up to ~60s
    if (count_result_lines(manifest) >= 1) {
      kill(child, SIGTERM);
      signalled = true;
      break;
    }
    if (waitpid(child, &status, WNOHANG) == child) break;  // finished early
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (signalled) waitpid(child, &status, 0);
  ASSERT_TRUE(WIFEXITED(status)) << "drain must exit, not die on the signal";
  // 6 = interrupted (the expected drain); 0 = the batch won the race.
  const int child_code = WEXITSTATUS(status);
  ASSERT_TRUE(child_code == 6 || child_code == 0)
      << "unexpected child exit code " << child_code;

  // Resume with a different worker count: stored results replay verbatim,
  // pending jobs re-run (through their own engine checkpoints), and the
  // final report must match the uninterrupted reference byte for byte.
  JobManager resumed(batch_options(manifest, 3));
  const JobBatchReport report = resumed.resume();
  EXPECT_EQ(resumed.torn_lines_skipped(), 0)
      << "a drained manifest must have no torn lines";
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.ok, report.total);
  EXPECT_EQ(report.to_json(), expected);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace gpusim
