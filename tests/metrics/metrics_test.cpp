#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

namespace gpusim {
namespace {

TEST(MetricsTest, UnfairnessMaxOverMin) {
  const std::array<double, 2> even = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(unfairness(even), 1.0);
  const std::array<double, 2> paper = {3.44, 1.37};  // paper's SD+SA
  EXPECT_NEAR(unfairness(paper), 2.51, 0.01);
  const std::array<double, 4> quad = {1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(unfairness(quad), 6.0);
}

TEST(MetricsTest, HarmonicSpeedupEq27) {
  // H.Speedup = N / sum(slowdowns).
  const std::array<double, 2> s = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup(s), 0.5);
  const std::array<double, 2> one = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup(one), 1.0);
  const std::array<double, 4> quad = {4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup(quad), 0.25);
}

TEST(MetricsTest, EstimationErrorEq26) {
  EXPECT_DOUBLE_EQ(estimation_error(2.0, 2.0), 0.0);
  EXPECT_NEAR(estimation_error(2.2, 2.0), 0.1, 1e-12);
  EXPECT_NEAR(estimation_error(1.8, 2.0), 0.1, 1e-12) << "error is absolute";
  EXPECT_DOUBLE_EQ(estimation_error(1.0, 4.0), 0.75);
}

TEST(MetricsTest, MeanHandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::array<double, 3> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(MetricsTest, MeanSkipsNonFiniteSamples) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // An all-NaN span has no usable samples and must behave like empty.
  const std::array<double, 3> all_nan = {kNaN, kNaN, kNaN};
  EXPECT_DOUBLE_EQ(mean(all_nan), 0.0);
  // Mixed spans average only the finite entries — the divisor must be the
  // finite count, not the span size.
  const std::array<double, 5> mixed = {kNaN, 2.0, kInf, 4.0, -kInf};
  EXPECT_DOUBLE_EQ(mean(mixed), 3.0);
  const std::array<double, 2> one_finite = {kNaN, 7.5};
  EXPECT_DOUBLE_EQ(mean(one_finite), 7.5);
}

TEST(MetricsTest, EstimationErrorUndefinedCasesReturnNaN) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // No baseline: a starved app measures actual == 0 (or garbage below it).
  EXPECT_TRUE(std::isnan(estimation_error(2.0, 0.0)));
  EXPECT_TRUE(std::isnan(estimation_error(2.0, -1.0)));
  // Non-finite inputs must not propagate into the error column.
  EXPECT_TRUE(std::isnan(estimation_error(kNaN, 2.0)));
  EXPECT_TRUE(std::isnan(estimation_error(2.0, kNaN)));
  EXPECT_TRUE(std::isnan(estimation_error(kInf, 2.0)));
  EXPECT_TRUE(std::isnan(estimation_error(2.0, kInf)));
  // Healthy inputs still produce a finite error.
  EXPECT_TRUE(std::isfinite(estimation_error(2.0, 1.5)));
}

TEST(MetricsTest, EstimationErrorNaNSkippedByMean) {
  // The intended composition: per-interval errors with holes (no baseline
  // yet) aggregate to the mean of the defined intervals only.
  const std::array<double, 3> errors = {
      estimation_error(2.2, 2.0),   // 0.1
      estimation_error(2.0, 0.0),   // NaN — skipped
      estimation_error(1.0, 4.0)};  // 0.75
  EXPECT_NEAR(mean(errors), (0.1 + 0.75) / 2.0, 1e-12);
}

TEST(MetricsTest, UnfairnessIsScaleInvariant) {
  const std::array<double, 3> a = {1.5, 2.0, 3.0};
  const std::array<double, 3> b = {3.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(unfairness(a), unfairness(b));
}

}  // namespace
}  // namespace gpusim
