#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <array>

namespace gpusim {
namespace {

TEST(MetricsTest, UnfairnessMaxOverMin) {
  const std::array<double, 2> even = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(unfairness(even), 1.0);
  const std::array<double, 2> paper = {3.44, 1.37};  // paper's SD+SA
  EXPECT_NEAR(unfairness(paper), 2.51, 0.01);
  const std::array<double, 4> quad = {1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(unfairness(quad), 6.0);
}

TEST(MetricsTest, HarmonicSpeedupEq27) {
  // H.Speedup = N / sum(slowdowns).
  const std::array<double, 2> s = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup(s), 0.5);
  const std::array<double, 2> one = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup(one), 1.0);
  const std::array<double, 4> quad = {4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup(quad), 0.25);
}

TEST(MetricsTest, EstimationErrorEq26) {
  EXPECT_DOUBLE_EQ(estimation_error(2.0, 2.0), 0.0);
  EXPECT_NEAR(estimation_error(2.2, 2.0), 0.1, 1e-12);
  EXPECT_NEAR(estimation_error(1.8, 2.0), 0.1, 1e-12) << "error is absolute";
  EXPECT_DOUBLE_EQ(estimation_error(1.0, 4.0), 0.75);
}

TEST(MetricsTest, MeanHandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::array<double, 3> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(MetricsTest, UnfairnessIsScaleInvariant) {
  const std::array<double, 3> a = {1.5, 2.0, 3.0};
  const std::array<double, 3> b = {3.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(unfairness(a), unfairness(b));
}

}  // namespace
}  // namespace gpusim
