#include <gtest/gtest.h>

#include "baselines/asm_model.hpp"
#include "baselines/mise_model.hpp"
#include "baselines/priority_epochs.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : gpu_(cfg_, {AppLaunch{*find_app("VA"), 1}}) {}

  /// Sample with priority-epoch measurements filled in.  Counter fields
  /// that sum across the 6 partitions are entered pre-multiplied.
  IntervalSample epoch_sample(double alpha, u64 prio_served, u64 prio_wall,
                              u64 norm_served, u64 norm_wall) {
    IntervalSample s;
    s.length = 50'000;
    s.total_sms = 16;
    s.count_apps = 2;
    s.nonpriority_cycles = norm_wall * 6;
    s.apps.resize(1);
    AppIntervalData& d = s.apps[0];
    d.app = 0;
    d.num_sms = 8;
    d.sm_cycles = 8 * 50'000;
    d.alpha = alpha;
    d.priority_served = prio_served;
    d.priority_cycles = prio_wall * 6;
    d.nonpriority_served = norm_served;
    d.requests_served = prio_served + norm_served;
    return s;
  }

  GpuConfig cfg_;
  Gpu gpu_;
};

TEST_F(BaselinesTest, MiseNonIntensiveUsesAlphaCorrection) {
  // ARSR = 500/2500 = 0.2; SRSR = 4000/40000 = 0.1; ratio 2.
  auto s = epoch_sample(0.5, 500, 2'500, 4'000, 40'000);
  MiseModel model({}, 0);
  model.on_interval(s, gpu_);
  ASSERT_TRUE(model.latest()[0].valid);
  EXPECT_FALSE(model.latest()[0].mbb);
  EXPECT_NEAR(model.latest()[0].slowdown_all, 1.0 - 0.5 + 0.5 * 2.0, 1e-9);
}

TEST_F(BaselinesTest, MiseMemoryBoundUsesPureRatio) {
  auto s = epoch_sample(0.9, 500, 2'500, 4'000, 40'000);
  MiseModel model({}, 0);
  model.on_interval(s, gpu_);
  EXPECT_TRUE(model.latest()[0].mbb);
  EXPECT_NEAR(model.latest()[0].slowdown_all, 2.0, 1e-9);
}

TEST_F(BaselinesTest, MiseRatioFloorsAtOne) {
  // Service rate *better* during normal operation than in epochs.
  auto s = epoch_sample(0.5, 100, 2'500, 8'000, 40'000);
  MiseModel model({}, 0);
  model.on_interval(s, gpu_);
  EXPECT_NEAR(model.latest()[0].slowdown_all, 1.0, 1e-9);
}

TEST_F(BaselinesTest, MiseInvalidWithoutEpochData) {
  auto s = epoch_sample(0.5, 0, 0, 4'000, 40'000);
  s.apps[0].priority_cycles = 0;
  MiseModel model({}, 0);
  model.on_interval(s, gpu_);
  EXPECT_FALSE(model.latest()[0].valid);
}

TEST_F(BaselinesTest, MiseComputeOnlyIntervalIsUnslowed) {
  auto s = epoch_sample(0.0, 0, 2'500, 0, 40'000);
  MiseModel model({}, 0);
  model.on_interval(s, gpu_);
  EXPECT_TRUE(model.latest()[0].valid);
  EXPECT_NEAR(model.latest()[0].slowdown_all, 1.0, 1e-9);
}

TEST_F(BaselinesTest, AsmUsesCacheAccessRates) {
  auto s = epoch_sample(0.5, 500, 2'500, 4'000, 40'000);
  AppIntervalData& d = s.apps[0];
  d.l2_accesses = 10'000;
  d.l2_accesses_priority = 1'000;     // CAR_alone = 0.4
  d.l2_accesses_nonpriority = 8'000;  // CAR_shared = 0.2
  AsmModel model({}, 0);
  model.on_interval(s, gpu_);
  EXPECT_NEAR(model.latest()[0].slowdown_all, 1.0 - 0.5 + 0.5 * 2.0, 1e-9);
}

TEST_F(BaselinesTest, AsmAtdCorrectionRaisesEstimate) {
  auto base = epoch_sample(0.5, 500, 2'500, 4'000, 40'000);
  base.apps[0].l2_accesses = 10'000;
  base.apps[0].l2_accesses_priority = 1'000;
  base.apps[0].l2_accesses_nonpriority = 8'000;

  auto contended = base;
  contended.apps[0].ellc_miss_scaled = 2'000;  // contention traffic

  AsmModel m1({}, 0);
  AsmModel m2({}, 0);
  m1.on_interval(base, gpu_);
  m2.on_interval(contended, gpu_);
  EXPECT_GT(m2.latest()[0].slowdown_all, m1.latest()[0].slowdown_all)
      << "discounting contention misses lowers CAR_shared -> higher ratio";
}

TEST_F(BaselinesTest, ModelsReportTheirNames) {
  EXPECT_EQ(MiseModel().name(), "MISE");
  EXPECT_EQ(AsmModel().name(), "ASM");
}

// ---------------------------------------------------------------------------
// Priority-epoch driver
// ---------------------------------------------------------------------------

TEST_F(BaselinesTest, EpochDriverSchedule) {
  // interval 1000, epoch 100, 2 apps: cycles [800, 900) -> app 0,
  // [900, 1000) -> app 1, otherwise no priority.
  GpuConfig cfg;
  Gpu gpu(cfg, {AppLaunch{*find_app("VA"), 1}, AppLaunch{*find_app("SA"), 2}});
  PriorityEpochDriver driver(1000, 100, 2);
  auto prio_at = [&](Cycle now) {
    driver.on_cycle(now, gpu);
    return gpu.partition(0).mc().priority_app();
  };
  EXPECT_EQ(prio_at(0), kInvalidApp);
  EXPECT_EQ(prio_at(500), kInvalidApp);
  EXPECT_EQ(prio_at(800), 0);
  EXPECT_EQ(prio_at(899), 0);
  EXPECT_EQ(prio_at(900), 1);
  EXPECT_EQ(prio_at(999), 1);
  EXPECT_EQ(prio_at(1000), kInvalidApp) << "next window restarts cleanly";
  EXPECT_EQ(prio_at(1800), 0);
}

TEST_F(BaselinesTest, EpochDriverAppliesToAllPartitions) {
  GpuConfig cfg;
  Gpu gpu(cfg, {AppLaunch{*find_app("VA"), 1}, AppLaunch{*find_app("SA"), 2}});
  PriorityEpochDriver driver(1000, 100, 2);
  driver.on_cycle(850, gpu);
  for (int p = 0; p < gpu.num_partitions(); ++p) {
    EXPECT_EQ(gpu.partition(p).mc().priority_app(), 0);
  }
}

TEST_F(BaselinesTest, EpochDriverDefaultsLeaveMeasurementRegion) {
  GpuConfig cfg;
  auto driver = PriorityEpochDriver::with_defaults(cfg, 4);
  // 4 epochs of interval/20 leave 80% of the interval priority-free;
  // construction would assert otherwise.
  SUCCEED();
}

}  // namespace
}  // namespace gpusim
