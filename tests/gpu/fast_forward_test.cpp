// Idle-cycle fast-forward determinism.
//
// The fast-forward (Gpu::dead_cycles_until / skip_dead_cycles) is an
// invariant-preserving optimization: a run with it enabled must be
// *indistinguishable* from the per-cycle loop in every observable —
// interval samples field by field, final counters, and the exact cycle at
// which the progress watchdog fires.  These tests run the same workload
// both ways and diff everything.
#include "gpu/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/sim_error.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

struct RecordingObserver : IntervalObserver {
  std::vector<IntervalSample> samples;
  void on_interval(const IntervalSample& sample, Gpu&) override {
    samples.push_back(sample);
  }
};

void expect_same_sample(const IntervalSample& a, const IntervalSample& b,
                        std::size_t idx) {
  SCOPED_TRACE("interval " + std::to_string(idx));
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.total_sms, b.total_sms);
  EXPECT_EQ(a.count_apps, b.count_apps);
  EXPECT_EQ(a.total_requests_served, b.total_requests_served);
  EXPECT_EQ(a.nonpriority_cycles, b.nonpriority_cycles);
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    SCOPED_TRACE("app " + std::to_string(i));
    const AppIntervalData& x = a.apps[i];
    const AppIntervalData& y = b.apps[i];
    EXPECT_EQ(x.app, y.app);
    EXPECT_EQ(x.alpha, y.alpha);  // same integer inputs => bit-equal
    EXPECT_EQ(x.sm_cycles, y.sm_cycles);
    EXPECT_EQ(x.num_sms, y.num_sms);
    EXPECT_EQ(x.instructions, y.instructions);
    EXPECT_EQ(x.active_blocks, y.active_blocks);
    EXPECT_EQ(x.remaining_blocks, y.remaining_blocks);
    EXPECT_EQ(x.requests_served, y.requests_served);
    EXPECT_EQ(x.bank_service_time, y.bank_service_time);
    EXPECT_EQ(x.erb_miss, y.erb_miss);
    EXPECT_EQ(x.ellc_miss_scaled, y.ellc_miss_scaled);
    EXPECT_EQ(x.l2_accesses, y.l2_accesses);
    EXPECT_EQ(x.l2_hits, y.l2_hits);
    EXPECT_EQ(x.blp, y.blp);
    EXPECT_EQ(x.blp_access, y.blp_access);
    EXPECT_EQ(x.priority_served, y.priority_served);
    EXPECT_EQ(x.priority_cycles, y.priority_cycles);
    EXPECT_EQ(x.nonpriority_served, y.nonpriority_served);
    EXPECT_EQ(x.l2_accesses_priority, y.l2_accesses_priority);
    EXPECT_EQ(x.l2_accesses_nonpriority, y.l2_accesses_nonpriority);
  }
}

/// Runs `launches` for `cycles` with the fast-forward on or off and
/// returns the simulation for counter inspection plus the sample stream.
struct RunResult {
  std::unique_ptr<Simulation> sim;
  std::vector<IntervalSample> samples;
};

RunResult run_co_run(const GpuConfig& cfg, std::vector<AppLaunch> launches,
                     int num_apps, Cycle cycles, bool fast_forward) {
  RunResult r;
  r.sim = std::make_unique<Simulation>(cfg, std::move(launches));
  r.sim->set_fast_forward(fast_forward);
  r.sim->gpu().set_partition(
      even_partition(r.sim->gpu().num_sms(), num_apps));
  RecordingObserver obs;
  r.sim->add_observer(&obs);
  r.sim->run(cycles);
  r.samples = std::move(obs.samples);
  return r;
}

TEST(FastForwardTest, TwoAppCoRunMatchesSlowPathExactly) {
  GpuConfig cfg;
  cfg.estimation_interval = 10'000;
  const std::vector<AppLaunch> launches = {AppLaunch{*find_app("VA"), 42},
                                           AppLaunch{*find_app("SD"), 43}};
  const Cycle cycles = 60'000;

  RunResult fast = run_co_run(cfg, launches, 2, cycles, true);
  RunResult slow = run_co_run(cfg, launches, 2, cycles, false);

  EXPECT_EQ(slow.sim->gpu().fast_forwarded_cycles(), 0u);
  EXPECT_EQ(fast.sim->gpu().now(), slow.sim->gpu().now());
  ASSERT_EQ(fast.samples.size(), slow.samples.size());
  EXPECT_EQ(fast.samples.size(), cycles / cfg.estimation_interval);
  for (std::size_t i = 0; i < fast.samples.size(); ++i) {
    expect_same_sample(fast.samples[i], slow.samples[i], i);
  }
  for (AppId a = 0; a < 2; ++a) {
    EXPECT_EQ(fast.sim->gpu().instructions().total(a),
              slow.sim->gpu().instructions().total(a));
  }
}

TEST(FastForwardTest, IdleTailIsSkippedWithIdenticalCounters) {
  // A finite app (restart_on_finish off, tiny grid) runs dry well before
  // the cycle budget; the dead tail is exactly where the fast-forward pays
  // off, and it must still accrue the same idle/servicing counters as the
  // slow path.
  GpuConfig cfg;
  cfg.estimation_interval = 50'000;
  KernelProfile tiny = *find_app("CS");
  tiny.blocks_total = 64;
  const std::vector<AppLaunch> launches = {
      AppLaunch{tiny, 7, /*restart_on_finish=*/false}};
  const Cycle cycles = 200'000;

  RunResult fast = run_co_run(cfg, launches, 1, cycles, true);
  RunResult slow = run_co_run(cfg, launches, 1, cycles, false);

  EXPECT_GT(fast.sim->gpu().fast_forwarded_cycles(), 0u)
      << "a finished app's tail should be provably dead";
  EXPECT_EQ(fast.sim->gpu().now(), slow.sim->gpu().now());
  EXPECT_EQ(fast.sim->gpu().instructions().total(0),
            slow.sim->gpu().instructions().total(0));
  ASSERT_EQ(fast.samples.size(), slow.samples.size());
  for (std::size_t i = 0; i < fast.samples.size(); ++i) {
    expect_same_sample(fast.samples[i], slow.samples[i], i);
  }
}

/// Wedges the machine with a frozen partition and returns the cycle at
/// which the watchdog fires for the given stall threshold.
Cycle watchdog_fire_cycle(Cycle threshold) {
  GpuConfig cfg;
  const auto& apps = app_registry();
  Simulation sim(cfg, {AppLaunch{apps[0], 42}, AppLaunch{apps[1], 43}});
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  sim.set_watchdog(threshold);

  FaultInjector injector(FaultSchedule{}.stall_partition(0, 1'000));
  sim.gpu().set_fault_injector(&injector);

  try {
    sim.run(2'000'000);
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kWatchdogStall);
    EXPECT_TRUE(e.has_cycle());
    return e.error_cycle();
  }
  ADD_FAILURE() << "watchdog never fired on a frozen partition";
  return 0;
}

TEST(FastForwardTest, WatchdogFiresAtSameCyclesAfterLoopHoisting) {
  // Regression for the chunked run() loop: the watchdog must still sample
  // exactly at multiples of its check period, so (a) every firing cycle is
  // period-aligned and (b) doubling a period-aligned threshold delays the
  // firing by exactly the threshold delta — both held by the old per-cycle
  // loop and must survive the hoisting.
  constexpr Cycle kPeriod = 1024;  // kWatchdogCheckPeriod in simulator.cpp
  const Cycle fire_w = watchdog_fire_cycle(4 * kPeriod);
  const Cycle fire_2w = watchdog_fire_cycle(8 * kPeriod);
  ASSERT_GT(fire_w, 0u);
  ASSERT_GT(fire_2w, 0u);
  EXPECT_EQ(fire_w % kPeriod, 0u);
  EXPECT_EQ(fire_2w % kPeriod, 0u);
  EXPECT_EQ(fire_2w - fire_w, 4 * kPeriod);
}

}  // namespace
}  // namespace gpusim
