#include "gpu/app_runtime.hpp"

#include <gtest/gtest.h>

#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

KernelProfile small_grid() {
  KernelProfile p = *find_app("VA");
  p.blocks_total = 4;
  return p;
}

TEST(AppRuntimeTest, AllocatesBlocksInOrder) {
  AppRuntime rt(small_grid(), 0, 1, /*restart=*/false);
  for (u64 i = 0; i < 4; ++i) {
    const auto block = rt.try_alloc_block();
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(*block, i);
  }
  EXPECT_FALSE(rt.try_alloc_block().has_value()) << "grid exhausted";
  EXPECT_EQ(rt.kernel_restarts(), 0u);
}

TEST(AppRuntimeTest, RestartOnFinishWrapsTheGrid) {
  AppRuntime rt(small_grid(), 0, 1, /*restart=*/true);
  for (int i = 0; i < 4; ++i) rt.try_alloc_block();
  const auto wrapped = rt.try_alloc_block();
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_EQ(*wrapped, 0u);
  EXPECT_EQ(rt.kernel_restarts(), 1u);
}

TEST(AppRuntimeTest, RemainingBlocksWithoutRestart) {
  AppRuntime rt(small_grid(), 0, 1, /*restart=*/false);
  EXPECT_EQ(rt.remaining_blocks(), 4u);
  rt.try_alloc_block();
  rt.on_block_complete(0);
  EXPECT_EQ(rt.remaining_blocks(), 3u);
  for (int i = 0; i < 3; ++i) {
    rt.try_alloc_block();
    rt.on_block_complete(i + 1);
  }
  EXPECT_EQ(rt.remaining_blocks(), 0u);
  EXPECT_EQ(rt.blocks_completed(), 4u);
}

TEST(AppRuntimeTest, RemainingBlocksUnderRestartReportsGridSize) {
  AppRuntime rt(small_grid(), 0, 1, /*restart=*/true);
  for (int i = 0; i < 10; ++i) {
    rt.try_alloc_block();
    rt.on_block_complete(0);
  }
  EXPECT_EQ(rt.remaining_blocks(), 4u) << "unbounded supply -> grid size";
}

TEST(AppRuntimeTest, ExposesLaunchIdentity) {
  AppRuntime rt(small_grid(), 3, 77);
  EXPECT_EQ(rt.app(), 3);
  EXPECT_EQ(rt.app_seed(), 77u);
  EXPECT_EQ(rt.profile().abbr, "VA");
}

}  // namespace
}  // namespace gpusim
