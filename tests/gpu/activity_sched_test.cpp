// Activity-tracked cycle engine equivalence suite.
//
// The engine (gpu/gpu.hpp) is an execution strategy, not a model change:
// a run with it enabled must be bit-identical to the per-cycle loop in
// every piece of simulated state.  These tests sweep randomized configs —
// SM/partition counts, queue depths, retry knobs, random workload mixes —
// through the divergence auditor with the engine (plus fast-forward) on
// one side and both off on the other, and rotate through the hazardous
// scenarios: fault schedules (which pin the engine off mid-construction),
// mid-run repartitions (engine state rebuild), and snapshot/restore
// (synced-cursor reset on load).  Any hash mismatch names the component.
#include "gpu/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/rng.hpp"
#include "harness/divergence.hpp"
#include "kernels/app_registry.hpp"
#include "sched/policies.hpp"

namespace gpusim {
namespace {

struct RandomCase {
  GpuConfig cfg;
  std::vector<AppLaunch> launches;
  int num_apps = 0;
  Cycle cycles = 0;
  Cycle stride = 0;
  std::string fault_spec;  // empty = no faults
};

RandomCase make_case(u64 seed, bool with_faults) {
  Rng rng(seed);
  RandomCase c;
  c.cfg.num_sms = 8 + static_cast<int>(rng.next_below(9));        // 8..16
  c.cfg.num_partitions = 2 + static_cast<int>(rng.next_below(5));  // 2..6
  c.cfg.noc_queue_depth = 4 << rng.next_below(3);                  // 4/8/16
  c.cfg.partition_resp_queue_depth =
      64 << rng.next_below(3);                                     // 64..256
  c.cfg.mshr_retry_enabled = rng.next_bool(0.5);
  c.cfg.estimation_interval = 5'000 + 1'000 * rng.next_below(6);
  c.num_apps = 2 + static_cast<int>(rng.next_below(3));            // 2..4
  const auto& registry = app_registry();
  for (int i = 0; i < c.num_apps; ++i) {
    const KernelProfile& profile = registry[rng.next_below(registry.size())];
    c.launches.push_back(AppLaunch{profile, 100 + seed * 8 + i});
  }
  c.cycles = 30'000 + 5'000 * rng.next_below(7);                   // 30k..60k
  c.stride = 3'000 + 500 * rng.next_below(5);
  if (with_faults) {
    const u64 nth = 100 + rng.next_below(300);
    const u64 part = rng.next_below(c.cfg.num_partitions);
    const u64 from = 1'000 + rng.next_below(5'000);
    const u64 until = from + 2'000 + rng.next_below(6'000);
    c.fault_spec = "drop-resp:nth=" + std::to_string(nth) +
                   ";stall:part=" + std::to_string(part) +
                   ",from=" + std::to_string(from) +
                   ",until=" + std::to_string(until) +
                   ";seed=" + std::to_string(1 + rng.next_below(1000));
  }
  return c;
}

std::unique_ptr<Simulation> make_sim(const RandomCase& c, bool engine_on) {
  auto sim = std::make_unique<Simulation>(c.cfg, c.launches);
  sim->set_activity_sched(engine_on);
  sim->set_fast_forward(engine_on);
  sim->gpu().set_partition(even_partition(sim->gpu().num_sms(), c.num_apps));
  return sim;
}

void expect_equivalent_finals(Simulation& a, Simulation& b,
                              const RandomCase& c) {
  EXPECT_EQ(a.gpu().now(), b.gpu().now());
  EXPECT_EQ(a.state_hash(), b.state_hash());
  for (AppId app = 0; app < static_cast<AppId>(c.num_apps); ++app) {
    EXPECT_EQ(a.gpu().instructions().total(app),
              b.gpu().instructions().total(app))
        << "app " << static_cast<int>(app);
  }
}

TEST(ActivitySchedTest, RandomConfigsAuditCleanEngineOnVsOff) {
  // Scenario rotation by index: 0 plain, 1 fault schedule, 2 mid-run
  // repartition, 3 snapshot/restore — at least 20 configs total.
  constexpr int kCases = 24;
  for (int i = 0; i < kCases; ++i) {
    const int scenario = i % 4;
    SCOPED_TRACE("case " + std::to_string(i) + " scenario " +
                 std::to_string(scenario));
    const RandomCase c = make_case(7'000 + i, scenario == 1);

    auto a = make_sim(c, /*engine_on=*/true);
    auto b = make_sim(c, /*engine_on=*/false);

    // Each side gets its own injector built from the same spec; identical
    // schedules and seeds inject identical faults.
    std::unique_ptr<FaultInjector> inj_a;
    std::unique_ptr<FaultInjector> inj_b;
    if (!c.fault_spec.empty()) {
      const FaultSchedule schedule = FaultSchedule::parse(c.fault_spec);
      inj_a = std::make_unique<FaultInjector>(schedule);
      inj_b = std::make_unique<FaultInjector>(schedule);
      a->gpu().set_fault_injector(inj_a.get());
      b->gpu().set_fault_injector(inj_b.get());
    }

    const Cycle half = c.cycles / 2;
    if (scenario == 2) {
      // Repartition mid-run: the engine must resync accruals and rebuild
      // its wake state when SM ownership changes under it.
      DivergenceReport first = audit_divergence(*a, *b, half, c.stride);
      ASSERT_FALSE(first.diverged) << first.to_string();
      std::vector<AppId> uneven = even_partition(c.cfg.num_sms, c.num_apps);
      uneven.front() = static_cast<AppId>(c.num_apps - 1);  // donate one SM
      a->gpu().set_partition(uneven);
      b->gpu().set_partition(uneven);
      DivergenceReport second =
          audit_divergence(*a, *b, c.cycles - half, c.stride);
      ASSERT_FALSE(second.diverged) << second.to_string();
    } else if (scenario == 3) {
      // Snapshot the engine-on run mid-flight and restore it into a fresh
      // simulation; the restored run must stay in lockstep with the
      // never-interrupted engine-off run.
      DivergenceReport first = audit_divergence(*a, *b, half, c.stride);
      ASSERT_FALSE(first.diverged) << first.to_string();
      const std::vector<u8> bytes = a->snapshot();
      auto restored = make_sim(c, /*engine_on=*/true);
      restored->restore(bytes);
      DivergenceReport second =
          audit_divergence(*restored, *b, c.cycles - half, c.stride);
      ASSERT_FALSE(second.diverged) << second.to_string();
      expect_equivalent_finals(*restored, *b, c);
      continue;
    } else {
      DivergenceReport report = audit_divergence(*a, *b, c.cycles, c.stride);
      ASSERT_FALSE(report.diverged) << report.to_string();
    }
    expect_equivalent_finals(*a, *b, c);
  }
}

TEST(ActivitySchedTest, EngineToggleMidRunResyncsExactly) {
  // Flipping the engine off and back on mid-run is a pure execution-strategy
  // change: the toggled run must match an engine-off run cycle for cycle.
  const RandomCase c = make_case(9'001, /*with_faults=*/false);
  auto a = make_sim(c, /*engine_on=*/true);
  auto b = make_sim(c, /*engine_on=*/false);
  const Cycle third = c.cycles / 3;
  DivergenceReport r1 = audit_divergence(*a, *b, third, c.stride);
  ASSERT_FALSE(r1.diverged) << r1.to_string();
  a->set_activity_sched(false);
  DivergenceReport r2 = audit_divergence(*a, *b, third, c.stride);
  ASSERT_FALSE(r2.diverged) << r2.to_string();
  a->set_activity_sched(true);
  DivergenceReport r3 = audit_divergence(*a, *b, third, c.stride);
  ASSERT_FALSE(r3.diverged) << r3.to_string();
  expect_equivalent_finals(*a, *b, c);
}

TEST(ActivitySchedTest, EngineOnRunActuallyFastForwards) {
  // Guard against the engine silently disabling itself: a finite tiny app
  // runs dry early, and the engine-on run must skip the dead tail.
  GpuConfig cfg;
  KernelProfile tiny = *find_app("CS");
  tiny.blocks_total = 64;
  Simulation sim(cfg, {AppLaunch{tiny, 7, /*restart_on_finish=*/false}});
  sim.set_activity_sched(true);
  sim.set_fast_forward(true);
  sim.gpu().set_partition(even_partition(cfg.num_sms, 1));
  sim.run(200'000);
  EXPECT_GT(sim.gpu().fast_forwarded_cycles(), 0u);
}

}  // namespace
}  // namespace gpusim
