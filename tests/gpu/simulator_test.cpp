#include "gpu/simulator.hpp"

#include <gtest/gtest.h>

#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

struct RecordingObserver : IntervalObserver {
  std::vector<IntervalSample> samples;
  void on_interval(const IntervalSample& sample, Gpu&) override {
    samples.push_back(sample);
  }
};

struct CountingHook : CycleHook {
  u64 calls = 0;
  Cycle last = 0;
  void on_cycle(Cycle now, Gpu&) override {
    ++calls;
    last = now;
  }
};

TEST(SimulatorTest, FiresIntervalsAtConfiguredLength) {
  GpuConfig cfg;
  cfg.estimation_interval = 10'000;
  Simulation sim(cfg, {AppLaunch{*find_app("VA"), 42}});
  sim.gpu().set_partition(even_partition(16, 1));
  RecordingObserver obs;
  sim.add_observer(&obs);
  sim.run(45'000);
  EXPECT_EQ(sim.intervals_completed(), 4u);
  ASSERT_EQ(obs.samples.size(), 4u);
  for (const auto& s : obs.samples) {
    EXPECT_EQ(s.length, 10'000u);
  }
  EXPECT_EQ(obs.samples[2].start, 20'000u);
}

TEST(SimulatorTest, CycleHooksFireEveryCycle) {
  GpuConfig cfg;
  Simulation sim(cfg, {AppLaunch{*find_app("VA"), 42}});
  sim.gpu().set_partition(even_partition(16, 1));
  CountingHook hook;
  sim.add_cycle_hook(&hook);
  sim.run(5'000);
  EXPECT_EQ(hook.calls, 5'000u);
  EXPECT_EQ(hook.last, 4'999u);
}

TEST(SimulatorTest, ObserversFireInRegistrationOrder) {
  GpuConfig cfg;
  cfg.estimation_interval = 5'000;
  Simulation sim(cfg, {AppLaunch{*find_app("VA"), 42}});
  sim.gpu().set_partition(even_partition(16, 1));
  std::vector<int> order;
  struct Tagger : IntervalObserver {
    Tagger(std::vector<int>* o, int t) : order(o), tag(t) {}
    std::vector<int>* order;
    int tag;
    void on_interval(const IntervalSample&, Gpu&) override {
      order->push_back(tag);
    }
  };
  Tagger a(&order, 1);
  Tagger b(&order, 2);
  sim.add_observer(&a);
  sim.add_observer(&b);
  sim.run(5'000);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilInstructionsStopsAtTarget) {
  GpuConfig cfg;
  Simulation sim(cfg, {AppLaunch{*find_app("CS"), 42}});
  sim.gpu().set_partition(even_partition(16, 1));
  sim.run_until_instructions(0, 100'000, 1'000'000);
  EXPECT_GE(sim.gpu().instructions().total(0), 100'000u);
  EXPECT_LT(sim.gpu().now(), 200'000u) << "compute app reaches it quickly";
}

TEST(SimulatorTest, RunUntilInstructionsHonoursCycleCap) {
  GpuConfig cfg;
  Simulation sim(cfg, {AppLaunch{*find_app("SD"), 42}});
  sim.gpu().set_partition(even_partition(16, 1));
  sim.run_until_instructions(0, 1ull << 60, 20'000);
  EXPECT_EQ(sim.gpu().now(), 20'000u);
}

}  // namespace
}  // namespace gpusim
