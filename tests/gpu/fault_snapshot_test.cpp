// Kill/resume under fault: the injector's progress counters and RNG ride
// the snapshot walk, so an nth-event fault armed before a snapshot fires
// exactly once on the resumed machine — at the same event, leaving the
// resumed run hash-identical to the uninterrupted one.  Restoring into a
// simulation whose injector attachment differs from the snapshot is a
// typed error, not a silent desync.
#include <gtest/gtest.h>

#include <vector>

#include "common/fault_injection.hpp"
#include "common/sim_error.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

std::vector<AppLaunch> two_app_launches() {
  const auto& apps = app_registry();
  return {AppLaunch{apps[0], 42}, AppLaunch{apps[1], 43}};
}

std::unique_ptr<Simulation> make_sim(FaultInjector* injector) {
  GpuConfig cfg;
  auto sim = std::make_unique<Simulation>(cfg, two_app_launches());
  sim->gpu().set_partition(even_partition(cfg.num_sms, 2));
  if (injector != nullptr) sim->gpu().set_fault_injector(injector);
  return sim;
}

/// Response count after `cycles` on a healthy machine — used to aim an
/// nth-event fault past a snapshot point without hard-coding flow rates.
u64 responses_after(Cycle cycles) {
  FaultInjector probe((FaultSchedule()));
  auto sim = make_sim(&probe);
  sim->run(cycles);
  return probe.responses_seen();
}

TEST(FaultSnapshotTest, ArmedFaultFiresOnceOnTheResumedMachine) {
  const Cycle kSnapshotAt = 8'000;
  const Cycle kTail = 30'000;
  const u64 seen = responses_after(kSnapshotAt);
  // Both events land after the snapshot point but well inside the tail.
  const FaultSchedule sched = FaultSchedule{}
                                  .drop_response_nth(seen + 500)
                                  .nack_response(seen + 900, 200);

  FaultInjector ia(sched);
  auto a = make_sim(&ia);
  a->run(kSnapshotAt);
  ASSERT_EQ(ia.responses_dropped(), 0u) << "fault fired before the snapshot";
  const std::vector<u8> bytes = a->snapshot();
  a->run(kTail);
  ASSERT_EQ(ia.responses_dropped(), 1u);
  ASSERT_EQ(ia.nacks_issued(), 1u);

  // Fresh machine + fresh injector from the same schedule: restore must
  // put the response counter back, so the fault fires at the same event —
  // once, not zero times and not twice.
  FaultInjector ib(sched);
  auto b = make_sim(&ib);
  b->restore(bytes);
  EXPECT_EQ(ib.responses_seen(), seen);
  b->run(kTail);
  EXPECT_EQ(ib.responses_dropped(), 1u);
  EXPECT_EQ(ib.nacks_issued(), 1u);
  EXPECT_EQ(a->state_hash(), b->state_hash());
  EXPECT_EQ(a->gpu().audit_conservation().total_leaked(),
            b->gpu().audit_conservation().total_leaked());
}

TEST(FaultSnapshotTest, AttachmentMismatchIsRejectedBothWays) {
  FaultInjector injector(FaultSchedule{}.drop_response_nth(1'000'000));
  auto with_injector = make_sim(&injector);
  auto without = make_sim(nullptr);
  with_injector->run(2'000);
  without->run(2'000);

  const std::vector<u8> faulted_bytes = with_injector->snapshot();
  const std::vector<u8> clean_bytes = without->snapshot();

  auto bare = make_sim(nullptr);
  try {
    bare->restore(faulted_bytes);
    FAIL() << "restored a faulted snapshot without an injector attached";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot) << e.what();
  }

  FaultInjector other(FaultSchedule{}.drop_response_nth(1'000'000));
  auto armed = make_sim(&other);
  try {
    armed->restore(clean_bytes);
    FAIL() << "restored a clean snapshot into an injector-armed simulation";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot) << e.what();
  }
}

}  // namespace
}  // namespace gpusim
