#include "gpu/gpu.hpp"

#include <gtest/gtest.h>

#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

AppLaunch launch(const char* abbr, u64 seed = 42) {
  return AppLaunch{*find_app(abbr), seed};
}

TEST(EvenPartitionTest, SplitsEvenlyWithRemainderToFirstApps) {
  const auto p = even_partition(16, 2);
  ASSERT_EQ(p.size(), 16u);
  EXPECT_EQ(std::count(p.begin(), p.end(), 0), 8);
  EXPECT_EQ(std::count(p.begin(), p.end(), 1), 8);

  const auto q = even_partition(16, 3);
  EXPECT_EQ(std::count(q.begin(), q.end(), 0), 6);
  EXPECT_EQ(std::count(q.begin(), q.end(), 1), 5);
  EXPECT_EQ(std::count(q.begin(), q.end(), 2), 5);

  const auto r = even_partition(16, 4);
  for (AppId a = 0; a < 4; ++a) {
    EXPECT_EQ(std::count(r.begin(), r.end(), a), 4);
  }
}

TEST(GpuTest, CoRunMakesProgressForAllApps) {
  GpuConfig cfg;
  Gpu gpu(cfg, {launch("VA"), launch("SA", 43)});
  gpu.set_partition(even_partition(16, 2));
  gpu.run(20000);
  EXPECT_GT(gpu.instructions().total(0), 1000u);
  EXPECT_GT(gpu.instructions().total(1), 1000u);
  EXPECT_EQ(gpu.now(), 20000u);
}

TEST(GpuTest, DeterministicAcrossIdenticalRuns) {
  GpuConfig cfg;
  auto run_once = [&] {
    Gpu gpu(cfg, {launch("SD"), launch("SA", 43)});
    gpu.set_partition(even_partition(16, 2));
    gpu.run(15000);
    return std::make_pair(gpu.instructions().total(0),
                          gpu.instructions().total(1));
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(GpuTest, SeedChangesExecution) {
  GpuConfig cfg;
  auto instrs = [&](u64 seed) {
    Gpu gpu(cfg, {launch("SD", seed)});
    gpu.set_partition(even_partition(16, 1));
    gpu.run(15000);
    return gpu.instructions().total(0);
  };
  EXPECT_NE(instrs(1), instrs(2));
}

TEST(GpuTest, PartitionAssignmentReflectsRequest) {
  GpuConfig cfg;
  Gpu gpu(cfg, {launch("VA"), launch("SA", 43)});
  std::vector<AppId> want(16, 0);
  for (int s = 10; s < 16; ++s) want[s] = 1;
  gpu.set_partition(want);
  EXPECT_EQ(gpu.current_partition(), want);
  EXPECT_EQ(gpu.sms_assigned(0), 10);
  EXPECT_EQ(gpu.sms_assigned(1), 6);
  EXPECT_FALSE(gpu.migration_in_progress());
}

TEST(GpuTest, RepartitionDrainsThenMigrates) {
  GpuConfig cfg;
  Gpu gpu(cfg, {launch("VA"), launch("SA", 43)});
  gpu.set_partition(even_partition(16, 2));
  gpu.run(5000);

  // Move 4 SMs from app 0 to app 1.
  std::vector<AppId> want(16, 1);
  for (int s = 0; s < 4; ++s) want[s] = 0;
  gpu.set_partition(want);
  EXPECT_TRUE(gpu.migration_in_progress());

  Cycle waited = 0;
  while (gpu.migration_in_progress() && waited < 2'000'000) {
    gpu.run(1000);
    waited += 1000;
  }
  EXPECT_FALSE(gpu.migration_in_progress()) << "drain must complete";
  EXPECT_EQ(gpu.current_partition(), want);
  EXPECT_EQ(gpu.sms_assigned(1), 12);

  // Both apps continue to execute after the migration.
  const u64 before0 = gpu.instructions().total(0);
  const u64 before1 = gpu.instructions().total(1);
  gpu.run(10000);
  EXPECT_GT(gpu.instructions().total(0), before0);
  EXPECT_GT(gpu.instructions().total(1), before1);
}

TEST(GpuTest, IdleSmsAllowedInPartition) {
  GpuConfig cfg;
  Gpu gpu(cfg, {launch("VA")});
  std::vector<AppId> want(16, kInvalidApp);
  want[0] = 0;
  want[1] = 0;
  gpu.set_partition(want);
  gpu.run(5000);
  EXPECT_EQ(gpu.sms_assigned(0), 2);
  EXPECT_GT(gpu.instructions().total(0), 0u);
}

TEST(GpuTest, EndIntervalProducesConsistentSample) {
  GpuConfig cfg;
  Gpu gpu(cfg, {launch("VA"), launch("SD", 43)});
  gpu.set_partition(even_partition(16, 2));
  gpu.run(30000);
  const IntervalSample s = gpu.end_interval();
  EXPECT_EQ(s.length, 30000u);
  EXPECT_EQ(s.count_apps, 2);
  EXPECT_EQ(s.total_sms, 16);
  ASSERT_EQ(s.apps.size(), 2u);
  u64 total = 0;
  for (const auto& d : s.apps) {
    EXPECT_EQ(d.num_sms, 8);
    EXPECT_EQ(d.sm_cycles, 8u * 30000u);
    EXPECT_GT(d.instructions, 0u);
    EXPECT_GE(d.alpha, 0.0);
    EXPECT_LE(d.alpha, 1.0);
    EXPECT_GT(d.requests_served, 0u);
    EXPECT_GE(d.blp, d.blp_access);
    total += d.requests_served;
  }
  EXPECT_EQ(s.total_requests_served, total);

  // A second interval reports only the delta.
  gpu.run(10000);
  const IntervalSample s2 = gpu.end_interval();
  EXPECT_EQ(s2.length, 10000u);
  EXPECT_LT(s2.apps[0].instructions, s.apps[0].instructions + 1);
}

TEST(GpuTest, QuiescesAfterWorkStops) {
  GpuConfig cfg;
  Gpu gpu(cfg, {launch("VA")});
  gpu.set_partition(even_partition(16, 1));
  gpu.run(10000);
  // Drain every SM.
  gpu.set_partition(std::vector<AppId>(16, kInvalidApp));
  Cycle waited = 0;
  while ((gpu.migration_in_progress() || !gpu.memory_system_quiescent()) &&
         waited < 2'000'000) {
    gpu.run(1000);
    waited += 1000;
  }
  EXPECT_TRUE(gpu.memory_system_quiescent());
}

}  // namespace
}  // namespace gpusim
