// Snapshot/restore property tests: for random configs and workloads, a run
// that is snapshotted at cycle C and restored into a *fresh* simulation
// must be indistinguishable — final state hash, counters, and every
// interval sample after C — from the run that was never interrupted.
#include "gpu/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_error.hpp"
#include "common/simstate.hpp"
#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

/// Records a digest of every interval sample it observes, so two runs'
/// sample streams can be compared exactly.
class SampleRecorder final : public IntervalObserver {
 public:
  void on_interval(const IntervalSample& s, Gpu&) override {
    Hasher h;
    h.put_u64(s.start);
    h.put_u64(s.length);
    h.put_i32(s.total_sms);
    h.put_i32(s.count_apps);
    h.put_u64(s.total_requests_served);
    h.put_u64(s.nonpriority_cycles);
    for (const AppIntervalData& a : s.apps) {
      h.put_i32(a.app);
      h.put_double(a.alpha);
      h.put_u64(a.sm_cycles);
      h.put_i32(a.num_sms);
      h.put_u64(a.instructions);
      h.put_i32(a.active_blocks);
      h.put_u64(a.remaining_blocks);
      h.put_u64(a.requests_served);
      h.put_u64(a.bank_service_time);
      h.put_u64(a.erb_miss);
      h.put_u64(a.ellc_miss_scaled);
      h.put_u64(a.l2_accesses);
      h.put_u64(a.l2_hits);
      h.put_double(a.blp);
      h.put_double(a.blp_access);
    }
    digests.push_back(h.digest());
  }
  std::vector<u64> digests;
};

struct Trial {
  GpuConfig cfg;
  std::vector<AppLaunch> launches;
};

/// One random trial setup: 2–4 registry applications, random seeds, and a
/// couple of perturbed (but valid) config knobs.
Trial random_trial(Rng& rng) {
  Trial t;
  t.cfg.estimation_interval = rng.next_bool(0.5) ? 20'000 : 50'000;
  t.cfg.l2_mshr_entries = rng.next_bool(0.5) ? 64 : 128;
  t.cfg.dram_queue_capacity = rng.next_bool(0.5) ? 32 : 64;
  t.cfg.noc_queue_depth = rng.next_bool(0.5) ? 4 : 8;

  const auto& registry = app_registry();
  const int n = 2 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < n; ++i) {
    const KernelProfile& app =
        registry[static_cast<std::size_t>(rng.next_below(registry.size()))];
    t.launches.push_back(AppLaunch{app, rng.next_u64()});
  }
  return t;
}

struct SimUnderTest {
  explicit SimUnderTest(const Trial& t)
      : dase(std::make_unique<DaseModel>()),
        recorder(std::make_unique<SampleRecorder>()),
        sim(std::make_unique<Simulation>(t.cfg, t.launches)) {
    sim->gpu().set_partition(even_partition(
        sim->gpu().num_sms(), static_cast<int>(t.launches.size())));
    sim->add_observer(dase.get());
    sim->add_observer(recorder.get());
  }
  std::unique_ptr<DaseModel> dase;
  std::unique_ptr<SampleRecorder> recorder;
  std::unique_ptr<Simulation> sim;
};

TEST(SnapshotRoundTrip, RestoredRunMatchesUninterruptedRun) {
  Rng rng(20260805);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const Trial t = random_trial(rng);
    const Cycle snap_at = 20'000 + rng.next_below(5) * 10'000;
    const Cycle total = snap_at + 30'000 + rng.next_below(4) * 10'000;

    // Reference: uninterrupted run.
    SimUnderTest ref(t);
    ref.sim->run(total);
    const u64 ref_hash = ref.sim->state_hash();

    // Snapshot at snap_at, restore into a FRESH simulation, run to end.
    SimUnderTest first(t);
    first.sim->run(snap_at);
    const u64 snapshot_time_samples = first.sim->intervals_completed();
    const std::vector<u8> bytes = first.sim->snapshot();

    SimUnderTest resumed(t);
    resumed.sim->restore(bytes);
    EXPECT_EQ(resumed.sim->gpu().now(), snap_at);
    EXPECT_EQ(resumed.sim->state_hash(), first.sim->state_hash());
    resumed.sim->run(total - snap_at);

    EXPECT_EQ(resumed.sim->state_hash(), ref_hash);
    EXPECT_EQ(resumed.sim->gpu().now(), ref.sim->gpu().now());
    EXPECT_EQ(resumed.sim->intervals_completed(),
              ref.sim->intervals_completed());
    for (int a = 0; a < resumed.sim->gpu().num_apps(); ++a) {
      EXPECT_EQ(resumed.sim->gpu().instructions().total(a),
                ref.sim->gpu().instructions().total(a));
    }
    // Every interval sample fired after the snapshot point is identical.
    ASSERT_LE(snapshot_time_samples + resumed.recorder->digests.size(),
              ref.recorder->digests.size() + snapshot_time_samples + 1);
    ASSERT_EQ(resumed.recorder->digests.size(),
              ref.recorder->digests.size() - snapshot_time_samples);
    for (std::size_t i = 0; i < resumed.recorder->digests.size(); ++i) {
      EXPECT_EQ(resumed.recorder->digests[i],
                ref.recorder->digests[i + snapshot_time_samples]);
    }
    // DASE estimates at the end agree too.
    for (int a = 0; a < resumed.sim->gpu().num_apps(); ++a) {
      EXPECT_EQ(resumed.dase->mean_slowdown(a), ref.dase->mean_slowdown(a));
    }
  }
}

TEST(SnapshotRoundTrip, FastForwardOnOffHashesAgree) {
  Rng rng(77);
  const Trial t = random_trial(rng);
  SimUnderTest on(t);
  SimUnderTest off(t);
  on.sim->set_fast_forward(true);
  off.sim->set_fast_forward(false);
  for (int stride = 0; stride < 6; ++stride) {
    on.sim->run(10'000);
    off.sim->run(10'000);
    ASSERT_EQ(on.sim->state_hash(), off.sim->state_hash())
        << "diverged by stride " << stride;
  }
}

class SnapshotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gpusim_snap_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(SnapshotFileTest, FileRoundTripRestoresExactState) {
  Rng rng(5);
  const Trial t = random_trial(rng);
  SimUnderTest a(t);
  a.sim->run(30'000);
  const u64 fp = simulation_fingerprint(*a.sim, 17);
  write_snapshot_file(path("a.simstate"), *a.sim, fp);

  const SnapshotHeader hdr = read_snapshot_header(path("a.simstate"));
  EXPECT_EQ(hdr.version, kSnapshotVersion);
  EXPECT_EQ(hdr.cycle, 30'000u);
  EXPECT_EQ(hdr.fingerprint, fp);
  EXPECT_EQ(hdr.state_hash, a.sim->state_hash());

  SimUnderTest b(t);
  restore_snapshot_file(path("a.simstate"), *b.sim, fp);
  EXPECT_EQ(b.sim->gpu().now(), 30'000u);
  EXPECT_EQ(b.sim->state_hash(), a.sim->state_hash());
}

TEST_F(SnapshotFileTest, RejectsFingerprintMismatch) {
  Rng rng(6);
  const Trial t = random_trial(rng);
  SimUnderTest a(t);
  a.sim->run(5'000);
  write_snapshot_file(path("a.simstate"), *a.sim, 1111);
  SimUnderTest b(t);
  try {
    restore_snapshot_file(path("a.simstate"), *b.sim, 2222);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot);
    // Validation happens before any load: the target is untouched.
    EXPECT_EQ(b.sim->gpu().now(), 0u);
  }
}

TEST_F(SnapshotFileTest, RejectsCorruptedPayload) {
  Rng rng(7);
  const Trial t = random_trial(rng);
  SimUnderTest a(t);
  a.sim->run(5'000);
  const u64 fp = simulation_fingerprint(*a.sim, 0);
  write_snapshot_file(path("a.simstate"), *a.sim, fp);

  // Flip one byte in the middle of the payload.
  std::fstream f(path("a.simstate"),
                 std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekp(200, std::ios::beg);
  char c = 0;
  f.read(&c, 1);
  f.seekp(200, std::ios::beg);
  c = static_cast<char>(c ^ 0x40);
  f.write(&c, 1);
  f.close();

  SimUnderTest b(t);
  try {
    restore_snapshot_file(path("a.simstate"), *b.sim, fp);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot);
    EXPECT_EQ(b.sim->gpu().now(), 0u);
  }
}

TEST_F(SnapshotFileTest, RejectsTruncatedFile) {
  Rng rng(8);
  const Trial t = random_trial(rng);
  SimUnderTest a(t);
  a.sim->run(5'000);
  const u64 fp = simulation_fingerprint(*a.sim, 0);
  write_snapshot_file(path("a.simstate"), *a.sim, fp);
  std::filesystem::resize_file(
      path("a.simstate"), std::filesystem::file_size(path("a.simstate")) / 2);
  SimUnderTest b(t);
  EXPECT_THROW(restore_snapshot_file(path("a.simstate"), *b.sim, fp),
               SimError);
}

TEST_F(SnapshotFileTest, RejectsNonSnapshotFile) {
  {
    std::ofstream out(path("junk.simstate"), std::ios::binary);
    out << "definitely not a snapshot";
  }
  Rng rng(9);
  const Trial t = random_trial(rng);
  SimUnderTest b(t);
  EXPECT_THROW(restore_snapshot_file(path("junk.simstate"), *b.sim, 0),
               SimError);
}

TEST(SnapshotRoundTrip, RestoreRejectsObserverCountMismatch) {
  Rng rng(10);
  const Trial t = random_trial(rng);
  SimUnderTest a(t);
  a.sim->run(1'000);
  const std::vector<u8> bytes = a.sim->snapshot();

  // A simulation with a different observer set must refuse the payload.
  DaseModel dase;
  Simulation bare(t.cfg, t.launches);
  bare.gpu().set_partition(even_partition(
      bare.gpu().num_sms(), static_cast<int>(t.launches.size())));
  bare.add_observer(&dase);  // one observer vs SimUnderTest's two
  EXPECT_THROW(bare.restore(bytes), SimError);
}

}  // namespace
}  // namespace gpusim
