#include "kernels/app_registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gpusim {
namespace {

TEST(RegistryTest, HasAllFifteenPaperApplications) {
  EXPECT_EQ(app_count(), 15);
  // Table III order and abbreviations.
  const std::vector<std::string> expected = {
      "BS", "AA", "CT", "CS", "QR", "VA", "SB", "SA",
      "SP", "AT", "SN", "SC", "BG", "NN", "SD"};
  const auto& apps = app_registry();
  ASSERT_EQ(apps.size(), expected.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(apps[i].abbr, expected[i]);
  }
}

TEST(RegistryTest, FindAppByAbbreviation) {
  const auto sd = find_app("SD");
  ASSERT_TRUE(sd.has_value());
  EXPECT_EQ(sd->name, "srad");
  EXPECT_FALSE(find_app("XX").has_value());
  EXPECT_FALSE(find_app("").has_value());
}

TEST(RegistryTest, Table3BandwidthValuesMatchPaper) {
  // Spot-check the utilisations the paper reports.
  EXPECT_DOUBLE_EQ(find_app("SB")->table3_bw_util, 0.68);
  EXPECT_DOUBLE_EQ(find_app("BS")->table3_bw_util, 0.65);
  EXPECT_DOUBLE_EQ(find_app("SD")->table3_bw_util, 0.40);
  EXPECT_DOUBLE_EQ(find_app("QR")->table3_bw_util, 0.14);
  EXPECT_DOUBLE_EQ(find_app("CT")->table3_bw_util, 0.16);
}

class RegistryProfileTest : public ::testing::TestWithParam<int> {};

TEST_P(RegistryProfileTest, ProfileIsInternallyConsistent) {
  const KernelProfile& p = app_registry()[GetParam()];
  EXPECT_FALSE(p.name.empty());
  EXPECT_FALSE(p.abbr.empty());
  EXPECT_GT(p.mem_fraction, 0.0);
  EXPECT_LE(p.mem_fraction, 1.0);
  EXPECT_GE(p.txns_per_mem_instr, 1);
  EXPECT_LE(p.txns_per_mem_instr, 32);
  EXPECT_GE(p.seq_locality, 0.0);
  EXPECT_LE(p.seq_locality, 1.0);
  EXPECT_GT(p.working_set_bytes, p.hot_set_bytes);
  EXPECT_GT(p.instrs_per_warp, 0u);
  EXPECT_GT(p.warps_per_block, 0);
  EXPECT_LE(p.warps_per_block, 48);
  EXPECT_GT(p.blocks_total, 0);
  EXPECT_GE(p.hot_fraction, 0.0);
  EXPECT_LT(p.hot_fraction, 1.0);
  EXPECT_GE(p.table3_bw_util, 0.1);
  EXPECT_LE(p.table3_bw_util, 0.75);
  if (p.hot_fraction > 0.0) EXPECT_GT(p.hot_set_bytes, 0u);
  // Mean compute run is consistent with the memory fraction.
  if (p.mem_fraction < 1.0) {
    EXPECT_NEAR(p.mean_compute_run(),
                (1.0 - p.mem_fraction) / p.mem_fraction, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, RegistryProfileTest, ::testing::Range(0, 15),
                         [](const auto& info) {
                           return app_registry()[info.param].abbr;
                         });

TEST(RegistryTest, AbbreviationsAreUnique) {
  std::set<std::string> seen;
  for (const auto& app : app_registry()) {
    EXPECT_TRUE(seen.insert(app.abbr).second) << app.abbr;
  }
}

}  // namespace
}  // namespace gpusim
