#include "kernels/workload_sets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gpusim {
namespace {

TEST(WorkloadSetsTest, AllPairsCountIsChoose15Two) {
  const auto pairs = all_two_app_workloads();
  EXPECT_EQ(pairs.size(), 105u);  // C(15, 2)
  std::set<std::string> labels;
  for (const auto& w : pairs) {
    ASSERT_EQ(w.apps.size(), 2u);
    EXPECT_NE(w.apps[0].abbr, w.apps[1].abbr);
    EXPECT_TRUE(labels.insert(w.label()).second) << w.label();
  }
}

TEST(WorkloadSetsTest, LabelJoinsAbbreviations) {
  const auto pairs = all_two_app_workloads();
  EXPECT_EQ(pairs.front().label(), "BS+AA");
}

TEST(WorkloadSetsTest, RandomQuadsAreDistinctAndDeterministic) {
  const auto a = random_four_app_workloads(30, 99);
  const auto b = random_four_app_workloads(30, 99);
  ASSERT_EQ(a.size(), 30u);
  std::set<std::string> labels;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].apps.size(), 4u);
    EXPECT_EQ(a[i].label(), b[i].label()) << "determinism";
    // Apps within one quad are distinct.
    std::set<std::string> abbrs;
    for (const auto& app : a[i].apps) {
      EXPECT_TRUE(abbrs.insert(app.abbr).second);
    }
    // Quads are distinct as sets.
    std::vector<std::string> sorted;
    for (const auto& app : a[i].apps) sorted.push_back(app.abbr);
    std::sort(sorted.begin(), sorted.end());
    std::string key;
    for (const auto& s : sorted) key += s + "+";
    EXPECT_TRUE(labels.insert(key).second) << key;
  }
}

TEST(WorkloadSetsTest, DifferentSeedsGiveDifferentQuads) {
  const auto a = random_four_app_workloads(10, 1);
  const auto b = random_four_app_workloads(10, 2);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    same += a[i].label() == b[i].label() ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

TEST(WorkloadSetsTest, MotivationSetContainsPaperPair) {
  const auto set = motivation_workloads();
  EXPECT_EQ(set.size(), 5u);
  // The paper's Fig. 2 fourth bar is SD+SA with unfairness 2.51.
  EXPECT_EQ(set[3].label(), "SD+SA");
  for (const auto& w : set) EXPECT_EQ(w.apps.size(), 2u);
}

TEST(WorkloadSetsTest, RandomPairsDistinctAndBounded) {
  const auto pairs = random_two_app_workloads(30, 7);
  EXPECT_EQ(pairs.size(), 30u);
  std::set<std::string> labels;
  for (const auto& w : pairs) {
    EXPECT_TRUE(labels.insert(w.label()).second);
  }
  // Requesting more than C(15,2) caps at 105.
  EXPECT_EQ(random_two_app_workloads(1000, 7).size(), 105u);
}

}  // namespace
}  // namespace gpusim
