#include "kernels/address_stream.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

KernelProfile test_profile() {
  KernelProfile p;
  p.name = "test";
  p.abbr = "TT";
  p.mem_fraction = 0.5;
  p.txns_per_mem_instr = 2;
  p.seq_locality = 0.8;
  p.working_set_bytes = 64ull << 20;
  p.warps_per_block = 8;
  return p;
}

TEST(AddressStreamTest, DeterministicForSameSeeds) {
  const KernelProfile p = test_profile();
  BlockStream b1 = AddressStream::make_block_stream(p, 42, 3);
  BlockStream b2 = AddressStream::make_block_stream(p, 42, 3);
  EXPECT_EQ(b1.base_line, b2.base_line);
  AddressStream s1(&p, 0, 42, 3, 1, &b1);
  AddressStream s2(&p, 0, 42, 3, 1, &b2);
  std::vector<u64> a1, a2;
  for (int i = 0; i < 200; ++i) {
    a1.clear();
    a2.clear();
    s1.next_mem_instr(a1);
    s2.next_mem_instr(a2);
    ASSERT_EQ(a1, a2);
    ASSERT_EQ(s1.next_compute_run(), s2.next_compute_run());
  }
}

TEST(AddressStreamTest, AddressesStayInsideAppCarveOut) {
  const KernelProfile p = test_profile();
  for (AppId app : {0, 1, 3}) {
    BlockStream b = AddressStream::make_block_stream(p, 7, 0);
    AddressStream s(&p, app, 7, 0, 0, &b);
    std::vector<u64> addrs;
    for (int i = 0; i < 500; ++i) s.next_mem_instr(addrs);
    const u64 lo = app_address_base(app);
    const u64 hi = lo + p.working_set_bytes;
    for (u64 a : addrs) {
      ASSERT_GE(a, lo);
      ASSERT_LT(a, hi);
      ASSERT_EQ(a % AddressStream::kLineBytes, 0u) << "line aligned";
    }
  }
}

TEST(AddressStreamTest, EmitsExactlyTxnsPerInstruction) {
  KernelProfile p = test_profile();
  p.txns_per_mem_instr = 4;
  BlockStream b = AddressStream::make_block_stream(p, 5, 0);
  AddressStream s(&p, 0, 5, 0, 0, &b);
  std::vector<u64> addrs;
  s.next_mem_instr(addrs);
  EXPECT_EQ(addrs.size(), 4u);
  s.next_mem_instr(addrs);
  EXPECT_EQ(addrs.size(), 8u);
}

TEST(AddressStreamTest, SharedCursorAdvancesAcrossWarps) {
  KernelProfile p = test_profile();
  p.seq_locality = 1.0;  // always coherent
  BlockStream block = AddressStream::make_block_stream(p, 11, 0);
  AddressStream w0(&p, 0, 11, 0, 0, &block);
  AddressStream w1(&p, 0, 11, 0, 1, &block);
  std::vector<u64> a0, a1;
  w0.next_mem_instr(a0);
  w1.next_mem_instr(a1);
  // Warp 1 continues exactly where warp 0 stopped.
  EXPECT_EQ(a1.front(), a0.back() + AddressStream::kLineBytes);
  EXPECT_EQ(block.cursor, 4u);  // 2 txns consumed by each warp
}

TEST(AddressStreamTest, FullySequentialStreamIsConsecutive) {
  KernelProfile p = test_profile();
  p.seq_locality = 1.0;
  p.hot_fraction = 0.0;
  BlockStream block = AddressStream::make_block_stream(p, 13, 2);
  AddressStream s(&p, 0, 13, 2, 0, &block);
  std::vector<u64> addrs;
  for (int i = 0; i < 100; ++i) s.next_mem_instr(addrs);
  for (std::size_t i = 1; i < addrs.size(); ++i) {
    ASSERT_EQ(addrs[i], addrs[i - 1] + AddressStream::kLineBytes);
  }
}

TEST(AddressStreamTest, HotFractionRoughlyHonoured) {
  KernelProfile p = test_profile();
  p.hot_fraction = 0.4;
  p.hot_set_bytes = 256 << 10;
  BlockStream b = AddressStream::make_block_stream(p, 3, 0);
  AddressStream s(&p, 0, 3, 0, 0, &b);
  const u64 hot_end =
      app_address_base(0) + p.hot_set_bytes;
  int hot = 0;
  constexpr int kInstrs = 20000;
  std::vector<u64> addrs;
  for (int i = 0; i < kInstrs; ++i) {
    addrs.clear();
    s.next_mem_instr(addrs);
    if (addrs.front() < hot_end) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / kInstrs, 0.4, 0.03);
}

TEST(AddressStreamTest, ScatterBalancesAcrossPartitions) {
  // Regression test: row-span-aligned scatter bases are multiples of the
  // partition count, so without the in-row offset every scattered access
  // would land on partition 0.
  KernelProfile p = test_profile();
  p.seq_locality = 0.0;  // all scatter
  p.txns_per_mem_instr = 1;
  BlockStream b = AddressStream::make_block_stream(p, 17, 0);
  AddressStream s(&p, 0, 17, 0, 0, &b);
  std::map<int, int> partition_counts;
  std::vector<u64> addrs;
  constexpr int kInstrs = 12000;
  for (int i = 0; i < kInstrs; ++i) {
    addrs.clear();
    s.next_mem_instr(addrs);
    ++partition_counts[static_cast<int>((addrs[0] / 128) % 6)];
  }
  for (int part = 0; part < 6; ++part) {
    EXPECT_NEAR(partition_counts[part], kInstrs / 6.0, kInstrs / 6.0 * 0.15)
        << "partition " << part;
  }
}

TEST(AddressStreamTest, ComputeRunLengthNearMean) {
  KernelProfile p = test_profile();
  p.mem_fraction = 0.1;  // mean run = 9
  BlockStream b = AddressStream::make_block_stream(p, 23, 0);
  AddressStream s(&p, 0, 23, 0, 0, &b);
  double total = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const u64 run = s.next_compute_run();
    EXPECT_GE(run, 4u);   // >= 0.5 * mean (rounded)
    EXPECT_LE(run, 14u);  // <= 1.5 * mean (rounded)
    total += static_cast<double>(run);
  }
  EXPECT_NEAR(total / kDraws, 9.0, 0.25);
}

class AllAppsStreamTest : public ::testing::TestWithParam<int> {};

TEST_P(AllAppsStreamTest, RegistryProfileGeneratesValidStream) {
  const KernelProfile& p = app_registry()[GetParam()];
  BlockStream b = AddressStream::make_block_stream(p, 42, 0);
  AddressStream s(&p, 2, 42, 0, 0, &b);
  std::vector<u64> addrs;
  for (int i = 0; i < 1000; ++i) s.next_mem_instr(addrs);
  EXPECT_EQ(addrs.size(), 1000u * p.txns_per_mem_instr);
  const u64 lo = app_address_base(2);
  for (u64 a : addrs) {
    ASSERT_GE(a, lo);
    ASSERT_LT(a, lo + p.working_set_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AllAppsStreamTest, ::testing::Range(0, 15),
                         [](const auto& info) {
                           return app_registry()[info.param].abbr;
                         });

}  // namespace
}  // namespace gpusim
