// PolicyGovernor unit tests: decision validation/clamping, the drain
// watchdog (typed kMigrationStalled and the forced-preemption fallback),
// the starvation and thrash breakers with the even-split fallback ladder,
// the estimate-confidence gate (NaN / zero / jumping estimates are never
// forwarded into a partition change), and byte-identical serialization of
// governor state.
#include "sched/governor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/sim_error.hpp"
#include "common/simstate.hpp"
#include "dase/estimator.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

/// A scripted estimator: returns whatever the test programs, so the
/// confidence gate can be driven with NaN / zero / jumping estimates
/// without arranging real pathological interval samples.
class FakeEstimator final : public SlowdownEstimator {
 public:
  FakeEstimator() : SlowdownEstimator(0) {}
  std::string name() const override { return "FAKE"; }
  void script(int num_apps, double slowdown) {
    scripted_.assign(static_cast<std::size_t>(num_apps), SlowdownEstimate{});
    for (SlowdownEstimate& e : scripted_) {
      e.valid = true;
      e.slowdown_assigned = slowdown;
      e.slowdown_all = slowdown;
    }
  }

 protected:
  std::vector<SlowdownEstimate> estimate(const IntervalSample&,
                                         Gpu&) override {
    return scripted_;
  }

 private:
  std::vector<SlowdownEstimate> scripted_;
};

std::unique_ptr<Simulation> make_sim(int num_apps,
                                     Cycle estimation_interval = 10'000,
                                     bool assign_even = true) {
  GpuConfig cfg;
  cfg.estimation_interval = estimation_interval;
  static const char* kApps[] = {"VA", "SD", "SA", "CT"};
  std::vector<AppLaunch> launches;
  for (int i = 0; i < num_apps; ++i) {
    launches.push_back(AppLaunch{*find_app(kApps[i]), 100 + i * 17ull});
  }
  auto sim = std::make_unique<Simulation>(cfg, std::move(launches));
  if (assign_even) {
    sim->gpu().set_partition(even_partition(sim->gpu().num_sms(), num_apps));
  }
  return sim;
}

/// SMs owned by `app` under the partition the GPU is converging to.  The
/// unit tests never run the simulation, so reassigned SMs hold their
/// (eagerly dispatched) blocks forever and drains never settle — the
/// desired partition is what the governor actually decided.
int desired_sms(const Gpu& gpu, AppId app) {
  int n = 0;
  for (const AppId a : gpu.desired_partition()) n += a == app ? 1 : 0;
  return n;
}

IntervalSample dummy_sample(const Gpu& gpu) {
  IntervalSample s;
  s.total_sms = gpu.num_sms();
  s.count_apps = gpu.num_apps();
  s.apps.resize(static_cast<std::size_t>(gpu.num_apps()));
  for (int a = 0; a < gpu.num_apps(); ++a) s.apps[a].app = a;
  return s;
}

/// `base` with `n` of app 0's SMs handed to app 1 (idle SMs untouched).
std::vector<AppId> shifted(std::vector<AppId> base, int n) {
  for (AppId& owner : base) {
    if (n == 0) break;
    if (owner == 0) {
      owner = 1;
      --n;
    }
  }
  return base;
}

bool has_event(const Gpu& gpu, FrEvent kind) {
  for (const FlightEvent& e : gpu.flight_recorder().events_in_order()) {
    if (e.kind == kind) return true;
  }
  return false;
}

TEST(GovernorTest, DisabledGovernorIsPurePassThrough) {
  auto sim = make_sim(2);
  GovernorOptions o;
  o.enabled = false;
  PolicyGovernor gov(o);
  const std::vector<AppId> want =
      shifted(sim->gpu().current_partition(), 5);
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), want));
  EXPECT_EQ(sim->gpu().desired_partition(), want);
  gov.on_interval(dummy_sample(sim->gpu()), sim->gpu());
  EXPECT_EQ(gov.interventions(), 0u);
}

TEST(GovernorTest, HealthyProposalIsForwardedVerbatim) {
  auto sim = make_sim(2);
  PolicyGovernor gov(GovernorOptions{});
  const std::vector<AppId> want =
      shifted(sim->gpu().current_partition(), 2);
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), want));
  EXPECT_EQ(sim->gpu().desired_partition(), want);
  EXPECT_EQ(gov.clamps(), 0u);
  EXPECT_EQ(gov.interventions(), 0u);
}

TEST(GovernorTest, RepeatOfCurrentPartitionIsANoOp) {
  auto sim = make_sim(2);
  PolicyGovernor gov(GovernorOptions{});
  EXPECT_FALSE(
      gov.propose_partition(sim->gpu(), sim->gpu().current_partition()));
  EXPECT_EQ(gov.interventions(), 0u);
}

TEST(GovernorTest, WrongSizeProposalRaisesTypedInvariant) {
  auto sim = make_sim(2);
  PolicyGovernor gov(GovernorOptions{});
  try {
    gov.propose_partition(sim->gpu(), std::vector<AppId>(3, 0));
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kInvariant);
    EXPECT_EQ(e.component(), "sched.governor");
  }
}

TEST(GovernorTest, UnknownAppOrUnownedSmRaises) {
  auto sim = make_sim(2);
  PolicyGovernor gov(GovernorOptions{});
  std::vector<AppId> bad = sim->gpu().current_partition();
  bad[0] = 7;  // only apps 0 and 1 exist
  EXPECT_THROW(gov.propose_partition(sim->gpu(), bad), SimError);
  bad[0] = kInvalidApp;  // the governor's floor forbids idling SMs away
  EXPECT_THROW(gov.propose_partition(sim->gpu(), bad), SimError);
}

TEST(GovernorTest, FloorViolationIsClampedNotForwarded) {
  auto sim = make_sim(2);
  PolicyGovernor gov(GovernorOptions{});
  // The policy proposes starving app 1 outright.
  const std::vector<AppId> greedy(sim->gpu().num_sms(), 0);
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), greedy));
  EXPECT_GE(desired_sms(sim->gpu(), 1), 1);
  EXPECT_GE(gov.clamps(), 1u);
  EXPECT_TRUE(has_event(sim->gpu(), FrEvent::kGovClamp));
}

TEST(GovernorTest, PerEpochDeltaIsBounded) {
  auto sim = make_sim(2);
  GovernorOptions o;
  o.max_delta = 2;
  PolicyGovernor gov(o);
  // 8/8 -> 12/4 moves four SMs; the governor allows at most two per epoch.
  std::vector<AppId> want(sim->gpu().num_sms(), 0);
  for (int s = 12; s < 16; ++s) want[s] = 1;
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), want));
  EXPECT_EQ(desired_sms(sim->gpu(), 0), 10);
  EXPECT_EQ(desired_sms(sim->gpu(), 1), 6);
  EXPECT_GE(gov.clamps(), 1u);
}

TEST(GovernorTest, ClampedRebuildKeepsOwnedSmsInPlace) {
  auto sim = make_sim(2);
  GovernorOptions o;
  o.max_delta = 1;
  PolicyGovernor gov(o);
  const std::vector<AppId> before = sim->gpu().current_partition();
  std::vector<AppId> want(sim->gpu().num_sms(), 0);
  for (int s = 10; s < 16; ++s) want[s] = 1;
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), want));
  const std::vector<AppId> after = sim->gpu().desired_partition();
  int moved = 0;
  for (int s = 0; s < sim->gpu().num_sms(); ++s) {
    moved += after[s] != before[s] ? 1 : 0;
  }
  EXPECT_EQ(moved, 1) << "a delta-1 clamp must migrate exactly one SM";
}

TEST(GovernorTest, ThrashBreakerFreezesThenFallsBackToEvenSplit) {
  auto sim = make_sim(2);
  GovernorOptions o;
  o.breaker_trips = 1;  // first trip goes straight to the fallback
  PolicyGovernor gov(o);
  const std::vector<AppId> a = sim->gpu().current_partition();
  const std::vector<AppId> b = shifted(a, 1);
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), b));
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), a));
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), b));  // first flap
  EXPECT_FALSE(gov.propose_partition(sim->gpu(), a));  // second: breaker
  EXPECT_EQ(gov.breaker_trips(), 1u);
  EXPECT_TRUE(gov.fell_back_even());
  EXPECT_EQ(sim->gpu().desired_partition(),
            even_partition(sim->gpu().num_sms(), 2));
  EXPECT_TRUE(has_event(sim->gpu(), FrEvent::kGovBreakerTrip));
  EXPECT_TRUE(has_event(sim->gpu(), FrEvent::kGovFallbackEven));
  // Fallen back, every further proposal is rejected.
  EXPECT_FALSE(gov.propose_partition(sim->gpu(), b));
  EXPECT_GE(gov.rejects(), 1u);
  EXPECT_TRUE(has_event(sim->gpu(), FrEvent::kGovProposalRejected));
}

TEST(GovernorTest, BreakerFreezeRejectsUntilWindowPasses) {
  auto sim = make_sim(2);
  GovernorOptions o;
  o.thrash_window = 3;
  o.breaker_trips = 5;
  PolicyGovernor gov(o);
  const std::vector<AppId> a = sim->gpu().current_partition();
  const std::vector<AppId> b = shifted(a, 1);
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), b));
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), a));
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), b));
  EXPECT_FALSE(gov.propose_partition(sim->gpu(), a));  // trips, freezes
  EXPECT_FALSE(gov.fell_back_even());
  // Frozen for thrash_window epochs: proposals bounce.
  EXPECT_FALSE(gov.propose_partition(sim->gpu(), a));
  const IntervalSample s = dummy_sample(sim->gpu());
  for (int i = 0; i < o.thrash_window; ++i) {
    gov.on_interval(s, sim->gpu());
  }
  // Window passed: a (non-flapping) proposal goes through again.
  const std::vector<AppId> c = shifted(a, 2);
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), c));
}

TEST(GovernorTest, StarvationBreakerTripsAfterWindow) {
  // Assign the pinned split first (idle SMs take it instantly) so the
  // actual owners — what the starvation breaker watches — are 15/1.
  auto sim = make_sim(2, 10'000, /*assign_even=*/false);
  GovernorOptions o;
  o.starvation_window = 3;
  o.breaker_trips = 1;
  PolicyGovernor gov(o);
  std::vector<AppId> pinned(sim->gpu().num_sms(), 0);
  pinned.back() = 1;
  sim->gpu().set_partition(pinned);
  ASSERT_EQ(sim->gpu().sms_assigned(1), 1);
  const IntervalSample s = dummy_sample(sim->gpu());
  gov.on_interval(s, sim->gpu());
  gov.on_interval(s, sim->gpu());
  EXPECT_EQ(gov.breaker_trips(), 0u);
  gov.on_interval(s, sim->gpu());
  EXPECT_EQ(gov.breaker_trips(), 1u);
  EXPECT_TRUE(gov.fell_back_even());
  EXPECT_EQ(sim->gpu().desired_partition(),
            even_partition(sim->gpu().num_sms(), 2));
}

TEST(GovernorTest, NanEstimatesAreNeverForwarded) {
  auto sim = make_sim(2);
  FakeEstimator est;
  PolicyGovernor gov(GovernorOptions{}, &est);
  const IntervalSample s = dummy_sample(sim->gpu());
  est.script(2, std::nan(""));
  est.on_interval(s, sim->gpu());  // sanitizer repairs -> counter advances
  const std::vector<AppId> before = sim->gpu().current_partition();
  EXPECT_FALSE(gov.propose_partition(sim->gpu(), shifted(before, 2)));
  EXPECT_EQ(sim->gpu().current_partition(), before);
  EXPECT_EQ(gov.holds(), 1u);
  EXPECT_TRUE(has_event(sim->gpu(), FrEvent::kGovLowConfidenceHold));
}

TEST(GovernorTest, ZeroEstimatesAreNeverForwarded) {
  auto sim = make_sim(2);
  FakeEstimator est;
  PolicyGovernor gov(GovernorOptions{}, &est);
  const IntervalSample s = dummy_sample(sim->gpu());
  est.script(2, 0.0);  // clamped up to kMinSlowdown by the sanitizer
  est.on_interval(s, sim->gpu());
  const std::vector<AppId> before = sim->gpu().current_partition();
  EXPECT_FALSE(gov.propose_partition(sim->gpu(), shifted(before, 2)));
  EXPECT_EQ(sim->gpu().current_partition(), before);
  EXPECT_EQ(gov.holds(), 1u);
}

TEST(GovernorTest, EstimateJumpHoldsLastGoodPartition) {
  auto sim = make_sim(2);
  FakeEstimator est;
  GovernorOptions o;
  o.jump_bound = 8.0;
  PolicyGovernor gov(o, &est);
  const IntervalSample s = dummy_sample(sim->gpu());
  est.script(2, 2.0);
  est.on_interval(s, sim->gpu());
  gov.on_interval(s, sim->gpu());  // cursors remember slowdown 2.0
  est.script(2, 100.0);            // 50x interval-to-interval jump
  est.on_interval(s, sim->gpu());
  const std::vector<AppId> before = sim->gpu().current_partition();
  EXPECT_FALSE(gov.propose_partition(sim->gpu(), shifted(before, 2)));
  EXPECT_EQ(sim->gpu().current_partition(), before);
  EXPECT_EQ(gov.holds(), 1u);
  EXPECT_TRUE(has_event(sim->gpu(), FrEvent::kGovLowConfidenceHold));
}

TEST(GovernorTest, SmoothEstimateDriftPassesTheGate) {
  auto sim = make_sim(2);
  FakeEstimator est;
  PolicyGovernor gov(GovernorOptions{}, &est);
  const IntervalSample s = dummy_sample(sim->gpu());
  est.script(2, 2.0);
  est.on_interval(s, sim->gpu());
  gov.on_interval(s, sim->gpu());
  est.script(2, 3.0);  // 1.5x: well inside the bound
  est.on_interval(s, sim->gpu());
  const std::vector<AppId> want =
      shifted(sim->gpu().current_partition(), 2);
  EXPECT_TRUE(gov.propose_partition(sim->gpu(), want));
  EXPECT_EQ(gov.holds(), 0u);
}

TEST(GovernorTest, StalledDrainRaisesTypedMigrationStalled) {
  auto sim = make_sim(2, 2'000);
  GovernorOptions o;
  o.drain_budget = 1'000;  // far below any real block drain
  PolicyGovernor gov(o);
  sim->add_observer(&gov);
  sim->run(4'000);  // SMs now hold active blocks; drains take a while
  ASSERT_TRUE(gov.propose_partition(
      sim->gpu(), shifted(sim->gpu().current_partition(), 1)));
  ASSERT_TRUE(sim->gpu().migration_in_progress());
  try {
    sim->run(6'000);
    FAIL() << "expected kMigrationStalled";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kMigrationStalled);
    EXPECT_EQ(e.component(), "sched.governor");
    const std::string what = e.what();
    EXPECT_NE(what.find("drain_budget"), std::string::npos);
    EXPECT_NE(what.find("sm="), std::string::npos)
        << "the error must name the stalled SMs";
  }
}

TEST(GovernorTest, ForcePreemptAbortsTheStalledDrainAndContinues) {
  auto sim = make_sim(2, 2'000);
  GovernorOptions o;
  o.drain_budget = 1'000;
  o.force_preempt = true;
  PolicyGovernor gov(o);
  sim->add_observer(&gov);
  sim->run(4'000);
  ASSERT_TRUE(gov.propose_partition(
      sim->gpu(), shifted(sim->gpu().current_partition(), 1)));
  ASSERT_TRUE(sim->gpu().migration_in_progress());
  EXPECT_NO_THROW(sim->run(6'000));
  EXPECT_FALSE(sim->gpu().migration_in_progress());
  EXPECT_EQ(gov.stalls_aborted(), 1u);
  EXPECT_TRUE(has_event(sim->gpu(), FrEvent::kGovMigrationAbort));
}

TEST(GovernorTest, StateRoundTripIsByteIdentical) {
  auto sim = make_sim(2);
  GovernorOptions o;
  o.breaker_trips = 2;
  PolicyGovernor gov(o);
  // Accumulate non-trivial state: a clamp, a flap, a trip, counters.
  const std::vector<AppId> a = sim->gpu().current_partition();
  const std::vector<AppId> b = shifted(a, 1);
  gov.propose_partition(sim->gpu(), std::vector<AppId>(16, 0));  // clamp
  gov.propose_partition(sim->gpu(), a);
  gov.propose_partition(sim->gpu(), b);
  gov.propose_partition(sim->gpu(), a);  // flap bookkeeping
  const IntervalSample s = dummy_sample(sim->gpu());
  gov.on_interval(s, sim->gpu());
  gov.on_interval(s, sim->gpu());

  StateWriter w;
  gov.save_state(w);
  const std::vector<u8> bytes = w.bytes();

  PolicyGovernor fresh(o);
  StateReader r(bytes);
  fresh.load_state(r);
  StateWriter w2;
  fresh.save_state(w2);
  EXPECT_EQ(w2.bytes(), bytes) << "governor state must round-trip exactly";

  Hasher ha, hb;
  gov.hash_state(ha);
  fresh.hash_state(hb);
  EXPECT_EQ(ha.digest(), hb.digest());
  EXPECT_EQ(fresh.clamps(), gov.clamps());
  EXPECT_EQ(fresh.breaker_trips(), gov.breaker_trips());
  EXPECT_EQ(fresh.last_good_partition(), gov.last_good_partition());
}

TEST(GovernorTest, FromConfigCopiesEveryKnob) {
  GpuConfig cfg;
  cfg.governor_drain_budget = 123'456;
  cfg.governor_max_delta = 3;
  cfg.governor_starvation_window = 9;
  cfg.governor_thrash_window = 4;
  cfg.governor_breaker_trips = 7;
  cfg.governor_jump_bound = 2.5;
  cfg.governor_force_preempt = true;
  const GovernorOptions o = GovernorOptions::from_config(cfg, false);
  EXPECT_FALSE(o.enabled);
  EXPECT_EQ(o.num_sms, cfg.num_sms);
  EXPECT_EQ(o.drain_budget, 123'456u);
  EXPECT_EQ(o.max_delta, 3);
  EXPECT_EQ(o.starvation_window, 9);
  EXPECT_EQ(o.thrash_window, 4);
  EXPECT_EQ(o.breaker_trips, 7);
  EXPECT_DOUBLE_EQ(o.jump_bound, 2.5);
  EXPECT_TRUE(o.force_preempt);
}

}  // namespace
}  // namespace gpusim
