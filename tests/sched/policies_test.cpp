#include "sched/policies.hpp"

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

TEST(LeftoverTest, FullGridFirstAppTakesEverything) {
  const auto alloc = LeftoverPolicy::allocation(16, {16, 16});
  EXPECT_EQ(std::count(alloc.begin(), alloc.end(), 0), 16);
  EXPECT_EQ(std::count(alloc.begin(), alloc.end(), 1), 0);
}

TEST(LeftoverTest, SmallFirstGridLeavesRoom) {
  const auto alloc = LeftoverPolicy::allocation(16, {6, 16});
  EXPECT_EQ(std::count(alloc.begin(), alloc.end(), 0), 6);
  EXPECT_EQ(std::count(alloc.begin(), alloc.end(), 1), 10);
}

TEST(LeftoverTest, UnfilledSmsStayIdle) {
  const auto alloc = LeftoverPolicy::allocation(16, {4, 3});
  EXPECT_EQ(std::count(alloc.begin(), alloc.end(), 0), 4);
  EXPECT_EQ(std::count(alloc.begin(), alloc.end(), 1), 3);
  EXPECT_EQ(std::count(alloc.begin(), alloc.end(), kInvalidApp), 9);
}

TEST(LeftoverTest, StarvesSecondAppEndToEnd) {
  // The paper's Section II argument against LEFTOVER: a full-GPU grid
  // prevents any later application from ever running.
  RunConfig rc;
  rc.co_run_cycles = 60'000;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  ExperimentRunner runner(rc);
  const Workload w{{*find_app("AA"), *find_app("SD")}};
  const CoRunResult r = runner.run(w, ModelSet{}, PolicyKind::kLeftover);
  EXPECT_GT(r.apps[0].instructions, 0u);
  EXPECT_EQ(r.apps[1].instructions, 0u);
  EXPECT_GE(r.unfairness, 1e5);
}

TEST(TemporalTest, AlternatesFullGpuOwnership) {
  GpuConfig cfg;
  Gpu gpu(cfg, {AppLaunch{*find_app("CT"), 42},
                AppLaunch{*find_app("QR"), 43}});
  TemporalPolicy policy(TemporalOptions{.quantum = 20'000});
  // Drive manually so we can observe ownership between quanta.
  for (Cycle c = 0; c < 15'000; ++c) {
    policy.on_cycle(gpu.now(), gpu);
    gpu.cycle();
  }
  EXPECT_EQ(gpu.sms_assigned(0), 16);
  EXPECT_EQ(gpu.sms_assigned(1), 0);
  // Run past the quantum; compute kernels drain within a block lifetime.
  for (Cycle c = 0; c < 250'000; ++c) {
    policy.on_cycle(gpu.now(), gpu);
    gpu.cycle();
  }
  EXPECT_GE(policy.switches(), 1u);
  EXPECT_GT(gpu.instructions().total(1), 0u)
      << "the second app must get its turn";
}

TEST(TemporalTest, BothAppsProgressViaRunner) {
  RunConfig rc;
  rc.co_run_cycles = 400'000;
  rc.temporal.quantum = 60'000;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  ExperimentRunner runner(rc);
  const Workload w{{*find_app("CT"), *find_app("QR")}};
  const CoRunResult r = runner.run(w, ModelSet{}, PolicyKind::kTemporal);
  EXPECT_GT(r.apps[0].instructions, 0u);
  EXPECT_GT(r.apps[1].instructions, 0u);
  EXPECT_GE(r.repartitions, 2u);
}

TEST(QosTest, GrowsQosAppUntilTargetMet) {
  // SD's slowdown on an even split is far above 2.0; the controller must
  // move SMs toward it and its measured slowdown must drop.
  RunConfig rc;
  rc.co_run_cycles = 1'000'000;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  rc.qos.qos_app = 1;  // SD in the workload below
  rc.qos.target_slowdown = 2.5;
  ExperimentRunner runner(rc);
  const Workload w{{*find_app("AA"), *find_app("SD")}};
  const CoRunResult even = runner.run(w, ModelSet{.dase = true});
  const CoRunResult qos =
      runner.run(w, ModelSet{.dase = true}, PolicyKind::kDaseQos);
  EXPECT_GT(qos.repartitions, 0u);
  EXPECT_LT(qos.apps[1].actual_slowdown, even.apps[1].actual_slowdown)
      << "the QoS app must speed up at the co-runner's expense";
}

TEST(QosTest, RespectsMinimumShareForOthers) {
  GpuConfig cfg;
  Gpu gpu(cfg, {AppLaunch{*find_app("AA"), 42},
                AppLaunch{*find_app("SD"), 43}});
  gpu.set_partition(even_partition(16, 2));
  DaseModel model({}, 0);
  DaseQosPolicy policy(&model,
                       DaseQosOptions{.qos_app = 0,
                                      .target_slowdown = 1.0,  // insatiable
                                      .warmup_intervals = 0,
                                      .min_sms_per_app = 2});
  Simulation sim_unused(cfg, {AppLaunch{*find_app("AA"), 1}});
  // Feed synthetic intervals claiming a huge slowdown; the policy may only
  // grow app 0 until app 1 holds its minimum 2 SMs.
  for (int round = 0; round < 40; ++round) {
    gpu.run(2'000);
    if (gpu.migration_in_progress()) continue;
    IntervalSample s = gpu.end_interval();
    model.on_interval(s, gpu);
    policy.on_interval(s, gpu);
  }
  // Let any final drain settle.
  Cycle waited = 0;
  while (gpu.migration_in_progress() && waited < 3'000'000) {
    gpu.run(5'000);
    waited += 5'000;
  }
  EXPECT_GE(gpu.sms_assigned(1), 2);
  EXPECT_LE(gpu.sms_assigned(0), 14);
}

}  // namespace
}  // namespace gpusim
