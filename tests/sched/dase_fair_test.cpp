#include "sched/dase_fair.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

TEST(InterpolationTest, IdentityAtAssignedCount) {
  EXPECT_DOUBLE_EQ(DaseFairPolicy::interpolate_reciprocal(0.5, 8, 8, 16),
                   0.5);
}

TEST(InterpolationTest, PaperWorkedExample) {
  // Paper Section VII: slowdown 2 on 8 of 16 SMs -> reciprocal 0.5; at 12
  // SMs the interpolated reciprocal is 0.5 + (12-8)/(16-8) * 0.5 = 0.75.
  EXPECT_DOUBLE_EQ(DaseFairPolicy::interpolate_reciprocal(0.5, 8, 12, 16),
                   0.75);
}

TEST(InterpolationTest, EndpointsReachOneAndZero) {
  EXPECT_DOUBLE_EQ(DaseFairPolicy::interpolate_reciprocal(0.5, 8, 16, 16),
                   1.0);
  EXPECT_DOUBLE_EQ(DaseFairPolicy::interpolate_reciprocal(0.5, 8, 0, 16),
                   0.0);
}

TEST(InterpolationTest, DownwardUsesEq30) {
  // Eq. 30: r - (8-4)/8 * r = r/2.
  EXPECT_DOUBLE_EQ(DaseFairPolicy::interpolate_reciprocal(0.6, 8, 4, 16),
                   0.3);
}

class InterpolationSweep : public ::testing::TestWithParam<double> {};

TEST_P(InterpolationSweep, MonotoneNondecreasingInSmCount) {
  const double r = GetParam();
  double prev = -1.0;
  for (int x = 0; x <= 16; ++x) {
    const double v = DaseFairPolicy::interpolate_reciprocal(r, 8, x, 16);
    EXPECT_GE(v, prev - 1e-12) << "x=" << x;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Reciprocals, InterpolationSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.8, 1.0));

TEST(SearchTest, BalancedAppsStayEven) {
  // Equal reciprocals: the even split is already optimal.
  const std::vector<double> r = {0.5, 0.5};
  const std::vector<int> assigned = {8, 8};
  double unf = 0.0;
  const auto best =
      DaseFairPolicy::search_best_split(r, assigned, 16, 1, &unf);
  EXPECT_EQ(best, (std::vector<int>{8, 8}));
  EXPECT_NEAR(unf, 1.0, 1e-9);
}

TEST(SearchTest, ShiftsSmsTowardTheSlowedApp) {
  // App 0 slowed 4x (r=0.25), app 1 slowed 1.33x (r=0.75): fairness
  // improves by giving app 0 more SMs.
  const std::vector<double> r = {0.25, 0.75};
  const std::vector<int> assigned = {8, 8};
  double unf = 0.0;
  const auto best =
      DaseFairPolicy::search_best_split(r, assigned, 16, 1, &unf);
  ASSERT_EQ(best.size(), 2u);
  EXPECT_GT(best[0], 8);
  EXPECT_LT(best[1], 8);
  EXPECT_EQ(best[0] + best[1], 16);
  EXPECT_LT(unf, 3.0) << "must improve on the even split's predicted 3.0";
}

TEST(SearchTest, RespectsMinimumSmsPerApp) {
  const std::vector<double> r = {0.05, 0.95};
  const std::vector<int> assigned = {8, 8};
  const auto best = DaseFairPolicy::search_best_split(r, assigned, 16, 2);
  EXPECT_GE(best[0], 2);
  EXPECT_GE(best[1], 2);
}

TEST(SearchTest, FourAppSplitSumsToTotal) {
  const std::vector<double> r = {0.3, 0.5, 0.7, 0.9};
  const std::vector<int> assigned = {4, 4, 4, 4};
  const auto best = DaseFairPolicy::search_best_split(r, assigned, 16, 1);
  ASSERT_EQ(best.size(), 4u);
  EXPECT_EQ(std::accumulate(best.begin(), best.end(), 0), 16);
  // Most slowed app (r=0.3) must not lose SMs relative to the least.
  EXPECT_GE(best[0], best[3]);
}

TEST(EligibilityTest, ShortOrSmallKernelsAreExcluded) {
  KernelProfile ok = *find_app("VA");
  EXPECT_TRUE(dase_fair_eligible(ok));

  KernelProfile few_blocks = ok;
  few_blocks.blocks_total = 8;
  EXPECT_FALSE(dase_fair_eligible(few_blocks));

  KernelProfile short_warps = ok;
  short_warps.instrs_per_warp = 100;
  EXPECT_FALSE(dase_fair_eligible(short_warps));
}

TEST(EligibilityTest, AllRegistryAppsAreEligible) {
  for (const auto& app : app_registry()) {
    EXPECT_TRUE(dase_fair_eligible(app)) << app.abbr;
  }
}

}  // namespace
}  // namespace gpusim
