// Cross-module invariant (property) tests: for every registered
// application, an alone run must leave the whole counter fabric in a
// mutually consistent state.
#include <gtest/gtest.h>

#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

class AloneRunInvariants : public ::testing::TestWithParam<int> {
 protected:
  static constexpr Cycle kCycles = 60'000;
};

TEST_P(AloneRunInvariants, CounterFabricIsConsistent) {
  const KernelProfile& app = app_registry()[GetParam()];
  GpuConfig cfg;
  Simulation sim(cfg, {AppLaunch{app, 42}});
  Gpu& gpu = sim.gpu();
  gpu.set_partition(even_partition(cfg.num_sms, 1));
  sim.run(kCycles);

  // --- SM side ---
  u64 instrs = 0;
  u64 mem_instrs = 0;
  u64 l1_acc = 0;
  u64 l1_hit = 0;
  for (int s = 0; s < gpu.num_sms(); ++s) {
    const SmCounters& c = gpu.sm(s).counters();
    instrs += c.instructions.total();
    mem_instrs += c.mem_instructions.total();
    l1_acc += c.l1_accesses.total();
    l1_hit += c.l1_hits.total();
    EXPECT_LE(c.issue_cycles.total(), kCycles);
    EXPECT_LE(c.mem_stall_cycles.total() + c.issue_cycles.total() +
                  c.idle_cycles.total(),
              kCycles);
  }
  EXPECT_EQ(instrs, gpu.instructions().total(0));
  EXPECT_GE(mem_instrs, 1u);
  EXPECT_LE(l1_hit, l1_acc);
  // Each memory instruction generates txns_per_mem_instr transactions;
  // dispatched transactions cannot exceed generated ones.
  EXPECT_LE(l1_acc,
            mem_instrs * static_cast<u64>(app.txns_per_mem_instr));

  // --- memory side ---
  u64 l2_acc = 0;
  u64 l2_hit = 0;
  u64 served = 0;
  u64 row_hits = 0;
  u64 row_misses = 0;
  u64 data_cycles = 0;
  for (int p = 0; p < gpu.num_partitions(); ++p) {
    const auto& pc = gpu.partition(p).counters();
    const auto& mcc = gpu.partition(p).mc().counters();
    l2_acc += pc.l2_accesses.total(0);
    l2_hit += pc.l2_hits.total(0);
    served += mcc.requests_served.total(0);
    row_hits += mcc.row_hits.total(0);
    row_misses += mcc.row_misses.total(0);
    data_cycles += mcc.bus_data_cycles.total(0);
    // Bandwidth decomposition covers the run (lump-accounting slack).
    const u64 accounted = mcc.bus_data_cycles.grand_total() +
                          mcc.wasted_cycles.total() +
                          mcc.idle_cycles.total();
    EXPECT_NEAR(static_cast<double>(accounted),
                static_cast<double>(gpu.now()), gpu.now() * 0.03)
        << "partition " << p;
  }
  // L1 misses flow into the L2; merging can only reduce the count.
  EXPECT_LE(l2_acc, l1_acc - l1_hit);
  EXPECT_LE(l2_hit, l2_acc);
  // Served DRAM requests = L2 misses minus in-flight merges (and at most
  // the in-flight tail is outstanding).
  EXPECT_LE(served, l2_acc - l2_hit);
  // Every issued DRAM request was either a row hit or a row miss, and
  // all issued requests complete or stay bounded in flight.
  EXPECT_LE(served, row_hits + row_misses);
  EXPECT_LE(row_hits + row_misses - served, 200u);
  // Data cycles = t_burst per granted request; row hit/miss counts are
  // taken at issue, so the committed-but-not-yet-granted tail may differ.
  EXPECT_LE(data_cycles, (row_hits + row_misses) * GpuConfig{}.t_burst());
  EXPECT_GE(data_cycles + 100 * GpuConfig{}.t_burst(),
            (row_hits + row_misses) * GpuConfig{}.t_burst());

  // --- no leaks: after draining, the system is quiescent ---
  gpu.set_partition(std::vector<AppId>(gpu.num_sms(), kInvalidApp));
  Cycle waited = 0;
  while ((gpu.migration_in_progress() || !gpu.memory_system_quiescent()) &&
         waited < 3'000'000) {
    gpu.run(2'000);
    waited += 2'000;
  }
  EXPECT_TRUE(gpu.memory_system_quiescent()) << app.abbr;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AloneRunInvariants, ::testing::Range(0, 15),
                         [](const auto& info) {
                           return app_registry()[info.param].abbr;
                         });

}  // namespace
}  // namespace gpusim
