// Modeled timeout/retry recovery end-to-end: a dropped response must be
// reissued and the run must complete with balanced books and finite
// estimates; total response loss must exhaust the retry budget loudly
// (typed SimError) instead of hanging; with recovery off the progress
// watchdog must still prove the deadlock.  Each fault class lands on the
// guard that owns it — nothing here depends on NDEBUG being unset.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/sim_error.hpp"
#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

std::vector<AppLaunch> two_app_launches() {
  const auto& apps = app_registry();
  return {AppLaunch{apps[0], 42}, AppLaunch{apps[1], 43}};
}

TEST(RecoveryTest, DroppedResponseIsReissuedAndRunCompletes) {
  GpuConfig cfg;
  cfg.mshr_retry_enabled = true;
  cfg.mshr_retry_timeout = 5'000;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));

  DaseModel dase;
  sim.add_observer(&dase);

  FaultInjector injector(FaultSchedule{}.drop_response_nth(200));
  sim.gpu().set_fault_injector(&injector);

  // Without recovery this exact schedule leaks one packet and strands a
  // warp (see simguard_test).  With recovery on the SM times the miss out,
  // reissues it, and the run must finish clean.
  ASSERT_NO_THROW(sim.run(100'000));
  EXPECT_EQ(injector.responses_dropped(), 1u);
  EXPECT_EQ(sim.gpu().conservation_taps().retries_issued.grand_total(), 1u);

  const AuditReport report = sim.gpu().audit_conservation();
  EXPECT_TRUE(report.ok()) << report.to_string();

  for (AppId a = 0; a < 2; ++a) {
    const double s = dase.mean_slowdown(a);
    EXPECT_TRUE(std::isfinite(s)) << "app " << a << " slowdown " << s;
    EXPECT_GE(s, SlowdownEstimator::kMinSlowdown);
    EXPECT_LE(s, SlowdownEstimator::kMaxSlowdown);
  }
  EXPECT_EQ(dase.sanitized_estimates(), 0u);
}

TEST(RecoveryTest, TotalResponseLossExhaustsRetryBudgetLoudly) {
  GpuConfig cfg;
  cfg.mshr_retry_enabled = true;
  cfg.mshr_retry_timeout = 2'000;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));

  // Every response vanishes.  Reissues keep the watchdog fed (they count
  // as progress), so the retry budget is what must end the run: after
  // mshr_retry_max doubled-deadline reissues the SM reports the line as
  // unrecoverable instead of retrying forever.
  FaultInjector injector(FaultSchedule{}.drop_response_prob(1.0));
  sim.gpu().set_fault_injector(&injector);

  try {
    sim.run(400'000);
    FAIL() << "total response loss did not exhaust the retry budget";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kRecoveryExhausted) << e.what();
    EXPECT_GE(sim.gpu().conservation_taps().retries_issued.grand_total(),
              static_cast<u64>(cfg.mshr_retry_max));
  }
}

TEST(RecoveryTest, TotalResponseLossWithoutRecoveryIsProvenDeadlock) {
  GpuConfig cfg;
  ASSERT_FALSE(cfg.mshr_retry_enabled) << "recovery must default off";
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  sim.set_watchdog(20'000);

  FaultInjector injector(FaultSchedule{}.drop_response_prob(1.0));
  sim.gpu().set_fault_injector(&injector);

  try {
    sim.run(400'000);
    FAIL() << "watchdog did not catch the wedged machine";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kWatchdogStall) << e.what();
  }
  EXPECT_EQ(sim.gpu().conservation_taps().retries_issued.grand_total(), 0u);
}

TEST(RecoveryTest, NackedResponseDelaysButConserves) {
  GpuConfig cfg;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));

  // A NACK re-delivers the packet later instead of dropping it: the books
  // must balance with no recovery machinery involved at all.
  FaultInjector injector(FaultSchedule{}.nack_response(150, 300));
  sim.gpu().set_fault_injector(&injector);

  ASSERT_NO_THROW(sim.run(60'000));
  EXPECT_EQ(injector.nacks_issued(), 1u);
  const AuditReport report = sim.gpu().audit_conservation();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NO_THROW(sim.gpu().verify_conservation());
}

TEST(RecoveryTest, BitFlippedFillTripsInvariantGuard) {
  GpuConfig cfg;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));

  // Bit 40 pushes the fill address far outside any real line, so the
  // MSHR release must fault on an unknown line immediately.
  FaultInjector injector(FaultSchedule{}.bit_flip(100, 40));
  sim.gpu().set_fault_injector(&injector);

  try {
    sim.run(60'000);
    FAIL() << "corrupted fill address went unnoticed";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kInvariant) << e.what();
  }
  EXPECT_EQ(injector.flips_done(), 1u);
}

TEST(RecoveryTest, RecoveryPathIsDeterministic) {
  // Same schedule, same seeds: two machines running the full
  // drop -> timeout -> reissue -> absorb arc must stay hash-identical.
  const FaultSchedule sched = FaultSchedule{}.drop_response_nth(200);
  auto make = [](FaultInjector& inj) {
    GpuConfig cfg;
    cfg.mshr_retry_enabled = true;
    cfg.mshr_retry_timeout = 5'000;
    auto sim = std::make_unique<Simulation>(cfg, two_app_launches());
    sim->gpu().set_partition(even_partition(cfg.num_sms, 2));
    sim->gpu().set_fault_injector(&inj);
    return sim;
  };
  FaultInjector ia(sched);
  FaultInjector ib(sched);
  auto a = make(ia);
  auto b = make(ib);
  a->run(80'000);
  b->run(80'000);
  EXPECT_EQ(a->state_hash(), b->state_hash());
  EXPECT_EQ(ia.responses_dropped(), ib.responses_dropped());
}

}  // namespace
}  // namespace gpusim
