// SimGuard end-to-end: injected faults must be caught by the layer that
// owns them — a dropped response/request by the conservation auditor, a
// stalled partition by the progress watchdog — and a healthy run must pass
// both checks silently.  These tests run in the same (optimized) build
// mode as the bench binaries: nothing here depends on NDEBUG being unset.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/sim_error.hpp"
#include "gpu/simulator.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {
namespace {

const KernelProfile& memory_bound_app() {
  const KernelProfile* best = &app_registry()[0];
  for (const KernelProfile& app : app_registry()) {
    if (app.mem_fraction > best->mem_fraction) best = &app;
  }
  return *best;
}

std::vector<AppLaunch> two_app_launches() {
  const auto& apps = app_registry();
  return {AppLaunch{apps[0], 42}, AppLaunch{apps[1], 43}};
}

TEST(SimGuardAudit, CleanRunConservesEveryRequest) {
  GpuConfig cfg;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  Gpu& gpu = sim.gpu();

  // Mid-run, with traffic in flight everywhere, the walk must balance.
  sim.run(10'000);
  const AuditReport mid = gpu.audit_conservation();
  EXPECT_TRUE(mid.ok()) << mid.to_string();
  EXPECT_GT(mid.sent[0] + mid.sent[1], 0u);

  sim.run(50'000);
  const AuditReport end = gpu.audit_conservation();
  EXPECT_TRUE(end.ok()) << end.to_string();
  EXPECT_NO_THROW(gpu.verify_conservation());
}

TEST(SimGuardAudit, DroppedResponseIsReportedAsLeak) {
  GpuConfig cfg;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  Gpu& gpu = sim.gpu();

  FaultInjector injector(FaultSchedule{}.drop_response_nth(200));
  gpu.set_fault_injector(&injector);

  sim.run(60'000);
  ASSERT_EQ(injector.responses_dropped(), 1u);

  const AuditReport report = gpu.audit_conservation();
  EXPECT_FALSE(report.ok()) << report.to_string();
  EXPECT_EQ(report.total_leaked(), 1);

  try {
    gpu.verify_conservation();
    FAIL() << "verify_conservation did not throw on a leaked response";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kConservation);
    const std::string what = e.what();
    EXPECT_NE(what.find("leaked"), std::string::npos);
  }
}

TEST(SimGuardAudit, DroppedRequestIsReportedAsLeak) {
  GpuConfig cfg;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  Gpu& gpu = sim.gpu();

  FaultInjector injector(FaultSchedule{}.drop_request_nth(100));
  gpu.set_fault_injector(&injector);

  sim.run(60'000);
  ASSERT_EQ(injector.requests_dropped(), 1u);

  const AuditReport report = gpu.audit_conservation();
  EXPECT_FALSE(report.ok()) << report.to_string();
  EXPECT_EQ(report.total_leaked(), 1);
  EXPECT_THROW(gpu.verify_conservation(), SimError);
}

TEST(SimGuardWatchdog, StalledPartitionTripsWatchdogWithStateDump) {
  GpuConfig cfg;
  const KernelProfile& app = memory_bound_app();
  Simulation sim(cfg, {AppLaunch{app, 42}, AppLaunch{app, 43}});
  Gpu& gpu = sim.gpu();
  gpu.set_partition(even_partition(cfg.num_sms, 2));
  sim.set_watchdog(30'000);

  FaultInjector injector(FaultSchedule{}.stall_partition(0, 1'000));
  gpu.set_fault_injector(&injector);

  try {
    // Every warp eventually has an outstanding request into the frozen
    // partition; the whole machine wedges and the watchdog must notice.
    sim.run(2'000'000);
    FAIL() << "watchdog never fired on a frozen partition";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kWatchdogStall);
    const std::string what = e.what();
    EXPECT_NE(what.find("pipeline_state"), std::string::npos);
    EXPECT_NE(what.find("SM 0"), std::string::npos) << what;
    EXPECT_NE(what.find("partition 0"), std::string::npos) << what;
    EXPECT_NE(what.find("stalled_for_cycles"), std::string::npos);
  }
  // The wedge happened long before the cycle budget ran out.
  EXPECT_LT(gpu.now(), 500'000u);
}

TEST(SimGuardWatchdog, SilentOnHealthyRun) {
  GpuConfig cfg;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  sim.set_watchdog(30'000);
  EXPECT_NO_THROW(sim.run(150'000));
}

TEST(SimGuardWatchdog, IdleGpuIsNotADeadlock) {
  GpuConfig cfg;
  Simulation sim(cfg, two_app_launches());
  sim.gpu().set_partition(even_partition(cfg.num_sms, 2));
  Gpu& gpu = sim.gpu();
  sim.run(20'000);
  // Release every SM; resident warps drain (retiring instructions, which
  // is progress), and then the GPU sits fully idle.  Neither phase may
  // trip the watchdog.
  gpu.set_partition(std::vector<AppId>(gpu.num_sms(), kInvalidApp));
  sim.set_watchdog(10'000);
  Cycle waited = 0;
  while ((gpu.migration_in_progress() || !gpu.memory_system_quiescent()) &&
         waited < 3'000'000) {
    EXPECT_NO_THROW(sim.run(10'000));
    waited += 10'000;
  }
  ASSERT_TRUE(gpu.memory_system_quiescent());
  // Idle for many multiples of the threshold: still not a deadlock.
  EXPECT_NO_THROW(sim.run(100'000));
}

TEST(SimGuardFaults, ProbabilisticDropsAreDeterministic) {
  const FaultSchedule plan =
      FaultSchedule{}.drop_response_prob(0.25).with_seed(7);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (Cycle i = 0; i < 2'000; ++i) {
    const ResponseDecision da = a.on_response(i);
    const ResponseDecision db = b.on_response(i);
    EXPECT_EQ(static_cast<int>(da.action), static_cast<int>(db.action)) << i;
  }
  EXPECT_EQ(a.responses_dropped(), b.responses_dropped());
  EXPECT_GT(a.responses_dropped(), 0u);
}

TEST(SimGuardFaults, EveryConfigCorruptionIsRejected) {
  // corrupt_config flips exactly one field per rule; validate() must catch
  // every rule in the table before a Gpu can be built on garbage.
  const std::size_t rules = corruption_rule_count();
  ASSERT_GE(rules, 18u);
  for (u64 seed = 0; seed < rules; ++seed) {
    GpuConfig cfg;
    corrupt_config(cfg, seed);
    try {
      cfg.validate();
      ADD_FAILURE() << "corruption rule '" << corruption_rule_name(seed)
                    << "' (seed " << seed << ") passed validate()";
    } catch (const std::invalid_argument&) {
      // expected: the corrupted field was rejected
    }
  }
}

TEST(SimGuardFaults, ScheduleSpecRoundTrips) {
  const FaultSchedule plan = FaultSchedule{}
                                 .drop_response_nth(200)
                                 .drop_response_prob(0.125)
                                 .drop_request_nth(100)
                                 .stall_partition(1, 5'000, 9'000)
                                 .bit_flip(40, 17)
                                 .misroute_at(12'000)
                                 .nack_response(60, 250)
                                 .with_seed(99);
  const std::string spec = plan.to_string();
  const FaultSchedule back = FaultSchedule::parse(spec);
  EXPECT_EQ(back.to_string(), spec);
  ASSERT_EQ(back.events.size(), plan.events.size());
  EXPECT_EQ(back.seed, plan.seed);

  EXPECT_FALSE(FaultSchedule::parse("").any());
  EXPECT_THROW(FaultSchedule::parse("no-such-kind:nth=1"), SimError);
  EXPECT_THROW(FaultSchedule::parse("stall:part=0,from=10,until=5"), SimError);
  EXPECT_THROW(FaultSchedule::parse("drop-resp:prob=1.5"), SimError);
}

TEST(SimGuardFaults, InactiveScheduleInjectsNothing) {
  FaultSchedule plan;  // no events
  EXPECT_FALSE(plan.any());
  FaultInjector injector(plan);
  for (Cycle i = 0; i < 1'000; ++i) {
    EXPECT_EQ(static_cast<int>(injector.on_response(i).action),
              static_cast<int>(ResponseAction::kDeliver));
    EXPECT_FALSE(injector.should_drop_request());
  }
  EXPECT_FALSE(injector.partition_stalled(0, 1'000'000));
  EXPECT_EQ(injector.corrupt_fill_line(0x1234), 0x1234u);
  EXPECT_FALSE(injector.misroute_due(1'000'000));
}

}  // namespace
}  // namespace gpusim
