// End-to-end behavioural tests: the properties the paper's evaluation
// depends on must hold in the assembled system, not just per module.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "kernels/app_registry.hpp"
#include "sched/dase_fair.hpp"

namespace gpusim {
namespace {

RunConfig quick_config(Cycle cycles = 100'000) {
  RunConfig rc;
  rc.co_run_cycles = cycles;
  rc.gpu.estimation_interval = 25'000;
  return rc;
}

TEST(IntegrationTest, CoRunsAreBitReproducible) {
  ExperimentRunner a(quick_config(60'000));
  ExperimentRunner b(quick_config(60'000));
  const Workload w{{*find_app("SD"), *find_app("SA")}};
  const CoRunResult ra = a.run(w, ModelSet{.dase = true});
  const CoRunResult rb = b.run(w, ModelSet{.dase = true});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(ra.apps[i].instructions, rb.apps[i].instructions);
    EXPECT_DOUBLE_EQ(ra.apps[i].estimates.at("DASE"),
                     rb.apps[i].estimates.at("DASE"));
  }
}

TEST(IntegrationTest, ComputeBoundAppsSlowExactlyBySmRatio) {
  // Two compute-bound kernels share nothing but SMs: each gets half the
  // SMs, so each slows by almost exactly 2x and DASE predicts it.
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("CT"), *find_app("QR")}};
  const CoRunResult r = runner.run(w, ModelSet{.dase = true});
  for (const AppResult& a : r.apps) {
    EXPECT_NEAR(a.actual_slowdown, 2.0, 0.05) << a.abbr;
    EXPECT_NEAR(a.estimates.at("DASE"), 2.0, 0.1) << a.abbr;
  }
  EXPECT_NEAR(r.unfairness, 1.0, 0.05);
}

TEST(IntegrationTest, MemoryIntensivePairsInterfereBeyondSmSplit) {
  // An irregular kernel (SD) sharing DRAM with a streaming one slows by
  // far more than the pure SM halving: FR-FCFS starves its row misses
  // (the paper's Fig. 2 mechanism).
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("AA"), *find_app("SD")}};
  const CoRunResult r = runner.run(w, ModelSet{});
  EXPECT_GT(r.apps[1].actual_slowdown, 2.3) << "SD is the victim";
  EXPECT_GT(r.unfairness, 1.3);
}

TEST(IntegrationTest, DaseBeatsCpuModelsOnGpuWorkloads) {
  // The paper's headline (Fig. 5): DASE's error is far below MISE/ASM.
  ExperimentRunner runner(quick_config());
  double dase = 0.0;
  double mise = 0.0;
  double asm_err = 0.0;
  const std::vector<Workload> set = {
      Workload{{*find_app("VA"), *find_app("SN")}},
      Workload{{*find_app("SP"), *find_app("BG")}},
      Workload{{*find_app("AA"), *find_app("SA")}},
  };
  for (const Workload& w : set) {
    const CoRunResult r = runner.run(
        w, ModelSet{.dase = true, .mise = true, .asm_model = true});
    dase += r.mean_error_of("DASE");
    mise += r.mean_error_of("MISE");
    asm_err += r.mean_error_of("ASM");
  }
  dase /= set.size();
  mise /= set.size();
  asm_err /= set.size();
  EXPECT_LT(dase, 0.20);
  EXPECT_GT(mise, dase * 1.5);
  EXPECT_GT(asm_err, dase * 1.5);
}

TEST(IntegrationTest, AloneBandwidthTracksTable3Ordering) {
  // Full calibration is covered by the table3 bench; here we assert the
  // coarse ordering that drives every experiment: SB (68%) must be far
  // above QR (14%), and SD sits in between.
  ExperimentRunner runner(quick_config());
  const double sb = runner.alone_stats(*find_app("SB")).bw_util;
  const double sd = runner.alone_stats(*find_app("SD")).bw_util;
  const double qr = runner.alone_stats(*find_app("QR")).bw_util;
  EXPECT_GT(sb, sd);
  EXPECT_GT(sd, qr);
  EXPECT_GT(sb, 0.55);
  EXPECT_LT(qr, 0.25);
}

TEST(IntegrationTest, DaseFairImprovesAnUnfairPair) {
  // AA+SD is reliably unfair under the even split (FR-FCFS starves SD's
  // irregular requests); DASE-Fair must narrow the gap without wrecking
  // throughput.  Long run: SM draining of saturated kernels takes a few
  // hundred kilocycles (DESIGN.md).
  RunConfig rc = quick_config(1'000'000);
  rc.gpu.estimation_interval = 50'000;
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  ExperimentRunner runner(rc);
  const Workload w{{*find_app("AA"), *find_app("SD")}};
  const CoRunResult even = runner.run(w, ModelSet{.dase = true});
  const CoRunResult fair =
      runner.run(w, ModelSet{.dase = true}, PolicyKind::kDaseFair);
  EXPECT_GT(even.unfairness, 1.4) << "pair must actually be unfair";
  EXPECT_GT(fair.repartitions, 0u) << "policy must act";
  EXPECT_LT(fair.unfairness, even.unfairness);
  EXPECT_GT(fair.harmonic_speedup, even.harmonic_speedup * 0.9);
}

TEST(IntegrationTest, FourAppWorkloadRunsAndEstimates) {
  RunConfig rc = quick_config();
  ExperimentRunner runner(rc);
  Workload w;
  for (const char* abbr : {"VA", "CT", "SD", "SN"}) {
    w.apps.push_back(*find_app(abbr));
  }
  const CoRunResult r = runner.run(w, ModelSet{.dase = true});
  ASSERT_EQ(r.apps.size(), 4u);
  for (const AppResult& a : r.apps) {
    EXPECT_GT(a.instructions, 0u);
    EXPECT_GT(a.actual_slowdown, 1.0);
    // On a quarter of the GPU, slowdowns land in a sane range.
    EXPECT_LT(a.actual_slowdown, 20.0);
  }
}

TEST(IntegrationTest, UnevenSplitsShiftSlowdowns) {
  // Fig. 8a mechanics: giving an app fewer SMs raises its slowdown.
  ExperimentRunner runner(quick_config());
  const Workload w{{*find_app("SA"), *find_app("SP")}};
  const std::vector<int> lopsided = {4, 12};
  const CoRunResult r_even = runner.run(w, ModelSet{});
  const CoRunResult r_lop =
      runner.run(w, ModelSet{}, PolicyKind::kEven, &lopsided);
  EXPECT_GT(r_lop.apps[0].actual_slowdown, r_even.apps[0].actual_slowdown);
  EXPECT_LT(r_lop.apps[1].actual_slowdown, r_even.apps[1].actual_slowdown);
}

}  // namespace
}  // namespace gpusim
