#include "sm/sm_core.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "gpu/app_runtime.hpp"

namespace gpusim {
namespace {

KernelProfile compute_profile() {
  KernelProfile p;
  p.name = "compute";
  p.abbr = "CP";
  p.mem_fraction = 0.0001;  // essentially pure compute
  p.txns_per_mem_instr = 1;
  p.seq_locality = 1.0;
  p.working_set_bytes = 16 << 20;
  p.warps_per_block = 4;
  p.instrs_per_warp = 200;
  p.blocks_total = 1000;
  return p;
}

KernelProfile memory_profile() {
  KernelProfile p = compute_profile();
  p.abbr = "MM";
  p.mem_fraction = 0.5;
  return p;
}

class SmCoreTest : public ::testing::Test {
 protected:
  GpuConfig cfg_;
  AddressMap map_{cfg_};
};

TEST_F(SmCoreTest, UnassignedSmIdles) {
  SmCore sm(cfg_, 0, map_);
  EXPECT_FALSE(sm.assigned());
  for (Cycle c = 0; c < 100; ++c) sm.cycle(c);
  EXPECT_EQ(sm.counters().instructions.total(), 0u);
  EXPECT_EQ(sm.counters().idle_cycles.total(), 100u);
  EXPECT_TRUE(sm.drained());
}

TEST_F(SmCoreTest, ComputeKernelIssuesEveryCycle) {
  AppRuntime rt(compute_profile(), 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  EXPECT_EQ(sm.app(), 0);
  for (Cycle c = 0; c < 1000; ++c) sm.cycle(c);
  // IPC ~1 modulo rare memory instructions.
  EXPECT_GT(sm.counters().instructions.total(), 980u);
}

TEST_F(SmCoreTest, OccupancyRespectsWarpAndBlockLimits) {
  KernelProfile p = compute_profile();
  p.warps_per_block = 10;
  AppRuntime rt(p, 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  // 48 warp contexts / 10 per block = 4 blocks (max_blocks_per_sm is 8).
  EXPECT_EQ(sm.active_blocks(), 4);
  EXPECT_EQ(sm.live_warps(), 40);
}

TEST_F(SmCoreTest, ProfileOccupancyCapHonoured) {
  KernelProfile p = compute_profile();
  p.warps_per_block = 4;
  p.max_concurrent_blocks = 2;
  AppRuntime rt(p, 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  EXPECT_EQ(sm.active_blocks(), 2);
  EXPECT_EQ(sm.live_warps(), 8);
}

TEST_F(SmCoreTest, BlocksCompleteAndRefill) {
  KernelProfile p = compute_profile();
  p.instrs_per_warp = 50;
  AppRuntime rt(p, 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  for (Cycle c = 0; c < 5000; ++c) sm.cycle(c);
  EXPECT_GT(rt.blocks_completed(), 10u);
  EXPECT_GT(sm.active_blocks(), 0) << "refill keeps the SM occupied";
}

TEST_F(SmCoreTest, MemoryInstructionsEmitRequests) {
  AppRuntime rt(memory_profile(), 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  int packets = 0;
  for (Cycle c = 0; c < 500; ++c) {
    sm.cycle(c);
    while (!sm.out_queue().empty()) {
      const MemRequestPacket pkt = sm.out_queue().pop();
      EXPECT_EQ(pkt.app, 0);
      EXPECT_EQ(pkt.sm, 0);
      EXPECT_GE(pkt.dest, 0);
      EXPECT_LT(pkt.dest, cfg_.num_partitions);
      ++packets;
    }
  }
  EXPECT_GT(packets, 0);
  EXPECT_GT(sm.counters().mem_instructions.total(), 0u);
}

TEST_F(SmCoreTest, WarpsBlockUntilResponses) {
  KernelProfile p = memory_profile();
  p.warps_per_block = 2;
  p.max_concurrent_blocks = 1;
  AppRuntime rt(p, 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  // Run without delivering responses: all warps end up waiting on memory,
  // and the SM records memory-stall cycles (the alpha numerator).
  std::vector<MemRequestPacket> pending;
  for (Cycle c = 0; c < 2000; ++c) {
    sm.cycle(c);
    while (!sm.out_queue().empty()) pending.push_back(sm.out_queue().pop());
  }
  EXPECT_GT(sm.counters().mem_stall_cycles.total(), 1500u);
  const u64 instrs_stalled = sm.counters().instructions.total();

  // Deliver everything; the warps resume.
  Cycle now = 2000;
  for (const auto& pkt : pending) {
    MemResponsePacket resp;
    resp.line_addr = pkt.line_addr;
    resp.app = pkt.app;
    resp.sm = pkt.sm;
    resp.warp = pkt.warp;
    sm.receive(resp);
  }
  for (; now < 2100; ++now) {
    sm.cycle(now);
    while (!sm.out_queue().empty()) sm.out_queue().pop();
  }
  EXPECT_GT(sm.counters().instructions.total(), instrs_stalled);
}

TEST_F(SmCoreTest, L1HitsResolveLocally) {
  // Two warps touching the same hot line: the second access is an L1 hit
  // (after the response fills the line).
  KernelProfile p = memory_profile();
  p.hot_fraction = 0.999;
  p.hot_set_bytes = 128;  // a single line: everything hits after one fill
  p.warps_per_block = 4;
  p.max_concurrent_blocks = 1;
  AppRuntime rt(p, 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  Cycle now = 0;
  for (; now < 3000; ++now) {
    sm.cycle(now);
    while (!sm.out_queue().empty()) {
      const MemRequestPacket pkt = sm.out_queue().pop();
      MemResponsePacket resp;
      resp.line_addr = pkt.line_addr;
      resp.app = pkt.app;
      resp.sm = pkt.sm;
      resp.warp = pkt.warp;
      sm.receive(resp);
    }
  }
  EXPECT_GT(sm.counters().l1_hits.total(), 100u);
}

TEST_F(SmCoreTest, DrainStopsNewBlocksAndEmpties) {
  KernelProfile p = compute_profile();
  p.instrs_per_warp = 100;
  AppRuntime rt(p, 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  sm.start_drain();
  EXPECT_TRUE(sm.draining());
  Cycle c = 0;
  for (; c < 50000 && !sm.drained(); ++c) sm.cycle(c);
  EXPECT_TRUE(sm.drained());
  EXPECT_EQ(sm.active_blocks(), 0);
  sm.release();
  EXPECT_FALSE(sm.assigned());

  // Reassignment to another app works after release.
  AppRuntime rt2(memory_profile(), 1, 43);
  sm.assign(&rt2);
  EXPECT_EQ(sm.app(), 1);
  EXPECT_GT(sm.live_warps(), 0);
}

TEST_F(SmCoreTest, CancelDrainResumesFetching) {
  KernelProfile p = compute_profile();
  p.instrs_per_warp = 30;
  AppRuntime rt(p, 0, 42);
  SmCore sm(cfg_, 0, map_);
  sm.assign(&rt);
  sm.start_drain();
  sm.cancel_drain();
  for (Cycle c = 0; c < 5000; ++c) sm.cycle(c);
  EXPECT_GT(sm.active_blocks(), 0);
  EXPECT_GT(rt.blocks_completed(), 5u);
}

TEST_F(SmCoreTest, InstructionSinkReceivesPerAppCounts) {
  PerAppCounter sink;
  AppRuntime rt(compute_profile(), 2, 42);
  SmCore sm(cfg_, 0, map_);
  sm.set_instr_sink(&sink);
  sm.assign(&rt);
  for (Cycle c = 0; c < 100; ++c) sm.cycle(c);
  EXPECT_EQ(sink.total(2), sm.counters().instructions.total());
}

}  // namespace
}  // namespace gpusim
