#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "common/rng.hpp"

namespace gpusim {
namespace {

constexpr int kLine = 128;

u64 addr_of(int set, int tag, int num_sets) {
  return (static_cast<u64>(tag) * num_sets + set) * kLine;
}

TEST(CacheTest, MissThenHit) {
  SetAssocCache c(16, 4, kLine);
  EXPECT_FALSE(c.access(0x1000, 0).hit);
  EXPECT_TRUE(c.access(0x1000, 0).hit);
  // Same line, different byte offset.
  EXPECT_TRUE(c.access(0x1000 + 64, 0).hit);
  EXPECT_EQ(c.stats().accesses, 3u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(CacheTest, LruEvictionOrder) {
  SetAssocCache c(4, 2, kLine);
  const u64 a = addr_of(0, 1, 4);
  const u64 b = addr_of(0, 2, 4);
  const u64 d = addr_of(0, 3, 4);
  c.access(a, 0);
  c.access(b, 0);
  c.access(a, 0);  // a is now MRU
  const auto res = c.access(d, 0);
  EXPECT_FALSE(res.hit);
  EXPECT_TRUE(res.evicted);
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));  // b was LRU
  EXPECT_TRUE(c.probe(d));
}

TEST(CacheTest, CrossAppEvictionTracked) {
  SetAssocCache c(1, 1, kLine);
  c.access(addr_of(0, 1, 1), /*app=*/0);
  const auto res = c.access(addr_of(0, 2, 1), /*app=*/1);
  EXPECT_TRUE(res.evicted);
  EXPECT_EQ(res.victim_app, 0);
  EXPECT_EQ(c.stats().cross_app_evictions, 1u);
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(CacheTest, ProbeDoesNotDisturbState) {
  SetAssocCache c(4, 2, kLine);
  const u64 a = addr_of(1, 1, 4);
  EXPECT_FALSE(c.probe(a));
  c.access(a, 0);
  const u64 before = c.stats().accesses;
  EXPECT_TRUE(c.probe(a));
  EXPECT_EQ(c.stats().accesses, before);  // probes are not accesses
}

TEST(CacheTest, LookupTouchDoesNotAllocate) {
  SetAssocCache c(4, 2, kLine);
  const u64 a = addr_of(0, 5, 4);
  EXPECT_FALSE(c.lookup_touch(a, 0));
  EXPECT_FALSE(c.probe(a)) << "miss must not allocate";
  EXPECT_EQ(c.stats().accesses, 1u);
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(CacheTest, FillInstallsWithoutAccessStats) {
  SetAssocCache c(4, 2, kLine);
  const u64 a = addr_of(0, 5, 4);
  c.fill(a, 0);
  EXPECT_TRUE(c.probe(a));
  EXPECT_EQ(c.stats().accesses, 0u);
  // Re-filling the same line refreshes rather than duplicating.
  const auto res = c.fill(a, 1);
  EXPECT_TRUE(res.hit);
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(CacheTest, LookupTouchRefreshesLru) {
  SetAssocCache c(1, 2, kLine);
  const u64 a = addr_of(0, 1, 1);
  const u64 b = addr_of(0, 2, 1);
  const u64 d = addr_of(0, 3, 1);
  c.fill(a, 0);
  c.fill(b, 0);
  c.lookup_touch(a, 0);  // a MRU
  c.fill(d, 0);          // evicts b
  EXPECT_TRUE(c.probe(a));
  EXPECT_FALSE(c.probe(b));
}

TEST(CacheTest, ClearInvalidatesEverything) {
  SetAssocCache c(4, 2, kLine);
  c.access(addr_of(0, 1, 4), 0);
  c.clear();
  EXPECT_FALSE(c.probe(addr_of(0, 1, 4)));
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(CacheTest, SetsAreIndependent) {
  SetAssocCache c(4, 1, kLine);
  for (int set = 0; set < 4; ++set) {
    c.access(addr_of(set, 1, 4), 0);
  }
  for (int set = 0; set < 4; ++set) {
    EXPECT_TRUE(c.probe(addr_of(set, 1, 4)));
  }
}

// ---------------------------------------------------------------------------
// Property test: the cache must agree with a straightforward reference LRU
// model over random access traces, for several geometries.
// ---------------------------------------------------------------------------

class ReferenceLru {
 public:
  ReferenceLru(int num_sets, int assoc) : num_sets_(num_sets), assoc_(assoc),
                                          sets_(num_sets) {}

  bool access(u64 line) {
    auto& set = sets_[line % num_sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == line) {
        set.erase(it);
        set.push_front(line);
        return true;
      }
    }
    set.push_front(line);
    if (static_cast<int>(set.size()) > assoc_) set.pop_back();
    return false;
  }

 private:
  int num_sets_;
  int assoc_;
  std::vector<std::list<u64>> sets_;
};

class CacheLruPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, u64>> {};

TEST_P(CacheLruPropertyTest, MatchesReferenceModel) {
  const auto [num_sets, assoc, seed] = GetParam();
  SetAssocCache cache(num_sets, assoc, kLine);
  ReferenceLru ref(num_sets, assoc);
  Rng rng(seed);
  const u64 distinct_lines = static_cast<u64>(num_sets) * assoc * 3;
  for (int i = 0; i < 20000; ++i) {
    const u64 line = rng.next_below(distinct_lines);
    const bool expect_hit = ref.access(line);
    const bool got_hit = cache.access(line * kLine, 0).hit;
    ASSERT_EQ(got_hit, expect_hit) << "access " << i << " line " << line;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheLruPropertyTest,
    ::testing::Combine(::testing::Values(1, 4, 32, 128),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1u, 99u)));

}  // namespace
}  // namespace gpusim
