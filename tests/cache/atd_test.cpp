#include "cache/atd.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace gpusim {
namespace {

constexpr int kLine = 128;

TEST(AtdTest, SamplingStrideSelectsEveryNthSet) {
  SampledAtd atd(128, 8, kLine, 8);  // stride 16
  int sampled = 0;
  for (int set = 0; set < 128; ++set) {
    const u64 addr = static_cast<u64>(set) * kLine;
    if (atd.is_sampled(addr)) {
      ++sampled;
      EXPECT_EQ(set % 16, 0);
    }
  }
  EXPECT_EQ(sampled, 8);
  EXPECT_DOUBLE_EQ(atd.sample_fraction(), 8.0 / 128.0);
}

TEST(AtdTest, HitAfterInstall) {
  SampledAtd atd(128, 8, kLine, 8);
  const u64 addr = 0;  // set 0, sampled
  ASSERT_TRUE(atd.is_sampled(addr));
  EXPECT_FALSE(atd.access(addr));
  EXPECT_TRUE(atd.access(addr));
}

TEST(AtdTest, DistinctLinesInSameSampledSetDoNotAlias) {
  SampledAtd atd(128, 2, kLine, 8);
  // Two lines mapping to shadow set 0 but different tags.
  const u64 a = 0;
  const u64 b = static_cast<u64>(128) * kLine;  // one full wrap
  ASSERT_TRUE(atd.is_sampled(a));
  ASSERT_TRUE(atd.is_sampled(b));
  EXPECT_FALSE(atd.access(a));
  EXPECT_FALSE(atd.access(b));
  EXPECT_TRUE(atd.access(a));
  EXPECT_TRUE(atd.access(b));
}

TEST(AtdTest, DifferentSampledSetsAreIndependent) {
  SampledAtd atd(128, 1, kLine, 8);  // 1-way: second fill in a set evicts
  const u64 set0 = 0;
  const u64 set16 = 16 * kLine;
  ASSERT_TRUE(atd.is_sampled(set16));
  atd.access(set0);
  atd.access(set16);
  EXPECT_TRUE(atd.access(set0)) << "set 16 must not evict set 0";
}

TEST(AtdTest, LruEvictionWithinSampledSet) {
  SampledAtd atd(128, 2, kLine, 8);
  const u64 wrap = static_cast<u64>(128) * kLine;
  atd.access(0);
  atd.access(wrap);
  atd.access(2 * wrap);  // evicts line 0 (LRU)
  EXPECT_FALSE(atd.access(0));
  EXPECT_TRUE(atd.access(2 * wrap));
}

TEST(AtdTest, ScaledMissesMultiplyByStride) {
  SampledAtd atd(128, 8, kLine, 8);
  EXPECT_EQ(atd.scaled_extra_misses(), 0u);
  atd.record_extra_miss();
  atd.record_extra_miss();
  EXPECT_EQ(atd.sample_extra_misses(), 2u);
  EXPECT_EQ(atd.scaled_extra_misses(), 2u * 16u);  // Eq. 13
}

TEST(AtdTest, ClearResetsDirectoryAndCounters) {
  SampledAtd atd(128, 8, kLine, 8);
  atd.access(0);
  atd.record_extra_miss();
  atd.clear();
  EXPECT_EQ(atd.sample_extra_misses(), 0u);
  EXPECT_FALSE(atd.access(0));
}

TEST(AtdTest, FullSamplingDegeneratesToFullDirectory) {
  SampledAtd atd(16, 4, kLine, 16);  // stride 1: everything sampled
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(atd.is_sampled(rng.next_u64() & ~(u64{kLine} - 1)));
  }
  EXPECT_DOUBLE_EQ(atd.sample_fraction(), 1.0);
}

}  // namespace
}  // namespace gpusim
