#include "cache/mshr.hpp"

#include <gtest/gtest.h>

namespace gpusim {
namespace {

TEST(MshrTest, FirstMissAllocates) {
  Mshr m(4);
  EXPECT_EQ(m.allocate(100, {0, 1, 0}), Mshr::AllocResult::kNewMiss);
  EXPECT_TRUE(m.contains(100));
  EXPECT_EQ(m.in_flight(), 1);
}

TEST(MshrTest, SecondaryMissMerges) {
  Mshr m(4);
  m.allocate(100, {0, 1, 0});
  EXPECT_EQ(m.allocate(100, {2, 5, 1}), Mshr::AllocResult::kMerged);
  EXPECT_EQ(m.in_flight(), 1) << "merge must not consume an entry";
  const auto waiters = m.release(100);
  ASSERT_EQ(waiters.size(), 2u);
  EXPECT_EQ(waiters[0].sm, 0);
  EXPECT_EQ(waiters[0].warp, 1);
  EXPECT_EQ(waiters[1].sm, 2);
  EXPECT_EQ(waiters[1].warp, 5);
  EXPECT_FALSE(m.contains(100));
}

TEST(MshrTest, RejectsWhenFull) {
  Mshr m(2);
  EXPECT_EQ(m.allocate(1, {}), Mshr::AllocResult::kNewMiss);
  EXPECT_EQ(m.allocate(2, {}), Mshr::AllocResult::kNewMiss);
  EXPECT_TRUE(m.full());
  EXPECT_EQ(m.allocate(3, {}), Mshr::AllocResult::kRejected);
  // Merging into an existing entry still works at capacity.
  EXPECT_EQ(m.allocate(1, {}), Mshr::AllocResult::kMerged);
  m.release(1);
  EXPECT_FALSE(m.full());
  EXPECT_EQ(m.allocate(3, {}), Mshr::AllocResult::kNewMiss);
}

TEST(MshrTest, ReleaseFreesEntryForReuse) {
  Mshr m(1);
  m.allocate(7, {1, 2, 0});
  m.release(7);
  EXPECT_EQ(m.in_flight(), 0);
  EXPECT_EQ(m.allocate(7, {3, 4, 0}), Mshr::AllocResult::kNewMiss);
}

TEST(MshrTest, ClearDropsAllEntries) {
  Mshr m(4);
  m.allocate(1, {});
  m.allocate(2, {});
  m.clear();
  EXPECT_EQ(m.in_flight(), 0);
  EXPECT_FALSE(m.contains(1));
}

TEST(MshrTest, ManyWaitersOnOneLine) {
  Mshr m(2);
  m.allocate(42, {0, 0, 0});
  for (int i = 1; i < 32; ++i) {
    EXPECT_EQ(m.allocate(42, {0, i, 0}), Mshr::AllocResult::kMerged);
  }
  EXPECT_EQ(m.release(42).size(), 32u);
}

}  // namespace
}  // namespace gpusim
