#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace gpusim {
namespace {

TEST(PerAppCounterTest, TotalsAccumulate) {
  PerAppCounter c;
  c.add(0);
  c.add(0, 4);
  c.add(2, 10);
  EXPECT_EQ(c.total(0), 5u);
  EXPECT_EQ(c.total(1), 0u);
  EXPECT_EQ(c.total(2), 10u);
  EXPECT_EQ(c.grand_total(), 15u);
}

TEST(PerAppCounterTest, IntervalSemantics) {
  PerAppCounter c;
  c.add(1, 7);
  EXPECT_EQ(c.interval(1), 7u);
  c.snapshot();
  EXPECT_EQ(c.interval(1), 0u);
  EXPECT_EQ(c.total(1), 7u);
  c.add(1, 3);
  EXPECT_EQ(c.interval(1), 3u);
  EXPECT_EQ(c.total(1), 10u);
  EXPECT_EQ(c.grand_interval(), 3u);
}

TEST(PerAppCounterTest, ResetClearsEverything) {
  PerAppCounter c;
  c.add(0, 5);
  c.snapshot();
  c.add(0, 2);
  c.reset();
  EXPECT_EQ(c.total(0), 0u);
  EXPECT_EQ(c.interval(0), 0u);
}

TEST(RunningMeanTest, MeanOfSamples) {
  RunningMean m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  m.add(2.0);
  m.add(4.0);
  m.add(6.0);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.1, 5);  // [0, 0.5) + overflow
  h.add(0.05);
  h.add(0.15);
  h.add(0.15);
  h.add(0.7);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(HistogramTest, FractionBelowEdge) {
  Histogram h(0.1, 10);
  for (double v : {0.01, 0.05, 0.11, 0.25, 0.95}) h.add(v);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.1), 2.0 / 5);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.2), 3.0 / 5);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.3), 4.0 / 5);
}

TEST(HistogramTest, ValueExactlyOnEdgeGoesToUpperBucket) {
  Histogram h(0.1, 5);
  h.add(0.1);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(HistogramTest, EmptyHistogramFractions) {
  Histogram h(0.1, 5);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.3), 0.0);
}

}  // namespace
}  // namespace gpusim
