// FlightRecorder unit tests: the bounded ring's eviction order, the
// canonical (logical-order) serialization that makes a restored ring hash
// identically to the original regardless of where the write head sat, the
// typed rejection of malformed snapshots, and the event-volume bounds
// (xbar throttle, monotone high-water marks) that keep the recorder cheap
// enough to stay on by default.
#include "common/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/sim_error.hpp"
#include "common/simstate.hpp"

namespace gpusim {
namespace {

FlightRecorder make_recorder(int capacity, int partitions = 2) {
  FlightRecorder fr;
  fr.init(capacity, partitions);
  return fr;
}

u64 hash_of(const FlightRecorder& fr) {
  Hasher h;
  fr.hash(h);
  return h.digest();
}

TEST(FlightRecorderTest, RingEvictsOldestAndKeepsLifetimeTotal) {
  FlightRecorder fr = make_recorder(4);
  for (int i = 0; i < 10; ++i) {
    fr.record(static_cast<Cycle>(100 + i), FrEvent::kBlockDispatch, i % 3,
              0, static_cast<u64>(i), 0);
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.total_recorded(), 10u);

  const std::vector<FlightEvent> events = fr.events_in_order();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest surviving event is #6 of the ten recorded.
    EXPECT_EQ(events[i].cycle, 106u + i);
    EXPECT_EQ(events[i].a, 6u + i);
  }
}

TEST(FlightRecorderTest, ZeroCapacityDisablesEverything) {
  FlightRecorder fr = make_recorder(0);
  EXPECT_FALSE(fr.enabled());
  fr.record(1, FrEvent::kMshrRetry, 0, 0, 0xABC, 1);
  fr.note_resp_occupancy(2, 0, 5, 8);
  fr.note_deferred_backlog(3, 1, 4);
  fr.note_xbar_stall(4, false, 0x3);
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.events_in_order().empty());
}

TEST(FlightRecorderTest, SerializationRoundTripsAcrossAWrappedRing) {
  FlightRecorder fr = make_recorder(4);
  // 10 > capacity, so the physical ring is wrapped (head mid-buffer).
  for (int i = 0; i < 10; ++i) {
    fr.record(static_cast<Cycle>(i), FrEvent::kMshrRetry, i, 1,
              0x1000u + static_cast<u64>(i), static_cast<u64>(i % 5));
  }
  StateWriter w;
  fr.save(w);

  FlightRecorder restored = make_recorder(4);
  StateReader r(w.bytes());
  restored.load(r);
  EXPECT_NO_THROW(r.require_end());

  EXPECT_EQ(restored.size(), fr.size());
  EXPECT_EQ(restored.total_recorded(), fr.total_recorded());
  // Canonical order: even though the restored ring's head sits at a
  // different physical index (load() rebuilds from slot 0), the logical
  // contents — and therefore the hash — are identical.
  EXPECT_EQ(hash_of(restored), hash_of(fr));

  const std::vector<FlightEvent> a = fr.events_in_order();
  const std::vector<FlightEvent> b = restored.events_in_order();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].unit, b[i].unit);
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].a, b[i].a);
    EXPECT_EQ(a[i].b, b[i].b);
  }
}

TEST(FlightRecorderTest, LoadRejectsCapacityMismatchWithTypedError) {
  FlightRecorder fr = make_recorder(4);
  fr.record(1, FrEvent::kBlockDispatch, 0, 0, 0, 0);
  StateWriter w;
  fr.save(w);

  FlightRecorder other = make_recorder(8);
  StateReader r(w.bytes());
  try {
    other.load(r);
    FAIL() << "expected SimError(kSnapshot)";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot);
    EXPECT_EQ(e.component(), "common.flight_recorder");
  }
}

TEST(FlightRecorderTest, LoadRejectsUnknownEventKind) {
  // Hand-author a FREC stream whose single event has kind 200.
  StateWriter w;
  w.put_tag("FREC");
  w.put_u32(4);   // capacity
  w.put_u64(1);   // total
  w.put_u64(0);   // next_stall req
  w.put_u64(0);   // next_stall resp
  w.put_u32(2);   // partitions
  for (int i = 0; i < 4; ++i) w.put_u64(0);  // resp_hw + defer_hw
  w.put_u64(1);   // event count
  w.put_u64(42);  // cycle
  w.put_u8(200);  // kind — invalid
  w.put_i32(0);
  w.put_i32(0);
  w.put_u64(0);
  w.put_u64(0);

  FlightRecorder fr = make_recorder(4);
  StateReader r(w.bytes());
  try {
    fr.load(r);
    FAIL() << "expected SimError(kSnapshot)";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("event kind"), std::string::npos) << msg;
  }
}

TEST(FlightRecorderTest, XbarStallThrottleBoundsEventVolume) {
  FlightRecorder fr = make_recorder(1024);
  // A saturated NoC reports a stall every cycle; the throttle must record
  // at most one episode per channel per kStallThrottle cycles.
  for (Cycle c = 0; c < 640; ++c) {
    fr.note_xbar_stall(c, false, 0xF);
    fr.note_xbar_stall(c, true, 0x3);
  }
  EXPECT_EQ(fr.total_recorded(),
            2 * (640 / FlightRecorder::kStallThrottle));
  // A zero mask is never an episode.
  fr.note_xbar_stall(10'000, false, 0);
  EXPECT_EQ(fr.total_recorded(),
            2 * (640 / FlightRecorder::kStallThrottle));
}

TEST(FlightRecorderTest, HighWaterMarksAreMonotonePerPartition) {
  FlightRecorder fr = make_recorder(64);
  fr.note_resp_occupancy(1, 0, 3, 8);
  fr.note_resp_occupancy(2, 0, 3, 8);  // not a new max: no event
  fr.note_resp_occupancy(3, 0, 2, 8);  // below max: no event
  fr.note_resp_occupancy(4, 0, 5, 8);  // new max
  fr.note_resp_occupancy(5, 1, 1, 8);  // independent partition
  EXPECT_EQ(fr.total_recorded(), 3u);

  // Deferred backlog records doubling marks only.
  fr.note_deferred_backlog(6, 0, 1);
  fr.note_deferred_backlog(7, 0, 2);
  fr.note_deferred_backlog(8, 0, 3);  // new max but not a power of two
  fr.note_deferred_backlog(9, 0, 4);
  EXPECT_EQ(fr.total_recorded(), 6u);
}

TEST(FlightRecorderTest, TimelineRendersHeldEventsAndSummary) {
  FlightRecorder fr = make_recorder(8);
  fr.record(10, FrEvent::kMshrExhausted, 3, 1, 0xBEEF, 62);
  fr.record(20, FrEvent::kMigrationHandover, 5, 0, 0, 0);
  const std::string text = fr.render_timeline(16);
  EXPECT_NE(text.find("2 event(s) held (capacity 8"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mshr-exhausted"), std::string::npos) << text;
  EXPECT_NE(text.find("line=0xbeef"), std::string::npos) << text;
  EXPECT_NE(text.find("from=none"), std::string::npos) << text;

  // max_events truncates from the front (newest survive).
  const std::string tail = fr.render_timeline(1);
  EXPECT_EQ(tail.find("mshr-exhausted"), std::string::npos) << tail;
  EXPECT_NE(tail.find("migration-handover"), std::string::npos) << tail;
}

}  // namespace
}  // namespace gpusim
