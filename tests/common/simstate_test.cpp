// Unit tests for the SimState foundation: the byte writer/reader pair, the
// hashing sink, and the serializable RNG.
#include "common/simstate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/sim_error.hpp"

namespace gpusim {
namespace {

TEST(StateWriterReader, RoundTripsEveryFieldType) {
  StateWriter w;
  w.put_tag("TEST");
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(std::numeric_limits<u64>::max());
  w.put_i32(-123456);
  w.put_i64(std::numeric_limits<i64>::min());
  w.put_bool(true);
  w.put_bool(false);
  w.put_double(-0.1234567890123456789);
  w.put_string("hello snapshot");

  StateReader r(w.bytes());
  r.expect_tag("TEST");
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), std::numeric_limits<u64>::max());
  EXPECT_EQ(r.get_i32(), -123456);
  EXPECT_EQ(r.get_i64(), std::numeric_limits<i64>::min());
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_double(), -0.1234567890123456789);
  EXPECT_EQ(r.get_string(), "hello snapshot");
  EXPECT_TRUE(r.exhausted());
  EXPECT_NO_THROW(r.require_end());
}

TEST(StateWriterReader, DoubleRoundTripIsBitExact) {
  // bit_cast round-trip must preserve NaN payloads and signed zero.
  StateWriter w;
  w.put_double(std::numeric_limits<double>::quiet_NaN());
  w.put_double(-0.0);
  StateReader r(w.bytes());
  const double nan = r.get_double();
  EXPECT_NE(nan, nan);
  EXPECT_TRUE(std::signbit(r.get_double()));
}

TEST(StateReader, ThrowsOnTruncation) {
  StateWriter w;
  w.put_u64(42);
  std::vector<u8> bytes = w.take();
  bytes.resize(bytes.size() - 1);
  StateReader r(bytes);
  EXPECT_THROW(r.get_u64(), SimError);
}

TEST(StateReader, TagMismatchNamesBothTags) {
  StateWriter w;
  w.put_tag("AAAA");
  StateReader r(w.bytes());
  try {
    r.expect_tag("BBBB");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kSnapshot);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("AAAA"), std::string::npos) << msg;
    EXPECT_NE(msg.find("BBBB"), std::string::npos) << msg;
  }
}

TEST(StateReader, RejectsCorruptBool) {
  StateWriter w;
  w.put_u8(2);  // neither 0 nor 1
  StateReader r(w.bytes());
  EXPECT_THROW(r.get_bool(), SimError);
}

TEST(StateReader, GetCountEnforcesBound) {
  StateWriter w;
  w.put_u64(1'000'000);
  StateReader r(w.bytes());
  EXPECT_THROW(r.get_count(100, "items"), SimError);

  StateWriter w2;
  w2.put_u64(99);
  StateReader r2(w2.bytes());
  EXPECT_EQ(r2.get_count(100, "items"), 99u);
}

TEST(StateReader, RequireEndThrowsOnTrailingBytes) {
  StateWriter w;
  w.put_u32(1);
  w.put_u32(2);
  StateReader r(w.bytes());
  r.get_u32();
  EXPECT_THROW(r.require_end(), SimError);
}

TEST(Hasher, MatchesBetweenIdenticalStreamsOnly) {
  Hasher a, b, c;
  a.put_u64(1);
  a.put_u32(2);
  b.put_u64(1);
  b.put_u32(2);
  c.put_u32(2);
  c.put_u64(1);  // same values, different order
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Hasher, SensitiveToSingleBitFlip) {
  Hasher a, b;
  a.put_u64(0x1000);
  b.put_u64(0x1001);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Rng, SerializationRoundTripsMidStream) {
  Rng rng(123);
  for (int i = 0; i < 100; ++i) rng.next_u64();

  StateWriter w;
  rng.save(w);
  Rng restored(999);  // different seed: load must fully overwrite
  StateReader r(w.bytes());
  restored.load(r);

  EXPECT_EQ(rng, restored);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_u64(), restored.next_u64());
  }
}

TEST(Rng, HashTracksEngineState) {
  Rng a(7), b(7);
  EXPECT_EQ(state_hash_of(a), state_hash_of(b));
  a.next_u64();
  EXPECT_NE(state_hash_of(a), state_hash_of(b));
  b.next_u64();
  EXPECT_EQ(state_hash_of(a), state_hash_of(b));
}

TEST(Rng, ForkIsDecorrelatedAndDoesNotPerturbParent) {
  Rng parent(42);
  for (int i = 0; i < 10; ++i) parent.next_u64();
  const Rng before = parent;
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  EXPECT_EQ(parent, before);  // forking consumes no parent state
  EXPECT_NE(child_a.next_u64(), child_b.next_u64());

  // Same stream id forks identically (the property restores rely on).
  Rng child_a2 = parent.fork(1);
  Rng child_a3 = parent.fork(1);
  EXPECT_EQ(child_a2.next_u64(), child_a3.next_u64());
}

}  // namespace
}  // namespace gpusim
