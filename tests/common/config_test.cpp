#include "common/config.hpp"

#include <gtest/gtest.h>

namespace gpusim {
namespace {

TEST(ConfigTest, DefaultsMatchPaperTableII) {
  GpuConfig cfg;
  EXPECT_EQ(cfg.num_sms, 16);
  EXPECT_EQ(cfg.max_warps_per_sm, 48);
  EXPECT_EQ(cfg.warp_size, 32);
  EXPECT_EQ(cfg.num_partitions, 6);
  EXPECT_EQ(cfg.banks_per_mc, 16);
  EXPECT_EQ(cfg.t_rp_dram, 12);
  EXPECT_EQ(cfg.t_rcd_dram, 12);
  EXPECT_EQ(cfg.line_bytes, 128);
  EXPECT_EQ(cfg.l1_size_bytes, 16 * 1024);
  EXPECT_EQ(cfg.l1_assoc, 4);
  // 768KB of L2 spread over 6 partitions.
  EXPECT_EQ(cfg.l2_partition_bytes * cfg.num_partitions, 768 * 1024);
  EXPECT_EQ(cfg.estimation_interval, 50'000u);
  EXPECT_DOUBLE_EQ(cfg.requestmax_factor, 0.6);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigTest, DramToSmScalesByClockRatio) {
  GpuConfig cfg;
  // 1400/924 ~= 1.515: 12 DRAM cycles -> 18 SM cycles.
  EXPECT_EQ(cfg.t_rp(), 18u);
  EXPECT_EQ(cfg.t_rcd(), 18u);
  EXPECT_EQ(cfg.t_cl(), 18u);
  EXPECT_EQ(cfg.t_burst(), 6u);
  EXPECT_EQ(cfg.dram_to_sm(0), 0u);
}

TEST(ConfigTest, CacheGeometryDerivation) {
  GpuConfig cfg;
  EXPECT_EQ(cfg.l1_num_sets(), 16 * 1024 / (128 * 4));
  EXPECT_EQ(cfg.l2_num_sets(), 128 * 1024 / (128 * 8));
  EXPECT_EQ(cfg.lines_per_row(), 2048u / 128u);
}

TEST(ConfigTest, TimePerRequestIsBurstTime) {
  GpuConfig cfg;
  EXPECT_EQ(cfg.time_per_request(), cfg.t_burst());
}

struct BadConfigCase {
  const char* name;
  void (*mutate)(GpuConfig&);
};

class ConfigValidationTest : public ::testing::TestWithParam<BadConfigCase> {};

TEST_P(ConfigValidationTest, RejectsInvalidConfiguration) {
  GpuConfig cfg;
  GetParam().mutate(cfg);
  EXPECT_THROW(cfg.validate(), std::invalid_argument) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllInvalidFields, ConfigValidationTest,
    ::testing::Values(
        BadConfigCase{"zero_sms", [](GpuConfig& c) { c.num_sms = 0; }},
        BadConfigCase{"zero_warps",
                      [](GpuConfig& c) { c.max_warps_per_sm = 0; }},
        BadConfigCase{"zero_partitions",
                      [](GpuConfig& c) { c.num_partitions = 0; }},
        BadConfigCase{"zero_banks", [](GpuConfig& c) { c.banks_per_mc = 0; }},
        BadConfigCase{"odd_line_bytes",
                      [](GpuConfig& c) { c.line_bytes = 100; }},
        BadConfigCase{"l1_not_divisible",
                      [](GpuConfig& c) { c.l1_size_bytes = 1000; }},
        BadConfigCase{"l2_not_divisible",
                      [](GpuConfig& c) { c.l2_partition_bytes = 100; }},
        BadConfigCase{"row_not_multiple",
                      [](GpuConfig& c) { c.row_bytes = 200; }},
        BadConfigCase{"atd_zero",
                      [](GpuConfig& c) { c.atd_sampled_sets = 0; }},
        BadConfigCase{"atd_too_many",
                      [](GpuConfig& c) { c.atd_sampled_sets = 1 << 20; }},
        BadConfigCase{"zero_interval",
                      [](GpuConfig& c) { c.estimation_interval = 0; }},
        BadConfigCase{"bad_factor_low",
                      [](GpuConfig& c) { c.requestmax_factor = 0.0; }},
        BadConfigCase{"bad_factor_high",
                      [](GpuConfig& c) { c.requestmax_factor = 1.5; }},
        BadConfigCase{"bad_ratio",
                      [](GpuConfig& c) { c.dram_clock_ratio = -1.0; }},
        BadConfigCase{"zero_queue",
                      [](GpuConfig& c) { c.dram_queue_capacity = 0; }},
        BadConfigCase{"zero_noc_queue",
                      [](GpuConfig& c) { c.noc_queue_depth = 0; }},
        BadConfigCase{"governor_budget_below_interval",
                      [](GpuConfig& c) {
                        c.governor_drain_budget = c.estimation_interval - 1;
                      }},
        BadConfigCase{"governor_zero_delta",
                      [](GpuConfig& c) { c.governor_max_delta = 0; }},
        BadConfigCase{"governor_zero_starvation_window",
                      [](GpuConfig& c) { c.governor_starvation_window = 0; }},
        BadConfigCase{"governor_thrash_window_too_short",
                      [](GpuConfig& c) { c.governor_thrash_window = 1; }},
        BadConfigCase{"governor_zero_breaker_trips",
                      [](GpuConfig& c) { c.governor_breaker_trips = 0; }},
        BadConfigCase{"governor_jump_bound_at_one",
                      [](GpuConfig& c) { c.governor_jump_bound = 1.0; }}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace gpusim
