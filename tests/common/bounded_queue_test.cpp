#include "common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace gpusim {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueTest, RejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_FALSE(q.full());
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueueTest, ExtractFromMiddle) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.try_push(i);
  auto it = q.begin();
  std::advance(it, 2);
  EXPECT_EQ(q.extract(it), 2);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop(), 0);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
}

TEST(BoundedQueueTest, MoveOnlyFriendly) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
  auto p = q.pop();
  EXPECT_EQ(*p, 42);
}

TEST(BoundedQueueTest, ClearEmpties) {
  BoundedQueue<std::string> q(3);
  q.try_push("a");
  q.try_push("b");
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 3u);
}

TEST(BoundedQueueTest, IterationVisitsInOrder) {
  BoundedQueue<int> q(4);
  for (int i = 10; i < 14; ++i) q.try_push(i);
  int expect = 10;
  for (int v : q) EXPECT_EQ(v, expect++);
}

TEST(ConcurrentBoundedQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(ConcurrentBoundedQueue<int>(0), SimError);
}

TEST(ConcurrentBoundedQueueTest, FifoThroughOneProducerOneConsumer) {
  ConcurrentBoundedQueue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.push(i));
    q.close();
  });
  int expect = 0;
  while (auto v = q.pop()) EXPECT_EQ(*v, expect++);
  EXPECT_EQ(expect, 100);
  producer.join();
}

TEST(ConcurrentBoundedQueueTest, FullQueueBackpressuresProducer) {
  ConcurrentBoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.try_push(3));  // full: non-blocking push refuses

  // A blocking push must actually wait for space, not drop or overflow.
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(3));
    pushed.store(true);
  });
  // The producer is parked on the not_full condition; popping one item is
  // what releases it.
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(ConcurrentBoundedQueueTest, PopAfterCloseDrainsThenEnds) {
  ConcurrentBoundedQueue<std::string> q(4);
  EXPECT_TRUE(q.push("a"));
  EXPECT_TRUE(q.push("b"));
  q.close();
  // Accepted items are never lost: close() only stops new pushes.
  EXPECT_FALSE(q.push("c"));
  EXPECT_FALSE(q.try_push("c"));
  EXPECT_EQ(q.pop(), "a");
  EXPECT_EQ(q.pop(), "b");
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays ended
  q.close();                         // idempotent
  EXPECT_TRUE(q.closed());
}

TEST(ConcurrentBoundedQueueTest, CloseWakesBlockedConsumers) {
  ConcurrentBoundedQueue<int> q(2);
  std::vector<std::thread> consumers;
  std::atomic<int> ended{0};
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      while (q.pop()) {
      }
      ended.fetch_add(1);
    });
  }
  q.close();  // all four are (or will be) blocked on empty — release them
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(ended.load(), 4);
}

TEST(ConcurrentBoundedQueueTest, CloseWakesBlockedProducers) {
  ConcurrentBoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(0));  // queue now full
  std::vector<std::thread> producers;
  std::atomic<int> refused{0};
  for (int i = 0; i < 4; ++i) {
    producers.emplace_back([&] {
      if (!q.push(1)) refused.fetch_add(1);
    });
  }
  q.close();  // all four are (or will be) blocked on full — release them
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(refused.load(), 4);
  EXPECT_EQ(q.pop(), 0);  // the accepted item still drains
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(ConcurrentBoundedQueueTest, ManyProducersOneConsumerLosesNothing) {
  // The JobManager's manifest channel shape: N workers push result lines,
  // one writer drains.  Every accepted item must come out exactly once.
  ConcurrentBoundedQueue<int> q(3);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&] {
    while (auto v = q.pop()) seen.push_back(*v);
  });
  for (std::thread& t : producers) t.join();
  q.close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<bool> got(kProducers * kPerProducer, false);
  for (int v : seen) {
    ASSERT_FALSE(got[static_cast<std::size_t>(v)]) << "duplicate " << v;
    got[static_cast<std::size_t>(v)] = true;
  }
}

}  // namespace
}  // namespace gpusim
