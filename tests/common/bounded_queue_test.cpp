#include "common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gpusim {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueTest, RejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_FALSE(q.full());
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueueTest, ExtractFromMiddle) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.try_push(i);
  auto it = q.begin();
  std::advance(it, 2);
  EXPECT_EQ(q.extract(it), 2);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop(), 0);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
}

TEST(BoundedQueueTest, MoveOnlyFriendly) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
  auto p = q.pop();
  EXPECT_EQ(*p, 42);
}

TEST(BoundedQueueTest, ClearEmpties) {
  BoundedQueue<std::string> q(3);
  q.try_push("a");
  q.try_push("b");
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 3u);
}

TEST(BoundedQueueTest, IterationVisitsInOrder) {
  BoundedQueue<int> q(4);
  for (int i = 10; i < 14; ++i) q.try_push(i);
  int expect = 10;
  for (int v : q) EXPECT_EQ(v, expect++);
}

}  // namespace
}  // namespace gpusim
