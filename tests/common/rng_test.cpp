#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gpusim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

class RngUniformityTest : public ::testing::TestWithParam<u64> {};

TEST_P(RngUniformityTest, BucketsRoughlyUniform) {
  Rng rng(GetParam());
  constexpr int kBuckets = 16;
  constexpr int kSamples = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.10) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformityTest,
                         ::testing::Values(1, 42, 12345, 0xDEADBEEF));

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(31);
  for (double p : {0.1, 0.45, 0.9}) {
    int hits = 0;
    constexpr int kTrials = 50000;
    for (int i = 0; i < kTrials; ++i) {
      hits += rng.next_bool(p) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kTrials, p, 0.02);
  }
}

TEST(RngTest, ZeroProbabilityNeverFires) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
  }
}

TEST(RngTest, NoShortCycles) {
  Rng rng(17);
  std::set<u64> seen;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(seen.insert(rng.next_u64()).second) << "cycle at " << i;
  }
}

}  // namespace
}  // namespace gpusim
