#include "common/sim_error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gpusim {
namespace {

TEST(SimErrorTest, WhatRendersKindComponentAndMessage) {
  const SimError e(SimErrorKind::kQueueOverflow, "mem.partition",
                   "response queue overflow");
  const std::string what = e.what();
  EXPECT_NE(what.find("queue-overflow"), std::string::npos);
  EXPECT_NE(what.find("mem.partition"), std::string::npos);
  EXPECT_NE(what.find("response queue overflow"), std::string::npos);
}

TEST(SimErrorTest, FluentContextAppearsInWhat) {
  SimError e(SimErrorKind::kInvariant, "sm.core", "bad warp");
  e.cycle(12345).app(1).detail("occupancy", 32).detail("depth", 64);
  const std::string what = e.what();
  EXPECT_NE(what.find("cycle: 12345"), std::string::npos);
  EXPECT_NE(what.find("app: 1"), std::string::npos);
  EXPECT_NE(what.find("occupancy: 32"), std::string::npos);
  EXPECT_NE(what.find("depth: 64"), std::string::npos);
}

TEST(SimErrorTest, AccessorsExposeStructuredFields) {
  SimError e(SimErrorKind::kConservation, "gpu", "leak");
  e.cycle(7).app(2);
  EXPECT_EQ(e.kind(), SimErrorKind::kConservation);
  EXPECT_EQ(e.component(), "gpu");
  EXPECT_EQ(e.message(), "leak");
  EXPECT_TRUE(e.has_cycle());
  EXPECT_EQ(e.error_cycle(), 7u);
  EXPECT_EQ(e.error_app(), 2);
}

TEST(SimErrorTest, MultiLineDetailGetsOwnBlock) {
  SimError e(SimErrorKind::kWatchdogStall, "gpu", "stalled");
  e.detail("pipeline_state", "sm 0: idle\nsm 1: busy");
  const std::string what = e.what();
  EXPECT_NE(what.find("pipeline_state:\n"), std::string::npos);
  EXPECT_NE(what.find("sm 1: busy"), std::string::npos);
}

TEST(SimErrorTest, CatchableAsRuntimeError) {
  try {
    SIM_FAIL(SimError(SimErrorKind::kHarness, "test", "boom"));
    FAIL() << "SIM_FAIL did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(SimErrorTest, SimCheckPassesSilently) {
  EXPECT_NO_THROW(SIM_CHECK(
      1 + 1 == 2, SimError(SimErrorKind::kInvariant, "test", "never")));
}

TEST(SimErrorTest, SimCheckAttachesConditionAndLocation) {
  try {
    const int occupancy = 9;
    SIM_CHECK(occupancy < 8,
              SimError(SimErrorKind::kQueueOverflow, "test", "full")
                  .detail("occupancy", occupancy));
    FAIL() << "SIM_CHECK did not throw";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("occupancy < 8"), std::string::npos);
    EXPECT_NE(what.find("sim_error_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("occupancy: 9"), std::string::npos);
  }
}

TEST(SimErrorTest, SimInvariantShorthandThrowsInvariantKind) {
  try {
    SIM_INVARIANT(false, "noc.crossbar", "dest out of range");
    FAIL() << "SIM_INVARIANT did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimErrorKind::kInvariant);
    EXPECT_EQ(e.component(), "noc.crossbar");
  }
}

TEST(SimErrorTest, KindNamesAreDistinct) {
  EXPECT_STRNE(to_string(SimErrorKind::kInvariant),
               to_string(SimErrorKind::kQueueOverflow));
  EXPECT_STRNE(to_string(SimErrorKind::kWatchdogStall),
               to_string(SimErrorKind::kConservation));
  EXPECT_STRNE(to_string(SimErrorKind::kConfig),
               to_string(SimErrorKind::kHarness));
}

TEST(SimErrorTest, ChecksSurviveNdebug) {
  // The whole point of SimGuard: these are not assert()s.  This test file
  // is compiled exactly like the release targets, so if NDEBUG were to
  // strip the checks this would silently pass a false condition.
  bool threw = false;
  try {
    SIM_INVARIANT(false, "test", "always-on");
  } catch (const SimError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace gpusim
