#include "common/config_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gpusim {
namespace {

TEST(ConfigIoTest, RoundTripPreservesEveryField) {
  GpuConfig original;
  original.num_sms = 8;
  original.banks_per_mc = 8;
  original.estimation_interval = 25'000;
  original.requestmax_factor = 0.45;
  original.alpha_clamp_enabled = false;
  original.t_miss_bubble_dram = 7;
  original.dram_clock_ratio = 1.25;

  std::stringstream ss;
  write_config(ss, original);
  const GpuConfig parsed = read_config(ss);

  EXPECT_EQ(parsed.num_sms, 8);
  EXPECT_EQ(parsed.banks_per_mc, 8);
  EXPECT_EQ(parsed.estimation_interval, 25'000u);
  EXPECT_DOUBLE_EQ(parsed.requestmax_factor, 0.45);
  EXPECT_FALSE(parsed.alpha_clamp_enabled);
  EXPECT_EQ(parsed.t_miss_bubble_dram, 7);
  EXPECT_DOUBLE_EQ(parsed.dram_clock_ratio, 1.25);
}

TEST(ConfigIoTest, PartialFileKeepsDefaults) {
  std::stringstream ss("num_sms = 4\n");
  const GpuConfig cfg = read_config(ss);
  EXPECT_EQ(cfg.num_sms, 4);
  EXPECT_EQ(cfg.num_partitions, 6);  // untouched default
}

TEST(ConfigIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "num_sms = 12  # trailing comment\n"
      "   \t  \n");
  EXPECT_EQ(read_config(ss).num_sms, 12);
}

TEST(ConfigIoTest, UnknownKeyRejected) {
  std::stringstream ss("nmu_sms = 4\n");
  EXPECT_THROW(read_config(ss), std::invalid_argument);
}

TEST(ConfigIoTest, MalformedValueRejected) {
  std::stringstream bad_number("num_sms = four\n");
  EXPECT_THROW(read_config(bad_number), std::invalid_argument);
  std::stringstream no_equals("num_sms 4\n");
  EXPECT_THROW(read_config(no_equals), std::invalid_argument);
  std::stringstream bad_bool("alpha_clamp_enabled = maybe\n");
  EXPECT_THROW(read_config(bad_bool), std::invalid_argument);
}

TEST(ConfigIoTest, InvalidResultingConfigRejected) {
  std::stringstream ss("num_sms = 0\n");
  EXPECT_THROW(read_config(ss), std::invalid_argument);
}

TEST(ConfigIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "gpusim_cfg_test.cfg";
  GpuConfig cfg;
  cfg.num_sms = 4;
  save_config(path, cfg);
  const GpuConfig loaded = load_config(path);
  EXPECT_EQ(loaded.num_sms, 4);
  std::remove(path.c_str());
}

TEST(ConfigIoTest, MissingFileThrows) {
  EXPECT_THROW(load_config("/nonexistent/path/gpusim.cfg"),
               std::runtime_error);
}

TEST(ConfigIoTest, BoolAcceptsNumericForms) {
  std::stringstream ss("alpha_clamp_enabled = 0\n");
  EXPECT_FALSE(read_config(ss).alpha_clamp_enabled);
  std::stringstream ss2("alpha_clamp_enabled = 1\n");
  EXPECT_TRUE(read_config(ss2).alpha_clamp_enabled);
}

}  // namespace
}  // namespace gpusim
