#include "common/config_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gpusim {
namespace {

TEST(ConfigIoTest, RoundTripPreservesEveryField) {
  GpuConfig original;
  original.num_sms = 8;
  original.banks_per_mc = 8;
  original.estimation_interval = 25'000;
  original.requestmax_factor = 0.45;
  original.alpha_clamp_enabled = false;
  original.t_miss_bubble_dram = 7;
  original.dram_clock_ratio = 1.25;

  std::stringstream ss;
  write_config(ss, original);
  const GpuConfig parsed = read_config(ss);

  EXPECT_EQ(parsed.num_sms, 8);
  EXPECT_EQ(parsed.banks_per_mc, 8);
  EXPECT_EQ(parsed.estimation_interval, 25'000u);
  EXPECT_DOUBLE_EQ(parsed.requestmax_factor, 0.45);
  EXPECT_FALSE(parsed.alpha_clamp_enabled);
  EXPECT_EQ(parsed.t_miss_bubble_dram, 7);
  EXPECT_DOUBLE_EQ(parsed.dram_clock_ratio, 1.25);
}

TEST(ConfigIoTest, PartialFileKeepsDefaults) {
  std::stringstream ss("num_sms = 4\n");
  const GpuConfig cfg = read_config(ss);
  EXPECT_EQ(cfg.num_sms, 4);
  EXPECT_EQ(cfg.num_partitions, 6);  // untouched default
}

TEST(ConfigIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# a comment\n"
      "\n"
      "num_sms = 12  # trailing comment\n"
      "   \t  \n");
  EXPECT_EQ(read_config(ss).num_sms, 12);
}

TEST(ConfigIoTest, UnknownKeyRejected) {
  std::stringstream ss("nmu_sms = 4\n");
  EXPECT_THROW(read_config(ss), std::invalid_argument);
}

TEST(ConfigIoTest, MalformedValueRejected) {
  std::stringstream bad_number("num_sms = four\n");
  EXPECT_THROW(read_config(bad_number), std::invalid_argument);
  std::stringstream no_equals("num_sms 4\n");
  EXPECT_THROW(read_config(no_equals), std::invalid_argument);
  std::stringstream bad_bool("alpha_clamp_enabled = maybe\n");
  EXPECT_THROW(read_config(bad_bool), std::invalid_argument);
}

TEST(ConfigIoTest, InvalidResultingConfigRejected) {
  std::stringstream ss("num_sms = 0\n");
  EXPECT_THROW(read_config(ss), std::invalid_argument);
}

/// Runs read_config and returns the failure message (empty = no throw).
std::string read_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    read_config(ss);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(ConfigIoTest, UnknownKeyNamesOffendingLine) {
  const std::string msg = read_error(
      "# header\n"
      "num_sms = 8\n"
      "nmu_sms = 4\n");
  EXPECT_NE(msg.find("config line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("nmu_sms"), std::string::npos) << msg;
}

TEST(ConfigIoTest, MalformedValueNamesLineAndKey) {
  const std::string msg = read_error("num_sms = four\n");
  EXPECT_NE(msg.find("config line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("num_sms"), std::string::npos) << msg;
  EXPECT_NE(msg.find("four"), std::string::npos) << msg;

  const std::string no_eq = read_error("\n\nnum_sms 4\n");
  EXPECT_NE(no_eq.find("config line 3"), std::string::npos) << no_eq;
}

TEST(ConfigIoTest, ValidateRejectionPointsAtOffendingLine) {
  // banks_per_mc = 64 parses fine but fails validate(); the error must be
  // attributed to line 2, where the bad value was set.
  const std::string msg = read_error(
      "num_sms = 8\n"
      "banks_per_mc = 64\n");
  EXPECT_NE(msg.find("config line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("banks_per_mc"), std::string::npos) << msg;
}

TEST(ConfigIoTest, NegativeQueueDepthRejected) {
  const std::string msg = read_error("partition_resp_queue_depth = -1\n");
  EXPECT_NE(msg.find("config line 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("partition_resp_queue_depth"), std::string::npos) << msg;
}

TEST(ConfigIoTest, DirectoryAsConfigFileRejected) {
  EXPECT_THROW(load_config(::testing::TempDir()), std::runtime_error);
}

TEST(ConfigIoTest, RoundTripIncludesRespQueueDepth) {
  GpuConfig cfg;
  cfg.partition_resp_queue_depth = 77;
  std::stringstream ss;
  write_config(ss, cfg);
  EXPECT_EQ(read_config(ss).partition_resp_queue_depth, 77);
}

TEST(ConfigIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "gpusim_cfg_test.cfg";
  GpuConfig cfg;
  cfg.num_sms = 4;
  save_config(path, cfg);
  const GpuConfig loaded = load_config(path);
  EXPECT_EQ(loaded.num_sms, 4);
  std::remove(path.c_str());
}

TEST(ConfigIoTest, MissingFileThrows) {
  EXPECT_THROW(load_config("/nonexistent/path/gpusim.cfg"),
               std::runtime_error);
}

TEST(ConfigIoTest, BoolAcceptsNumericForms) {
  std::stringstream ss("alpha_clamp_enabled = 0\n");
  EXPECT_FALSE(read_config(ss).alpha_clamp_enabled);
  std::stringstream ss2("alpha_clamp_enabled = 1\n");
  EXPECT_TRUE(read_config(ss2).alpha_clamp_enabled);
}

}  // namespace
}  // namespace gpusim
