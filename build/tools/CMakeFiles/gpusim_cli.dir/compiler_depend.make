# Empty compiler generated dependencies file for gpusim_cli.
# This may be replaced when dependencies are built.
