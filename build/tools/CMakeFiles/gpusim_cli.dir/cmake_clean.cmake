file(REMOVE_RECURSE
  "CMakeFiles/gpusim_cli.dir/gpusim_cli.cpp.o"
  "CMakeFiles/gpusim_cli.dir/gpusim_cli.cpp.o.d"
  "gpusim_cli"
  "gpusim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
