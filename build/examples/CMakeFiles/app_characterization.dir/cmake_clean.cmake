file(REMOVE_RECURSE
  "CMakeFiles/app_characterization.dir/app_characterization.cpp.o"
  "CMakeFiles/app_characterization.dir/app_characterization.cpp.o.d"
  "app_characterization"
  "app_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
