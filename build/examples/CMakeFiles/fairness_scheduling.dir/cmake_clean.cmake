file(REMOVE_RECURSE
  "CMakeFiles/fairness_scheduling.dir/fairness_scheduling.cpp.o"
  "CMakeFiles/fairness_scheduling.dir/fairness_scheduling.cpp.o.d"
  "fairness_scheduling"
  "fairness_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
