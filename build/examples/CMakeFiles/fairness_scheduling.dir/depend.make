# Empty dependencies file for fairness_scheduling.
# This may be replaced when dependencies are built.
