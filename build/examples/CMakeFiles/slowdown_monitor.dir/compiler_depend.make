# Empty compiler generated dependencies file for slowdown_monitor.
# This may be replaced when dependencies are built.
