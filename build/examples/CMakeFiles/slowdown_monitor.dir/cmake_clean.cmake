file(REMOVE_RECURSE
  "CMakeFiles/slowdown_monitor.dir/slowdown_monitor.cpp.o"
  "CMakeFiles/slowdown_monitor.dir/slowdown_monitor.cpp.o.d"
  "slowdown_monitor"
  "slowdown_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slowdown_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
