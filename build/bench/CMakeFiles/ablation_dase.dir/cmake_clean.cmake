file(REMOVE_RECURSE
  "CMakeFiles/ablation_dase.dir/ablation_dase.cpp.o"
  "CMakeFiles/ablation_dase.dir/ablation_dase.cpp.o.d"
  "ablation_dase"
  "ablation_dase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
