# Empty dependencies file for ablation_dase.
# This may be replaced when dependencies are built.
