file(REMOVE_RECURSE
  "CMakeFiles/fig4_mbb_requests.dir/fig4_mbb_requests.cpp.o"
  "CMakeFiles/fig4_mbb_requests.dir/fig4_mbb_requests.cpp.o.d"
  "fig4_mbb_requests"
  "fig4_mbb_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mbb_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
