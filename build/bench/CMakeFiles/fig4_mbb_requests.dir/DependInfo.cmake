
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_mbb_requests.cpp" "bench/CMakeFiles/fig4_mbb_requests.dir/fig4_mbb_requests.cpp.o" "gcc" "bench/CMakeFiles/fig4_mbb_requests.dir/fig4_mbb_requests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gpusim_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpusim_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gpusim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dase/CMakeFiles/gpusim_dase.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpusim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sm/CMakeFiles/gpusim_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/gpusim_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpusim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gpusim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gpusim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpusim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
