# Empty dependencies file for fig4_mbb_requests.
# This may be replaced when dependencies are built.
