# Empty compiler generated dependencies file for fig6_four_app_error.
# This may be replaced when dependencies are built.
