file(REMOVE_RECURSE
  "CMakeFiles/fig8_sensitivity.dir/fig8_sensitivity.cpp.o"
  "CMakeFiles/fig8_sensitivity.dir/fig8_sensitivity.cpp.o.d"
  "fig8_sensitivity"
  "fig8_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
