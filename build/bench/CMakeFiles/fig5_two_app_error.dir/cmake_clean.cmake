file(REMOVE_RECURSE
  "CMakeFiles/fig5_two_app_error.dir/fig5_two_app_error.cpp.o"
  "CMakeFiles/fig5_two_app_error.dir/fig5_two_app_error.cpp.o.d"
  "fig5_two_app_error"
  "fig5_two_app_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_two_app_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
