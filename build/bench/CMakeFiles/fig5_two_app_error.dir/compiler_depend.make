# Empty compiler generated dependencies file for fig5_two_app_error.
# This may be replaced when dependencies are built.
