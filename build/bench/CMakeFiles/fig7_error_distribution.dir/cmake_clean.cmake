file(REMOVE_RECURSE
  "CMakeFiles/fig7_error_distribution.dir/fig7_error_distribution.cpp.o"
  "CMakeFiles/fig7_error_distribution.dir/fig7_error_distribution.cpp.o.d"
  "fig7_error_distribution"
  "fig7_error_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_error_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
