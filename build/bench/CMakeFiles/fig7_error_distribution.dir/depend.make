# Empty dependencies file for fig7_error_distribution.
# This may be replaced when dependencies are built.
