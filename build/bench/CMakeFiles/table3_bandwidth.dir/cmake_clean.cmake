file(REMOVE_RECURSE
  "CMakeFiles/table3_bandwidth.dir/table3_bandwidth.cpp.o"
  "CMakeFiles/table3_bandwidth.dir/table3_bandwidth.cpp.o.d"
  "table3_bandwidth"
  "table3_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
