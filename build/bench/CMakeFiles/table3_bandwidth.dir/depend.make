# Empty dependencies file for table3_bandwidth.
# This may be replaced when dependencies are built.
