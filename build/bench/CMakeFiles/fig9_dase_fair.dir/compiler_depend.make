# Empty compiler generated dependencies file for fig9_dase_fair.
# This may be replaced when dependencies are built.
