file(REMOVE_RECURSE
  "CMakeFiles/fig9_dase_fair.dir/fig9_dase_fair.cpp.o"
  "CMakeFiles/fig9_dase_fair.dir/fig9_dase_fair.cpp.o.d"
  "fig9_dase_fair"
  "fig9_dase_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dase_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
