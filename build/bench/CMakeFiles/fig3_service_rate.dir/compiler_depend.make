# Empty compiler generated dependencies file for fig3_service_rate.
# This may be replaced when dependencies are built.
