file(REMOVE_RECURSE
  "CMakeFiles/fig2_unfairness.dir/fig2_unfairness.cpp.o"
  "CMakeFiles/fig2_unfairness.dir/fig2_unfairness.cpp.o.d"
  "fig2_unfairness"
  "fig2_unfairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_unfairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
