# Empty compiler generated dependencies file for fig2_unfairness.
# This may be replaced when dependencies are built.
