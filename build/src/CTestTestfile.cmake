# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("kernels")
subdirs("cache")
subdirs("mem")
subdirs("noc")
subdirs("sm")
subdirs("gpu")
subdirs("metrics")
subdirs("dase")
subdirs("baselines")
subdirs("sched")
subdirs("harness")
