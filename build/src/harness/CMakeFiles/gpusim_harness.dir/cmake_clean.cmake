file(REMOVE_RECURSE
  "CMakeFiles/gpusim_harness.dir/runner.cpp.o"
  "CMakeFiles/gpusim_harness.dir/runner.cpp.o.d"
  "libgpusim_harness.a"
  "libgpusim_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
