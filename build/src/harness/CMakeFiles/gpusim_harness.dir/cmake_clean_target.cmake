file(REMOVE_RECURSE
  "libgpusim_harness.a"
)
