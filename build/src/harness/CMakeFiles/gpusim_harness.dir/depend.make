# Empty dependencies file for gpusim_harness.
# This may be replaced when dependencies are built.
