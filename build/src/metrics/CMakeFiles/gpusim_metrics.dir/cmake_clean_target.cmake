file(REMOVE_RECURSE
  "libgpusim_metrics.a"
)
