file(REMOVE_RECURSE
  "CMakeFiles/gpusim_metrics.dir/metrics.cpp.o"
  "CMakeFiles/gpusim_metrics.dir/metrics.cpp.o.d"
  "libgpusim_metrics.a"
  "libgpusim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
