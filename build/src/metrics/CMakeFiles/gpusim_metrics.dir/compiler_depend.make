# Empty compiler generated dependencies file for gpusim_metrics.
# This may be replaced when dependencies are built.
