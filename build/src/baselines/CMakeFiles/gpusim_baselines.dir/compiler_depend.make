# Empty compiler generated dependencies file for gpusim_baselines.
# This may be replaced when dependencies are built.
