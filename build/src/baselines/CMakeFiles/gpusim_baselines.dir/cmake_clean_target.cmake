file(REMOVE_RECURSE
  "libgpusim_baselines.a"
)
