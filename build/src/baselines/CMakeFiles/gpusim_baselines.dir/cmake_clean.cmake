file(REMOVE_RECURSE
  "CMakeFiles/gpusim_baselines.dir/asm_model.cpp.o"
  "CMakeFiles/gpusim_baselines.dir/asm_model.cpp.o.d"
  "CMakeFiles/gpusim_baselines.dir/mise_model.cpp.o"
  "CMakeFiles/gpusim_baselines.dir/mise_model.cpp.o.d"
  "libgpusim_baselines.a"
  "libgpusim_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
