file(REMOVE_RECURSE
  "libgpusim_mem.a"
)
