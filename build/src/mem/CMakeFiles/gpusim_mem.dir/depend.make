# Empty dependencies file for gpusim_mem.
# This may be replaced when dependencies are built.
