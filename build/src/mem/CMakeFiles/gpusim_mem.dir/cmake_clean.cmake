file(REMOVE_RECURSE
  "CMakeFiles/gpusim_mem.dir/dram.cpp.o"
  "CMakeFiles/gpusim_mem.dir/dram.cpp.o.d"
  "CMakeFiles/gpusim_mem.dir/partition.cpp.o"
  "CMakeFiles/gpusim_mem.dir/partition.cpp.o.d"
  "libgpusim_mem.a"
  "libgpusim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
