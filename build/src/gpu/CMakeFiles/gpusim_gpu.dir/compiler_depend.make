# Empty compiler generated dependencies file for gpusim_gpu.
# This may be replaced when dependencies are built.
