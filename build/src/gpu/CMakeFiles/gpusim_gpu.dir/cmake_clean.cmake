file(REMOVE_RECURSE
  "CMakeFiles/gpusim_gpu.dir/gpu.cpp.o"
  "CMakeFiles/gpusim_gpu.dir/gpu.cpp.o.d"
  "CMakeFiles/gpusim_gpu.dir/simulator.cpp.o"
  "CMakeFiles/gpusim_gpu.dir/simulator.cpp.o.d"
  "libgpusim_gpu.a"
  "libgpusim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
