file(REMOVE_RECURSE
  "libgpusim_gpu.a"
)
