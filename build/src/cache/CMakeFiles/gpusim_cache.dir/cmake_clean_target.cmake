file(REMOVE_RECURSE
  "libgpusim_cache.a"
)
