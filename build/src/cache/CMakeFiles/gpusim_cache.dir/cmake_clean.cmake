file(REMOVE_RECURSE
  "CMakeFiles/gpusim_cache.dir/atd.cpp.o"
  "CMakeFiles/gpusim_cache.dir/atd.cpp.o.d"
  "CMakeFiles/gpusim_cache.dir/cache.cpp.o"
  "CMakeFiles/gpusim_cache.dir/cache.cpp.o.d"
  "libgpusim_cache.a"
  "libgpusim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
