# Empty compiler generated dependencies file for gpusim_cache.
# This may be replaced when dependencies are built.
