file(REMOVE_RECURSE
  "CMakeFiles/gpusim_sched.dir/dase_fair.cpp.o"
  "CMakeFiles/gpusim_sched.dir/dase_fair.cpp.o.d"
  "CMakeFiles/gpusim_sched.dir/policies.cpp.o"
  "CMakeFiles/gpusim_sched.dir/policies.cpp.o.d"
  "libgpusim_sched.a"
  "libgpusim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
