file(REMOVE_RECURSE
  "libgpusim_sched.a"
)
