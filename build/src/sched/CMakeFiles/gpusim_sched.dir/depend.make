# Empty dependencies file for gpusim_sched.
# This may be replaced when dependencies are built.
