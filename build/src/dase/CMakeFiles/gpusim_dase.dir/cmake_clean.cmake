file(REMOVE_RECURSE
  "CMakeFiles/gpusim_dase.dir/dase_model.cpp.o"
  "CMakeFiles/gpusim_dase.dir/dase_model.cpp.o.d"
  "libgpusim_dase.a"
  "libgpusim_dase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_dase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
