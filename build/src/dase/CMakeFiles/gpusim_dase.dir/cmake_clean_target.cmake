file(REMOVE_RECURSE
  "libgpusim_dase.a"
)
