# Empty dependencies file for gpusim_dase.
# This may be replaced when dependencies are built.
