file(REMOVE_RECURSE
  "CMakeFiles/gpusim_sm.dir/sm_core.cpp.o"
  "CMakeFiles/gpusim_sm.dir/sm_core.cpp.o.d"
  "libgpusim_sm.a"
  "libgpusim_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
