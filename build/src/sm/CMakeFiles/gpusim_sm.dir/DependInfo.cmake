
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sm/sm_core.cpp" "src/sm/CMakeFiles/gpusim_sm.dir/sm_core.cpp.o" "gcc" "src/sm/CMakeFiles/gpusim_sm.dir/sm_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpusim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gpusim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gpusim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/gpusim_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
