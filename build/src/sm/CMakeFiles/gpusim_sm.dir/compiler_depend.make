# Empty compiler generated dependencies file for gpusim_sm.
# This may be replaced when dependencies are built.
