file(REMOVE_RECURSE
  "libgpusim_sm.a"
)
