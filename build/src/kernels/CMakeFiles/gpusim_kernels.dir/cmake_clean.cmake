file(REMOVE_RECURSE
  "CMakeFiles/gpusim_kernels.dir/app_registry.cpp.o"
  "CMakeFiles/gpusim_kernels.dir/app_registry.cpp.o.d"
  "CMakeFiles/gpusim_kernels.dir/workload_sets.cpp.o"
  "CMakeFiles/gpusim_kernels.dir/workload_sets.cpp.o.d"
  "libgpusim_kernels.a"
  "libgpusim_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
