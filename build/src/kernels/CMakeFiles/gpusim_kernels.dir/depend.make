# Empty dependencies file for gpusim_kernels.
# This may be replaced when dependencies are built.
