file(REMOVE_RECURSE
  "libgpusim_kernels.a"
)
