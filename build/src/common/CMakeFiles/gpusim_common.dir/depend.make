# Empty dependencies file for gpusim_common.
# This may be replaced when dependencies are built.
