file(REMOVE_RECURSE
  "libgpusim_common.a"
)
