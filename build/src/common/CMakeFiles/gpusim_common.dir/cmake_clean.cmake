file(REMOVE_RECURSE
  "CMakeFiles/gpusim_common.dir/config.cpp.o"
  "CMakeFiles/gpusim_common.dir/config.cpp.o.d"
  "CMakeFiles/gpusim_common.dir/config_io.cpp.o"
  "CMakeFiles/gpusim_common.dir/config_io.cpp.o.d"
  "libgpusim_common.a"
  "libgpusim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
