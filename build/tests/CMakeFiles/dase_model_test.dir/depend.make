# Empty dependencies file for dase_model_test.
# This may be replaced when dependencies are built.
