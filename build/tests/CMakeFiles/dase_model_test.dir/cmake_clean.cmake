file(REMOVE_RECURSE
  "CMakeFiles/dase_model_test.dir/dase/dase_model_test.cpp.o"
  "CMakeFiles/dase_model_test.dir/dase/dase_model_test.cpp.o.d"
  "dase_model_test"
  "dase_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dase_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
