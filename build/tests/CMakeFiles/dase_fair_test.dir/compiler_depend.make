# Empty compiler generated dependencies file for dase_fair_test.
# This may be replaced when dependencies are built.
