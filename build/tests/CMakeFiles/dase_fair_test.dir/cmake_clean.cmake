file(REMOVE_RECURSE
  "CMakeFiles/dase_fair_test.dir/sched/dase_fair_test.cpp.o"
  "CMakeFiles/dase_fair_test.dir/sched/dase_fair_test.cpp.o.d"
  "dase_fair_test"
  "dase_fair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dase_fair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
