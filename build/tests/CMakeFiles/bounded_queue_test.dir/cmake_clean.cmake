file(REMOVE_RECURSE
  "CMakeFiles/bounded_queue_test.dir/common/bounded_queue_test.cpp.o"
  "CMakeFiles/bounded_queue_test.dir/common/bounded_queue_test.cpp.o.d"
  "bounded_queue_test"
  "bounded_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
