file(REMOVE_RECURSE
  "CMakeFiles/atd_test.dir/cache/atd_test.cpp.o"
  "CMakeFiles/atd_test.dir/cache/atd_test.cpp.o.d"
  "atd_test"
  "atd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
