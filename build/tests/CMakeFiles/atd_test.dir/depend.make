# Empty dependencies file for atd_test.
# This may be replaced when dependencies are built.
