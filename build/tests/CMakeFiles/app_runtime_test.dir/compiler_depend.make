# Empty compiler generated dependencies file for app_runtime_test.
# This may be replaced when dependencies are built.
