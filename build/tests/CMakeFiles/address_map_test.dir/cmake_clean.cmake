file(REMOVE_RECURSE
  "CMakeFiles/address_map_test.dir/mem/address_map_test.cpp.o"
  "CMakeFiles/address_map_test.dir/mem/address_map_test.cpp.o.d"
  "address_map_test"
  "address_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
