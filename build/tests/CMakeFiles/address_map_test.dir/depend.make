# Empty dependencies file for address_map_test.
# This may be replaced when dependencies are built.
