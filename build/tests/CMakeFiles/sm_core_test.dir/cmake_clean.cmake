file(REMOVE_RECURSE
  "CMakeFiles/sm_core_test.dir/sm/sm_core_test.cpp.o"
  "CMakeFiles/sm_core_test.dir/sm/sm_core_test.cpp.o.d"
  "sm_core_test"
  "sm_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sm_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
