# Empty dependencies file for sm_core_test.
# This may be replaced when dependencies are built.
