file(REMOVE_RECURSE
  "CMakeFiles/crossbar_test.dir/noc/crossbar_test.cpp.o"
  "CMakeFiles/crossbar_test.dir/noc/crossbar_test.cpp.o.d"
  "crossbar_test"
  "crossbar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
