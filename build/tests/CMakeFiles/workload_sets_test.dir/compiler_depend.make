# Empty compiler generated dependencies file for workload_sets_test.
# This may be replaced when dependencies are built.
