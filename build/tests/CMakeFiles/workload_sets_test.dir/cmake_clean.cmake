file(REMOVE_RECURSE
  "CMakeFiles/workload_sets_test.dir/kernels/workload_sets_test.cpp.o"
  "CMakeFiles/workload_sets_test.dir/kernels/workload_sets_test.cpp.o.d"
  "workload_sets_test"
  "workload_sets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
