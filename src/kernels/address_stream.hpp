// Per-warp address-stream generator.
//
// Determinism: every random decision is drawn from a per-warp RNG seeded
// from (app seed, block index, warp index), so workload behaviour is
// reproducible run-to-run for a given seed.
//
// Access-pattern model.  The warps of one thread block consume a *shared
// sequential cursor* — the way a coalesced GPGPU kernel's block walks its
// arrays as one front.  Each memory instruction either
//   * (hot_fraction) touches a random line of a small reused "hot set"
//     (lookup tables / stencil halos) that fits the shared L2 — the lines
//     whose eviction by a co-runner the ATD detects as contention misses;
//   * (seq_locality) takes the next txns_per_mem_instr lines from the
//     block's shared cursor — consecutive lines, so each memory partition
//     sees a run of consecutive locations that fill one DRAM row before
//     moving to the next, letting FR-FCFS chain row-buffer hits;
//   * (otherwise) scatters to a random location — irregular kernels pay an
//     activate/precharge on nearly every such access.
//
// The shared cursor means the exact address interleaving depends on warp
// scheduling (it differs between a co-run and an alone-run), but its
// statistics do not; the paper's methodology only requires replaying the
// same amount of work (instruction counts), which is preserved exactly.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "kernels/kernel_profile.hpp"

namespace gpusim {

/// Byte address-space carve-out per application so concurrent kernels never
/// alias each other's data (they still contend for cache sets and DRAM rows,
/// as on real hardware with distinct allocations).
inline constexpr u64 kAppAddressStride = 1ull << 40;

inline u64 app_address_base(AppId app) {
  return (static_cast<u64>(app) + 1) * kAppAddressStride;
}

/// Stream state shared by all warps of one resident thread block.
struct BlockStream {
  u64 base_line = 0;  ///< start, relative to the streaming region
  u64 cursor = 0;     ///< lines consumed so far
};

class AddressStream {
 public:
  static constexpr u64 kLineBytes = 128;
  /// With the Table II geometry (6 partitions, 2KB rows of 16 lines, 16
  /// banks) one bank-row covers 96 consecutive cache lines and a full
  /// rotation over all banks covers 96*16 = 1536 lines.  Thread blocks
  /// start their streams at distinct bank slots inside a rotation — the
  /// effect a contiguous grid-to-array tiling has on real hardware — so
  /// concurrent regular streams do not thrash each other's rows.  Scattered
  /// (irregular) accesses pick random slots and do collide.
  static constexpr u64 kRowSpanLines = 96;
  static constexpr u64 kBankRotationLines = 96 * 16;

  AddressStream(const KernelProfile* profile, AppId app, u64 app_seed,
                u64 block_index, int warp_in_block, BlockStream* block)
      : profile_(profile),
        rng_(warp_seed(app_seed, block_index, warp_in_block)),
        base_(app_address_base(app)),
        lines_in_ws_(profile->working_set_bytes / kLineBytes),
        hot_lines_(profile->hot_set_bytes / kLineBytes),
        block_(block) {
    assert(lines_in_ws_ > hot_lines_);
    assert(block_ != nullptr);
  }

  /// Initialises the shared stream of a newly launched thread block.
  static BlockStream make_block_stream(const KernelProfile& profile,
                                       u64 app_seed, u64 block_index) {
    const u64 hot_lines = profile.hot_set_bytes / kLineBytes;
    const u64 stream_lines =
        profile.working_set_bytes / kLineBytes - hot_lines;
    Rng block_rng(app_seed * 0x2545F4914F6CDD1DULL + block_index + 1);
    BlockStream s;
    s.base_line = aligned_base(block_rng, block_index, stream_lines);
    return s;
  }

  /// Generates the line addresses touched by one memory instruction:
  /// profile->txns_per_mem_instr line-aligned byte addresses.
  void next_mem_instr(std::vector<u64>& out) {
    const int txns = profile_->txns_per_mem_instr;
    if (hot_lines_ > 0 && rng_.next_bool(profile_->hot_fraction)) {
      const u64 start = rng_.next_below(hot_lines_);
      for (int t = 0; t < txns; ++t) {
        out.push_back(base_ + ((start + t) % hot_lines_) * kLineBytes);
      }
      return;
    }
    u64 start_line;
    if (rng_.next_bool(profile_->seq_locality)) {
      // Coherent block front: consume the next txns lines of the shared
      // cursor.
      start_line = block_->base_line + block_->cursor;
      block_->cursor += static_cast<u64>(txns);
    } else {
      // Irregular scatter: one-off random location, random bank slot, plus
      // a random offset inside the row span — row-span alignment is a
      // multiple of the partition count, so without the offset every
      // scatter would land on partition 0.
      start_line = aligned_base(rng_, rng_.next_u64(), stream_lines()) +
                   rng_.next_below(kRowSpanLines - txns);
    }
    for (int t = 0; t < txns; ++t) {
      const u64 line = hot_lines_ + (start_line + t) % stream_lines();
      out.push_back(base_ + line * kLineBytes);
    }
  }

  // SimState: the RNG is the only run-time-evolving member — every other
  // field is a pure function of (profile, app, app_seed) or the block_
  // wiring pointer, all re-supplied at reconstruction.  A restored stream is
  // rebuilt via the constructor (any warp_in_block; it only perturbs the
  // seed) and then overwritten with the saved engine state.
  template <typename Sink>
  void write_state(Sink& s) const {
    rng_.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) { rng_.load(r); }

  /// Draws the compute-run length preceding the next memory instruction:
  /// uniform in [0.5*mean, 1.5*mean] around the profile's mean run.
  u64 next_compute_run() {
    const double mean = profile_->mean_compute_run();
    if (mean <= 0.0) return 0;
    const double lo = 0.5 * mean;
    const double len = lo + rng_.next_double() * mean;
    return static_cast<u64>(len + 0.5);
  }

 private:
  static u64 warp_seed(u64 app_seed, u64 block_index, int warp_in_block) {
    return app_seed * 0x9E3779B97F4A7C15ULL +
           block_index * 0xC2B2AE3D27D4EB4FULL +
           static_cast<u64>(warp_in_block) * 0x165667B19E3779F9ULL + 1;
  }

  u64 stream_lines() const { return lines_in_ws_ - hot_lines_; }

  /// Random base line relative to the streaming region: a random bank
  /// rotation, entered at the row span selected by `slot`.
  static u64 aligned_base(Rng& rng, u64 slot, u64 stream_lines) {
    const u64 rotations = std::max<u64>(1, stream_lines / kBankRotationLines);
    const u64 slots_per_rotation = kBankRotationLines / kRowSpanLines;  // 16
    return rng.next_below(rotations) * kBankRotationLines +
           (slot % slots_per_rotation) * kRowSpanLines;
  }

  const KernelProfile* profile_;
  Rng rng_;
  u64 base_;
  u64 lines_in_ws_;
  u64 hot_lines_;
  BlockStream* block_;
};

}  // namespace gpusim
