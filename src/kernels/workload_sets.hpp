// Workload-set builders for the paper's evaluation (Section V).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "kernels/kernel_profile.hpp"

namespace gpusim {

/// A multiprogrammed workload: the kernels launched concurrently.
struct Workload {
  std::vector<KernelProfile> apps;
  std::string label() const;  ///< e.g. "SD+SA"
};

/// All C(15,2) = 105 two-application combinations, Table III order.
std::vector<Workload> all_two_app_workloads();

/// `count` distinct four-application combinations drawn deterministically
/// from the registry with the given seed (paper: 30 random quads).
std::vector<Workload> random_four_app_workloads(int count, u64 seed);

/// The five two-application combinations used by the motivation study
/// (Fig. 2); includes SD+SA, whose unfairness the paper quotes as 2.51.
std::vector<Workload> motivation_workloads();

/// `count` distinct two-application combinations drawn deterministically
/// (Fig. 8a uses 30 random pairs).
std::vector<Workload> random_two_app_workloads(int count, u64 seed);

}  // namespace gpusim
