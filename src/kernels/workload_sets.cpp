#include "kernels/workload_sets.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/rng.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {

std::string Workload::label() const {
  std::string out;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (i > 0) out += '+';
    out += apps[i].abbr;
  }
  return out;
}

std::vector<Workload> all_two_app_workloads() {
  const auto& apps = app_registry();
  std::vector<Workload> out;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    for (std::size_t j = i + 1; j < apps.size(); ++j) {
      out.push_back(Workload{{apps[i], apps[j]}});
    }
  }
  return out;
}

std::vector<Workload> random_four_app_workloads(int count, u64 seed) {
  const auto& apps = app_registry();
  const int n = static_cast<int>(apps.size());
  assert(n >= 4);
  Rng rng(seed);
  std::set<std::vector<int>> seen;
  std::vector<Workload> out;
  while (static_cast<int>(out.size()) < count) {
    std::vector<int> pick;
    while (static_cast<int>(pick.size()) < 4) {
      const int candidate = static_cast<int>(rng.next_below(n));
      if (std::find(pick.begin(), pick.end(), candidate) == pick.end()) {
        pick.push_back(candidate);
      }
    }
    std::vector<int> key = pick;
    std::sort(key.begin(), key.end());
    if (!seen.insert(key).second) continue;
    Workload w;
    for (int idx : pick) w.apps.push_back(apps[idx]);
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<Workload> motivation_workloads() {
  auto pair = [](const char* a, const char* b) {
    return Workload{{*find_app(a), *find_app(b)}};
  };
  // Five combinations spanning the intensity spectrum; the fourth is the
  // SD+SA pair the paper analyses in detail (Fig. 2 fourth bar).
  return {pair("SD", "BS"), pair("QR", "SB"), pair("CT", "VA"),
          pair("SD", "SA"), pair("NN", "AT")};
}

std::vector<Workload> random_two_app_workloads(int count, u64 seed) {
  auto all = all_two_app_workloads();
  Rng rng(seed);
  // Fisher-Yates prefix shuffle.
  const int n = static_cast<int>(all.size());
  const int take = std::min(count, n);
  for (int i = 0; i < take; ++i) {
    const int j = i + static_cast<int>(rng.next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(take);
  return all;
}

}  // namespace gpusim
