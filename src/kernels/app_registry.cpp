#include "kernels/app_registry.hpp"

namespace gpusim {

namespace {

KernelProfile make(std::string name, std::string abbr, double bw,
                   double mem_fraction, int txns, double seq_locality,
                   u64 ws_mib, int warps_per_block, u64 instrs_per_warp,
                   int blocks_total, double hot_fraction = 0.0,
                   u64 hot_set_kib = 0, int max_concurrent_blocks = 0) {
  KernelProfile p;
  p.name = std::move(name);
  p.abbr = std::move(abbr);
  p.table3_bw_util = bw;
  p.mem_fraction = mem_fraction;
  p.txns_per_mem_instr = txns;
  p.seq_locality = seq_locality;
  p.working_set_bytes = ws_mib << 20;
  p.warps_per_block = warps_per_block;
  p.instrs_per_warp = instrs_per_warp;
  p.blocks_total = blocks_total;
  p.hot_fraction = hot_fraction;
  p.hot_set_bytes = hot_set_kib << 10;
  p.max_concurrent_blocks = max_concurrent_blocks;
  return p;
}

std::vector<KernelProfile> build_registry() {
  std::vector<KernelProfile> apps;
  apps.reserve(15);
  // name, abbr, Table III BW, mem_frac, txns, seq_loc, WS MiB, warps/blk,
  // instrs/warp, blocks [, hot_frac, hot_KiB, max_blocks/SM].
  // Tuned so alone-run DRAM BW utilisation tracks Table III (asserted by
  // the Table III calibration test); TLP caps (max_blocks/SM) model the
  // limited-parallelism kernels the paper's introduction motivates.
  apps.push_back(make("blackScholes", "BS", 0.65, 0.30, 2, 0.99, 128, 24, 500,
                      1 << 20, 0.0, 0, 2));
  apps.push_back(make("asyncAPI", "AA", 0.61, 0.25, 2, 0.96, 64, 12, 600,
                      1 << 20, 0.0, 0, 4));
  apps.push_back(make("convolutionTexture", "CT", 0.16, 0.008, 2, 0.85, 12,
                      8, 600, 4096, /*hot=*/0.5, /*hot_kib=*/384));
  apps.push_back(make("convolutionSeparable", "CS", 0.32, 0.021, 1, 0.90, 32,
                      8, 600, 1 << 18));
  apps.push_back(make("quasirandom", "QR", 0.14, 0.016, 1, 0.70, 16, 4, 800,
                      1 << 18, /*hot=*/0.5, /*hot_kib=*/128));
  apps.push_back(make("vectorAdd", "VA", 0.60, 0.50, 2, 0.97, 256, 12, 500,
                      1 << 20, 0.0, 0, 4));
  apps.push_back(make("sobol", "SB", 0.68, 0.45, 2, 0.995, 256, 24, 500,
                      1 << 20, 0.0, 0, 2));
  apps.push_back(make("scan", "SA", 0.58, 0.35, 1, 0.95, 64, 12, 600,
                      1 << 19, 0.0, 0, 2));
  apps.push_back(make("scalarProd", "SP", 0.55, 0.30, 1, 0.94, 64, 12, 600,
                      1 << 19, 0.15, 256, 2));
  apps.push_back(make("alignedTypes", "AT", 0.47, 0.25, 2, 0.62, 128, 8, 500,
                      1 << 19, 0.0, 0, 2));
  apps.push_back(make("sortingNetworks", "SN", 0.20, 0.026, 1, 0.80, 4, 6,
                      600, 1 << 16, /*hot=*/0.6, /*hot_kib=*/256));
  apps.push_back(make("stencil", "SC", 0.53, 0.28, 1, 0.90, 96, 12, 600,
                      1 << 19, 0.0, 0, 2));
  apps.push_back(make("BICG", "BG", 0.21, 0.0095, 2, 0.75, 16, 8, 600,
                      1 << 17, /*hot=*/0.5, /*hot_kib=*/512));
  apps.push_back(make("Nn", "NN", 0.56, 0.30, 2, 0.93, 64, 8, 500,
                      1 << 19, 0.0, 0, 3));
  apps.push_back(make("srad", "SD", 0.40, 0.35, 2, 0.15, 64, 8, 500,
                      1 << 19, 0.0, 0, 1));
  return apps;
}

}  // namespace

const std::vector<KernelProfile>& app_registry() {
  static const std::vector<KernelProfile> registry = build_registry();
  return registry;
}

std::optional<KernelProfile> find_app(std::string_view abbr) {
  for (const auto& app : app_registry()) {
    if (app.abbr == abbr) return app;
  }
  return std::nullopt;
}

int app_count() { return static_cast<int>(app_registry().size()); }

}  // namespace gpusim
