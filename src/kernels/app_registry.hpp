// Registry of the 15 evaluated applications (paper Table III).
//
// Each CUDA benchmark is replaced by a synthetic profile tuned so that its
// alone-run DRAM bandwidth utilisation on the baseline GPU matches the
// utilisation the paper reports, while spanning diverse row locality,
// coalescing, working-set and TLP behaviour (see DESIGN.md Section 2).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "kernels/kernel_profile.hpp"

namespace gpusim {

/// All 15 application profiles, in Table III order.
const std::vector<KernelProfile>& app_registry();

/// Looks up a profile by its Table III abbreviation (e.g. "SD").
/// Returns std::nullopt when the abbreviation is unknown.
std::optional<KernelProfile> find_app(std::string_view abbr);

/// Number of registered applications (15).
int app_count();

}  // namespace gpusim
