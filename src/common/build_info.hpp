// Build fingerprint: makes every artifact (snapshot, jobs manifest, crash
// bundle, --version output) attributable to the build that produced it.
//
// The fingerprint is a stable 64-bit hash over the release version, the
// compiled-in feature set and the build flavour (optimisation + sanitizers).
// It deliberately excludes anything machine- or time-dependent: two
// checkouts of the same source built the same way produce the same
// fingerprint on any host, so a triage session can tell "same build" from
// "different build" without trusting timestamps.
//
// Schema versions for the file formats owned by the harness live here too;
// the snapshot file schema stays in gpu/snapshot.hpp (the gpu layer owns
// that format) and is passed in where a human-readable line wants it.
#pragma once

#include <string>

#include "common/types.hpp"

namespace gpusim {

/// Release version of the simulator (bumped per feature PR).
inline constexpr const char* kGpusimVersion = "0.8.0";

/// Schema of the JobManager's JSONL manifest (header line format).
inline constexpr u32 kJobsManifestSchema = 1;

/// Schema of the crash-forensics bundle directory (manifest.json format).
inline constexpr u32 kCrashBundleSchema = 1;

/// Comma-separated feature flags compiled into this build.
std::string build_features();

/// Build flavour: "release" or "debug", plus ",asan"/",ubsan"/",tsan"
/// when a sanitizer is compiled in.
std::string build_type();

/// Stable 64-bit hash of version + features + build type.
u64 build_fingerprint();

/// One human-readable line, e.g. for --version:
///   dase-gpusim 0.8.0 (snapshot v3, jobs-manifest v1, bundle v1;
///   features: ...; build: release; fingerprint 0x...)
/// `snapshot_schema` is the gpu layer's snapshot file version.
std::string build_fingerprint_line(u32 snapshot_schema);

}  // namespace gpusim
