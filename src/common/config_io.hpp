// Plain-text (key = value) serialisation for GpuConfig, so experiments can
// be pinned to a configuration file (see tools/gpusim_cli --config).
//
// Format: one `key = value` per line; '#' starts a comment; unknown keys
// are an error (typos must not silently fall back to defaults).
#pragma once

#include <iosfwd>
#include <string>

#include "common/config.hpp"

namespace gpusim {

/// Writes every tunable field with a short comment.
void write_config(std::ostream& os, const GpuConfig& cfg);

/// Parses `key = value` lines into `cfg` (fields not mentioned keep their
/// current values).  Throws std::invalid_argument on unknown keys or
/// malformed values; the returned config has been validate()d.
GpuConfig read_config(std::istream& is, GpuConfig cfg = {});

/// File-path conveniences.  load_config throws std::runtime_error when the
/// file cannot be opened.
GpuConfig load_config(const std::string& path, GpuConfig base = {});
void save_config(const std::string& path, const GpuConfig& cfg);

}  // namespace gpusim
