// SimGuard request-conservation auditing.
//
// Every memory request packet an SM emits must eventually come back as
// exactly one response packet: SM out-queue -> request crossbar -> L2/MSHR
// (merges fan back out one response per waiter) -> DRAM -> response
// crossbar -> SM.  A dropped packet (leak) strands a warp forever and
// silently skews every slowdown number; a duplicated completion corrupts
// warp scoreboards.  The components increment cheap always-on taps at the
// four choke points; Gpu::audit_conservation() combines them with a walk of
// everything currently in flight and flags any imbalance.
#pragma once

#include <array>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace gpusim {

/// Counters incremented at the packet-conservation choke points.
struct ConservationTaps {
  PerAppCounter requests_sent;        ///< SM pushed a packet into its out queue
  PerAppCounter requests_consumed;    ///< partition accepted a packet (hit/miss/merge)
  PerAppCounter responses_enqueued;   ///< partition produced a response packet
  PerAppCounter responses_delivered;  ///< Gpu handed a response to an SM
  // Recovery-path taps (only move when GpuConfig::mshr_retry_enabled): a
  // reissued request is also counted in requests_sent, and a duplicate
  // response absorbed by the SM is also counted in responses_delivered, so
  // the auditor can net recovery traffic out of the balance.
  PerAppCounter retries_issued;       ///< SM reissued a timed-out miss
  PerAppCounter duplicates_absorbed;  ///< SM absorbed an expected duplicate

  template <typename Sink>
  void write_state(Sink& s) const {
    requests_sent.write_state(s);
    requests_consumed.write_state(s);
    responses_enqueued.write_state(s);
    responses_delivered.write_state(s);
    retries_issued.write_state(s);
    duplicates_absorbed.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    requests_sent.load(r);
    requests_consumed.load(r);
    responses_enqueued.load(r);
    responses_delivered.load(r);
    retries_issued.load(r);
    duplicates_absorbed.load(r);
  }
};

/// Result of one conservation audit.  `leaked[a] = sent - delivered -
/// in_flight` for app a: positive means packets vanished, negative means
/// something completed twice.
///
/// With modeled recovery enabled, a reissued request legitimately puts two
/// packets in flight for one logical miss, and a lost original plus a
/// delivered retry nets out to `leaked == retried - absorbed` without any
/// real bug.  The audit therefore nets recovery traffic out of the balance
/// (`adjusted_leak`) and tolerates at most `recovery_outstanding` — the
/// retries whose original/duplicate fate is still unresolved — in either
/// direction.  With recovery disabled all three recovery fields are zero
/// and ok() degenerates to the original strict `leaked == 0` rule.
struct AuditReport {
  std::array<u64, kMaxApps> sent{};
  std::array<u64, kMaxApps> consumed{};
  std::array<u64, kMaxApps> enqueued{};
  std::array<u64, kMaxApps> delivered{};
  std::array<u64, kMaxApps> in_flight{};
  std::array<i64, kMaxApps> leaked{};
  std::array<u64, kMaxApps> retried{};   ///< taps.retries_issued
  std::array<u64, kMaxApps> absorbed{};  ///< taps.duplicates_absorbed
  /// Reissues not yet resolved into a delivery or an absorbed duplicate
  /// (pending retry attempts + expected duplicates), summed over all SMs.
  std::array<u64, kMaxApps> recovery_outstanding{};
  Cycle cycle = 0;

  i64 total_leaked() const {
    i64 sum = 0;
    for (i64 v : leaked) sum += v;
    return sum;
  }
  i64 adjusted_leak(int a) const {
    return leaked[static_cast<std::size_t>(a)] -
           static_cast<i64>(retried[static_cast<std::size_t>(a)]) +
           static_cast<i64>(absorbed[static_cast<std::size_t>(a)]);
  }
  bool ok() const {
    for (int a = 0; a < kMaxApps; ++a) {
      const i64 adj = adjusted_leak(a);
      const i64 tol =
          static_cast<i64>(recovery_outstanding[static_cast<std::size_t>(a)]);
      if (adj > tol || adj < -tol) return false;
    }
    return true;
  }

  std::string to_string() const {
    std::ostringstream ss;
    ss << "conservation audit @ cycle " << cycle
       << (ok() ? " [ok]" : " [VIOLATION]");
    for (int a = 0; a < kMaxApps; ++a) {
      if (sent[a] == 0 && delivered[a] == 0 && in_flight[a] == 0 &&
          leaked[a] == 0) {
        continue;
      }
      ss << "\n    app " << a << ": sent=" << sent[a]
         << " consumed=" << consumed[a] << " resp_enqueued=" << enqueued[a]
         << " delivered=" << delivered[a] << " in_flight=" << in_flight[a]
         << " leaked=" << leaked[a];
      if (retried[a] != 0 || absorbed[a] != 0 || recovery_outstanding[a] != 0) {
        ss << " retried=" << retried[a] << " absorbed=" << absorbed[a]
           << " recovery_outstanding=" << recovery_outstanding[a]
           << " adjusted=" << adjusted_leak(a);
      }
    }
    return ss.str();
  }
};

}  // namespace gpusim
