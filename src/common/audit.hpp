// SimGuard request-conservation auditing.
//
// Every memory request packet an SM emits must eventually come back as
// exactly one response packet: SM out-queue -> request crossbar -> L2/MSHR
// (merges fan back out one response per waiter) -> DRAM -> response
// crossbar -> SM.  A dropped packet (leak) strands a warp forever and
// silently skews every slowdown number; a duplicated completion corrupts
// warp scoreboards.  The components increment cheap always-on taps at the
// four choke points; Gpu::audit_conservation() combines them with a walk of
// everything currently in flight and flags any imbalance.
#pragma once

#include <array>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace gpusim {

/// Counters incremented at the packet-conservation choke points.
struct ConservationTaps {
  PerAppCounter requests_sent;        ///< SM pushed a packet into its out queue
  PerAppCounter requests_consumed;    ///< partition accepted a packet (hit/miss/merge)
  PerAppCounter responses_enqueued;   ///< partition produced a response packet
  PerAppCounter responses_delivered;  ///< Gpu handed a response to an SM

  template <typename Sink>
  void write_state(Sink& s) const {
    requests_sent.write_state(s);
    requests_consumed.write_state(s);
    responses_enqueued.write_state(s);
    responses_delivered.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    requests_sent.load(r);
    requests_consumed.load(r);
    responses_enqueued.load(r);
    responses_delivered.load(r);
  }
};

/// Result of one conservation audit.  `leaked[a] = sent - delivered -
/// in_flight` for app a: positive means packets vanished, negative means
/// something completed twice.
struct AuditReport {
  std::array<u64, kMaxApps> sent{};
  std::array<u64, kMaxApps> consumed{};
  std::array<u64, kMaxApps> enqueued{};
  std::array<u64, kMaxApps> delivered{};
  std::array<u64, kMaxApps> in_flight{};
  std::array<i64, kMaxApps> leaked{};
  Cycle cycle = 0;

  i64 total_leaked() const {
    i64 sum = 0;
    for (i64 v : leaked) sum += v;
    return sum;
  }
  bool ok() const {
    for (i64 v : leaked) {
      if (v != 0) return false;
    }
    return true;
  }

  std::string to_string() const {
    std::ostringstream ss;
    ss << "conservation audit @ cycle " << cycle
       << (ok() ? " [ok]" : " [VIOLATION]");
    for (int a = 0; a < kMaxApps; ++a) {
      if (sent[a] == 0 && delivered[a] == 0 && in_flight[a] == 0 &&
          leaked[a] == 0) {
        continue;
      }
      ss << "\n    app " << a << ": sent=" << sent[a]
         << " consumed=" << consumed[a] << " resp_enqueued=" << enqueued[a]
         << " delivered=" << delivered[a] << " in_flight=" << in_flight[a]
         << " leaked=" << leaked[a];
    }
    return ss.str();
  }
};

}  // namespace gpusim
