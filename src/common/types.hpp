// Fundamental type aliases and identifiers used across the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace gpusim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulation time, in SM (core) clock cycles.
using Cycle = u64;

/// Index of a concurrently running application (0-based slot in the workload).
using AppId = i32;
/// Index of a streaming multiprocessor.
using SmId = i32;
/// Index of a memory partition (L2 slice + memory controller).
using PartitionId = i32;
/// Index of a warp context within one SM.
using WarpId = i32;

inline constexpr AppId kInvalidApp = -1;
inline constexpr SmId kInvalidSm = -1;
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Maximum number of concurrently running applications the counter
/// structures are sized for.  The paper evaluates up to four (Fig. 6) and
/// sizes its hardware-cost table for N = 4; we allow a few more for
/// experimentation.
inline constexpr int kMaxApps = 8;

}  // namespace gpusim
