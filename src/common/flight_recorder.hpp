// FlightRecorder: a bounded, allocation-free black-box event ring.
//
// The simulator survives failures (SimGuard, ChaosLab, JobManager) but a
// SimError string alone cannot explain *how* a 5M-cycle co-run got into the
// failing state.  The recorder keeps the last N load-bearing events — block
// dispatches, SM-repartition handovers, MSHR timeout reissues, fault-injector
// firings, crossbar stall episodes, partition-queue high-water marks — in a
// fixed-capacity ring that is cheap enough to stay on by default and is
// fully serialized through the SimState walk, so it survives snapshot /
// restore and rides along into crash bundles.
//
// Determinism contract: every tap records *simulated-state transitions
// only*, so the ring contents (and therefore the state hash) are
// bit-identical whether the activity engine or the idle-cycle fast-forward
// are on or off.  Concretely:
//   - block dispatch / MSHR retry events fire from an SM's cycle, and a
//     skipped SM is provably quiet (no dispatch, no due retry);
//   - migration and fault events only occur while the engine is pinned off
//     (migration_pending_ / injector attached);
//   - high-water marks are monotone functions of queue occupancy, which
//     evolves identically under either engine;
//   - crossbar stall episodes are derived from transfer()'s blocked-source
//     mask, and the engine only skips transfer() when every source FIFO is
//     empty — a state in which the mask is zero anyway.  A per-channel
//     cycle throttle (serialized) bounds the volume on saturated NoCs.
//
// The ring buffer is allocated once at init() and never grows; record() is
// a branch plus a struct store.  Serialization is canonical (logical
// oldest→newest order, not physical ring positions), so a restored ring
// hashes identically to the original no matter where the write head sat.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

enum class FrEvent : u8 {
  kBlockDispatch = 0,    ///< unit=sm, app; a=block index
  kMigrationRequested,   ///< a=SMs changing owner
  kMigrationHandover,    ///< unit=sm, app=new owner; a=old owner (+1, 0=none)
  kMigrationComplete,    ///< migration drained; partition now as desired
  kMshrRetry,            ///< unit=sm, app; a=line addr, b=attempt number
  kMshrExhausted,        ///< unit=sm, app; a=line addr, b=attempts spent
  kFaultDropResp,        ///< unit=partition; a=line addr
  kFaultDropReq,         ///< unit=partition; a=line addr
  kFaultNack,            ///< unit=partition; a=line addr, b=retry delay
  kFaultMisroute,        ///< unit=wrong partition; a=line, b=intended partition
  kFaultCorrupt,         ///< unit=partition; a=original line, b=corrupted line
  kRespHighWater,        ///< unit=partition; a=new max occupancy, b=capacity
  kDeferHighWater,       ///< unit=partition; a=deferred-resp backlog (pow2)
  kXbarReqStall,         ///< a=blocked-source mask, b=blocked count
  kXbarRespStall,        ///< a=blocked-source mask, b=blocked count
  kGovClamp,             ///< app; a=SMs proposed, b=SMs after clamping
  kGovProposalRejected,  ///< a=reason (GovernorReject), b=epoch
  kGovLowConfidenceHold, ///< app=worst offender; a=reason, b=epoch
  kGovBreakerTrip,       ///< app (starved; -1=thrash); a=trip count, b=epoch
  kGovFallbackEven,      ///< a=trip count that forced the fallback, b=epoch
  kGovMigrationAbort,    ///< a=cycles the drain had been pending, b=budget
};

inline constexpr u8 kNumFrEvents = 21;

inline const char* to_string(FrEvent e) {
  switch (e) {
    case FrEvent::kBlockDispatch: return "block-dispatch";
    case FrEvent::kMigrationRequested: return "migration-requested";
    case FrEvent::kMigrationHandover: return "migration-handover";
    case FrEvent::kMigrationComplete: return "migration-complete";
    case FrEvent::kMshrRetry: return "mshr-retry";
    case FrEvent::kMshrExhausted: return "mshr-exhausted";
    case FrEvent::kFaultDropResp: return "fault-drop-resp";
    case FrEvent::kFaultDropReq: return "fault-drop-req";
    case FrEvent::kFaultNack: return "fault-nack";
    case FrEvent::kFaultMisroute: return "fault-misroute";
    case FrEvent::kFaultCorrupt: return "fault-corrupt";
    case FrEvent::kRespHighWater: return "resp-high-water";
    case FrEvent::kDeferHighWater: return "defer-high-water";
    case FrEvent::kXbarReqStall: return "xbar-req-stall";
    case FrEvent::kXbarRespStall: return "xbar-resp-stall";
    case FrEvent::kGovClamp: return "gov-clamp";
    case FrEvent::kGovProposalRejected: return "gov-proposal-rejected";
    case FrEvent::kGovLowConfidenceHold: return "gov-low-confidence-hold";
    case FrEvent::kGovBreakerTrip: return "gov-breaker-trip";
    case FrEvent::kGovFallbackEven: return "gov-fallback-even";
    case FrEvent::kGovMigrationAbort: return "gov-migration-abort";
  }
  return "?";
}

/// One recorded event.  POD so the ring is a flat allocation.
struct FlightEvent {
  Cycle cycle = 0;
  FrEvent kind = FrEvent::kBlockDispatch;
  i32 unit = -1;  ///< SM or partition index, -1 = none
  i32 app = -1;   ///< owning application, -1 = none
  u64 a = 0;      ///< event-specific payload (see FrEvent)
  u64 b = 0;
};

class FlightRecorder {
 public:
  /// At most one crossbar-stall event per channel per this many cycles.
  static constexpr Cycle kStallThrottle = 64;

  FlightRecorder() = default;

  /// One-time sizing (Gpu construction).  capacity == 0 disables the
  /// recorder entirely: record() becomes a single predictable branch.
  void init(int capacity, int num_partitions) {
    capacity_ = capacity < 0 ? 0 : static_cast<u32>(capacity);
    buf_.assign(capacity_, FlightEvent{});
    head_ = 0;
    count_ = 0;
    total_ = 0;
    resp_hw_.assign(static_cast<std::size_t>(num_partitions), 0);
    defer_hw_.assign(static_cast<std::size_t>(num_partitions), 0);
    next_stall_[0] = next_stall_[1] = 0;
  }

  bool enabled() const { return capacity_ != 0; }
  u32 capacity() const { return capacity_; }
  u32 size() const { return count_; }
  /// Events ever recorded, including ones the ring has since evicted.
  u64 total_recorded() const { return total_; }
  /// Per-partition response-queue high-water mark (telemetry tap).
  u64 resp_high_water(int part) const {
    return resp_hw_[static_cast<std::size_t>(part)];
  }

  void record(Cycle cycle, FrEvent kind, int unit, int app, u64 a, u64 b) {
    if (capacity_ == 0) return;
    FlightEvent& e = buf_[head_];
    e.cycle = cycle;
    e.kind = kind;
    e.unit = static_cast<i32>(unit);
    e.app = static_cast<i32>(app);
    e.a = a;
    e.b = b;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    if (count_ < capacity_) ++count_;
    ++total_;
  }

  /// Partition response-queue occupancy after a push: records every new
  /// per-partition maximum (monotone, so at most `capacity` events per
  /// partition over a whole run).
  void note_resp_occupancy(Cycle cycle, int part, std::size_t size,
                           std::size_t cap) {
    if (capacity_ == 0) return;
    u64& hw = resp_hw_[static_cast<std::size_t>(part)];
    if (size <= hw) return;
    hw = size;
    record(cycle, FrEvent::kRespHighWater, part, -1, size, cap);
  }

  /// Deferred-response backlog (backpressure overflow): records doubling
  /// marks of the per-partition maximum, so even a 64K-deep backlog costs
  /// at most ~17 events.
  void note_deferred_backlog(Cycle cycle, int part, std::size_t size) {
    if (capacity_ == 0) return;
    u64& hw = defer_hw_[static_cast<std::size_t>(part)];
    if (size <= hw) return;
    hw = size;
    const u64 s = static_cast<u64>(size);
    if ((s & (s - 1)) != 0) return;  // record powers of two only
    record(cycle, FrEvent::kDeferHighWater, part, -1, s, 0);
  }

  /// Crossbar stall episode: `blocked` is transfer()'s ready-but-unaccepted
  /// source mask.  Throttled per channel so a saturated NoC records one
  /// episode per kStallThrottle cycles instead of one per cycle.
  void note_xbar_stall(Cycle cycle, bool resp_channel, u64 blocked) {
    if (capacity_ == 0 || blocked == 0) return;
    Cycle& next = next_stall_[resp_channel ? 1 : 0];
    if (cycle < next) return;
    next = cycle + kStallThrottle;
    int n = 0;
    for (u64 m = blocked; m != 0; m &= m - 1) ++n;
    record(cycle, resp_channel ? FrEvent::kXbarRespStall : FrEvent::kXbarReqStall,
           -1, -1, blocked, static_cast<u64>(n));
  }

  /// Ring contents, oldest first.
  std::vector<FlightEvent> events_in_order() const {
    std::vector<FlightEvent> out;
    out.reserve(count_);
    const u32 start = count_ < capacity_ ? 0 : head_;
    for (u32 i = 0; i < count_; ++i) {
      out.push_back(buf_[(start + i) % capacity_]);
    }
    return out;
  }

  /// Human-readable timeline of (at most) the final `max_events` events —
  /// the postmortem view printed by --triage and dumped into crash bundles.
  std::string render_timeline(std::size_t max_events) const {
    const std::vector<FlightEvent> events = events_in_order();
    const std::size_t first =
        events.size() > max_events ? events.size() - max_events : 0;
    std::ostringstream ss;
    ss << "flight recorder: " << count_ << " event(s) held (capacity "
       << capacity_ << ", " << total_ << " recorded in total)\n";
    for (std::size_t i = first; i < events.size(); ++i) {
      const FlightEvent& e = events[i];
      ss << "  cycle " << e.cycle << ": " << to_string(e.kind);
      if (e.unit >= 0) ss << " unit=" << e.unit;
      if (e.app >= 0) ss << " app=" << e.app;
      switch (e.kind) {
        case FrEvent::kBlockDispatch:
          ss << " block=" << e.a;
          break;
        case FrEvent::kMigrationRequested:
          ss << " sms_changing=" << e.a;
          break;
        case FrEvent::kMigrationHandover:
          if (e.a == 0) {
            ss << " from=none";
          } else {
            ss << " from=" << (e.a - 1);
          }
          break;
        case FrEvent::kMigrationComplete:
          break;
        case FrEvent::kMshrRetry:
          ss << " line=0x" << std::hex << e.a << std::dec
             << " attempt=" << e.b;
          break;
        case FrEvent::kMshrExhausted:
          ss << " line=0x" << std::hex << e.a << std::dec
             << " attempts=" << e.b;
          break;
        case FrEvent::kFaultDropResp:
        case FrEvent::kFaultDropReq:
          ss << " line=0x" << std::hex << e.a << std::dec;
          break;
        case FrEvent::kFaultNack:
          ss << " line=0x" << std::hex << e.a << std::dec << " delay=" << e.b;
          break;
        case FrEvent::kFaultMisroute:
          ss << " line=0x" << std::hex << e.a << std::dec
             << " intended_part=" << e.b;
          break;
        case FrEvent::kFaultCorrupt:
          ss << " line=0x" << std::hex << e.a << "->0x" << e.b << std::dec;
          break;
        case FrEvent::kRespHighWater:
          ss << " occupancy=" << e.a << "/" << e.b;
          break;
        case FrEvent::kDeferHighWater:
          ss << " backlog=" << e.a;
          break;
        case FrEvent::kXbarReqStall:
        case FrEvent::kXbarRespStall:
          ss << " blocked_mask=0x" << std::hex << e.a << std::dec
             << " blocked=" << e.b;
          break;
        case FrEvent::kGovClamp:
          ss << " proposed_sms=" << e.a << " clamped_sms=" << e.b;
          break;
        case FrEvent::kGovProposalRejected:
          ss << " reason=" << e.a << " epoch=" << e.b;
          break;
        case FrEvent::kGovLowConfidenceHold:
          ss << " reason=" << e.a << " epoch=" << e.b;
          break;
        case FrEvent::kGovBreakerTrip:
          ss << " trips=" << e.a << " epoch=" << e.b;
          break;
        case FrEvent::kGovFallbackEven:
          ss << " trips=" << e.a << " epoch=" << e.b;
          break;
        case FrEvent::kGovMigrationAbort:
          ss << " pending_cycles=" << e.a << " budget=" << e.b;
          break;
      }
      ss << "\n";
    }
    return ss.str();
  }

  // -- SimState ----------------------------------------------------------
  // Canonical serialization: capacity (a config property, checked on load),
  // the throttle/high-water cursors, then the held events oldest→newest.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("FREC");
    s.put_u32(capacity_);
    s.put_u64(total_);
    s.put_u64(next_stall_[0]);
    s.put_u64(next_stall_[1]);
    s.put_u32(static_cast<u32>(resp_hw_.size()));
    for (const u64 v : resp_hw_) s.put_u64(v);
    for (const u64 v : defer_hw_) s.put_u64(v);
    s.put_u64(count_);
    const u32 start = count_ < capacity_ ? 0 : head_;
    for (u32 i = 0; i < count_; ++i) {
      const FlightEvent& e = buf_[(start + i) % capacity_];
      s.put_u64(e.cycle);
      s.put_u8(static_cast<u8>(e.kind));
      s.put_i32(e.unit);
      s.put_i32(e.app);
      s.put_u64(e.a);
      s.put_u64(e.b);
    }
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("FREC");
    const u32 cap = r.get_u32();
    SIM_CHECK(cap == capacity_,
              SimError(SimErrorKind::kSnapshot, "common.flight_recorder",
                       "flight recorder capacity mismatch (snapshot written "
                       "with a different flight_recorder_events config)")
                  .detail("snapshot_capacity", cap)
                  .detail("configured_capacity", capacity_));
    const u64 stored_total = r.get_u64();
    next_stall_[0] = r.get_u64();
    next_stall_[1] = r.get_u64();
    const u32 parts = r.get_u32();
    SIM_CHECK(parts == resp_hw_.size(),
              SimError(SimErrorKind::kSnapshot, "common.flight_recorder",
                       "flight recorder partition count mismatch")
                  .detail("snapshot_partitions", parts)
                  .detail("configured_partitions", resp_hw_.size()));
    for (u64& v : resp_hw_) v = r.get_u64();
    for (u64& v : defer_hw_) v = r.get_u64();
    const u64 n = r.get_count(capacity_, "flight recorder events");
    head_ = 0;
    count_ = 0;
    for (u64 i = 0; i < n; ++i) {
      const u64 cycle = r.get_u64();
      const u8 kind = r.get_u8();
      SIM_CHECK(kind < kNumFrEvents,
                SimError(SimErrorKind::kSnapshot, "common.flight_recorder",
                         "unknown flight recorder event kind")
                    .detail("kind", static_cast<int>(kind))
                    .detail("event_index", i));
      const i32 unit = r.get_i32();
      const i32 app = r.get_i32();
      const u64 a = r.get_u64();
      const u64 b = r.get_u64();
      record(cycle, static_cast<FrEvent>(kind), unit, app, a, b);
    }
    // record() bumped total_ once per replayed event; the stored lifetime
    // counter (which also covers evicted events) is authoritative.
    total_ = stored_total;
  }

 private:
  u32 capacity_ = 0;
  u32 head_ = 0;
  u32 count_ = 0;
  u64 total_ = 0;
  std::vector<FlightEvent> buf_;
  std::vector<u64> resp_hw_;   ///< per-partition resp-queue high-water
  std::vector<u64> defer_hw_;  ///< per-partition deferred-backlog high-water
  Cycle next_stall_[2] = {0, 0};  ///< xbar stall throttle (req, resp)
};

}  // namespace gpusim
