#include "common/config_io.hpp"

#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gpusim {

namespace {

struct Field {
  std::function<std::string(const GpuConfig&)> get;
  std::function<void(GpuConfig&, const std::string&)> set;
  const char* comment;
};

template <typename T>
T parse_number(const std::string& text) {
  std::istringstream ss(text);
  T value{};
  ss >> value;
  if (ss.fail()) throw std::invalid_argument("malformed value: " + text);
  // Allow trailing whitespace only.
  std::string rest;
  ss >> rest;
  if (!rest.empty()) throw std::invalid_argument("trailing junk: " + text);
  return value;
}

template <typename T>
Field number_field(T GpuConfig::* member, const char* comment) {
  return Field{
      [member](const GpuConfig& c) {
        std::ostringstream ss;
        // max_digits10 precision so doubles survive a write/read round
        // trip exactly: crash-bundle triage reconstructs the fingerprinted
        // config from this text, and a 6-digit default would silently
        // shift dram_clock_ratio (1400/924) into a different fingerprint.
        ss.precision(std::numeric_limits<T>::max_digits10);
        ss << c.*member;
        return ss.str();
      },
      [member](GpuConfig& c, const std::string& v) {
        c.*member = parse_number<T>(v);
      },
      comment};
}

Field bool_field(bool GpuConfig::* member, const char* comment) {
  return Field{
      [member](const GpuConfig& c) {
        return std::string(c.*member ? "true" : "false");
      },
      [member](GpuConfig& c, const std::string& v) {
        if (v == "true" || v == "1") {
          c.*member = true;
        } else if (v == "false" || v == "0") {
          c.*member = false;
        } else {
          throw std::invalid_argument("expected true/false: " + v);
        }
      },
      comment};
}

const std::map<std::string, Field>& field_table() {
  static const std::map<std::string, Field> table = {
      {"num_sms", number_field(&GpuConfig::num_sms, "streaming multiprocessors")},
      {"max_warps_per_sm", number_field(&GpuConfig::max_warps_per_sm, "warp contexts per SM")},
      {"warp_size", number_field(&GpuConfig::warp_size, "threads per warp")},
      {"max_blocks_per_sm", number_field(&GpuConfig::max_blocks_per_sm, "resident blocks per SM")},
      {"line_bytes", number_field(&GpuConfig::line_bytes, "cache line size")},
      {"l1_size_bytes", number_field(&GpuConfig::l1_size_bytes, "per-SM L1 size")},
      {"l1_assoc", number_field(&GpuConfig::l1_assoc, "L1 associativity")},
      {"l1_hit_latency", number_field(&GpuConfig::l1_hit_latency, "L1 hit latency, SM cycles")},
      {"l2_partition_bytes", number_field(&GpuConfig::l2_partition_bytes, "L2 slice per partition")},
      {"l2_assoc", number_field(&GpuConfig::l2_assoc, "L2 associativity")},
      {"l2_hit_latency", number_field(&GpuConfig::l2_hit_latency, "L2 hit latency, SM cycles")},
      {"l2_miss_extra_latency", number_field(&GpuConfig::l2_miss_extra_latency, "fill-path latency on DRAM return")},
      {"l2_mshr_entries", number_field(&GpuConfig::l2_mshr_entries, "per-partition MSHRs")},
      {"l1_mshr_entries", number_field(&GpuConfig::l1_mshr_entries, "per-SM MSHRs")},
      {"atd_sampled_sets", number_field(&GpuConfig::atd_sampled_sets, "ATD sampled sets (paper: 8)")},
      {"noc_latency", number_field(&GpuConfig::noc_latency, "crossbar one-way latency")},
      {"noc_accepts_per_cycle", number_field(&GpuConfig::noc_accepts_per_cycle, "packets a port sinks per cycle")},
      {"noc_queue_depth", number_field(&GpuConfig::noc_queue_depth, "crossbar port buffering")},
      {"num_partitions", number_field(&GpuConfig::num_partitions, "memory partitions / controllers")},
      {"banks_per_mc", number_field(&GpuConfig::banks_per_mc, "DRAM banks per controller")},
      {"dram_clock_ratio", number_field(&GpuConfig::dram_clock_ratio, "SM cycles per DRAM cycle")},
      {"t_rp_dram", number_field(&GpuConfig::t_rp_dram, "precharge, DRAM cycles")},
      {"t_rcd_dram", number_field(&GpuConfig::t_rcd_dram, "activate, DRAM cycles")},
      {"t_cl_dram", number_field(&GpuConfig::t_cl_dram, "column access, DRAM cycles")},
      {"t_burst_dram", number_field(&GpuConfig::t_burst_dram, "data burst, DRAM cycles")},
      {"t_bus_gap_dram", number_field(&GpuConfig::t_bus_gap_dram, "bus turnaround gap")},
      {"t_miss_bubble_dram", number_field(&GpuConfig::t_miss_bubble_dram, "bus bubble on fresh-row transfers")},
      {"dram_queue_capacity", number_field(&GpuConfig::dram_queue_capacity, "shared FR-FCFS queue entries")},
      {"partition_resp_queue_depth", number_field(&GpuConfig::partition_resp_queue_depth, "partition response FIFO depth")},
      {"row_bytes", number_field(&GpuConfig::row_bytes, "DRAM row (page) size")},
      {"estimation_interval", number_field(&GpuConfig::estimation_interval, "DASE interval (paper: 50000)")},
      {"requestmax_factor", number_field(&GpuConfig::requestmax_factor, "Eq. 20 empirical factor")},
      {"alpha_clamp_threshold", number_field(&GpuConfig::alpha_clamp_threshold, "alpha->1 threshold")},
      {"alpha_clamp_enabled", bool_field(&GpuConfig::alpha_clamp_enabled, "Section 4.1 clamp")},
      {"mshr_retry_enabled", bool_field(&GpuConfig::mshr_retry_enabled, "SM reissues timed-out misses")},
      {"mshr_retry_timeout", number_field(&GpuConfig::mshr_retry_timeout, "cycles before first reissue")},
      {"mshr_retry_max", number_field(&GpuConfig::mshr_retry_max, "reissues before recovery-exhausted")},
      {"flight_recorder_events", number_field(&GpuConfig::flight_recorder_events, "black-box event ring capacity (0 = off)")},
      {"governor_drain_budget", number_field(&GpuConfig::governor_drain_budget, "drain-watchdog cycle budget (>= estimation_interval)")},
      {"governor_max_delta", number_field(&GpuConfig::governor_max_delta, "max SMs reassigned per epoch")},
      {"governor_starvation_window", number_field(&GpuConfig::governor_starvation_window, "epochs at the floor before the breaker trips")},
      {"governor_thrash_window", number_field(&GpuConfig::governor_thrash_window, "flap-detection / freeze window, epochs")},
      {"governor_breaker_trips", number_field(&GpuConfig::governor_breaker_trips, "trips before falling back to the even split")},
      {"governor_jump_bound", number_field(&GpuConfig::governor_jump_bound, "max epoch-to-epoch estimate ratio")},
      {"governor_force_preempt", bool_field(&GpuConfig::governor_force_preempt, "cancel stalled drains instead of raising")},
  };
  return table;
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

void write_config(std::ostream& os, const GpuConfig& cfg) {
  os << "# gpusim configuration (paper Table II defaults)\n";
  for (const auto& [key, field] : field_table()) {
    os << key << " = " << field.get(cfg) << "  # " << field.comment << '\n';
  }
}

GpuConfig read_config(std::istream& is, GpuConfig cfg) {
  std::string line;
  int line_no = 0;
  // Line each key was last set on, so a validate() reject can point at the
  // offending config line rather than just the field.
  std::map<std::string, int> set_lines;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config line " + std::to_string(line_no) +
                                  ": expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto it = field_table().find(key);
    if (it == field_table().end()) {
      throw std::invalid_argument("config line " + std::to_string(line_no) +
                                  ": unknown key '" + key + "'");
    }
    try {
      it->second.set(cfg, value);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("config line " + std::to_string(line_no) +
                                  ": key '" + key + "': " + e.what());
    }
    set_lines[key] = line_no;
  }
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    // Attribute the rejection to the config line that set the offending
    // field, when the validation message names a known key.
    const std::string msg = e.what();
    for (const auto& [key, at_line] : set_lines) {
      if (msg.find(key) != std::string::npos) {
        throw std::invalid_argument("config line " + std::to_string(at_line) +
                                    ": " + msg);
      }
    }
    throw;
  }
  return cfg;
}

GpuConfig load_config(const std::string& path, GpuConfig base) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec)) {
    // Opening a directory "succeeds" on POSIX but every read fails, which
    // would silently parse as an empty config; reject it explicitly.
    throw std::runtime_error("cannot open config file: " + path +
                             " (not a regular file)");
  }
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open config file: " + path);
  return read_config(file, std::move(base));
}

void save_config(const std::string& path, const GpuConfig& cfg) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write config file: " + path);
  write_config(file, cfg);
}

}  // namespace gpusim
