// Baseline GPU configuration (paper Table II, ~NVIDIA GeForce GTX 480).
//
// All latencies are expressed in SM core cycles.  The paper runs the SMs at
// 1400 MHz and DRAM at 924 MHz; rather than simulate two clock domains we
// scale DRAM timing parameters (given in DRAM cycles) into SM cycles with the
// fixed ratio 1400/924 ~= 1.515.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

struct GpuConfig {
  // ---- SMs (Table II: 1400MHz, 16 SMs, max 48 warps / 1536 threads) ----
  int num_sms = 16;
  int max_warps_per_sm = 48;
  int warp_size = 32;
  int max_blocks_per_sm = 8;

  // ---- Caches (16KB 4-way L1, 768KB L2 over 6 partitions, 128B lines) ----
  int line_bytes = 128;
  int l1_size_bytes = 16 * 1024;
  int l1_assoc = 4;
  Cycle l1_hit_latency = 30;  // includes load pipeline / register writeback
  int l2_partition_bytes = 128 * 1024;  // 768KB total / 6 partitions
  int l2_assoc = 8;
  Cycle l2_hit_latency = 130;  // NoC-to-data round trip inside the partition
  int l2_mshr_entries = 128;      // per partition
  int l1_mshr_entries = 32;       // per SM
  int atd_sampled_sets = 8;       // paper Section 6: 8 cache sets sampled

  // ---- Interconnect (1 crossbar/direction, Local-RR) ----
  Cycle noc_latency = 40;         // one-way traversal latency
  int noc_accepts_per_cycle = 1;  // packets a port sinks per cycle/direction
  int noc_queue_depth = 8;        // per input/output port

  // ---- Memory partitions (FR-FCFS, 16 banks/MC, 924MHz, tRP=tRCD=12) ----
  int num_partitions = 6;
  int banks_per_mc = 16;
  double dram_clock_ratio = 1400.0 / 924.0;  // SM cycles per DRAM cycle
  int t_rp_dram = 12;    // precharge, DRAM cycles (Table II)
  int t_rcd_dram = 12;   // row activate, DRAM cycles (Table II)
  int t_cl_dram = 12;    // column access latency, DRAM cycles
  int t_burst_dram = 4;  // data-bus cycles per 128B line (GDDR5 burst)
  int t_bus_gap_dram = 1;  // bus turnaround/CCD gap between bursts
  /// Extra data-bus bubble charged when the transferred line comes from a
  /// freshly activated row (rank/bank-group switch, tRTR/tCCD_L-style
  /// penalties).  This is what makes *attained* bandwidth depend on an
  /// application's row locality: irregular kernels saturate DRAM at a far
  /// lower useful utilisation than streaming kernels, as in Table III.
  int t_miss_bubble_dram = 5;
  int dram_queue_capacity = 64;  // shared FR-FCFS queue entries per MC
  u64 row_bytes = 2048;  // DRAM row (page) size per bank
  /// Partition response-queue depth (drained 1/cycle by the response
  /// crossbar).  A full queue back-pressures the L2 hit path and defers
  /// DRAM-fill fan-out instead of overflowing.
  int partition_resp_queue_depth = 1024;
  /// Fill-path latency added to a DRAM completion before its response
  /// leaves the partition (L2 fill + return pipeline).  Together with the
  /// NoC and DRAM timings this puts the unloaded global-memory latency
  /// near the ~400 SM cycles measured on Fermi-class GPUs.
  Cycle l2_miss_extra_latency = 150;

  // ---- Modeled recovery (SM-side MSHR retry) ----
  /// When enabled, an SM re-issues a pending L1-MSHR miss whose response has
  /// not arrived within `mshr_retry_timeout` cycles, doubling the timeout on
  /// each reissue (exponential backoff).  After `mshr_retry_max` reissues the
  /// SM raises SimError(kRecoveryExhausted) instead of hanging silently.
  /// Off by default: a lost packet then strands the warp and the watchdog /
  /// conservation auditor report it, exactly as before.
  bool mshr_retry_enabled = false;
  Cycle mshr_retry_timeout = 50'000;
  int mshr_retry_max = 4;

  // ---- Flight recorder (black-box event ring) ----
  /// Capacity of the always-on flight-recorder event ring (block
  /// dispatches, migrations, MSHR reissues, fault firings, crossbar
  /// stalls, queue high-water marks).  The ring is serialized through the
  /// SimState walk, so its size is part of the snapshot fingerprint.
  /// 0 disables recording entirely.
  int flight_recorder_events = 1024;

  // ---- DASE model parameters ----
  Cycle estimation_interval = 50'000;  // paper Section 4.4: fixed 50K cycles
  double requestmax_factor = 0.6;      // paper Eq. 20 empirical default
  double alpha_clamp_threshold = 0.7;  // Section 4.1: alpha->1 when large
  bool alpha_clamp_enabled = true;

  // ---- Policy governor (guarded scheduling; DESIGN.md §14) ----
  /// Cycles an SM-drain migration may stay pending before the governor's
  /// drain watchdog intervenes.  Must cover at least one estimation
  /// interval: a budget shorter than the epoch would let the watchdog fire
  /// between the decision and the first chance to observe convergence.
  /// Drains wait for active blocks to run to completion, and a
  /// memory-bound block legitimately takes >200k cycles, so the default
  /// is deliberately generous (matching the progress watchdog's default);
  /// chaos campaigns and stall gates tighten it per-job.
  Cycle governor_drain_budget = 1'000'000;
  /// Most SMs a single epoch's repartition may reassign; larger proposals
  /// are clamped back toward the current partition.
  int governor_max_delta = 8;
  /// Consecutive epochs an app may sit pinned at the min-SM floor before
  /// the starvation breaker trips and freezes the partition.
  int governor_starvation_window = 6;
  /// Epoch window for flap detection (A->B->A) and the freeze length after
  /// a breaker trip.
  int governor_thrash_window = 8;
  /// Breaker trips after which the governor abandons the policy and falls
  /// back to the even split permanently.
  int governor_breaker_trips = 3;
  /// Largest tolerated epoch-to-epoch slowdown-estimate ratio; a jump
  /// beyond it marks the epoch low-confidence and holds the last-good
  /// partition.
  double governor_jump_bound = 8.0;
  /// When true, a stalled drain is forcibly cancelled (the GPU keeps the
  /// current partition) instead of raising kMigrationStalled.
  bool governor_force_preempt = false;

  // ---- Derived quantities ----
  Cycle t_rp() const { return dram_to_sm(t_rp_dram); }
  Cycle t_rcd() const { return dram_to_sm(t_rcd_dram); }
  Cycle t_cl() const { return dram_to_sm(t_cl_dram); }
  Cycle t_burst() const { return dram_to_sm(t_burst_dram); }
  Cycle t_bus_gap() const { return dram_to_sm(t_bus_gap_dram); }
  Cycle t_miss_bubble() const { return dram_to_sm(t_miss_bubble_dram); }
  Cycle dram_to_sm(int dram_cycles) const {
    return static_cast<Cycle>(std::llround(dram_cycles * dram_clock_ratio));
  }

  int l1_num_sets() const { return l1_size_bytes / (line_bytes * l1_assoc); }
  int l2_num_sets() const {
    return l2_partition_bytes / (line_bytes * l2_assoc);
  }
  u64 lines_per_row() const { return row_bytes / line_bytes; }

  /// Cycles of data-bus occupancy needed to move one cache line: the
  /// paper's TimePerReq in Eq. 20 ("constant depend on the last level cache
  /// line size and DRAM burst length").
  Cycle time_per_request() const { return t_burst(); }

  /// Validates internal consistency; throws std::invalid_argument on error.
  void validate() const;

  /// Feeds every configuration field into a SimState sink — used for the
  /// snapshot-file fingerprint that rejects restoring a checkpoint into a
  /// differently configured simulator.
  template <typename Sink>
  void write_fingerprint(Sink& s) const {
    s.put_i32(num_sms);
    s.put_i32(max_warps_per_sm);
    s.put_i32(warp_size);
    s.put_i32(max_blocks_per_sm);
    s.put_i32(line_bytes);
    s.put_i32(l1_size_bytes);
    s.put_i32(l1_assoc);
    s.put_u64(l1_hit_latency);
    s.put_i32(l2_partition_bytes);
    s.put_i32(l2_assoc);
    s.put_u64(l2_hit_latency);
    s.put_i32(l2_mshr_entries);
    s.put_i32(l1_mshr_entries);
    s.put_i32(atd_sampled_sets);
    s.put_u64(noc_latency);
    s.put_i32(noc_accepts_per_cycle);
    s.put_i32(noc_queue_depth);
    s.put_i32(num_partitions);
    s.put_i32(banks_per_mc);
    s.put_double(dram_clock_ratio);
    s.put_i32(t_rp_dram);
    s.put_i32(t_rcd_dram);
    s.put_i32(t_cl_dram);
    s.put_i32(t_burst_dram);
    s.put_i32(t_bus_gap_dram);
    s.put_i32(t_miss_bubble_dram);
    s.put_i32(dram_queue_capacity);
    s.put_u64(row_bytes);
    s.put_i32(partition_resp_queue_depth);
    s.put_u64(l2_miss_extra_latency);
    s.put_u64(estimation_interval);
    s.put_double(requestmax_factor);
    s.put_double(alpha_clamp_threshold);
    s.put_bool(alpha_clamp_enabled);
    s.put_bool(mshr_retry_enabled);
    s.put_u64(mshr_retry_timeout);
    s.put_i32(mshr_retry_max);
    s.put_i32(flight_recorder_events);
    s.put_u64(governor_drain_budget);
    s.put_i32(governor_max_delta);
    s.put_i32(governor_starvation_window);
    s.put_i32(governor_thrash_window);
    s.put_i32(governor_breaker_trips);
    s.put_double(governor_jump_bound);
    s.put_bool(governor_force_preempt);
  }
};

}  // namespace gpusim
