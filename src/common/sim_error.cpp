#include "common/sim_error.hpp"

namespace gpusim {

const char* to_string(SimErrorKind kind) {
  switch (kind) {
    case SimErrorKind::kInvariant: return "invariant";
    case SimErrorKind::kQueueOverflow: return "queue-overflow";
    case SimErrorKind::kWatchdogStall: return "watchdog-stall";
    case SimErrorKind::kConservation: return "conservation";
    case SimErrorKind::kConfig: return "config";
    case SimErrorKind::kHarness: return "harness";
    case SimErrorKind::kFault: return "fault";
    case SimErrorKind::kSnapshot: return "snapshot";
    case SimErrorKind::kRecoveryExhausted: return "recovery-exhausted";
    case SimErrorKind::kDeadlineExceeded: return "deadline-exceeded";
    case SimErrorKind::kBudgetExceeded: return "budget-exceeded";
    case SimErrorKind::kQuarantined: return "quarantined";
    case SimErrorKind::kInterrupted: return "interrupted";
    case SimErrorKind::kMigrationStalled: return "migration-stalled";
  }
  return "unknown";
}

SimError::SimError(SimErrorKind kind, std::string component,
                   std::string message)
    : std::runtime_error(""),
      kind_(kind),
      component_(std::move(component)),
      message_(std::move(message)) {
  rebuild();
}

SimError& SimError::cycle(Cycle c) {
  has_cycle_ = true;
  cycle_ = c;
  rebuild();
  return *this;
}

SimError& SimError::app(AppId a) {
  app_ = a;
  rebuild();
  return *this;
}

SimError& SimError::at(const char* file, int line) {
  std::ostringstream ss;
  ss << file << ':' << line;
  location_ = ss.str();
  rebuild();
  return *this;
}

void SimError::rebuild() {
  std::ostringstream ss;
  ss << "SimError[" << to_string(kind_) << "] " << component_ << ": "
     << message_;
  if (has_cycle_) ss << "\n  cycle: " << cycle_;
  if (app_ != kInvalidApp) ss << "\n  app: " << app_;
  if (!location_.empty()) ss << "\n  at: " << location_;
  for (const auto& [key, value] : details_) {
    // Multi-line values (pipeline-state dumps) get their own block.
    if (value.find('\n') != std::string::npos) {
      ss << "\n  " << key << ":\n" << value;
    } else {
      ss << "\n  " << key << ": " << value;
    }
  }
  what_ = ss.str();
}

}  // namespace gpusim
