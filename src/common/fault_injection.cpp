#include "common/fault_injection.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/sim_error.hpp"

namespace gpusim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropResponse: return "drop-resp";
    case FaultKind::kDropRequest: return "drop-req";
    case FaultKind::kStallWindow: return "stall";
    case FaultKind::kBitFlip: return "flip";
    case FaultKind::kMisroute: return "misroute";
    case FaultKind::kNackResponse: return "nack";
  }
  return "unknown";
}

namespace {

std::string fmt_prob(double p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", p);
  return buf;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  SIM_FAIL(SimError(SimErrorKind::kConfig, "common.fault_injection",
                    "malformed fault-schedule spec")
               .detail("spec", spec)
               .detail("problem", why));
}

u64 parse_u64_or(const std::string& spec, const std::string& v) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    bad_spec(spec, "expected unsigned integer, got '" + v + "'");
  }
  return static_cast<u64>(n);
}

double parse_double_or(const std::string& spec, const std::string& v) {
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    bad_spec(spec, "expected number, got '" + v + "'");
  }
  return d;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

std::string FaultSchedule::to_string() const {
  std::ostringstream ss;
  for (const FaultEvent& e : events) {
    ss << gpusim::to_string(e.kind) << ':';
    switch (e.kind) {
      case FaultKind::kDropResponse:
        if (e.prob > 0.0) {
          if (e.nth != 0) ss << "nth=" << e.nth << ',';
          ss << "prob=" << fmt_prob(e.prob);
        } else {
          ss << "nth=" << e.nth;
        }
        break;
      case FaultKind::kDropRequest:
        ss << "nth=" << e.nth;
        break;
      case FaultKind::kStallWindow:
        ss << "part=" << e.partition << ",from=" << e.from;
        if (e.until != 0) ss << ",until=" << e.until;
        break;
      case FaultKind::kBitFlip:
        ss << "nth=" << e.nth << ",bit=" << e.bit;
        break;
      case FaultKind::kMisroute:
        ss << "from=" << e.from;
        break;
      case FaultKind::kNackResponse:
        ss << "nth=" << e.nth << ",delay=" << e.delay;
        break;
    }
    ss << ';';
  }
  ss << "seed=" << seed;
  return ss.str();
}

FaultSchedule FaultSchedule::parse(const std::string& spec) {
  FaultSchedule sched;
  if (spec.empty()) return sched;
  for (const std::string& token : split(spec, ';')) {
    if (token.empty()) continue;
    const auto colon = token.find(':');
    if (colon == std::string::npos) {
      // Bare `seed=N` token.
      const auto eq = token.find('=');
      if (eq == std::string::npos || token.substr(0, eq) != "seed") {
        bad_spec(spec, "expected 'kind:key=value,...' or 'seed=N', got '" +
                           token + "'");
      }
      sched.seed = parse_u64_or(spec, token.substr(eq + 1));
      continue;
    }
    const std::string kind_name = token.substr(0, colon);
    FaultEvent e;
    if (kind_name == "drop-resp") {
      e.kind = FaultKind::kDropResponse;
    } else if (kind_name == "drop-req") {
      e.kind = FaultKind::kDropRequest;
    } else if (kind_name == "stall") {
      e.kind = FaultKind::kStallWindow;
    } else if (kind_name == "flip") {
      e.kind = FaultKind::kBitFlip;
    } else if (kind_name == "misroute") {
      e.kind = FaultKind::kMisroute;
    } else if (kind_name == "nack") {
      e.kind = FaultKind::kNackResponse;
    } else {
      bad_spec(spec, "unknown fault kind '" + kind_name + "'");
    }
    for (const std::string& kv : split(token.substr(colon + 1), ',')) {
      if (kv.empty()) continue;
      const auto eq = kv.find('=');
      if (eq == std::string::npos) {
        bad_spec(spec, "expected key=value, got '" + kv + "'");
      }
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "nth") {
        e.nth = parse_u64_or(spec, value);
      } else if (key == "prob") {
        e.prob = parse_double_or(spec, value);
        if (e.prob < 0.0 || e.prob > 1.0) {
          bad_spec(spec, "prob must be in [0, 1]");
        }
      } else if (key == "part") {
        e.partition = static_cast<PartitionId>(parse_u64_or(spec, value));
      } else if (key == "from") {
        e.from = parse_u64_or(spec, value);
      } else if (key == "until") {
        e.until = parse_u64_or(spec, value);
      } else if (key == "bit") {
        e.bit = static_cast<int>(parse_u64_or(spec, value)) & 63;
      } else if (key == "delay") {
        e.delay = std::max<Cycle>(1, parse_u64_or(spec, value));
      } else {
        bad_spec(spec, "unknown key '" + key + "' for kind '" + kind_name +
                           "'");
      }
    }
    if (e.kind == FaultKind::kStallWindow && e.until != 0 &&
        e.until <= e.from) {
      bad_spec(spec, "stall window must have until > from");
    }
    sched.events.push_back(e);
  }
  return sched;
}

namespace {

// One entry per GpuConfig::validate() rule.  Growing validate() without a
// matching corruption here leaves the new rule untested — the SimGuard
// config test iterates this whole table and asserts every mutation is
// rejected.
struct ConfigCorruption {
  const char* name;
  void (*apply)(GpuConfig&);
};

const ConfigCorruption kCorruptions[] = {
    {"num_sms=0", [](GpuConfig& c) { c.num_sms = 0; }},
    {"max_warps_per_sm=0", [](GpuConfig& c) { c.max_warps_per_sm = 0; }},
    {"num_partitions=0", [](GpuConfig& c) { c.num_partitions = 0; }},
    {"banks_per_mc=0", [](GpuConfig& c) { c.banks_per_mc = 0; }},
    // Bank bitmasks are 32 bits wide.
    {"banks_per_mc=64", [](GpuConfig& c) { c.banks_per_mc = 64; }},
    // Not a power of two.
    {"line_bytes=100", [](GpuConfig& c) { c.line_bytes = 100; }},
    // 10000 / (128 * 4) does not divide into whole sets.
    {"l1_size_bytes=10000", [](GpuConfig& c) { c.l1_size_bytes = 10000; }},
    // 100000 / (128 * 8) does not divide into whole sets.
    {"l2_partition_bytes=100000",
     [](GpuConfig& c) { c.l2_partition_bytes = 100000; }},
    // Not a multiple of line_bytes.
    {"row_bytes=2000", [](GpuConfig& c) { c.row_bytes = 2000; }},
    {"atd_sampled_sets=0", [](GpuConfig& c) { c.atd_sampled_sets = 0; }},
    // > l2_num_sets().
    {"atd_sampled_sets=1<<20",
     [](GpuConfig& c) { c.atd_sampled_sets = 1 << 20; }},
    {"estimation_interval=0", [](GpuConfig& c) { c.estimation_interval = 0; }},
    {"requestmax_factor=-0.5",
     [](GpuConfig& c) { c.requestmax_factor = -0.5; }},
    {"requestmax_factor=1.5", [](GpuConfig& c) { c.requestmax_factor = 1.5; }},
    {"dram_clock_ratio=0", [](GpuConfig& c) { c.dram_clock_ratio = 0.0; }},
    {"dram_queue_capacity=0", [](GpuConfig& c) { c.dram_queue_capacity = 0; }},
    {"noc_queue_depth=0", [](GpuConfig& c) { c.noc_queue_depth = 0; }},
    {"partition_resp_queue_depth=-1",
     [](GpuConfig& c) { c.partition_resp_queue_depth = -1; }},
    {"mshr_retry_timeout=0", [](GpuConfig& c) { c.mshr_retry_timeout = 0; }},
    {"mshr_retry_max=0", [](GpuConfig& c) { c.mshr_retry_max = 0; }},
    {"flight_recorder_events=-1",
     [](GpuConfig& c) { c.flight_recorder_events = -1; }},
    {"flight_recorder_events=1<<21",
     [](GpuConfig& c) { c.flight_recorder_events = 1 << 21; }},
    // Shorter than one estimation epoch.
    {"governor_drain_budget<estimation_interval",
     [](GpuConfig& c) { c.governor_drain_budget = c.estimation_interval - 1; }},
    {"governor_max_delta=0", [](GpuConfig& c) { c.governor_max_delta = 0; }},
    {"governor_starvation_window=0",
     [](GpuConfig& c) { c.governor_starvation_window = 0; }},
    // Flap detection needs at least A->B->A.
    {"governor_thrash_window=1",
     [](GpuConfig& c) { c.governor_thrash_window = 1; }},
    {"governor_breaker_trips=0",
     [](GpuConfig& c) { c.governor_breaker_trips = 0; }},
    {"governor_jump_bound=1.0",
     [](GpuConfig& c) { c.governor_jump_bound = 1.0; }},
};

}  // namespace

std::size_t corruption_rule_count() {
  return sizeof(kCorruptions) / sizeof(kCorruptions[0]);
}

const char* corruption_rule_name(std::size_t index) {
  return kCorruptions[index % corruption_rule_count()].name;
}

void corrupt_config(GpuConfig& cfg, u64 seed) {
  kCorruptions[seed % corruption_rule_count()].apply(cfg);
}

}  // namespace gpusim
