// SimGuard typed-error layer.
//
// Every internal invariant of the simulator used to be a debug-only
// `assert`; in an optimized build those either vanish (NDEBUG) or abort the
// whole process with no context.  Long multiprogrammed sweeps (the paper's
// 105-pair / 5M-cycle runs) need the opposite: always-on checks that raise a
// structured, catchable diagnostic carrying the simulation cycle, the
// application, the component and any queue occupancies involved, so a sweep
// driver can log the failure, skip or retry the pair, and keep going.
//
// Usage:
//   SIM_CHECK(pushed, SimError(SimErrorKind::kQueueOverflow, "mem.partition",
//                              "response queue overflow")
//                         .cycle(now)
//                         .app(req.app)
//                         .detail("occupancy", resp_queue_.size()));
//
// The error expression after the condition is only evaluated on failure, so
// a passing check costs one predictable branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace gpusim {

enum class SimErrorKind {
  kInvariant,      ///< internal consistency violation (ex-assert)
  kQueueOverflow,  ///< a bounded hardware queue overflowed
  kWatchdogStall,  ///< progress watchdog: deadlock / livelock detected
  kConservation,   ///< request-conservation audit failed (leak / duplicate)
  kConfig,         ///< invalid configuration reached a component
  kHarness,        ///< experiment-harness misuse (missing model, bad split)
  kFault,          ///< raised by an injected fault on purpose
  kSnapshot,       ///< SimState snapshot format / integrity / mismatch error
  kRecoveryExhausted,  ///< modeled retry path gave up (capped reissues spent)
  kDeadlineExceeded,   ///< wall-clock deadline passed mid-simulation
  kBudgetExceeded,     ///< cycle or memory-traffic budget exhausted
  kQuarantined,        ///< circuit breaker: config exceeded its failure limit
  kInterrupted,        ///< cooperative cancellation (SIGINT/SIGTERM drain)
  kMigrationStalled,   ///< SM-drain migration exceeded the governor's budget
};

const char* to_string(SimErrorKind kind);

/// Structured simulator error.  Derives from std::runtime_error so existing
/// catch sites keep working; what() renders kind, component, cycle, app and
/// every attached detail on one line each.
class SimError : public std::runtime_error {
 public:
  SimError(SimErrorKind kind, std::string component, std::string message);

  // Fluent context attachment (each returns *this so a throw site can chain
  // and throw in one expression).
  SimError& cycle(Cycle c);
  SimError& app(AppId a);
  SimError& at(const char* file, int line);
  template <typename V>
  SimError& detail(const std::string& key, const V& value) {
    std::ostringstream ss;
    ss << value;
    details_.emplace_back(key, ss.str());
    rebuild();
    return *this;
  }

  SimErrorKind kind() const { return kind_; }
  const std::string& component() const { return component_; }
  const std::string& message() const { return message_; }
  bool has_cycle() const { return has_cycle_; }
  Cycle error_cycle() const { return cycle_; }
  AppId error_app() const { return app_; }
  const std::vector<std::pair<std::string, std::string>>& details() const {
    return details_;
  }

  const char* what() const noexcept override { return what_.c_str(); }

 private:
  void rebuild();

  SimErrorKind kind_;
  std::string component_;
  std::string message_;
  bool has_cycle_ = false;
  Cycle cycle_ = 0;
  AppId app_ = kInvalidApp;
  std::string location_;
  std::vector<std::pair<std::string, std::string>> details_;
  std::string what_;
};

/// Always-on invariant check: throws the given SimError (annotated with the
/// failing source location and the stringified condition) when `cond` is
/// false.  Unlike assert(), this survives NDEBUG and is catchable.
#define SIM_CHECK(cond, err)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      throw (err).detail("failed_check", #cond).at(__FILE__, __LINE__); \
    }                                                                   \
  } while (0)

/// Unconditional structured failure.
#define SIM_FAIL(err) throw (err).at(__FILE__, __LINE__)

/// Shorthand for plain internal invariants where only a component tag and a
/// message are worth spelling out.
#define SIM_INVARIANT(cond, component, msg) \
  SIM_CHECK(cond, ::gpusim::SimError(::gpusim::SimErrorKind::kInvariant, \
                                     (component), (msg)))

}  // namespace gpusim
