// Fixed-capacity FIFOs.
//
// BoundedQueue is the single-threaded queue used for all hardware queues in
// the simulator: hardware queues have finite depth; back-pressure from a
// full queue is part of the interference behaviour being modelled, so
// overflow must be an explicit, checkable condition rather than silent
// growth.
//
// ConcurrentBoundedQueue is the thread-safe, closable variant used by the
// harness (the JobManager's manifest-writer channel): blocking push gives
// producers real backpressure, close() wakes every blocked thread, and pop
// drains the remaining items after close so no accepted item is ever lost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/sim_error.hpp"
#include "common/simstate.hpp"

namespace gpusim {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    SIM_CHECK(capacity_ > 0,
              SimError(SimErrorKind::kConfig, "common.bounded_queue",
                       "queue capacity must be positive"));
  }

  bool full() const { return items_.size() >= capacity_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Attempts to enqueue; returns false (and leaves the item unmoved-from
  /// semantics aside) when the queue is full.
  bool try_push(T item) {
    if (full()) return false;
    items_.push_back(std::move(item));
    return true;
  }

  T& front() {
    SIM_INVARIANT(!empty(), "common.bounded_queue", "front() on empty queue");
    return items_.front();
  }
  const T& front() const {
    SIM_INVARIANT(!empty(), "common.bounded_queue", "front() on empty queue");
    return items_.front();
  }

  T pop() {
    SIM_INVARIANT(!empty(), "common.bounded_queue", "pop() on empty queue");
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Iteration support (needed by FR-FCFS scans over bank queues).
  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  /// Removes and returns the element at iterator position (FR-FCFS picks
  /// row-buffer hits from the middle of the queue).
  T extract(typename std::deque<T>::iterator it) {
    T item = std::move(*it);
    items_.erase(it);
    return item;
  }

  void clear() { items_.clear(); }

  // SimState: capacity is construction-time configuration, so only the
  // occupancy is serialized.  Elements round-trip through ADL free functions
  // write_item(Sink&, const T&) / read_item(StateReader&, T&).
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_u64(items_.size());
    for (const T& item : items_) write_item(s, item);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    items_.clear();
    const u64 n = r.get_count(capacity_, "bounded_queue items");
    for (u64 i = 0; i < n; ++i) {
      T item{};
      read_item(r, item);
      items_.push_back(std::move(item));
    }
  }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
};

/// Thread-safe bounded FIFO with close semantics (multi-producer,
/// multi-consumer).  Lifecycle: producers push (blocking while full — that
/// is the backpressure), consumers pop (blocking while empty and open);
/// close() makes every pending and future push fail, wakes all blocked
/// threads, and lets pop drain whatever was accepted before returning
/// nullopt.  close() is idempotent.
template <typename T>
class ConcurrentBoundedQueue {
 public:
  explicit ConcurrentBoundedQueue(std::size_t capacity)
      : capacity_(capacity) {
    SIM_CHECK(capacity_ > 0,
              SimError(SimErrorKind::kConfig, "common.bounded_queue",
                       "concurrent queue capacity must be positive"));
  }

  /// Blocks while the queue is full and open.  Returns false (item
  /// discarded) when the queue is or becomes closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open.  Returns nullopt only once
  /// the queue is closed AND drained — items accepted before close() are
  /// always delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue and wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::size_t capacity_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace gpusim
