// Lightweight statistics helpers: per-application counters with interval
// snapshot semantics, running means, and histograms.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <string>
#include <vector>

#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

/// One u64 counter per application slot, with "value since last snapshot"
/// interval semantics used by the 50K-cycle estimation intervals.
class PerAppCounter {
 public:
  void add(AppId app, u64 delta = 1) {
    assert(app >= 0 && app < kMaxApps);
    total_[app] += delta;
  }
  u64 total(AppId app) const { return total_[app]; }
  u64 interval(AppId app) const { return total_[app] - snapshot_[app]; }
  u64 grand_total() const {
    u64 sum = 0;
    for (u64 v : total_) sum += v;
    return sum;
  }
  u64 grand_interval() const {
    u64 sum = 0;
    for (int a = 0; a < kMaxApps; ++a) sum += interval(a);
    return sum;
  }
  void snapshot() { snapshot_ = total_; }
  void reset() {
    total_.fill(0);
    snapshot_.fill(0);
  }

  template <typename Sink>
  void write_state(Sink& s) const {
    for (u64 v : total_) s.put_u64(v);
    for (u64 v : snapshot_) s.put_u64(v);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    for (auto& v : total_) v = r.get_u64();
    for (auto& v : snapshot_) v = r.get_u64();
  }

 private:
  std::array<u64, kMaxApps> total_{};
  std::array<u64, kMaxApps> snapshot_{};
};

/// Streaming mean over double samples.
class RunningMean {
 public:
  void add(double sample) {
    ++count_;
    sum_ += sample;
  }
  u64 count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_u64(count_);
    s.put_double(sum_);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    count_ = r.get_u64();
    sum_ = r.get_double();
  }

 private:
  u64 count_ = 0;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [0, bucket_width * num_buckets), with an
/// overflow bucket; used for the Fig. 7 error-distribution plot.
class Histogram {
 public:
  Histogram(double bucket_width, int num_buckets)
      : bucket_width_(bucket_width), counts_(num_buckets + 1, 0) {
    assert(bucket_width > 0.0 && num_buckets > 0);
  }

  void add(double value) {
    assert(value >= 0.0);
    auto bucket = static_cast<std::size_t>(value / bucket_width_);
    bucket = std::min(bucket, counts_.size() - 1);
    ++counts_[bucket];
    ++total_;
  }

  int num_buckets() const { return static_cast<int>(counts_.size()) - 1; }
  u64 count(int bucket) const { return counts_[bucket]; }
  u64 overflow() const { return counts_.back(); }
  u64 total() const { return total_; }
  double fraction(int bucket) const {
    return total_ == 0 ? 0.0 : static_cast<double>(counts_[bucket]) / total_;
  }
  /// Fraction of samples strictly below `value` (value must be a bucket edge).
  double fraction_below(double value) const {
    if (total_ == 0) return 0.0;
    const int edge = static_cast<int>(std::llround(value / bucket_width_));
    u64 below = 0;
    for (int b = 0; b < std::min(edge, num_buckets()); ++b) below += counts_[b];
    return static_cast<double>(below) / total_;
  }

 private:
  double bucket_width_;
  std::vector<u64> counts_;
  u64 total_ = 0;
};

}  // namespace gpusim
