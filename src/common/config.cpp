#include "common/config.hpp"

namespace gpusim {

namespace {
bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

void GpuConfig::validate() const {
  auto fail = [](const std::string& msg) {
    throw std::invalid_argument("GpuConfig: " + msg);
  };
  if (num_sms <= 0) fail("num_sms must be positive");
  if (max_warps_per_sm <= 0) fail("max_warps_per_sm must be positive");
  if (num_partitions <= 0) fail("num_partitions must be positive");
  if (banks_per_mc <= 0) fail("banks_per_mc must be positive");
  if (banks_per_mc > 32)
    fail("banks_per_mc must be <= 32 (bank bitmasks are 32 bits wide)");
  if (!is_pow2(static_cast<u64>(line_bytes))) fail("line_bytes must be pow2");
  if (l1_size_bytes % (line_bytes * l1_assoc) != 0)
    fail("L1 size not divisible into sets");
  if (l2_partition_bytes % (line_bytes * l2_assoc) != 0)
    fail("L2 partition size not divisible into sets");
  if (row_bytes % static_cast<u64>(line_bytes) != 0)
    fail("row_bytes must be a multiple of line_bytes");
  if (atd_sampled_sets <= 0 || atd_sampled_sets > l2_num_sets())
    fail("atd_sampled_sets out of range");
  if (estimation_interval == 0) fail("estimation_interval must be positive");
  if (requestmax_factor <= 0.0 || requestmax_factor > 1.0)
    fail("requestmax_factor must be in (0, 1]");
  if (dram_clock_ratio <= 0.0) fail("dram_clock_ratio must be positive");
  if (dram_queue_capacity <= 0) fail("dram_queue_capacity must be positive");
  if (noc_queue_depth <= 0) fail("noc_queue_depth must be positive");
  if (partition_resp_queue_depth <= 0)
    fail("partition_resp_queue_depth must be positive");
  if (mshr_retry_timeout == 0) fail("mshr_retry_timeout must be positive");
  if (mshr_retry_max <= 0) fail("mshr_retry_max must be positive");
  if (flight_recorder_events < 0 || flight_recorder_events > (1 << 20))
    fail("flight_recorder_events must be in [0, 1048576]");
  // Governor knobs cross-validate against the estimation epoch: a drain
  // budget shorter than one epoch would fire between the repartition
  // decision and the first boundary that could observe convergence.
  if (governor_drain_budget < estimation_interval)
    fail("governor_drain_budget must be at least estimation_interval "
         "(the drain watchdog must cover one full epoch)");
  if (governor_max_delta <= 0)
    fail("governor_max_delta must be positive");
  if (governor_starvation_window <= 0)
    fail("governor_starvation_window must be positive");
  if (governor_thrash_window < 2)
    fail("governor_thrash_window must be at least 2 (flap detection "
         "needs A->B->A)");
  if (governor_breaker_trips <= 0)
    fail("governor_breaker_trips must be positive");
  if (governor_jump_bound <= 1.0)
    fail("governor_jump_bound must be greater than 1.0");
}

}  // namespace gpusim
