// SimGuard fault injection.
//
// The watchdog and the request-conservation auditor only earn their keep if
// we can prove they fire.  A FaultPlan describes a deterministic fault —
// drop the Nth memory response, stall a memory partition from a given
// cycle, drop the Nth request at a partition's input port, or corrupt a
// configuration field — and a FaultInjector evaluates it at the hook points
// the Gpu and MemoryPartition expose.  Probabilistic variants draw from the
// simulator's own seeded Rng (rng.hpp) so every injected failure is
// bit-reproducible.
//
// Injection simulates a *bug*, so the conservation taps are deliberately
// not told about dropped packets: the auditor must discover the imbalance
// on its own, exactly as it would for a real leak.
#pragma once

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace gpusim {

struct FaultPlan {
  /// Drop the Nth (1-based) response packet at final delivery to an SM.
  /// 0 disables.  The waiting warp hangs forever — a response leak.
  u64 drop_response_nth = 0;
  /// Additionally drop each response with this probability (deterministic
  /// via `seed`).  Used for stress runs; 0 disables.
  double drop_response_prob = 0.0;

  /// Drop the Nth (1-based) request packet as a partition consumes its
  /// crossbar input queue.  0 disables.  A request leak.
  u64 drop_request_nth = 0;

  /// Freeze this memory partition (no L2, no DRAM progress) from
  /// `stall_from_cycle` onwards.  kInvalidPartition (-1) disables.  Models a
  /// hung port; the progress watchdog must catch the resulting deadlock.
  PartitionId stall_partition = -1;
  Cycle stall_from_cycle = 0;

  u64 seed = 1;

  bool any() const {
    return drop_response_nth != 0 || drop_response_prob > 0.0 ||
           drop_request_nth != 0 || stall_partition >= 0;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

  /// Hook: Gpu is about to deliver a matured response to an SM.
  /// Returns true when the packet must be silently discarded.
  bool should_drop_response() {
    ++responses_seen_;
    if (plan_.drop_response_nth != 0 &&
        responses_seen_ == plan_.drop_response_nth) {
      ++responses_dropped_;
      return true;
    }
    if (plan_.drop_response_prob > 0.0 &&
        rng_.next_bool(plan_.drop_response_prob)) {
      ++responses_dropped_;
      return true;
    }
    return false;
  }

  /// Hook: a partition is about to consume a request from its input queue.
  bool should_drop_request() {
    ++requests_seen_;
    if (plan_.drop_request_nth != 0 &&
        requests_seen_ == plan_.drop_request_nth) {
      ++requests_dropped_;
      return true;
    }
    return false;
  }

  /// Hook: Gpu asks whether partition `p` is frozen this cycle.
  bool partition_stalled(PartitionId p, Cycle now) const {
    return plan_.stall_partition == p && now >= plan_.stall_from_cycle;
  }

  u64 responses_dropped() const { return responses_dropped_; }
  u64 requests_dropped() const { return requests_dropped_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  u64 responses_seen_ = 0;
  u64 responses_dropped_ = 0;
  u64 requests_seen_ = 0;
  u64 requests_dropped_ = 0;
};

/// Deterministically corrupts one configuration field (seed selects which).
/// Every corruption must be caught by GpuConfig::validate(); the SimGuard
/// tests use this to prove the config layer rejects garbage before a
/// simulation can silently run with it.
inline void corrupt_config(GpuConfig& cfg, u64 seed) {
  Rng rng(seed);
  switch (rng.next_below(6)) {
    case 0: cfg.num_sms = 0; break;
    case 1: cfg.banks_per_mc = 64; break;        // bank bitmasks are 32-wide
    case 2: cfg.requestmax_factor = -0.5; break;
    case 3: cfg.line_bytes = 100; break;         // not a power of two
    case 4: cfg.partition_resp_queue_depth = -1; break;
    case 5: cfg.atd_sampled_sets = 1 << 20; break;  // > l2_num_sets()
  }
}

}  // namespace gpusim
