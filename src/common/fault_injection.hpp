// SimGuard fault injection: timed, typed, serializable fault schedules.
//
// The watchdog, the request-conservation auditor and the modeled recovery
// path only earn their keep if we can prove they fire.  A FaultSchedule is a
// deterministic timeline of typed fault events — drop the Nth response or
// request, freeze a partition over a cycle window (with recovery when the
// window closes), flip a bit in a DRAM fill address, misroute a NoC packet,
// or NACK a response so it is redelivered later — evaluated by a
// FaultInjector at the hook points the Gpu and MemoryPartition expose.
// Probabilistic variants draw from the simulator's own seeded Rng (rng.hpp)
// so every injected failure is bit-reproducible, and the injector's counters
// and RNG serialize through the SimState walk so a snapshot taken while an
// nth-event fault is armed replays the fault at the *same* event after a
// restore.
//
// Schedules round-trip through a compact spec string
// (`drop-resp:nth=200;stall:part=0,from=1000,until=5000;seed=7`) so a chaos
// campaign can emit a failing schedule as a CLI-replayable artifact.
//
// Injection simulates a *bug*, so the conservation taps are deliberately
// not told about dropped packets: the auditor must discover the imbalance
// on its own, exactly as it would for a real leak.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

enum class FaultKind : u8 {
  kDropResponse,  ///< drop the Nth response (or each with prob) at delivery
  kDropRequest,   ///< drop the Nth request at a partition's input port
  kStallWindow,   ///< freeze a partition for [from, until); until=0 = forever
  kBitFlip,       ///< XOR a bit into the Nth DRAM fill's line address
  kMisroute,      ///< from `from` onwards, rewrite one request's destination
  kNackResponse,  ///< Nth response is NACKed: redelivered `delay` cycles later
};

const char* to_string(FaultKind kind);

/// One entry on the fault timeline.  Which fields matter depends on `kind`;
/// the rest stay at their defaults and are ignored.
struct FaultEvent {
  FaultKind kind = FaultKind::kDropResponse;
  u64 nth = 0;       ///< 1-based event ordinal (responses / requests / fills)
  double prob = 0.0;  ///< kDropResponse only: per-response drop probability
  PartitionId partition = -1;  ///< kStallWindow target (-1 = none)
  Cycle from = 0;   ///< kStallWindow / kMisroute: first affected cycle
  Cycle until = 0;  ///< kStallWindow: first cycle after the window (0=forever)
  int bit = 0;      ///< kBitFlip: bit index XORed into the line address
  Cycle delay = 100;  ///< kNackResponse: redelivery delay (clamped to >= 1)
};

/// Deterministic timeline of fault events plus the RNG seed for any
/// probabilistic event.  Plain data: the schedule is configuration, not
/// state — only the FaultInjector's progress counters serialize.
struct FaultSchedule {
  std::vector<FaultEvent> events;
  u64 seed = 1;

  bool any() const { return !events.empty(); }

  // Fluent builders so call sites read like the old FaultPlan fields.
  FaultSchedule& drop_response_nth(u64 n) {
    FaultEvent e;
    e.kind = FaultKind::kDropResponse;
    e.nth = n;
    events.push_back(e);
    return *this;
  }
  FaultSchedule& drop_response_prob(double p) {
    FaultEvent e;
    e.kind = FaultKind::kDropResponse;
    e.prob = p;
    events.push_back(e);
    return *this;
  }
  FaultSchedule& drop_request_nth(u64 n) {
    FaultEvent e;
    e.kind = FaultKind::kDropRequest;
    e.nth = n;
    events.push_back(e);
    return *this;
  }
  FaultSchedule& stall_partition(PartitionId p, Cycle from, Cycle until = 0) {
    FaultEvent e;
    e.kind = FaultKind::kStallWindow;
    e.partition = p;
    e.from = from;
    e.until = until;
    events.push_back(e);
    return *this;
  }
  FaultSchedule& bit_flip(u64 nth, int bit) {
    FaultEvent e;
    e.kind = FaultKind::kBitFlip;
    e.nth = nth;
    e.bit = bit;
    events.push_back(e);
    return *this;
  }
  FaultSchedule& misroute_at(Cycle from) {
    FaultEvent e;
    e.kind = FaultKind::kMisroute;
    e.from = from;
    events.push_back(e);
    return *this;
  }
  FaultSchedule& nack_response(u64 nth, Cycle delay) {
    FaultEvent e;
    e.kind = FaultKind::kNackResponse;
    e.nth = nth;
    e.delay = std::max<Cycle>(1, delay);
    events.push_back(e);
    return *this;
  }
  FaultSchedule& with_seed(u64 s) {
    seed = s;
    return *this;
  }

  /// Canonical spec string, e.g. `drop-resp:nth=200;stall:part=0,from=1000`
  /// with a trailing `;seed=N`.  parse(to_string()) round-trips.
  std::string to_string() const;

  /// Parses a spec string.  Throws SimError(kConfig) on malformed input.
  /// The empty string parses to an empty (inactive) schedule.
  static FaultSchedule parse(const std::string& spec);
};

/// What the Gpu should do with a matured response packet.
enum class ResponseAction : u8 { kDeliver, kDrop, kNack };

struct ResponseDecision {
  ResponseAction action = ResponseAction::kDeliver;
  Cycle delay = 0;  ///< kNack only: redelivery delay (>= 1)
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule)
      : schedule_(std::move(schedule)), rng_(schedule_.seed) {}

  /// Hook: Gpu is about to deliver a matured response to an SM.
  ResponseDecision on_response(Cycle now) {
    (void)now;
    ++responses_seen_;
    for (const FaultEvent& e : schedule_.events) {
      if (e.kind == FaultKind::kDropResponse) {
        if ((e.nth != 0 && responses_seen_ == e.nth) ||
            (e.prob > 0.0 && rng_.next_bool(e.prob))) {
          ++responses_dropped_;
          return {ResponseAction::kDrop, 0};
        }
      } else if (e.kind == FaultKind::kNackResponse) {
        if (e.nth != 0 && responses_seen_ == e.nth) {
          ++nacks_issued_;
          return {ResponseAction::kNack, std::max<Cycle>(1, e.delay)};
        }
      }
    }
    return {};
  }

  /// Hook: a partition is about to consume a request from its input queue.
  bool should_drop_request() {
    ++requests_seen_;
    for (const FaultEvent& e : schedule_.events) {
      if (e.kind == FaultKind::kDropRequest && e.nth != 0 &&
          requests_seen_ == e.nth) {
        ++requests_dropped_;
        return true;
      }
    }
    return false;
  }

  /// Hook: Gpu asks whether partition `p` is frozen this cycle.  A stall
  /// window with until=0 never recovers (the original hard-stall fault).
  bool partition_stalled(PartitionId p, Cycle now) const {
    for (const FaultEvent& e : schedule_.events) {
      if (e.kind == FaultKind::kStallWindow && e.partition == p &&
          now >= e.from && (e.until == 0 || now < e.until)) {
        return true;
      }
    }
    return false;
  }

  /// Hook: a partition counted one DRAM fill completion.  Returns the
  /// (possibly bit-flipped) line address to fill/release with.
  u64 corrupt_fill_line(u64 line) {
    ++fills_seen_;
    for (const FaultEvent& e : schedule_.events) {
      if (e.kind == FaultKind::kBitFlip && e.nth != 0 &&
          fills_seen_ == e.nth) {
        ++flips_done_;
        line ^= (u64{1} << (e.bit & 63));
      }
    }
    return line;
  }

  /// Hook: Gpu asks, before the request-crossbar transfer, whether a
  /// misroute event is armed and has not fired yet.
  bool misroute_due(Cycle now) const {
    u64 armed = 0;
    for (const FaultEvent& e : schedule_.events) {
      if (e.kind == FaultKind::kMisroute && now >= e.from) ++armed;
    }
    return armed > misroutes_fired_;
  }
  void note_misroute_fired() { ++misroutes_fired_; }

  u64 responses_seen() const { return responses_seen_; }
  u64 responses_dropped() const { return responses_dropped_; }
  u64 requests_dropped() const { return requests_dropped_; }
  u64 flips_done() const { return flips_done_; }
  u64 misroutes_fired() const { return misroutes_fired_; }
  u64 nacks_issued() const { return nacks_issued_; }
  const FaultSchedule& schedule() const { return schedule_; }

  /// Did any event actually corrupt behaviour silently (vs. just delaying)?
  /// Used by the chaos classifier: a completed run whose injector misrouted
  /// a packet produced data from the wrong partition — a wrong result even
  /// though every queue balanced.
  bool silently_corrupting() const { return misroutes_fired_ > 0; }

  // Progress counters and RNG are simulation state (the schedule itself is
  // configuration, covered by the snapshot fingerprint via the harness
  // context).  Serialized through the Gpu's SimState walk so nth-event
  // faults replay at the same event after a snapshot restore.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("FINJ");
    s.put_u64(responses_seen_);
    s.put_u64(responses_dropped_);
    s.put_u64(requests_seen_);
    s.put_u64(requests_dropped_);
    s.put_u64(fills_seen_);
    s.put_u64(flips_done_);
    s.put_u64(misroutes_fired_);
    s.put_u64(nacks_issued_);
    rng_.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("FINJ");
    responses_seen_ = r.get_u64();
    responses_dropped_ = r.get_u64();
    requests_seen_ = r.get_u64();
    requests_dropped_ = r.get_u64();
    fills_seen_ = r.get_u64();
    flips_done_ = r.get_u64();
    misroutes_fired_ = r.get_u64();
    nacks_issued_ = r.get_u64();
    rng_.load(r);
  }

 private:
  FaultSchedule schedule_;
  Rng rng_;
  u64 responses_seen_ = 0;
  u64 responses_dropped_ = 0;
  u64 requests_seen_ = 0;
  u64 requests_dropped_ = 0;
  u64 fills_seen_ = 0;
  u64 flips_done_ = 0;
  u64 misroutes_fired_ = 0;
  u64 nacks_issued_ = 0;
};

/// Number of distinct config-corruption rules in the table below.
std::size_t corruption_rule_count();

/// Human-readable name of corruption rule `index` (for test diagnostics).
const char* corruption_rule_name(std::size_t index);

/// Deterministically corrupts one configuration field (`seed %
/// corruption_rule_count()` selects which).  The table covers every
/// GpuConfig::validate() rule, so iterating seed over [0, rule_count)
/// proves the config layer rejects each class of garbage before a
/// simulation can silently run with it — and a validate() rule added
/// without a matching corruption shows up as an uncovered table entry.
void corrupt_config(GpuConfig& cfg, u64 seed);

}  // namespace gpusim
