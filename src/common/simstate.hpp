// SimState serialization primitives: StateWriter / StateReader / Hasher.
//
// Every stateful component of the simulator exposes
//
//   template <typename Sink> void write_state(Sink&) const;   // shared path
//   void save(StateWriter&) const;    // -> write_state(writer)
//   void hash(Hasher&) const;         // -> write_state(hasher)
//   void load(StateReader&);          // mirrors write_state field order
//
// StateWriter and Hasher deliberately share the same put_* vocabulary so the
// byte stream that is checkpointed and the 64-bit state hash used for
// divergence detection are, by construction, computed over exactly the same
// fields in exactly the same order.  A component cannot accidentally hash a
// field it forgot to save, or vice versa.
//
// Encoding is explicit little-endian regardless of host byte order, so a
// snapshot written on one machine restores on any other.  Section tags (four
// ASCII bytes) are interleaved between components; a reader that drifts out
// of sync with the writer fails fast on the next tag with a structured
// SimError(kSnapshot) naming the expected and encountered tags, instead of
// silently deserializing garbage.
#pragma once

#include <bit>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "common/sim_error.hpp"
#include "common/types.hpp"

namespace gpusim {

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
constexpr u64 mix_bits(u64 x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Serializes state into an in-memory little-endian byte buffer.
class StateWriter {
 public:
  void put_u8(u8 v) { bytes_.push_back(v); }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_i32(i32 v) { put_u32(static_cast<u32>(v)); }
  void put_i64(i64 v) { put_u64(static_cast<u64>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_double(double v) { put_u64(std::bit_cast<u64>(v)); }
  void put_string(const std::string& s) {
    put_u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  /// Four-ASCII-byte section marker, e.g. put_tag("SMCR").
  void put_tag(const char* tag4) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<u8>(tag4[i]));
  }

  const std::vector<u8>& bytes() const { return bytes_; }
  std::vector<u8> take() { return std::move(bytes_); }

 private:
  std::vector<u8> bytes_;
};

/// Bounds-checked reader over a snapshot byte buffer.  Every overrun or tag
/// mismatch raises SimError(kSnapshot) rather than reading garbage.
class StateReader {
 public:
  StateReader(const u8* data, std::size_t size) : data_(data), size_(size) {}
  explicit StateReader(const std::vector<u8>& bytes)
      : StateReader(bytes.data(), bytes.size()) {}

  u8 get_u8() {
    need(1);
    return data_[pos_++];
  }
  u32 get_u32() {
    need(4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<u32>(data_[pos_++]) << (8 * i);
    return v;
  }
  u64 get_u64() {
    need(8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<u64>(data_[pos_++]) << (8 * i);
    return v;
  }
  i32 get_i32() { return static_cast<i32>(get_u32()); }
  i64 get_i64() { return static_cast<i64>(get_u64()); }
  bool get_bool() {
    const u8 v = get_u8();
    SIM_CHECK(v <= 1, SimError(SimErrorKind::kSnapshot, "common.simstate",
                               "corrupt bool encoding")
                          .detail("byte", static_cast<int>(v))
                          .detail("offset", pos_ - 1));
    return v != 0;
  }
  double get_double() { return std::bit_cast<double>(get_u64()); }
  std::string get_string() {
    const u64 n = get_u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Consumes a 4-byte section marker; throws on mismatch so a save/load
  /// field-order drift is detected at the next component boundary.
  void expect_tag(const char* tag4) {
    need(4);
    char found[5] = {};
    std::memcpy(found, data_ + pos_, 4);
    if (std::memcmp(found, tag4, 4) != 0) {
      SIM_FAIL(SimError(SimErrorKind::kSnapshot, "common.simstate",
                        "section tag mismatch (save/load drift or corruption)")
                   .detail("expected", tag4)
                   .detail("found", found)
                   .detail("offset", pos_));
    }
    pos_ += 4;
  }
  /// Bounded sequence length: guards deque/vector restores against a corrupt
  /// length field allocating unbounded memory.
  u64 get_count(u64 max, const char* what) {
    const u64 n = get_u64();
    SIM_CHECK(n <= max, SimError(SimErrorKind::kSnapshot, "common.simstate",
                                 "sequence length exceeds bound")
                            .detail("sequence", what)
                            .detail("length", n)
                            .detail("bound", max));
    return n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }
  void require_end() const {
    SIM_CHECK(exhausted(), SimError(SimErrorKind::kSnapshot, "common.simstate",
                                    "trailing bytes after final section")
                               .detail("remaining", remaining()));
  }

 private:
  void need(u64 n) {
    SIM_CHECK(n <= size_ - pos_,
              SimError(SimErrorKind::kSnapshot, "common.simstate",
                       "snapshot truncated: read past end of buffer")
                  .detail("offset", pos_)
                  .detail("requested", n)
                  .detail("size", size_));
  }

  const u8* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Incremental 64-bit state hash with the same put_* vocabulary as
/// StateWriter, so `write_state` feeds both sinks identically.  FNV-1a over
/// SplitMix64-mixed words; not cryptographic — it exists to make two runs
/// comparable cycle-by-cycle, and to catch corrupt or asymmetric restores.
class Hasher {
 public:
  void put_u8(u8 v) { absorb(v); }
  void put_u32(u32 v) { absorb(v); }
  void put_u64(u64 v) { absorb(v); }
  void put_i32(i32 v) { absorb(static_cast<u64>(static_cast<u32>(v))); }
  void put_i64(i64 v) { absorb(static_cast<u64>(v)); }
  void put_bool(bool v) { absorb(v ? 1 : 0); }
  void put_double(double v) { absorb(std::bit_cast<u64>(v)); }
  void put_string(const std::string& s) {
    absorb(s.size());
    for (char c : s) absorb(static_cast<u8>(c));
  }
  void put_tag(const char* tag4) {
    u32 packed = 0;
    for (int i = 0; i < 4; ++i) {
      packed |= static_cast<u32>(static_cast<u8>(tag4[i])) << (8 * i);
    }
    absorb(packed);
  }

  u64 digest() const { return mix_bits(h_); }

 private:
  void absorb(u64 v) { h_ = (h_ ^ mix_bits(v)) * 0x100000001B3ULL; }
  u64 h_ = 0xCBF29CE484222325ULL;  // FNV-64 offset basis
};

/// Hash of a single component in isolation (divergence drill-down helper).
template <typename T>
u64 state_hash_of(const T& component) {
  Hasher h;
  component.write_state(h);
  return h.digest();
}

}  // namespace gpusim
