// Deterministic, seedable pseudo-random number generation.
//
// The simulator must be bit-reproducible across runs for a given seed: the
// alone-run replay methodology (Section V of the paper) compares co-run and
// alone-run executions of the *same* instruction stream, so every warp's
// address stream is derived from an explicit per-warp seed.
// Discipline: every component owns its engine, seeded explicitly from its
// parent (no shared or global generator anywhere in the simulator), and the
// engine state is serializable — so a snapshot/restore or a parallel sweep
// (--jobs N) can never perturb any component's draw order.
#pragma once

#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

/// xoshiro256** — small, fast, high-quality; seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(u64 seed) {
    u64 x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97f4A7C15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  u64 next_below(u64 bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent child engine for a sub-component.  Mixing the
  /// stream id through SplitMix64 decorrelates children of the same parent;
  /// the parent's own state is not consumed, so adding a fork never shifts
  /// sibling draw order.
  Rng fork(u64 stream_id) const {
    return Rng(mix_bits(state_[0] ^ mix_bits(stream_id + 0x9E3779B97F4A7C15ULL)));
  }

  // SimState serialization: the four xoshiro256** words are the entire state.
  template <typename Sink>
  void write_state(Sink& s) const {
    for (u64 w : state_) s.put_u64(w);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    for (auto& w : state_) w = r.get_u64();
  }

  friend bool operator==(const Rng& a, const Rng& b) {
    for (int i = 0; i < 4; ++i) {
      if (a.state_[i] != b.state_[i]) return false;
    }
    return true;
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 state_[4] = {};
};

}  // namespace gpusim
