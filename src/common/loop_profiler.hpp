// Built-in cycle-loop profiler (--profile-loop).
//
// Attributes wall time and visit counts to the phases of the simulator's
// hot loop — SM advance, response delivery, the two crossbar directions,
// the memory partitions, the fast-forward path and interval bookkeeping —
// so performance PRs argue from measured breakdowns instead of guesses.
// When no profiler is attached the per-cycle cost is a null-pointer check
// per phase; the chrono reads only happen while profiling.
#pragma once

#include <array>
#include <chrono>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace gpusim {

class LoopProfiler {
 public:
  enum Phase : int {
    kSmAdvance = 0,     ///< SmCore::cycle() calls (issue/dispatch/refill)
    kRespDelivery,      ///< crossbar delivery queues -> SmCore::receive()
    kXbarReq,           ///< request crossbar transfer (SM -> partition)
    kXbarResp,          ///< response crossbar transfer (partition -> SM)
    kPartition,         ///< MemoryPartition::cycle() (L2 + DRAM)
    kFastForward,       ///< dead-cycle probe + bulk skip
    kIntervalBookkeeping,  ///< end_interval() + observer dispatch
    kNumPhases,
  };

  /// Bench/CLI JSON key stem for one phase ("sm_advance", ...).
  static const char* phase_key(int p) {
    static const char* const names[kNumPhases] = {
        "sm_advance",     "resp_delivery", "xbar_req",     "xbar_resp",
        "partition",      "fast_forward",  "interval_bookkeeping",
    };
    return p >= 0 && p < kNumPhases ? names[p] : "unknown";
  }

  static u64 now_ns() {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void add(Phase p, u64 ns, u64 visits) {
    ns_[p] += ns;
    visits_[p] += visits;
  }

  u64 ns(Phase p) const { return ns_[p]; }
  u64 visits(Phase p) const { return visits_[p]; }
  u64 total_ns() const {
    u64 t = 0;
    for (u64 v : ns_) t += v;
    return t;
  }

  void reset() {
    ns_.fill(0);
    visits_.fill(0);
  }

  /// Flat JSON fragment, one `"profile_<phase>_{ns,visits}": N` pair per
  /// phase, each on its own line (the repo's awk-greppable BENCH format).
  /// `trailing_comma` controls the comma after the final line.
  std::string to_json_lines(bool trailing_comma) const {
    std::ostringstream ss;
    for (int p = 0; p < kNumPhases; ++p) {
      ss << "\"profile_" << phase_key(p) << "_ns\": " << ns_[p] << ",\n";
      ss << "\"profile_" << phase_key(p) << "_visits\": " << visits_[p];
      if (trailing_comma || p + 1 < kNumPhases) ss << ',';
      ss << '\n';
    }
    return ss.str();
  }

 private:
  std::array<u64, kNumPhases> ns_{};
  std::array<u64, kNumPhases> visits_{};
};

/// Scoped phase timer: charges the enclosed span to `phase` when a profiler
/// is attached, and compiles down to a null check when none is.
class ProfScope {
 public:
  ProfScope(LoopProfiler* prof, LoopProfiler::Phase phase, u64 visits = 1)
      : prof_(prof), phase_(phase), visits_(visits),
        start_(prof != nullptr ? LoopProfiler::now_ns() : 0) {}
  ~ProfScope() {
    if (prof_ != nullptr) {
      prof_->add(phase_, LoopProfiler::now_ns() - start_, visits_);
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

  /// Overrides the visit count charged at scope exit (e.g. packets actually
  /// delivered, discovered inside the scope).
  void set_visits(u64 visits) { visits_ = visits; }

 private:
  LoopProfiler* prof_;
  LoopProfiler::Phase phase_;
  u64 visits_;
  u64 start_;
};

}  // namespace gpusim
