#include "common/build_info.hpp"

#include <cstdio>
#include <sstream>

namespace gpusim {

namespace {

// Clang spells sanitizer detection via __has_feature; GCC via
// __SANITIZE_*__ macros.  Normalise both here.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GPUSIM_BUILD_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define GPUSIM_BUILD_TSAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define GPUSIM_BUILD_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define GPUSIM_BUILD_TSAN 1
#endif

/// FNV-1a, the same mixing the SimState Hasher uses for byte streams.
u64 fnv1a(const std::string& text, u64 h = 0xcbf29ce484222325ull) {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string build_features() {
  // The compiled-in capability set; extend when a PR adds a subsystem an
  // artifact consumer might need to know about.
  return "activity-engine,fast-forward,mshr-retry,simstate,chaos,jobs,"
         "flight-recorder,crash-bundle,triage";
}

std::string build_type() {
  std::string type =
#ifdef NDEBUG
      "release";
#else
      "debug";
#endif
#ifdef GPUSIM_BUILD_ASAN
  type += ",asan";
#endif
#ifdef GPUSIM_BUILD_TSAN
  type += ",tsan";
#endif
  return type;
}

u64 build_fingerprint() {
  u64 h = fnv1a(kGpusimVersion);
  h = fnv1a(build_features(), h);
  h = fnv1a(build_type(), h);
  return h == 0 ? 1 : h;
}

std::string build_fingerprint_line(u32 snapshot_schema) {
  std::ostringstream ss;
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(build_fingerprint()));
  ss << "dase-gpusim " << kGpusimVersion << " (snapshot v" << snapshot_schema
     << ", jobs-manifest v" << kJobsManifestSchema << ", bundle v"
     << kCrashBundleSchema << "; features: " << build_features()
     << "; build: " << build_type() << "; fingerprint 0x" << hex << ")";
  return ss.str();
}

}  // namespace gpusim
