// Evaluation metrics (paper Eq. 1, 2, 26, 27).
#pragma once

#include <cassert>
#include <cmath>
#include <span>
#include <vector>

namespace gpusim {

/// Eq. 2: Unfairness = MAX(slowdown_i) / MIN(slowdown_i); 1.0 is ideal.
double unfairness(std::span<const double> slowdowns);

/// Eq. 27: Harmonic speedup = N / Σ (IPC_alone / IPC_shared)
///                          = N / Σ slowdown_i.
double harmonic_speedup(std::span<const double> slowdowns);

/// Eq. 26: |estimated - actual| / actual, as a fraction (0.088 = 8.8%).
double estimation_error(double estimated, double actual);

/// Arithmetic mean of a sample set (0 when empty).
double mean(std::span<const double> values);

}  // namespace gpusim
