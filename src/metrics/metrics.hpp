// Evaluation metrics (paper Eq. 1, 2, 26, 27).
#pragma once

#include <cassert>
#include <cmath>
#include <span>
#include <vector>

namespace gpusim {

/// Eq. 2: Unfairness = MAX(slowdown_i) / MIN(slowdown_i); 1.0 is ideal.
double unfairness(std::span<const double> slowdowns);

/// Eq. 27: Harmonic speedup = N / Σ (IPC_alone / IPC_shared)
///                          = N / Σ slowdown_i.
double harmonic_speedup(std::span<const double> slowdowns);

/// Eq. 26: |estimated - actual| / actual, as a fraction (0.088 = 8.8%).
/// Returns quiet NaN when the error is undefined — `actual` non-positive
/// (a starved or unmeasured app has no meaningful baseline) or either
/// argument non-finite — so callers can detect-and-skip instead of
/// dividing by zero or silently propagating garbage.
double estimation_error(double estimated, double actual);

/// Arithmetic mean of the *finite* samples (0 when none are).  NaN/Inf
/// entries — e.g. error columns for intervals with no baseline — are
/// skipped rather than poisoning the aggregate.
double mean(std::span<const double> values);

}  // namespace gpusim
