#include "metrics/metrics.hpp"

#include <algorithm>
#include <limits>

namespace gpusim {

double unfairness(std::span<const double> slowdowns) {
  assert(!slowdowns.empty());
  const auto [lo, hi] =
      std::minmax_element(slowdowns.begin(), slowdowns.end());
  assert(*lo > 0.0);
  return *hi / *lo;
}

double harmonic_speedup(std::span<const double> slowdowns) {
  assert(!slowdowns.empty());
  double sum = 0.0;
  for (double s : slowdowns) {
    assert(s > 0.0);
    sum += s;
  }
  return static_cast<double>(slowdowns.size()) / sum;
}

double estimation_error(double estimated, double actual) {
  if (!std::isfinite(estimated) || !std::isfinite(actual) || actual <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return std::abs(estimated - actual) / actual;
}

double mean(std::span<const double> values) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace gpusim
