#include "metrics/metrics.hpp"

#include <algorithm>

namespace gpusim {

double unfairness(std::span<const double> slowdowns) {
  assert(!slowdowns.empty());
  const auto [lo, hi] =
      std::minmax_element(slowdowns.begin(), slowdowns.end());
  assert(*lo > 0.0);
  return *hi / *lo;
}

double harmonic_speedup(std::span<const double> slowdowns) {
  assert(!slowdowns.empty());
  double sum = 0.0;
  for (double s : slowdowns) {
    assert(s > 0.0);
    sum += s;
  }
  return static_cast<double>(slowdowns.size()) / sum;
}

double estimation_error(double estimated, double actual) {
  assert(actual > 0.0);
  return std::abs(estimated - actual) / actual;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace gpusim
