#include "baselines/asm_model.hpp"

#include <algorithm>

namespace gpusim {

std::vector<SlowdownEstimate> AsmModel::estimate(const IntervalSample& sample,
                                                 Gpu& gpu) {
  const int num_partitions = gpu.config().num_partitions;
  std::vector<SlowdownEstimate> out(sample.apps.size());

  const double wall_normal =
      static_cast<double>(sample.nonpriority_cycles) / num_partitions;

  for (std::size_t i = 0; i < sample.apps.size(); ++i) {
    const AppIntervalData& d = sample.apps[i];
    SlowdownEstimate& est = out[i];
    if (d.num_sms == 0 || d.sm_cycles == 0) continue;

    const double wall_prio =
        static_cast<double>(d.priority_cycles) / num_partitions;
    if (wall_prio <= 0.0 || wall_normal <= 0.0) continue;

    // Cache access rates: alone-rate from the priority epochs, shared-rate
    // from the no-priority region.
    const double car_alone =
        static_cast<double>(d.l2_accesses_priority) / wall_prio;
    double shared_accesses = static_cast<double>(d.l2_accesses_nonpriority);
    // ATD correction: contention misses inflate the shared access count
    // with traffic that would not exist alone; discount them
    // proportionally to the no-priority share of the interval's accesses.
    if (d.l2_accesses > 0) {
      const double nonprio_fraction =
          shared_accesses / static_cast<double>(d.l2_accesses);
      shared_accesses -= static_cast<double>(d.ellc_miss_scaled) *
                         nonprio_fraction;
      shared_accesses = std::max(shared_accesses, 1.0);
    }
    const double car_shared = shared_accesses / wall_normal;

    if (car_alone <= 0.0 || car_shared <= 0.0) {
      est.valid = true;
      est.slowdown_assigned = est.slowdown_all = 1.0;
      est.alpha = d.alpha;
      continue;
    }

    est.valid = true;
    const double alpha = std::clamp(d.alpha, 0.0, 1.0);
    est.alpha = alpha;
    const double ratio = std::max(1.0, car_alone / car_shared);
    if (alpha >= options_.memory_bound_alpha) {
      est.mbb = true;
      est.slowdown_assigned = ratio;
    } else {
      est.slowdown_assigned = 1.0 - alpha + alpha * ratio;
    }
    // No all-SM extrapolation (paper Section VI).
    est.slowdown_all = std::max(1.0, est.slowdown_assigned);
  }
  return out;
}

}  // namespace gpusim
