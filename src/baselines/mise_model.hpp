// MISE — Memory-interference induced Slowdown Estimation
// (Subramanian et al., HPCA 2013), adapted to the GPU as the paper's first
// comparison baseline.
//
// Model: slowdown of a memory-bound application = ARSR / SRSR, where ARSR
// is measured during the application's highest-priority epochs (see
// PriorityEpochDriver) and SRSR during normal operation; non-memory-bound
// applications are corrected with the memory stall fraction α:
// slowdown = (1 - α) + α * ARSR / SRSR.
//
// GPU-specific deficiencies retained deliberately (paper Section VI):
//  * no extrapolation from the assigned SMs to the all-SM alone baseline;
//  * priority epochs do not shield a GPU application from interference.
#pragma once

#include "dase/estimator.hpp"

namespace gpusim {

struct MiseOptions {
  /// α at/above which an application counts as memory-bound and the pure
  /// service-rate ratio is used (MISE's MPKI classification, mapped onto
  /// the stall fraction the GPU exposes).
  double memory_bound_alpha = 0.7;
};

class MiseModel final : public SlowdownEstimator {
 public:
  explicit MiseModel(MiseOptions options = {}, int warmup_intervals = 1)
      : SlowdownEstimator(warmup_intervals), options_(options) {}

  std::string name() const override { return "MISE"; }

 protected:
  std::vector<SlowdownEstimate> estimate(const IntervalSample& sample,
                                         Gpu& gpu) override;

 private:
  MiseOptions options_;
};

}  // namespace gpusim
