// ASM — the Application Slowdown Model (Subramanian et al., MICRO 2015),
// adapted to the GPU as the paper's second comparison baseline.
//
// ASM refines MISE by moving the measurement point from main memory to the
// shared cache: slowdown ≈ CAR_alone / CAR_shared, where CAR is the
// cache (L2) access rate.  CAR_alone is sampled during highest-priority
// epochs; shared-cache contention is corrected with an auxiliary tag
// directory — accesses that miss only because a co-runner evicted the line
// (and the cycles spent serving them) are discounted from the shared-rate
// measurement.
//
// As with MISE, the GPU-specific deficiencies the paper identifies are
// retained: no all-SM extrapolation, and priority epochs that cannot
// actually isolate a GPU application.
#pragma once

#include "dase/estimator.hpp"

namespace gpusim {

struct AsmOptions {
  double memory_bound_alpha = 0.7;
};

class AsmModel final : public SlowdownEstimator {
 public:
  explicit AsmModel(AsmOptions options = {}, int warmup_intervals = 1)
      : SlowdownEstimator(warmup_intervals), options_(options) {}

  std::string name() const override { return "ASM"; }

 protected:
  std::vector<SlowdownEstimate> estimate(const IntervalSample& sample,
                                         Gpu& gpu) override;

 private:
  AsmOptions options_;
};

}  // namespace gpusim
