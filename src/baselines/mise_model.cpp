#include "baselines/mise_model.hpp"

#include <algorithm>

namespace gpusim {

std::vector<SlowdownEstimate> MiseModel::estimate(
    const IntervalSample& sample, Gpu& gpu) {
  const int num_partitions = gpu.config().num_partitions;
  std::vector<SlowdownEstimate> out(sample.apps.size());

  // priority_cycles / nonpriority_cycles are summed across partitions;
  // divide back to wall-clock cycles.
  const double wall_normal =
      static_cast<double>(sample.nonpriority_cycles) / num_partitions;

  for (std::size_t i = 0; i < sample.apps.size(); ++i) {
    const AppIntervalData& d = sample.apps[i];
    SlowdownEstimate& est = out[i];
    if (d.num_sms == 0 || d.sm_cycles == 0) continue;

    const double wall_prio =
        static_cast<double>(d.priority_cycles) / num_partitions;
    if (wall_prio <= 0.0 || wall_normal <= 0.0) continue;

    const double arsr = static_cast<double>(d.priority_served) / wall_prio;
    const double srsr =
        static_cast<double>(d.nonpriority_served) / wall_normal;
    if (srsr <= 0.0 || arsr <= 0.0) {
      // No memory traffic: a compute-only interval is unslowed.
      est.valid = true;
      est.slowdown_assigned = est.slowdown_all = 1.0;
      est.alpha = d.alpha;
      continue;
    }

    est.valid = true;
    const double alpha = std::clamp(d.alpha, 0.0, 1.0);
    est.alpha = alpha;
    const double ratio = std::max(1.0, arsr / srsr);
    if (alpha >= options_.memory_bound_alpha) {
      est.mbb = true;
      est.slowdown_assigned = ratio;
    } else {
      est.slowdown_assigned = 1.0 - alpha + alpha * ratio;
    }
    // MISE has no notion of the all-SM alone baseline (paper Section VI):
    // it reports the assigned-SM estimate unchanged.
    est.slowdown_all = std::max(1.0, est.slowdown_assigned);
  }
  return out;
}

}  // namespace gpusim
