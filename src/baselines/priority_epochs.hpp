// Priority-epoch driver for the MISE / ASM baselines.
//
// Both CPU models rest on the observation that "assigning memory requests
// of an application the highest priority ... can mitigate most interference
// from other applications" (paper Section III-B).  They therefore slice
// each estimation interval so every application periodically receives
// absolute priority at all memory controllers: the request service rate
// measured inside an application's own epochs approximates its
// alone-request-service-rate (ARSR), and the rate during the no-priority
// remainder is its shared-request-service-rate (SRSR).
//
// The paper's critique — which this reproduction demonstrates — is that on
// a GPU these epochs do NOT isolate the application: the co-runner's
// requests already occupying banks, queues and the data bus keep being
// served, because GPU request counts are far higher than on CPUs.
#pragma once

#include <cassert>

#include "gpu/simulator.hpp"

namespace gpusim {

class PriorityEpochDriver final : public CycleHook {
 public:
  /// Schedules, inside every window of `interval` cycles, one priority
  /// epoch of `epoch_length` cycles per application (placed back-to-back
  /// at the window's end); the rest of the window runs without priority.
  PriorityEpochDriver(Cycle interval, Cycle epoch_length, int num_apps)
      : interval_(interval), epoch_length_(epoch_length), num_apps_(num_apps) {
    assert(num_apps_ > 0);
    assert(epoch_length_ * static_cast<Cycle>(num_apps_) < interval_ &&
           "epochs must leave a no-priority measurement region");
  }

  /// Convenient default: each app's epoch is 5% of the interval.
  static PriorityEpochDriver with_defaults(const GpuConfig& cfg,
                                           int num_apps) {
    return PriorityEpochDriver(cfg.estimation_interval,
                               cfg.estimation_interval / 20, num_apps);
  }

  void on_cycle(Cycle now, Gpu& gpu) override {
    const Cycle pos = now % interval_;
    const Cycle epochs_begin =
        interval_ - epoch_length_ * static_cast<Cycle>(num_apps_);
    AppId want = kInvalidApp;
    if (pos >= epochs_begin) {
      want = static_cast<AppId>((pos - epochs_begin) / epoch_length_);
    }
    if (want != current_) {
      gpu.set_priority_app(want);
      current_ = want;
    }
  }

  void save_state(StateWriter& w) const override { write_hook_state(w); }
  void hash_state(Hasher& h) const override { write_hook_state(h); }
  void load_state(StateReader& r) override {
    r.expect_tag("EPCH");
    current_ = r.get_i32();
  }

 private:
  template <typename Sink>
  void write_hook_state(Sink& s) const {
    s.put_tag("EPCH");
    s.put_i32(current_);
  }

  Cycle interval_;
  Cycle epoch_length_;
  int num_apps_;
  AppId current_ = kInvalidApp;
};

}  // namespace gpusim
