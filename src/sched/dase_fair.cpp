#include "sched/dase_fair.hpp"
#include <functional>

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/sim_error.hpp"
#include "sched/governor.hpp"

namespace gpusim {

namespace {

/// Unfairness (Eq. 2) of the predicted slowdowns for one candidate split.
double predicted_unfairness(const std::vector<double>& reciprocals,
                            const std::vector<int>& assigned,
                            const std::vector<int>& counts, int total) {
  double max_s = 0.0;
  double min_s = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < reciprocals.size(); ++i) {
    const double r = DaseFairPolicy::interpolate_reciprocal(
        reciprocals[i], assigned[i], counts[i], total);
    const double slowdown = 1.0 / std::max(r, 1e-6);
    max_s = std::max(max_s, slowdown);
    min_s = std::min(min_s, slowdown);
  }
  return max_s / min_s;
}

void enumerate_splits(int apps_left, int sms_left, int min_per_app,
                      std::vector<int>& current,
                      const std::function<void(const std::vector<int>&)>& fn) {
  if (apps_left == 1) {
    if (sms_left >= min_per_app) {
      current.push_back(sms_left);
      fn(current);
      current.pop_back();
    }
    return;
  }
  for (int x = min_per_app; x <= sms_left - min_per_app * (apps_left - 1);
       ++x) {
    current.push_back(x);
    enumerate_splits(apps_left - 1, sms_left - x, min_per_app, current, fn);
    current.pop_back();
  }
}

}  // namespace

bool dase_fair_eligible(const KernelProfile& profile) {
  // Enough thread blocks to repopulate a grown SM share for a meaningful
  // time, and blocks long enough to outlive an SM drain.
  constexpr int kMinBlocks = 64;
  constexpr u64 kMinInstrsPerWarp = 500;
  return profile.blocks_total >= kMinBlocks &&
         profile.instrs_per_warp >= kMinInstrsPerWarp;
}

void DaseFairOptions::validate() const {
  SIM_CHECK(warmup_intervals >= 0,
            SimError(SimErrorKind::kConfig, "sched.dase_fair",
                     "warmup_intervals must be non-negative")
                .detail("warmup_intervals", warmup_intervals));
  SIM_CHECK(min_improvement >= 0.0 && min_improvement < 1.0,
            SimError(SimErrorKind::kConfig, "sched.dase_fair",
                     "min_improvement must be in [0, 1)")
                .detail("min_improvement", min_improvement));
  SIM_CHECK(min_sms_per_app >= 1,
            SimError(SimErrorKind::kConfig, "sched.dase_fair",
                     "min_sms_per_app must be at least 1")
                .detail("min_sms_per_app", min_sms_per_app));
}

DaseFairPolicy::DaseFairPolicy(DaseModel* model, DaseFairOptions options)
    : model_(model), options_(options) {
  assert(model_ != nullptr);
  options_.validate();
}

double DaseFairPolicy::interpolate_reciprocal(double reciprocal, int assigned,
                                              int x, int total) {
  reciprocal = std::clamp(reciprocal, 0.0, 1.0);
  if (x == assigned) return reciprocal;
  if (x > assigned) {
    // Eq. 29: towards reciprocal 1 when the app owns every SM.
    if (assigned >= total) return 1.0;
    return reciprocal + static_cast<double>(x - assigned) /
                            static_cast<double>(total - assigned) *
                            (1.0 - reciprocal);
  }
  // Eq. 30: towards reciprocal 0 at zero SMs.
  if (assigned <= 0) return 0.0;
  return reciprocal - static_cast<double>(assigned - x) /
                          static_cast<double>(assigned) * reciprocal;
}

std::vector<int> DaseFairPolicy::search_best_split(
    const std::vector<double>& reciprocals, const std::vector<int>& assigned,
    int total, int min_per_app, double* best_unfairness_out) {
  assert(!reciprocals.empty());
  assert(reciprocals.size() == assigned.size());
  std::vector<int> best;
  double best_unfairness = std::numeric_limits<double>::max();
  std::vector<int> current;
  enumerate_splits(static_cast<int>(reciprocals.size()), total, min_per_app,
                   current, [&](const std::vector<int>& counts) {
                     const double u = predicted_unfairness(
                         reciprocals, assigned, counts, total);
                     if (u < best_unfairness) {
                       best_unfairness = u;
                       best = counts;
                     }
                   });
  if (best_unfairness_out != nullptr) *best_unfairness_out = best_unfairness;
  return best;
}

void DaseFairPolicy::on_interval(const IntervalSample& sample, Gpu& gpu) {
  (void)sample;
  if (++intervals_seen_ <= options_.warmup_intervals) return;
  if (gpu.migration_in_progress()) return;

  const int num_apps = gpu.num_apps();
  for (AppId a = 0; a < num_apps; ++a) {
    if (!dase_fair_eligible(gpu.runtime(a).profile())) return;
  }

  const auto& estimates = model_->latest();
  if (static_cast<int>(estimates.size()) != num_apps) return;

  std::vector<double> reciprocals(num_apps);
  std::vector<int> assigned(num_apps);
  for (AppId a = 0; a < num_apps; ++a) {
    if (!estimates[a].valid) return;
    reciprocals[a] = 1.0 / std::max(1.0, estimates[a].slowdown_all);  // Eq. 28
    assigned[a] = gpu.sms_assigned(a);
    if (assigned[a] == 0) return;  // mid-handover; wait
  }

  double best_unfairness = 0.0;
  const std::vector<int> best =
      search_best_split(reciprocals, assigned, gpu.num_sms(),
                        options_.min_sms_per_app, &best_unfairness);
  if (best.empty() || best == assigned) return;

  const double current_unfairness = predicted_unfairness(
      reciprocals, assigned, assigned, gpu.num_sms());
  if (best_unfairness >= current_unfairness * (1.0 - options_.min_improvement)) {
    return;  // not enough predicted gain to pay the drain cost
  }

  const std::vector<AppId> assignment = build_assignment(gpu, best);
  if (sink_ != nullptr) {
    if (sink_->propose_partition(gpu, assignment)) ++repartitions_;
  } else {
    gpu.set_partition(assignment);
    ++repartitions_;
  }
}

std::vector<AppId> DaseFairPolicy::build_assignment(
    Gpu& gpu, const std::vector<int>& counts) const {
  // Keep currently-owned SMs in place where possible to minimise draining.
  std::vector<AppId> assignment = gpu.current_partition();
  std::vector<int> need = counts;
  // Pass 1: retain up to `counts[a]` of each app's existing SMs.
  for (AppId& owner : assignment) {
    if (owner == kInvalidApp) continue;
    if (need[owner] > 0) {
      --need[owner];
    } else {
      owner = kInvalidApp;  // surplus SM: release
    }
  }
  // Pass 2: hand freed / idle SMs to apps still short.
  AppId next = 0;
  for (AppId& owner : assignment) {
    if (owner != kInvalidApp) continue;
    while (next < static_cast<AppId>(need.size()) && need[next] == 0) ++next;
    if (next >= static_cast<AppId>(need.size())) break;
    owner = next;
    --need[next];
  }
  return assignment;
}

}  // namespace gpusim
