#include "sched/governor.hpp"

#include <algorithm>
#include <sstream>

#include "common/sim_error.hpp"
#include "sm/sm_core.hpp"

namespace gpusim {

GovernorOptions GovernorOptions::from_config(const GpuConfig& cfg,
                                             bool enabled_flag) {
  GovernorOptions o;
  o.enabled = enabled_flag;
  o.num_sms = cfg.num_sms;
  o.drain_budget = cfg.governor_drain_budget;
  o.max_delta = cfg.governor_max_delta;
  o.starvation_window = cfg.governor_starvation_window;
  o.thrash_window = cfg.governor_thrash_window;
  o.breaker_trips = cfg.governor_breaker_trips;
  o.jump_bound = cfg.governor_jump_bound;
  o.force_preempt = cfg.governor_force_preempt;
  return o;
}

PolicyGovernor::PolicyGovernor(GovernorOptions options,
                               const SlowdownEstimator* estimator)
    : options_(options), estimator_(estimator) {}

bool PolicyGovernor::propose_partition(Gpu& gpu,
                                       const std::vector<AppId>& desired) {
  if (!options_.enabled) {
    gpu.set_partition(desired);
    return true;
  }
  FlightRecorder& rec = gpu.flight_recorder();
  if (fell_back_even_) {
    rec.record(gpu.now(), FrEvent::kGovProposalRejected, -1, -1,
               static_cast<u64>(GovernorReject::kFellBackEven), epoch_);
    ++rejects_;
    return false;
  }
  if (epoch_ < frozen_until_epoch_) {
    rec.record(gpu.now(), FrEvent::kGovProposalRejected, -1, -1,
               static_cast<u64>(GovernorReject::kBreakerFrozen), epoch_);
    ++rejects_;
    return false;
  }
  std::vector<AppId> clamped = desired;
  validate_and_clamp(gpu, clamped);
  if (clamped == gpu.desired_partition()) return false;  // clamped to a no-op

  if (low_confidence(gpu)) {
    ++holds_;
    return false;  // hold the last-good (= current) partition
  }

  // Thrash detection: the proposal undoes the previous migration
  // (A -> B -> A) within the flap window.
  if (!prev2_.empty() && clamped == prev2_ && clamped != prev1_) {
    if (epoch_ <= last_flap_epoch_ + static_cast<u64>(options_.thrash_window)) {
      ++flap_count_;
    } else {
      flap_count_ = 1;
    }
    last_flap_epoch_ = epoch_;
    if (flap_count_ >= 2) {
      flap_count_ = 0;
      trip_breaker(gpu, kInvalidApp);
      return false;
    }
  }

  gpu.set_partition(clamped);
  migration_seen_ = true;
  migration_start_cycle_ = gpu.now();
  prev2_ = std::move(prev1_);
  prev1_ = std::move(clamped);
  return true;
}

bool PolicyGovernor::validate_and_clamp(Gpu& gpu,
                                        std::vector<AppId>& partition) {
  const int num_sms = gpu.num_sms();
  const int num_apps = gpu.num_apps();
  SIM_CHECK(static_cast<int>(partition.size()) == num_sms,
            SimError(SimErrorKind::kInvariant, "sched.governor",
                     "proposed partition must name one owner per SM")
                .cycle(gpu.now())
                .detail("proposed", partition.size())
                .detail("num_sms", num_sms));
  for (const AppId a : partition) {
    SIM_CHECK(a >= 0 && a < num_apps,
              SimError(SimErrorKind::kInvariant, "sched.governor",
                       "proposed partition names an unknown application "
                       "or leaves an SM unowned")
                  .cycle(gpu.now())
                  .app(a)
                  .detail("num_apps", num_apps));
  }
  SIM_CHECK(num_apps * options_.min_sms_per_app <= num_sms,
            SimError(SimErrorKind::kInvariant, "sched.governor",
                     "min-SM floor is infeasible for this many applications")
                .detail("num_apps", num_apps)
                .detail("min_sms_per_app", options_.min_sms_per_app)
                .detail("num_sms", num_sms));

  // Clamp relative to the partition the GPU is already converging to (the
  // desired one): with a drain still pending, bounding against the stale
  // SM owners would double-count the in-flight moves.  A forwarded
  // proposal then supersedes the pending migration, exactly as an
  // unguarded Gpu::set_partition call would.
  const std::vector<AppId>& current = gpu.desired_partition();
  std::vector<int> desired_count(num_apps, 0);
  std::vector<int> current_count(num_apps, 0);
  for (const AppId a : partition) ++desired_count[a];
  for (const AppId a : current) {
    if (a != kInvalidApp) ++current_count[a];
  }
  int delta = 0;
  for (int s = 0; s < num_sms; ++s) delta += partition[s] != current[s] ? 1 : 0;

  bool floor_ok = true;
  for (AppId a = 0; a < num_apps; ++a) {
    floor_ok = floor_ok && desired_count[a] >= options_.min_sms_per_app;
  }
  if (floor_ok && delta <= options_.max_delta) return false;  // forward as-is

  // Clamp at the per-app count level, then rebuild the assignment keeping
  // currently owned SMs in place — the same retain-first construction the
  // policies use, so the clamped migration drains no more SMs than needed.
  std::vector<int> counts = desired_count;
  for (AppId poor = 0; poor < num_apps; ++poor) {
    while (counts[poor] < options_.min_sms_per_app) {
      AppId rich = kInvalidApp;
      int rich_count = options_.min_sms_per_app;
      for (AppId a = 0; a < num_apps; ++a) {
        if (a != poor && counts[a] > rich_count) {
          rich = a;
          rich_count = counts[a];
        }
      }
      SIM_CHECK(rich != kInvalidApp,
                SimError(SimErrorKind::kInvariant, "sched.governor",
                         "cannot clamp the proposal up to the min-SM floor")
                    .app(poor)
                    .detail("min_sms_per_app", options_.min_sms_per_app));
      --counts[rich];
      ++counts[poor];
    }
  }
  // Bound the epoch's reassignment: shrink the movement between the current
  // and the clamped counts until at most max_delta SMs change hands.  Each
  // step pulls the largest surplus and the largest deficit one SM closer to
  // the current split, so counts stay between the (floor-satisfying)
  // endpoints throughout.
  auto moves_of = [&]() {
    int m = 0;
    for (AppId a = 0; a < num_apps; ++a) {
      m += std::max(0, counts[a] - current_count[a]);
    }
    return m;
  };
  while (moves_of() > options_.max_delta) {
    AppId grow = kInvalidApp, shrink = kInvalidApp;
    int grow_gap = 0, shrink_gap = 0;
    for (AppId a = 0; a < num_apps; ++a) {
      const int gap = counts[a] - current_count[a];
      if (gap > grow_gap) {
        grow = a;
        grow_gap = gap;
      }
      if (-gap > shrink_gap) {
        shrink = a;
        shrink_gap = -gap;
      }
    }
    if (grow == kInvalidApp || shrink == kInvalidApp) break;
    --counts[grow];
    ++counts[shrink];
  }

  FlightRecorder& rec = gpu.flight_recorder();
  for (AppId a = 0; a < num_apps; ++a) {
    if (counts[a] != desired_count[a]) {
      rec.record(gpu.now(), FrEvent::kGovClamp, -1, a,
                 static_cast<u64>(desired_count[a]),
                 static_cast<u64>(counts[a]));
      ++clamps_;
    }
  }

  // Rebuild: retain up to counts[a] of each app's current SMs, then hand
  // the freed/idle SMs to apps still short (lowest app id first).
  partition = current;
  std::vector<int> need = counts;
  for (AppId& owner : partition) {
    if (owner == kInvalidApp) continue;
    if (need[owner] > 0) {
      --need[owner];
    } else {
      owner = kInvalidApp;
    }
  }
  AppId next = 0;
  for (AppId& owner : partition) {
    if (owner != kInvalidApp) continue;
    while (next < num_apps && need[next] == 0) ++next;
    if (next >= num_apps) break;
    owner = next;
    --need[next];
  }
  return true;
}

bool PolicyGovernor::low_confidence(Gpu& gpu) {
  if (estimator_ == nullptr) return false;
  FlightRecorder& rec = gpu.flight_recorder();
  if (estimator_->sanitized_estimates() != last_sanitized_) {
    rec.record(gpu.now(), FrEvent::kGovLowConfidenceHold, -1, -1,
               static_cast<u64>(GovernorHold::kSanitizedEstimate), epoch_);
    return true;
  }
  if (have_prev_slowdowns_) {
    const std::vector<SlowdownEstimate>& latest = estimator_->latest();
    const std::size_t n = std::min(latest.size(), prev_slowdowns_.size());
    for (std::size_t a = 0; a < n; ++a) {
      if (!latest[a].valid || prev_slowdowns_[a] <= 0.0) continue;
      const double cur = std::max(latest[a].slowdown_all, 1e-9);
      const double prev = prev_slowdowns_[a];
      const double ratio = cur > prev ? cur / prev : prev / cur;
      if (ratio > options_.jump_bound) {
        rec.record(gpu.now(), FrEvent::kGovLowConfidenceHold, -1,
                   static_cast<int>(a),
                   static_cast<u64>(GovernorHold::kEstimateJump), epoch_);
        return true;
      }
    }
  }
  return false;
}

void PolicyGovernor::trip_breaker(Gpu& gpu, AppId starved_app) {
  ++trips_i_;
  ++trips_;
  frozen_until_epoch_ = epoch_ + static_cast<u64>(options_.thrash_window);
  FlightRecorder& rec = gpu.flight_recorder();
  rec.record(gpu.now(), FrEvent::kGovBreakerTrip, -1, starved_app,
             static_cast<u64>(trips_i_), epoch_);
  if (trips_i_ >= options_.breaker_trips && !fell_back_even_) {
    fell_back_even_ = true;
    ++fallbacks_;
    rec.record(gpu.now(), FrEvent::kGovFallbackEven, -1, -1,
               static_cast<u64>(trips_i_), epoch_);
    const std::vector<AppId> even =
        even_partition(gpu.num_sms(), gpu.num_apps());
    if (even != gpu.desired_partition()) {
      // Supersedes any pending migration; the Gpu cancels obsolete drains.
      gpu.set_partition(even);
      migration_seen_ = true;
      migration_start_cycle_ = gpu.now();
      prev2_ = prev1_;
      prev1_ = even;
    }
  }
}

std::string PolicyGovernor::stalled_drain_detail(const Gpu& gpu) const {
  std::ostringstream ss;
  std::array<u64, kMaxApps> recovery{};
  for (int s = 0; s < gpu.num_sms(); ++s) {
    const SmCore& sm = gpu.sm(s);
    if (!sm.draining() || sm.drained()) continue;
    sm.count_recovery_outstanding(recovery);
    ss << "sm=" << s << " app=" << sm.app()
       << " live_warps=" << sm.live_warps()
       << " active_blocks=" << sm.active_blocks()
       << " waiting_warps=" << sm.waiting_warps()
       << " out_queue=" << sm.out_queue().size()
       << " retries_pending=" << sm.retries_pending() << "\n";
  }
  u64 outstanding = 0;
  for (const u64 v : recovery) outstanding += v;
  ss << "recovery_outstanding_total=" << outstanding;
  return ss.str();
}

void PolicyGovernor::check_drain_watchdog(Gpu& gpu) {
  if (!gpu.migration_in_progress()) {
    migration_seen_ = false;
    return;
  }
  if (!migration_seen_) {
    // A migration the governor did not forward itself (temporal switch,
    // harness split): stamp its first observation so even external drains
    // are budgeted.
    migration_seen_ = true;
    migration_start_cycle_ = gpu.now();
    return;
  }
  const Cycle pending = gpu.now() - migration_start_cycle_;
  if (pending <= options_.drain_budget) return;
  if (options_.force_preempt) {
    gpu.flight_recorder().record(gpu.now(), FrEvent::kGovMigrationAbort, -1,
                                 -1, pending, options_.drain_budget);
    ++stalls_aborted_;
    // Re-requesting the current owners cancels every outstanding drain:
    // the run continues on the partially migrated partition.
    gpu.set_partition(gpu.current_partition());
    migration_seen_ = false;
    return;
  }
  SIM_FAIL(SimError(SimErrorKind::kMigrationStalled, "sched.governor",
                    "SM-drain migration failed to converge within the "
                    "governor's drain budget")
               .cycle(gpu.now())
               .detail("pending_cycles", pending)
               .detail("drain_budget", options_.drain_budget)
               .detail("stalled_sms", stalled_drain_detail(gpu)));
}

void PolicyGovernor::on_interval(const IntervalSample& sample, Gpu& gpu) {
  (void)sample;
  if (!options_.enabled) return;
  ++epoch_;
  check_drain_watchdog(gpu);

  // Starvation breaker: an app pinned at (or below) the floor for a full
  // sliding window of epochs.
  if (!fell_back_even_ && gpu.num_apps() > 1) {
    for (AppId a = 0; a < gpu.num_apps(); ++a) {
      if (gpu.sms_assigned(a) <= options_.min_sms_per_app) {
        if (++starve_count_[a] >= options_.starvation_window) {
          starve_count_[a] = 0;
          trip_breaker(gpu, a);
        }
      } else {
        starve_count_[a] = 0;
      }
    }
  }

  // The partition is "last-good" once it has settled; low-confidence
  // epochs hold it by not forwarding anything new.
  if (!gpu.migration_in_progress()) {
    last_good_ = gpu.current_partition();
  }

  // Confidence cursors for the next epoch's gate.
  if (estimator_ != nullptr) {
    last_sanitized_ = estimator_->sanitized_estimates();
    const std::vector<SlowdownEstimate>& latest = estimator_->latest();
    prev_slowdowns_.assign(latest.size(), 0.0);
    for (std::size_t a = 0; a < latest.size(); ++a) {
      prev_slowdowns_[a] = latest[a].valid ? latest[a].slowdown_all : 0.0;
    }
    have_prev_slowdowns_ = !latest.empty();
  }
}

void PolicyGovernor::load_state(StateReader& r) {
  r.expect_tag("GOVN");
  epoch_ = r.get_u64();
  migration_seen_ = r.get_bool();
  migration_start_cycle_ = r.get_u64();
  const auto read_partition = [&r](std::vector<AppId>& p, const char* what) {
    p.resize(r.get_count(4096, what));
    for (AppId& a : p) a = r.get_i32();
  };
  read_partition(last_good_, "governor last-good partition");
  read_partition(prev1_, "governor previous partition");
  read_partition(prev2_, "governor older partition");
  flap_count_ = r.get_i32();
  last_flap_epoch_ = r.get_u64();
  for (i32& v : starve_count_) v = r.get_i32();
  trips_i_ = r.get_i32();
  frozen_until_epoch_ = r.get_u64();
  fell_back_even_ = r.get_bool();
  last_sanitized_ = r.get_u64();
  have_prev_slowdowns_ = r.get_bool();
  prev_slowdowns_.resize(
      r.get_count(kMaxApps, "governor previous slowdowns"));
  for (double& v : prev_slowdowns_) v = r.get_double();
  clamps_ = r.get_u64();
  rejects_ = r.get_u64();
  holds_ = r.get_u64();
  trips_ = r.get_u64();
  fallbacks_ = r.get_u64();
  stalls_aborted_ = r.get_u64();
}

}  // namespace gpusim
