#include "sched/policies.hpp"

#include <algorithm>
#include <cassert>

#include "sched/governor.hpp"

namespace gpusim {

std::vector<AppId> LeftoverPolicy::allocation(
    int num_sms, const std::vector<int>& max_sms) {
  std::vector<AppId> out(num_sms, kInvalidApp);
  int next_sm = 0;
  for (AppId app = 0; app < static_cast<AppId>(max_sms.size()); ++app) {
    const int take = std::min(max_sms[app], num_sms - next_sm);
    for (int k = 0; k < take; ++k) out[next_sm++] = app;
    if (next_sm >= num_sms) break;  // nothing left over
  }
  return out;
}

void TemporalPolicy::on_cycle(Cycle now, Gpu& gpu) {
  if (!started_) {
    started_ = true;
    current_ = 0;
    next_switch_ = now + options_.quantum;
    gpu.set_partition(std::vector<AppId>(gpu.num_sms(), current_));
    return;
  }
  if (now < next_switch_) return;
  if (gpu.migration_in_progress()) return;  // previous switch still draining
  current_ = (current_ + 1) % gpu.num_apps();
  next_switch_ = now + options_.quantum;
  ++switches_;
  gpu.set_partition(std::vector<AppId>(gpu.num_sms(), current_));
}

DaseQosPolicy::DaseQosPolicy(DaseModel* model, DaseQosOptions options)
    : model_(model), options_(options) {
  assert(model_ != nullptr);
  assert(options_.target_slowdown >= 1.0);
}

void DaseQosPolicy::on_interval(const IntervalSample& sample, Gpu& gpu) {
  (void)sample;
  if (++intervals_seen_ <= options_.warmup_intervals) return;
  if (gpu.migration_in_progress()) return;

  const int num_apps = gpu.num_apps();
  const AppId qos = options_.qos_app;
  assert(qos >= 0 && qos < num_apps);
  const auto& estimates = model_->latest();
  if (static_cast<int>(estimates.size()) != num_apps ||
      !estimates[qos].valid) {
    return;
  }

  const double estimate = estimates[qos].slowdown_all;
  const int have = gpu.sms_assigned(qos);
  int want = have;
  if (estimate > options_.target_slowdown) {
    want = have + 1;  // grow: the QoS target is being violated
  } else if (estimate <
             options_.target_slowdown * (1.0 - options_.release_margin)) {
    want = have - 1;  // shrink: give head-room back to the others
  }
  // Feasibility: every other app keeps its minimum share.
  const int max_qos_sms =
      gpu.num_sms() - options_.min_sms_per_app * (num_apps - 1);
  want = std::clamp(want, options_.min_sms_per_app, max_qos_sms);
  if (want == have) return;

  // Build the new assignment: QoS app first, the rest split evenly.
  std::vector<AppId> assignment = gpu.current_partition();
  if (want > have) {
    // Take SMs from the most-endowed other app, one at a time.
    int needed = want - have;
    while (needed > 0) {
      AppId victim = kInvalidApp;
      int victim_sms = options_.min_sms_per_app;
      for (AppId a = 0; a < num_apps; ++a) {
        if (a == qos) continue;
        const int sms = static_cast<int>(
            std::count(assignment.begin(), assignment.end(), a));
        if (sms > victim_sms) {
          victim = a;
          victim_sms = sms;
        }
      }
      if (victim == kInvalidApp) break;
      const auto it =
          std::find(assignment.begin(), assignment.end(), victim);
      *it = qos;
      --needed;
    }
  } else {
    // Release SMs to the least-endowed other app.
    int to_release = have - want;
    while (to_release > 0) {
      AppId beneficiary = kInvalidApp;
      int beneficiary_sms = gpu.num_sms() + 1;
      for (AppId a = 0; a < num_apps; ++a) {
        if (a == qos) continue;
        const int sms = static_cast<int>(
            std::count(assignment.begin(), assignment.end(), a));
        if (sms < beneficiary_sms) {
          beneficiary = a;
          beneficiary_sms = sms;
        }
      }
      const auto it = std::find(assignment.begin(), assignment.end(), qos);
      assert(it != assignment.end());
      *it = beneficiary;
      --to_release;
    }
  }
  if (sink_ != nullptr) {
    if (sink_->propose_partition(gpu, assignment)) ++adjustments_;
  } else {
    gpu.set_partition(assignment);
    ++adjustments_;
  }
}

}  // namespace gpusim
