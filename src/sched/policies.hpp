// Additional SM-allocation policies referenced by the paper.
//
// * LeftoverPolicy — the paper's Section II background: current GPUs most
//   likely use LEFTOVER, which "launches a next kernel only when there are
//   enough remaining resources after the previous kernel was issued".  A
//   grid large enough to occupy the whole GPU therefore starves every
//   later application — the paper's argument for flexible spatial
//   multitasking, reproducible with bench/policy_comparison.
//
// * TemporalPolicy — conventional temporal multitasking (Section II):
//   applications time-share the *entire* GPU in turns.  Switches use the
//   same drain mechanism as SM migration, so the context-switch cost the
//   paper's related work worries about (Chimera et al.) appears naturally.
//
// * DaseQosPolicy — the paper's stated future work ("design more
//   slowdown-aware scheduling policies to provide better QoS guarantees"):
//   a feedback controller that holds one designated application's
//   DASE-estimated slowdown below a target by growing/shrinking its SM
//   share, leaving the rest to the other applications.
#pragma once

#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"

namespace gpusim {

class PartitionSink;

/// Gives the first application every SM it can occupy; later applications
/// only receive SMs the first one left over (none, for full-GPU grids).
class LeftoverPolicy final : public IntervalObserver {
 public:
  /// Applies the LEFTOVER allocation for `num_apps` applications on
  /// `num_sms` SMs given each app's maximum occupancy in SMs (a full-GPU
  /// grid occupies them all).
  static std::vector<AppId> allocation(int num_sms,
                                       const std::vector<int>& max_sms);

  void on_interval(const IntervalSample&, Gpu&) override {}  // static policy
};

struct TemporalOptions {
  /// Cycles each application owns the full GPU before the next switch is
  /// requested (drains add on top).
  Cycle quantum = 100'000;
};

class TemporalPolicy final : public CycleHook {
 public:
  explicit TemporalPolicy(TemporalOptions options = {})
      : options_(options) {}

  void on_cycle(Cycle now, Gpu& gpu) override;

  u64 switches() const { return switches_; }

  void save_state(StateWriter& w) const override { write_hook_state(w); }
  void hash_state(Hasher& h) const override { write_hook_state(h); }
  void load_state(StateReader& r) override {
    r.expect_tag("TMPL");
    current_ = r.get_i32();
    next_switch_ = r.get_u64();
    started_ = r.get_bool();
    switches_ = r.get_u64();
  }

 private:
  template <typename Sink>
  void write_hook_state(Sink& s) const {
    s.put_tag("TMPL");
    s.put_i32(current_);
    s.put_u64(next_switch_);
    s.put_bool(started_);
    s.put_u64(switches_);
  }

  TemporalOptions options_;
  AppId current_ = 0;
  Cycle next_switch_ = 0;
  bool started_ = false;
  u64 switches_ = 0;
};

struct DaseQosOptions {
  AppId qos_app = 0;
  /// The slowdown the QoS application must stay at or below.
  double target_slowdown = 2.0;
  /// Hysteresis band: shrink only when the estimate is below
  /// target * (1 - release_margin).
  double release_margin = 0.15;
  int warmup_intervals = 1;
  int min_sms_per_app = 1;
};

class DaseQosPolicy final : public IntervalObserver {
 public:
  DaseQosPolicy(DaseModel* model, DaseQosOptions options = {});

  void on_interval(const IntervalSample& sample, Gpu& gpu) override;

  /// Routes partition changes through `sink` (the PolicyGovernor) instead
  /// of calling Gpu::set_partition directly; nullptr restores the direct
  /// path.  adjustments() only counts proposals the sink forwarded.
  void set_partition_sink(PartitionSink* sink) { sink_ = sink; }

  u64 adjustments() const { return adjustments_; }

  void save_state(StateWriter& w) const override { write_obs_state(w); }
  void hash_state(Hasher& h) const override { write_obs_state(h); }
  void load_state(StateReader& r) override {
    r.expect_tag("QOSP");
    intervals_seen_ = r.get_i32();
    adjustments_ = r.get_u64();
  }

 private:
  template <typename Sink>
  void write_obs_state(Sink& s) const {
    s.put_tag("QOSP");
    s.put_i32(intervals_seen_);
    s.put_u64(adjustments_);
  }

  DaseModel* model_;
  DaseQosOptions options_;
  PartitionSink* sink_ = nullptr;
  int intervals_seen_ = 0;
  u64 adjustments_ = 0;
};

}  // namespace gpusim
