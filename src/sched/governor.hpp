// PolicyGovernor — run-time safety contracts around every partitioning
// policy (DESIGN.md §14).
//
// The paper's closed loop (DASE estimates -> Eq. 28-30 search -> SM-drain
// migration) runs unguarded: a pathological estimate, a drain that never
// converges, or oscillating decisions can starve an application or wedge
// the run with only the generic progress watchdog to catch it.  The
// governor sits between the policies and the Gpu and enforces:
//
//   1. Decision validation — every proposed partition is checked against
//      invariants (one owner per SM, known app ids, every app at or above
//      the min-SM floor, per-epoch reassignment delta bounded) before it
//      reaches Gpu::set_partition; out-of-bounds proposals are clamped
//      (kGovClamp events), structurally invalid ones raise a typed
//      SimError.
//   2. Drain watchdog — a migration still pending after
//      governor_drain_budget cycles raises SimError(kMigrationStalled)
//      with per-SM/app drain detail, or — with governor_force_preempt —
//      is cancelled in place (kGovMigrationAbort) and the run continues
//      on the partially migrated partition.
//   3. Starvation / thrash breakers — an app pinned at the floor for
//      governor_starvation_window consecutive epochs, or a partition flap
//      (A->B->A within governor_thrash_window epochs), trips a circuit
//      breaker that freezes the partition (kGovBreakerTrip); after
//      governor_breaker_trips trips the governor abandons the policy and
//      falls back to the even split permanently (kGovFallbackEven).
//   4. Estimate confidence gating — an epoch whose estimates needed the
//      sanitizer (PR 4 clamp counter advanced) or jumped more than
//      governor_jump_bound relative to the previous epoch is
//      low-confidence: the proposal is not forwarded and the last-good
//      partition is held (kGovLowConfidenceHold).
//
// The governor is attached to every co-run as the LAST interval observer
// regardless of policy, with identical serialized shape whether enabled or
// not, so snapshot walks and observer registration order never depend on
// the --governor flag.  Disabled, it is a pure pass-through: proposals go
// straight to the Gpu and on_interval does nothing, reproducing pre-
// governor behavior bit-exactly.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "dase/estimator.hpp"
#include "gpu/simulator.hpp"

namespace gpusim {

/// Where policy partition proposals go when a governor is wired in.
/// Policies call propose_partition instead of Gpu::set_partition; the
/// return value says whether the (possibly clamped) proposal actually
/// reached the GPU, so policy action counters only count real migrations.
class PartitionSink {
 public:
  virtual ~PartitionSink() = default;
  virtual bool propose_partition(Gpu& gpu,
                                 const std::vector<AppId>& desired) = 0;
};

/// Payload `a` of kGovProposalRejected events.
enum class GovernorReject : u64 {
  kBreakerFrozen = 0,  ///< a tripped breaker is holding the partition
  kFellBackEven = 1    ///< governor already fell back to the even split
};

/// Payload `a` of kGovLowConfidenceHold events.
enum class GovernorHold : u64 {
  kSanitizedEstimate = 0,  ///< the estimator sanitizer repaired this epoch
  kEstimateJump = 1        ///< epoch-to-epoch estimate ratio over the bound
};

struct GovernorOptions {
  bool enabled = true;
  int num_sms = 16;
  int min_sms_per_app = 1;
  Cycle drain_budget = 1'000'000;
  int max_delta = 8;
  int starvation_window = 6;
  int thrash_window = 8;
  int breaker_trips = 3;
  double jump_bound = 8.0;
  bool force_preempt = false;

  /// Governor knobs from a validated GpuConfig; `enabled` from the caller
  /// (--governor / --no-governor).
  static GovernorOptions from_config(const GpuConfig& cfg, bool enabled_flag);
};

class PolicyGovernor final : public IntervalObserver, public PartitionSink {
 public:
  /// `estimator` (usually the DASE model) feeds the confidence gate;
  /// nullptr disables gating (no estimator attached to this run).
  explicit PolicyGovernor(GovernorOptions options,
                          const SlowdownEstimator* estimator = nullptr);

  bool enabled() const { return options_.enabled; }

  // -- PartitionSink -----------------------------------------------------
  bool propose_partition(Gpu& gpu, const std::vector<AppId>& desired) override;

  // -- IntervalObserver --------------------------------------------------
  /// Runs after every policy at the same boundary: drain watchdog,
  /// starvation bookkeeping, last-good capture, confidence cursors.
  void on_interval(const IntervalSample& sample, Gpu& gpu) override;

  // Intervention counters (lifetime, serialized).
  u64 clamps() const { return clamps_; }
  u64 rejects() const { return rejects_; }
  u64 holds() const { return holds_; }
  u64 breaker_trips() const { return trips_; }
  u64 fallbacks() const { return fallbacks_; }
  u64 stalls_aborted() const { return stalls_aborted_; }
  bool fell_back_even() const { return fell_back_even_; }
  /// Total interventions of any kind (clamp + reject + hold + trip + abort).
  u64 interventions() const {
    return clamps_ + rejects_ + holds_ + trips_ + fallbacks_ +
           stalls_aborted_;
  }
  const std::vector<AppId>& last_good_partition() const { return last_good_; }

  // -- SimState ----------------------------------------------------------
  // Serialized shape is identical whether the governor is enabled or not
  // (a disabled governor simply never mutates any of it), so --governor /
  // --no-governor snapshots stay interchangeable.
  void save_state(StateWriter& w) const override { write_obs_state(w); }
  void hash_state(Hasher& h) const override { write_obs_state(h); }
  void load_state(StateReader& r) override;

 private:
  template <typename Sink>
  void write_obs_state(Sink& s) const {
    s.put_tag("GOVN");
    s.put_u64(epoch_);
    s.put_bool(migration_seen_);
    s.put_u64(migration_start_cycle_);
    write_partition(s, last_good_);
    write_partition(s, prev1_);
    write_partition(s, prev2_);
    s.put_i32(flap_count_);
    s.put_u64(last_flap_epoch_);
    for (const i32 v : starve_count_) s.put_i32(v);
    s.put_i32(trips_i_);
    s.put_u64(frozen_until_epoch_);
    s.put_bool(fell_back_even_);
    s.put_u64(last_sanitized_);
    s.put_bool(have_prev_slowdowns_);
    s.put_u64(prev_slowdowns_.size());
    for (const double v : prev_slowdowns_) s.put_double(v);
    s.put_u64(clamps_);
    s.put_u64(rejects_);
    s.put_u64(holds_);
    s.put_u64(trips_);
    s.put_u64(fallbacks_);
    s.put_u64(stalls_aborted_);
  }
  template <typename Sink>
  static void write_partition(Sink& s, const std::vector<AppId>& p) {
    s.put_u64(p.size());
    for (const AppId a : p) s.put_i32(a);
  }

  /// Validates structure (typed SimError) and clamps floor/delta
  /// violations in place; returns true when anything was clamped.
  bool validate_and_clamp(Gpu& gpu, std::vector<AppId>& partition);
  /// True when this epoch's estimates are not trustworthy; records the
  /// hold event with the offending app/reason.
  bool low_confidence(Gpu& gpu);
  /// One breaker trip (starved app, or kInvalidApp for thrash); freezes
  /// the partition and falls back to the even split on the final trip.
  void trip_breaker(Gpu& gpu, AppId starved_app);
  void check_drain_watchdog(Gpu& gpu);
  std::string stalled_drain_detail(const Gpu& gpu) const;

  GovernorOptions options_;
  const SlowdownEstimator* estimator_;

  u64 epoch_ = 0;
  bool migration_seen_ = false;
  Cycle migration_start_cycle_ = 0;
  std::vector<AppId> last_good_;
  std::vector<AppId> prev1_;  ///< last forwarded partition
  std::vector<AppId> prev2_;  ///< forwarded partition before prev1_
  i32 flap_count_ = 0;
  u64 last_flap_epoch_ = 0;
  std::array<i32, kMaxApps> starve_count_{};
  i32 trips_i_ = 0;  ///< trips counted against the fallback limit
  u64 frozen_until_epoch_ = 0;
  bool fell_back_even_ = false;
  u64 last_sanitized_ = 0;
  bool have_prev_slowdowns_ = false;
  std::vector<double> prev_slowdowns_;

  u64 clamps_ = 0;
  u64 rejects_ = 0;
  u64 holds_ = 0;
  u64 trips_ = 0;
  u64 fallbacks_ = 0;
  u64 stalls_aborted_ = 0;
};

}  // namespace gpusim
