// DASE-Fair — fairness-oriented SM allocation policy (paper Section VII).
//
// At every estimation interval the policy takes DASE's current slowdown
// estimates, converts them to reciprocals (Eq. 28), linearly interpolates
// each application's reciprocal to every possible SM share — towards 1 at
// all SMs (Eq. 29) and towards 0 at zero SMs (Eq. 30) — exhaustively
// searches all SM partitions for the one minimising predicted unfairness
// (Eq. 2), and migrates SMs by draining when the predicted improvement
// clears a hysteresis threshold.
#pragma once

#include <string>
#include <vector>

#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "kernels/kernel_profile.hpp"

namespace gpusim {

class PartitionSink;

struct DaseFairOptions {
  /// Intervals to observe before the first repartition decision.
  int warmup_intervals = 1;
  /// Minimum predicted relative unfairness improvement to migrate
  /// (hysteresis against thrashing on estimation noise).
  double min_improvement = 0.05;
  /// Every application keeps at least this many SMs.
  int min_sms_per_app = 1;

  /// Cross-checks the knobs; throws SimError(kConfig) on an inconsistent
  /// combination.  Called by the policy constructor.
  void validate() const;
};

/// Paper Section VII: the policy "is unsuitable for some kernels, which
/// have too less thread blocks or are too short".  Such kernels cannot
/// populate a larger SM share (no blocks left) or finish before draining
/// completes, so DASE-Fair leaves the partition untouched for them.
bool dase_fair_eligible(const KernelProfile& profile);

class DaseFairPolicy final : public IntervalObserver {
 public:
  /// `model` must be registered on the Simulation *before* this policy so
  /// its estimates are fresh when the policy fires.
  DaseFairPolicy(DaseModel* model, DaseFairOptions options = {});

  void on_interval(const IntervalSample& sample, Gpu& gpu) override;

  /// Routes partition changes through `sink` (the PolicyGovernor) instead
  /// of calling Gpu::set_partition directly; nullptr restores the direct
  /// path.  repartitions() only counts proposals the sink forwarded.
  void set_partition_sink(PartitionSink* sink) { sink_ = sink; }

  u64 repartitions() const { return repartitions_; }

  /// Predicts the reciprocal slowdown of an app at `x` SMs from its
  /// current estimate at `assigned` SMs out of `total` (Eq. 29/30).
  static double interpolate_reciprocal(double reciprocal, int assigned,
                                       int x, int total);

  /// Exhaustive minimum-unfairness search: returns the best per-app SM
  /// counts for `total` SMs given current reciprocals and assignments.
  static std::vector<int> search_best_split(
      const std::vector<double>& reciprocals,
      const std::vector<int>& assigned, int total, int min_per_app,
      double* best_unfairness_out = nullptr);

  void save_state(StateWriter& w) const override { write_obs_state(w); }
  void hash_state(Hasher& h) const override { write_obs_state(h); }
  void load_state(StateReader& r) override {
    r.expect_tag("FAIR");
    intervals_seen_ = r.get_i32();
    repartitions_ = r.get_u64();
  }

 private:
  template <typename Sink>
  void write_obs_state(Sink& s) const {
    s.put_tag("FAIR");
    s.put_i32(intervals_seen_);
    s.put_u64(repartitions_);
  }

  std::vector<AppId> build_assignment(Gpu& gpu,
                                      const std::vector<int>& counts) const;

  DaseModel* model_;
  DaseFairOptions options_;
  PartitionSink* sink_ = nullptr;
  int intervals_seen_ = 0;
  u64 repartitions_ = 0;
};

}  // namespace gpusim
