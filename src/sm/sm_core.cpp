#include "sm/sm_core.hpp"

namespace gpusim {

namespace {
constexpr int kTxnDispatchPerCycle = 2;  // L1/LSU transaction bandwidth
constexpr int kOutQueueDepth = 16;
}  // namespace

SmCore::SmCore(const GpuConfig& cfg, SmId id, const AddressMap& address_map)
    : cfg_(cfg),
      id_(id),
      address_map_(address_map),
      l1_(cfg.l1_num_sets(), cfg.l1_assoc, cfg.line_bytes),
      l1_mshr_(cfg.l1_mshr_entries),
      out_queue_(kOutQueueDepth) {
  warps_.resize(cfg.max_warps_per_sm);
  blocks_.resize(cfg.max_blocks_per_sm);
}

void SmCore::assign(BlockSource* source, Cycle now) {
  SIM_INVARIANT(source != nullptr, "sm.core", "assign() with null source");
  SIM_CHECK(source_ == nullptr,
            SimError(SimErrorKind::kInvariant, "sm.core",
                     "assign() on an SM that was not released")
                .app(app())
                .detail("sm", id_));
  source_ = source;
  draining_ = false;
  refill_blocks(now);
}

bool SmCore::drained() const {
  // dup_expect_ means a response for this SM is (or was) still in the
  // network; releasing the core before it lands would deliver it to a
  // reassigned SM.  retries_ is implied by l1_mshr_.in_flight().
  if (!pending_txns_.empty() || !local_hits_.empty() || !out_queue_.empty() ||
      l1_mshr_.in_flight() != 0 || !dup_expect_.empty()) {
    return false;
  }
  for (const WarpCtx& w : warps_) {
    if (w.state == WarpCtx::State::kReady ||
        w.state == WarpCtx::State::kWaitingMem) {
      return false;
    }
  }
  return true;
}

void SmCore::release() {
  SIM_CHECK(drained(),
            SimError(SimErrorKind::kInvariant, "sm.core",
                     "release() of an SM still holding work")
                .app(app())
                .detail("sm", id_)
                .detail("live_warps", live_warps())
                .detail("out_queue", out_queue_.size())
                .detail("l1_mshr_in_flight", l1_mshr_.in_flight()));
  source_ = nullptr;
  draining_ = false;
  last_issued_ = -1;
  ready_warps_ = 0;
  for (WarpCtx& w : warps_) w = WarpCtx{};
  for (BlockSlot& b : blocks_) b = BlockSlot{};
  l1_.clear();
  l1_mshr_.clear();
  retries_.clear();
  dup_expect_.clear();
  next_retry_deadline_ = kNeverCycle;
}

int SmCore::max_concurrent_blocks() const {
  if (source_ == nullptr) return 0;
  const KernelProfile& profile = source_->profile();
  const int by_warps = cfg_.max_warps_per_sm / profile.warps_per_block;
  int limit = std::min(cfg_.max_blocks_per_sm, std::max(1, by_warps));
  if (profile.max_concurrent_blocks > 0) {
    limit = std::min(limit, profile.max_concurrent_blocks);
  }
  return limit;
}

int SmCore::active_blocks() const {
  int n = 0;
  for (const BlockSlot& b : blocks_) n += b.active ? 1 : 0;
  return n;
}

int SmCore::live_warps() const {
  int n = 0;
  for (const WarpCtx& w : warps_) {
    n += (w.state == WarpCtx::State::kReady ||
          w.state == WarpCtx::State::kWaitingMem)
             ? 1
             : 0;
  }
  return n;
}

void SmCore::refill_blocks(Cycle now) {
  if (source_ == nullptr || draining_) return;
  const int limit = max_concurrent_blocks();
  if (active_blocks() >= limit) return;
  const KernelProfile& profile = source_->profile();

  for (int slot = 0; slot < static_cast<int>(blocks_.size()); ++slot) {
    if (blocks_[slot].active) continue;
    if (active_blocks() >= limit) break;
    // Gather free warp contexts for one block.
    std::vector<int> free_ctxs;
    for (int w = 0; w < static_cast<int>(warps_.size()); ++w) {
      if (warps_[w].state == WarpCtx::State::kUnused ||
          warps_[w].state == WarpCtx::State::kDone) {
        free_ctxs.push_back(w);
        if (static_cast<int>(free_ctxs.size()) == profile.warps_per_block) {
          break;
        }
      }
    }
    if (static_cast<int>(free_ctxs.size()) < profile.warps_per_block) break;
    const std::optional<u64> block = source_->try_alloc_block();
    if (!block.has_value()) break;

    blocks_[slot].active = true;
    blocks_[slot].block_index = *block;
    blocks_[slot].warps_remaining = profile.warps_per_block;
    if (recorder_ != nullptr) {
      recorder_->record(now, FrEvent::kBlockDispatch, id_, source_->app(),
                        *block, 0);
    }
    blocks_[slot].stream = AddressStream::make_block_stream(
        profile, source_->app_seed(), *block);
    for (int i = 0; i < profile.warps_per_block; ++i) {
      WarpCtx& w = warps_[free_ctxs[i]];
      w = WarpCtx{};
      w.state = WarpCtx::State::kReady;
      ++ready_warps_;
      w.budget = profile.instrs_per_warp;
      w.block_slot = slot;
      w.stream.emplace(&profile, source_->app(), source_->app_seed(), *block,
                       i, &blocks_[slot].stream);
      w.compute_remaining = w.stream->next_compute_run();
    }
  }
}

void SmCore::cycle(Cycle now) {
  // 0. Reissue timed-out misses (no-op unless mshr_retry_enabled).
  check_retries(now);

  // 1. Mature L1 hits.
  while (!local_hits_.empty() && local_hits_.front().first <= now) {
    complete_txn(local_hits_.front().second);
    local_hits_.pop_front();
  }

  // 2. Dispatch pending memory transactions through the L1.
  dispatch_pending(now);

  // 3. Issue stage.
  issue(now);

  // 4. Keep block slots occupied.
  refill_blocks(now);
}

void SmCore::dispatch_pending(Cycle now) {
  for (int n = 0; n < kTxnDispatchPerCycle && !pending_txns_.empty(); ++n) {
    const PendingTxn txn = pending_txns_.front();
    const u64 line = txn.addr;

    if (l1_mshr_.contains(line)) {
      counters_.l1_accesses.add();
      l1_mshr_.allocate(line, {id_, txn.warp, app()});
      pending_txns_.pop_front();
      continue;
    }
    if (l1_.probe(line)) {
      counters_.l1_accesses.add();
      l1_.lookup_touch(line, app());
      counters_.l1_hits.add();
      local_hits_.emplace_back(now + cfg_.l1_hit_latency, txn.warp);
      pending_txns_.pop_front();
      continue;
    }
    if (l1_mshr_.full() || out_queue_.full()) break;  // retry next cycle
    counters_.l1_accesses.add();
    l1_.lookup_touch(line, app());  // records the L1 miss
    l1_mshr_.allocate(line, {id_, txn.warp, app()});
    MemRequestPacket pkt;
    pkt.line_addr = line;
    pkt.app = app();
    pkt.sm = id_;
    pkt.warp = txn.warp;
    pkt.dest = address_map_.partition_of(line);
    pkt.ready = now;
    const bool pushed = out_queue_.try_push(pkt);
    SIM_CHECK(pushed, SimError(SimErrorKind::kQueueOverflow, "sm.core",
                               "out queue overflow after full() check")
                          .cycle(now)
                          .app(app())
                          .detail("sm", id_)
                          .detail("occupancy", out_queue_.size()));
    if (taps_ != nullptr) taps_->requests_sent.add(app());
    if (cfg_.mshr_retry_enabled) {
      RetryState rs;
      rs.pkt = pkt;
      rs.deadline = now + cfg_.mshr_retry_timeout;
      retries_[line] = rs;
      if (rs.deadline < next_retry_deadline_) next_retry_deadline_ = rs.deadline;
    }
    pending_txns_.pop_front();
  }
}

void SmCore::recompute_next_retry_deadline() {
  next_retry_deadline_ = kNeverCycle;
  for (const auto& [line, rs] : retries_) {
    if (rs.deadline < next_retry_deadline_) next_retry_deadline_ = rs.deadline;
  }
}

void SmCore::check_retries(Cycle now) {
  if (!cfg_.mshr_retry_enabled || next_retry_deadline_ > now) return;
  for (auto& [line, rs] : retries_) {
    if (rs.deadline > now) continue;
    if (rs.attempts >= cfg_.mshr_retry_max && recorder_ != nullptr) {
      // Recorded before the throw so the crash bundle's timeline ends with
      // the event that killed the run.
      recorder_->record(now, FrEvent::kMshrExhausted, id_, app(), line,
                        static_cast<u64>(rs.attempts));
    }
    SIM_CHECK(rs.attempts < cfg_.mshr_retry_max,
              SimError(SimErrorKind::kRecoveryExhausted, "sm.core",
                       "miss response never arrived: reissue budget spent")
                  .cycle(now)
                  .app(app())
                  .detail("sm", id_)
                  .detail("line", line)
                  .detail("reissues", rs.attempts)
                  .detail("mshr_retry_max", cfg_.mshr_retry_max));
    if (out_queue_.full()) {
      rs.deadline = now + 1;  // retry the reissue as soon as a slot frees
      continue;
    }
    MemRequestPacket pkt = rs.pkt;
    pkt.ready = now;
    const bool pushed = out_queue_.try_push(pkt);
    SIM_CHECK(pushed, SimError(SimErrorKind::kQueueOverflow, "sm.core",
                               "out queue overflow on retry reissue")
                          .cycle(now)
                          .app(app())
                          .detail("sm", id_));
    if (taps_ != nullptr) {
      taps_->requests_sent.add(pkt.app);
      taps_->retries_issued.add(pkt.app);
    }
    ++rs.attempts;
    // Exponential backoff: timeout doubles with each reissue.
    rs.deadline = now + (cfg_.mshr_retry_timeout << rs.attempts);
    if (recorder_ != nullptr) {
      recorder_->record(now, FrEvent::kMshrRetry, id_, pkt.app, line,
                        static_cast<u64>(rs.attempts));
    }
  }
  recompute_next_retry_deadline();
}

void SmCore::issue(Cycle now) {
  (void)now;
  // Greedy-then-oldest: stick with the last issued warp while it stays
  // ready, otherwise take the lowest-indexed ready warp.
  WarpId pick = -1;
  if (last_issued_ >= 0 &&
      warps_[last_issued_].state == WarpCtx::State::kReady) {
    pick = last_issued_;
  } else {
    for (int w = 0; w < static_cast<int>(warps_.size()); ++w) {
      if (warps_[w].state == WarpCtx::State::kReady) {
        pick = w;
        break;
      }
    }
  }

  if (pick < 0) {
    bool any_waiting = false;
    bool any_live = false;
    for (const WarpCtx& w : warps_) {
      any_waiting |= w.state == WarpCtx::State::kWaitingMem;
      any_live |= w.state != WarpCtx::State::kUnused &&
                  w.state != WarpCtx::State::kDone;
    }
    if (any_waiting) {
      counters_.mem_stall_cycles.add();
    } else if (!any_live) {
      counters_.idle_cycles.add();
    }
    return;
  }

  WarpCtx& warp = warps_[pick];
  last_issued_ = pick;
  counters_.instructions.add();
  counters_.issue_cycles.add();
  if (instr_sink_ != nullptr) instr_sink_->add(app());
  ++warp.instrs_done;

  if (warp.compute_remaining > 0) {
    --warp.compute_remaining;
    if (warp.instrs_done >= warp.budget) retire_warp(pick);
    return;
  }

  // Memory instruction: generate coalesced transactions.
  counters_.mem_instructions.add();
  addr_scratch_.clear();
  warp.stream->next_mem_instr(addr_scratch_);
  warp.compute_remaining = warp.stream->next_compute_run();
  warp.outstanding = static_cast<int>(addr_scratch_.size());
  warp.state = WarpCtx::State::kWaitingMem;
  --ready_warps_;
  for (u64 addr : addr_scratch_) {
    pending_txns_.push_back({pick, addr});
  }
}

void SmCore::complete_txn(WarpId warp_id) {
  WarpCtx& warp = warps_[warp_id];
  SIM_CHECK(warp.state == WarpCtx::State::kWaitingMem && warp.outstanding > 0,
            SimError(SimErrorKind::kInvariant, "sm.core",
                     "memory completion for a warp that is not waiting "
                     "(duplicated response?)")
                .app(app())
                .detail("sm", id_)
                .detail("warp", warp_id)
                .detail("state", static_cast<int>(warp.state))
                .detail("outstanding", warp.outstanding));
  if (--warp.outstanding == 0) {
    if (warp.instrs_done >= warp.budget) {
      retire_warp(warp_id);
    } else {
      warp.state = WarpCtx::State::kReady;
      ++ready_warps_;
    }
  }
}

void SmCore::retire_warp(WarpId warp_id) {
  WarpCtx& warp = warps_[warp_id];
  if (warp.state == WarpCtx::State::kReady) --ready_warps_;
  warp.state = WarpCtx::State::kDone;
  BlockSlot& block = blocks_[warp.block_slot];
  SIM_CHECK(block.active && block.warps_remaining > 0,
            SimError(SimErrorKind::kInvariant, "sm.core",
                     "warp retired into an inactive or exhausted block slot")
                .app(app())
                .detail("sm", id_)
                .detail("block_slot", warp.block_slot)
                .detail("warps_remaining", block.warps_remaining));
  if (--block.warps_remaining == 0) {
    block.active = false;
    source_->on_block_complete(block.block_index);
    // Free every context of this block for reuse.
    for (WarpCtx& w : warps_) {
      if (w.block_slot == warp.block_slot &&
          w.state == WarpCtx::State::kDone) {
        w = WarpCtx{};
      }
    }
  }
}

void SmCore::load(StateReader& r, BlockSource* source) {
  source_ = source;
  r.expect_tag("SMCR");
  draining_ = r.get_bool();
  last_issued_ = r.get_i32();
  SIM_CHECK(last_issued_ >= -1 &&
                last_issued_ < static_cast<int>(warps_.size()),
            SimError(SimErrorKind::kSnapshot, "sm.core",
                     "corrupt last-issued warp index in snapshot")
                .detail("sm", id_)
                .detail("last_issued", last_issued_)
                .detail("warp_contexts", warps_.size()));
  ready_warps_ = r.get_i32();
  SIM_CHECK(ready_warps_ >= 0 &&
                ready_warps_ <= static_cast<int>(warps_.size()),
            SimError(SimErrorKind::kSnapshot, "sm.core",
                     "corrupt ready-warp count in snapshot")
                .detail("sm", id_)
                .detail("ready_warps", ready_warps_));
  for (BlockSlot& b : blocks_) {
    b.active = r.get_bool();
    b.block_index = r.get_u64();
    b.warps_remaining = r.get_i32();
    b.stream.base_line = r.get_u64();
    b.stream.cursor = r.get_u64();
  }
  for (WarpCtx& w : warps_) {
    w.stream.reset();
    const u8 state = r.get_u8();
    SIM_CHECK(state <= static_cast<u8>(WarpCtx::State::kDone),
              SimError(SimErrorKind::kSnapshot, "sm.core",
                       "corrupt warp state in snapshot")
                  .detail("sm", id_)
                  .detail("state", static_cast<int>(state)));
    w.state = static_cast<WarpCtx::State>(state);
    w.instrs_done = r.get_u64();
    w.budget = r.get_u64();
    w.compute_remaining = r.get_u64();
    w.outstanding = r.get_i32();
    w.block_slot = r.get_i32();
    // A live or retiring warp's block slot is dereferenced on the next
    // retire; a corrupt index must die here as a typed error, not as an
    // out-of-bounds store later.
    SIM_CHECK(w.state == WarpCtx::State::kUnused ||
                  (w.block_slot >= -1 &&
                   w.block_slot < static_cast<int>(blocks_.size())),
              SimError(SimErrorKind::kSnapshot, "sm.core",
                       "corrupt warp block-slot index in snapshot")
                  .detail("sm", id_)
                  .detail("block_slot", w.block_slot)
                  .detail("block_slots", blocks_.size()));
    if (r.get_bool()) {
      // Reconstruct the stream against the freshly restored block cursor,
      // then overwrite its RNG with the saved engine state (warp_in_block
      // only perturbs the constructor seed, so 0 is fine here).
      SIM_CHECK(source_ != nullptr && w.block_slot >= 0 &&
                    w.block_slot < static_cast<int>(blocks_.size()),
                SimError(SimErrorKind::kSnapshot, "sm.core",
                         "warp stream without a resolvable block source")
                    .detail("sm", id_)
                    .detail("block_slot", w.block_slot));
      BlockSlot& b = blocks_[w.block_slot];
      w.stream.emplace(&source_->profile(), source_->app(),
                       source_->app_seed(), b.block_index, 0, &b.stream);
      w.stream->load(r);
    }
  }
  const auto check_warp_index = [this](WarpId warp, const char* what) {
    SIM_CHECK(warp >= 0 && warp < static_cast<WarpId>(warps_.size()),
              SimError(SimErrorKind::kSnapshot, "sm.core",
                       "corrupt warp index in snapshot")
                  .detail("sm", id_)
                  .detail("what", what)
                  .detail("warp", warp)
                  .detail("warp_contexts", warps_.size()));
  };
  pending_txns_.clear();
  const u64 txns = r.get_count(1u << 20, "sm pending txns");
  for (u64 i = 0; i < txns; ++i) {
    PendingTxn t{};
    t.warp = r.get_i32();
    check_warp_index(t.warp, "pending txn");
    t.addr = r.get_u64();
    pending_txns_.push_back(t);
  }
  local_hits_.clear();
  const u64 hits = r.get_count(1u << 20, "sm local hits");
  for (u64 i = 0; i < hits; ++i) {
    const Cycle ready = r.get_u64();
    const WarpId warp = r.get_i32();
    check_warp_index(warp, "local hit");
    local_hits_.emplace_back(ready, warp);
  }
  l1_.load(r);
  l1_mshr_.load(r);
  out_queue_.load(r);
  counters_.load(r);
  retries_.clear();
  const u64 n_retries = r.get_count(1u << 20, "sm retry entries");
  for (u64 i = 0; i < n_retries; ++i) {
    const u64 line = r.get_u64();
    RetryState rs;
    read_item(r, rs.pkt);
    rs.deadline = r.get_u64();
    rs.attempts = r.get_i32();
    // attempts is a left-shift exponent in check_retries(); a corrupt value
    // would be undefined behaviour, not just a wrong backoff.
    SIM_CHECK(rs.attempts >= 0 && rs.attempts <= 62,
              SimError(SimErrorKind::kSnapshot, "sm.core",
                       "corrupt retry attempt count in snapshot")
                  .detail("sm", id_)
                  .detail("attempts", rs.attempts));
    retries_[line] = rs;
  }
  dup_expect_.clear();
  const u64 n_dups = r.get_count(1u << 20, "sm expected duplicates");
  for (u64 i = 0; i < n_dups; ++i) {
    const u64 line = r.get_u64();
    DupExpect d;
    d.count = r.get_i32();
    d.app = r.get_i32();
    dup_expect_[line] = d;
  }
  recompute_next_retry_deadline();
}

void SmCore::receive(const MemResponsePacket& resp) {
  if (cfg_.mshr_retry_enabled && !l1_mshr_.contains(resp.line_addr)) {
    // A line with no MSHR entry is either an expected duplicate (the slower
    // copy of an original-vs-retry race — absorb it) or a genuine rogue
    // double completion (fall through so Mshr::release raises the same
    // invariant it would without recovery).
    const auto it = dup_expect_.find(resp.line_addr);
    if (it != dup_expect_.end()) {
      if (--it->second.count == 0) dup_expect_.erase(it);
      if (taps_ != nullptr) taps_->duplicates_absorbed.add(resp.app);
      return;
    }
  }
  l1_.fill(resp.line_addr, resp.app);
  for (const MshrWaiter& w : l1_mshr_.release(resp.line_addr)) {
    complete_txn(w.warp);
  }
  if (cfg_.mshr_retry_enabled) {
    const auto it = retries_.find(resp.line_addr);
    if (it != retries_.end()) {
      // Every reissue beyond the copy just consumed is still in the system
      // (or was dropped); expect and absorb that many more responses.
      if (it->second.attempts > 0) {
        DupExpect& d = dup_expect_[resp.line_addr];
        d.count += it->second.attempts;
        d.app = it->second.pkt.app;
      }
      retries_.erase(it);
      recompute_next_retry_deadline();
    }
  }
}

}  // namespace gpusim
