// Interface through which an SM obtains thread blocks of its assigned
// kernel (the "SM driver" of the paper's Section II: when all warps of a
// thread block finish, a new block is assigned to occupy freed resources).
#pragma once

#include <optional>

#include "common/types.hpp"
#include "kernels/kernel_profile.hpp"

namespace gpusim {

class BlockSource {
 public:
  virtual ~BlockSource() = default;

  /// Allocates the next thread block; std::nullopt when the grid is
  /// exhausted and the launcher does not restart the kernel.
  virtual std::optional<u64> try_alloc_block() = 0;

  /// Called when every warp of the block has retired.
  virtual void on_block_complete(u64 block_index) = 0;

  virtual const KernelProfile& profile() const = 0;
  virtual AppId app() const = 0;
  virtual u64 app_seed() const = 0;
};

}  // namespace gpusim
