// Streaming Multiprocessor model.
//
// Each SM runs thread blocks of exactly one application (spatial
// multitasking partitions whole SMs).  Per cycle it issues at most one warp
// instruction, selected greedy-then-oldest; memory instructions generate
// coalesced line transactions that probe the private L1 and, on miss,
// travel through the crossbar to a shared memory partition.  Warps block
// until all their transactions respond — surviving warps supply the
// thread-level parallelism that hides memory latency, and the cycles where
// no warp can issue while at least one waits on memory form the stall
// fraction α the DASE model consumes (paper Eq. 15).
#pragma once

#include <array>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/audit.hpp"
#include "common/bounded_queue.hpp"
#include "common/config.hpp"
#include "common/flight_recorder.hpp"
#include "common/sim_error.hpp"
#include "common/stats.hpp"
#include "kernels/address_stream.hpp"
#include "mem/address_map.hpp"
#include "mem/dram.hpp"  // SnapCounter
#include "mem/request.hpp"
#include "sm/block_source.hpp"

namespace gpusim {

struct SmCounters {
  SnapCounter instructions;      ///< warp instructions issued
  SnapCounter mem_stall_cycles;  ///< no issue while ≥1 warp waits on memory
  SnapCounter issue_cycles;      ///< cycles with an instruction issued
  SnapCounter idle_cycles;       ///< no resident live warps
  SnapCounter mem_instructions;  ///< memory instructions issued
  SnapCounter l1_accesses;
  SnapCounter l1_hits;

  template <typename Sink>
  void write_state(Sink& s) const {
    instructions.write_state(s);
    mem_stall_cycles.write_state(s);
    issue_cycles.write_state(s);
    idle_cycles.write_state(s);
    mem_instructions.write_state(s);
    l1_accesses.write_state(s);
    l1_hits.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    instructions.load(r);
    mem_stall_cycles.load(r);
    issue_cycles.load(r);
    idle_cycles.load(r);
    mem_instructions.load(r);
    l1_accesses.load(r);
    l1_hits.load(r);
  }

  void snapshot_all() {
    instructions.snapshot();
    mem_stall_cycles.snapshot();
    issue_cycles.snapshot();
    idle_cycles.snapshot();
    mem_instructions.snapshot();
    l1_accesses.snapshot();
    l1_hits.snapshot();
  }
};

class SmCore {
 public:
  SmCore(const GpuConfig& cfg, SmId id, const AddressMap& address_map);

  /// Assigns this SM to an application.  The SM must be unassigned or
  /// fully drained.  `now` stamps the initial block-dispatch events
  /// (construction-time assignment happens at cycle 0).
  void assign(BlockSource* source, Cycle now = 0);

  /// Stops fetching new thread blocks; resident work runs to completion
  /// (the paper's "SM draining" migration primitive).
  void start_drain() { draining_ = true; }
  /// Cancels a drain whose repartition request was superseded.
  void cancel_drain() { draining_ = false; }
  bool draining() const { return draining_; }

  /// True when no resident warps, no in-flight memory traffic, and no
  /// queued outbound packets remain.
  bool drained() const;

  /// Detaches from the current application (requires drained()), clearing
  /// the L1 as a real kernel switch would.
  void release();

  /// One core cycle: matures L1 hits, dispatches pending transactions,
  /// issues at most one warp instruction, and refills free block slots.
  void cycle(Cycle now);

  /// Delivers a memory response from the interconnect.
  void receive(const MemResponsePacket& resp);

  BoundedQueue<MemRequestPacket>& out_queue() { return out_queue_; }
  const BoundedQueue<MemRequestPacket>& out_queue() const {
    return out_queue_;
  }

  /// Optional per-application instruction counter (owned by the GPU) that
  /// issue() also increments, so per-app IPC survives SM reassignment.
  void set_instr_sink(PerAppCounter* sink) { instr_sink_ = sink; }

  /// Optional SimGuard conservation taps (owned by the GPU): every packet
  /// pushed into the out queue is counted as a sent request.
  void set_taps(ConservationTaps* taps) { taps_ = taps; }

  /// Optional black-box flight recorder (owned by the GPU): block
  /// dispatches and MSHR retry/exhaustion events are recorded into it.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Warps currently blocked on outstanding memory transactions.
  int waiting_warps() const {
    int n = 0;
    for (const WarpCtx& w : warps_) {
      n += w.state == WarpCtx::State::kWaitingMem ? 1 : 0;
    }
    return n;
  }

  // --- Idle-cycle fast-forward support -----------------------------------

  /// True when cycle(now) would change nothing but the stall/idle counters:
  /// no L1 hit matures, no transaction dispatches, no warp can issue, and
  /// no outbound packet waits.  (refill_blocks() is a stable no-op in this
  /// state: it ran to saturation at the end of the previous cycle and no
  /// SM-visible input changed since.)  `ready_warps_` makes this O(1).
  bool quiet_at(Cycle now) const {
    return ready_warps_ == 0 && pending_txns_.empty() &&
           out_queue_.empty() && next_retry_deadline_ > now &&
           (local_hits_.empty() || local_hits_.front().first > now);
  }

  /// Earliest future cycle at which this core acts on its own (an L1 hit
  /// maturing or an MSHR retry deadline expiring); responses arriving via
  /// the interconnect are the caller's events.  kNeverCycle when nothing is
  /// scheduled.
  Cycle next_local_event() const {
    const Cycle hit =
        local_hits_.empty() ? kNeverCycle : local_hits_.front().first;
    return hit < next_retry_deadline_ ? hit : next_retry_deadline_;
  }

  /// Earliest cycle a quiet core must be processed again, given its
  /// response delivery queue: the next local event or the head response's
  /// maturity, whichever comes first.  Only meaningful right after a
  /// cycle() that left the core quiet_at() — the activity engine's sleep
  /// bound (later crossbar deliveries wake the core explicitly).
  Cycle wake_after(const BoundedQueue<MemResponsePacket>& resp_in) const {
    Cycle next = next_local_event();
    if (!resp_in.empty() && resp_in.front().ready < next) {
      next = resp_in.front().ready;
    }
    return next;
  }

  /// Applies `n` quiet cycles' worth of the issue-stage stall/idle
  /// accounting in one lump.  Valid only while quiet_at() holds throughout.
  void skip_cycles(Cycle n) {
    bool any_waiting = false;
    bool any_live = false;
    for (const WarpCtx& w : warps_) {
      any_waiting |= w.state == WarpCtx::State::kWaitingMem;
      any_live |= w.state != WarpCtx::State::kUnused &&
                  w.state != WarpCtx::State::kDone;
    }
    if (any_waiting) {
      counters_.mem_stall_cycles.add(n);
    } else if (!any_live) {
      counters_.idle_cycles.add(n);
    }
  }

  AppId app() const { return source_ != nullptr ? source_->app() : kInvalidApp; }
  bool assigned() const { return source_ != nullptr; }
  SmId id() const { return id_; }
  SmCounters& counters() { return counters_; }
  const SmCounters& counters() const { return counters_; }
  const SetAssocCache& l1() const { return l1_; }

  /// Resident thread blocks currently executing (TB_shared of Eq. 24).
  int active_blocks() const;
  int live_warps() const;

  // --- Modeled recovery (GpuConfig::mshr_retry_enabled) ------------------

  /// Adds, per app, the reissues whose original/duplicate fate is still
  /// unresolved: pending retry attempts plus expected-but-unseen duplicate
  /// responses.  The conservation auditor tolerates this much imbalance.
  void count_recovery_outstanding(std::array<u64, kMaxApps>& out) const {
    for (const auto& [line, rs] : retries_) {
      if (rs.pkt.app >= 0 && rs.pkt.app < kMaxApps) {
        out[static_cast<std::size_t>(rs.pkt.app)] +=
            static_cast<u64>(rs.attempts);
      }
    }
    for (const auto& [line, d] : dup_expect_) {
      if (d.app >= 0 && d.app < kMaxApps) {
        out[static_cast<std::size_t>(d.app)] += static_cast<u64>(d.count);
      }
    }
  }
  u64 retries_pending() const { return retries_.size(); }

  // --- SimState ----------------------------------------------------------
  // The caller (Gpu) serializes which application this SM is assigned to
  // and passes the resolved BlockSource back into load(); everything else —
  // warps, blocks, pipeline queues, L1, MSHR, counters — round-trips here.
  // Warp AddressStreams are reconstructed from (profile, app, seed, block)
  // and then overwritten with their saved RNG state; blocks_ must therefore
  // be restored before warps_ (each stream points at its block's shared
  // cursor).  addr_scratch_ is per-instruction scratch, dead between cycles.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("SMCR");
    s.put_bool(draining_);
    s.put_i32(last_issued_);
    s.put_i32(ready_warps_);
    for (const BlockSlot& b : blocks_) {
      s.put_bool(b.active);
      s.put_u64(b.block_index);
      s.put_i32(b.warps_remaining);
      s.put_u64(b.stream.base_line);
      s.put_u64(b.stream.cursor);
    }
    for (const WarpCtx& w : warps_) {
      s.put_u8(static_cast<u8>(w.state));
      s.put_u64(w.instrs_done);
      s.put_u64(w.budget);
      s.put_u64(w.compute_remaining);
      s.put_i32(w.outstanding);
      s.put_i32(w.block_slot);
      s.put_bool(w.stream.has_value());
      if (w.stream.has_value()) w.stream->write_state(s);
    }
    s.put_u64(pending_txns_.size());
    for (const PendingTxn& t : pending_txns_) {
      s.put_i32(t.warp);
      s.put_u64(t.addr);
    }
    s.put_u64(local_hits_.size());
    for (const auto& [ready, warp] : local_hits_) {
      s.put_u64(ready);
      s.put_i32(warp);
    }
    l1_.write_state(s);
    l1_mshr_.write_state(s);
    out_queue_.write_state(s);
    counters_.write_state(s);
    // Recovery bookkeeping (std::map keeps both walks line-ordered, so the
    // byte stream and the state hash are deterministic).
    s.put_u64(retries_.size());
    for (const auto& [line, rs] : retries_) {
      s.put_u64(line);
      write_item(s, rs.pkt);
      s.put_u64(rs.deadline);
      s.put_i32(rs.attempts);
    }
    s.put_u64(dup_expect_.size());
    for (const auto& [line, d] : dup_expect_) {
      s.put_u64(line);
      s.put_i32(d.count);
      s.put_i32(d.app);
    }
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r, BlockSource* source);

 private:
  struct WarpCtx {
    enum class State : u8 { kUnused, kReady, kWaitingMem, kDone };
    State state = State::kUnused;
    u64 instrs_done = 0;
    u64 budget = 0;
    u64 compute_remaining = 0;
    int outstanding = 0;
    int block_slot = -1;
    std::optional<AddressStream> stream;
  };

  struct BlockSlot {
    bool active = false;
    u64 block_index = 0;
    int warps_remaining = 0;
    BlockStream stream;  ///< sequential front shared by the block's warps
  };

  struct PendingTxn {
    WarpId warp;
    u64 addr;
  };

  /// One pending L1-MSHR miss being tracked for timeout/reissue.
  struct RetryState {
    MemRequestPacket pkt;  ///< the original request, reissued verbatim
    Cycle deadline = 0;    ///< cycle at which the next reissue fires
    int attempts = 0;      ///< reissues already made (backoff exponent)
  };
  /// Responses still owed for a line whose MSHR entry already completed
  /// (the losers of an original-vs-retry race); absorbed silently.
  struct DupExpect {
    int count = 0;
    AppId app = kInvalidApp;
  };

  void refill_blocks(Cycle now);
  void dispatch_pending(Cycle now);
  void issue(Cycle now);
  void complete_txn(WarpId warp);
  void retire_warp(WarpId warp);
  void check_retries(Cycle now);
  void recompute_next_retry_deadline();
  int max_concurrent_blocks() const;

  const GpuConfig& cfg_;
  SmId id_;
  const AddressMap& address_map_;
  BlockSource* source_ = nullptr;
  bool draining_ = false;

  std::vector<WarpCtx> warps_;
  std::vector<BlockSlot> blocks_;
  std::deque<PendingTxn> pending_txns_;
  std::deque<std::pair<Cycle, WarpId>> local_hits_;  // (ready, warp), FIFO

  SetAssocCache l1_;
  Mshr l1_mshr_;
  BoundedQueue<MemRequestPacket> out_queue_;

  WarpId last_issued_ = -1;
  /// Count of warps in State::kReady, maintained at every state
  /// transition so quiet_at() needs no warp scan.
  int ready_warps_ = 0;
  std::vector<u64> addr_scratch_;
  SmCounters counters_;
  PerAppCounter* instr_sink_ = nullptr;
  ConservationTaps* taps_ = nullptr;
  FlightRecorder* recorder_ = nullptr;

  // Modeled recovery state (empty unless cfg_.mshr_retry_enabled).
  std::map<u64, RetryState> retries_;    // keyed by line address
  std::map<u64, DupExpect> dup_expect_;  // keyed by line address
  /// Cached min deadline over retries_, kNeverCycle when none: keeps
  /// quiet_at()/next_local_event() O(1) for the fast-forward path.
  Cycle next_retry_deadline_ = kNeverCycle;
};

}  // namespace gpusim
