#include "mem/partition.hpp"

namespace gpusim {

namespace {
constexpr int kL2PortsPerCycle = 2;  // request-consumption bandwidth
/// Hard ceiling on the deferred DRAM-fill responses a partition may hold
/// while its response queue is saturated.  Reaching it means the response
/// path has been wedged for thousands of cycles — a real bug, not
/// transient backpressure — so SimGuard turns it into a diagnosis.
constexpr std::size_t kDeferredRespHardCap = 1 << 16;
}  // namespace

MemoryPartition::MemoryPartition(const GpuConfig& cfg, int num_apps,
                                 PartitionId id)
    : cfg_(cfg),
      id_(id),
      address_map_(cfg),
      l2_(cfg.l2_num_sets(), cfg.l2_assoc, cfg.line_bytes),
      mshr_(cfg.l2_mshr_entries),
      mc_(cfg, num_apps),
      resp_queue_(cfg.partition_resp_queue_depth) {
  atds_.reserve(num_apps);
  for (int a = 0; a < num_apps; ++a) {
    atds_.push_back(std::make_unique<SampledAtd>(
        cfg.l2_num_sets(), cfg.l2_assoc, cfg.line_bytes,
        cfg.atd_sampled_sets));
  }
}

void MemoryPartition::push_response(MemResponsePacket resp, Cycle now) {
  if (taps_ != nullptr) taps_->responses_enqueued.add(resp.app);
  if (resp_queue_.try_push(resp)) {
    if (recorder_ != nullptr) {
      recorder_->note_resp_occupancy(now, id_, resp_queue_.size(),
                                     resp_queue_.capacity());
    }
    return;
  }
  // Response queue saturated: defer instead of dropping.  The deferred
  // FIFO drains into the response queue ahead of new traffic, preserving
  // order among fills; a hard cap bounds pathological wedges.
  SIM_CHECK(deferred_resps_.size() < kDeferredRespHardCap,
            SimError(SimErrorKind::kQueueOverflow, "mem.partition",
                     "response path wedged: deferred-response overflow")
                .cycle(now)
                .app(resp.app)
                .detail("partition", id_)
                .detail("resp_queue_capacity", resp_queue_.capacity())
                .detail("deferred", deferred_resps_.size()));
  deferred_resps_.push_back(resp);
  if (recorder_ != nullptr) {
    recorder_->note_deferred_backlog(now, id_, deferred_resps_.size());
  }
}

void MemoryPartition::cycle(Cycle now,
                            BoundedQueue<MemRequestPacket>& in_queue) {
  // 0. Drain previously deferred responses ahead of new traffic.
  while (!deferred_resps_.empty() &&
         resp_queue_.try_push(deferred_resps_.front())) {
    deferred_resps_.pop_front();
  }

  // 1. DRAM progress; retire completed lines into the L2 and fan responses
  //    out to every MSHR waiter.
  completed_scratch_.clear();
  mc_.cycle(now, completed_scratch_);
  for (const DramCmd& done : completed_scratch_) {
    // Injected fault: a bit-flip corrupts the fill address between DRAM and
    // the L2/MSHR.  The flipped line almost never matches an MSHR entry, so
    // Mshr::release raises its double-completion invariant — the guard the
    // chaos classifier expects to catch this corruption.
    const u64 fill_line = injector_ != nullptr
                              ? injector_->corrupt_fill_line(done.line_addr)
                              : done.line_addr;
    if (recorder_ != nullptr && fill_line != done.line_addr) {
      recorder_->record(now, FrEvent::kFaultCorrupt, id_, done.app,
                        done.line_addr, fill_line);
    }
    l2_.fill(fill_line, done.app);
    for (const MshrWaiter& w : mshr_.release(fill_line)) {
      MemResponsePacket resp;
      resp.line_addr = fill_line;
      resp.app = w.app;
      resp.sm = w.sm;
      resp.warp = w.warp;
      resp.ready = now + cfg_.l2_miss_extra_latency;
      push_response(resp, now);
    }
  }

  // 2. Matured L2 hits become responses; a full response queue
  //    back-pressures them (they retry next cycle, order preserved).
  while (!pending_hits_.empty() && pending_hits_.front().ready <= now) {
    if (resp_queue_.full()) break;
    if (taps_ != nullptr) taps_->responses_enqueued.add(pending_hits_.front().app);
    const bool pushed = resp_queue_.try_push(pending_hits_.front());
    SIM_CHECK(pushed, SimError(SimErrorKind::kQueueOverflow, "mem.partition",
                               "response queue overflow after full() check")
                          .cycle(now)
                          .detail("partition", id_));
    if (recorder_ != nullptr) {
      recorder_->note_resp_occupancy(now, id_, resp_queue_.size(),
                                     resp_queue_.capacity());
    }
    pending_hits_.pop_front();
  }

  // 3. L2 demand stage: consume the crossbar input queue.
  auto note_access = [&](AppId app) {
    counters_.l2_accesses.add(app);
    if (mc_.priority_app() == app) {
      counters_.l2_accesses_priority.add(app);
    } else if (mc_.priority_app() == kInvalidApp) {
      counters_.l2_accesses_nonpriority.add(app);
    }
  };
  for (int port = 0; port < kL2PortsPerCycle; ++port) {
    if (in_queue.empty() || in_queue.front().ready > now) break;
    if (injector_ != nullptr && injector_->should_drop_request()) {
      // Injected fault: the packet vanishes without being processed, as a
      // real routing bug would make it.  The conservation taps are *not*
      // told — the auditor must discover the leak on its own.  The flight
      // recorder *is*: it records what actually happened, exactly the
      // information a postmortem needs to explain the auditor's imbalance.
      if (recorder_ != nullptr) {
        recorder_->record(now, FrEvent::kFaultDropReq, id_,
                          in_queue.front().app, in_queue.front().line_addr, 0);
      }
      in_queue.pop();
      continue;
    }
    const MemRequestPacket& req = in_queue.front();
    const u64 line = req.line_addr;

    if (mshr_.contains(line)) {
      // Merge into the in-flight miss; no new DRAM request, no ATD change
      // (the primary miss already updated the alone-model).
      note_access(req.app);
      if (taps_ != nullptr) taps_->requests_consumed.add(req.app);
      mshr_.allocate(line, {req.sm, req.warp, req.app});
      in_queue.pop();
      continue;
    }

    const bool hit = l2_.probe(line);
    if (!hit) {
      // Need both an MSHR slot and a bank-queue slot before consuming.
      const DramCoordinates coords = address_map_.decode(line);
      if (mshr_.full() || mc_.queue_full()) break;

      note_access(req.app);
      if (taps_ != nullptr) taps_->requests_consumed.add(req.app);
      l2_.lookup_touch(line, req.app);  // records the miss
      // DASE Eq. 13 contention-miss detection: an L2 miss that hits in the
      // application's private (alone-model) tag directory means the line
      // was evicted by a co-runner.
      SampledAtd& atd = *atds_[req.app];
      if (atd.is_sampled(line)) {
        if (atd.access(line)) {
          atd.record_extra_miss();
          counters_.atd_extra_miss_samples.add(req.app);
        }
      }
      mshr_.allocate(line, {req.sm, req.warp, req.app});
      DramCmd cmd;
      cmd.line_addr = line;
      cmd.app = req.app;
      cmd.bank = coords.bank;
      cmd.row = coords.row;
      cmd.enqueued = now;
      const bool queued = mc_.try_enqueue(cmd);
      SIM_CHECK(queued,
                SimError(SimErrorKind::kQueueOverflow, "mem.partition",
                         "MC queue full after capacity check")
                    .cycle(now)
                    .app(req.app)
                    .detail("partition", id_)
                    .detail("mc_queue_size", mc_.queue_size()));
      in_queue.pop();
      continue;
    }

    // L2 hit.
    note_access(req.app);
    if (taps_ != nullptr) taps_->requests_consumed.add(req.app);
    counters_.l2_hits.add(req.app);
    l2_.lookup_touch(line, req.app);
    SampledAtd& atd = *atds_[req.app];
    if (atd.is_sampled(line)) atd.access(line);

    MemResponsePacket resp;
    resp.line_addr = line;
    resp.app = req.app;
    resp.sm = req.sm;
    resp.warp = req.warp;
    resp.ready = now + cfg_.l2_hit_latency;
    pending_hits_.push_back(resp);
    in_queue.pop();
  }
}

void MemoryPartition::count_in_flight(std::array<u64, kMaxApps>& out) const {
  mshr_.count_waiters_by_app(out);
  for (const MemResponsePacket& r : pending_hits_) {
    if (r.app >= 0 && r.app < kMaxApps) ++out[r.app];
  }
  for (const MemResponsePacket& r : deferred_resps_) {
    if (r.app >= 0 && r.app < kMaxApps) ++out[r.app];
  }
  for (const MemResponsePacket& r : resp_queue_) {
    if (r.app >= 0 && r.app < kMaxApps) ++out[r.app];
  }
}

}  // namespace gpusim
