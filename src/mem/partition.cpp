#include "mem/partition.hpp"

#include <cassert>

namespace gpusim {

namespace {
constexpr int kL2PortsPerCycle = 2;     // request-consumption bandwidth
constexpr int kRespQueueCapacity = 1024;  // drained 1/cycle by the crossbar
}  // namespace

MemoryPartition::MemoryPartition(const GpuConfig& cfg, int num_apps,
                                 PartitionId id)
    : cfg_(cfg),
      id_(id),
      address_map_(cfg),
      l2_(cfg.l2_num_sets(), cfg.l2_assoc, cfg.line_bytes),
      mshr_(cfg.l2_mshr_entries),
      mc_(cfg, num_apps),
      resp_queue_(kRespQueueCapacity) {
  atds_.reserve(num_apps);
  for (int a = 0; a < num_apps; ++a) {
    atds_.push_back(std::make_unique<SampledAtd>(
        cfg.l2_num_sets(), cfg.l2_assoc, cfg.line_bytes,
        cfg.atd_sampled_sets));
  }
}

void MemoryPartition::cycle(Cycle now,
                            BoundedQueue<MemRequestPacket>& in_queue) {
  // 1. DRAM progress; retire completed lines into the L2 and fan responses
  //    out to every MSHR waiter.
  completed_scratch_.clear();
  mc_.cycle(now, completed_scratch_);
  for (const DramCmd& done : completed_scratch_) {
    l2_.fill(done.line_addr, done.app);
    for (const MshrWaiter& w : mshr_.release(done.line_addr)) {
      MemResponsePacket resp;
      resp.line_addr = done.line_addr;
      resp.app = w.app;
      resp.sm = w.sm;
      resp.warp = w.warp;
      resp.ready = now + cfg_.l2_miss_extra_latency;
      const bool pushed = resp_queue_.try_push(resp);
      assert(pushed && "partition response queue overflow");
      (void)pushed;
    }
  }

  // 2. Matured L2 hits become responses.
  while (!pending_hits_.empty() && pending_hits_.front().ready <= now) {
    const bool pushed = resp_queue_.try_push(pending_hits_.front());
    assert(pushed && "partition response queue overflow");
    (void)pushed;
    pending_hits_.pop_front();
  }

  // 3. L2 demand stage: consume the crossbar input queue.
  auto note_access = [&](AppId app) {
    counters_.l2_accesses.add(app);
    if (mc_.priority_app() == app) {
      counters_.l2_accesses_priority.add(app);
    } else if (mc_.priority_app() == kInvalidApp) {
      counters_.l2_accesses_nonpriority.add(app);
    }
  };
  for (int port = 0; port < kL2PortsPerCycle; ++port) {
    if (in_queue.empty() || in_queue.front().ready > now) break;
    const MemRequestPacket& req = in_queue.front();
    const u64 line = req.line_addr;

    if (mshr_.contains(line)) {
      // Merge into the in-flight miss; no new DRAM request, no ATD change
      // (the primary miss already updated the alone-model).
      note_access(req.app);
      mshr_.allocate(line, {req.sm, req.warp, req.app});
      in_queue.pop();
      continue;
    }

    const bool hit = l2_.probe(line);
    if (!hit) {
      // Need both an MSHR slot and a bank-queue slot before consuming.
      const DramCoordinates coords = address_map_.decode(line);
      if (mshr_.full() || mc_.queue_full()) break;

      note_access(req.app);
      l2_.lookup_touch(line, req.app);  // records the miss
      // DASE Eq. 13 contention-miss detection: an L2 miss that hits in the
      // application's private (alone-model) tag directory means the line
      // was evicted by a co-runner.
      SampledAtd& atd = *atds_[req.app];
      if (atd.is_sampled(line)) {
        if (atd.access(line)) {
          atd.record_extra_miss();
          counters_.atd_extra_miss_samples.add(req.app);
        }
      }
      mshr_.allocate(line, {req.sm, req.warp, req.app});
      DramCmd cmd;
      cmd.line_addr = line;
      cmd.app = req.app;
      cmd.bank = coords.bank;
      cmd.row = coords.row;
      cmd.enqueued = now;
      const bool queued = mc_.try_enqueue(cmd);
      assert(queued && "MC queue full after capacity check");
      (void)queued;
      in_queue.pop();
      continue;
    }

    // L2 hit.
    note_access(req.app);
    counters_.l2_hits.add(req.app);
    l2_.lookup_touch(line, req.app);
    SampledAtd& atd = *atds_[req.app];
    if (atd.is_sampled(line)) atd.access(line);

    MemResponsePacket resp;
    resp.line_addr = line;
    resp.app = req.app;
    resp.sm = req.sm;
    resp.warp = req.warp;
    resp.ready = now + cfg_.l2_hit_latency;
    pending_hits_.push_back(resp);
    in_queue.pop();
  }
}

}  // namespace gpusim
