// DRAM memory controller: FR-FCFS scheduling over banked DRAM with
// open-page row-buffer policy and a shared data bus (paper Table II:
// FR-FCFS, 16 banks/MC, 924MHz, tRP = tRCD = 12).
//
// The controller keeps one *shared* request queue per memory controller
// (as GPGPU-Sim does): each cycle it issues at most one command, picking
// the oldest row-buffer hit whose bank is free, falling back to the oldest
// request with a free bank.  This is what produces the paper's asymmetric
// inter-application interference — an application with long row-hit chains
// and many outstanding requests captures both the queue slots and the
// scheduler's row-hit preference, while an irregular application's
// requests wait and pay activate/precharge on nearly every access.
//
// Besides simulating timing, the controller integrates — per cycle — the
// hardware counters the DASE model reads (paper Table I): per-application
// BLP / BLPAccess occupancy, extra-row-buffer-miss events against the
// per-bank last-row registers, served-request counts and aggregate
// in-bank service time.  It also decomposes data-bus occupancy into
// per-application / wasted / idle shares for the Fig. 2b analysis, and
// supports the highest-priority-application epochs MISE and ASM rely on.
#pragma once

#include <array>
#include <algorithm>
#include <bit>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace gpusim {

/// A DRAM command: one cache-line read mapped to (bank, row).
struct DramCmd {
  u64 line_addr = 0;
  AppId app = kInvalidApp;
  int bank = 0;
  u64 row = 0;
  Cycle enqueued = 0;
};

/// Scalar counter with interval-snapshot semantics.
class SnapCounter {
 public:
  void add(u64 delta = 1) { total_ += delta; }
  u64 total() const { return total_; }
  u64 interval() const { return total_ - snap_; }
  void snapshot() { snap_ = total_; }
  void reset() { total_ = snap_ = 0; }

 private:
  u64 total_ = 0;
  u64 snap_ = 0;
};

/// Counters exported by one memory controller.
struct McCounters {
  // --- DASE Table I counters ---
  PerAppCounter blp_occupancy_int;  ///< Σ_cycles |banks executing or queued for app|
  PerAppCounter blp_access_int;     ///< Σ_cycles |banks executing app|
  PerAppCounter blp_time;           ///< cycles with ≥1 outstanding request
  PerAppCounter erb_miss;           ///< extra row-buffer misses (Eq. 10)
  PerAppCounter requests_served;    ///< Request_i
  PerAppCounter bank_service_time;  ///< Time_request_i (Eq. 12 numerator)
  PerAppCounter row_hits;           ///< requests served out of an open row
  PerAppCounter row_misses;         ///< requests paying ACT (and maybe PRE)
  // --- bandwidth decomposition (Fig. 2b) ---
  PerAppCounter bus_data_cycles;  ///< data-transfer cycles per app
  SnapCounter wasted_cycles;      ///< bus idle while timing work in flight
  SnapCounter idle_cycles;        ///< bus idle, no DRAM work at all
  // --- MISE/ASM priority-epoch accounting ---
  PerAppCounter priority_served;  ///< requests served while app had priority
  PerAppCounter priority_cycles;  ///< cycles the app held priority
  PerAppCounter nonpriority_served;  ///< requests served with no priority set
  SnapCounter nonpriority_cycles;    ///< cycles with no priority app

  void snapshot_all() {
    blp_occupancy_int.snapshot();
    blp_access_int.snapshot();
    blp_time.snapshot();
    erb_miss.snapshot();
    requests_served.snapshot();
    bank_service_time.snapshot();
    row_hits.snapshot();
    row_misses.snapshot();
    bus_data_cycles.snapshot();
    wasted_cycles.snapshot();
    idle_cycles.snapshot();
    priority_served.snapshot();
    priority_cycles.snapshot();
    nonpriority_served.snapshot();
    nonpriority_cycles.snapshot();
  }
};

class MemoryController {
 public:
  MemoryController(const GpuConfig& cfg, int num_apps);

  /// Attempts to enqueue a command into the shared request queue.  Returns
  /// false when the queue is full (caller must stall and retry) — finite,
  /// shared buffering is itself an interference channel: a flooding
  /// application crowds out a sparse one.
  bool try_enqueue(const DramCmd& cmd);

  bool queue_full() const {
    return static_cast<int>(queue_.size()) >= queue_capacity_;
  }

  /// Advances one cycle.  Completed commands are appended to `completed`.
  void cycle(Cycle now, std::vector<DramCmd>& completed);

  /// Gives `app`'s requests absolute FR-FCFS priority (kInvalidApp clears).
  /// Used by the MISE/ASM estimation epochs.
  void set_priority_app(AppId app) { priority_app_ = app; }
  AppId priority_app() const { return priority_app_; }

  McCounters& counters() { return counters_; }
  const McCounters& counters() const { return counters_; }

  int outstanding(AppId app) const { return outstanding_[app]; }
  int total_outstanding() const {
    int sum = 0;
    for (int a = 0; a < num_apps_; ++a) sum += outstanding_[a];
    return sum;
  }

  // Structural introspection (tests, diagnostics).
  int queue_size() const { return static_cast<int>(queue_.size()); }
  int bus_ready_size() const { return static_cast<int>(bus_ready_.size()); }
  int inflight_size() const { return static_cast<int>(inflight_.size()); }
  int preparing_banks() const {
    int n = 0;
    for (const Bank& b : banks_) n += b.preparing ? 1 : 0;
    return n;
  }

 private:
  /// A bank is only *occupied* while preparing a row (precharge +
  /// activate).  Column accesses to an open row pipeline through the
  /// shared data bus — consecutive row hits to the same bank stream
  /// back-to-back, as on real GDDR.
  struct Bank {
    bool row_open = false;
    u64 open_row = 0;
    bool preparing = false;
    DramCmd pending;
    Cycle prep_done = 0;
    Cycle prep_issue_start = 0;
  };

  /// A request whose column access has been scheduled on the data bus.
  struct InFlight {
    Cycle complete_at = 0;
    Cycle issue_start = 0;
    bool row_hit = false;
    DramCmd cmd;
  };

  /// Requests drain from the queue into the committed stages (bank prep +
  /// bus-ready) only while those hold fewer than this many requests, so
  /// congested traffic keeps waiting in the reorderable FR-FCFS queue —
  /// where row-buffer hits retain their scheduling preference — instead of
  /// piling up in a FIFO bus reservation.
  static constexpr int kMaxCommitted = 8;

  void retire_inflight(Cycle now, std::vector<DramCmd>& completed);
  void grant_bus(Cycle now);
  void finish_preps(Cycle now);
  void issue_one(Cycle now);
  void account_cycle(Cycle now);

  const GpuConfig& cfg_;
  int num_apps_;
  int queue_capacity_;
  std::vector<Bank> banks_;
  std::deque<DramCmd> queue_;       ///< shared FR-FCFS queue, arrival order
  std::deque<InFlight> bus_ready_;  ///< column accesses awaiting a bus grant
  std::deque<InFlight> inflight_;   ///< granted accesses, completion order
  AppId priority_app_ = kInvalidApp;

  Cycle bus_free_at_ = 0;  ///< includes post-burst bus turnaround gap

  std::array<u32, kMaxApps> queued_mask_{};  ///< banks with queued reqs of app
  std::array<u32, kMaxApps> exec_mask_{};    ///< banks executing app
  std::array<int, kMaxApps> outstanding_{};  ///< queued + in-service
  std::vector<std::array<u16, kMaxApps>> queued_per_bank_app_;
  std::vector<std::array<u16, kMaxApps>> exec_per_bank_app_;
  std::vector<std::vector<u64>> last_row_;  ///< [app][bank] last-row register
  std::vector<std::vector<bool>> last_row_valid_;

  McCounters counters_;
};

}  // namespace gpusim
