// DRAM memory controller: FR-FCFS scheduling over banked DRAM with
// open-page row-buffer policy and a shared data bus (paper Table II:
// FR-FCFS, 16 banks/MC, 924MHz, tRP = tRCD = 12).
//
// The controller keeps one *shared* request queue per memory controller
// (as GPGPU-Sim does): each cycle it issues at most one command, picking
// the oldest row-buffer hit whose bank is free, falling back to the oldest
// request with a free bank.  This is what produces the paper's asymmetric
// inter-application interference — an application with long row-hit chains
// and many outstanding requests captures both the queue slots and the
// scheduler's row-hit preference, while an irregular application's
// requests wait and pay activate/precharge on nearly every access.
//
// Besides simulating timing, the controller integrates — per cycle — the
// hardware counters the DASE model reads (paper Table I): per-application
// BLP / BLPAccess occupancy, extra-row-buffer-miss events against the
// per-bank last-row registers, served-request counts and aggregate
// in-bank service time.  It also decomposes data-bus occupancy into
// per-application / wasted / idle shares for the Fig. 2b analysis, and
// supports the highest-priority-application epochs MISE and ASM rely on.
#pragma once

#include <array>
#include <algorithm>
#include <bit>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/simstate.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace gpusim {

/// A DRAM command: one cache-line read mapped to (bank, row).
struct DramCmd {
  u64 line_addr = 0;
  AppId app = kInvalidApp;
  int bank = 0;
  u64 row = 0;
  Cycle enqueued = 0;
};

template <typename Sink>
void write_item(Sink& s, const DramCmd& c) {
  s.put_u64(c.line_addr);
  s.put_i32(c.app);
  s.put_i32(c.bank);
  s.put_u64(c.row);
  s.put_u64(c.enqueued);
}
inline void read_item(StateReader& r, DramCmd& c) {
  c.line_addr = r.get_u64();
  c.app = r.get_i32();
  c.bank = r.get_i32();
  c.row = r.get_u64();
  c.enqueued = r.get_u64();
}

/// Scalar counter with interval-snapshot semantics.
class SnapCounter {
 public:
  void add(u64 delta = 1) { total_ += delta; }
  u64 total() const { return total_; }
  u64 interval() const { return total_ - snap_; }
  void snapshot() { snap_ = total_; }
  void reset() { total_ = snap_ = 0; }

  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_u64(total_);
    s.put_u64(snap_);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    total_ = r.get_u64();
    snap_ = r.get_u64();
  }

 private:
  u64 total_ = 0;
  u64 snap_ = 0;
};

/// Counters exported by one memory controller.
struct McCounters {
  // --- DASE Table I counters ---
  PerAppCounter blp_occupancy_int;  ///< Σ_cycles |banks executing or queued for app|
  PerAppCounter blp_access_int;     ///< Σ_cycles |banks executing app|
  PerAppCounter blp_time;           ///< cycles with ≥1 outstanding request
  PerAppCounter erb_miss;           ///< extra row-buffer misses (Eq. 10)
  PerAppCounter requests_served;    ///< Request_i
  PerAppCounter bank_service_time;  ///< Time_request_i (Eq. 12 numerator)
  PerAppCounter row_hits;           ///< requests served out of an open row
  PerAppCounter row_misses;         ///< requests paying ACT (and maybe PRE)
  // --- bandwidth decomposition (Fig. 2b) ---
  PerAppCounter bus_data_cycles;  ///< data-transfer cycles per app
  SnapCounter wasted_cycles;      ///< bus idle while timing work in flight
  SnapCounter idle_cycles;        ///< bus idle, no DRAM work at all
  // --- MISE/ASM priority-epoch accounting ---
  PerAppCounter priority_served;  ///< requests served while app had priority
  PerAppCounter priority_cycles;  ///< cycles the app held priority
  PerAppCounter nonpriority_served;  ///< requests served with no priority set
  SnapCounter nonpriority_cycles;    ///< cycles with no priority app

  template <typename Sink>
  void write_state(Sink& s) const {
    blp_occupancy_int.write_state(s);
    blp_access_int.write_state(s);
    blp_time.write_state(s);
    erb_miss.write_state(s);
    requests_served.write_state(s);
    bank_service_time.write_state(s);
    row_hits.write_state(s);
    row_misses.write_state(s);
    bus_data_cycles.write_state(s);
    wasted_cycles.write_state(s);
    idle_cycles.write_state(s);
    priority_served.write_state(s);
    priority_cycles.write_state(s);
    nonpriority_served.write_state(s);
    nonpriority_cycles.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    blp_occupancy_int.load(r);
    blp_access_int.load(r);
    blp_time.load(r);
    erb_miss.load(r);
    requests_served.load(r);
    bank_service_time.load(r);
    row_hits.load(r);
    row_misses.load(r);
    bus_data_cycles.load(r);
    wasted_cycles.load(r);
    idle_cycles.load(r);
    priority_served.load(r);
    priority_cycles.load(r);
    nonpriority_served.load(r);
    nonpriority_cycles.load(r);
  }

  void snapshot_all() {
    blp_occupancy_int.snapshot();
    blp_access_int.snapshot();
    blp_time.snapshot();
    erb_miss.snapshot();
    requests_served.snapshot();
    bank_service_time.snapshot();
    row_hits.snapshot();
    row_misses.snapshot();
    bus_data_cycles.snapshot();
    wasted_cycles.snapshot();
    idle_cycles.snapshot();
    priority_served.snapshot();
    priority_cycles.snapshot();
    nonpriority_served.snapshot();
    nonpriority_cycles.snapshot();
  }
};

class MemoryController {
 public:
  MemoryController(const GpuConfig& cfg, int num_apps);

  /// Attempts to enqueue a command into the shared request queue.  Returns
  /// false when the queue is full (caller must stall and retry) — finite,
  /// shared buffering is itself an interference channel: a flooding
  /// application crowds out a sparse one.
  bool try_enqueue(const DramCmd& cmd);

  bool queue_full() const {
    return static_cast<int>(queue_.size()) >= queue_capacity_;
  }

  /// Advances one cycle.  Completed commands are appended to `completed`.
  void cycle(Cycle now, std::vector<DramCmd>& completed);

  /// Gives `app`'s requests absolute FR-FCFS priority (kInvalidApp clears).
  /// Used by the MISE/ASM estimation epochs.
  void set_priority_app(AppId app) { priority_app_ = app; }
  AppId priority_app() const { return priority_app_; }

  McCounters& counters() { return counters_; }
  const McCounters& counters() const { return counters_; }

  int outstanding(AppId app) const { return outstanding_[app]; }
  int total_outstanding() const {
    int sum = 0;
    for (int a = 0; a < num_apps_; ++a) sum += outstanding_[a];
    return sum;
  }

  // Structural introspection (tests, diagnostics).
  int queue_size() const { return static_cast<int>(queue_.size()); }
  int bus_ready_size() const { return static_cast<int>(bus_ready_.size()); }
  int inflight_size() const { return static_cast<int>(inflight_.size()); }
  int preparing_banks() const { return preparing_count_; }

  // --- Idle-cycle fast-forward support -----------------------------------
  // A controller is *quiet* at `now` when cycle(now, …) would change no
  // state other than the per-cycle counter accruals in account_cycle():
  // nothing retires, the bus grants nothing, no prep finishes, and nothing
  // can issue.  While quiet, those accruals are a pure function of frozen
  // state, so a run of quiet cycles can be applied in one skip_cycles()
  // lump.  next_event_after() bounds how long the controller stays quiet.

  /// True when cycle(now, …) would be a pure-accounting no-op.
  bool quiet_at(Cycle now) const {
    if (!inflight_.empty() && inflight_.front().complete_at <= now)
      return false;
    if (!bus_ready_.empty() && bus_free_at_ <= now + t_cl_) return false;
    if (preparing_count_ > 0 && next_prep_done() <= now) return false;
    // A non-empty queue with committed-pipeline headroom may issue; whether
    // it actually can depends on the FR-FCFS candidate scan, which we do
    // not replicate — conservatively treat it as live.
    if (!queue_.empty() &&
        static_cast<int>(bus_ready_.size()) + preparing_count_ <
            kMaxCommitted) {
      return false;
    }
    return true;
  }

  /// Earliest future cycle at which a quiet controller may act again, or at
  /// which account_cycle()'s per-cycle classification changes (the bus-idle
  /// split flips when `bus_free_at_` passes).  kNeverCycle when fully
  /// drained.  Only meaningful when quiet_at(now) holds.
  Cycle next_event_after(Cycle now) const {
    Cycle next = kNeverCycle;
    if (!inflight_.empty()) {
      next = std::min(next, inflight_.front().complete_at);
    }
    if (!bus_ready_.empty()) {
      next = std::min(next, bus_free_at_ - t_cl_);  // quiet ⇒ > now
    }
    if (preparing_count_ > 0) next = std::min(next, next_prep_done());
    if (bus_free_at_ > now) next = std::min(next, bus_free_at_);
    return next;
  }

  /// Applies `n` cycles' worth of account_cycle() in one lump.  Valid only
  /// while quiet_at(now) holds for every cycle in [now, now + n) — i.e.
  /// `now + n <= next_event_after(now)`.
  void skip_cycles(Cycle now, Cycle n);

  // SimState: banks, queues, in-flight pipeline, bus timing, occupancy
  // bookkeeping, last-row registers, counters.  Config/timings/geometry are
  // construction-time and excluded.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("DRAM");
    for (const Bank& b : banks_) {
      s.put_bool(b.row_open);
      s.put_u64(b.open_row);
      s.put_bool(b.preparing);
      write_item(s, b.pending);
      s.put_u64(b.prep_done);
      s.put_u64(b.prep_issue_start);
    }
    s.put_i32(preparing_count_);
    s.put_u64(queue_.size());
    for (const DramCmd& c : queue_) write_item(s, c);
    auto put_inflight = [&s](const std::deque<InFlight>& dq) {
      s.put_u64(dq.size());
      for (const InFlight& f : dq) {
        s.put_u64(f.complete_at);
        s.put_u64(f.issue_start);
        s.put_bool(f.row_hit);
        write_item(s, f.cmd);
      }
    };
    put_inflight(bus_ready_);
    put_inflight(inflight_);
    s.put_i32(priority_app_);
    s.put_u64(bus_free_at_);
    for (u32 v : queued_mask_) s.put_u32(v);
    for (u32 v : exec_mask_) s.put_u32(v);
    for (int v : outstanding_) s.put_i32(v);
    for (const auto& per_bank : queued_per_bank_app_) {
      for (u16 v : per_bank) s.put_u32(v);
    }
    for (const auto& per_bank : exec_per_bank_app_) {
      for (u16 v : per_bank) s.put_u32(v);
    }
    for (u64 v : last_row_) s.put_u64(v);
    for (u32 v : last_row_valid_) s.put_u32(v);
    counters_.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("DRAM");
    for (Bank& b : banks_) {
      b.row_open = r.get_bool();
      b.open_row = r.get_u64();
      b.preparing = r.get_bool();
      read_item(r, b.pending);
      b.prep_done = r.get_u64();
      b.prep_issue_start = r.get_u64();
    }
    preparing_count_ = r.get_i32();
    queue_.clear();
    const u64 qn = r.get_count(static_cast<u64>(queue_capacity_), "dram queue");
    for (u64 i = 0; i < qn; ++i) {
      DramCmd c;
      read_item(r, c);
      queue_.push_back(c);
    }
    auto get_inflight = [&r](std::deque<InFlight>& dq) {
      dq.clear();
      const u64 n = r.get_count(1u << 16, "dram inflight");
      for (u64 i = 0; i < n; ++i) {
        InFlight f;
        f.complete_at = r.get_u64();
        f.issue_start = r.get_u64();
        f.row_hit = r.get_bool();
        read_item(r, f.cmd);
        dq.push_back(f);
      }
    };
    get_inflight(bus_ready_);
    get_inflight(inflight_);
    priority_app_ = r.get_i32();
    bus_free_at_ = r.get_u64();
    for (u32& v : queued_mask_) v = r.get_u32();
    for (u32& v : exec_mask_) v = r.get_u32();
    for (int& v : outstanding_) v = r.get_i32();
    for (auto& per_bank : queued_per_bank_app_) {
      for (u16& v : per_bank) v = static_cast<u16>(r.get_u32());
    }
    for (auto& per_bank : exec_per_bank_app_) {
      for (u16& v : per_bank) v = static_cast<u16>(r.get_u32());
    }
    for (u64& v : last_row_) v = r.get_u64();
    for (u32& v : last_row_valid_) v = r.get_u32();
    counters_.load(r);
  }

 private:
  /// A bank is only *occupied* while preparing a row (precharge +
  /// activate).  Column accesses to an open row pipeline through the
  /// shared data bus — consecutive row hits to the same bank stream
  /// back-to-back, as on real GDDR.
  struct Bank {
    bool row_open = false;
    u64 open_row = 0;
    bool preparing = false;
    DramCmd pending;
    Cycle prep_done = 0;
    Cycle prep_issue_start = 0;
  };

  /// A request whose column access has been scheduled on the data bus.
  struct InFlight {
    Cycle complete_at = 0;
    Cycle issue_start = 0;
    bool row_hit = false;
    DramCmd cmd;
  };

  /// Requests drain from the queue into the committed stages (bank prep +
  /// bus-ready) only while those hold fewer than this many requests, so
  /// congested traffic keeps waiting in the reorderable FR-FCFS queue —
  /// where row-buffer hits retain their scheduling preference — instead of
  /// piling up in a FIFO bus reservation.
  static constexpr int kMaxCommitted = 8;

  void retire_inflight(Cycle now, std::vector<DramCmd>& completed);
  void grant_bus(Cycle now);
  void finish_preps(Cycle now);
  void issue_one(Cycle now);
  void account_cycle(Cycle now);

  Cycle next_prep_done() const {
    Cycle next = kNeverCycle;
    for (const Bank& b : banks_) {
      if (b.preparing) next = std::min(next, b.prep_done);
    }
    return next;
  }

  const GpuConfig& cfg_;
  int num_apps_;
  int queue_capacity_;
  // DRAM timings scaled to SM cycles, cached once — the per-call llround in
  // GpuConfig::t_*() is measurable on the per-cycle path.
  Cycle t_rp_, t_rcd_, t_cl_, t_burst_, t_bus_gap_, t_miss_bubble_;
  std::vector<Bank> banks_;
  int preparing_count_ = 0;         ///< banks with .preparing set
  std::deque<DramCmd> queue_;       ///< shared FR-FCFS queue, arrival order
  std::deque<InFlight> bus_ready_;  ///< column accesses awaiting a bus grant
  std::deque<InFlight> inflight_;   ///< granted accesses, completion order
  AppId priority_app_ = kInvalidApp;

  Cycle bus_free_at_ = 0;  ///< includes post-burst bus turnaround gap

  std::array<u32, kMaxApps> queued_mask_{};  ///< banks with queued reqs of app
  std::array<u32, kMaxApps> exec_mask_{};    ///< banks executing app
  std::array<int, kMaxApps> outstanding_{};  ///< queued + in-service
  std::vector<std::array<u16, kMaxApps>> queued_per_bank_app_;
  std::vector<std::array<u16, kMaxApps>> exec_per_bank_app_;
  /// Per-(app, bank) last-row registers, flattened to app * banks_per_mc +
  /// bank, with validity as one bank bitmask per app (banks_per_mc <= 32 is
  /// SIM_CHECKed) — the old vector<vector<bool>> pair cost two dependent
  /// loads plus a bit-proxy dereference on every row-miss issue.
  std::vector<u64> last_row_;
  std::array<u32, kMaxApps> last_row_valid_{};

  McCounters counters_;
};

}  // namespace gpusim
