#include "mem/dram.hpp"

#include "common/sim_error.hpp"

namespace gpusim {

MemoryController::MemoryController(const GpuConfig& cfg, int num_apps)
    : cfg_(cfg),
      num_apps_(num_apps),
      queue_capacity_(cfg.dram_queue_capacity),
      t_rp_(cfg.t_rp()),
      t_rcd_(cfg.t_rcd()),
      t_cl_(cfg.t_cl()),
      t_burst_(cfg.t_burst()),
      t_bus_gap_(cfg.t_bus_gap()),
      t_miss_bubble_(cfg.t_miss_bubble()),
      banks_(cfg.banks_per_mc),
      queued_per_bank_app_(cfg.banks_per_mc),
      exec_per_bank_app_(cfg.banks_per_mc) {
  SIM_CHECK(num_apps_ > 0 && num_apps_ <= kMaxApps,
            SimError(SimErrorKind::kConfig, "mem.dram",
                     "application count out of range")
                .detail("num_apps", num_apps_)
                .detail("kMaxApps", kMaxApps));
  SIM_CHECK(cfg.banks_per_mc <= 32,
            SimError(SimErrorKind::kConfig, "mem.dram",
                     "banks_per_mc exceeds 32-bit bank bitmask width")
                .detail("banks_per_mc", cfg.banks_per_mc));
  last_row_.assign(static_cast<std::size_t>(num_apps_) * cfg_.banks_per_mc,
                   0);
}

bool MemoryController::try_enqueue(const DramCmd& cmd) {
  SIM_CHECK(cmd.app >= 0 && cmd.app < num_apps_,
            SimError(SimErrorKind::kInvariant, "mem.dram",
                     "DRAM command for unknown application")
                .app(cmd.app)
                .detail("num_apps", num_apps_));
  SIM_CHECK(cmd.bank >= 0 && cmd.bank < cfg_.banks_per_mc,
            SimError(SimErrorKind::kInvariant, "mem.dram",
                     "DRAM command routed to nonexistent bank")
                .app(cmd.app)
                .detail("bank", cmd.bank)
                .detail("banks_per_mc", cfg_.banks_per_mc));
  if (queue_full()) return false;
  queue_.push_back(cmd);
  if (queued_per_bank_app_[cmd.bank][cmd.app]++ == 0) {
    queued_mask_[cmd.app] |= 1u << cmd.bank;
  }
  ++outstanding_[cmd.app];
  return true;
}

void MemoryController::cycle(Cycle now, std::vector<DramCmd>& completed) {
  retire_inflight(now, completed);
  grant_bus(now);
  finish_preps(now);
  issue_one(now);
  account_cycle(now);
}

void MemoryController::retire_inflight(Cycle now,
                                       std::vector<DramCmd>& completed) {
  while (!inflight_.empty() && inflight_.front().complete_at <= now) {
    const InFlight& f = inflight_.front();
    const AppId app = f.cmd.app;
    counters_.requests_served.add(app);
    counters_.bank_service_time.add(app, f.complete_at - f.issue_start);
    if (priority_app_ == app) {
      counters_.priority_served.add(app);
    } else if (priority_app_ == kInvalidApp) {
      counters_.nonpriority_served.add(app);
    }
    --outstanding_[app];
    if (--exec_per_bank_app_[f.cmd.bank][app] == 0) {
      exec_mask_[app] &= ~(1u << f.cmd.bank);
    }
    completed.push_back(f.cmd);
    inflight_.pop_front();
  }
}

void MemoryController::grant_bus(Cycle now) {
  // Just-in-time bus arbitration: a column access is granted only when its
  // data would start the moment the bus frees (lead time tCL, so CAS
  // pipelines under the in-progress transfer).  Congested traffic keeps
  // waiting in the FR-FCFS queue, where it stays reorderable, instead of
  // piling up in a deep FIFO reservation.
  if (bus_free_at_ > now + t_cl_ || bus_ready_.empty()) return;

  // Note: a MISE/ASM priority epoch grants priority at *issue* (the
  // memory-controller decision the CPU models describe); data already
  // committed to the bus pipeline keeps its order.  This is precisely why
  // the paper finds such epochs unable to isolate a GPU application — the
  // co-runners' dense in-flight traffic keeps being served.
  InFlight f = bus_ready_.front();
  bus_ready_.pop_front();

  const Cycle lead_start = std::max(bus_free_at_, now);
  const Cycle data_start = std::max(bus_free_at_, now + t_cl_);
  // A transfer out of a freshly activated row pays an extra bus bubble, so
  // useful bandwidth at saturation degrades with the row-miss ratio.
  const Cycle overhead = t_bus_gap_ + (f.row_hit ? 0 : t_miss_bubble_);
  bus_free_at_ = data_start + t_burst_ + overhead;
  f.complete_at = data_start + t_burst_;
  counters_.bus_data_cycles.add(f.cmd.app, t_burst_);
  // The column-access lead-in (when starting from an idle bus), the
  // post-burst turnaround gap and miss bubbles are timing overhead:
  // Fig. 2b's "wasted" BW.
  counters_.wasted_cycles.add((data_start - lead_start) + overhead);
  inflight_.push_back(f);
}

void MemoryController::finish_preps(Cycle now) {
  for (int b = 0; b < cfg_.banks_per_mc; ++b) {
    Bank& bank = banks_[b];
    if (!bank.preparing || bank.prep_done > now) continue;
    bank.preparing = false;
    --preparing_count_;
    bank.row_open = true;
    bank.open_row = bank.pending.row;
    bus_ready_.push_back(
        InFlight{0, bank.prep_issue_start, /*row_hit=*/false, bank.pending});
  }
}

void MemoryController::issue_one(Cycle now) {
  if (queue_.empty()) return;

  // FR-FCFS over the shared queue: the oldest row-buffer hit (to a bank
  // that is not re-preparing) wins; otherwise the oldest row miss whose
  // bank is free starts its activation.  An optional priority application
  // (MISE/ASM epochs) restricts the candidate set to its requests whenever
  // it has any queued.
  if (static_cast<int>(bus_ready_.size()) + preparing_count_ >=
      kMaxCommitted) {
    return;  // committed pipeline full; keep requests reorderable
  }
  // MISE/ASM epochs: the priority application wins every issue slot while
  // it has requests queued.  Crucially — and this is the paper's critique
  // of porting these CPU models to GPUs — other applications still issue
  // whenever the priority app has nothing queued, and their already
  // in-flight requests keep occupying banks and the bus, so the epochs do
  // not actually observe alone behaviour.
  const bool prio_active =
      priority_app_ != kInvalidApp && queued_mask_[priority_app_] != 0;
  auto hit_pick = queue_.end();
  auto oldest_pick = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (prio_active && it->app != priority_app_) continue;
    const Bank& bank = banks_[it->bank];
    if (bank.preparing) continue;
    if (bank.row_open && bank.open_row == it->row) {
      hit_pick = it;
      break;  // oldest row hit
    }
    if (oldest_pick == queue_.end() &&
        !(bank.row_open && bank.open_row == it->row)) {
      oldest_pick = it;  // oldest genuine row miss (can start a prep)
    }
  }
  const auto pick = hit_pick != queue_.end() ? hit_pick : oldest_pick;
  if (pick == queue_.end()) return;

  const DramCmd cmd = *pick;
  const bool row_hit = hit_pick != queue_.end();
  queue_.erase(pick);
  if (--queued_per_bank_app_[cmd.bank][cmd.app] == 0) {
    queued_mask_[cmd.app] &= ~(1u << cmd.bank);
  }
  if (exec_per_bank_app_[cmd.bank][cmd.app]++ == 0) {
    exec_mask_[cmd.app] |= 1u << cmd.bank;
  }

  Bank& bank = banks_[cmd.bank];
  if (row_hit) {
    counters_.row_hits.add(cmd.app);
    bus_ready_.push_back(InFlight{0, now, /*row_hit=*/true, cmd});
  } else {
    counters_.row_misses.add(cmd.app);
    // Eq. 10 extra-row-buffer-miss detection: this application re-activates
    // the same row it touched last in this bank — a co-runner closed it.
    const std::size_t lr =
        static_cast<std::size_t>(cmd.app) * cfg_.banks_per_mc + cmd.bank;
    if ((last_row_valid_[cmd.app] >> cmd.bank & 1u) != 0 &&
        last_row_[lr] == cmd.row) {
      counters_.erb_miss.add(cmd.app);
    }
    bank.preparing = true;
    ++preparing_count_;
    bank.pending = cmd;
    bank.prep_issue_start = now;
    bank.prep_done = now + (bank.row_open ? t_rp_ : 0) + t_rcd_;
    bank.row_open = false;
  }
  last_row_[static_cast<std::size_t>(cmd.app) * cfg_.banks_per_mc +
            cmd.bank] = cmd.row;
  last_row_valid_[cmd.app] |= 1u << cmd.bank;
}

void MemoryController::account_cycle(Cycle now) { skip_cycles(now, 1); }

void MemoryController::skip_cycles(Cycle now, Cycle n) {
  // Bandwidth decomposition: data and turnaround-gap cycles are attributed
  // in lump sums at bus-grant time; classify only bus-idle cycles here.
  // Every per-cycle accrual below is a pure function of state that is
  // frozen while the controller is quiet, so `n` cycles fold into one lump.
  // The `bus_free_at_ <= now` test is uniform across the lump because
  // next_event_after() never lets a skip run past bus_free_at_.
  if (bus_free_at_ <= now) {
    const bool any_work = !queue_.empty() || !inflight_.empty() ||
                          !bus_ready_.empty() || preparing_count_ > 0;
    if (any_work) {
      counters_.wasted_cycles.add(n);
    } else {
      counters_.idle_cycles.add(n);
    }
  }

  // DASE per-cycle BLP integration (Eq. 9 / Eq. 14 inputs) and the MISE/ASM
  // priority-cycle clock.
  for (AppId a = 0; a < num_apps_; ++a) {
    if (outstanding_[a] > 0) {
      counters_.blp_time.add(a, n);
      counters_.blp_occupancy_int.add(
          a, n * std::popcount(queued_mask_[a] | exec_mask_[a]));
      counters_.blp_access_int.add(a, n * std::popcount(exec_mask_[a]));
    }
  }
  if (priority_app_ != kInvalidApp) {
    counters_.priority_cycles.add(priority_app_, n);
  } else {
    counters_.nonpriority_cycles.add(n);
  }
}

}  // namespace gpusim
