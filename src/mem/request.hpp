// Memory request/response packets exchanged between SMs, the interconnect
// and the memory partitions.
#pragma once

#include "common/types.hpp"

namespace gpusim {

/// A cache-line read request travelling SM -> crossbar -> partition.
/// (The evaluated kernels are modelled as read-dominated, as in the paper's
/// bandwidth analysis; writes would follow the same path.)
struct MemRequestPacket {
  u64 line_addr = 0;  ///< Line-aligned byte address.
  AppId app = kInvalidApp;
  SmId sm = kInvalidSm;
  WarpId warp = -1;
  PartitionId dest = -1;
  Cycle ready = 0;  ///< Earliest cycle the packet may be consumed (NoC latency).
};

/// A fill/ack travelling partition -> crossbar -> SM.
struct MemResponsePacket {
  u64 line_addr = 0;
  AppId app = kInvalidApp;
  SmId sm = kInvalidSm;
  WarpId warp = -1;
  Cycle ready = 0;
};

}  // namespace gpusim
