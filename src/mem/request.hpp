// Memory request/response packets exchanged between SMs, the interconnect
// and the memory partitions.
#pragma once

#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

/// A cache-line read request travelling SM -> crossbar -> partition.
/// (The evaluated kernels are modelled as read-dominated, as in the paper's
/// bandwidth analysis; writes would follow the same path.)
struct MemRequestPacket {
  u64 line_addr = 0;  ///< Line-aligned byte address.
  AppId app = kInvalidApp;
  SmId sm = kInvalidSm;
  WarpId warp = -1;
  PartitionId dest = -1;
  Cycle ready = 0;  ///< Earliest cycle the packet may be consumed (NoC latency).
};

/// A fill/ack travelling partition -> crossbar -> SM.
struct MemResponsePacket {
  u64 line_addr = 0;
  AppId app = kInvalidApp;
  SmId sm = kInvalidSm;
  WarpId warp = -1;
  Cycle ready = 0;
};

// SimState element serialization (ADL hooks used by BoundedQueue,
// CrossbarChannel and the deque helpers in simstate-aware components).

template <typename Sink>
void write_item(Sink& s, const MemRequestPacket& p) {
  s.put_u64(p.line_addr);
  s.put_i32(p.app);
  s.put_i32(p.sm);
  s.put_i32(p.warp);
  s.put_i32(p.dest);
  s.put_u64(p.ready);
}
inline void read_item(StateReader& r, MemRequestPacket& p) {
  p.line_addr = r.get_u64();
  p.app = r.get_i32();
  p.sm = r.get_i32();
  p.warp = r.get_i32();
  p.dest = r.get_i32();
  p.ready = r.get_u64();
}

template <typename Sink>
void write_item(Sink& s, const MemResponsePacket& p) {
  s.put_u64(p.line_addr);
  s.put_i32(p.app);
  s.put_i32(p.sm);
  s.put_i32(p.warp);
  s.put_u64(p.ready);
}
inline void read_item(StateReader& r, MemResponsePacket& p) {
  p.line_addr = r.get_u64();
  p.app = r.get_i32();
  p.sm = r.get_i32();
  p.warp = r.get_i32();
  p.ready = r.get_u64();
}

}  // namespace gpusim
