// A memory partition: one shared-L2 slice, its MSHRs, the per-application
// sampled auxiliary tag directories, and the DRAM memory controller behind
// them (paper Fig. 1: "each memory partition has a L2 cache and a DRAM
// memory subsystem").
#pragma once

#include <algorithm>
#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "cache/atd.hpp"
#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/audit.hpp"
#include "common/bounded_queue.hpp"
#include "common/config.hpp"
#include "common/fault_injection.hpp"
#include "common/flight_recorder.hpp"
#include "common/sim_error.hpp"
#include "common/stats.hpp"
#include "mem/address_map.hpp"
#include "mem/dram.hpp"
#include "mem/request.hpp"

namespace gpusim {

/// Per-partition counters beyond the MC's own.
struct PartitionCounters {
  PerAppCounter l2_accesses;
  PerAppCounter l2_hits;
  /// DASE's ELLCMiss events observed in the sampled ATD sets (raw, unscaled).
  PerAppCounter atd_extra_miss_samples;
  /// L2 accesses while the app held / nobody held DRAM priority — the
  /// cache-access-rate inputs of the ASM baseline.
  PerAppCounter l2_accesses_priority;
  PerAppCounter l2_accesses_nonpriority;

  void snapshot_all() {
    l2_accesses.snapshot();
    l2_hits.snapshot();
    atd_extra_miss_samples.snapshot();
    l2_accesses_priority.snapshot();
    l2_accesses_nonpriority.snapshot();
  }

  template <typename Sink>
  void write_state(Sink& s) const {
    l2_accesses.write_state(s);
    l2_hits.write_state(s);
    atd_extra_miss_samples.write_state(s);
    l2_accesses_priority.write_state(s);
    l2_accesses_nonpriority.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    l2_accesses.load(r);
    l2_hits.load(r);
    atd_extra_miss_samples.load(r);
    l2_accesses_priority.load(r);
    l2_accesses_nonpriority.load(r);
  }
};

class MemoryPartition {
 public:
  MemoryPartition(const GpuConfig& cfg, int num_apps, PartitionId id);

  /// Output queue the response crossbar drains.
  BoundedQueue<MemResponsePacket>& resp_queue() { return resp_queue_; }
  const BoundedQueue<MemResponsePacket>& resp_queue() const {
    return resp_queue_;
  }

  /// Advances one cycle: progresses DRAM, retires fills, consumes the
  /// request crossbar's delivery queue `in_queue` through the L2 stage.
  void cycle(Cycle now, BoundedQueue<MemRequestPacket>& in_queue);

  /// SimGuard wiring (both optional; owned by the Gpu).
  void set_taps(ConservationTaps* taps) { taps_ = taps; }
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Optional black-box flight recorder (owned by the Gpu): queue
  /// high-water marks and injected-fault firings are recorded into it.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Adds every response this partition still owes (MSHR waiters, pending
  /// hits, deferred and queued responses) to the per-app tally.
  void count_in_flight(std::array<u64, kMaxApps>& out) const;

  MemoryController& mc() { return mc_; }
  const MemoryController& mc() const { return mc_; }
  PartitionCounters& counters() { return counters_; }
  const PartitionCounters& counters() const { return counters_; }
  const SetAssocCache& l2() const { return l2_; }
  const SampledAtd& atd(AppId app) const { return *atds_[app]; }

  /// Scaled ELLCMiss (Eq. 13) accumulated since the last snapshot.
  u64 interval_scaled_extra_misses(AppId app) const {
    return counters_.atd_extra_miss_samples.interval(app) *
           static_cast<u64>(1.0 / atds_[app]->sample_fraction() + 0.5);
  }

  /// Outstanding work in this partition (for drain checks).
  bool quiescent() const {
    return resp_queue_.empty() && mshr_.in_flight() == 0 &&
           pending_hits_.empty() && deferred_resps_.empty() &&
           mc_.total_outstanding() == 0;
  }

  std::size_t deferred_responses() const { return deferred_resps_.size(); }
  int mshr_in_flight() const { return mshr_.in_flight(); }

  // --- Idle-cycle fast-forward / activity-engine support ------------------
  // Every stage of cycle() pops only queue *fronts*, so head-of-line
  // timestamps bound exactly when the partition can act again.  The
  // response queue's front maturity additionally gates the response
  // crossbar's ingress from this partition.  These predicates are valid
  // per-component at any cycle boundary (not just global-quiet points):
  // the activity engine sleeps an individual partition on them and wakes
  // it early when the request crossbar accepts a packet toward it
  // (DESIGN.md §12).

  /// True when cycle(now, in_queue) would change no state and the response
  /// crossbar could not accept a packet from this partition either.
  bool quiet_at(Cycle now,
                const BoundedQueue<MemRequestPacket>& in_queue) const {
    if (!deferred_resps_.empty()) return false;
    if (!resp_queue_.empty() && resp_queue_.front().ready <= now)
      return false;
    if (!pending_hits_.empty() && pending_hits_.front().ready <= now)
      return false;
    if (!in_queue.empty() && in_queue.front().ready <= now) return false;
    return mc_.quiet_at(now);
  }

  /// Earliest future cycle at which a quiet partition (or the crossbars
  /// around it) may act again.  Only meaningful when quiet_at() holds.
  Cycle next_event_after(Cycle now,
                         const BoundedQueue<MemRequestPacket>& in_queue)
      const {
    Cycle next = mc_.next_event_after(now);
    if (!resp_queue_.empty()) {
      next = std::min(next, resp_queue_.front().ready);
    }
    if (!pending_hits_.empty()) {
      next = std::min(next, pending_hits_.front().ready);
    }
    if (!in_queue.empty()) next = std::min(next, in_queue.front().ready);
    return next;
  }

  // SimState: the full partition pipeline.  completed_scratch_ is cleared at
  // the top of every cycle() and is dead between cycles; taps_/injector_ are
  // runtime wiring owned by the Gpu.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("PART");
    l2_.write_state(s);
    mshr_.write_state(s);
    for (const auto& atd : atds_) atd->write_state(s);
    mc_.write_state(s);
    resp_queue_.write_state(s);
    auto put_resps = [&s](const std::deque<MemResponsePacket>& dq) {
      s.put_u64(dq.size());
      for (const MemResponsePacket& p : dq) write_item(s, p);
    };
    put_resps(pending_hits_);
    put_resps(deferred_resps_);
    counters_.write_state(s);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("PART");
    l2_.load(r);
    mshr_.load(r);
    for (auto& atd : atds_) atd->load(r);
    mc_.load(r);
    resp_queue_.load(r);
    auto get_resps = [&r](std::deque<MemResponsePacket>& dq, const char* what) {
      dq.clear();
      const u64 n = r.get_count(1u << 20, what);
      for (u64 i = 0; i < n; ++i) {
        MemResponsePacket p;
        read_item(r, p);
        dq.push_back(p);
      }
    };
    get_resps(pending_hits_, "partition pending hits");
    get_resps(deferred_resps_, "partition deferred responses");
    counters_.load(r);
  }

 private:
  void push_response(MemResponsePacket resp, Cycle now);

  const GpuConfig& cfg_;
  PartitionId id_;
  AddressMap address_map_;
  SetAssocCache l2_;
  Mshr mshr_;
  std::vector<std::unique_ptr<SampledAtd>> atds_;
  MemoryController mc_;

  BoundedQueue<MemResponsePacket> resp_queue_;

  /// L2 hits in flight: responses mature after l2_hit_latency (FIFO works
  /// because the latency is constant).
  std::deque<MemResponsePacket> pending_hits_;
  /// DRAM-fill responses awaiting space in the saturated response queue.
  std::deque<MemResponsePacket> deferred_resps_;

  std::vector<DramCmd> completed_scratch_;
  PartitionCounters counters_;
  ConservationTaps* taps_ = nullptr;
  FaultInjector* injector_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace gpusim
