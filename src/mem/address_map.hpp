// Physical address decomposition: partition / bank / row.
//
// Cache lines interleave across memory partitions at line granularity
// (channel bits lowest, as on real GPUs, so bandwidth spreads evenly),
// while within a partition the DRAM address splits as row : bank : column —
// column bits below bank bits.  A sequential stream therefore fills one
// 2KB row of one bank before moving to the next bank: streams with high
// sequential locality earn row-buffer hits, irregular streams pay
// activate/precharge on nearly every access, and FR-FCFS then prioritises
// the former over the latter — the asymmetric inter-application
// interference at the heart of the paper's motivation (Fig. 2).
#pragma once

#include "common/config.hpp"
#include "common/sim_error.hpp"
#include "common/types.hpp"

namespace gpusim {

struct DramCoordinates {
  PartitionId partition = 0;
  int bank = 0;
  u64 row = 0;
};

class AddressMap {
 public:
  explicit AddressMap(const GpuConfig& cfg)
      : line_bytes_(cfg.line_bytes),
        num_partitions_(cfg.num_partitions),
        banks_per_mc_(cfg.banks_per_mc),
        lines_per_row_(cfg.lines_per_row()) {
    SIM_CHECK(lines_per_row_ > 0,
              SimError(SimErrorKind::kConfig, "mem.address_map",
                       "row must hold at least one cache line")
                  .detail("row_bytes", cfg.row_bytes)
                  .detail("line_bytes", cfg.line_bytes));
  }

  DramCoordinates decode(u64 addr) const {
    const u64 line = addr / line_bytes_;
    DramCoordinates c;
    c.partition = static_cast<PartitionId>(line % num_partitions_);
    const u64 pline = line / num_partitions_;
    c.bank = static_cast<int>((pline / lines_per_row_) % banks_per_mc_);
    c.row = pline / (lines_per_row_ * banks_per_mc_);
    return c;
  }

  PartitionId partition_of(u64 addr) const {
    return static_cast<PartitionId>((addr / line_bytes_) % num_partitions_);
  }

 private:
  u64 line_bytes_;
  u64 num_partitions_;
  u64 banks_per_mc_;
  u64 lines_per_row_;
};

}  // namespace gpusim
