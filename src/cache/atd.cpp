#include "cache/atd.hpp"

#include "common/sim_error.hpp"

namespace gpusim {

SampledAtd::SampledAtd(int shadow_sets, int assoc, int line_bytes,
                       int sampled_sets)
    : shadow_sets_(shadow_sets),
      sample_stride_(1),
      line_bytes_(line_bytes),
      tags_(sampled_sets, assoc, line_bytes) {
  SIM_CHECK(sampled_sets > 0 && sampled_sets <= shadow_sets,
            SimError(SimErrorKind::kConfig, "cache.atd",
                     "sampled set count out of range")
                .detail("sampled_sets", sampled_sets)
                .detail("shadow_sets", shadow_sets));
  SIM_CHECK(shadow_sets % sampled_sets == 0,
            SimError(SimErrorKind::kConfig, "cache.atd",
                     "sampled sets must evenly divide the shadow cache")
                .detail("sampled_sets", sampled_sets)
                .detail("shadow_sets", shadow_sets));
  sample_stride_ = shadow_sets / sampled_sets;
}

bool SampledAtd::is_sampled(u64 addr) const {
  return shadow_set_index(addr) % sample_stride_ == 0;
}

bool SampledAtd::access(u64 addr) {
  SIM_INVARIANT(is_sampled(addr), "cache.atd",
                "access to a set the ATD does not sample");
  // Re-map the line so the internal directory's set index equals the
  // sampled-set ordinal while the tag still uniquely identifies the line:
  // line_id = row * shadow_sets + shadow_set, and shadow_set is a multiple
  // of the stride here, so (row, shadow_set/stride) round-trips to line_id.
  const u64 line_id = addr / line_bytes_;
  const u64 row = line_id / shadow_sets_;
  const u64 sampled_ordinal =
      static_cast<u64>(shadow_set_index(addr) / sample_stride_);
  const u64 remapped_line =
      row * static_cast<u64>(tags_.num_sets()) + sampled_ordinal;
  return tags_.access(remapped_line * line_bytes_, /*app=*/0).hit;
}

void SampledAtd::clear() {
  tags_.clear();
  sample_extra_misses_ = 0;
}

}  // namespace gpusim
