#include "cache/atd.hpp"

#include <cassert>

namespace gpusim {

SampledAtd::SampledAtd(int shadow_sets, int assoc, int line_bytes,
                       int sampled_sets)
    : shadow_sets_(shadow_sets),
      sample_stride_(shadow_sets / sampled_sets),
      line_bytes_(line_bytes),
      tags_(sampled_sets, assoc, line_bytes) {
  assert(sampled_sets > 0 && sampled_sets <= shadow_sets);
  assert(shadow_sets % sampled_sets == 0 &&
         "sampled sets must evenly divide the shadow cache");
}

bool SampledAtd::is_sampled(u64 addr) const {
  return shadow_set_index(addr) % sample_stride_ == 0;
}

bool SampledAtd::access(u64 addr) {
  assert(is_sampled(addr));
  // Re-map the line so the internal directory's set index equals the
  // sampled-set ordinal while the tag still uniquely identifies the line:
  // line_id = row * shadow_sets + shadow_set, and shadow_set is a multiple
  // of the stride here, so (row, shadow_set/stride) round-trips to line_id.
  const u64 line_id = addr / line_bytes_;
  const u64 row = line_id / shadow_sets_;
  const u64 sampled_ordinal =
      static_cast<u64>(shadow_set_index(addr) / sample_stride_);
  const u64 remapped_line =
      row * static_cast<u64>(tags_.num_sets()) + sampled_ordinal;
  return tags_.access(remapped_line * line_bytes_, /*app=*/0).hit;
}

void SampledAtd::clear() {
  tags_.clear();
  sample_extra_misses_ = 0;
}

}  // namespace gpusim
