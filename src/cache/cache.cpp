#include "cache/cache.hpp"

#include "common/sim_error.hpp"

namespace gpusim {

SetAssocCache::SetAssocCache(int num_sets, int assoc, int line_bytes)
    : num_sets_(num_sets), assoc_(assoc), line_bytes_(line_bytes) {
  SIM_CHECK(num_sets_ > 0 && assoc_ > 0,
            SimError(SimErrorKind::kConfig, "cache.set_assoc",
                     "cache geometry must be positive")
                .detail("num_sets", num_sets_)
                .detail("assoc", assoc_));
  SIM_CHECK(line_bytes_ > 0 && (line_bytes_ & (line_bytes_ - 1)) == 0,
            SimError(SimErrorKind::kConfig, "cache.set_assoc",
                     "line size must be a power of two")
                .detail("line_bytes", line_bytes_));
  lines_.resize(static_cast<std::size_t>(num_sets_) * assoc_);
}

bool SetAssocCache::lookup_touch(u64 addr, AppId app) {
  ++stats_.accesses;
  const u64 tag = line_addr(addr);
  Line* begin = set_begin(set_index(addr));
  ++tick_;
  for (int w = 0; w < assoc_; ++w) {
    Line& line = begin[w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = tick_;
      line.app = app;
      ++stats_.hits;
      return true;
    }
  }
  return false;
}

CacheAccessResult SetAssocCache::fill(u64 addr, AppId app) {
  const u64 tag = line_addr(addr);
  Line* begin = set_begin(set_index(addr));
  ++tick_;

  Line* victim = nullptr;
  for (int w = 0; w < assoc_; ++w) {
    Line& line = begin[w];
    if (line.valid && line.tag == tag) {
      // Already present (e.g. refilled by a racing fill); just refresh.
      line.lru_stamp = tick_;
      line.app = app;
      return {.hit = true};
    }
    if (!line.valid) {
      if (victim == nullptr || victim->valid) victim = &line;
    } else if (victim == nullptr ||
               (victim->valid && line.lru_stamp < victim->lru_stamp)) {
      victim = &line;
    }
  }
  CacheAccessResult result;
  if (victim->valid) {
    result.evicted = true;
    result.victim_app = victim->app;
    ++stats_.evictions;
    if (victim->app != app) ++stats_.cross_app_evictions;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->app = app;
  victim->lru_stamp = tick_;
  return result;
}

CacheAccessResult SetAssocCache::access(u64 addr, AppId app) {
  ++stats_.accesses;
  const u64 tag = line_addr(addr);
  const int set = set_index(addr);
  Line* begin = set_begin(set);
  ++tick_;

  Line* victim = nullptr;
  for (int w = 0; w < assoc_; ++w) {
    Line& line = begin[w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = tick_;
      line.app = app;
      ++stats_.hits;
      return {.hit = true};
    }
    if (!line.valid) {
      if (victim == nullptr || victim->valid) victim = &line;
    } else if (victim == nullptr ||
               (victim->valid && line.lru_stamp < victim->lru_stamp)) {
      victim = &line;
    }
  }

  CacheAccessResult result;
  if (victim->valid) {
    result.evicted = true;
    result.victim_app = victim->app;
    ++stats_.evictions;
    if (victim->app != app) ++stats_.cross_app_evictions;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->app = app;
  victim->lru_stamp = tick_;
  return result;
}

bool SetAssocCache::probe(u64 addr) const {
  const u64 tag = line_addr(addr);
  const Line* begin = set_begin(set_index(addr));
  for (int w = 0; w < assoc_; ++w) {
    if (begin[w].valid && begin[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::clear() {
  for (auto& line : lines_) line.valid = false;
  tick_ = 0;
  stats_ = {};
}

}  // namespace gpusim
