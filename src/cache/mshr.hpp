// Miss Status Holding Registers.
//
// Merges outstanding misses to the same cache line so only one request per
// line is in flight, and fans the response back out to every waiter.  Used
// at both cache levels: the L1 MSHR tracks waiting warps of one SM, the L2
// MSHR tracks waiting (SM, warp) pairs across SMs.
#pragma once

#include <algorithm>
#include <array>
#include <unordered_map>
#include <vector>

#include "common/sim_error.hpp"
#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

struct MshrWaiter {
  SmId sm = kInvalidSm;
  WarpId warp = -1;
  AppId app = kInvalidApp;
};

class Mshr {
 public:
  explicit Mshr(int max_entries) : max_entries_(max_entries) {
    SIM_CHECK(max_entries_ > 0,
              SimError(SimErrorKind::kConfig, "cache.mshr",
                       "MSHR entry count must be positive"));
    // Occupancy is hard-capped at max_entries_, so sizing the bucket array
    // up front means steady-state allocate/release on the partition hot
    // path never rehashes.
    entries_.reserve(static_cast<std::size_t>(max_entries_));
  }

  enum class AllocResult {
    kNewMiss,   ///< First miss for this line; caller must forward a request.
    kMerged,    ///< Line already in flight; waiter recorded, no new request.
    kRejected,  ///< Structure full; caller must stall and retry.
  };

  AllocResult allocate(u64 line_addr, MshrWaiter waiter) {
    auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
      it->second.push_back(waiter);
      return AllocResult::kMerged;
    }
    if (static_cast<int>(entries_.size()) >= max_entries_) {
      return AllocResult::kRejected;
    }
    entries_[line_addr].push_back(waiter);
    return AllocResult::kNewMiss;
  }

  /// Retires the entry for `line_addr`, returning every recorded waiter.
  /// The entry must exist.
  std::vector<MshrWaiter> release(u64 line_addr) {
    auto it = entries_.find(line_addr);
    SIM_CHECK(it != entries_.end(),
              SimError(SimErrorKind::kInvariant, "cache.mshr",
                       "response for a line with no MSHR entry "
                       "(double completion?)")
                  .detail("line_addr", line_addr)
                  .detail("entries_in_flight", entries_.size()));
    std::vector<MshrWaiter> waiters = std::move(it->second);
    entries_.erase(it);
    return waiters;
  }

  bool contains(u64 line_addr) const { return entries_.contains(line_addr); }
  int in_flight() const { return static_cast<int>(entries_.size()); }
  bool full() const { return in_flight() >= max_entries_; }
  void clear() { entries_.clear(); }

  // SimState: entries are serialized in sorted line-address order so save and
  // hash are independent of unordered_map iteration order.  The simulator
  // only ever looks entries up by key, so the rebuilt map's internal order
  // cannot influence behaviour; waiter order *within* a line is preserved
  // because release() fans responses out in recorded order.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("MSHR");
    std::vector<u64> lines;
    lines.reserve(entries_.size());
    for (const auto& [line, waiters] : entries_) lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    s.put_u64(lines.size());
    for (u64 line : lines) {
      const auto& waiters = entries_.at(line);
      s.put_u64(line);
      s.put_u64(waiters.size());
      for (const MshrWaiter& w : waiters) {
        s.put_i32(w.sm);
        s.put_i32(w.warp);
        s.put_i32(w.app);
      }
    }
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("MSHR");
    entries_.clear();
    const u64 n = r.get_count(static_cast<u64>(max_entries_), "mshr entries");
    for (u64 i = 0; i < n; ++i) {
      const u64 line = r.get_u64();
      const u64 waiter_count = r.get_count(1u << 20, "mshr waiters");
      auto& waiters = entries_[line];
      waiters.resize(waiter_count);
      for (auto& w : waiters) {
        w.sm = r.get_i32();
        w.warp = r.get_i32();
        w.app = r.get_i32();
      }
    }
  }

  /// Adds the number of recorded waiters of each application to `out`
  /// (conservation audit: each waiter owes exactly one response packet).
  void count_waiters_by_app(std::array<u64, kMaxApps>& out) const {
    for (const auto& [line, waiters] : entries_) {
      for (const MshrWaiter& w : waiters) {
        if (w.app >= 0 && w.app < kMaxApps) ++out[w.app];
      }
    }
  }

 private:
  int max_entries_;
  std::unordered_map<u64, std::vector<MshrWaiter>> entries_;
};

}  // namespace gpusim
