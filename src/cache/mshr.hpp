// Miss Status Holding Registers.
//
// Merges outstanding misses to the same cache line so only one request per
// line is in flight, and fans the response back out to every waiter.  Used
// at both cache levels: the L1 MSHR tracks waiting warps of one SM, the L2
// MSHR tracks waiting (SM, warp) pairs across SMs.
#pragma once

#include <cassert>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace gpusim {

struct MshrWaiter {
  SmId sm = kInvalidSm;
  WarpId warp = -1;
  AppId app = kInvalidApp;
};

class Mshr {
 public:
  explicit Mshr(int max_entries) : max_entries_(max_entries) {
    assert(max_entries_ > 0);
  }

  enum class AllocResult {
    kNewMiss,   ///< First miss for this line; caller must forward a request.
    kMerged,    ///< Line already in flight; waiter recorded, no new request.
    kRejected,  ///< Structure full; caller must stall and retry.
  };

  AllocResult allocate(u64 line_addr, MshrWaiter waiter) {
    auto it = entries_.find(line_addr);
    if (it != entries_.end()) {
      it->second.push_back(waiter);
      return AllocResult::kMerged;
    }
    if (static_cast<int>(entries_.size()) >= max_entries_) {
      return AllocResult::kRejected;
    }
    entries_[line_addr].push_back(waiter);
    return AllocResult::kNewMiss;
  }

  /// Retires the entry for `line_addr`, returning every recorded waiter.
  /// The entry must exist.
  std::vector<MshrWaiter> release(u64 line_addr) {
    auto it = entries_.find(line_addr);
    assert(it != entries_.end() && "response for line with no MSHR entry");
    std::vector<MshrWaiter> waiters = std::move(it->second);
    entries_.erase(it);
    return waiters;
  }

  bool contains(u64 line_addr) const { return entries_.contains(line_addr); }
  int in_flight() const { return static_cast<int>(entries_.size()); }
  bool full() const { return in_flight() >= max_entries_; }
  void clear() { entries_.clear(); }

 private:
  int max_entries_;
  std::unordered_map<u64, std::vector<MshrWaiter>> entries_;
};

}  // namespace gpusim
