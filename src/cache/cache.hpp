// Set-associative write-allocate cache with true-LRU replacement.
//
// Used for both the per-SM L1 data caches and the per-partition shared L2
// slices (paper Table II: 16KB 4-way L1, 128KB 8-way L2 slice, 128B lines).
// Lines carry the owning application id so shared-cache contention (who
// evicted whom) can be observed — the interference source DASE's ELLCMiss
// counter and the ASM baseline's ATD correction both target.
#pragma once

#include <cassert>
#include <vector>

#include "common/simstate.hpp"
#include "common/types.hpp"

namespace gpusim {

struct CacheAccessResult {
  bool hit = false;
  /// Valid line was evicted to make room (only meaningful on a miss).
  bool evicted = false;
  /// Application that owned the evicted line (kInvalidApp when !evicted).
  AppId victim_app = kInvalidApp;
};

struct CacheStats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 evictions = 0;
  /// Evictions where the victim line belonged to a different application —
  /// the raw inter-application cache interference events.
  u64 cross_app_evictions = 0;
};

class SetAssocCache {
 public:
  /// `num_sets` and `assoc` define geometry; `line_bytes` must be pow2.
  SetAssocCache(int num_sets, int assoc, int line_bytes);

  /// Looks up `addr`; on miss, allocates the line (LRU victim) for `app`.
  /// Allocate-on-miss semantics — used by the ATD shadow directories, where
  /// the alone-cache contents must be updated immediately.
  CacheAccessResult access(u64 addr, AppId app);

  /// Demand lookup used with fill-on-response: on hit, touches LRU and
  /// returns true; on miss, records the miss but does NOT allocate (the
  /// line is installed later via fill(), after the memory system responds).
  bool lookup_touch(u64 addr, AppId app);

  /// Installs `addr` on response arrival.  Does not count as an access in
  /// stats (the demand lookup already did); evictions are still recorded.
  CacheAccessResult fill(u64 addr, AppId app);

  /// Lookup without any state change (used by tests and probes).
  bool probe(u64 addr) const;

  /// Invalidates every line (used between runs).
  void clear();

  int num_sets() const { return num_sets_; }
  int assoc() const { return assoc_; }
  const CacheStats& stats() const { return stats_; }

  u64 line_addr(u64 addr) const { return addr / line_bytes_; }
  int set_index(u64 addr) const {
    return static_cast<int>(line_addr(addr) % num_sets_);
  }

  // SimState: geometry is construction-time config; tags, LRU stamps and
  // stats are the run-time state.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("CACH");
    s.put_u64(tick_);
    for (const Line& l : lines_) {
      s.put_u64(l.tag);
      s.put_u64(l.lru_stamp);
      s.put_i32(l.app);
      s.put_bool(l.valid);
    }
    s.put_u64(stats_.accesses);
    s.put_u64(stats_.hits);
    s.put_u64(stats_.evictions);
    s.put_u64(stats_.cross_app_evictions);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("CACH");
    tick_ = r.get_u64();
    for (Line& l : lines_) {
      l.tag = r.get_u64();
      l.lru_stamp = r.get_u64();
      l.app = r.get_i32();
      l.valid = r.get_bool();
    }
    stats_.accesses = r.get_u64();
    stats_.hits = r.get_u64();
    stats_.evictions = r.get_u64();
    stats_.cross_app_evictions = r.get_u64();
  }

 private:
  struct Line {
    u64 tag = 0;
    u64 lru_stamp = 0;
    AppId app = kInvalidApp;
    bool valid = false;
  };

  int num_sets_;
  int assoc_;
  int line_bytes_;
  u64 tick_ = 0;
  std::vector<Line> lines_;  // num_sets_ * assoc_, row-major by set
  CacheStats stats_;

  Line* set_begin(int set) { return lines_.data() + set * assoc_; }
  const Line* set_begin(int set) const { return lines_.data() + set * assoc_; }
};

}  // namespace gpusim
