// Auxiliary Tag Directory (ATD) with set sampling.
//
// Paper Section 4.2 (after Qureshi & Patt's UCP): to detect contention
// cache misses — accesses that miss the shared L2 but *would have hit* had
// the application been running alone — DASE keeps, per application, a tag
// directory with the same associativity and LRU policy as the L2, fed only
// with that application's accesses.  To bound hardware cost, only a few
// sampled sets are tracked (paper: 8 sets) and the miss count is scaled by
// the inverse sampling fraction (Eq. 13).
#pragma once

#include <vector>

#include "cache/cache.hpp"
#include "common/types.hpp"

namespace gpusim {

class SampledAtd {
 public:
  /// Mirrors a cache with `shadow_sets` total sets, sampling `sampled_sets`
  /// of them evenly.
  SampledAtd(int shadow_sets, int assoc, int line_bytes, int sampled_sets);

  /// True when `addr` maps to one of the sampled sets.
  bool is_sampled(u64 addr) const;

  /// Updates the ATD with this application-private access and reports
  /// whether it hit.  Must only be called for sampled addresses.
  bool access(u64 addr);

  /// Raw extra-miss events observed in the sampled sets this lifetime.
  u64 sample_extra_misses() const { return sample_extra_misses_; }
  void record_extra_miss() { ++sample_extra_misses_; }

  /// Eq. 13: scales sampled extra misses by 1 / SampleFraction.
  u64 scaled_extra_misses() const {
    return sample_extra_misses_ * static_cast<u64>(sample_stride_);
  }

  double sample_fraction() const { return 1.0 / sample_stride_; }

  void clear();

  // SimState: geometry/stride are construction-time config.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("ATD ");
    tags_.write_state(s);
    s.put_u64(sample_extra_misses_);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("ATD ");
    tags_.load(r);
    sample_extra_misses_ = r.get_u64();
  }

 private:
  int shadow_sets_;
  int sample_stride_;  // shadow set index is sampled when index % stride == 0
  int line_bytes_;
  SetAssocCache tags_;
  u64 sample_extra_misses_ = 0;

  int shadow_set_index(u64 addr) const {
    return static_cast<int>((addr / line_bytes_) % shadow_sets_);
  }
};

}  // namespace gpusim
