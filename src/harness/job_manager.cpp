#include "harness/job_manager.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/bounded_queue.hpp"
#include "common/build_info.hpp"
#include "common/fault_injection.hpp"
#include "common/sim_error.hpp"
#include "harness/chaos.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/worker_pool.hpp"
#include "kernels/app_registry.hpp"

namespace gpusim {

namespace {

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// splitmix64 — the repo's standard seed mixer; here it derives the
/// deterministic retry-backoff jitter from (job index, attempt).
u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[noreturn]] void spec_error(const std::string& line, const std::string& why) {
  SIM_FAIL(SimError(SimErrorKind::kConfig, "harness.jobs",
                    "bad job spec: " + why)
               .detail("line", line));
}

u64 parse_spec_u64(const std::string& line, const std::string& key,
                   const std::string& value) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    spec_error(line, key + " expects a non-negative integer, got '" + value +
                         "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    spec_error(line, key + " value out of range: '" + value + "'");
  }
  return static_cast<u64>(parsed);
}

std::vector<std::string> split_on(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Same positional field extraction the sweep checkpoint loader uses: the
/// manifest is our own append-only output, so this is exact, not heuristic.
std::string extract_string_field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  std::string out;
  for (auto i = start; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char n = line[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        default: out += n;
      }
      continue;
    }
    if (c == '"') return out;
    out += c;
  }
  return "";
}

bool extract_u64_field(const std::string& line, const std::string& key,
                       u64& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  auto end = start;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
  if (end == start) return false;
  out = std::strtoull(line.substr(start, end - start).c_str(), nullptr, 10);
  return true;
}

Cycle effective_cycles(const JobSpec& spec, const JobManagerOptions& opts) {
  return spec.cycles != 0 ? spec.cycles : opts.default_cycles;
}

Cycle effective_watchdog(const JobSpec& spec) {
  return spec.watchdog == JobSpec::kInheritWatchdog ? RunConfig{}.watchdog_cycles
                                                    : spec.watchdog;
}

double effective_deadline_ms(const JobSpec& spec,
                             const JobManagerOptions& opts) {
  return spec.deadline_ms > 0.0 ? spec.deadline_ms : opts.default_deadline_ms;
}

int effective_retries(const JobSpec& spec, const JobManagerOptions& opts) {
  return spec.max_retries >= 0 ? spec.max_retries : opts.max_retries;
}

/// Transient failures are worth another attempt (a stall can be a one-off
/// under a tight watchdog; a lapsed deadline may pass on a less loaded
/// machine).  Config, invariant, conservation, snapshot and budget errors
/// are deterministic — retrying them only burns the failure budget.
bool transient_failure(SimErrorKind kind) {
  switch (kind) {
    case SimErrorKind::kWatchdogStall:
    case SimErrorKind::kRecoveryExhausted:
    case SimErrorKind::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

std::string job_snapshot_dir(const JobManagerOptions& opts, int index) {
  return opts.snapshot_dir + "/job" + std::to_string(index);
}

std::string job_telemetry_dir(const JobManagerOptions& opts, int index) {
  return opts.telemetry_dir + "/job" + std::to_string(index);
}

std::string engine_checkpoint_path(const JobManagerOptions& opts, int index,
                                   const char* engine) {
  return opts.manifest_path + ".job" + std::to_string(index) + "." + engine +
         ".jsonl";
}

Workload workload_of(const JobSpec& spec) {
  Workload w;
  for (const std::string& name : spec.apps) {
    const auto app = find_app(name);
    SIM_CHECK(app.has_value(),
              SimError(SimErrorKind::kConfig, "harness.jobs",
                       "unknown application in job spec")
                  .detail("app", name));
    w.apps.push_back(*app);
  }
  return w;
}

RunConfig base_run_config(const JobSpec& spec, const JobManagerOptions& opts,
                          std::chrono::steady_clock::time_point deadline) {
  RunConfig rc;
  rc.gpu = opts.gpu;
  rc.base_seed = opts.base_seed;
  rc.co_run_cycles = effective_cycles(spec, opts);
  rc.watchdog_cycles = effective_watchdog(spec);
  rc.alone_mode = RunConfig::AloneMode::kCachedIpc;
  rc.wall_deadline = deadline;
  rc.cycle_budget = spec.cycle_budget;
  rc.mem_budget = spec.mem_budget;
  rc.cancel = opts.cancel;
  rc.crash_bundle_dir = opts.crash_bundle_dir;
  rc.crash_bundle_mode = "jobs";
  if (!opts.telemetry_dir.empty()) {
    rc.telemetry.dir = job_telemetry_dir(opts, spec.index);
  }
  return rc;
}

/// run job → the co-run result object (SweepRunner's canonical form).
std::string execute_run_job(const JobSpec& spec, const JobManagerOptions& opts,
                            std::chrono::steady_clock::time_point deadline) {
  RunConfig rc = base_run_config(spec, opts, deadline);
  if (!spec.faults.empty()) rc.faults = FaultSchedule::parse(spec.faults);
  if (opts.snapshot_every != 0) {
    rc.snapshot_every = opts.snapshot_every;
    rc.snapshot_dir = job_snapshot_dir(opts, spec.index);
  }
  ExperimentRunner runner(rc);
  const ModelSet models{.dase = true};
  const PolicyKind policy = spec.policy == "dase-fair" ? PolicyKind::kDaseFair
                                                       : PolicyKind::kEven;
  return SweepRunner::to_json(runner.run(workload_of(spec), models, policy));
}

/// sweep job → the per-pair entry array.  The sweep keeps its own JSONL
/// checkpoint next to the manifest, so an interrupted sweep job resumes
/// mid-sweep, not from scratch.
std::string execute_sweep_job(const JobSpec& spec,
                              const JobManagerOptions& opts,
                              std::chrono::steady_clock::time_point deadline) {
  const RunConfig rc = base_run_config(spec, opts, deadline);
  std::vector<Workload> workloads;
  if (spec.sweep_which == "all") {
    workloads = all_two_app_workloads();
  } else {
    workloads = random_two_app_workloads(
        static_cast<int>(
            parse_spec_u64(spec.raw, "which=random:N", spec.sweep_which.substr(7))),
        rc.base_seed);
  }

  SweepOptions so;
  so.checkpoint_path = engine_checkpoint_path(opts, spec.index, "sweep");
  so.jobs = 1;  // the batch parallelizes across jobs, not inside them
  so.cancel = opts.cancel;
  SweepRunner sweep(so, SweepRunner::RunFnFactory([&rc]() {
                      auto runner = std::make_shared<ExperimentRunner>(rc);
                      return [runner](const Workload& w) {
                        return runner->run(w, ModelSet{.dase = true});
                      };
                    }));
  const std::vector<SweepEntry> entries = sweep.run(workloads);

  int failed = 0;
  std::ostringstream payload;
  payload << "[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SweepEntry& e = entries[i];
    // A drained slot (cancel flag mid-sweep): never attempted, no error —
    // the job is interrupted, not failed; its checkpoint resumes it.
    if (!e.ok && e.attempts == 0 && !e.from_checkpoint) {
      SIM_FAIL(SimError(SimErrorKind::kInterrupted, "harness.jobs",
                        "sweep job drained on the shutdown flag")
                   .detail("pending_pair", e.label));
    }
    if (i != 0) payload << ",";
    if (e.ok) {
      payload << e.result_json;
    } else {
      ++failed;
      payload << "{\"label\":\"" << escape_json(e.label)
              << "\",\"failed\":true,\"error\":\"" << escape_json(e.error)
              << "\"}";
    }
  }
  payload << "]";
  // Pairs already retried inside the sweep; re-running the whole job
  // cannot help, so failed pairs fail the job terminally (kHarness is a
  // fail-fast kind).  The checkpoint file keeps the per-pair detail.
  SIM_CHECK(failed == 0,
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     std::to_string(failed) + " of " +
                         std::to_string(entries.size()) +
                         " sweep pairs failed"));
  return payload.str();
}

/// chaos job → the campaign report, compacted onto one line (the report's
/// pretty form embeds newlines, which a JSONL manifest line must not).
std::string execute_chaos_job(const JobSpec& spec,
                              const JobManagerOptions& opts,
                              std::chrono::steady_clock::time_point deadline) {
  ChaosOptions co;
  co.gpu = opts.gpu;
  co.schedules = spec.chaos_schedules;
  co.seed = spec.chaos_seed;
  co.cycles = effective_cycles(spec, opts);
  co.jobs = 1;
  co.checkpoint_path = engine_checkpoint_path(opts, spec.index, "chaos");
  co.base_seed = opts.base_seed;
  co.cancel = opts.cancel;
  co.wall_deadline = deadline;
  co.crash_bundle_dir = opts.crash_bundle_dir;
  if (!opts.telemetry_dir.empty()) {
    co.telemetry_dir = job_telemetry_dir(opts, spec.index);
  }
  const ChaosReport report = run_chaos_campaign(co);
  for (const ChaosJobResult& job : report.jobs) {
    if (job.json.empty()) {
      SIM_FAIL(SimError(SimErrorKind::kInterrupted, "harness.jobs",
                        "chaos job drained on the shutdown flag")
                   .detail("pending_schedule", job.index));
    }
  }
  std::string payload = report.to_json();
  payload.erase(std::remove(payload.begin(), payload.end(), '\n'),
                payload.end());
  return payload;
}

std::string dispatch_job(const JobSpec& spec, const JobManagerOptions& opts,
                         std::chrono::steady_clock::time_point deadline) {
  switch (spec.type) {
    case JobType::kRun: return execute_run_job(spec, opts, deadline);
    case JobType::kSweep: return execute_sweep_job(spec, opts, deadline);
    case JobType::kChaos: return execute_chaos_job(spec, opts, deadline);
  }
  SIM_FAIL(SimError(SimErrorKind::kInvariant, "harness.jobs",
                    "unreachable job type"));
}

/// Canonical manifest result line for one finished job.
std::string result_line(const JobResult& r) {
  std::ostringstream ss;
  ss << "{\"job\":" << r.index << ",\"status\":\"" << to_string(r.status)
     << "\",\"attempts\":" << r.attempts;
  // Emitted only when the batch ran with telemetry enabled, so manifests of
  // telemetry-free batches stay byte-identical to previous versions.
  if (!r.telemetry_dir.empty()) {
    ss << ",\"telemetry_dir\":\"" << escape_json(r.telemetry_dir) << "\"";
  }
  if (r.status == JobStatus::kOk) {
    ss << ",\"payload\":" << r.payload_json;
  } else {
    ss << ",\"error_kind\":\"" << escape_json(r.error_kind)
       << "\",\"error_component\":\"" << escape_json(r.error_component)
       << "\",\"error_message\":\"" << escape_json(r.error_message)
       << "\",\"reproducer\":\"" << escape_json(r.reproducer) << "\"";
  }
  ss << "}";
  return ss.str();
}

}  // namespace

const char* to_string(JobType type) {
  switch (type) {
    case JobType::kRun: return "run";
    case JobType::kSweep: return "sweep";
    case JobType::kChaos: return "chaos";
  }
  return "?";
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

std::string JobSpec::config_key() const {
  // Everything behavior-determining except the index, in a fixed order, so
  // equal configs collide and distinct ones never do.
  std::ostringstream ss;
  ss << to_string(type) << "|apps=";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (i != 0) ss << ",";
    ss << apps[i];
  }
  ss << "|policy=" << policy << "|faults=" << faults
     << "|which=" << sweep_which << "|schedules=" << chaos_schedules
     << "|chaos_seed=" << chaos_seed << "|cycles=" << cycles
     << "|watchdog=" << watchdog << "|deadline_ms=" << deadline_ms
     << "|max_retries=" << max_retries << "|cycle_budget=" << cycle_budget
     << "|mem_budget=" << mem_budget;
  return ss.str();
}

JobSpec JobSpec::parse(const std::string& line, int index) {
  JobSpec spec;
  spec.index = index;
  spec.raw = line;

  std::istringstream ss(line);
  std::string token;
  SIM_CHECK(static_cast<bool>(ss >> token),
            SimError(SimErrorKind::kConfig, "harness.jobs",
                     "empty job spec line"));
  if (token == "run") {
    spec.type = JobType::kRun;
  } else if (token == "sweep") {
    spec.type = JobType::kSweep;
  } else if (token == "chaos") {
    spec.type = JobType::kChaos;
  } else {
    spec_error(line, "job type must be run|sweep|chaos, got '" + token + "'");
  }

  bool have_apps = false, have_which = false, have_schedules = false;
  while (ss >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      spec_error(line, "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "apps" && spec.type == JobType::kRun) {
      spec.apps = split_on(value, ',');
      if (spec.apps.empty()) spec_error(line, "apps= lists no applications");
      for (const std::string& name : spec.apps) {
        if (!find_app(name)) {
          spec_error(line, "unknown application '" + name + "'");
        }
      }
      have_apps = true;
    } else if (key == "policy" && spec.type == JobType::kRun) {
      if (value != "even" && value != "dase-fair") {
        spec_error(line, "policy must be even|dase-fair, got '" + value + "'");
      }
      spec.policy = value;
    } else if (key == "faults" && spec.type == JobType::kRun) {
      try {
        FaultSchedule::parse(value);  // validate now, store the spec string
      } catch (const std::exception& e) {
        spec_error(line, std::string("bad faults= spec: ") + e.what());
      }
      spec.faults = value;
    } else if (key == "which" && spec.type == JobType::kSweep) {
      if (value != "all" && value.rfind("random:", 0) != 0) {
        spec_error(line, "which must be all|random:N, got '" + value + "'");
      }
      if (value.rfind("random:", 0) == 0) {
        if (parse_spec_u64(line, "which=random:N", value.substr(7)) == 0) {
          spec_error(line, "which=random:N needs N >= 1");
        }
      }
      spec.sweep_which = value;
      have_which = true;
    } else if (key == "schedules" && spec.type == JobType::kChaos) {
      spec.chaos_schedules =
          static_cast<int>(parse_spec_u64(line, "schedules", value));
      if (spec.chaos_schedules == 0) spec_error(line, "schedules= needs >= 1");
      have_schedules = true;
    } else if (key == "seed" && spec.type == JobType::kChaos) {
      spec.chaos_seed = parse_spec_u64(line, "seed", value);
    } else if (key == "cycles") {
      spec.cycles = parse_spec_u64(line, "cycles", value);
      if (spec.cycles == 0) spec_error(line, "cycles= needs >= 1");
    } else if (key == "watchdog") {
      spec.watchdog = parse_spec_u64(line, "watchdog", value);
    } else if (key == "deadline-ms") {
      spec.deadline_ms =
          static_cast<double>(parse_spec_u64(line, "deadline-ms", value));
      if (spec.deadline_ms <= 0.0) spec_error(line, "deadline-ms= needs >= 1");
    } else if (key == "max-retries") {
      spec.max_retries =
          static_cast<int>(parse_spec_u64(line, "max-retries", value));
    } else if (key == "cycle-budget") {
      spec.cycle_budget = parse_spec_u64(line, "cycle-budget", value);
    } else if (key == "mem-budget") {
      spec.mem_budget = parse_spec_u64(line, "mem-budget", value);
    } else {
      spec_error(line, "unknown key '" + key + "' for a " +
                           std::string(to_string(spec.type)) + " job");
    }
  }

  if (spec.type == JobType::kRun && !have_apps) {
    spec_error(line, "run jobs need apps=");
  }
  if (spec.type == JobType::kSweep && !have_which) {
    spec_error(line, "sweep jobs need which=");
  }
  if (spec.type == JobType::kChaos && !have_schedules) {
    spec_error(line, "chaos jobs need schedules=");
  }
  return spec;
}

std::vector<JobSpec> parse_job_file(const std::string& path) {
  std::ifstream in(path);
  SIM_CHECK(static_cast<bool>(in),
            SimError(SimErrorKind::kConfig, "harness.jobs",
                     "cannot open job file")
                .detail("path", path));
  std::vector<JobSpec> specs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    const std::string trimmed = line.substr(first, last - first + 1);
    try {
      specs.push_back(
          JobSpec::parse(trimmed, static_cast<int>(specs.size())));
    } catch (SimError& e) {
      throw e.detail("file", path).detail("file_line", line_no);
    }
  }
  SIM_CHECK(!specs.empty(),
            SimError(SimErrorKind::kConfig, "harness.jobs",
                     "job file defines no jobs")
                .detail("path", path));
  return specs;
}

std::string job_reproducer_command(const JobSpec& spec,
                                   const JobManagerOptions& opts) {
  std::ostringstream ss;
  ss << "gpusim_cli";
  switch (spec.type) {
    case JobType::kRun: {
      ss << " --apps ";
      for (std::size_t i = 0; i < spec.apps.size(); ++i) {
        if (i != 0) ss << ",";
        ss << spec.apps[i];
      }
      if (spec.policy != "even") ss << " --policy " << spec.policy;
      ss << " --cycles " << effective_cycles(spec, opts);
      ss << " --watchdog " << effective_watchdog(spec);
      if (!spec.faults.empty()) {
        ss << " --fault-schedule '" << spec.faults << "'";
      } else {
        ss << " --alone cached";
      }
      break;
    }
    case JobType::kSweep:
      ss << " --sweep " << spec.sweep_which << " --cycles "
         << effective_cycles(spec, opts) << " --jobs 1";
      break;
    case JobType::kChaos:
      ss << " --chaos " << spec.chaos_schedules << " --chaos-seed "
         << spec.chaos_seed << " --cycles " << effective_cycles(spec, opts)
         << " --jobs 1";
      break;
  }
  if (opts.base_seed != 42) ss << " --seed " << opts.base_seed;
  return ss.str();
}

std::string JobBatchReport::to_json() const {
  std::ostringstream ss;
  ss << "{\"job_batch\":{\"total\":" << total << ",\"ok\":" << ok
     << ",\"failed\":" << failed << ",\"quarantined\":" << quarantined
     << ",\"pending\":" << pending << ",\"interrupted\":"
     << (interrupted ? "true" : "false") << ",\"jobs\":[\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i].json.empty()) {
      ss << jobs[i].json;
    } else {
      ss << "{\"job\":" << jobs[i].index << ",\"status\":\"pending\"}";
    }
    ss << (i + 1 < jobs.size() ? ",\n" : "\n");
  }
  ss << "]}}\n";
  return ss.str();
}

int JobBatchReport::exit_code() const {
  if (interrupted) return 6;
  if (quarantined > 0) return 9;
  for (const JobResult& r : jobs) {
    if (r.status == JobStatus::kFailed &&
        r.error_kind == "deadline-exceeded") {
      return 7;
    }
  }
  for (const JobResult& r : jobs) {
    if (r.status == JobStatus::kFailed && r.error_kind == "budget-exceeded") {
      return 8;
    }
  }
  return failed > 0 ? 1 : 0;
}

void write_job_report(const std::string& path, const JobBatchReport& report) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "harness.jobs",
                                   "cannot open report file for writing")
                              .detail("path", tmp));
    out << report.to_json();
  }
  std::filesystem::rename(tmp, path);
}

JobManager::JobManager(JobManagerOptions opts) : opts_(std::move(opts)) {
  SIM_CHECK(!opts_.manifest_path.empty(),
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "JobManagerOptions::manifest_path is required"));
  SIM_CHECK(opts_.jobs >= 0,
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "jobs must be 0 (= hardware concurrency) or positive")
                .detail("jobs", opts_.jobs));
  SIM_CHECK(opts_.max_retries >= 0,
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "max_retries must be non-negative")
                .detail("max_retries", opts_.max_retries));
  SIM_CHECK(opts_.quarantine_after >= 1,
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "quarantine_after must be at least 1")
                .detail("quarantine_after", opts_.quarantine_after));
  if (opts_.snapshot_dir.empty()) {
    opts_.snapshot_dir = opts_.manifest_path + ".snaps";
  }
}

JobBatchReport JobManager::run(const std::vector<JobSpec>& specs) {
  SIM_CHECK(!specs.empty(),
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "job batch is empty"));
  {
    std::ifstream probe(opts_.manifest_path, std::ios::binary);
    const bool nonempty =
        probe && probe.seekg(0, std::ios::end) && probe.tellg() > 0;
    SIM_CHECK(!nonempty,
              SimError(SimErrorKind::kHarness, "harness.jobs",
                       "manifest already exists — resume it "
                       "(--jobs-resume) or remove it first")
                  .detail("path", opts_.manifest_path));
  }
  {
    std::ofstream out(opts_.manifest_path, std::ios::trunc);
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "harness.jobs",
                                   "cannot open manifest for writing")
                              .detail("path", opts_.manifest_path));
    // "build" is informational (resume never rejects on it): it lets a
    // triage session tell whether a manifest was produced by this binary.
    out << "{\"gpusim_jobs\":" << kJobsManifestSchema
        << ",\"total\":" << specs.size()
        << ",\"base_seed\":" << opts_.base_seed
        << ",\"default_cycles\":" << opts_.default_cycles
        << ",\"build\":" << build_fingerprint() << "}\n";
    for (const JobSpec& spec : specs) {
      out << "{\"job\":" << spec.index << ",\"spec\":\""
          << escape_json(spec.raw) << "\"}\n";
    }
    out.flush();
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "harness.jobs",
                                   "manifest header write failed")
                              .detail("path", opts_.manifest_path));
  }
  std::vector<JobResult> seeded(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    seeded[i].index = specs[i].index;
    seeded[i].spec_raw = specs[i].raw;
  }
  torn_lines_skipped_ = 0;
  return execute(specs, std::move(seeded));
}

JobBatchReport JobManager::resume() {
  torn_lines_skipped_ = 0;
  std::ifstream in(opts_.manifest_path);
  SIM_CHECK(static_cast<bool>(in),
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "cannot open manifest to resume")
                .detail("path", opts_.manifest_path));

  u64 total = 0;
  bool have_header = false;
  std::map<u64, std::string> spec_lines;    // job index -> raw spec
  std::map<u64, std::string> result_lines;  // job index -> stored line
  std::string line;
  int line_no = 0;
  auto warn_torn = [&](const char* why) {
    ++torn_lines_skipped_;
    std::fprintf(stderr,
                 "gpusim: jobs manifest %s line %d is %s — skipping it; "
                 "the affected job will re-run\n",
                 opts_.manifest_path.c_str(), line_no, why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;  // seal_torn_tail padding, harmless
    if (line.back() != '}') {
      warn_torn("truncated (crash mid-write?)");
      continue;
    }
    if (!have_header && line.rfind("{\"gpusim_jobs\":", 0) == 0) {
      SIM_CHECK(extract_u64_field(line, "total", total) && total > 0,
                SimError(SimErrorKind::kHarness, "harness.jobs",
                         "manifest header has no job count")
                    .detail("path", opts_.manifest_path));
      have_header = true;
      continue;
    }
    u64 index = 0;
    if (!extract_u64_field(line, "job", index)) {
      warn_torn("missing its job index");
      continue;
    }
    if (line.find("\"spec\":\"") != std::string::npos) {
      spec_lines[index] = extract_string_field(line, "spec");
    } else if (line.find("\"status\":\"") != std::string::npos) {
      result_lines[index] = line;  // last line for a job wins
    } else {
      warn_torn("neither a spec nor a result");
    }
  }
  SIM_CHECK(have_header,
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "manifest has no header — not a gpusim jobs manifest")
                .detail("path", opts_.manifest_path));
  SIM_CHECK(spec_lines.size() == total,
            SimError(SimErrorKind::kHarness, "harness.jobs",
                     "manifest is missing job spec lines")
                .detail("expected", total)
                .detail("found", spec_lines.size()));

  std::vector<JobSpec> specs;
  std::vector<JobResult> seeded(total);
  specs.reserve(total);
  for (u64 i = 0; i < total; ++i) {
    const auto it = spec_lines.find(i);
    SIM_CHECK(it != spec_lines.end(),
              SimError(SimErrorKind::kHarness, "harness.jobs",
                       "manifest spec lines are not a contiguous 0..total-1")
                  .detail("missing_job", i));
    specs.push_back(JobSpec::parse(it->second, static_cast<int>(i)));
    JobResult& r = seeded[i];
    r.index = static_cast<int>(i);
    r.spec_raw = it->second;
    const auto rit = result_lines.find(i);
    if (rit == result_lines.end()) continue;
    const std::string& stored = rit->second;
    const std::string status = extract_string_field(stored, "status");
    if (status == "ok") {
      r.status = JobStatus::kOk;
    } else if (status == "failed") {
      r.status = JobStatus::kFailed;
    } else if (status == "quarantined") {
      r.status = JobStatus::kQuarantined;
    } else {
      warn_torn("carrying an unknown status");
      continue;
    }
    u64 attempts = 0;
    extract_u64_field(stored, "attempts", attempts);
    r.attempts = static_cast<int>(attempts);
    r.error_kind = extract_string_field(stored, "error_kind");
    r.error_component = extract_string_field(stored, "error_component");
    r.error_message = extract_string_field(stored, "error_message");
    r.reproducer = extract_string_field(stored, "reproducer");
    r.json = stored;  // replayed verbatim → byte-identical final report
    r.from_manifest = true;
  }
  return execute(specs, std::move(seeded));
}

JobBatchReport JobManager::execute(const std::vector<JobSpec>& specs,
                                   std::vector<JobResult> seeded) {
  const std::size_t n = specs.size();

  // Manifest append channel: workers push finished-job lines into a bounded
  // queue; one writer thread appends and flushes them whole, so lines never
  // interleave and a kill tears at most the line in flight (which resume
  // skips with a warning).
  std::ofstream manifest;
  {
    bool seal_torn_tail = false;
    std::ifstream probe(opts_.manifest_path, std::ios::binary);
    if (probe && probe.seekg(0, std::ios::end) && probe.tellg() > 0) {
      probe.seekg(-1, std::ios::end);
      char last = '\n';
      seal_torn_tail = probe.get(last) && last != '\n';
    }
    probe.close();
    manifest.open(opts_.manifest_path, std::ios::app);
    SIM_CHECK(manifest.good(),
              SimError(SimErrorKind::kHarness, "harness.jobs",
                       "cannot open manifest for append")
                  .detail("path", opts_.manifest_path));
    if (seal_torn_tail) manifest << "\n";
  }
  ConcurrentBoundedQueue<std::string> lines(64);
  std::thread writer([&]() {
    while (auto line = lines.pop()) {
      manifest << *line << "\n";
      manifest.flush();
    }
  });

  // Determinism under parallelism: jobs sharing a config key run in index
  // order (a later one waits until every earlier same-key job is terminal),
  // so the circuit breaker sees the same failure sequence for every worker
  // count.  Deadlock-free because run_indexed claims indices monotonically:
  // the lowest in-flight index only waits on already-terminal jobs.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> keys(n);
  std::vector<bool> terminal(n, false);
  std::map<std::string, std::vector<std::size_t>> key_jobs;
  std::map<std::string, int> consecutive_failures;
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = specs[i].config_key();
    key_jobs[keys[i]].push_back(i);
    if (seeded[i].status != JobStatus::kPending) {
      terminal[i] = true;
      // Replay the breaker's state transitions from the stored outcomes, in
      // index order, so a resumed batch quarantines exactly what a fresh
      // uninterrupted one would.
      int& count = consecutive_failures[keys[i]];
      if (seeded[i].status == JobStatus::kOk) {
        count = 0;
      } else if (seeded[i].status == JobStatus::kFailed) {
        ++count;
      }  // quarantined: the count already sits at/over the limit; keep it
    } else {
      pending.push_back(i);
    }
  }

  std::atomic<bool> abort{false};
  auto request_abort = [&]() {
    abort.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    cv.notify_all();
  };
  auto cancelled = [&]() {
    return opts_.cancel != nullptr &&
           opts_.cancel->load(std::memory_order_relaxed);
  };

  int jobs = opts_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs),
                            std::max<std::size_t>(pending.size(), 1)));

  run_indexed(
      pending.size(), jobs,
      [&](int, std::size_t k) {
        const std::size_t i = pending[k];
        const JobSpec& spec = specs[i];
        const std::string& key = keys[i];

        // Wait for earlier same-key jobs (abort releases all waiters).
        {
          std::unique_lock<std::mutex> lock(mu);
          const std::vector<std::size_t>& peers = key_jobs[key];
          cv.wait(lock, [&]() {
            if (abort.load(std::memory_order_relaxed)) return true;
            for (const std::size_t p : peers) {
              if (p >= i) break;
              if (!terminal[p]) return false;
            }
            return true;
          });
          if (abort.load(std::memory_order_relaxed)) return;
        }
        if (cancelled()) {
          request_abort();
          return;
        }

        JobResult r;
        r.index = spec.index;
        r.spec_raw = spec.raw;

        // Circuit breaker: refuse a key that is already failing in a loop.
        {
          std::lock_guard<std::mutex> lock(mu);
          if (consecutive_failures[key] >= opts_.quarantine_after) {
            r.status = JobStatus::kQuarantined;
            r.error_kind = to_string(SimErrorKind::kQuarantined);
            r.error_component = "harness.jobs";
            r.error_message =
                "config quarantined after " +
                std::to_string(opts_.quarantine_after) +
                " consecutive failures";
            r.reproducer = job_reproducer_command(spec, opts_);
            r.json = result_line(r);
            terminal[i] = true;
            cv.notify_all();
          }
        }
        if (r.status == JobStatus::kQuarantined) {
          if (opts_.verbose) {
            std::fprintf(stderr, "gpusim: job %d quarantined (%s)\n",
                         spec.index, spec.raw.c_str());
          }
          lines.push(r.json);
          seeded[i] = std::move(r);
          return;
        }

        // Quarantined jobs never ran, so they carry no telemetry paths;
        // everything past this point flushes files (even on a crash).
        if (!opts_.telemetry_dir.empty()) {
          r.telemetry_dir = job_telemetry_dir(opts_, spec.index);
        }

        // Attempt loop: transient failures retry with exponential backoff
        // plus deterministic jitter; everything else fails fast.
        const int max_attempts = 1 + effective_retries(spec, opts_);
        const double deadline_ms = effective_deadline_ms(spec, opts_);
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
          if (cancelled()) {
            request_abort();
            return;  // job stays pending; a resume re-runs it
          }
          r.attempts = attempt;
          std::chrono::steady_clock::time_point deadline{};
          if (deadline_ms > 0.0) {
            deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(
                           static_cast<long long>(deadline_ms * 1000.0));
          }
          try {
            r.payload_json = dispatch_job(spec, opts_, deadline);
            r.status = JobStatus::kOk;
            r.error_kind.clear();
            r.error_component.clear();
            r.error_message.clear();
            break;
          } catch (const SimError& e) {
            if (e.kind() == SimErrorKind::kInterrupted) {
              request_abort();
              return;  // drain: pending, not an attempt spent
            }
            // Identity only — what() carries cycle counts and elapsed
            // times that differ run to run and would break byte-identical
            // resume of the final report.
            r.error_kind = to_string(e.kind());
            r.error_component = e.component();
            r.error_message = e.message();
            if (!transient_failure(e.kind())) break;
          } catch (const std::exception& e) {
            r.error_kind = "exception";
            r.error_component = "harness.jobs";
            r.error_message = e.what();
          }
          if (attempt < max_attempts && opts_.backoff_base_ms > 0) {
            const int shift = std::min(attempt - 1, 10);
            const u64 jitter =
                mix64(static_cast<u64>(spec.index) * 0x10001ULL +
                      static_cast<u64>(attempt)) %
                static_cast<u64>(opts_.backoff_base_ms + 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                (static_cast<u64>(opts_.backoff_base_ms) << shift) + jitter));
          }
        }
        if (r.status != JobStatus::kOk) r.status = JobStatus::kFailed;
        if (r.status == JobStatus::kFailed) {
          r.reproducer = job_reproducer_command(spec, opts_);
        }
        r.json = result_line(r);

        {
          std::lock_guard<std::mutex> lock(mu);
          int& count = consecutive_failures[key];
          if (r.status == JobStatus::kOk) {
            count = 0;
          } else {
            ++count;
          }
          terminal[i] = true;
          cv.notify_all();
        }
        if (opts_.verbose) {
          std::fprintf(stderr, "gpusim: job %d %s after %d attempt%s (%s)\n",
                       spec.index, to_string(r.status), r.attempts,
                       r.attempts == 1 ? "" : "s", spec.raw.c_str());
        }
        lines.push(r.json);
        seeded[i] = std::move(r);
      },
      &abort);

  lines.close();
  writer.join();
  manifest.close();

  JobBatchReport report;
  report.total = static_cast<int>(n);
  report.jobs = std::move(seeded);
  for (const JobResult& r : report.jobs) {
    switch (r.status) {
      case JobStatus::kOk: ++report.ok; break;
      case JobStatus::kFailed: ++report.failed; break;
      case JobStatus::kQuarantined: ++report.quarantined; break;
      case JobStatus::kPending: ++report.pending; break;
    }
  }
  report.interrupted = report.pending > 0;
  return report;
}

}  // namespace gpusim
