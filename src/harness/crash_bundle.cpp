#include "harness/crash_bundle.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/build_info.hpp"
#include "common/config_io.hpp"
#include "gpu/simulator.hpp"
#include "gpu/snapshot.hpp"

namespace gpusim {

namespace {

namespace fs = std::filesystem;

std::string schema_name() {
  return "gpusim-crash-bundle-v" + std::to_string(kCrashBundleSchema);
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Inverse of escape_json, total over arbitrary input: a malformed escape
/// is kept literally rather than crashing (the manifest reader must never
/// trust its input).
std::string unescape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    const char next = text[++i];
    switch (next) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 < text.size()) {
          const std::string hex = text.substr(i + 1, 4);
          char* end = nullptr;
          const unsigned long code = std::strtoul(hex.c_str(), &end, 16);
          if (end != nullptr && *end == '\0' && code < 0x80) {
            out += static_cast<char>(code);
            i += 4;
            break;
          }
        }
        out += "\\u";
        break;
      }
      default:
        out += '\\';
        out += next;
        break;
    }
  }
  return out;
}

std::string sanitize_name(const std::string& label) {
  std::string name;
  name.reserve(label.size());
  for (char c : label) {
    const bool safe = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                      c == '-' || c == '_' || c == '.' || c == '+';
    name += safe ? c : '_';
  }
  return name.empty() ? std::string("unnamed") : name;
}

std::string join_space(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ' ';
    out += p;
  }
  return out;
}

std::string join_space_ints(const std::vector<int>& parts) {
  std::string out;
  for (int v : parts) {
    if (!out.empty()) out += ' ';
    out += std::to_string(v);
  }
  return out;
}

SimError manifest_error(const std::string& bundle_dir, const char* what) {
  return SimError(SimErrorKind::kSnapshot, "harness.crash_bundle", what)
      .detail("bundle", bundle_dir);
}

void write_manifest(std::ostream& os, const TriageContext& ctx,
                    const SimError& err, Cycle failure_cycle,
                    u64 failure_state_hash, bool have_anchor,
                    const std::string& final_dir) {
  std::string models;
  if (ctx.dase) models += "dase";
  if (ctx.mise) models += models.empty() ? "mise" : " mise";
  if (ctx.asm_model) models += models.empty() ? "asm" : " asm";
  os << "{\n";
  os << "  \"schema\": \"" << escape_json(schema_name()) << "\",\n";
  os << "  \"build_fingerprint\": " << build_fingerprint() << ",\n";
  os << "  \"build_line\": \""
     << escape_json(build_fingerprint_line(kSnapshotVersion)) << "\",\n";
  os << "  \"mode\": \"" << escape_json(ctx.mode) << "\",\n";
  os << "  \"label\": \"" << escape_json(ctx.label) << "\",\n";
  os << "  \"apps\": \"" << escape_json(join_space(ctx.apps)) << "\",\n";
  os << "  \"base_seed\": " << ctx.base_seed << ",\n";
  os << "  \"co_run_cycles\": " << ctx.co_run_cycles << ",\n";
  os << "  \"policy\": \"" << escape_json(ctx.policy) << "\",\n";
  os << "  \"models\": \"" << models << "\",\n";
  os << "  \"faults\": \"" << escape_json(ctx.faults) << "\",\n";
  os << "  \"watchdog_cycles\": " << ctx.watchdog_cycles << ",\n";
  os << "  \"governor\": \"" << (ctx.governor ? "on" : "off") << "\",\n";
  os << "  \"sm_split\": \"" << join_space_ints(ctx.sm_split) << "\",\n";
  os << "  \"fingerprint\": " << ctx.fingerprint << ",\n";
  os << "  \"failure_cycle\": " << failure_cycle << ",\n";
  os << "  \"failure_state_hash\": " << failure_state_hash << ",\n";
  os << "  \"error_kind\": \"" << escape_json(to_string(err.kind()))
     << "\",\n";
  os << "  \"error_component\": \"" << escape_json(err.component())
     << "\",\n";
  os << "  \"error_message\": \"" << escape_json(err.message()) << "\",\n";
  os << "  \"snapshot\": \"snapshot.simstate\",\n";
  os << "  \"anchor\": \"" << (have_anchor ? "anchor.simstate" : "")
     << "\",\n";
  os << "  \"replay\": \"" << escape_json("gpusim_cli --triage " + final_dir)
     << "\"\n";
  os << "}\n";
}

/// Key-per-line tolerant parse: returns true and fills `value` (raw, still
/// JSON-escaped for strings) when `line` carries `key`.
bool line_value(const std::string& line, const std::string& key,
                std::string& value, bool& is_string) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t at = pos + needle.size();
  while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
  if (at >= line.size()) return false;
  if (line[at] == '"') {
    // Scan to the closing unescaped quote.
    std::string raw;
    for (std::size_t i = at + 1; i < line.size(); ++i) {
      if (line[i] == '\\' && i + 1 < line.size()) {
        raw += line[i];
        raw += line[i + 1];
        ++i;
        continue;
      }
      if (line[i] == '"') {
        value = raw;
        is_string = true;
        return true;
      }
      raw += line[i];
    }
    return false;  // unterminated string: treat the key as absent
  }
  std::string raw;
  while (at < line.size() && line[at] != ',' && line[at] != '\n' &&
         line[at] != '}') {
    raw += line[at++];
  }
  while (!raw.empty() && (raw.back() == ' ' || raw.back() == '\t')) {
    raw.pop_back();
  }
  value = raw;
  is_string = false;
  return true;
}

std::vector<std::string> split_space(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

}  // namespace

std::string write_crash_bundle(const std::string& bundle_root,
                               const Simulation& sim, const GpuConfig& cfg,
                               const SimError& err, const TriageContext& ctx,
                               const std::string& anchor_snapshot_path)
    noexcept {
  fs::path tmp;
  try {
    std::error_code ec;
    fs::create_directories(bundle_root, ec);

    // Pick a fresh directory name; concurrent sweep jobs may crash on the
    // same workload, so probe with numeric suffixes.
    const Cycle failure_cycle = sim.gpu().now();
    const std::string base = ctx.mode + "-" + sanitize_name(ctx.label) +
                             "-c" + std::to_string(failure_cycle);
    std::string name = base;
    fs::path dir = fs::path(bundle_root) / name;
    for (int i = 2; fs::exists(dir, ec) && i < 10'000; ++i) {
      name = base + "-" + std::to_string(i);
      dir = fs::path(bundle_root) / name;
    }

    tmp = fs::path(bundle_root) / (".tmp-" + name);
    fs::remove_all(tmp, ec);
    fs::create_directories(tmp);

    write_snapshot_file((tmp / "snapshot.simstate").string(), sim,
                        ctx.fingerprint);
    bool have_anchor = false;
    if (!anchor_snapshot_path.empty() &&
        fs::exists(anchor_snapshot_path, ec)) {
      have_anchor = fs::copy_file(anchor_snapshot_path,
                                  tmp / "anchor.simstate",
                                  fs::copy_options::overwrite_existing, ec);
    }
    save_config((tmp / "config.txt").string(), cfg);
    {
      std::ofstream events(tmp / "events.txt", std::ios::trunc);
      events << build_fingerprint_line(kSnapshotVersion) << "\n\n"
             << "error:\n" << err.what() << "\n\n"
             << sim.gpu().flight_recorder().render_timeline(256) << "\n"
             << sim.gpu().dump_state();
      if (!events.good()) {
        throw std::runtime_error("short write to events.txt");
      }
    }
    {
      // The manifest is written last inside the temp dir: its presence is
      // the bundle's completeness marker.
      std::ofstream manifest(tmp / "manifest.json", std::ios::trunc);
      write_manifest(manifest, ctx, err, failure_cycle, sim.state_hash(),
                     have_anchor, dir.string());
      manifest.flush();
      if (!manifest.good()) {
        throw std::runtime_error("short write to manifest.json");
      }
    }
    fs::rename(tmp, dir);
    std::fprintf(stderr,
                 "gpusim: crash bundle written to %s (inspect with: "
                 "gpusim_cli --triage %s)\n",
                 dir.string().c_str(), dir.string().c_str());
    return dir.string();
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "gpusim: crash-bundle emission failed (%s) — the original "
                 "error still propagates\n",
                 e.what());
  } catch (...) {
    std::fprintf(stderr,
                 "gpusim: crash-bundle emission failed — the original error "
                 "still propagates\n");
  }
  if (!tmp.empty()) {
    std::error_code ec;
    fs::remove_all(tmp, ec);
  }
  return std::string();
}

CrashBundleManifest read_crash_bundle_manifest(
    const std::string& bundle_dir) {
  const fs::path manifest_path = fs::path(bundle_dir) / "manifest.json";
  std::error_code ec;
  SIM_CHECK(fs::is_regular_file(manifest_path, ec),
            manifest_error(bundle_dir,
                           "bundle has no manifest.json — incomplete or not "
                           "a crash bundle"));
  std::ifstream in(manifest_path);
  SIM_CHECK(in.good(),
            manifest_error(bundle_dir, "cannot open manifest.json"));

  // One pass over the lines; later duplicates win (harmless), unknown keys
  // are ignored (forward compatibility).
  std::vector<std::pair<std::string, std::string>> strings;
  std::vector<std::pair<std::string, std::string>> numbers;
  static const char* kStringKeys[] = {
      "schema",  "build_line", "mode",           "label",
      "apps",    "policy",     "models",         "faults",
      "sm_split", "error_kind", "error_component", "error_message",
      "snapshot", "anchor",     "replay",         "governor"};
  static const char* kNumberKeys[] = {
      "build_fingerprint", "base_seed",     "co_run_cycles",
      "watchdog_cycles",   "fingerprint",   "failure_cycle",
      "failure_state_hash"};
  std::string line;
  while (std::getline(in, line)) {
    std::string value;
    bool is_string = false;
    for (const char* key : kStringKeys) {
      if (line_value(line, key, value, is_string) && is_string) {
        strings.emplace_back(key, unescape_json(value));
      }
    }
    for (const char* key : kNumberKeys) {
      if (line_value(line, key, value, is_string) && !is_string) {
        numbers.emplace_back(key, value);
      }
    }
  }

  const auto get_string = [&](const char* key,
                              std::string* out) -> bool {
    bool found = false;
    for (const auto& [k, v] : strings) {
      if (k == key) {
        *out = v;
        found = true;
      }
    }
    return found;
  };
  const auto require_string = [&](const char* key) {
    std::string out;
    if (!get_string(key, &out)) {
      SIM_FAIL(manifest_error(bundle_dir,
                              "manifest.json is missing a required string "
                              "key")
                   .detail("key", key));
    }
    return out;
  };
  const auto require_u64 = [&](const char* key) {
    for (const auto& [k, v] : numbers) {
      if (k != key) continue;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
      SIM_CHECK(end != nullptr && end != v.c_str() && *end == '\0',
                manifest_error(bundle_dir,
                               "manifest.json has an unparsable numeric "
                               "value")
                    .detail("key", key)
                    .detail("value", v));
      return static_cast<u64>(parsed);
    }
    SIM_FAIL(manifest_error(bundle_dir,
                            "manifest.json is missing a required numeric "
                            "key")
                 .detail("key", key));
  };

  CrashBundleManifest m;
  m.schema = require_string("schema");
  SIM_CHECK(m.schema == schema_name(),
            manifest_error(bundle_dir, "unsupported crash-bundle schema")
                .detail("file_schema", m.schema)
                .detail("supported", schema_name()));
  m.build = require_u64("build_fingerprint");
  get_string("build_line", &m.build_line);
  m.ctx.mode = require_string("mode");
  m.ctx.label = require_string("label");
  m.ctx.apps = split_space(require_string("apps"));
  SIM_CHECK(!m.ctx.apps.empty(),
            manifest_error(bundle_dir, "manifest names no applications"));
  m.ctx.base_seed = require_u64("base_seed");
  m.ctx.co_run_cycles = require_u64("co_run_cycles");
  m.ctx.policy = require_string("policy");
  const std::vector<std::string> models =
      split_space(require_string("models"));
  m.ctx.dase = m.ctx.mise = m.ctx.asm_model = false;
  for (const std::string& name : models) {
    if (name == "dase") m.ctx.dase = true;
    if (name == "mise") m.ctx.mise = true;
    if (name == "asm") m.ctx.asm_model = true;
  }
  get_string("faults", &m.ctx.faults);
  m.ctx.watchdog_cycles = require_u64("watchdog_cycles");
  // Optional for backward compatibility: bundles written before the policy
  // governor existed replay with it enabled (the current default).
  std::string governor = "on";
  get_string("governor", &governor);
  m.ctx.governor = (governor != "off");
  for (const std::string& tok : split_space(require_string("sm_split"))) {
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    SIM_CHECK(end != nullptr && *end == '\0' && v >= 0 && v <= 1'000'000,
              manifest_error(bundle_dir,
                             "manifest sm_split entry is not a valid SM "
                             "count")
                  .detail("entry", tok));
    m.ctx.sm_split.push_back(static_cast<int>(v));
  }
  m.ctx.fingerprint = require_u64("fingerprint");
  m.failure_cycle = require_u64("failure_cycle");
  m.failure_state_hash = require_u64("failure_state_hash");
  m.error_kind = require_string("error_kind");
  get_string("error_component", &m.error_component);
  get_string("error_message", &m.error_message);
  m.snapshot_file = require_string("snapshot");
  SIM_CHECK(!m.snapshot_file.empty() &&
                m.snapshot_file.find('/') == std::string::npos &&
                m.snapshot_file.find("..") == std::string::npos,
            manifest_error(bundle_dir,
                           "manifest snapshot file name must be a plain "
                           "file inside the bundle")
                .detail("snapshot", m.snapshot_file));
  get_string("anchor", &m.anchor_file);
  SIM_CHECK(m.anchor_file.find('/') == std::string::npos &&
                m.anchor_file.find("..") == std::string::npos,
            manifest_error(bundle_dir,
                           "manifest anchor file name must be a plain file "
                           "inside the bundle")
                .detail("anchor", m.anchor_file));
  get_string("replay", &m.replay);

  SIM_CHECK(fs::is_regular_file(fs::path(bundle_dir) / m.snapshot_file, ec),
            manifest_error(bundle_dir,
                           "bundle snapshot file named by the manifest is "
                           "missing")
                .detail("snapshot", m.snapshot_file));
  return m;
}

}  // namespace gpusim
