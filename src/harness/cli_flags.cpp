#include "harness/cli_flags.hpp"

#include <sstream>

namespace gpusim {

const std::vector<FlagInfo>& flag_table() {
  static const std::vector<FlagInfo> table = {
      {FlagId::kApps, "--apps", "LIST",
       "comma-separated Table III abbreviations"},
      {FlagId::kCycles, "--cycles", "N",
       "co-run length in cycles (default 300000)"},
      {FlagId::kPolicy, "--policy", "P",
       "even | dase-fair | leftover | temporal | qos"},
      {FlagId::kSplit, "--split", "N1,N2,..",
       "static SM counts per app (overrides policy partitioning)"},
      {FlagId::kModels, "--models", "LIST",
       "estimators to attach: dase,mise,asm (default dase)"},
      {FlagId::kQosTarget, "--qos-target", "X",
       "slowdown target for --policy qos (default 2.0)"},
      {FlagId::kQuantum, "--quantum", "N",
       "temporal-multitasking quantum (default 100000)"},
      {FlagId::kSeed, "--seed", "N", "workload seed (default 42)"},
      {FlagId::kAlone, "--alone", "MODE", "replay | cached (default replay)"},
      {FlagId::kConfig, "--config", "FILE",
       "load a GpuConfig key=value file"},
      {FlagId::kWatchdog, "--watchdog", "N",
       "deadlock watchdog threshold in cycles (0 disables; default 1000000)"},
      {FlagId::kDeadlineMs, "--deadline-ms", "N",
       "wall-clock deadline in ms for the run / each job attempt\n"
       "(0 = none; lapsing it exits 7)"},
      {FlagId::kCycleBudget, "--cycle-budget", "N",
       "hard cycle cap for the run / each job (0 = none; exceeding\n"
       "it exits 8)"},
      {FlagId::kMemBudget, "--mem-budget", "N",
       "hard DRAM requests-served cap (0 = none; exceeding it exits 8)"},
      {FlagId::kSweep, "--sweep", "WHICH",
       "run a crash-safe two-app sweep: 'all' (105 pairs) or 'random:N'"},
      {FlagId::kCheckpoint, "--checkpoint", "F",
       "sweep/chaos JSONL checkpoint (resume from it if present)"},
      {FlagId::kOut, "--out", "F",
       "final results JSON (default sweep_results.json /\n"
       "chaos_report.json / jobs_report.json)"},
      {FlagId::kRetries, "--retries", "N",
       "sweep attempts per pair (default 3)"},
      {FlagId::kBackoffMs, "--backoff-ms", "N",
       "retry backoff in ms: linear per sweep pair, exponential base\n"
       "per job attempt (default 0 / 10)"},
      {FlagId::kFailFast, "--fail-fast", nullptr,
       "abort the sweep on the first failed pair"},
      {FlagId::kJobs, "--jobs", "N",
       "worker threads for sweeps, chaos and job batches (default: one\n"
       "per hardware thread; 1 = serial; results are byte-identical\n"
       "for any N)"},
      {FlagId::kSnapshotEvery, "--snapshot-every", "N",
       "write a SimState snapshot every N cycles (auto-resumes from it\n"
       "after a crash; works for --apps, --sweep and --job-file runs)"},
      {FlagId::kSnapshotDir, "--snapshot-dir", "D",
       "directory for snapshot files (default '.'; requires\n"
       "--snapshot-every)"},
      {FlagId::kRestore, "--restore", "FILE",
       "restore a single run from this snapshot before running\n"
       "(incompatible with --sweep)"},
      {FlagId::kAuditDeterminism, "--audit-determinism", nullptr,
       "run the workload twice (activity engine + fast-forward on vs\n"
       "both off), compare state hashes every --hash-every cycles; exit 4\n"
       "and dump the diverging components on mismatch (combine with\n"
       "--fault-schedule to audit under faults)"},
      {FlagId::kHashEvery, "--hash-every", "N",
       "audit sampling period in cycles (default 10000)"},
      {FlagId::kNoActivitySched, "--no-activity-sched", nullptr,
       "disable the activity-tracked cycle engine (escape hatch /\n"
       "bisection aid; simulated output is bit-identical either way)"},
      {FlagId::kGovernor, "--governor", nullptr,
       "enable the policy safety governor (the default; last one of\n"
       "--governor/--no-governor wins)"},
      {FlagId::kNoGovernor, "--no-governor", nullptr,
       "disable the policy safety governor: partition proposals reach\n"
       "the GPU unguarded, exactly the pre-governor behavior (healthy\n"
       "runs are byte-identical either way)"},
      {FlagId::kProfileLoop, "--profile-loop", nullptr,
       "attribute wall time and visit counts to the cycle-loop phases\n"
       "(SM advance, response delivery, crossbars, partitions,\n"
       "fast-forward, interval bookkeeping); prints a JSON breakdown"},
      {FlagId::kChaos, "--chaos", "N",
       "run a chaos campaign of N random fault schedules across\n"
       "workload x policy jobs; classify every outcome, minimize\n"
       "failures, write the report to --out"},
      {FlagId::kChaosSeed, "--chaos-seed", "N",
       "campaign master seed (default 1; identical seeds give\n"
       "byte-identical reports for any --jobs)"},
      {FlagId::kNoMinimize, "--no-minimize", nullptr,
       "skip delta-debugging failing chaos schedules"},
      {FlagId::kNoRecovery, "--no-recovery", nullptr,
       "disable the modeled MSHR timeout/retry recovery path in chaos\n"
       "and --fault-schedule runs"},
      {FlagId::kFaultSchedule, "--fault-schedule", "S",
       "with --apps: run once under the fault schedule spec S and print\n"
       "the chaos outcome classification (replays a campaign reproducer\n"
       "exactly)"},
      {FlagId::kJobFile, "--job-file", "F",
       "run a batch of jobs (run / sweep / chaos lines, '#' comments)\n"
       "through the JobManager: per-job deadlines, retries with backoff,\n"
       "a failure circuit breaker, and a resumable manifest"},
      {FlagId::kJobsResume, "--jobs-resume", "F",
       "resume the job batch recorded in manifest F: finished jobs\n"
       "replay verbatim, pending jobs re-run; the final report is\n"
       "byte-identical to an uninterrupted batch"},
      {FlagId::kManifest, "--manifest", "F",
       "manifest path for --job-file (default <job-file>.manifest.jsonl)"},
      {FlagId::kMaxRetries, "--max-retries", "N",
       "job retries after the first attempt, transient failures only\n"
       "(default 2)"},
      {FlagId::kQuarantineAfter, "--quarantine-after", "N",
       "quarantine a job config after N consecutive failures (default 3;\n"
       "quarantined jobs exit 9 and carry a replay command)"},
      {FlagId::kBundleDir, "--bundle-dir", "D",
       "root directory for crash-forensics bundles (default\n"
       "'crash-bundles'; also arms bundling for --chaos campaigns,\n"
       "where it is otherwise off)"},
      {FlagId::kNoBundle, "--no-bundle", nullptr,
       "disable crash-bundle emission entirely"},
      {FlagId::kTriage, "--triage", "BUNDLE",
       "postmortem mode: restore the crash bundle's snapshot, replay to\n"
       "the recorded failure cycle, verify the state hash bit-exactly and\n"
       "print the flight-recorder timeline (exit 0 verified, 4 diverged,\n"
       "3 bundle unusable)"},
      {FlagId::kTelemetryOut, "--telemetry-out", "F|D",
       "per-interval time-series JSONL: a file for --apps runs, a\n"
       "directory (per-label / per-job files) for --sweep, --chaos and\n"
       "--job-file; every record carries estimated vs actual slowdowns,\n"
       "the Eq. 26 error, partition sizes and memory-system rates"},
      {FlagId::kTraceOut, "--trace-out", "F",
       "Chrome trace-event JSON (load in Perfetto / chrome://tracing):\n"
       "epoch spans per app, migration drain spans, governor and fault\n"
       "instants, counter tracks (--apps and --triage runs only)"},
      {FlagId::kMetricsOut, "--metrics-out", "F",
       "Prometheus-style text metrics snapshot at run end (--apps runs\n"
       "only)"},
      {FlagId::kDumpConfig, "--dump-config", nullptr,
       "print the default config file and exit"},
      {FlagId::kListApps, "--list-apps", nullptr,
       "print the application registry and exit"},
      {FlagId::kVersion, "--version", nullptr,
       "print the build fingerprint (version, schemas, toolchain,\n"
       "feature flags) and exit"},
      {FlagId::kHelp, "--help", nullptr, "show this help (also -h)"},
  };
  return table;
}

const FlagInfo* find_flag(const std::string& arg) {
  const std::string name = arg == "-h" ? "--help" : arg;
  for (const FlagInfo& flag : flag_table()) {
    if (name == flag.name) return &flag;
  }
  return nullptr;
}

const std::vector<ExitCodeInfo>& exit_code_table() {
  static const std::vector<ExitCodeInfo> table = {
      {0, "success"},
      {1, "failed sweep pairs / failed jobs in the batch"},
      {2, "usage error"},
      {3, "simulation error (SimError) / --triage bundle unusable"},
      {4, "determinism audit or --triage replay found a divergence"},
      {5, "resumed past torn checkpoint lines (results complete, but a "
          "prior run crashed mid-write)"},
      {6, "interrupted by SIGINT/SIGTERM — drained gracefully; checkpoints "
          "and manifest are resumable"},
      {7, "wall-clock deadline exceeded"},
      {8, "cycle or memory budget exceeded"},
      {9, "job quarantined by the circuit breaker"},
  };
  return table;
}

int exit_code_for(SimErrorKind kind) {
  switch (kind) {
    case SimErrorKind::kInterrupted: return 6;
    case SimErrorKind::kDeadlineExceeded: return 7;
    case SimErrorKind::kBudgetExceeded: return 8;
    case SimErrorKind::kQuarantined: return 9;
    default: return 3;
  }
}

std::string render_usage(const char* argv0) {
  std::ostringstream ss;
  ss << "usage: " << argv0 << " --apps A,B[,C,D] [options]\n"
     << "       " << argv0 << " --sweep all|random:N [options]\n"
     << "       " << argv0 << " --chaos N [options]\n"
     << "       " << argv0 << " --job-file F [options]\n"
     << "       " << argv0 << " --jobs-resume MANIFEST [options]\n"
     << "       " << argv0 << " --triage BUNDLE\n"
     << "\n";
  constexpr int kColumn = 22;
  for (const FlagInfo& flag : flag_table()) {
    std::string head = std::string("  ") + flag.name;
    if (flag.value_name != nullptr) {
      head += ' ';
      head += flag.value_name;
    }
    if (static_cast<int>(head.size()) < kColumn) {
      head.append(static_cast<std::size_t>(kColumn - head.size()), ' ');
    } else {
      head += ' ';
    }
    ss << head;
    for (const char* c = flag.help; *c != '\0'; ++c) {
      ss << *c;
      if (*c == '\n') ss << std::string(kColumn, ' ');
    }
    ss << '\n';
  }
  ss << "\nexit codes:\n";
  for (const ExitCodeInfo& info : exit_code_table()) {
    ss << "  " << info.code << "  " << info.meaning << '\n';
  }
  return ss.str();
}

}  // namespace gpusim
