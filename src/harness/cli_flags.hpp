// gpusim_cli flag table — the single source of truth for the CLI surface.
//
// The parser, the --help text and the docs used to each spell the flag list
// out by hand, and they drifted (a flag would parse but not show in help,
// or the help would promise a default the parser didn't implement).  Now
// there is exactly one table: the parser looks every argv token up with
// find_flag() and switches on the FlagId, and render_usage() generates the
// help from the same rows — a flag literally cannot be accepted without
// appearing in --help (tests/harness/cli_flags_test asserts it anyway).
//
// The exit-code table lives here too, for the same reason: gpusim_cli's
// exit codes are a scripting contract (tools/check_jobs.sh and CI assert
// them), so the mapping from SimErrorKind to exit code and the table
// printed by --help must be one thing.
#pragma once

#include <string>
#include <vector>

#include "common/sim_error.hpp"

namespace gpusim {

enum class FlagId {
  kApps,
  kCycles,
  kPolicy,
  kSplit,
  kModels,
  kQosTarget,
  kQuantum,
  kSeed,
  kAlone,
  kConfig,
  kWatchdog,
  kDeadlineMs,
  kCycleBudget,
  kMemBudget,
  kSweep,
  kCheckpoint,
  kOut,
  kRetries,
  kBackoffMs,
  kFailFast,
  kJobs,
  kSnapshotEvery,
  kSnapshotDir,
  kRestore,
  kAuditDeterminism,
  kHashEvery,
  kNoActivitySched,
  kGovernor,
  kNoGovernor,
  kProfileLoop,
  kChaos,
  kChaosSeed,
  kNoMinimize,
  kNoRecovery,
  kFaultSchedule,
  kJobFile,
  kJobsResume,
  kManifest,
  kMaxRetries,
  kQuarantineAfter,
  kBundleDir,
  kNoBundle,
  kTriage,
  kTelemetryOut,
  kTraceOut,
  kMetricsOut,
  kDumpConfig,
  kListApps,
  kVersion,
  kHelp,
};

struct FlagInfo {
  FlagId id;
  const char* name;        ///< "--apps"
  const char* value_name;  ///< "LIST", or nullptr for boolean flags
  const char* help;        ///< one-line description ('\n' wraps, indented)
};

/// Every flag gpusim_cli accepts, in help-display order.
const std::vector<FlagInfo>& flag_table();

/// Looks an argv token up in the table ("-h" aliases "--help").  Returns
/// nullptr for unknown flags.
const FlagInfo* find_flag(const std::string& arg);

/// The full --help text: usage lines, the flag table and the exit-code
/// table, all generated from the tables in this header.
std::string render_usage(const char* argv0);

struct ExitCodeInfo {
  int code;
  const char* meaning;
};

/// gpusim_cli's exit-code contract, in numeric order.
const std::vector<ExitCodeInfo>& exit_code_table();

/// Maps a SimError kind to its documented exit code (6 interrupted,
/// 7 deadline, 8 budget, 9 quarantined; everything else is 3).
int exit_code_for(SimErrorKind kind);

}  // namespace gpusim
