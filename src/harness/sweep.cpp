#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/sim_error.hpp"
#include "harness/worker_pool.hpp"

namespace gpusim {

namespace {

/// %.17g round-trips every double bit-exactly, which the byte-identical
/// resume guarantee depends on.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Pulls the string value of a top-level `"key":"value"` field out of a
/// checkpoint line we wrote ourselves.  Returns empty when absent.
std::string extract_string_field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

struct CheckpointEntry {
  bool ok = false;
  std::string result_json;  ///< verbatim "result" object when ok
  std::string error;
};

/// Parses the JSONL checkpoint.  The format is our own append-only output,
/// so field extraction by position is exact, not heuristic; unparseable
/// lines (e.g. a torn final line from a crash mid-write) are skipped with a
/// stderr warning and counted in `torn_lines` — their pair simply re-runs.
/// The last line for a label wins.
std::map<std::string, CheckpointEntry> load_checkpoint(
    const std::string& path, int& torn_lines) {
  std::map<std::string, CheckpointEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  int line_no = 0;
  auto warn_torn = [&](const char* why) {
    ++torn_lines;
    std::fprintf(stderr,
                 "gpusim: sweep checkpoint %s line %d is %s — skipping it; "
                 "the affected pair will re-run\n",
                 path.c_str(), line_no, why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;  // seal_torn_tail padding, harmless
    if (line.back() != '}') {
      warn_torn("truncated (crash mid-write?)");
      continue;
    }
    const std::string label = extract_string_field(line, "label");
    if (label.empty()) {
      warn_torn("missing its label");
      continue;
    }
    CheckpointEntry entry;
    entry.ok = line.find("\"ok\":true") != std::string::npos;
    if (entry.ok) {
      const auto pos = line.find("\"result\":");
      if (pos == std::string::npos) {
        warn_torn("marked ok but has no result");
        continue;
      }
      entry.result_json =
          line.substr(pos + 9, line.size() - (pos + 9) - 1);
    } else {
      entry.error = extract_string_field(line, "error");
    }
    entries[label] = std::move(entry);
  }
  return entries;
}

std::string checkpoint_line(const SweepEntry& entry) {
  std::ostringstream ss;
  ss << "{\"label\":\"" << escape_json(entry.label)
     << "\",\"ok\":" << (entry.ok ? "true" : "false")
     << ",\"attempts\":" << entry.attempts;
  if (entry.ok) {
    ss << ",\"result\":" << entry.result_json;
  } else {
    ss << ",\"error\":\"" << escape_json(entry.error) << "\"";
  }
  ss << "}";
  return ss.str();
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts, RunFn run_fn)
    : SweepRunner(std::move(opts),
                  RunFnFactory([fn = std::move(run_fn)]() { return fn; })) {}

SweepRunner::SweepRunner(SweepOptions opts, RunFnFactory factory)
    : opts_(std::move(opts)), factory_(std::move(factory)) {
  SIM_CHECK(opts_.max_attempts >= 1,
            SimError(SimErrorKind::kHarness, "harness.sweep",
                     "max_attempts must be at least 1")
                .detail("max_attempts", opts_.max_attempts));
  SIM_CHECK(opts_.jobs >= 0,
            SimError(SimErrorKind::kHarness, "harness.sweep",
                     "jobs must be 0 (= hardware concurrency) or positive")
                .detail("jobs", opts_.jobs));
}

int SweepRunner::effective_jobs(std::size_t n_pending) const {
  int jobs = opts_.jobs;
  if (jobs == 0) {
    jobs = std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n_pending));
}

SweepEntry SweepRunner::run_one(const RunFn& fn, const Workload& workload) {
  SweepEntry entry;
  entry.label = workload.label();
  for (int attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
    entry.attempts = attempt;
    try {
      const CoRunResult result = fn(workload);
      entry.ok = true;
      entry.result_json = to_json(result);
      break;
    } catch (const SimError& e) {
      // Sweep-fatal conditions: an operator interrupt or a lapsed job
      // deadline is about the *sweep*, not this pair — recording it as a
      // pair failure would poison the checkpoint (the pair would replay as
      // "failed" forever).  Propagate instead; run() rethrows after the
      // workers drain.
      if (e.kind() == SimErrorKind::kInterrupted ||
          e.kind() == SimErrorKind::kDeadlineExceeded) {
        throw;
      }
      entry.error = e.what();
      if (attempt < opts_.max_attempts && opts_.backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.backoff_ms * attempt));
      }
    } catch (const std::exception& e) {
      entry.error = e.what();
      if (attempt < opts_.max_attempts && opts_.backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts_.backoff_ms * attempt));
      }
    }
  }
  return entry;
}

std::string SweepRunner::to_json(const CoRunResult& r) {
  std::ostringstream ss;
  ss << "{\"label\":\"" << escape_json(r.label) << "\",\"cycles\":" << r.cycles
     << ",\"unfairness\":" << fmt_double(r.unfairness)
     << ",\"harmonic_speedup\":" << fmt_double(r.harmonic_speedup)
     << ",\"wasted_bw_share\":" << fmt_double(r.wasted_bw_share)
     << ",\"idle_bw_share\":" << fmt_double(r.idle_bw_share)
     << ",\"repartitions\":" << r.repartitions;
  // Anomaly counters ride along only when nonzero, so healthy-run result
  // lines stay byte-identical with earlier checkpoints/baselines (the same
  // contract as the run-mode CLI's conditional governor line).
  if (r.sanitized_estimates != 0) {
    ss << ",\"sanitized_estimates\":" << r.sanitized_estimates;
  }
  if (r.governor_interventions != 0) {
    ss << ",\"governor_interventions\":" << r.governor_interventions;
  }
  ss << ",\"apps\":[";
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    const AppResult& a = r.apps[i];
    if (i != 0) ss << ",";
    ss << "{\"abbr\":\"" << escape_json(a.abbr)
       << "\",\"instructions\":" << a.instructions
       << ",\"ipc_shared\":" << fmt_double(a.ipc_shared)
       << ",\"ipc_alone\":" << fmt_double(a.ipc_alone)
       << ",\"actual_slowdown\":" << fmt_double(a.actual_slowdown)
       << ",\"estimates\":{";
    bool first = true;
    for (const auto& [model, value] : a.estimates) {  // std::map: sorted
      if (!first) ss << ",";
      first = false;
      ss << "\"" << escape_json(model) << "\":" << fmt_double(value);
    }
    ss << "}}";
  }
  ss << "],\"app_bw_share\":[";
  for (std::size_t i = 0; i < r.app_bw_share.size(); ++i) {
    if (i != 0) ss << ",";
    ss << fmt_double(r.app_bw_share[i]);
  }
  ss << "]}";
  return ss.str();
}

std::vector<SweepEntry> SweepRunner::run(
    const std::vector<Workload>& workloads) {
  resumed_ = 0;
  attempts_spent_ = 0;
  torn_lines_skipped_ = 0;

  std::map<std::string, CheckpointEntry> done;
  std::ofstream checkpoint;
  if (!opts_.checkpoint_path.empty()) {
    done = load_checkpoint(opts_.checkpoint_path, torn_lines_skipped_);
    // A crash mid-write leaves a torn final line with no trailing newline.
    // Appending straight after it would glue our first new line onto the
    // fragment, and a later resume would then mis-parse the combined line
    // (the fragment's label with the new line's payload).  Seal the
    // fragment onto its own line so it stays skippable forever.
    bool seal_torn_tail = false;
    {
      std::ifstream probe(opts_.checkpoint_path, std::ios::binary);
      if (probe && probe.seekg(0, std::ios::end) && probe.tellg() > 0) {
        probe.seekg(-1, std::ios::end);
        char last = '\n';
        seal_torn_tail = probe.get(last) && last != '\n';
      }
    }
    checkpoint.open(opts_.checkpoint_path, std::ios::app);
    SIM_CHECK(checkpoint.good(),
              SimError(SimErrorKind::kHarness, "harness.sweep",
                       "cannot open checkpoint file for append")
                  .detail("path", opts_.checkpoint_path));
    if (seal_torn_tail) checkpoint << "\n";
  }

  // Replay checkpointed pairs and collect the still-pending workload
  // indices.  Entries live in one pre-sized vector indexed by workload
  // position: workers write disjoint slots, and the final assembly is in
  // workload order regardless of completion order — this is what makes
  // write_results() byte-identical for every jobs value.
  std::vector<SweepEntry> entries(workloads.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    SweepEntry& entry = entries[i];
    entry.label = workloads[i].label();
    const auto it = done.find(entry.label);
    if (it != done.end() && it->second.ok) {
      entry.ok = true;
      entry.from_checkpoint = true;
      entry.result_json = it->second.result_json;
      ++resumed_;
    } else {
      pending.push_back(i);
    }
  }

  const int jobs = effective_jobs(pending.size());
  std::mutex checkpoint_mu;  // guards `checkpoint` appends
  auto commit = [&](const SweepEntry& entry) {
    if (!checkpoint.is_open()) return;
    // One complete line per finished pair, flushed before the worker picks
    // up its next pair, so a crash at any point loses at most the pairs in
    // progress.  The mutex spans format + write: lines never interleave.
    const std::string line = checkpoint_line(entry);
    std::lock_guard<std::mutex> lock(checkpoint_mu);
    checkpoint << line << "\n";
    checkpoint.flush();
  };

  // Workers claim pending indices through the shared pool (worker_pool.hpp;
  // jobs <= 1 runs inline with no threads).  Each worker owns its RunFn.
  // Under fail_fast a failure raises `abort`; in-progress pairs finish
  // (and checkpoint) but no new pair starts, then the lowest-index failure
  // is rethrown after the join so the error is deterministic.
  const int n_fns = std::max(1, jobs);
  std::vector<RunFn> fns;
  fns.reserve(n_fns);
  for (int w = 0; w < n_fns; ++w) fns.push_back(factory_());

  std::atomic<int> attempts_total{0};
  std::atomic<bool> abort{false};
  std::mutex failure_mu;
  std::size_t first_failed = workloads.size();  // min failed workload index
  std::size_t fatal_index = workloads.size();   // min sweep-fatal index
  std::exception_ptr fatal;                     // kInterrupted / kDeadline…

  run_indexed(
      pending.size(), jobs,
      [&](int w, std::size_t k) {
        const std::size_t i = pending[k];
        // Graceful shutdown: drain — claimed-but-not-started pairs are
        // simply left pending for the next resume.
        if (opts_.cancel != nullptr &&
            opts_.cancel->load(std::memory_order_relaxed)) {
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        SweepEntry entry;
        try {
          entry = run_one(fns[w], workloads[i]);
        } catch (...) {
          // Sweep-fatal (interrupt / deadline): record the lowest-index
          // one and stop claiming; the pair is NOT committed to the
          // checkpoint, so a resume re-runs it.
          std::lock_guard<std::mutex> lock(failure_mu);
          if (i < fatal_index) {
            fatal_index = i;
            fatal = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        attempts_total.fetch_add(entry.attempts, std::memory_order_relaxed);
        commit(entry);
        if (!entry.ok && opts_.fail_fast) {
          std::lock_guard<std::mutex> lock(failure_mu);
          first_failed = std::min(first_failed, i);
          abort.store(true, std::memory_order_relaxed);
        }
        entries[i] = std::move(entry);
      },
      &abort);
  attempts_spent_ += attempts_total.load();

  if (fatal) std::rethrow_exception(fatal);
  if (opts_.fail_fast && first_failed < workloads.size()) {
    const SweepEntry& entry = entries[first_failed];
    SIM_FAIL(SimError(SimErrorKind::kHarness, "harness.sweep",
                      "workload pair failed and fail_fast is set")
                 .detail("workload", entry.label)
                 .detail("attempts", entry.attempts)
                 .detail("last_error", entry.error));
  }
  return entries;
}

void SweepRunner::write_results(const std::string& path,
                                const std::vector<SweepEntry>& entries) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "harness.sweep",
                                   "cannot open results file for writing")
                              .detail("path", tmp));
    out << "{\"results\":[\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const SweepEntry& entry = entries[i];
      if (entry.ok) {
        out << entry.result_json;
      } else {
        out << "{\"label\":\"" << escape_json(entry.label)
            << "\",\"failed\":true,\"error\":\"" << escape_json(entry.error)
            << "\"}";
      }
      out << (i + 1 < entries.size() ? ",\n" : "\n");
    }
    out << "]}\n";
  }
  // Atomic publish: readers see either the old results or the new ones,
  // never a truncated file.
  std::filesystem::rename(tmp, path);
}

}  // namespace gpusim
