#include "harness/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "common/sim_error.hpp"

namespace gpusim {

namespace {

/// %.17g round-trips every double bit-exactly, which the byte-identical
/// resume guarantee depends on.
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Pulls the string value of a top-level `"key":"value"` field out of a
/// checkpoint line we wrote ourselves.  Returns empty when absent.
std::string extract_string_field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

struct CheckpointEntry {
  bool ok = false;
  std::string result_json;  ///< verbatim "result" object when ok
  std::string error;
};

/// Parses the JSONL checkpoint.  The format is our own append-only output,
/// so field extraction by position is exact, not heuristic; unparseable
/// lines (e.g. a torn final line from a crash mid-write) are skipped and
/// their pair simply re-runs.  The last line for a label wins.
std::map<std::string, CheckpointEntry> load_checkpoint(
    const std::string& path) {
  std::map<std::string, CheckpointEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.back() != '}') continue;
    const std::string label = extract_string_field(line, "label");
    if (label.empty()) continue;
    CheckpointEntry entry;
    entry.ok = line.find("\"ok\":true") != std::string::npos;
    if (entry.ok) {
      const auto pos = line.find("\"result\":");
      if (pos == std::string::npos) continue;
      entry.result_json =
          line.substr(pos + 9, line.size() - (pos + 9) - 1);
    } else {
      entry.error = extract_string_field(line, "error");
    }
    entries[label] = std::move(entry);
  }
  return entries;
}

std::string checkpoint_line(const SweepEntry& entry) {
  std::ostringstream ss;
  ss << "{\"label\":\"" << escape_json(entry.label)
     << "\",\"ok\":" << (entry.ok ? "true" : "false")
     << ",\"attempts\":" << entry.attempts;
  if (entry.ok) {
    ss << ",\"result\":" << entry.result_json;
  } else {
    ss << ",\"error\":\"" << escape_json(entry.error) << "\"";
  }
  ss << "}";
  return ss.str();
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions opts, RunFn run_fn)
    : opts_(std::move(opts)), run_fn_(std::move(run_fn)) {
  SIM_CHECK(opts_.max_attempts >= 1,
            SimError(SimErrorKind::kHarness, "harness.sweep",
                     "max_attempts must be at least 1")
                .detail("max_attempts", opts_.max_attempts));
}

std::string SweepRunner::to_json(const CoRunResult& r) {
  std::ostringstream ss;
  ss << "{\"label\":\"" << escape_json(r.label) << "\",\"cycles\":" << r.cycles
     << ",\"unfairness\":" << fmt_double(r.unfairness)
     << ",\"harmonic_speedup\":" << fmt_double(r.harmonic_speedup)
     << ",\"wasted_bw_share\":" << fmt_double(r.wasted_bw_share)
     << ",\"idle_bw_share\":" << fmt_double(r.idle_bw_share)
     << ",\"repartitions\":" << r.repartitions << ",\"apps\":[";
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    const AppResult& a = r.apps[i];
    if (i != 0) ss << ",";
    ss << "{\"abbr\":\"" << escape_json(a.abbr)
       << "\",\"instructions\":" << a.instructions
       << ",\"ipc_shared\":" << fmt_double(a.ipc_shared)
       << ",\"ipc_alone\":" << fmt_double(a.ipc_alone)
       << ",\"actual_slowdown\":" << fmt_double(a.actual_slowdown)
       << ",\"estimates\":{";
    bool first = true;
    for (const auto& [model, value] : a.estimates) {  // std::map: sorted
      if (!first) ss << ",";
      first = false;
      ss << "\"" << escape_json(model) << "\":" << fmt_double(value);
    }
    ss << "}}";
  }
  ss << "],\"app_bw_share\":[";
  for (std::size_t i = 0; i < r.app_bw_share.size(); ++i) {
    if (i != 0) ss << ",";
    ss << fmt_double(r.app_bw_share[i]);
  }
  ss << "]}";
  return ss.str();
}

std::vector<SweepEntry> SweepRunner::run(
    const std::vector<Workload>& workloads) {
  resumed_ = 0;
  attempts_spent_ = 0;

  std::map<std::string, CheckpointEntry> done;
  std::ofstream checkpoint;
  if (!opts_.checkpoint_path.empty()) {
    done = load_checkpoint(opts_.checkpoint_path);
    // A crash mid-write leaves a torn final line with no trailing newline.
    // Appending straight after it would glue our first new line onto the
    // fragment, and a later resume would then mis-parse the combined line
    // (the fragment's label with the new line's payload).  Seal the
    // fragment onto its own line so it stays skippable forever.
    bool seal_torn_tail = false;
    {
      std::ifstream probe(opts_.checkpoint_path, std::ios::binary);
      if (probe && probe.seekg(0, std::ios::end) && probe.tellg() > 0) {
        probe.seekg(-1, std::ios::end);
        char last = '\n';
        seal_torn_tail = probe.get(last) && last != '\n';
      }
    }
    checkpoint.open(opts_.checkpoint_path, std::ios::app);
    SIM_CHECK(checkpoint.good(),
              SimError(SimErrorKind::kHarness, "harness.sweep",
                       "cannot open checkpoint file for append")
                  .detail("path", opts_.checkpoint_path));
    if (seal_torn_tail) checkpoint << "\n";
  }

  std::vector<SweepEntry> entries;
  entries.reserve(workloads.size());
  for (const Workload& workload : workloads) {
    SweepEntry entry;
    entry.label = workload.label();

    const auto it = done.find(entry.label);
    if (it != done.end() && it->second.ok) {
      entry.ok = true;
      entry.from_checkpoint = true;
      entry.result_json = it->second.result_json;
      ++resumed_;
      entries.push_back(std::move(entry));
      continue;
    }

    for (int attempt = 1; attempt <= opts_.max_attempts; ++attempt) {
      entry.attempts = attempt;
      ++attempts_spent_;
      try {
        const CoRunResult result = run_fn_(workload);
        entry.ok = true;
        entry.result_json = to_json(result);
        break;
      } catch (const std::exception& e) {
        entry.error = e.what();
        if (attempt < opts_.max_attempts && opts_.backoff_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opts_.backoff_ms * attempt));
        }
      }
    }

    if (checkpoint.is_open()) {
      // One line per finished pair, flushed before the next pair starts, so
      // a crash at any point loses at most the pair in progress.
      checkpoint << checkpoint_line(entry) << "\n";
      checkpoint.flush();
    }
    if (!entry.ok && opts_.fail_fast) {
      SIM_FAIL(SimError(SimErrorKind::kHarness, "harness.sweep",
                        "workload pair failed and fail_fast is set")
                   .detail("workload", entry.label)
                   .detail("attempts", entry.attempts)
                   .detail("last_error", entry.error));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

void SweepRunner::write_results(const std::string& path,
                                const std::vector<SweepEntry>& entries) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "harness.sweep",
                                   "cannot open results file for writing")
                              .detail("path", tmp));
    out << "{\"results\":[\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const SweepEntry& entry = entries[i];
      if (entry.ok) {
        out << entry.result_json;
      } else {
        out << "{\"label\":\"" << escape_json(entry.label)
            << "\",\"failed\":true,\"error\":\"" << escape_json(entry.error)
            << "\"}";
      }
      out << (i + 1 < entries.size() ? ",\n" : "\n");
    }
    out << "]}\n";
  }
  // Atomic publish: readers see either the old results or the new ones,
  // never a truncated file.
  std::filesystem::rename(tmp, path);
}

}  // namespace gpusim
