// Process-wide graceful-shutdown flag.
//
// Long campaigns (sweeps, chaos, job batches) are crash-safe through their
// JSONL checkpoints, but an operator Ctrl-C or a scheduler SIGTERM used to
// kill the process at an arbitrary instruction — usually harmless thanks to
// the torn-line discipline, yet it always threw away the unit of work in
// flight and occasionally left a torn checkpoint tail for the next resume
// to skip.  These handlers turn both signals into a *drain*: the first
// SIGINT/SIGTERM flips one atomic flag that every engine samples
// (SweepOptions::cancel, ChaosOptions::cancel, RunConfig::cancel,
// JobManagerOptions::cancel); in-flight units finish or snapshot, their
// checkpoint lines flush whole, and the process exits resumable.  A second
// signal skips the drain and hard-exits with status 130 — the operator
// always keeps an escape hatch.
#pragma once

#include <atomic>

namespace gpusim {

/// Installs SIGINT + SIGTERM handlers that request a graceful drain.
/// Idempotent; call once near the top of main().
void install_shutdown_handlers();

/// True once a shutdown signal has been received.
bool shutdown_requested();

/// The flag itself, for wiring into SweepOptions/ChaosOptions/RunConfig/
/// JobManagerOptions `cancel` fields.  Valid for the process lifetime.
const std::atomic<bool>* shutdown_flag();

/// Test hook: clears the flag so one test binary can exercise several
/// drain scenarios.  Never call from production code.
void reset_shutdown_for_tests();

}  // namespace gpusim
