#include "harness/shutdown.hpp"

#include <csignal>
#include <unistd.h>

namespace gpusim {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<int> g_signal_count{0};
std::atomic<bool> g_installed{false};

// Async-signal-safe by construction: lock-free atomic stores and _exit()
// only.  The first signal requests the drain; the second means the
// operator is done waiting — exit immediately with the conventional
// 128 + SIGINT status.
void on_shutdown_signal(int /*signum*/) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) > 0) {
    _exit(130);
  }
  g_shutdown.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  if (g_installed.exchange(true)) return;
  struct sigaction sa = {};
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking syscalls return EINTR promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

const std::atomic<bool>* shutdown_flag() { return &g_shutdown; }

void reset_shutdown_for_tests() {
  g_shutdown.store(false, std::memory_order_relaxed);
  g_signal_count.store(0, std::memory_order_relaxed);
}

}  // namespace gpusim
