// Shared index-claiming worker pool.
//
// SweepRunner (PR 2) and the chaos campaign engine both fan independent
// jobs across threads with the same scheme: workers claim pending indices
// from one atomic cursor and write results into disjoint, index-addressed
// slots, so the assembled output is identical for every worker count.
// This header is that scheme, extracted once — any determinism argument
// about "who ran what when" reduces to this single primitive.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace gpusim {

/// Runs body(worker, index) once for every index in [0, n), distributed
/// over `jobs` worker threads.  jobs <= 1 runs everything inline on the
/// calling thread (as worker 0) — no threads are spawned, exceptions
/// propagate directly.  With jobs > 1 the body runs on pool threads and
/// must not throw (callers catch inside the body and record the failure).
/// When `abort` is non-null, no new index is claimed once it turns true;
/// bodies already in flight complete normally.
inline void run_indexed(std::size_t n, int jobs,
                        const std::function<void(int, std::size_t)>& body,
                        const std::atomic<bool>* abort = nullptr) {
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
      body(0, i);
    }
    return;
  }
  std::atomic<std::size_t> cursor{0};
  auto worker = [&](int w) {
    while (true) {
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) break;
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      body(w, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();
}

}  // namespace gpusim
