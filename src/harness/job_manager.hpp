// JobManager — resilient orchestration for long-running job batches.
//
// A *job* is one unit of campaign work: a single co-run, a whole two-app
// sweep, or a chaos campaign.  Batches of heterogeneous jobs are described
// in a plain-text job file (one job per line, see JobSpec::parse) and
// executed through the shared worker pool with the reliability layer long
// campaigns actually need:
//
//   deadlines   every job gets a wall-clock deadline per attempt; a lapsed
//               deadline raises SimError(kDeadlineExceeded) out of the
//               simulation's chunked cycle loop (sampled at the watchdog
//               cadence, so the hot path pays nothing);
//   budgets     optional cycle / DRAM-traffic caps per job
//               (SimError(kBudgetExceeded)) guard runaway configs;
//   retries     transient failures (watchdog stalls, exhausted recovery,
//               lapsed deadlines, generic exceptions) retry with
//               exponential backoff + deterministic jitter; config and
//               invariant errors fail fast — retrying them cannot help;
//   quarantine  a circuit breaker counts *consecutive* terminal failures
//               per config key; once the limit is hit, later jobs with the
//               same key are quarantined immediately
//               (SimError(kQuarantined)) and the result carries a
//               ready-to-paste gpusim_cli reproducer command;
//   drain       a graceful-shutdown flag (see shutdown.hpp) stops new work,
//               snapshots the co-run in flight (SimState), and leaves the
//               manifest resumable: `gpusim_cli --jobs-resume <manifest>`
//               re-runs only the unfinished jobs and produces a final
//               report byte-identical to an uninterrupted batch.
//
// The *manifest* is the batch's single source of truth: a JSONL file whose
// header + spec lines pin the batch definition and whose result lines (one
// complete flushed line per finished job, appended by a dedicated writer
// thread draining a ConcurrentBoundedQueue) record outcomes.  Resume
// replays stored result lines verbatim — the same discipline that makes
// sweep and chaos checkpoints byte-identical under kill/resume.
//
// Determinism under parallelism: jobs sharing a config key are serialized
// in index order (a later job waits until every earlier same-key job is
// terminal), so the circuit breaker's consecutive-failure sequence — and
// therefore which jobs get quarantined — is identical for every `jobs`
// value.  Keys differ across distinct configs, so unrelated jobs still run
// fully in parallel.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace gpusim {

enum class JobType : u8 {
  kRun,    ///< one co-run + alone baselines (ExperimentRunner)
  kSweep,  ///< a two-app sweep (SweepRunner)
  kChaos,  ///< a chaos campaign (run_chaos_campaign)
};

const char* to_string(JobType type);

/// One parsed job-file line.  The raw line is kept verbatim for the
/// manifest round-trip: resume re-parses exactly what the fresh batch ran.
struct JobSpec {
  int index = 0;
  JobType type = JobType::kRun;
  std::string raw;

  // run jobs
  std::vector<std::string> apps;       ///< Table III abbreviations
  std::string policy = "even";         ///< "even" | "dase-fair"
  std::string faults;                  ///< FaultSchedule spec ("" = none)

  // sweep jobs
  std::string sweep_which;             ///< "all" | "random:N"

  // chaos jobs
  int chaos_schedules = 0;
  u64 chaos_seed = 1;

  // shared knobs (0 / -1 = inherit the manager default)
  Cycle cycles = 0;
  Cycle watchdog = kInheritWatchdog;
  double deadline_ms = 0.0;
  int max_retries = -1;
  Cycle cycle_budget = 0;
  u64 mem_budget = 0;

  static constexpr Cycle kInheritWatchdog = static_cast<Cycle>(-1);

  /// The circuit breaker's identity: everything that determines the job's
  /// behavior except its index.  Two jobs with equal keys run the same
  /// config, so one crash-looping config quarantines all its instances.
  std::string config_key() const;

  /// Parses one job-file line, e.g.
  ///   run apps=SD,SA policy=dase-fair cycles=100000 watchdog=3000
  ///       faults=stall:part=0,from=10 deadline-ms=5000 max-retries=1
  ///   sweep which=random:6 cycles=40000
  ///   chaos schedules=8 seed=7 cycles=30000
  /// Throws SimError(kConfig) on any malformed token.
  static JobSpec parse(const std::string& line, int index);
};

/// Parses a job file: one job per non-empty line, '#' starts a comment.
/// Throws SimError(kConfig) naming the offending line.
std::vector<JobSpec> parse_job_file(const std::string& path);

enum class JobStatus : u8 {
  kPending,      ///< not run (batch interrupted before/while it ran)
  kOk,           ///< finished successfully
  kFailed,       ///< exhausted its attempts (or failed fast)
  kQuarantined,  ///< circuit breaker refused to run it
};

const char* to_string(JobStatus status);

struct JobResult {
  int index = 0;
  std::string spec_raw;
  JobStatus status = JobStatus::kPending;
  int attempts = 0;
  /// Terminal error identity (kind/component/message only — never the full
  /// what(), whose cycle counts and elapsed times are run-dependent and
  /// would break byte-identical resume).
  std::string error_kind;
  std::string error_component;
  std::string error_message;
  /// Ready-to-paste gpusim_cli command reproducing a failed or
  /// quarantined job's config.
  std::string reproducer;
  /// Engine-specific result payload (single-line JSON): the co-run result
  /// for run jobs, the per-pair entry array for sweeps, the campaign
  /// report for chaos.
  std::string payload_json;
  /// Per-job telemetry output directory (set only when the batch runs with
  /// telemetry enabled; surfaced in the manifest result line so a reader
  /// can find a job's JSONL/trace/metrics files without re-deriving paths).
  std::string telemetry_dir;
  /// Canonical manifest result line; resumed jobs carry their stored line
  /// verbatim, which is what makes interrupted + resumed reports
  /// byte-identical to fresh ones.
  std::string json;
  bool from_manifest = false;
};

struct JobManagerOptions {
  GpuConfig gpu;
  u64 base_seed = 42;
  /// Default co-run / campaign length for specs that omit cycles=.
  Cycle default_cycles = 40'000;
  /// Default per-attempt wall-clock deadline (0 = none) for specs that
  /// omit deadline-ms=.
  double default_deadline_ms = 0.0;
  /// Retries after the first attempt, for transient failures only.
  int max_retries = 2;
  /// Backoff before retry r is `backoff_base_ms << (r-1)` plus a
  /// deterministic jitter derived from (job index, attempt).
  int backoff_base_ms = 10;
  /// Quarantine a config key after this many *consecutive* terminal
  /// failures (success resets the count).
  int quarantine_after = 3;
  /// Worker threads (0 = one per hardware thread; <=1 = serial).  The
  /// final report is byte-identical for every value.
  int jobs = 1;
  /// The batch manifest (JSONL).  Required.
  std::string manifest_path;
  /// Directory for per-job SimState snapshots (default:
  /// manifest_path + ".snaps"; each run job gets its own subdirectory).
  std::string snapshot_dir;
  /// Snapshot cadence for run jobs (0 disables mid-run snapshots; drains
  /// then lose the co-run in flight but stay resumable at job granularity).
  Cycle snapshot_every = 20'000;
  /// Graceful-shutdown flag (typically shutdown_flag()).
  const std::atomic<bool>* cancel = nullptr;
  /// Per-job progress lines on stderr.
  bool verbose = false;
  /// Crash forensics: when non-empty, any terminal SimError inside a job's
  /// co-run (run/sweep jobs) or a guard-caught chaos schedule emits a
  /// crash bundle under this root (see harness/crash_bundle.hpp).  Drains
  /// (kInterrupted) and quarantine refusals never bundle.
  std::string crash_bundle_dir;
  /// Telemetry output root (see telemetry/hub.hpp): when non-empty, every
  /// job flushes per-interval JSONL/trace/metrics files under its own
  /// subdirectory ("<telemetry_dir>/job<index>"), so a batch's jobs never
  /// collide and an interrupted + resumed batch rewrites identical files.
  std::string telemetry_dir;
};

struct JobBatchReport {
  int total = 0;
  int ok = 0;
  int failed = 0;
  int quarantined = 0;
  int pending = 0;
  /// True when the batch drained on the cancel flag; the manifest is the
  /// resume point and exit_code() is 6.
  bool interrupted = false;
  std::vector<JobResult> jobs;  ///< index order, one per spec

  /// Deterministic report (index-ordered jobs, no timestamps, no resume
  /// counters): byte-identical for any worker count, interrupted+resumed
  /// or not.
  std::string to_json() const;

  /// The CLI exit-code contract (documented in gpusim_cli --help):
  ///   6 interrupted (manifest resumable) > 9 any job quarantined >
  ///   7 any deadline-exceeded failure > 8 any budget-exceeded failure >
  ///   1 any other failed job > 0 all ok.
  int exit_code() const;
};

class JobManager {
 public:
  explicit JobManager(JobManagerOptions opts);

  /// Runs a fresh batch: writes the manifest header + spec lines, then
  /// executes every job.  Refuses (SimError(kHarness)) to overwrite a
  /// manifest that already holds results — resume instead.
  JobBatchReport run(const std::vector<JobSpec>& specs);

  /// Resumes the batch recorded in the manifest: stored result lines
  /// replay verbatim, pending jobs re-run (their own sweep/chaos
  /// checkpoints and SimState snapshots resume too).  Torn manifest lines
  /// are skipped with a warning and the affected job re-runs.
  JobBatchReport resume();

  /// Torn manifest lines skipped during the last resume().
  int torn_lines_skipped() const { return torn_lines_skipped_; }

  const JobManagerOptions& options() const { return opts_; }

 private:
  JobBatchReport execute(const std::vector<JobSpec>& specs,
                         std::vector<JobResult> seeded);

  JobManagerOptions opts_;
  int torn_lines_skipped_ = 0;
};

/// The gpusim_cli command that replays one job's exact config (used as the
/// quarantine/failure reproducer).  Exposed for tests.
std::string job_reproducer_command(const JobSpec& spec,
                                   const JobManagerOptions& opts);

/// Atomically writes report.to_json() to `path` (temp file + rename).
void write_job_report(const std::string& path, const JobBatchReport& report);

}  // namespace gpusim
