// SimState divergence auditor: lockstep comparison of two simulations.
//
// Two runs of the same config + workload are supposed to be bit-identical
// regardless of execution-strategy knobs (idle-cycle fast-forward on/off,
// serial vs parallel sweep, interrupted + restored vs uninterrupted).  The
// auditor makes that claim checkable: it steps two Simulations in lockstep
// strides, compares their 64-bit state hashes at every stride boundary, and
// on the first mismatch drills into the per-component hashes to name which
// subsystems diverged, attaching both SimGuard pipeline dumps.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "gpu/simulator.hpp"

namespace gpusim {

/// One component whose hash differs between the two runs at the divergent
/// sample point.
struct ComponentMismatch {
  std::string name;
  u64 hash_a = 0;
  u64 hash_b = 0;
};

struct DivergenceReport {
  bool diverged = false;
  /// First sampled cycle at which the state hashes differed.
  Cycle first_divergent_cycle = 0;
  u64 hash_a = 0;
  u64 hash_b = 0;
  /// Components whose per-component hashes differ at that cycle (the
  /// coarse hash can differ while every component matches only if the
  /// top-level bookkeeping diverged; that shows up as "sim.intervals").
  std::vector<ComponentMismatch> component_mismatches;
  /// SimGuard pipeline dumps of both simulations at the divergent cycle.
  std::string dump_a;
  std::string dump_b;
  /// Sample points checked (including the one that diverged, if any).
  u64 samples_checked = 0;

  std::string to_string() const;
};

/// Steps `a` and `b` in lockstep over `total_cycles`, comparing state
/// hashes every `sample_every` cycles (and once more at the end if the
/// budget is not a multiple).  Stops at the first divergence.  Both
/// simulations must start at the same cycle with equal state; the caller
/// configures each side's knobs (fast-forward, restored-from-snapshot…)
/// before calling.
DivergenceReport audit_divergence(Simulation& a, Simulation& b,
                                  Cycle total_cycles, Cycle sample_every);

}  // namespace gpusim
