// ChaosLab campaign engine.
//
// A chaos campaign fans deterministic random FaultSchedules across
// workload × policy co-runs (sharing the sweep's worker pool and JSONL
// checkpoint discipline), classifies every outcome into exactly one of
// four classes — there is deliberately no "unknown" —
//
//   recovered     the run completed, the conservation audit balanced
//                 (within the recovery tolerance) and every estimate is
//                 finite: the modeled timeout/retry path absorbed the
//                 faults;
//   guard-caught  a SimGuard layer raised a typed SimError (recovery
//                 budget spent, invariant violation, conservation leak,
//                 …) or the post-run audit found an unexplained imbalance;
//   wrong-result  the run completed but produced corrupt output (a
//                 silently misrouted request, or a non-finite estimate
//                 that slipped past the sanitizer);
//   hang          the progress watchdog proved a deadlock/livelock, or a
//                 stall-forever fault was still active when the cycle
//                 budget expired (the wedge simply outlived the budget);
//
// and delta-debugs every failing schedule down to a minimal reproducer,
// emitted as a ready-to-paste `gpusim_cli --fault-schedule` replay
// command.  Everything is deterministic: identical options produce a
// byte-identical campaign report for any worker count, interrupted and
// resumed or not.
#pragma once

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/fault_injection.hpp"
#include "kernels/workload_sets.hpp"

namespace gpusim {

enum class ChaosOutcome : u8 {
  kRecovered,
  kGuardCaught,
  kWrongResult,
  kHang,
};

const char* to_string(ChaosOutcome outcome);

struct ChaosOptions {
  GpuConfig gpu;
  /// Campaign size: one random FaultSchedule per job.
  int schedules = 50;
  /// Master seed; job i's schedule derives deterministically from it.
  u64 seed = 1;
  /// Cycle budget per job.  Jobs also tighten the watchdog, the
  /// estimation interval and the retry timeout to fractions of this so
  /// every mechanism gets exercised inside the budget.
  Cycle cycles = 40'000;
  /// Worker threads (0 = one per hardware thread; 1 = serial).  The
  /// report is byte-identical for every value.
  int jobs = 1;
  /// Arm the modeled MSHR timeout/retry recovery path in every job.
  bool recovery = true;
  /// Attach the policy safety governor to every job (the production
  /// default).  Campaigns tighten governor_drain_budget to a fraction of
  /// `cycles` so a wedged drain is diagnosed as the typed
  /// kMigrationStalled instead of the generic progress watchdog.
  bool governor = true;
  /// Maximum events per random schedule.
  int max_events = 4;
  /// Delta-debug failing schedules down to minimal reproducers.
  bool minimize = true;
  /// JSONL campaign checkpoint: one line per finished job, flushed
  /// immediately; a restarted campaign replays finished jobs verbatim.
  /// Empty disables checkpointing.
  std::string checkpoint_path;
  /// Base seed for the workload applications (harness_app_seed).
  u64 base_seed = 42;
  /// Graceful-shutdown flag: once true, no new schedule starts and the job
  /// in flight raises SimError(kInterrupted) out of run_chaos_campaign
  /// (never classified as a chaos outcome).  Finished jobs are already
  /// flushed to the checkpoint, so rerunning resumes the campaign.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute wall-clock deadline for the whole campaign; crossing it
  /// raises SimError(kDeadlineExceeded) out of run_chaos_campaign (again
  /// never classified).  Default-constructed = none.
  std::chrono::steady_clock::time_point wall_deadline{};
  /// Crash forensics: when non-empty, every guard-caught/hang SimError a
  /// chaos job catches also emits a crash bundle (harness/crash_bundle.hpp)
  /// under this root before the job is classified.  Off by default — a
  /// campaign *expects* failures, so bundling is opt-in; minimization
  /// probes never bundle regardless.
  std::string crash_bundle_dir;
  /// Telemetry output directory (see telemetry/hub.hpp): when non-empty,
  /// every job — including guard-caught and hang outcomes — flushes
  /// per-label JSONL/trace/metrics files under it, named
  /// "<workload>-<policy>-<schedule seed>" so a campaign's jobs never
  /// collide.  Minimization probes never flush regardless.
  std::string telemetry_dir;
};

struct ChaosJobResult {
  int index = 0;
  std::string workload;  ///< label, e.g. "SD+SA"
  std::string policy;    ///< "even" or "dase-fair"
  std::string schedule;  ///< FaultSchedule spec string
  ChaosOutcome outcome = ChaosOutcome::kRecovered;
  std::string error_kind;  ///< SimError kind when one was thrown
  std::string detail;      ///< one-line reason for the classification
  Cycle final_cycle = 0;
  u64 retries_issued = 0;
  u64 duplicates_absorbed = 0;
  u64 sanitized_estimates = 0;
  /// Governor clamps/rejects/holds/trips/aborts over the job (emitted in
  /// the JSONL line only when nonzero, keeping healthy lines byte-stable).
  u64 governor_interventions = 0;
  /// Minimal reproducer (set when minimization ran on a failing job).
  std::string minimized_schedule;
  std::size_t minimized_events = 0;
  /// Ready-to-paste gpusim_cli command replaying this job.
  std::string replay;
  bool from_checkpoint = false;
  /// Canonical JSONL serialization of this result (also the checkpoint
  /// line); resumed jobs carry their stored line verbatim, which is what
  /// makes interrupted + resumed reports byte-identical to fresh ones.
  std::string json;
};

struct ChaosReport {
  int schedules = 0;
  u64 seed = 0;
  Cycle cycles = 0;
  bool recovery = true;
  int resumed = 0;
  std::vector<ChaosJobResult> jobs;  ///< index order

  int count(ChaosOutcome outcome) const;
  /// Deterministic report: index-ordered jobs, no timestamps, %.17g
  /// doubles — byte-identical for identical options.
  std::string to_json() const;
};

/// Deterministic random schedule for one campaign job.  Mixes windowed
/// stalls, drops, NACKs, bit flips, misroutes and (rarely) stall-forever
/// events, all timed inside `cycles`.
FaultSchedule random_fault_schedule(u64 seed, Cycle cycles,
                                    int num_partitions, int max_events);

/// Runs one workload under one schedule and classifies the outcome.
/// `dase_fair` selects the DASE-Fair repartitioning policy instead of the
/// static even split.  This exact function also backs the CLI's
/// --fault-schedule replay, so a minimized reproducer replays through the
/// same code path that found it.
ChaosJobResult run_chaos_job(const ChaosOptions& opts,
                             const Workload& workload, bool dase_fair,
                             const FaultSchedule& schedule);

/// Greedy event-removal delta debugging: repeatedly re-runs the job with
/// one event removed and keeps the removal whenever the failure class is
/// preserved, until no single event can be dropped.
FaultSchedule minimize_failing_schedule(const ChaosOptions& opts,
                                        const Workload& workload,
                                        bool dase_fair,
                                        const FaultSchedule& schedule,
                                        ChaosOutcome failure);

/// Runs the whole campaign (resuming from the checkpoint when present).
ChaosReport run_chaos_campaign(const ChaosOptions& opts);

/// Atomically writes report.to_json() to `path` (temp file + rename).
void write_chaos_report(const std::string& path, const ChaosReport& report);

}  // namespace gpusim
