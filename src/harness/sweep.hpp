// SimGuard crash-safe sweep runner.
//
// The paper's headline experiments iterate all 105 two-application
// workload pairs for millions of cycles each; a crash (or an injected
// fault, or an operator Ctrl-C) hours in used to throw the whole sweep
// away.  SweepRunner checkpoints every finished pair as one JSONL line,
// flushed before the next pair starts, so a restarted sweep skips
// completed pairs and re-runs only the missing ones.  Completed results
// are replayed verbatim from the checkpoint, and the final results file is
// assembled in workload order from those stored lines — an interrupted +
// resumed sweep produces a byte-identical file to an uninterrupted one.
//
// Pairs that throw (SimError or anything else) are retried up to
// `max_attempts` times with linear backoff; a pair that keeps failing is
// recorded with its error and the sweep moves on (or aborts immediately
// under `fail_fast`).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "kernels/workload_sets.hpp"

namespace gpusim {

struct SweepOptions {
  /// JSONL checkpoint file, appended after every pair.  Empty disables
  /// checkpointing (the sweep still retries, but cannot resume).
  std::string checkpoint_path;
  /// Total tries per pair (first run + retries).
  int max_attempts = 3;
  /// Sleep `backoff_ms * attempt` between retries of the same pair.
  int backoff_ms = 0;
  /// Abort the sweep (rethrow as SimError(kHarness)) on the first pair that
  /// exhausts its attempts, instead of recording the failure and moving on.
  bool fail_fast = false;
};

/// Outcome of one workload pair within a sweep.
struct SweepEntry {
  std::string label;
  bool ok = false;
  /// Attempts spent in the run that produced this entry (0 when the entry
  /// was replayed from a checkpoint).
  int attempts = 0;
  /// True when the entry was taken from the checkpoint instead of re-run.
  bool from_checkpoint = false;
  /// Last error message when !ok.
  std::string error;
  /// Serialized CoRunResult (the checkpoint line's "result" object,
  /// verbatim) when ok.
  std::string result_json;
};

class SweepRunner {
 public:
  /// The function that actually runs one workload.  Tests substitute flaky
  /// or failing runners here; production code wraps ExperimentRunner::run.
  using RunFn = std::function<CoRunResult(const Workload&)>;

  SweepRunner(SweepOptions opts, RunFn run_fn);

  /// Runs every workload (resuming from the checkpoint when one exists)
  /// and returns one entry per workload, in workload order.
  std::vector<SweepEntry> run(const std::vector<Workload>& workloads);

  /// Workloads skipped in the last run() because the checkpoint already
  /// held a successful result for them.
  int resumed() const { return resumed_; }
  /// Total attempts spent across all pairs in the last run().
  int attempts_spent() const { return attempts_spent_; }

  /// Writes the final results file: a JSON array of the per-pair result
  /// objects in entry order (failed pairs appear as {"label":…,"failed":
  /// true,"error":…}).  Written via a temp file + rename so a crash never
  /// leaves a truncated results file.
  static void write_results(const std::string& path,
                            const std::vector<SweepEntry>& entries);

  /// Deterministic serialization of one co-run result (doubles printed
  /// with %.17g so they round-trip bit-exactly).
  static std::string to_json(const CoRunResult& result);

 private:
  SweepOptions opts_;
  RunFn run_fn_;
  int resumed_ = 0;
  int attempts_spent_ = 0;
};

}  // namespace gpusim
