// SimGuard crash-safe sweep runner, parallel since PR 2.
//
// The paper's headline experiments iterate all 105 two-application
// workload pairs for millions of cycles each; a crash (or an injected
// fault, or an operator Ctrl-C) hours in used to throw the whole sweep
// away.  SweepRunner checkpoints every finished pair as one JSONL line,
// flushed before the next pair starts, so a restarted sweep skips
// completed pairs and re-runs only the missing ones.  Completed results
// are replayed verbatim from the checkpoint, and the final results file is
// assembled in workload order from those stored lines — an interrupted +
// resumed sweep produces a byte-identical file to an uninterrupted one.
//
// Pairs that throw (SimError or anything else) are retried up to
// `max_attempts` times with linear backoff; a pair that keeps failing is
// recorded with its error and the sweep moves on (or aborts immediately
// under `fail_fast`).
//
// Parallelism model (`SweepOptions::jobs`): pairs share no simulator
// state, so a worker pool claims pending workload indices from an atomic
// cursor and runs them concurrently, each worker on its own RunFn (see
// RunFnFactory).  Determinism is preserved by construction:
//   - each pair's result depends only on the workload, never on which
//     thread ran it or when;
//   - finished pairs append to the checkpoint under a mutex, one complete
//     line per pair — line *order* varies across runs, but resume loads
//     the checkpoint into a label-keyed map, so order never matters;
//   - the final entry vector is assembled by workload index after all
//     workers join, making write_results() byte-identical for every jobs
//     value, interrupted or not.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "kernels/workload_sets.hpp"

namespace gpusim {

struct SweepOptions {
  /// JSONL checkpoint file, appended after every pair.  Empty disables
  /// checkpointing (the sweep still retries, but cannot resume).
  std::string checkpoint_path;
  /// Total tries per pair (first run + retries).
  int max_attempts = 3;
  /// Sleep `backoff_ms * attempt` between retries of the same pair.
  int backoff_ms = 0;
  /// Abort the sweep (rethrow as SimError(kHarness)) on the first pair that
  /// exhausts its attempts, instead of recording the failure and moving on.
  bool fail_fast = false;
  /// Worker threads running pairs concurrently.  1 (the default) is the
  /// legacy serial path — no threads are spawned at all; 0 means one
  /// worker per hardware thread.  Results are byte-identical for every
  /// value.
  int jobs = 1;
  /// Graceful-shutdown flag: once true, no new pair starts; already
  /// finished pairs have their checkpoint line flushed, so rerunning the
  /// same sweep resumes exactly where the drain stopped.  Combine with
  /// RunConfig::cancel (in the RunFn's runner) to also interrupt the pair
  /// in flight — that interruption propagates out of run() as
  /// SimError(kInterrupted) rather than being recorded as a pair failure.
  const std::atomic<bool>* cancel = nullptr;
};

/// Outcome of one workload pair within a sweep.
struct SweepEntry {
  std::string label;
  bool ok = false;
  /// Attempts spent in the run that produced this entry (0 when the entry
  /// was replayed from a checkpoint).
  int attempts = 0;
  /// True when the entry was taken from the checkpoint instead of re-run.
  bool from_checkpoint = false;
  /// Last error message when !ok.
  std::string error;
  /// Serialized CoRunResult (the checkpoint line's "result" object,
  /// verbatim) when ok.
  std::string result_json;
};

class SweepRunner {
 public:
  /// The function that actually runs one workload.  Tests substitute flaky
  /// or failing runners here; production code wraps ExperimentRunner::run.
  using RunFn = std::function<CoRunResult(const Workload&)>;

  /// Creates one independent RunFn per worker thread.  ExperimentRunner
  /// mutates internal state (the alone-IPC cache), so workers must not
  /// share one instance; the factory is invoked once per worker, on the
  /// main thread, before any worker starts.
  using RunFnFactory = std::function<RunFn()>;

  /// Single shared RunFn.  With jobs > 1 the same callable is invoked from
  /// several threads at once — only safe for stateless/thread-safe
  /// runners (tests); production sweeps use the factory overload.
  SweepRunner(SweepOptions opts, RunFn run_fn);
  SweepRunner(SweepOptions opts, RunFnFactory factory);

  /// Runs every workload (resuming from the checkpoint when one exists)
  /// and returns one entry per workload, in workload order.
  std::vector<SweepEntry> run(const std::vector<Workload>& workloads);

  /// Workloads skipped in the last run() because the checkpoint already
  /// held a successful result for them.
  int resumed() const { return resumed_; }
  /// Total attempts spent across all pairs in the last run().
  int attempts_spent() const { return attempts_spent_; }
  /// Torn/unparseable checkpoint lines skipped (with a stderr warning)
  /// while resuming the last run() — e.g. a line truncated by a crash
  /// mid-write.  The affected pairs re-run.
  int torn_lines_skipped() const { return torn_lines_skipped_; }

  /// Writes the final results file: a JSON array of the per-pair result
  /// objects in entry order (failed pairs appear as {"label":…,"failed":
  /// true,"error":…}).  Written via a temp file + rename so a crash never
  /// leaves a truncated results file.
  static void write_results(const std::string& path,
                            const std::vector<SweepEntry>& entries);

  /// Deterministic serialization of one co-run result (doubles printed
  /// with %.17g so they round-trip bit-exactly).
  static std::string to_json(const CoRunResult& result);

  /// Effective worker count for `n_pending` runnable pairs: resolves
  /// jobs == 0 to std::thread::hardware_concurrency() and never exceeds
  /// the number of pairs.  Exposed for tests and CLI diagnostics.
  int effective_jobs(std::size_t n_pending) const;

 private:
  SweepEntry run_one(const RunFn& fn, const Workload& workload);

  SweepOptions opts_;
  RunFnFactory factory_;
  int resumed_ = 0;
  int attempts_spent_ = 0;
  int torn_lines_skipped_ = 0;
};

}  // namespace gpusim
