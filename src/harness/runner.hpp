// Experiment harness implementing the paper's measurement methodology
// (Section V): run a multiprogrammed workload for a fixed cycle budget,
// then determine each application's *actual* slowdown by replaying the
// same number of instructions alone on the full GPU; attach the requested
// slowdown estimators to the co-run and report their per-application
// estimates alongside.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/fault_injection.hpp"
#include "common/loop_profiler.hpp"
#include "kernels/workload_sets.hpp"
#include "sched/policies.hpp"
#include "telemetry/hub.hpp"

namespace gpusim {

class Simulation;
class DaseModel;
class MiseModel;
class AsmModel;
class PriorityEpochDriver;
class DaseFairPolicy;
class PolicyGovernor;

struct RunConfig {
  GpuConfig gpu;
  /// Co-run length.  The paper uses 5M cycles; the default here is 300K,
  /// which our stationary synthetic kernels reach steady state well
  /// within (see tests/harness/methodology_test).  Override via the
  /// REPRO_CORUN_CYCLES environment variable in the bench binaries.
  Cycle co_run_cycles = 300'000;
  /// Safety cap for the alone-replay runs.
  Cycle max_alone_cycles = 3'000'000;
  u64 base_seed = 42;

  enum class AloneMode {
    /// Replay the co-run's exact instruction count alone on all SMs
    /// (the paper's methodology).
    kExactReplay,
    /// Use a cached steady-state alone IPC per application (our kernels
    /// are stationary, so this is nearly identical and much cheaper for
    /// the 105-pair sweeps; the equivalence is test-asserted).
    kCachedIpc,
  };
  AloneMode alone_mode = AloneMode::kExactReplay;

  /// Options for the corresponding PolicyKind.
  TemporalOptions temporal;
  DaseQosOptions qos;

  /// Activity-tracked cycle engine (gpu/gpu.hpp; --no-activity-sched
  /// clears it).  Applied to every Simulation this runner drives — co-run
  /// and alone replays; simulated output is bit-identical either way.
  bool activity_sched = true;
  /// Policy safety governor (sched/governor.hpp; --no-governor clears
  /// it).  The governor observer is attached either way so the SimState
  /// walk keeps one shape; like the watchdog threshold this is caller
  /// configuration, not simulated state, so a snapshot taken with the
  /// governor on restores fine with it off (and vice versa).
  bool governor = true;
  /// Loop profiler attached to the co-run Simulation (nullptr = none;
  /// --profile-loop).  Must outlive the runner calls that use this config.
  LoopProfiler* profiler = nullptr;

  /// SimGuard: progress-watchdog stall threshold applied to every
  /// simulation this runner drives (0 disables; default matches
  /// Simulation::kDefaultWatchdogCycles).
  Cycle watchdog_cycles = 1'000'000;
  /// SimGuard: audit end-to-end request conservation after each co-run
  /// (skipped automatically when faults are being injected).
  bool verify_conservation = true;
  /// SimGuard: fault schedule to inject into the co-run (empty by default;
  /// used by tests, the chaos engine and the CLI to exercise the watchdog,
  /// the auditor and the recovery path).
  FaultSchedule faults;

  // ---- SimState checkpointing (see gpu/snapshot.hpp) ----
  /// Snapshot the co-run every this many cycles (0 disables).  Each
  /// workload writes one "<label>.simstate" file into `snapshot_dir`; when
  /// that file already exists at run() entry with a matching fingerprint,
  /// the co-run resumes from it mid-simulation (so a killed process picks
  /// up where it died), and the file is deleted once the co-run
  /// completes.  A stale or mismatched file is skipped with a warning.
  /// Compatible with fault injection: the injector's progress counters and
  /// RNG ride along in the snapshot, and the schedule is folded into the
  /// snapshot fingerprint.
  Cycle snapshot_every = 0;
  /// Directory for auto-resume snapshot files (created if missing).
  std::string snapshot_dir = ".";
  /// Restore the co-run from this exact snapshot file before running
  /// (single-run use; unlike auto-resume, any restore failure is fatal).
  std::string restore_path;

  // ---- JobManager run limits (see gpu/simulator.hpp) --------------------
  /// Absolute wall-clock deadline applied to every Simulation this runner
  /// drives (co-run and alone replays).  Crossing it raises
  /// SimError(kDeadlineExceeded).  Default-constructed = no deadline.
  /// Absolute (not per-run) on purpose: a sweep job's pairs all share the
  /// job's one deadline.
  std::chrono::steady_clock::time_point wall_deadline{};
  /// Cycle cap per Simulation; raises SimError(kBudgetExceeded).  Guards
  /// runaway alone-replays as well as the co-run.  0 = none.
  Cycle cycle_budget = 0;
  /// DRAM requests-served cap per Simulation; raises
  /// SimError(kBudgetExceeded).  0 = none.
  u64 mem_budget = 0;
  /// Cooperative cancellation flag (typically the process shutdown flag).
  /// When it turns true the co-run raises SimError(kInterrupted) at the
  /// next sampling point; with snapshotting enabled, a snapshot is written
  /// first so a resumed run continues byte-identically.
  const std::atomic<bool>* cancel = nullptr;

  // ---- Crash forensics (see harness/crash_bundle.hpp) -------------------
  /// When non-empty, any terminal SimError escaping the co-run — watchdog
  /// stall, conservation failure, budget/deadline kill, guard trip —
  /// emits a self-contained crash-bundle directory under this root before
  /// the error propagates.  Graceful cancellation (kInterrupted) never
  /// bundles: the auto-resume snapshot already preserves that state.
  /// Empty (off) by default in the library; the CLI defaults it on.
  std::string crash_bundle_dir;
  /// Mode tag recorded in bundle manifests ("run", "sweep", "chaos",
  /// "jobs") so a triage session knows which path assembled the failure.
  std::string crash_bundle_mode = "run";

  // ---- Telemetry (see telemetry/hub.hpp) --------------------------------
  /// Output paths for the per-interval time series / Chrome trace /
  /// Prometheus snapshot.  The TelemetryHub observer records regardless
  /// (its buffers are simulated state, serialized in the SimState walk);
  /// these paths only decide whether files get flushed at the end of the
  /// co-run, so enabling them cannot change any simulated outcome.  Batch
  /// modes set `telemetry.dir` and each unit writes per-label files.
  TelemetryPaths telemetry;
};

struct ModelSet {
  bool dase = true;
  bool mise = false;
  bool asm_model = false;
  bool any_epoch_model() const { return mise || asm_model; }
};

enum class PolicyKind {
  kEven,      ///< static even split (the paper's default)
  kDaseFair,  ///< the paper's Section VII policy
  kLeftover,  ///< Section II background: first kernel takes everything
  kTemporal,  ///< conventional temporal multitasking (full-GPU turns)
  kDaseQos,   ///< future-work QoS controller on top of DASE
};

/// CLI/manifest spelling of a policy ("even", "dase-fair", ...).
const char* to_string(PolicyKind policy);
/// Inverse of to_string(PolicyKind); throws SimError(kConfig) on an
/// unknown name.  Used by the CLI and by --triage manifest loading.
PolicyKind parse_policy_kind(const std::string& name);

/// Everything about the *harness* side of an experiment that a snapshot is
/// only valid against: the run length and seed plus the attached models,
/// policy, SM split and armed fault schedule (which all shape the observer
/// list and partition).  Mixed into the snapshot-file fingerprint alongside
/// config + workload; --triage recomputes it from a bundle manifest.
u64 harness_context_of(const RunConfig& rc, const ModelSet& models,
                       PolicyKind policy, const std::vector<int>* sm_split);

/// One fully assembled co-run: the Simulation plus owning pointers for
/// every attached model, policy and the fault injector.  Move-only; the
/// observers hold raw pointers into the Simulation (and into each other —
/// DASE-Fair reads the DASE model), so the assembly must outlive any use
/// of `sim`.  Members are null when the corresponding model/policy is not
/// part of the requested ModelSet/PolicyKind.
struct CoRunAssembly {
  CoRunAssembly();
  CoRunAssembly(CoRunAssembly&&) noexcept;
  CoRunAssembly& operator=(CoRunAssembly&&) noexcept;
  ~CoRunAssembly();

  std::unique_ptr<Simulation> sim;
  std::unique_ptr<FaultInjector> injector;  ///< attached iff rc.faults.any()
  std::unique_ptr<DaseModel> dase;
  std::unique_ptr<MiseModel> mise;
  std::unique_ptr<AsmModel> asm_model;
  std::unique_ptr<PriorityEpochDriver> epochs;
  std::unique_ptr<DaseFairPolicy> fair;
  std::unique_ptr<DaseQosPolicy> qos;
  std::unique_ptr<TemporalPolicy> temporal;
  /// Always attached (last observer) so the observer walk has one shape;
  /// pass-through when rc.governor is false.
  std::unique_ptr<PolicyGovernor> governor;
  /// Always attached (after the governor, so each record sees the epoch's
  /// final intervention counts); output flags only gate flushing.
  std::unique_ptr<TelemetryHub> telemetry;
  /// Tap order the hub was assembled with ("DASE"/"MISE"/"ASM"); the flush
  /// context must name the estimate columns in exactly this order.
  std::vector<std::string> telemetry_estimators;
};

struct TriageContext;

/// Fills a crash-bundle TriageContext from the same inputs assemble_corun
/// took, computing the snapshot fingerprint from the live simulation.  The
/// mode tag is taken from rc.crash_bundle_mode.
TriageContext triage_context_of(const RunConfig& rc, const Workload& workload,
                                const ModelSet& models, PolicyKind policy,
                                const std::vector<int>* sm_split,
                                const Simulation& sim);

/// Builds the co-run simulation exactly as ExperimentRunner::run does:
/// app launches seeded with harness_app_seed, watchdog and run limits from
/// `rc`, the fault injector when a schedule is armed, the SM partition for
/// the policy/split, and the model/policy observers in canonical
/// registration order (dase, mise, asm, epochs, fair, qos, temporal,
/// governor, telemetry hub last — the order Simulation::load expects
/// back).  Shared by the runner, the chaos
/// engine and --triage so a restored snapshot always meets an identically
/// assembled experiment.
CoRunAssembly assemble_corun(const RunConfig& rc, const Workload& workload,
                             const ModelSet& models, PolicyKind policy,
                             const std::vector<int>* sm_split = nullptr);

struct AppResult {
  std::string abbr;
  u64 instructions = 0;
  double ipc_shared = 0.0;
  double ipc_alone = 0.0;
  double actual_slowdown = 1.0;
  /// model name ("DASE"/"MISE"/"ASM") -> estimated slowdown (all-SM basis).
  std::map<std::string, double> estimates;

  double estimation_error_of(const std::string& model) const;
};

struct CoRunResult {
  std::string label;
  Cycle cycles = 0;
  std::vector<AppResult> apps;
  double unfairness = 1.0;       // from actual slowdowns
  double harmonic_speedup = 0.0;  // from actual slowdowns
  // DRAM bandwidth decomposition over the co-run (Fig. 2b):
  std::vector<double> app_bw_share;  // fraction of total bus capacity
  double wasted_bw_share = 0.0;
  double idle_bw_share = 0.0;
  u64 repartitions = 0;  // policy actions (migrations/switches/adjustments)
  u64 governor_interventions = 0;  // clamps + rejects + holds + trips + aborts
  u64 sanitized_estimates = 0;  // estimator outputs clamped, Σ over models

  double mean_error_of(const std::string& model) const;
};

/// Steady-state alone-run characteristics on the full GPU.
struct AloneStats {
  double ipc = 0.0;
  double bw_util = 0.0;             // data cycles / bus capacity
  double served_per_kcycle = 0.0;   // DRAM requests per 1000 cycles
  Cycle cycles = 0;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(RunConfig rc) : rc_(std::move(rc)) {}

  const RunConfig& config() const { return rc_; }

  /// Runs one workload co-run plus alone baselines.  `sm_split`, when
  /// given, assigns sm_split[i] SMs to app i (Fig. 8a); otherwise the
  /// partition is even.  PolicyKind::kDaseFair attaches the DASE-Fair
  /// repartitioning policy (forces the DASE model on).
  CoRunResult run(const Workload& workload, const ModelSet& models,
                  PolicyKind policy = PolicyKind::kEven,
                  const std::vector<int>* sm_split = nullptr);

  /// Alone-run stats for one application on the full GPU (cached by
  /// application abbreviation for the current RunConfig).
  const AloneStats& alone_stats(const KernelProfile& profile);

  /// Cycles the application needs alone, on all SMs, to issue
  /// `target_instructions` (the exact-replay measurement).
  Cycle measure_alone_cycles(const KernelProfile& profile, u64 seed,
                             u64 target_instructions);

 private:
  RunConfig rc_;
  std::map<std::string, AloneStats> alone_cache_;
};

/// Reads an environment variable as cycles, falling back to `fallback`.
Cycle cycles_from_env(const char* name, Cycle fallback);

/// Seed the harness hands application slot `slot` of a workload.  Exposed
/// so tools building bare Simulations (the determinism auditor, tests) use
/// the exact seeds an ExperimentRunner co-run would.
u64 harness_app_seed(u64 base_seed, int slot);

}  // namespace gpusim
