#include "harness/runner.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "baselines/asm_model.hpp"
#include "baselines/mise_model.hpp"
#include "baselines/priority_epochs.hpp"
#include "common/sim_error.hpp"
#include "common/simstate.hpp"
#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "gpu/snapshot.hpp"
#include "harness/crash_bundle.hpp"
#include "metrics/metrics.hpp"
#include "sched/dase_fair.hpp"
#include "sched/governor.hpp"
#include "sched/policies.hpp"

namespace gpusim {

u64 harness_app_seed(u64 base_seed, int slot) {
  return base_seed + static_cast<u64>(slot) * 7919;
}

const char* to_string(PolicyKind policy) {
  switch (policy) {
    case PolicyKind::kEven: return "even";
    case PolicyKind::kDaseFair: return "dase-fair";
    case PolicyKind::kLeftover: return "leftover";
    case PolicyKind::kTemporal: return "temporal";
    case PolicyKind::kDaseQos: return "dase-qos";
  }
  return "?";
}

PolicyKind parse_policy_kind(const std::string& name) {
  for (const PolicyKind p :
       {PolicyKind::kEven, PolicyKind::kDaseFair, PolicyKind::kLeftover,
        PolicyKind::kTemporal, PolicyKind::kDaseQos}) {
    if (name == to_string(p)) return p;
  }
  SIM_FAIL(SimError(SimErrorKind::kConfig, "harness.runner",
                    "unknown scheduling policy name")
               .detail("policy", name)
               .detail("known", "even, dase-fair, leftover, temporal, "
                                "dase-qos"));
}

namespace {

u64 app_seed(u64 base_seed, int slot) {
  return harness_app_seed(base_seed, slot);
}

}  // namespace

u64 harness_context_of(const RunConfig& rc, const ModelSet& models,
                       PolicyKind policy, const std::vector<int>* sm_split) {
  Hasher h;
  h.put_tag("HCTX");
  h.put_u64(rc.co_run_cycles);
  h.put_u64(rc.base_seed);
  h.put_bool(models.dase);
  h.put_bool(models.mise);
  h.put_bool(models.asm_model);
  h.put_i32(static_cast<i32>(policy));
  h.put_bool(sm_split != nullptr);
  if (sm_split != nullptr) {
    h.put_u64(sm_split->size());
    for (int v : *sm_split) h.put_i32(v);
  }
  // An armed fault schedule shapes the run as much as the policy does; a
  // snapshot taken under one schedule must not restore under another.
  h.put_string(rc.faults.any() ? rc.faults.to_string() : std::string());
  return h.digest();
}

namespace {

/// Snapshot file for one workload: "<dir>/<label>.simstate" with every
/// character a filesystem might dislike replaced by '_'.
std::string snapshot_path_for(const std::string& dir,
                              const std::string& label) {
  std::string name;
  name.reserve(label.size());
  for (char c : label) {
    const bool safe = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                      c == '-' || c == '_' || c == '.' || c == '+';
    name += safe ? c : '_';
  }
  return (std::filesystem::path(dir) / (name + ".simstate")).string();
}

/// Applies the RunConfig's limit fields to one Simulation.  The cycle and
/// memory budgets only guard the co-run (`co_run` true): alone replays are
/// already capped by max_alone_cycles, and charging them against the job's
/// budgets would make a run job's outcome depend on the alone-cache state.
void apply_limits(const RunConfig& rc, Simulation& sim, bool co_run) {
  sim.set_activity_sched(rc.activity_sched);
  if (rc.wall_deadline != std::chrono::steady_clock::time_point{}) {
    sim.set_wall_deadline(rc.wall_deadline);
  }
  if (rc.cancel != nullptr) sim.set_cancel(rc.cancel);
  if (co_run) {
    if (rc.cycle_budget != 0) sim.set_cycle_budget(rc.cycle_budget);
    if (rc.mem_budget != 0) sim.set_mem_budget(rc.mem_budget);
  }
}

/// Flush-context boilerplate shared by the success and crash paths: naming,
/// interval length, profiler, and the governor counter breakdown.  The
/// success path adds the alone-IPC baselines (for actual-slowdown columns)
/// and the policy repartition count afterwards.
TelemetryFlushContext telemetry_context_for(const RunConfig& rc,
                                            const Workload& workload,
                                            const CoRunAssembly& assembly) {
  TelemetryFlushContext ctx;
  ctx.label = workload.label();
  for (const KernelProfile& app : workload.apps) ctx.apps.push_back(app.abbr);
  ctx.estimators = assembly.telemetry_estimators;
  ctx.interval_length = rc.gpu.estimation_interval;
  ctx.final_cycle = assembly.sim->gpu().now();
  ctx.profiler = rc.profiler;
  if (assembly.governor) {
    const PolicyGovernor& gov = *assembly.governor;
    ctx.extra_counters = {
        {"governor_clamps", gov.clamps()},
        {"governor_rejects", gov.rejects()},
        {"governor_holds", gov.holds()},
        {"governor_breaker_trips", gov.breaker_trips()},
        {"governor_fallbacks", gov.fallbacks()},
        {"governor_stalls_aborted", gov.stalls_aborted()},
    };
  }
  return ctx;
}

}  // namespace

TriageContext triage_context_of(const RunConfig& rc, const Workload& workload,
                                const ModelSet& models, PolicyKind policy,
                                const std::vector<int>* sm_split,
                                const Simulation& sim) {
  TriageContext ctx;
  ctx.mode = rc.crash_bundle_mode;
  ctx.label = workload.label();
  for (const KernelProfile& app : workload.apps) {
    ctx.apps.push_back(app.abbr);
  }
  ctx.base_seed = rc.base_seed;
  ctx.co_run_cycles = rc.co_run_cycles;
  ctx.policy = to_string(policy);
  ctx.dase = models.dase;
  ctx.mise = models.mise;
  ctx.asm_model = models.asm_model;
  ctx.faults = rc.faults.any() ? rc.faults.to_string() : std::string();
  ctx.watchdog_cycles = rc.watchdog_cycles;
  ctx.governor = rc.governor;
  if (sm_split != nullptr) ctx.sm_split = *sm_split;
  ctx.fingerprint = simulation_fingerprint(
      sim, harness_context_of(rc, models, policy, sm_split));
  return ctx;
}

CoRunAssembly::CoRunAssembly() = default;
CoRunAssembly::CoRunAssembly(CoRunAssembly&&) noexcept = default;
CoRunAssembly& CoRunAssembly::operator=(CoRunAssembly&&) noexcept = default;
CoRunAssembly::~CoRunAssembly() = default;

CoRunAssembly assemble_corun(const RunConfig& rc, const Workload& workload,
                             const ModelSet& models, PolicyKind policy,
                             const std::vector<int>* sm_split) {
  const int n = static_cast<int>(workload.apps.size());
  SIM_CHECK(n >= 1 && n <= kMaxApps,
            SimError(SimErrorKind::kHarness, "harness.runner",
                     "workload must name between 1 and kMaxApps applications")
                .detail("workload", workload.label())
                .detail("num_apps", n)
                .detail("kMaxApps", kMaxApps));

  std::vector<AppLaunch> launches;
  launches.reserve(n);
  for (int i = 0; i < n; ++i) {
    launches.push_back(
        AppLaunch{workload.apps[i], app_seed(rc.base_seed, i)});
  }

  CoRunAssembly a;
  a.sim = std::make_unique<Simulation>(rc.gpu, std::move(launches));
  Simulation& sim = *a.sim;
  sim.set_watchdog(rc.watchdog_cycles);
  apply_limits(rc, sim, /*co_run=*/true);
  if (rc.profiler != nullptr) sim.set_loop_profiler(rc.profiler);
  Gpu& gpu = sim.gpu();

  if (rc.faults.any()) {
    a.injector = std::make_unique<FaultInjector>(rc.faults);
    gpu.set_fault_injector(a.injector.get());
  }

  // Partition the SMs.
  if (sm_split != nullptr) {
    SIM_CHECK(static_cast<int>(sm_split->size()) == n,
              SimError(SimErrorKind::kHarness, "harness.runner",
                       "sm_split must list one SM count per application")
                  .detail("split_entries", sm_split->size())
                  .detail("num_apps", n));
    std::vector<AppId> assignment;
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < (*sm_split)[i]; ++k) {
        assignment.push_back(i);
      }
    }
    SIM_CHECK(static_cast<int>(assignment.size()) <= gpu.num_sms(),
              SimError(SimErrorKind::kHarness, "harness.runner",
                       "sm_split assigns more SMs than the GPU has")
                  .detail("assigned", assignment.size())
                  .detail("num_sms", gpu.num_sms()));
    assignment.resize(gpu.num_sms(), kInvalidApp);
    gpu.set_partition(assignment);
  } else if (policy == PolicyKind::kLeftover) {
    // Every registered kernel's grid occupies the full GPU, so the first
    // application takes everything and the rest get the (empty) leftovers.
    gpu.set_partition(LeftoverPolicy::allocation(
        gpu.num_sms(), std::vector<int>(n, gpu.num_sms())));
  } else if (policy == PolicyKind::kTemporal) {
    gpu.set_partition(std::vector<AppId>(gpu.num_sms(), 0));
  } else {
    gpu.set_partition(even_partition(gpu.num_sms(), n));
  }

  // Attach models and (optionally) a scheduling policy.
  const bool need_dase = models.dase || policy == PolicyKind::kDaseFair ||
                         policy == PolicyKind::kDaseQos;
  if (need_dase) {
    a.dase = std::make_unique<DaseModel>();
    sim.add_observer(a.dase.get());
  }
  if (models.mise) {
    a.mise = std::make_unique<MiseModel>();
    sim.add_observer(a.mise.get());
  }
  if (models.asm_model) {
    a.asm_model = std::make_unique<AsmModel>();
    sim.add_observer(a.asm_model.get());
  }
  if (models.any_epoch_model()) {
    a.epochs = std::make_unique<PriorityEpochDriver>(
        PriorityEpochDriver::with_defaults(rc.gpu, n));
    sim.add_cycle_hook(a.epochs.get());
  }
  if (policy == PolicyKind::kDaseFair) {
    a.fair = std::make_unique<DaseFairPolicy>(a.dase.get());
    sim.add_observer(a.fair.get());
  }
  if (policy == PolicyKind::kDaseQos) {
    a.qos = std::make_unique<DaseQosPolicy>(a.dase.get(), rc.qos);
    sim.add_observer(a.qos.get());
  }
  if (policy == PolicyKind::kTemporal) {
    a.temporal = std::make_unique<TemporalPolicy>(rc.temporal);
    sim.add_cycle_hook(a.temporal.get());
  }
  // The governor must see each epoch *after* the policies acted, and is
  // attached regardless of rc.governor so the observer walk and snapshot
  // shape never depend on the flag; a disabled governor is a pure
  // pass-through.
  a.governor = std::make_unique<PolicyGovernor>(
      GovernorOptions::from_config(rc.gpu, rc.governor), a.dase.get());
  sim.add_observer(a.governor.get());
  if (a.fair) a.fair->set_partition_sink(a.governor.get());
  if (a.qos) a.qos->set_partition_sink(a.governor.get());
  // The telemetry hub is the final observer: each record must capture the
  // epoch as the policies *and* the governor left it.  Like the governor
  // it is attached unconditionally — the output flags only gate flushing —
  // so telemetry on vs. off cannot change the observer walk, the state
  // hash, or any simulated outcome.
  std::vector<TelemetryEstimatorTap> taps;
  if (a.dase) {
    taps.push_back({"DASE", a.dase.get()});
    a.telemetry_estimators.push_back("DASE");
  }
  if (a.mise) {
    taps.push_back({"MISE", a.mise.get()});
    a.telemetry_estimators.push_back("MISE");
  }
  if (a.asm_model) {
    taps.push_back({"ASM", a.asm_model.get()});
    a.telemetry_estimators.push_back("ASM");
  }
  a.telemetry = std::make_unique<TelemetryHub>(
      std::move(taps),
      [gov = a.governor.get()] { return gov->interventions(); });
  sim.add_observer(a.telemetry.get());
  return a;
}

double AppResult::estimation_error_of(const std::string& model) const {
  const auto it = estimates.find(model);
  if (it == estimates.end()) {
    std::string available;
    for (const auto& [name, value] : estimates) {
      if (!available.empty()) available += ", ";
      available += name;
    }
    SIM_FAIL(SimError(SimErrorKind::kHarness, "harness.runner",
                      "no estimate recorded for the requested model — was it "
                      "enabled in the ModelSet?")
                 .detail("requested_model", model)
                 .detail("app", abbr)
                 .detail("available_models",
                         available.empty() ? "(none)" : available));
  }
  return estimation_error(it->second, actual_slowdown);
}

double CoRunResult::mean_error_of(const std::string& model) const {
  std::vector<double> errors;
  errors.reserve(apps.size());
  for (const AppResult& a : apps) errors.push_back(a.estimation_error_of(model));
  return mean(errors);
}

Cycle cycles_from_env(const char* name, Cycle fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  return (end != nullptr && *end == '\0' && parsed > 0)
             ? static_cast<Cycle>(parsed)
             : fallback;
}

const AloneStats& ExperimentRunner::alone_stats(const KernelProfile& profile) {
  auto it = alone_cache_.find(profile.abbr);
  if (it != alone_cache_.end()) return it->second;

  Simulation sim(rc_.gpu, {AppLaunch{profile, app_seed(rc_.base_seed, 0)}});
  sim.set_watchdog(rc_.watchdog_cycles);
  apply_limits(rc_, sim, /*co_run=*/false);
  Gpu& gpu = sim.gpu();
  gpu.set_partition(even_partition(gpu.num_sms(), 1));
  sim.run(rc_.co_run_cycles);
  if (rc_.verify_conservation) gpu.verify_conservation();

  AloneStats stats;
  stats.cycles = gpu.now();
  stats.ipc = static_cast<double>(gpu.instructions().total(0)) / gpu.now();
  u64 data_cycles = 0;
  u64 served = 0;
  for (int p = 0; p < gpu.num_partitions(); ++p) {
    const McCounters& mcc = gpu.partition(p).mc().counters();
    data_cycles += mcc.bus_data_cycles.total(0);
    served += mcc.requests_served.total(0);
  }
  const double capacity =
      static_cast<double>(gpu.num_partitions()) * gpu.now();
  stats.bw_util = data_cycles / capacity;
  stats.served_per_kcycle = 1000.0 * served / gpu.now();
  return alone_cache_.emplace(profile.abbr, stats).first->second;
}

Cycle ExperimentRunner::measure_alone_cycles(const KernelProfile& profile,
                                             u64 seed,
                                             u64 target_instructions) {
  Simulation sim(rc_.gpu, {AppLaunch{profile, seed}});
  sim.set_activity_sched(rc_.activity_sched);
  Gpu& gpu = sim.gpu();
  gpu.set_partition(even_partition(gpu.num_sms(), 1));
  const bool limited =
      rc_.cancel != nullptr ||
      rc_.wall_deadline != std::chrono::steady_clock::time_point{};
  while (gpu.instructions().total(0) < target_instructions &&
         gpu.now() < rc_.max_alone_cycles) {
    gpu.cycle();
    // This loop bypasses Simulation::run, so sample the deadline/cancel
    // limits here at the watchdog cadence.
    if (limited && gpu.now() % 1024 == 0) {
      if (rc_.cancel != nullptr &&
          rc_.cancel->load(std::memory_order_relaxed)) {
        SIM_FAIL(SimError(SimErrorKind::kInterrupted, "harness.runner",
                          "cancellation requested during an alone replay")
                     .cycle(gpu.now()));
      }
      if (rc_.wall_deadline != std::chrono::steady_clock::time_point{} &&
          std::chrono::steady_clock::now() >= rc_.wall_deadline) {
        SIM_FAIL(SimError(SimErrorKind::kDeadlineExceeded, "harness.runner",
                          "wall-clock deadline passed during an alone "
                          "replay")
                     .cycle(gpu.now()));
      }
    }
  }
  return gpu.now();
}

CoRunResult ExperimentRunner::run(const Workload& workload,
                                  const ModelSet& models, PolicyKind policy,
                                  const std::vector<int>* sm_split) {
  const int n = static_cast<int>(workload.apps.size());
  CoRunAssembly assembly =
      assemble_corun(rc_, workload, models, policy, sm_split);
  Simulation& sim = *assembly.sim;
  Gpu& gpu = sim.gpu();
  DaseModel* dase = assembly.dase.get();
  MiseModel* mise = assembly.mise.get();
  AsmModel* asm_model = assembly.asm_model.get();
  DaseFairPolicy* fair = assembly.fair.get();
  DaseQosPolicy* qos = assembly.qos.get();
  TemporalPolicy* temporal = assembly.temporal.get();

  // --- Co-run, with optional SimState checkpointing --------------------
  const bool snapshotting = rc_.snapshot_every > 0;
  const bool restoring = !rc_.restore_path.empty();
  std::string snap_path;
  u64 fingerprint = 0;
  if (snapshotting || restoring) {
    fingerprint = simulation_fingerprint(
        sim, harness_context_of(rc_, models, policy, sm_split));
  }
  if (restoring) {
    // Explicit restore: the caller named this exact file, so any failure
    // (missing, corrupt, mismatched fingerprint) is fatal.
    const SnapshotHeader hdr =
        restore_snapshot_file(rc_.restore_path, sim, fingerprint);
    std::fprintf(stderr, "gpusim: restored %s from %s at cycle %llu\n",
                 workload.label().c_str(), rc_.restore_path.c_str(),
                 static_cast<unsigned long long>(hdr.cycle));
  }
  if (snapshotting) {
    std::error_code ec;
    std::filesystem::create_directories(rc_.snapshot_dir, ec);
    snap_path = snapshot_path_for(rc_.snapshot_dir, workload.label());
    if (!restoring && std::filesystem::exists(snap_path)) {
      // Auto-resume: a leftover file from a killed run.  Stale files
      // (different config/workload/harness, torn writes) are detected
      // before any state is loaded, so they can be skipped safely; a
      // failure *after* loading means save/load asymmetry — a bug — and
      // the partially loaded simulation must not keep running.
      try {
        const SnapshotHeader hdr =
            restore_snapshot_file(snap_path, sim, fingerprint);
        std::fprintf(stderr,
                     "gpusim: resumed %s from snapshot %s at cycle %llu\n",
                     workload.label().c_str(), snap_path.c_str(),
                     static_cast<unsigned long long>(hdr.cycle));
      } catch (const SimError& e) {
        if (gpu.now() != 0) throw;
        std::fprintf(stderr,
                     "gpusim: ignoring unusable snapshot %s (%s)\n",
                     snap_path.c_str(), e.what());
      }
    }
  }

  try {
    if (!snapshotting) {
      if (gpu.now() < rc_.co_run_cycles) {
        sim.run(rc_.co_run_cycles - gpu.now());
      }
    } else {
      try {
        while (gpu.now() < rc_.co_run_cycles) {
          const Cycle stride = std::min<Cycle>(rc_.snapshot_every,
                                               rc_.co_run_cycles - gpu.now());
          sim.run(stride);
          // No snapshot after the final stride: the result is about to be
          // reported and the resume point deleted anyway.
          if (gpu.now() < rc_.co_run_cycles) {
            write_snapshot_file(snap_path, sim, fingerprint);
          }
        }
      } catch (const SimError& e) {
        // Graceful shutdown: a cancellation leaves the simulation intact at
        // the interrupt cycle, so persist that exact state before
        // propagating — the resumed run picks it up mid-stride and finishes
        // byte-identically (snapshot timing never shapes simulated state).
        if (e.kind() == SimErrorKind::kInterrupted) {
          write_snapshot_file(snap_path, sim, fingerprint);
        }
        throw;
      }
      std::error_code ec;
      std::filesystem::remove(snap_path, ec);
    }
    // Injected faults intentionally break conservation; the auditor is the
    // mechanism tests use to detect them, so only a clean run self-audits.
    if (rc_.verify_conservation && !rc_.faults.any()) {
      gpu.verify_conservation();
    }
  } catch (const SimError& e) {
    // Crash forensics: every terminal error bundles the failure-point
    // state before propagating.  kInterrupted is the one exception — a
    // graceful drain is not a crash, and its state is already persisted
    // by the auto-resume snapshot above.
    if (!rc_.crash_bundle_dir.empty() &&
        e.kind() != SimErrorKind::kInterrupted) {
      const TriageContext ctx =
          triage_context_of(rc_, workload, models, policy, sm_split, sim);
      std::error_code ec;
      const bool have_anchor =
          !snap_path.empty() && std::filesystem::exists(snap_path, ec);
      write_crash_bundle(rc_.crash_bundle_dir, sim, rc_.gpu, e, ctx,
                         have_anchor ? snap_path : std::string());
    }
    // Flush whatever telemetry was recorded up to the failure point, with
    // a crash marker and no actual-slowdown columns (the alone baselines
    // were never measured).  A graceful kInterrupted drain skips this: the
    // resumed run will flush the complete, byte-identical files instead.
    if (rc_.telemetry.any() && assembly.telemetry &&
        e.kind() != SimErrorKind::kInterrupted) {
      try {
        TelemetryFlushContext ctx =
            telemetry_context_for(rc_, workload, assembly);
        ctx.crashed = true;
        ctx.crash_kind = to_string(e.kind());
        ctx.crash_cycle = gpu.now();
        flush_telemetry(*assembly.telemetry, gpu,
                        resolve_telemetry_paths(rc_.telemetry,
                                                workload.label()),
                        ctx);
      } catch (const SimError& flush_error) {
        std::fprintf(stderr, "gpusim: telemetry flush failed (%s)\n",
                     flush_error.what());
      }
    }
    throw;
  }

  CoRunResult result;
  result.label = workload.label();
  result.cycles = gpu.now();
  result.apps.resize(n);

  std::vector<double> actual_slowdowns(n);
  for (int i = 0; i < n; ++i) {
    AppResult& app = result.apps[i];
    app.abbr = workload.apps[i].abbr;
    app.instructions = gpu.instructions().total(i);
    app.ipc_shared =
        static_cast<double>(app.instructions) / result.cycles;
    if (app.instructions == 0) {
      // Starved entirely (e.g. LEFTOVER): report the alone IPC and an
      // effectively unbounded slowdown instead of dividing by zero.
      app.ipc_alone = alone_stats(workload.apps[i]).ipc;
      app.actual_slowdown = 1e6;
      actual_slowdowns[i] = app.actual_slowdown;
      if (models.dase && dase) app.estimates["DASE"] = dase->mean_slowdown(i);
      if (mise) app.estimates["MISE"] = mise->mean_slowdown(i);
      if (asm_model) app.estimates["ASM"] = asm_model->mean_slowdown(i);
      continue;
    }

    if (rc_.alone_mode == RunConfig::AloneMode::kExactReplay) {
      const Cycle alone_cycles = measure_alone_cycles(
          workload.apps[i], app_seed(rc_.base_seed, i), app.instructions);
      app.ipc_alone = static_cast<double>(app.instructions) / alone_cycles;
    } else {
      app.ipc_alone = alone_stats(workload.apps[i]).ipc;
    }
    app.actual_slowdown =
        app.ipc_shared > 0.0 ? app.ipc_alone / app.ipc_shared : 1.0;
    app.actual_slowdown = std::max(app.actual_slowdown, 1e-3);
    actual_slowdowns[i] = app.actual_slowdown;

    if (models.dase && dase) app.estimates["DASE"] = dase->mean_slowdown(i);
    if (mise) app.estimates["MISE"] = mise->mean_slowdown(i);
    if (asm_model) app.estimates["ASM"] = asm_model->mean_slowdown(i);
  }

  result.unfairness = unfairness(actual_slowdowns);
  result.harmonic_speedup = harmonic_speedup(actual_slowdowns);
  if (fair) result.repartitions = fair->repartitions();
  if (qos) result.repartitions = qos->adjustments();
  if (temporal) result.repartitions = temporal->switches();
  if (assembly.governor) {
    result.governor_interventions = assembly.governor->interventions();
  }
  if (dase) result.sanitized_estimates += dase->sanitized_estimates();
  if (mise) result.sanitized_estimates += mise->sanitized_estimates();
  if (asm_model) result.sanitized_estimates += asm_model->sanitized_estimates();

  // DRAM bandwidth decomposition over the co-run.
  const double capacity =
      static_cast<double>(gpu.num_partitions()) * result.cycles;
  u64 wasted = 0;
  u64 idle = 0;
  result.app_bw_share.assign(n, 0.0);
  for (int p = 0; p < gpu.num_partitions(); ++p) {
    const McCounters& mcc = gpu.partition(p).mc().counters();
    for (int i = 0; i < n; ++i) {
      result.app_bw_share[i] += mcc.bus_data_cycles.total(i) / capacity;
    }
    wasted += mcc.wasted_cycles.total();
    idle += mcc.idle_cycles.total();
  }
  result.wasted_bw_share = wasted / capacity;
  result.idle_bw_share = idle / capacity;

  // Telemetry flush: now that the alone baselines exist, the per-interval
  // records can carry actual-slowdown and Eq. 26 error columns.
  if (rc_.telemetry.any() && assembly.telemetry) {
    TelemetryFlushContext ctx = telemetry_context_for(rc_, workload, assembly);
    ctx.repartitions = result.repartitions;
    for (const AppResult& app : result.apps) {
      ctx.ipc_alone.push_back(app.ipc_alone);
    }
    flush_telemetry(*assembly.telemetry, gpu,
                    resolve_telemetry_paths(rc_.telemetry, workload.label()),
                    ctx);
  }
  return result;
}

}  // namespace gpusim
