#include "harness/chaos.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "baselines/asm_model.hpp"
#include "baselines/mise_model.hpp"
#include "baselines/priority_epochs.hpp"
#include "common/rng.hpp"
#include "common/sim_error.hpp"
#include "dase/dase_model.hpp"
#include "gpu/simulator.hpp"
#include "harness/crash_bundle.hpp"
#include "harness/runner.hpp"
#include "harness/worker_pool.hpp"
#include "sched/dase_fair.hpp"
#include "sched/governor.hpp"

namespace gpusim {

namespace {

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string first_line(const std::string& text) {
  const auto nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

/// Per-job schedule seed: a splitmix64 step over the master seed so
/// neighbouring jobs get decorrelated schedules, with no dependence on
/// wall clock or thread identity.
u64 job_schedule_seed(u64 master, std::size_t index) {
  u64 x = master + 0x9e3779b97f4a7c15ull * (static_cast<u64>(index) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

std::string extract_string_field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

long extract_int_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtol(line.c_str() + pos + needle.size(), nullptr, 10);
}

bool outcome_from_string(const std::string& text, ChaosOutcome& out) {
  for (const ChaosOutcome o :
       {ChaosOutcome::kRecovered, ChaosOutcome::kGuardCaught,
        ChaosOutcome::kWrongResult, ChaosOutcome::kHang}) {
    if (text == to_string(o)) {
      out = o;
      return true;
    }
  }
  return false;
}

std::string chaos_job_json(const ChaosJobResult& r) {
  std::ostringstream ss;
  ss << "{\"index\":" << r.index << ",\"workload\":\""
     << escape_json(r.workload) << "\",\"policy\":\"" << r.policy
     << "\",\"schedule\":\"" << escape_json(r.schedule) << "\",\"outcome\":\""
     << to_string(r.outcome) << "\",\"error_kind\":\""
     << escape_json(r.error_kind) << "\",\"detail\":\""
     << escape_json(r.detail) << "\",\"final_cycle\":" << r.final_cycle
     << ",\"retries_issued\":" << r.retries_issued
     << ",\"duplicates_absorbed\":" << r.duplicates_absorbed
     << ",\"sanitized_estimates\":" << r.sanitized_estimates;
  // Only anomalous jobs carry the governor counter, so healthy campaign
  // lines (and old checkpoints) stay byte-identical.
  if (r.governor_interventions != 0) {
    ss << ",\"governor_interventions\":" << r.governor_interventions;
  }
  ss << ",\"minimized_schedule\":\"" << escape_json(r.minimized_schedule)
     << "\",\"minimized_events\":" << r.minimized_events << ",\"replay\":\""
     << escape_json(r.replay) << "\"}";
  return ss.str();
}

std::string replay_command(const ChaosOptions& opts, const std::string& label,
                           const std::string& spec, bool dase_fair) {
  std::string apps = label;
  std::replace(apps.begin(), apps.end(), '+', ',');
  std::ostringstream ss;
  ss << "gpusim_cli --apps " << apps << " --cycles " << opts.cycles;
  if (dase_fair) ss << " --policy dase-fair";
  if (!opts.recovery) ss << " --no-recovery";
  ss << " --fault-schedule '" << spec << "'";
  return ss.str();
}

}  // namespace

const char* to_string(ChaosOutcome outcome) {
  switch (outcome) {
    case ChaosOutcome::kRecovered: return "recovered";
    case ChaosOutcome::kGuardCaught: return "guard-caught";
    case ChaosOutcome::kWrongResult: return "wrong-result";
    case ChaosOutcome::kHang: return "hang";
  }
  return "?";
}

int ChaosReport::count(ChaosOutcome outcome) const {
  int n = 0;
  for (const ChaosJobResult& job : jobs) n += job.outcome == outcome ? 1 : 0;
  return n;
}

std::string ChaosReport::to_json() const {
  std::ostringstream ss;
  ss << "{\"chaos_campaign\":{\"schedules\":" << schedules
     << ",\"seed\":" << seed << ",\"cycles\":" << cycles << ",\"recovery\":"
     << (recovery ? "true" : "false") << ",\"outcomes\":{";
  bool first = true;
  for (const ChaosOutcome o :
       {ChaosOutcome::kRecovered, ChaosOutcome::kGuardCaught,
        ChaosOutcome::kWrongResult, ChaosOutcome::kHang}) {
    if (!first) ss << ",";
    first = false;
    ss << "\"" << to_string(o) << "\":" << count(o);
  }
  ss << "},\"jobs\":[\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ss << jobs[i].json << (i + 1 < jobs.size() ? ",\n" : "\n");
  }
  ss << "]}}\n";
  return ss.str();
}

FaultSchedule random_fault_schedule(u64 seed, Cycle cycles,
                                    int num_partitions, int max_events) {
  Rng rng(seed == 0 ? 1 : seed);
  FaultSchedule s;
  s.seed = seed == 0 ? 1 : seed;
  const int parts = std::max(1, num_partitions);
  const Cycle half = std::max<Cycle>(1, cycles / 2);
  const int n = 1 + static_cast<int>(rng.next_below(
                        static_cast<u64>(std::max(1, max_events))));
  for (int i = 0; i < n; ++i) {
    const u64 nth = 50 + rng.next_below(1'500);
    switch (rng.next_below(8)) {
      case 0:
      case 1:
        s.drop_response_nth(nth);
        break;
      case 2:
        s.drop_request_nth(nth);
        break;
      case 3:
        s.nack_response(nth, 50 + rng.next_below(400));
        break;
      case 4:
        s.bit_flip(20 + rng.next_below(400),
                   static_cast<int>(rng.next_below(24)));
        break;
      case 5:
      case 6: {
        // Windowed stall: the partition freezes, then recovers and drains.
        const PartitionId p =
            static_cast<PartitionId>(rng.next_below(parts));
        const Cycle from = 1'000 + rng.next_below(half);
        const Cycle len =
            1'000 + rng.next_below(std::max<Cycle>(1, cycles / 4));
        s.stall_partition(p, from, from + len);
        break;
      }
      default:
        if (rng.next_bool(0.5)) {
          // Rare: a stall that never recovers — the designed hang class.
          s.stall_partition(static_cast<PartitionId>(rng.next_below(parts)),
                            1'000 + rng.next_below(half));
        } else {
          s.drop_response_prob(0.01 + 0.04 * rng.next_double());
        }
        break;
    }
  }
  return s;
}

ChaosJobResult run_chaos_job(const ChaosOptions& opts,
                             const Workload& workload, bool dase_fair,
                             const FaultSchedule& schedule) {
  // Chaos-tune the config so every mechanism fits inside the job budget:
  // the retry timeout small enough that backoff plays out, the estimation
  // interval small enough that estimators see several samples, and the
  // watchdog a fraction of the budget so a wedge is proven, not outwaited.
  GpuConfig cfg = opts.gpu;
  cfg.mshr_retry_enabled = opts.recovery;
  cfg.mshr_retry_timeout = std::max<Cycle>(
      1'000, std::min<Cycle>(cfg.mshr_retry_timeout, opts.cycles / 8));
  cfg.estimation_interval = std::max<Cycle>(
      2'000, std::min<Cycle>(cfg.estimation_interval, opts.cycles / 4));
  // The drain budget must also shrink with the job budget, or a wedged
  // migration would be caught by the generic watchdog before the governor
  // can attribute it (kMigrationStalled names the stalled SMs).
  cfg.governor_drain_budget = std::max<Cycle>(
      cfg.estimation_interval,
      std::min<Cycle>(cfg.governor_drain_budget, opts.cycles / 4));

  ChaosJobResult r;
  r.workload = workload.label();
  r.policy = dase_fair ? "dase-fair" : "even";
  r.schedule = schedule.to_string();

  // Chaos jobs ride the shared co-run assembly (harness/runner.hpp), so a
  // crash bundle written here replays through the exact observer list and
  // seeds a --triage session will rebuild.
  RunConfig rc;
  rc.gpu = cfg;
  rc.co_run_cycles = opts.cycles;
  rc.base_seed = opts.base_seed;
  rc.watchdog_cycles = std::max<Cycle>(5'000, opts.cycles / 4);
  rc.governor = opts.governor;
  rc.faults = schedule;
  rc.cancel = opts.cancel;
  rc.wall_deadline = opts.wall_deadline;
  rc.crash_bundle_dir = opts.crash_bundle_dir;
  rc.crash_bundle_mode = "chaos";
  ModelSet models;
  models.dase = models.mise = models.asm_model = true;
  const PolicyKind policy =
      dase_fair ? PolicyKind::kDaseFair : PolicyKind::kEven;

  CoRunAssembly assembly = assemble_corun(rc, workload, models, policy);
  Simulation& sim = *assembly.sim;
  DaseModel* dase = assembly.dase.get();
  MiseModel* mise = assembly.mise.get();
  AsmModel* asm_model = assembly.asm_model.get();

  auto collect = [&]() {
    r.final_cycle = sim.gpu().now();
    r.retries_issued =
        sim.gpu().conservation_taps().retries_issued.grand_total();
    r.duplicates_absorbed =
        sim.gpu().conservation_taps().duplicates_absorbed.grand_total();
    r.sanitized_estimates = dase->sanitized_estimates() +
                            mise->sanitized_estimates() +
                            asm_model->sanitized_estimates();
    r.governor_interventions =
        assembly.governor ? assembly.governor->interventions() : 0;
  };

  // Chaos jobs never run alone baselines, so flushed series carry estimate
  // columns but null actual-slowdown/error columns.  The per-job label
  // folds in the schedule seed: unique per campaign job, deterministic for
  // any worker count.
  auto flush_job_telemetry = [&](bool crashed, const std::string& kind) {
    if (opts.telemetry_dir.empty()) return;
    TelemetryPaths paths;
    paths.dir = opts.telemetry_dir;
    const std::string label = workload.label() + "-" + r.policy + "-" +
                              std::to_string(schedule.seed);
    TelemetryFlushContext ctx;
    ctx.label = label;
    for (const KernelProfile& app : workload.apps) ctx.apps.push_back(app.abbr);
    ctx.estimators = assembly.telemetry_estimators;
    ctx.interval_length = cfg.estimation_interval;
    ctx.final_cycle = sim.gpu().now();
    ctx.crashed = crashed;
    ctx.crash_kind = kind;
    ctx.crash_cycle = sim.gpu().now();
    try {
      flush_telemetry(*assembly.telemetry, sim.gpu(),
                      resolve_telemetry_paths(paths, label), ctx);
    } catch (const SimError& flush_error) {
      std::fprintf(stderr, "gpusim: chaos telemetry flush failed (%s)\n",
                   flush_error.what());
    }
  };

  try {
    sim.run(opts.cycles);
  } catch (const SimError& e) {
    // A drain interrupt or a lapsed campaign deadline is about the
    // campaign, not this schedule: it must never be classified as a chaos
    // outcome (the four classes describe the *simulator's* behaviour).
    if (e.kind() == SimErrorKind::kInterrupted ||
        e.kind() == SimErrorKind::kDeadlineExceeded) {
      throw;
    }
    if (!rc.crash_bundle_dir.empty()) {
      const TriageContext ctx =
          triage_context_of(rc, workload, models, policy, nullptr, sim);
      write_crash_bundle(rc.crash_bundle_dir, sim, rc.gpu, e, ctx);
    }
    collect();
    r.error_kind = to_string(e.kind());
    if (e.kind() == SimErrorKind::kWatchdogStall) {
      r.outcome = ChaosOutcome::kHang;
      r.detail = "watchdog: " + first_line(e.what());
    } else if (e.kind() == SimErrorKind::kMigrationStalled) {
      // The governor's drain watchdog proved the wedge and named the
      // stalled SMs — same class as a generic watchdog hang, better
      // attributed.
      r.outcome = ChaosOutcome::kHang;
      r.detail = "governor: " + first_line(e.what());
    } else {
      r.outcome = ChaosOutcome::kGuardCaught;
      r.detail = std::string(e.component()) + ": " + first_line(e.what());
    }
    flush_job_telemetry(/*crashed=*/true, r.error_kind);
    return r;
  } catch (const std::exception& e) {
    collect();
    r.outcome = ChaosOutcome::kGuardCaught;
    r.error_kind = "exception";
    r.detail = first_line(e.what());
    flush_job_telemetry(/*crashed=*/true, r.error_kind);
    return r;
  }

  collect();
  flush_job_telemetry(/*crashed=*/false, std::string());

  // A stall-forever event that was already active when the budget ran out
  // is a hang the budget merely outpaced: the wedge never clears, the
  // watchdog just had not accumulated its threshold yet.
  bool stall_forever = false;
  for (const FaultEvent& e : schedule.events) {
    if (e.kind == FaultKind::kStallWindow && e.until == 0 &&
        e.from <= r.final_cycle) {
      stall_forever = true;
    }
  }
  const AuditReport audit = sim.gpu().audit_conservation();
  const int n = static_cast<int>(workload.apps.size());
  bool finite = true;
  for (int a = 0; a < n; ++a) {
    if (!std::isfinite(dase->mean_slowdown(a)) ||
        !std::isfinite(mise->mean_slowdown(a)) ||
        !std::isfinite(asm_model->mean_slowdown(a))) {
      finite = false;
    }
  }

  if (stall_forever) {
    r.outcome = ChaosOutcome::kHang;
    r.detail = "stall-forever fault still active when the cycle budget expired";
  } else if (!audit.ok()) {
    r.outcome = ChaosOutcome::kGuardCaught;
    r.error_kind = to_string(SimErrorKind::kConservation);
    r.detail = "conservation audit imbalance beyond the recovery tolerance";
  } else if (assembly.injector != nullptr &&
             assembly.injector->silently_corrupting()) {
    r.outcome = ChaosOutcome::kWrongResult;
    r.detail = "request misrouted to the wrong partition: results corrupt";
  } else if (!finite) {
    r.outcome = ChaosOutcome::kWrongResult;
    r.detail = "non-finite slowdown estimate escaped the sanitizer";
  } else {
    r.outcome = ChaosOutcome::kRecovered;
    r.detail = "completed: audit balanced, all estimates finite";
  }
  return r;
}

FaultSchedule minimize_failing_schedule(const ChaosOptions& opts,
                                        const Workload& workload,
                                        bool dase_fair,
                                        const FaultSchedule& schedule,
                                        ChaosOutcome failure) {
  // Minimization re-runs the failing job dozens of times; bundling every
  // probe would bury the original bundle (and probe telemetry would
  // overwrite the original job's files), so probes never bundle or flush.
  ChaosOptions probe_opts = opts;
  probe_opts.crash_bundle_dir.clear();
  probe_opts.telemetry_dir.clear();
  FaultSchedule best = schedule;
  bool shrunk = true;
  while (shrunk && best.events.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < best.events.size(); ++i) {
      FaultSchedule cand = best;
      cand.events.erase(cand.events.begin() + static_cast<long>(i));
      const ChaosJobResult probe =
          run_chaos_job(probe_opts, workload, dase_fair, cand);
      if (probe.outcome == failure) {
        best = std::move(cand);
        shrunk = true;
        break;  // rescan from the front of the shrunk schedule
      }
    }
  }
  return best;
}

ChaosReport run_chaos_campaign(const ChaosOptions& opts) {
  SIM_CHECK(opts.schedules >= 1,
            SimError(SimErrorKind::kHarness, "harness.chaos",
                     "schedules must be at least 1")
                .detail("schedules", opts.schedules));
  SIM_CHECK(opts.jobs >= 0,
            SimError(SimErrorKind::kHarness, "harness.chaos",
                     "jobs must be 0 (= hardware concurrency) or positive")
                .detail("jobs", opts.jobs));

  ChaosReport report;
  report.schedules = opts.schedules;
  report.seed = opts.seed;
  report.cycles = opts.cycles;
  report.recovery = opts.recovery;
  report.jobs.resize(static_cast<std::size_t>(opts.schedules));

  const std::vector<Workload> pairs = all_two_app_workloads();

  std::ofstream checkpoint;
  std::mutex checkpoint_mu;
  if (!opts.checkpoint_path.empty()) {
    // Resume: one complete JSONL line per finished job; torn or stale
    // lines are skipped with a warning and their job re-runs.  Resumed
    // lines are reused verbatim, which keeps interrupted + resumed
    // reports byte-identical to uninterrupted ones.
    std::ifstream in(opts.checkpoint_path);
    std::string line;
    int line_no = 0;
    while (in && std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      ChaosOutcome outcome = ChaosOutcome::kRecovered;
      const long idx = extract_int_field(line, "index");
      if (line.back() != '}' || idx < 0 || idx >= opts.schedules ||
          !outcome_from_string(extract_string_field(line, "outcome"),
                               outcome)) {
        std::fprintf(stderr,
                     "gpusim: chaos checkpoint %s line %d is torn or stale — "
                     "skipping it; the job will re-run\n",
                     opts.checkpoint_path.c_str(), line_no);
        continue;
      }
      ChaosJobResult& r = report.jobs[static_cast<std::size_t>(idx)];
      r.index = static_cast<int>(idx);
      r.outcome = outcome;
      r.from_checkpoint = true;
      r.json = line;
    }
    // Seal a torn tail line (crash mid-write) onto its own line so the
    // next append cannot glue onto the fragment (same trick as the sweep
    // checkpoint).
    bool seal_torn_tail = false;
    {
      std::ifstream probe(opts.checkpoint_path, std::ios::binary);
      if (probe && probe.seekg(0, std::ios::end) && probe.tellg() > 0) {
        probe.seekg(-1, std::ios::end);
        char last = '\n';
        seal_torn_tail = probe.get(last) && last != '\n';
      }
    }
    checkpoint.open(opts.checkpoint_path, std::ios::app);
    SIM_CHECK(checkpoint.good(),
              SimError(SimErrorKind::kHarness, "harness.chaos",
                       "cannot open chaos checkpoint file for append")
                  .detail("path", opts.checkpoint_path));
    if (seal_torn_tail) checkpoint << "\n";
  }
  for (const ChaosJobResult& job : report.jobs) {
    report.resumed += job.from_checkpoint ? 1 : 0;
  }

  int jobs = opts.jobs;
  if (jobs == 0) {
    jobs = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }

  std::atomic<bool> abort{false};
  std::mutex fatal_mu;
  std::size_t fatal_index = static_cast<std::size_t>(opts.schedules);
  std::exception_ptr fatal;  // kInterrupted / kDeadlineExceeded

  run_indexed(
      static_cast<std::size_t>(opts.schedules), jobs,
      [&](int, std::size_t i) {
        ChaosJobResult& slot = report.jobs[i];
        if (slot.from_checkpoint) return;
        if (opts.cancel != nullptr &&
            opts.cancel->load(std::memory_order_relaxed)) {
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        const Workload& workload = pairs[i % pairs.size()];
        const bool dase_fair = (i % 2) == 1;
        const FaultSchedule schedule = random_fault_schedule(
            job_schedule_seed(opts.seed, i), opts.cycles,
            opts.gpu.num_partitions, opts.max_events);
        ChaosJobResult r;
        try {
          r = run_chaos_job(opts, workload, dase_fair, schedule);
          r.index = static_cast<int>(i);
          if (opts.minimize && r.outcome != ChaosOutcome::kRecovered) {
            const FaultSchedule minimal = minimize_failing_schedule(
                opts, workload, dase_fair, schedule, r.outcome);
            r.minimized_schedule = minimal.to_string();
            r.minimized_events = minimal.events.size();
          }
        } catch (...) {
          // Campaign-fatal (drain interrupt / deadline): this job is left
          // unfinished — no checkpoint line — so a resumed campaign
          // re-runs it; the lowest-index error is rethrown after the join.
          std::lock_guard<std::mutex> lock(fatal_mu);
          if (i < fatal_index) {
            fatal_index = i;
            fatal = std::current_exception();
          }
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        r.replay = replay_command(
            opts, r.workload,
            r.minimized_schedule.empty() ? r.schedule : r.minimized_schedule,
            dase_fair);
        r.json = chaos_job_json(r);
        if (checkpoint.is_open()) {
          std::lock_guard<std::mutex> lock(checkpoint_mu);
          checkpoint << r.json << "\n";
          checkpoint.flush();
        }
        slot = std::move(r);
      },
      &abort);

  if (fatal) std::rethrow_exception(fatal);
  return report;
}

void write_chaos_report(const std::string& path, const ChaosReport& report) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "harness.chaos",
                                   "cannot open chaos report for writing")
                              .detail("path", tmp));
    out << report.to_json();
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace gpusim
