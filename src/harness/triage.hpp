// Self-triage replay for crash bundles (`gpusim_cli --triage <dir>`).
//
// A triage session reloads the bundle's effective config and harness
// context, reassembles the co-run through the exact same assemble_corun()
// path the original run used, restores the bundled state, re-executes to
// the recorded failure cycle when an anchor snapshot allows it, and then
// checks the 64-bit state hash against the one recorded at crash time —
// a bit-exact proof that the bundle reproduces the failure.
#pragma once

#include <ostream>
#include <string>

namespace gpusim {

/// Runs the triage flow against `bundle_dir`, printing a human-readable
/// report (manifest summary, replay outcome, the final flight-recorder
/// timeline) to `out`.  Never throws.
///
/// When `trace_out` is non-empty, the replayed run's telemetry hub — whose
/// buffers the bundle snapshot restored, so they hold the crashed run's
/// actual history — is additionally exported as a Chrome trace-event file
/// there (load it in Perfetto to scrub through the run leading up to the
/// failure).
///
/// Exit codes:
///   0 — state hash reproduced exactly
///   3 — the bundle could not be triaged (corrupt/incomplete bundle,
///       unknown apps, config/fingerprint mismatch, I/O failure)
///   4 — replay completed but the final state hash diverged from the
///       recorded one (non-deterministic failure or build drift)
int run_triage(const std::string& bundle_dir, std::ostream& out,
               const std::string& trace_out = "");

}  // namespace gpusim
