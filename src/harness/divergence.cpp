#include "harness/divergence.hpp"

#include <algorithm>
#include <sstream>

#include "common/sim_error.hpp"

namespace gpusim {

std::string DivergenceReport::to_string() const {
  std::ostringstream out;
  if (!diverged) {
    out << "no divergence across " << samples_checked << " sample points";
    return out.str();
  }
  out << "DIVERGENCE at cycle " << first_divergent_cycle << ": state hash "
      << std::hex << hash_a << " (run A) vs " << hash_b << " (run B)"
      << std::dec << "\n";
  if (component_mismatches.empty()) {
    out << "  (no individual component differs — top-level walk mismatch)\n";
  }
  for (const ComponentMismatch& m : component_mismatches) {
    out << "  component " << m.name << ": " << std::hex << m.hash_a << " vs "
        << m.hash_b << std::dec << "\n";
  }
  out << "--- run A pipeline state ---\n"
      << dump_a << "--- run B pipeline state ---\n"
      << dump_b;
  return out.str();
}

DivergenceReport audit_divergence(Simulation& a, Simulation& b,
                                  Cycle total_cycles, Cycle sample_every) {
  SIM_CHECK(sample_every > 0,
            SimError(SimErrorKind::kHarness, "harness.divergence",
                     "sample_every must be positive")
                .detail("sample_every", sample_every));
  SIM_CHECK(a.gpu().now() == b.gpu().now(),
            SimError(SimErrorKind::kHarness, "harness.divergence",
                     "both simulations must start at the same cycle")
                .detail("cycle_a", a.gpu().now())
                .detail("cycle_b", b.gpu().now()));

  DivergenceReport report;
  const Cycle start = a.gpu().now();
  Cycle advanced = 0;

  auto check = [&]() -> bool {
    ++report.samples_checked;
    const u64 ha = a.state_hash();
    const u64 hb = b.state_hash();
    if (ha == hb) return true;
    report.diverged = true;
    report.first_divergent_cycle = a.gpu().now();
    report.hash_a = ha;
    report.hash_b = hb;
    const auto comps_a = a.component_hashes();
    const auto comps_b = b.component_hashes();
    // Registration order is identical on both sides whenever the two runs
    // are comparable at all, so pair up by index but match names
    // defensively in case one side carries extra observers.
    const std::size_t n = std::min(comps_a.size(), comps_b.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (comps_a[i].first == comps_b[i].first &&
          comps_a[i].second != comps_b[i].second) {
        report.component_mismatches.push_back(
            {comps_a[i].first, comps_a[i].second, comps_b[i].second});
      }
    }
    report.dump_a = a.gpu().dump_state();
    report.dump_b = b.gpu().dump_state();
    return false;
  };

  // Compare the starting state first: a bad restore diverges at cycle 0.
  if (!check()) return report;

  while (advanced < total_cycles) {
    const Cycle stride = std::min(sample_every, total_cycles - advanced);
    a.run(stride);
    b.run(stride);
    advanced = a.gpu().now() - start;
    SIM_CHECK(a.gpu().now() == b.gpu().now(),
              SimError(SimErrorKind::kHarness, "harness.divergence",
                       "simulations fell out of cycle lockstep")
                  .detail("cycle_a", a.gpu().now())
                  .detail("cycle_b", b.gpu().now()));
    if (!check()) return report;
  }
  return report;
}

}  // namespace gpusim
