// Crash-forensics bundles: when a co-run dies on a terminal SimError, the
// harness emits one self-contained directory holding everything a later
// `gpusim_cli --triage <dir>` session needs to reproduce and explain the
// failure offline:
//
//   manifest.json       one key per line: schema, build fingerprint, the
//                       full harness context (apps, seed, policy, models,
//                       faults, SM split), the failure cycle + state hash,
//                       the error, and the replay command
//   snapshot.simstate   the simulation at the failure point (gpu/snapshot
//                       format, flight-recorder ring included)
//   anchor.simstate     nearest earlier periodic snapshot, when one exists
//                       (lets triage *re-execute* up to the failure)
//   config.txt          the effective GpuConfig (config_io round-trip)
//   events.txt          human-readable flight-recorder timeline + the
//                       pipeline-state dump + the error text
//
// Bundles are published atomically: everything is written into a sibling
// ".tmp-<name>" directory which is renamed into place only after the
// manifest — the completeness marker — is on disk.  A crash or SIGTERM
// mid-emission leaves only a ".tmp-" directory, which every loader
// ignores.  write_crash_bundle never throws: forensics must not mask the
// original error.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/sim_error.hpp"
#include "common/types.hpp"

namespace gpusim {

class Simulation;

/// Everything --triage needs to reassemble the failed experiment exactly:
/// the co-run workload and harness knobs plus the snapshot fingerprint the
/// bundled state was written under.
struct TriageContext {
  std::string mode = "run";  ///< "run" / "sweep" / "chaos" / "jobs"
  std::string label;         ///< workload label, e.g. "SD+SA"
  std::vector<std::string> apps;  ///< registry abbreviations, slot order
  u64 base_seed = 0;
  Cycle co_run_cycles = 0;
  std::string policy = "even";  ///< to_string(PolicyKind)
  bool dase = true;
  bool mise = false;
  bool asm_model = false;
  std::string faults;  ///< FaultSchedule::to_string(), "" when none armed
  Cycle watchdog_cycles = 0;
  bool governor = true;  ///< policy safety governor enabled (--no-governor)
  std::vector<int> sm_split;  ///< empty = policy-controlled partition
  u64 fingerprint = 0;        ///< simulation_fingerprint(sim, harness ctx)
};

/// Parsed manifest.json.  Field-for-field what write_crash_bundle records.
struct CrashBundleManifest {
  std::string schema;
  u64 build = 0;           ///< writer's build_fingerprint()
  std::string build_line;  ///< human-readable writer version line
  TriageContext ctx;
  Cycle failure_cycle = 0;
  u64 failure_state_hash = 0;
  std::string error_kind;
  std::string error_component;
  std::string error_message;
  std::string snapshot_file;  ///< "snapshot.simstate"
  std::string anchor_file;    ///< "anchor.simstate" or "" when absent
  std::string replay;         ///< suggested triage command line
};

/// Emits one crash bundle under `bundle_root` (created if missing) and
/// returns the published directory path.  Best-effort by design: any
/// failure (unwritable disk, snapshot serialization error) is reported on
/// stderr and an empty string is returned — the original SimError must
/// keep propagating unmasked.  `anchor_snapshot_path`, when non-empty,
/// names an existing periodic snapshot file to copy in as the re-execution
/// anchor.
std::string write_crash_bundle(const std::string& bundle_root,
                               const Simulation& sim, const GpuConfig& cfg,
                               const SimError& err, const TriageContext& ctx,
                               const std::string& anchor_snapshot_path =
                                   std::string()) noexcept;

/// Reads and validates `<bundle_dir>/manifest.json`.  Tolerant of unknown
/// keys (forward compatibility) but every malformation — missing manifest,
/// wrong schema, absent required key, unparsable number, missing snapshot
/// file — raises SimError(kSnapshot); corrupt bundles never crash a triage
/// session.
CrashBundleManifest read_crash_bundle_manifest(const std::string& bundle_dir);

}  // namespace gpusim
