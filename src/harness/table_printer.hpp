// Fixed-width table printer shared by the bench binaries so every
// reproduced figure/table prints in a uniform, diffable format.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace gpusim {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 12)
      : headers_(std::move(headers)), col_width_(col_width) {}

  void print_header(std::ostream& os = std::cout) const {
    for (const auto& h : headers_) {
      os << std::setw(col_width_) << h;
    }
    os << '\n';
    os << std::string(headers_.size() * col_width_, '-') << '\n';
  }

  template <typename... Cells>
  void print_row(Cells&&... cells) const {
    std::ostream& os = std::cout;
    (print_cell(os, std::forward<Cells>(cells)), ...);
    os << '\n';
  }

  static std::string pct(double fraction, int precision = 1) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << fraction * 100.0
       << '%';
    return ss.str();
  }

  static std::string num(double value, int precision = 3) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return ss.str();
  }

 private:
  template <typename T>
  void print_cell(std::ostream& os, T&& value) const {
    os << std::setw(col_width_) << value;
  }

  std::vector<std::string> headers_;
  int col_width_;
};

}  // namespace gpusim
