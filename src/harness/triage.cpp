#include "harness/triage.hpp"

#include <exception>
#include <filesystem>
#include <optional>

#include "common/build_info.hpp"
#include "common/config_io.hpp"
#include "common/sim_error.hpp"
#include "gpu/simulator.hpp"
#include "gpu/snapshot.hpp"
#include "harness/crash_bundle.hpp"
#include "harness/runner.hpp"
#include "kernels/app_registry.hpp"
#include "telemetry/hub.hpp"

namespace gpusim {

namespace {

namespace fs = std::filesystem;

/// The whole flow, throwing typed errors; run_triage wraps it.
int triage_impl(const std::string& bundle_dir, std::ostream& out,
                const std::string& trace_out) {
  const CrashBundleManifest m = read_crash_bundle_manifest(bundle_dir);

  out << "triage: " << bundle_dir << "\n";
  out << "  mode " << m.ctx.mode << ", workload " << m.ctx.label
      << ", error " << m.error_kind;
  if (!m.error_component.empty()) out << " in " << m.error_component;
  out << " at cycle " << m.failure_cycle << "\n";
  if (!m.error_message.empty()) out << "  message: " << m.error_message
                                    << "\n";
  if (!m.build_line.empty()) out << "  written by: " << m.build_line << "\n";
  out << "  this build: " << build_fingerprint_line(kSnapshotVersion)
      << "\n";
  if (m.build != build_fingerprint()) {
    // Informational on purpose: the config/workload fingerprint below is
    // what actually gates restorability.  A different build can still
    // replay bit-exactly — and proving that it does is useful.
    out << "  note: bundle was written by a different build — a hash "
           "mismatch below may be build drift, not nondeterminism\n";
  }

  GpuConfig cfg;
  try {
    cfg = load_config((fs::path(bundle_dir) / "config.txt").string());
  } catch (const std::exception& e) {
    SIM_FAIL(SimError(SimErrorKind::kSnapshot, "harness.triage",
                      "bundle config.txt is missing or malformed")
                 .detail("bundle", bundle_dir)
                 .detail("error", e.what()));
  }

  Workload workload;
  for (const std::string& abbr : m.ctx.apps) {
    const std::optional<KernelProfile> profile = find_app(abbr);
    SIM_CHECK(profile.has_value(),
              SimError(SimErrorKind::kSnapshot, "harness.triage",
                       "bundle names an application this build's registry "
                       "does not know")
                  .detail("bundle", bundle_dir)
                  .detail("app", abbr));
    workload.apps.push_back(*profile);
  }

  RunConfig rc;
  rc.gpu = cfg;
  rc.co_run_cycles = m.ctx.co_run_cycles;
  rc.base_seed = m.ctx.base_seed;
  rc.watchdog_cycles = m.ctx.watchdog_cycles;
  rc.governor = m.ctx.governor;
  rc.faults = FaultSchedule::parse(m.ctx.faults);
  ModelSet models;
  models.dase = m.ctx.dase;
  models.mise = m.ctx.mise;
  models.asm_model = m.ctx.asm_model;
  const PolicyKind policy = parse_policy_kind(m.ctx.policy);
  const std::vector<int>* sm_split =
      m.ctx.sm_split.empty() ? nullptr : &m.ctx.sm_split;

  CoRunAssembly assembly =
      assemble_corun(rc, workload, models, policy, sm_split);
  Simulation& sim = *assembly.sim;

  const u64 fingerprint = simulation_fingerprint(
      sim, harness_context_of(rc, models, policy, sm_split));
  SIM_CHECK(fingerprint == m.ctx.fingerprint,
            SimError(SimErrorKind::kSnapshot, "harness.triage",
                     "reassembled experiment fingerprint differs from the "
                     "bundle's — config or registry drift since the crash")
                .detail("bundle", bundle_dir)
                .detail("bundle_fingerprint", m.ctx.fingerprint)
                .detail("reassembled_fingerprint", fingerprint));

  const Cycle target = m.failure_cycle;
  bool matched = false;
  std::string reproduced;
  if (!m.anchor_file.empty()) {
    // Re-execute: restore the nearest earlier periodic snapshot and run
    // forward to the recorded failure cycle.  A boundary failure (watchdog,
    // budget, conservation) leaves the state intact exactly at `target`; a
    // mid-cycle guard fires while executing the failure cycle itself, so
    // one extra cycle is attempted when the boundary state does not match.
    const SnapshotHeader hdr = restore_snapshot_file(
        (fs::path(bundle_dir) / m.anchor_file).string(), sim, fingerprint);
    SIM_CHECK(hdr.cycle <= target,
              SimError(SimErrorKind::kSnapshot, "harness.triage",
                       "bundle anchor snapshot is later than the recorded "
                       "failure cycle")
                  .detail("anchor_cycle", hdr.cycle)
                  .detail("failure_cycle", target));
    out << "  anchor restored at cycle " << hdr.cycle << "; re-executing "
        << (target - hdr.cycle) << " cycle(s) to the failure point\n";
    try {
      if (sim.gpu().now() < target) sim.run(target - sim.gpu().now());
      matched = sim.state_hash() == m.failure_state_hash;
      if (!matched) {
        sim.run(1);
        matched = sim.state_hash() == m.failure_state_hash;
      }
    } catch (const SimError& e) {
      reproduced = std::string(to_string(e.kind())) + " in " +
                   e.component() + ": " + e.message();
      matched = sim.state_hash() == m.failure_state_hash;
    }
  } else {
    // No anchor (the failure predated the first periodic snapshot, or
    // snapshotting was off): restoring the failure-point snapshot is
    // itself the verification — restore_snapshot_file recomputes the
    // state hash against the one stored at save time.
    const SnapshotHeader hdr = restore_snapshot_file(
        (fs::path(bundle_dir) / m.snapshot_file).string(), sim,
        fingerprint);
    out << "  no anchor snapshot: restored the failure-point state "
           "directly (cycle "
        << hdr.cycle << ")\n";
    matched = sim.state_hash() == m.failure_state_hash &&
              hdr.cycle == target;
  }

  if (!reproduced.empty()) {
    out << "  reproduced: " << reproduced << "\n";
  }
  if (!trace_out.empty()) {
    // The restored TELE section holds the crashed run's recorded history,
    // so this trace shows the intervals and events leading to the failure.
    TelemetryFlushContext ctx;
    ctx.label = m.ctx.label;
    ctx.apps = m.ctx.apps;
    ctx.estimators = assembly.telemetry_estimators;
    ctx.interval_length = rc.gpu.estimation_interval;
    ctx.final_cycle = sim.gpu().now();
    ctx.crashed = true;
    ctx.crash_kind = m.error_kind;
    ctx.crash_cycle = m.failure_cycle;
    write_trace_json(trace_out, *assembly.telemetry, ctx);
    out << "  trace exported to " << trace_out << "\n";
  }
  out << "\n" << sim.gpu().flight_recorder().render_timeline(48) << "\n";
  out << "  recorded state hash:   0x" << std::hex << m.failure_state_hash
      << "\n  replayed state hash:   0x" << sim.state_hash() << std::dec
      << " at cycle " << sim.gpu().now() << "\n";
  if (matched) {
    out << "triage: VERIFIED — replay reproduces the recorded failure "
           "state bit-exactly\n";
    return 0;
  }
  out << "triage: STATE HASH MISMATCH — the replay diverged from the "
         "recorded failure state"
      << (m.build != build_fingerprint() ? " (note: different build)" : "")
      << "\n";
  return 4;
}

}  // namespace

int run_triage(const std::string& bundle_dir, std::ostream& out,
               const std::string& trace_out) {
  try {
    return triage_impl(bundle_dir, out, trace_out);
  } catch (const SimError& e) {
    out << "triage: cannot triage " << bundle_dir << ":\n" << e.what()
        << "\n";
    return 3;
  } catch (const std::exception& e) {
    out << "triage: cannot triage " << bundle_dir << ": " << e.what()
        << "\n";
    return 3;
  }
}

}  // namespace gpusim
