#include "telemetry/hub.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/sim_error.hpp"
#include "gpu/gpu.hpp"
#include "mem/dram.hpp"
#include "mem/partition.hpp"
#include "metrics/metrics.hpp"
#include "telemetry/registry.hpp"

namespace gpusim {

namespace {

std::string fmt_double(double v) { return MetricsRegistry::fmt(v); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Atomic publish: write `<path>.tmp`, fsync-free rename over the target.
/// Parent directories are created on demand so batch modes can point all
/// units at one fresh directory.
void atomic_write(const std::string& path, const std::string& content) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "telemetry.hub",
                                   "cannot open telemetry file for writing")
                              .detail("path", tmp));
    out << content;
    out.flush();
    SIM_CHECK(out.good(), SimError(SimErrorKind::kHarness, "telemetry.hub",
                                   "short write while flushing telemetry")
                              .detail("path", tmp));
  }
  std::filesystem::rename(tmp, target, ec);
  SIM_CHECK(!ec, SimError(SimErrorKind::kHarness, "telemetry.hub",
                          "atomic rename of telemetry file failed")
                     .detail("from", tmp)
                     .detail("to", path)
                     .detail("error", ec.message()));
}

}  // namespace

void TelemetryHub::on_interval(const IntervalSample& sample, Gpu& gpu) {
  ++epochs_seen_;

  // Drain the flight recorder through its lifetime counter.  Events the
  // bounded ring already evicted between interval boundaries (or that spill
  // over our own cap) are counted, never silently lost.
  const FlightRecorder& fr = gpu.flight_recorder();
  if (fr.total_recorded() != fr_seen_) {
    const u64 fresh = fr.total_recorded() - fr_seen_;
    const std::vector<FlightEvent> held = fr.events_in_order();
    const u64 have = std::min<u64>(fresh, held.size());
    trace_events_dropped_ += fresh - have;
    for (std::size_t i = held.size() - static_cast<std::size_t>(have);
         i < held.size(); ++i) {
      const FlightEvent& e = held[i];
      ++fr_kind_counts_[static_cast<std::size_t>(e.kind)];
      if (trace_events_.size() < kMaxTraceEvents) {
        trace_events_.push_back(e);
      } else {
        ++trace_events_dropped_;
      }
    }
    fr_seen_ = fr.total_recorded();
  }

  if (records_.size() >= kMaxRecords) {
    ++records_dropped_;
    return;
  }

  TelemetryRecord rec;
  rec.epoch = epochs_seen_ - 1;
  rec.start = sample.start;
  rec.length = sample.length;
  rec.migration_in_progress = gpu.migration_in_progress();
  rec.governor_interventions =
      governor_interventions_ ? governor_interventions_() : 0;
  for (int p = 0; p < gpu.num_partitions(); ++p) {
    const McCounters& mcc = gpu.partition(p).mc().counters();
    rec.dram_requests += mcc.requests_served.grand_total();
    rec.dram_row_hits += mcc.row_hits.grand_total();
    rec.dram_row_misses += mcc.row_misses.grand_total();
    rec.dram_bus_data_cycles += mcc.bus_data_cycles.grand_total();
    rec.resp_queue_high_water.push_back(fr.resp_high_water(p));
  }
  rec.apps.reserve(sample.apps.size());
  for (std::size_t i = 0; i < sample.apps.size(); ++i) {
    const AppIntervalData& ad = sample.apps[i];
    TelemetryAppSample as;
    as.instructions = ad.instructions;
    as.requests_served = ad.requests_served;
    as.l2_accesses = ad.l2_accesses;
    as.l2_hits = ad.l2_hits;
    as.num_sms = ad.num_sms;
    as.alpha = ad.alpha;
    as.estimates.reserve(taps_.size());
    for (const TelemetryEstimatorTap& tap : taps_) {
      TelemetryEstimateSample es;
      const std::vector<SlowdownEstimate>& latest = tap.estimator->latest();
      if (i < latest.size()) {
        es.valid = latest[i].valid;
        es.slowdown = latest[i].slowdown_all;
      }
      as.estimates.push_back(es);
    }
    rec.apps.push_back(std::move(as));
  }
  records_.push_back(std::move(rec));
}

void TelemetryHub::load_state(StateReader& r) {
  r.expect_tag("TELE");
  epochs_seen_ = r.get_u64();
  records_dropped_ = r.get_u64();
  const u64 nrec = r.get_count(kMaxRecords, "telemetry records");
  records_.clear();
  records_.reserve(static_cast<std::size_t>(nrec));
  for (u64 i = 0; i < nrec; ++i) {
    TelemetryRecord rec;
    rec.epoch = r.get_u64();
    rec.start = r.get_u64();
    rec.length = r.get_u64();
    rec.dram_requests = r.get_u64();
    rec.dram_row_hits = r.get_u64();
    rec.dram_row_misses = r.get_u64();
    rec.dram_bus_data_cycles = r.get_u64();
    rec.governor_interventions = r.get_u64();
    rec.migration_in_progress = r.get_bool();
    const u32 nparts = r.get_u32();
    rec.resp_queue_high_water.resize(nparts);
    for (u64& v : rec.resp_queue_high_water) v = r.get_u64();
    const u32 napps = r.get_u32();
    rec.apps.resize(napps);
    for (TelemetryAppSample& a : rec.apps) {
      a.instructions = r.get_u64();
      a.requests_served = r.get_u64();
      a.l2_accesses = r.get_u64();
      a.l2_hits = r.get_u64();
      a.num_sms = r.get_i32();
      a.alpha = r.get_double();
      const u32 nest = r.get_u32();
      a.estimates.resize(nest);
      for (TelemetryEstimateSample& e : a.estimates) {
        e.valid = r.get_bool();
        e.slowdown = r.get_double();
      }
    }
    records_.push_back(std::move(rec));
  }
  fr_seen_ = r.get_u64();
  trace_events_dropped_ = r.get_u64();
  for (u64& v : fr_kind_counts_) v = r.get_u64();
  const u64 nev = r.get_count(kMaxTraceEvents, "telemetry trace events");
  trace_events_.clear();
  trace_events_.reserve(static_cast<std::size_t>(nev));
  for (u64 i = 0; i < nev; ++i) {
    FlightEvent e;
    e.cycle = r.get_u64();
    const u8 kind = r.get_u8();
    SIM_CHECK(kind < kNumFrEvents,
              SimError(SimErrorKind::kSnapshot, "telemetry.hub",
                       "unknown event kind in telemetry buffer")
                  .detail("kind", static_cast<int>(kind)));
    e.kind = static_cast<FrEvent>(kind);
    e.unit = r.get_i32();
    e.app = r.get_i32();
    e.a = r.get_u64();
    e.b = r.get_u64();
    trace_events_.push_back(e);
  }
}

std::string telemetry_file_for(const std::string& dir, const std::string& label,
                               const std::string& suffix) {
  std::string name;
  name.reserve(label.size());
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    name.push_back(ok ? c : '_');
  }
  return dir + "/" + name + suffix;
}

TelemetryPaths resolve_telemetry_paths(const TelemetryPaths& paths,
                                       const std::string& label) {
  TelemetryPaths out = paths;
  if (!paths.dir.empty()) {
    out.series = telemetry_file_for(paths.dir, label, ".telemetry.jsonl");
    out.trace = telemetry_file_for(paths.dir, label, ".trace.json");
    out.metrics = telemetry_file_for(paths.dir, label, ".metrics.prom");
    out.dir.clear();
  }
  return out;
}

namespace {

/// Interval "actual" slowdown: alone IPC over this interval's shared IPC.
/// Returns NaN when the baseline is unknown or the app issued nothing.
double interval_actual_slowdown(const TelemetryAppSample& a,
                                const TelemetryRecord& r,
                                const TelemetryFlushContext& ctx,
                                std::size_t app) {
  if (app >= ctx.ipc_alone.size() || r.length == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double ipc_shared =
      static_cast<double>(a.instructions) / static_cast<double>(r.length);
  if (ipc_shared <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return ctx.ipc_alone[app] / ipc_shared;
}

void append_number_or_null(std::ostringstream& ss, double v) {
  if (std::isfinite(v)) {
    ss << fmt_double(v);
  } else {
    ss << "null";
  }
}

}  // namespace

void write_telemetry_jsonl(const std::string& path, const TelemetryHub& hub,
                           const TelemetryFlushContext& ctx) {
  std::ostringstream ss;
  ss << "{\"schema\":\"gpusim-telemetry-v1\",\"label\":\""
     << json_escape(ctx.label) << "\",\"interval\":" << ctx.interval_length
     << ",\"final_cycle\":" << ctx.final_cycle << ",\"apps\":[";
  for (std::size_t i = 0; i < ctx.apps.size(); ++i) {
    ss << (i ? "," : "") << '"' << json_escape(ctx.apps[i]) << '"';
  }
  ss << "],\"estimators\":[";
  for (std::size_t i = 0; i < ctx.estimators.size(); ++i) {
    ss << (i ? "," : "") << '"' << json_escape(ctx.estimators[i]) << '"';
  }
  ss << "],\"records\":" << hub.records().size()
     << ",\"records_dropped\":" << hub.records_dropped()
     << ",\"trace_events_dropped\":" << hub.trace_events_dropped();
  if (ctx.crashed) {
    ss << ",\"crashed\":true,\"crash_kind\":\"" << json_escape(ctx.crash_kind)
       << "\",\"crash_cycle\":" << ctx.crash_cycle;
  }
  ss << "}\n";

  const TelemetryRecord* prev = nullptr;
  for (const TelemetryRecord& r : hub.records()) {
    const u64 p_bus = prev ? prev->dram_bus_data_cycles : 0;
    const u64 p_hits = prev ? prev->dram_row_hits : 0;
    const u64 p_miss = prev ? prev->dram_row_misses : 0;
    const u64 p_req = prev ? prev->dram_requests : 0;
    const u64 p_gov = prev ? prev->governor_interventions : 0;
    const u64 d_hits = r.dram_row_hits - p_hits;
    const u64 d_miss = r.dram_row_misses - p_miss;
    const std::size_t nparts = r.resp_queue_high_water.size();
    const double bw_util =
        (r.length == 0 || nparts == 0)
            ? 0.0
            : static_cast<double>(r.dram_bus_data_cycles - p_bus) /
                  (static_cast<double>(r.length) * static_cast<double>(nparts));
    ss << "{\"epoch\":" << r.epoch << ",\"start\":" << r.start
       << ",\"length\":" << r.length << ",\"migration\":"
       << (r.migration_in_progress ? "true" : "false")
       << ",\"governor_interventions\":" << r.governor_interventions
       << ",\"governor_interventions_delta\":"
       << (r.governor_interventions - p_gov)
       << ",\"dram_requests_delta\":" << (r.dram_requests - p_req)
       << ",\"dram_bw_util\":" << fmt_double(bw_util)
       << ",\"dram_row_hit_rate\":";
    if (d_hits + d_miss == 0) {
      ss << "null";
    } else {
      ss << fmt_double(static_cast<double>(d_hits) /
                       static_cast<double>(d_hits + d_miss));
    }
    ss << ",\"resp_queue_high_water\":[";
    for (std::size_t p = 0; p < nparts; ++p) {
      ss << (p ? "," : "") << r.resp_queue_high_water[p];
    }
    ss << "],\"apps\":[";
    for (std::size_t i = 0; i < r.apps.size(); ++i) {
      const TelemetryAppSample& a = r.apps[i];
      const double ipc = r.length == 0
                             ? 0.0
                             : static_cast<double>(a.instructions) /
                                   static_cast<double>(r.length);
      ss << (i ? "," : "") << "{\"app\":\""
         << (i < ctx.apps.size() ? json_escape(ctx.apps[i]) : std::to_string(i))
         << "\",\"sms\":" << a.num_sms << ",\"instructions\":" << a.instructions
         << ",\"ipc\":" << fmt_double(ipc)
         << ",\"alpha\":" << fmt_double(a.alpha) << ",\"l2_miss_rate\":";
      if (a.l2_accesses == 0) {
        ss << "null";
      } else {
        ss << fmt_double(1.0 - static_cast<double>(a.l2_hits) /
                                   static_cast<double>(a.l2_accesses));
      }
      const double actual = interval_actual_slowdown(a, r, ctx, i);
      ss << ",\"actual_slowdown\":";
      append_number_or_null(ss, actual);
      ss << ",\"estimates\":{";
      for (std::size_t e = 0; e < a.estimates.size(); ++e) {
        ss << (e ? "," : "") << '"'
           << (e < ctx.estimators.size() ? json_escape(ctx.estimators[e])
                                         : std::to_string(e))
           << "\":";
        if (a.estimates[e].valid) {
          ss << fmt_double(a.estimates[e].slowdown);
        } else {
          ss << "null";
        }
      }
      ss << "},\"error\":{";
      for (std::size_t e = 0; e < a.estimates.size(); ++e) {
        ss << (e ? "," : "") << '"'
           << (e < ctx.estimators.size() ? json_escape(ctx.estimators[e])
                                         : std::to_string(e))
           << "\":";
        const double err = a.estimates[e].valid
                               ? estimation_error(a.estimates[e].slowdown,
                                                  actual)
                               : std::numeric_limits<double>::quiet_NaN();
        append_number_or_null(ss, err);
      }
      ss << "}}";
    }
    ss << "]}\n";
    prev = &r;
  }
  atomic_write(path, ss.str());
}

namespace {

// Trace-track layout (DESIGN.md §15): one process, fixed thread ids.
constexpr int kTidGovernor = 1;
constexpr int kTidMigration = 2;
constexpr int kTidFaults = 3;
constexpr int kTidMemory = 4;
constexpr int kTidAppBase = 10;  ///< app i lives on tid kTidAppBase + i

void trace_meta(std::ostringstream& ss, int tid, const std::string& name) {
  ss << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << json_escape(name)
     << "\"}}";
}

int trace_tid_for(const FlightEvent& e) {
  switch (e.kind) {
    case FrEvent::kGovClamp:
    case FrEvent::kGovProposalRejected:
    case FrEvent::kGovLowConfidenceHold:
    case FrEvent::kGovBreakerTrip:
    case FrEvent::kGovFallbackEven:
    case FrEvent::kGovMigrationAbort:
      return kTidGovernor;
    case FrEvent::kMigrationRequested:
    case FrEvent::kMigrationHandover:
    case FrEvent::kMigrationComplete:
      return kTidMigration;
    case FrEvent::kFaultDropResp:
    case FrEvent::kFaultDropReq:
    case FrEvent::kFaultNack:
    case FrEvent::kFaultMisroute:
    case FrEvent::kFaultCorrupt:
      return kTidFaults;
    case FrEvent::kRespHighWater:
    case FrEvent::kDeferHighWater:
    case FrEvent::kXbarReqStall:
    case FrEvent::kXbarRespStall:
      return kTidMemory;
    case FrEvent::kBlockDispatch:
    case FrEvent::kMshrRetry:
    case FrEvent::kMshrExhausted:
      return e.app >= 0 ? kTidAppBase + e.app : kTidMemory;
  }
  return kTidMemory;
}

}  // namespace

void write_trace_json(const std::string& path, const TelemetryHub& hub,
                      const TelemetryFlushContext& ctx) {
  // One simulated cycle maps to one microsecond of trace time, so the
  // Perfetto timeline reads directly in cycles.
  std::ostringstream ss;
  ss << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
     << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":"
     << "\"gpusim " << json_escape(ctx.label) << "\"}}";
  trace_meta(ss, kTidGovernor, "governor");
  trace_meta(ss, kTidMigration, "sm-migration");
  trace_meta(ss, kTidFaults, "fault-injection");
  trace_meta(ss, kTidMemory, "memory-system");
  for (std::size_t i = 0; i < ctx.apps.size(); ++i) {
    trace_meta(ss, kTidAppBase + static_cast<int>(i),
               "app" + std::to_string(i) + " " + ctx.apps[i]);
  }

  // Epoch spans: one complete ("X") span per app per interval, carrying the
  // per-epoch sample as args, plus process-wide counter tracks.
  for (const TelemetryRecord& r : hub.records()) {
    for (std::size_t i = 0; i < r.apps.size(); ++i) {
      const TelemetryAppSample& a = r.apps[i];
      const double ipc = r.length == 0
                             ? 0.0
                             : static_cast<double>(a.instructions) /
                                   static_cast<double>(r.length);
      ss << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":"
         << (kTidAppBase + static_cast<int>(i)) << ",\"ts\":" << r.start
         << ",\"dur\":" << r.length << ",\"name\":\"epoch " << r.epoch
         << "\",\"args\":{\"sms\":" << a.num_sms
         << ",\"ipc\":" << fmt_double(ipc);
      for (std::size_t e = 0;
           e < a.estimates.size() && e < ctx.estimators.size(); ++e) {
        if (!a.estimates[e].valid) continue;
        ss << ",\"est_" << json_escape(ctx.estimators[e])
           << "\":" << fmt_double(a.estimates[e].slowdown);
      }
      ss << "}}";
    }
    ss << ",\n{\"ph\":\"C\",\"pid\":1,\"ts\":" << (r.start + r.length)
       << ",\"name\":\"sms\",\"args\":{";
    for (std::size_t i = 0; i < r.apps.size(); ++i) {
      ss << (i ? "," : "") << '"'
         << (i < ctx.apps.size() ? json_escape(ctx.apps[i]) : std::to_string(i))
         << "\":" << r.apps[i].num_sms;
    }
    ss << "}}";
    ss << ",\n{\"ph\":\"C\",\"pid\":1,\"ts\":" << (r.start + r.length)
       << ",\"name\":\"governor_interventions\",\"args\":{\"count\":"
       << r.governor_interventions << "}}";
  }

  // Flight-recorder events: migration request/complete pairs become drain
  // spans on the migration track; everything else is an instant on its
  // track.  The FrEvent vocabulary here is exactly the crash-timeline one.
  Cycle drain_start = 0;
  u64 drain_sms = 0;
  bool drain_open = false;
  for (const FlightEvent& e : hub.trace_events()) {
    if (e.kind == FrEvent::kMigrationRequested) {
      drain_open = true;
      drain_start = e.cycle;
      drain_sms = e.a;
      continue;
    }
    if (e.kind == FrEvent::kMigrationComplete) {
      const Cycle ts = drain_open ? drain_start : e.cycle;
      ss << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << kTidMigration
         << ",\"ts\":" << ts << ",\"dur\":" << (e.cycle - ts)
         << ",\"name\":\"migration drain\",\"args\":{\"sms_changing\":"
         << drain_sms << "}}";
      drain_open = false;
      continue;
    }
    ss << ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":" << trace_tid_for(e)
       << ",\"ts\":" << e.cycle << ",\"s\":\"t\",\"name\":\""
       << to_string(e.kind) << "\",\"args\":{";
    if (e.unit >= 0) ss << "\"unit\":" << e.unit << ",";
    if (e.app >= 0) ss << "\"app\":" << e.app << ",";
    ss << "\"a\":" << e.a << ",\"b\":" << e.b << "}}";
  }
  if (drain_open) {
    ss << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":" << kTidMigration
       << ",\"ts\":" << drain_start
       << ",\"dur\":" << (ctx.final_cycle - drain_start)
       << ",\"name\":\"migration drain (unfinished)\",\"args\":"
       << "{\"sms_changing\":" << drain_sms << "}}";
  }

  // Loop-profiler buckets merged in as counter tracks at end-of-run.
  if (ctx.profiler != nullptr) {
    ss << ",\n{\"ph\":\"C\",\"pid\":1,\"ts\":" << ctx.final_cycle
       << ",\"name\":\"loop_profiler_ns\",\"args\":{";
    for (int p = 0; p < LoopProfiler::kNumPhases; ++p) {
      ss << (p ? "," : "") << '"' << LoopProfiler::phase_key(p)
         << "\":" << ctx.profiler->ns(static_cast<LoopProfiler::Phase>(p));
    }
    ss << "}}";
  }

  if (ctx.crashed) {
    ss << ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":" << kTidMemory
       << ",\"ts\":" << ctx.crash_cycle
       << ",\"s\":\"g\",\"name\":\"CRASH " << json_escape(ctx.crash_kind)
       << "\",\"args\":{}}";
  }

  ss << "\n]}\n";
  atomic_write(path, ss.str());
}

void collect_metrics(MetricsRegistry& reg, const TelemetryHub& hub,
                     const Gpu& gpu, const TelemetryFlushContext& ctx) {
  // Registration order here IS the file order — append-only by contract.
  reg.gauge("gpusim_cycles", "", "simulated cycles at flush") =
      static_cast<double>(gpu.now());
  reg.counter("gpusim_intervals_total", "", "estimation intervals completed") =
      static_cast<double>(hub.epochs_seen());
  reg.counter("gpusim_telemetry_records_dropped_total", "",
              "per-interval records beyond the hub buffer cap") =
      static_cast<double>(hub.records_dropped());
  reg.counter("gpusim_telemetry_trace_events_dropped_total", "",
              "flight-recorder events evicted before drain or over cap") =
      static_cast<double>(hub.trace_events_dropped());

  const TelemetryRecord* last =
      hub.records().empty() ? nullptr : &hub.records().back();
  for (int a = 0; a < gpu.num_apps(); ++a) {
    const std::string label =
        "app=\"" + (static_cast<std::size_t>(a) < ctx.apps.size()
                        ? json_escape(ctx.apps[a])
                        : std::to_string(a)) +
        "\"";
    reg.counter("gpusim_app_instructions_total", label,
                "warp instructions issued per app") =
        static_cast<double>(gpu.instructions().total(a));
    reg.gauge("gpusim_app_sms", label, "SMs assigned at the last interval") =
        last != nullptr && static_cast<std::size_t>(a) < last->apps.size()
            ? static_cast<double>(last->apps[a].num_sms)
            : 0.0;
    reg.gauge("gpusim_app_ipc_shared", label, "whole-run shared IPC") =
        gpu.now() == 0 ? 0.0
                       : static_cast<double>(gpu.instructions().total(a)) /
                             static_cast<double>(gpu.now());
  }

  u64 dram_requests = 0, row_hits = 0, row_misses = 0, bus_data = 0;
  u64 wasted = 0, idle = 0;
  for (int p = 0; p < gpu.num_partitions(); ++p) {
    const McCounters& mcc = gpu.partition(p).mc().counters();
    dram_requests += mcc.requests_served.grand_total();
    row_hits += mcc.row_hits.grand_total();
    row_misses += mcc.row_misses.grand_total();
    bus_data += mcc.bus_data_cycles.grand_total();
    wasted += mcc.wasted_cycles.total();
    idle += mcc.idle_cycles.total();
  }
  reg.counter("gpusim_dram_requests_total", "", "DRAM requests served") =
      static_cast<double>(dram_requests);
  reg.counter("gpusim_dram_row_hits_total", "", "row-buffer hits") =
      static_cast<double>(row_hits);
  reg.counter("gpusim_dram_row_misses_total", "", "row-buffer misses") =
      static_cast<double>(row_misses);
  reg.counter("gpusim_dram_bus_data_cycles_total", "",
              "bus cycles moving data") = static_cast<double>(bus_data);
  reg.counter("gpusim_dram_bus_wasted_cycles_total", "",
              "bus idle with timing work in flight") =
      static_cast<double>(wasted);
  reg.counter("gpusim_dram_bus_idle_cycles_total", "",
              "bus idle with nothing in flight") = static_cast<double>(idle);

  for (int p = 0; p < gpu.num_partitions(); ++p) {
    const std::string label = "partition=\"" + std::to_string(p) + "\"";
    const PartitionCounters& pc = gpu.partition(p).counters();
    reg.counter("gpusim_l2_accesses_total", label, "L2 accesses") =
        static_cast<double>(pc.l2_accesses.grand_total());
    reg.counter("gpusim_l2_hits_total", label, "L2 hits") =
        static_cast<double>(pc.l2_hits.grand_total());
    reg.gauge("gpusim_resp_queue_high_water", label,
              "response-queue occupancy high-water mark") =
        static_cast<double>(gpu.flight_recorder().resp_high_water(p));
  }

  for (u8 k = 0; k < kNumFrEvents; ++k) {
    const FrEvent e = static_cast<FrEvent>(k);
    reg.counter("gpusim_events_total",
                std::string("kind=\"") + to_string(e) + "\"",
                "flight-recorder events drained by the telemetry hub") =
        static_cast<double>(hub.fr_kind_count(e));
  }

  for (std::size_t t = 0; t < hub.taps().size(); ++t) {
    const TelemetryEstimatorTap& tap = hub.taps()[t];
    const std::string est =
        t < ctx.estimators.size() ? ctx.estimators[t] : tap.name;
    const std::string elabel = "estimator=\"" + json_escape(est) + "\"";
    reg.counter("gpusim_estimator_intervals_total", elabel,
                "intervals the estimator has observed") =
        static_cast<double>(tap.estimator->intervals_seen());
    reg.counter("gpusim_estimator_sanitized_total", elabel,
                "estimates clamped by the sanitizer") =
        static_cast<double>(tap.estimator->sanitized_estimates());
    for (int a = 0; a < gpu.num_apps(); ++a) {
      const std::string label =
          elabel + ",app=\"" +
          (static_cast<std::size_t>(a) < ctx.apps.size()
               ? json_escape(ctx.apps[a])
               : std::to_string(a)) +
          "\"";
      reg.gauge("gpusim_estimator_mean_slowdown", label,
                "post-warmup mean estimated slowdown") =
          tap.estimator->mean_slowdown(a);
    }
  }

  reg.counter("gpusim_repartitions_total", "", "SM repartitions applied") =
      static_cast<double>(ctx.repartitions);
  for (const auto& [name, value] : ctx.extra_counters) {
    reg.counter("gpusim_" + name + "_total", "",
                "harness-provided counter (see DESIGN.md §15)") =
        static_cast<double>(value);
  }

  // Distribution views over the recorded epochs.
  for (std::size_t a = 0; a < (hub.records().empty()
                                   ? std::size_t{0}
                                   : hub.records().front().apps.size());
       ++a) {
    const std::string app_name = a < ctx.apps.size()
                                     ? json_escape(ctx.apps[a])
                                     : std::to_string(a);
    MetricsRegistry::Metric& ipc_hist = reg.histogram(
        "gpusim_interval_ipc", "app=\"" + app_name + "\"",
        "per-interval shared IPC", {0.25, 0.5, 1, 2, 4, 8, 16, 32});
    for (const TelemetryRecord& r : hub.records()) {
      if (a >= r.apps.size() || r.length == 0) continue;
      MetricsRegistry::observe(
          ipc_hist, static_cast<double>(r.apps[a].instructions) /
                        static_cast<double>(r.length));
    }
    for (std::size_t e = 0; e < ctx.estimators.size(); ++e) {
      MetricsRegistry::Metric& err_hist = reg.histogram(
          "gpusim_estimation_error",
          "app=\"" + app_name + "\",estimator=\"" +
              json_escape(ctx.estimators[e]) + "\"",
          "per-interval Eq. 26 relative error",
          {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5});
      for (const TelemetryRecord& r : hub.records()) {
        if (a >= r.apps.size() || e >= r.apps[a].estimates.size()) continue;
        if (!r.apps[a].estimates[e].valid) continue;
        const double actual = interval_actual_slowdown(r.apps[a], r, ctx, a);
        const double err =
            estimation_error(r.apps[a].estimates[e].slowdown, actual);
        if (std::isfinite(err)) MetricsRegistry::observe(err_hist, err);
      }
    }
  }
}

void write_metrics_prom(const std::string& path, const TelemetryHub& hub,
                        const Gpu& gpu, const TelemetryFlushContext& ctx) {
  MetricsRegistry reg;
  collect_metrics(reg, hub, gpu, ctx);
  std::ostringstream ss;
  reg.render(ss);
  atomic_write(path, ss.str());
}

void flush_telemetry(const TelemetryHub& hub, const Gpu& gpu,
                     const TelemetryPaths& resolved,
                     const TelemetryFlushContext& ctx) {
  if (!resolved.series.empty()) {
    write_telemetry_jsonl(resolved.series, hub, ctx);
  }
  if (!resolved.trace.empty()) {
    write_trace_json(resolved.trace, hub, ctx);
  }
  if (!resolved.metrics.empty()) {
    write_metrics_prom(resolved.metrics, hub, gpu, ctx);
  }
}

}  // namespace gpusim
