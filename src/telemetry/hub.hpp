// TelemetryHub: deterministic per-interval observability for every run mode.
//
// Design rule #1: the hub ALWAYS records.  It is attached as the last
// interval observer of every assembled co-run — whether or not any
// --telemetry-out / --trace-out / --metrics-out flag was given — and the
// CLI flags only control which files get written at flush time.  That one
// decision buys all three hard contracts at once:
//
//   - On/off state-hash identity: telemetry cannot perturb the simulation
//     because enabling it changes nothing inside the determinism boundary;
//     the observer walk is identical either way.
//   - Kill + resume byte-identity: the hub's buffers are serialized in the
//     SimState walk (section tag "TELE"), so a resumed run flushes exactly
//     the bytes the uninterrupted run would have flushed.
//   - Hot-path cost is structurally zero: the hub does work only at
//     estimation-interval boundaries (every 50K cycles), never per cycle.
//
// Memory stays bounded and deterministic: at most kMaxRecords per-interval
// records and kMaxTraceEvents drained flight-recorder events are held;
// overflow increments serialized drop counters instead of growing.
//
// The hub taps, rather than owns, its sources: the flight recorder is
// drained incrementally through its lifetime counter (shared event-kind
// vocabulary — FrEvent is the one enum both the crash timeline and the
// Perfetto export speak), estimators are read through their public latest()
// snapshots, and the governor through an opaque counter closure so the
// telemetry layer does not link against the scheduling layer.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/flight_recorder.hpp"
#include "common/loop_profiler.hpp"
#include "common/simstate.hpp"
#include "common/types.hpp"
#include "dase/estimator.hpp"
#include "gpu/simulator.hpp"

namespace gpusim {

/// Where telemetry goes.  Single-run modes use the three file paths
/// directly; batch modes (sweep / chaos / jobs) set `dir` and every unit
/// writes `<dir>/<sanitized-label>.telemetry.jsonl` / `.trace.json` /
/// `.metrics.prom` instead.
struct TelemetryPaths {
  std::string series;   ///< --telemetry-out: schema-versioned JSONL
  std::string trace;    ///< --trace-out: Chrome trace-event JSON (Perfetto)
  std::string metrics;  ///< --metrics-out: Prometheus text snapshot
  std::string dir;      ///< batch modes: per-label files under this directory

  bool any() const {
    return !series.empty() || !trace.empty() || !metrics.empty() ||
           !dir.empty();
  }
};

/// A named estimator the hub samples each interval (attachment order fixes
/// the per-record estimate column order and the JSONL/metrics naming).
struct TelemetryEstimatorTap {
  std::string name;  ///< "DASE", "MISE", "ASM"
  const SlowdownEstimator* estimator = nullptr;
};

/// One estimator's view of one app in one interval.
struct TelemetryEstimateSample {
  bool valid = false;
  double slowdown = 1.0;  ///< slowdown_all (vs. running alone on all SMs)
};

/// One app's slice of one interval record.
struct TelemetryAppSample {
  u64 instructions = 0;     ///< issued this interval
  u64 requests_served = 0;  ///< DRAM requests this interval
  u64 l2_accesses = 0;      ///< this interval
  u64 l2_hits = 0;          ///< this interval
  i32 num_sms = 0;          ///< partition size at interval end
  double alpha = 0.0;       ///< memory-stall fraction
  std::vector<TelemetryEstimateSample> estimates;  ///< one per tap
};

/// One estimation interval (epoch).  DRAM counters are stored as cumulative
/// grand totals; exporters diff consecutive records to get interval rates,
/// which keeps the record a pure function of simulated state.
struct TelemetryRecord {
  u64 epoch = 0;    ///< 0-based interval index
  Cycle start = 0;  ///< first cycle of the interval
  Cycle length = 0;
  u64 dram_requests = 0;    ///< cumulative, summed over partitions
  u64 dram_row_hits = 0;    ///< cumulative
  u64 dram_row_misses = 0;  ///< cumulative
  u64 dram_bus_data_cycles = 0;  ///< cumulative
  u64 governor_interventions = 0;  ///< cumulative
  bool migration_in_progress = false;
  std::vector<u64> resp_queue_high_water;  ///< per partition, monotone
  std::vector<TelemetryAppSample> apps;
};

class TelemetryHub final : public IntervalObserver {
 public:
  static constexpr std::size_t kMaxRecords = 8192;
  static constexpr std::size_t kMaxTraceEvents = 8192;

  TelemetryHub(std::vector<TelemetryEstimatorTap> estimators,
               std::function<u64()> governor_interventions)
      : taps_(std::move(estimators)),
        governor_interventions_(std::move(governor_interventions)),
        fr_kind_counts_(kNumFrEvents, 0) {}

  void on_interval(const IntervalSample& sample, Gpu& gpu) override;

  const std::vector<TelemetryRecord>& records() const { return records_; }
  const std::vector<FlightEvent>& trace_events() const { return trace_events_; }
  const std::vector<TelemetryEstimatorTap>& taps() const { return taps_; }
  u64 epochs_seen() const { return epochs_seen_; }
  u64 records_dropped() const { return records_dropped_; }
  u64 trace_events_dropped() const { return trace_events_dropped_; }
  u64 fr_kind_count(FrEvent e) const {
    return fr_kind_counts_[static_cast<std::size_t>(e)];
  }

  // -- SimState ----------------------------------------------------------
  // The buffers are part of the observer walk so kill+resume replays them
  // byte-for-byte.  The shape depends only on the assembly (app count,
  // partition count, tap count), never on CLI output flags, so telemetry-on
  // and telemetry-off runs hash identically by construction.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("TELE");
    s.put_u64(epochs_seen_);
    s.put_u64(records_dropped_);
    s.put_u64(static_cast<u64>(records_.size()));
    for (const TelemetryRecord& r : records_) {
      s.put_u64(r.epoch);
      s.put_u64(r.start);
      s.put_u64(r.length);
      s.put_u64(r.dram_requests);
      s.put_u64(r.dram_row_hits);
      s.put_u64(r.dram_row_misses);
      s.put_u64(r.dram_bus_data_cycles);
      s.put_u64(r.governor_interventions);
      s.put_bool(r.migration_in_progress);
      s.put_u32(static_cast<u32>(r.resp_queue_high_water.size()));
      for (const u64 v : r.resp_queue_high_water) s.put_u64(v);
      s.put_u32(static_cast<u32>(r.apps.size()));
      for (const TelemetryAppSample& a : r.apps) {
        s.put_u64(a.instructions);
        s.put_u64(a.requests_served);
        s.put_u64(a.l2_accesses);
        s.put_u64(a.l2_hits);
        s.put_i32(a.num_sms);
        s.put_double(a.alpha);
        s.put_u32(static_cast<u32>(a.estimates.size()));
        for (const TelemetryEstimateSample& e : a.estimates) {
          s.put_bool(e.valid);
          s.put_double(e.slowdown);
        }
      }
    }
    s.put_u64(fr_seen_);
    s.put_u64(trace_events_dropped_);
    for (const u64 v : fr_kind_counts_) s.put_u64(v);
    s.put_u64(static_cast<u64>(trace_events_.size()));
    for (const FlightEvent& e : trace_events_) {
      s.put_u64(e.cycle);
      s.put_u8(static_cast<u8>(e.kind));
      s.put_i32(e.unit);
      s.put_i32(e.app);
      s.put_u64(e.a);
      s.put_u64(e.b);
    }
  }
  void save_state(StateWriter& w) const override { write_state(w); }
  void hash_state(Hasher& h) const override { write_state(h); }
  void load_state(StateReader& r) override;

 private:
  std::vector<TelemetryEstimatorTap> taps_;
  std::function<u64()> governor_interventions_;

  u64 epochs_seen_ = 0;
  u64 records_dropped_ = 0;
  std::vector<TelemetryRecord> records_;

  u64 fr_seen_ = 0;  ///< flight-recorder lifetime counter at last drain
  u64 trace_events_dropped_ = 0;  ///< evicted before drain, or over cap
  std::vector<u64> fr_kind_counts_;  ///< per FrEvent kind, drained events
  std::vector<FlightEvent> trace_events_;
};

/// Everything the exporters need that is not simulated state: naming, the
/// end-of-run alone-IPC baselines for actual-slowdown columns, the governor
/// counter breakdown, and crash context when flushing from a failure path.
struct TelemetryFlushContext {
  std::string label;
  std::vector<std::string> apps;        ///< abbr per app slot
  std::vector<std::string> estimators;  ///< must match the hub's tap order
  Cycle interval_length = 0;
  Cycle final_cycle = 0;
  std::vector<double> ipc_alone;  ///< empty = unknown (no actual columns)
  u64 repartitions = 0;
  std::vector<std::pair<std::string, u64>> extra_counters;
  const LoopProfiler* profiler = nullptr;  ///< merged as trace counter tracks
  bool crashed = false;
  std::string crash_kind;
  Cycle crash_cycle = 0;
};

class Gpu;
class MetricsRegistry;

/// `<dir>/<sanitized-label><suffix>` (used by batch modes and tests).
std::string telemetry_file_for(const std::string& dir, const std::string& label,
                               const std::string& suffix);

/// Expands `paths.dir` (batch mode) into concrete per-label file paths;
/// explicit single-run paths pass through unchanged.
TelemetryPaths resolve_telemetry_paths(const TelemetryPaths& paths,
                                       const std::string& label);

void write_telemetry_jsonl(const std::string& path, const TelemetryHub& hub,
                           const TelemetryFlushContext& ctx);
void write_trace_json(const std::string& path, const TelemetryHub& hub,
                      const TelemetryFlushContext& ctx);
void collect_metrics(MetricsRegistry& reg, const TelemetryHub& hub,
                     const Gpu& gpu, const TelemetryFlushContext& ctx);
void write_metrics_prom(const std::string& path, const TelemetryHub& hub,
                        const Gpu& gpu, const TelemetryFlushContext& ctx);

/// Writes whichever of the (already resolved) paths are non-empty.  All
/// writes are atomic (tmp + rename) and parent directories are created.
void flush_telemetry(const TelemetryHub& hub, const Gpu& gpu,
                     const TelemetryPaths& resolved,
                     const TelemetryFlushContext& ctx);

}  // namespace gpusim
