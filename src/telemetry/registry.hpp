// MetricsRegistry: typed counters / gauges / histograms with a fixed
// registration order and a Prometheus-style text renderer.
//
// The registry is deliberately *not* a live instrumentation layer wired into
// the simulator hot path — that would cost cycles even when nobody asked for
// metrics and would put export state inside the determinism boundary.
// Instead it is built at flush time as a pure function of already-serialized
// simulation state (see hub.hpp): collect_metrics() walks the Gpu counters,
// the estimator taps, and the TelemetryHub buffers in one fixed order, so
// two runs that reach the same simulated state render byte-identical
// snapshots regardless of wall clock, host, or worker count.
//
// Rendering follows the Prometheus text exposition format: one `# HELP` /
// `# TYPE` pair per metric family (emitted at the family's first registered
// sample), then one sample line per (name, labels) pair, doubles printed
// with %.17g so round-tripping is exact.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gpusim {

class MetricsRegistry {
 public:
  enum class MetricKind : u8 { kCounter, kGauge, kHistogram };

  struct Metric {
    MetricKind kind = MetricKind::kGauge;
    std::string name;    ///< family name, e.g. "gpusim_app_instructions_total"
    std::string labels;  ///< rendered label set, e.g. "app=\"SD\"" ("" = none)
    std::string help;    ///< family help text (first registration wins)
    double value = 0.0;  ///< counter/gauge sample
    // Histogram state: `bounds` holds finite upper bounds; `bucket_counts`
    // has bounds.size() + 1 entries, the last one being the +Inf bucket.
    std::vector<double> bounds;
    std::vector<u64> bucket_counts;
    u64 observations = 0;
    double sum = 0.0;
  };

  /// Registers (or re-finds) a counter sample and returns its value slot.
  double& counter(const std::string& name, const std::string& labels,
                  const std::string& help) {
    return find_or_add(MetricKind::kCounter, name, labels, help).value;
  }

  /// Registers (or re-finds) a gauge sample and returns its value slot.
  double& gauge(const std::string& name, const std::string& labels,
                const std::string& help) {
    return find_or_add(MetricKind::kGauge, name, labels, help).value;
  }

  /// Registers a histogram sample with fixed finite bucket bounds.
  Metric& histogram(const std::string& name, const std::string& labels,
                    const std::string& help, std::vector<double> bounds) {
    Metric& m = find_or_add(MetricKind::kHistogram, name, labels, help);
    if (m.bucket_counts.empty()) {
      m.bounds = std::move(bounds);
      m.bucket_counts.assign(m.bounds.size() + 1, 0);
    }
    return m;
  }

  static void observe(Metric& m, double v) {
    ++m.observations;
    m.sum += v;
    for (std::size_t i = 0; i < m.bounds.size(); ++i) {
      if (v <= m.bounds[i]) {
        ++m.bucket_counts[i];
        return;
      }
    }
    ++m.bucket_counts[m.bounds.size()];  // +Inf bucket
  }

  const std::vector<Metric>& metrics() const { return metrics_; }

  /// Prometheus text exposition.  Families appear in first-registration
  /// order, and all samples of a family are grouped under one HELP/TYPE
  /// pair (the text format forbids repeating them), so collectors may
  /// register interleaved per-app/per-partition samples freely.
  void render(std::ostream& out) const {
    std::vector<std::size_t> order = family_grouped_order();
    std::string last_family;
    for (const std::size_t idx : order) {
      const Metric& m = metrics_[idx];
      if (m.name != last_family) {
        out << "# HELP " << m.name << " " << m.help << "\n";
        out << "# TYPE " << m.name << " " << type_name(m.kind) << "\n";
        last_family = m.name;
      }
      if (m.kind == MetricKind::kHistogram) {
        u64 cumulative = 0;
        for (std::size_t i = 0; i < m.bounds.size(); ++i) {
          cumulative += m.bucket_counts[i];
          out << m.name << "_bucket{" << m.labels << (m.labels.empty() ? "" : ",")
              << "le=\"" << fmt(m.bounds[i]) << "\"} " << cumulative << "\n";
        }
        cumulative += m.bucket_counts[m.bounds.size()];
        out << m.name << "_bucket{" << m.labels << (m.labels.empty() ? "" : ",")
            << "le=\"+Inf\"} " << cumulative << "\n";
        out << m.name << "_sum" << braced(m.labels) << " " << fmt(m.sum) << "\n";
        out << m.name << "_count" << braced(m.labels) << " " << m.observations
            << "\n";
      } else {
        out << m.name << braced(m.labels) << " " << fmt(m.value) << "\n";
      }
    }
  }

  /// %.17g rendering shared with the JSONL writers: shortest exact form.
  static std::string fmt(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

 private:
  /// Indices reordered so every family's samples are contiguous, families
  /// in first-registration order, samples within a family in registration
  /// order.  O(n²) over a few hundred metrics at flush time — fine.
  std::vector<std::size_t> family_grouped_order() const {
    std::vector<std::size_t> order;
    order.reserve(metrics_.size());
    std::vector<bool> done(metrics_.size(), false);
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (done[i]) continue;
      for (std::size_t j = i; j < metrics_.size(); ++j) {
        if (!done[j] && metrics_[j].name == metrics_[i].name) {
          done[j] = true;
          order.push_back(j);
        }
      }
    }
    return order;
  }

  static const char* type_name(MetricKind k) {
    switch (k) {
      case MetricKind::kCounter: return "counter";
      case MetricKind::kGauge: return "gauge";
      case MetricKind::kHistogram: return "histogram";
    }
    return "untyped";
  }

  static std::string braced(const std::string& labels) {
    return labels.empty() ? std::string() : "{" + labels + "}";
  }

  Metric& find_or_add(MetricKind kind, const std::string& name,
                      const std::string& labels, const std::string& help) {
    for (Metric& m : metrics_) {
      if (m.name == name && m.labels == labels) return m;
    }
    Metric m;
    m.kind = kind;
    m.name = name;
    m.labels = labels;
    m.help = help;
    metrics_.push_back(std::move(m));
    return metrics_.back();
  }

  std::vector<Metric> metrics_;
};

}  // namespace gpusim
