// Crossbar interconnect channel (paper Table II: one crossbar per
// direction, Local-RR arbitration).
//
// One CrossbarChannel models one direction: N source ports (FIFOs owned by
// the producers) feeding M destination ports (FIFOs owned by the channel).
// Each cycle every destination port independently round-robins over the
// sources, accepting up to `accepts_per_cycle` head-of-queue packets routed
// to it; each source may inject at most one packet per cycle (its output
// port is a single link).  Accepted packets become visible at the
// destination after `latency` cycles.  Head-of-line blocking at the source
// FIFOs and finite destination buffering are modelled deliberately — both
// are interference channels between concurrent applications.
//
// Hot-path shape: the Router is a template parameter so concrete routers
// (plain field reads in this simulator) inline into the arbitration loop —
// the std::function default exists only for tests and ad-hoc wiring.  When
// the channel has at most 64 sources, transfer() first folds "head packet
// exists and is ready" into a bitmask and returns immediately when it is
// zero, so an idle interconnect costs one pass over the source fronts
// instead of a dests × sources round-robin scan.
#pragma once

#include <functional>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/sim_error.hpp"
#include "common/types.hpp"

namespace gpusim {

template <typename Packet, typename Router = std::function<int(const Packet&)>>
class CrossbarChannel {
 public:
  using RouteFn = Router;

  CrossbarChannel(int num_sources, int num_dests, Cycle latency,
                  int accepts_per_cycle, int dest_queue_depth,
                  Router route)
      : latency_(latency),
        accepts_per_cycle_(accepts_per_cycle),
        route_(std::move(route)),
        rr_(num_dests, 0),
        source_sent_(num_sources, 0) {
    SIM_CHECK(num_sources > 0 && num_dests > 0 && accepts_per_cycle > 0,
              SimError(SimErrorKind::kConfig, "noc.crossbar",
                       "crossbar dimensions must be positive")
                  .detail("num_sources", num_sources)
                  .detail("num_dests", num_dests)
                  .detail("accepts_per_cycle", accepts_per_cycle));
    dest_queues_.reserve(num_dests);
    for (int d = 0; d < num_dests; ++d) {
      dest_queues_.emplace_back(dest_queue_depth);
    }
  }

  /// Moves packets from source FIFOs to destination FIFOs for one cycle.
  /// `sources[s]` is the output FIFO of source port s.
  ///
  /// Returns a bitmask of destination ports (bits d < 64 only) that
  /// accepted at least one packet this cycle — the activity engine uses it
  /// to schedule wake-ups at the packets' delivery cycle.  Arbitration
  /// order, round-robin pointer updates and all queue mutations are
  /// identical to the historical full scan; the mask fast path only skips
  /// probes that could not have accepted anything.
  ///
  /// When `blocked_out` is non-null it receives a bitmask of source ports
  /// (bits s < 64 only) whose head packet was ready this cycle but was not
  /// accepted — head-of-line blocking or destination back-pressure.  On the
  /// masked path this is the leftover `ready` mask and costs nothing extra.
  u64 transfer(Cycle now, std::vector<BoundedQueue<Packet>*>& sources,
               u64* blocked_out = nullptr) {
    const int num_sources = static_cast<int>(sources.size());
    SIM_INVARIANT(num_sources == static_cast<int>(source_sent_.size()),
                  "noc.crossbar", "source port count changed after wiring");
    if (num_sources > 64) return transfer_scan(now, sources, blocked_out);

    // One packet per source per cycle: a set bit means "head packet is
    // ready and this source has not injected yet", so clearing the bit on
    // accept subsumes the historical source_sent_ scratch array.
    u64 ready = 0;
    for (int s = 0; s < num_sources; ++s) {
      const BoundedQueue<Packet>& sq = *sources[s];
      if (!sq.empty() && sq.front().ready <= now) ready |= u64{1} << s;
    }
    if (ready == 0) {
      if (blocked_out != nullptr) *blocked_out = 0;
      return 0;  // idle interconnect: skip the full scan
    }

    u64 accepted_dests = 0;
    for (int d = 0; d < static_cast<int>(dest_queues_.size()); ++d) {
      BoundedQueue<Packet>& dq = dest_queues_[d];
      // A full destination cannot accept; the historical scan broke out of
      // the source loop at the first routed candidate without mutating any
      // state, so skipping the probe entirely is behaviorally identical.
      if (dq.full()) continue;
      int accepted = 0;
      for (int k = 0; k < num_sources && accepted < accepts_per_cycle_; ++k) {
        const int s = (rr_[d] + k) % num_sources;
        if (!((ready >> s) & 1)) continue;
        BoundedQueue<Packet>& sq = *sources[s];
        if (route_(sq.front()) != d) continue;
        if (dq.full()) break;  // destination buffer back-pressure
        Packet p = sq.pop();
        p.ready = now + latency_;
        const bool ok = dq.try_push(std::move(p));
        SIM_CHECK(ok, SimError(SimErrorKind::kQueueOverflow, "noc.crossbar",
                               "destination queue overflow after full() check")
                          .cycle(now)
                          .detail("dest_port", d)
                          .detail("occupancy", dq.size())
                          .detail("capacity", dq.capacity()));
        ready &= ~(u64{1} << s);
        ++accepted;
        rr_[d] = (s + 1) % num_sources;
        if (d < 64) accepted_dests |= u64{1} << d;
      }
    }
    // Bits still set in `ready` are exactly the sources whose head packet
    // was injectable this cycle but went unaccepted.
    if (blocked_out != nullptr) *blocked_out = ready;
    return accepted_dests;
  }

  BoundedQueue<Packet>& dest_queue(int d) { return dest_queues_[d]; }
  const BoundedQueue<Packet>& dest_queue(int d) const {
    return dest_queues_[d];
  }
  int num_dests() const { return static_cast<int>(dest_queues_.size()); }

  bool all_empty() const {
    for (const auto& q : dest_queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  // SimState: destination FIFOs and round-robin pointers.  source_sent_ is
  // scratch that transfer_scan() refills from scratch every cycle, so it is
  // dead at any between-cycles snapshot boundary and deliberately excluded.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("XBAR");
    for (const auto& q : dest_queues_) q.write_state(s);
    for (int v : rr_) s.put_i32(v);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("XBAR");
    for (auto& q : dest_queues_) q.load(r);
    for (int& v : rr_) v = r.get_i32();
  }

 private:
  // Historical full round-robin scan, kept for channels wider than the
  // 64-source bitmask.  Same arbitration semantics as the masked path.
  u64 transfer_scan(Cycle now, std::vector<BoundedQueue<Packet>*>& sources,
                    u64* blocked_out) {
    const int num_sources = static_cast<int>(sources.size());
    std::fill(source_sent_.begin(), source_sent_.end(), 0);
    u64 accepted_dests = 0;
    for (int d = 0; d < static_cast<int>(dest_queues_.size()); ++d) {
      BoundedQueue<Packet>& dq = dest_queues_[d];
      int accepted = 0;
      for (int k = 0; k < num_sources && accepted < accepts_per_cycle_; ++k) {
        const int s = (rr_[d] + k) % num_sources;
        if (source_sent_[s]) continue;
        BoundedQueue<Packet>& sq = *sources[s];
        if (sq.empty()) continue;
        if (sq.front().ready > now) continue;  // not yet injected (fill delay)
        if (route_(sq.front()) != d) continue;
        if (dq.full()) break;  // destination buffer back-pressure
        Packet p = sq.pop();
        p.ready = now + latency_;
        const bool ok = dq.try_push(std::move(p));
        SIM_CHECK(ok, SimError(SimErrorKind::kQueueOverflow, "noc.crossbar",
                               "destination queue overflow after full() check")
                          .cycle(now)
                          .detail("dest_port", d)
                          .detail("occupancy", dq.size())
                          .detail("capacity", dq.capacity()));
        source_sent_[s] = 1;
        ++accepted;
        rr_[d] = (s + 1) % num_sources;
        if (d < 64) accepted_dests |= u64{1} << d;
      }
    }
    if (blocked_out != nullptr) {
      // One extra pass (this path is already the slow one): ready-but-unsent
      // sources, capped to the mask's 64 bits.
      u64 blocked = 0;
      for (int s = 0; s < num_sources && s < 64; ++s) {
        if (source_sent_[s]) continue;
        const BoundedQueue<Packet>& sq = *sources[s];
        if (!sq.empty() && sq.front().ready <= now) blocked |= u64{1} << s;
      }
      *blocked_out = blocked;
    }
    return accepted_dests;
  }

  Cycle latency_;
  int accepts_per_cycle_;
  Router route_;
  std::vector<BoundedQueue<Packet>> dest_queues_;
  std::vector<int> rr_;
  std::vector<u8> source_sent_;
};

}  // namespace gpusim
