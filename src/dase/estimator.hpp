// Common interface for run-time slowdown estimators (DASE and the MISE /
// ASM baselines).
//
// An estimator observes the hardware-counter sample of every estimation
// interval and produces, per application, the predicted slowdown relative
// to running alone on the *entire* GPU (paper Eq. 1) — the quantity the
// evaluation compares against the measured actual slowdown.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/simulator.hpp"

namespace gpusim {

struct SlowdownEstimate {
  bool valid = false;  ///< enough activity this interval to estimate
  bool mbb = false;    ///< classified memory-bandwidth-bound (Eq. 19-22)
  double slowdown_assigned = 1.0;  ///< vs. alone on the assigned SMs
  double slowdown_all = 1.0;       ///< vs. alone on all SMs (reported value)
  double alpha = 0.0;              ///< memory stall fraction used
  double interference_cycles = 0.0;  ///< T_interference (Eq. 14), NMBB only
};

class SlowdownEstimator : public IntervalObserver {
 public:
  /// `warmup_intervals` initial intervals are estimated but excluded from
  /// the running per-application mean (caches and queues still filling).
  explicit SlowdownEstimator(int warmup_intervals = 1)
      : warmup_(warmup_intervals) {}

  void on_interval(const IntervalSample& sample, Gpu& gpu) final {
    ++intervals_seen_;
    latest_ = estimate(sample, gpu);
    if (intervals_seen_ <= static_cast<u64>(warmup_)) return;
    for (const SlowdownEstimate& e : latest_) {
      if (e.valid) {
        accum_[&e - latest_.data()].add(e.slowdown_all);
      }
    }
  }

  const std::vector<SlowdownEstimate>& latest() const { return latest_; }

  /// Mean of per-interval slowdown_all estimates past warm-up; 1.0 when no
  /// valid interval was observed.
  double mean_slowdown(AppId app) const {
    const RunningMean& m = accum_[app];
    return m.count() == 0 ? 1.0 : m.mean();
  }

  u64 intervals_seen() const { return intervals_seen_; }
  virtual std::string name() const = 0;

 protected:
  virtual std::vector<SlowdownEstimate> estimate(const IntervalSample& sample,
                                                 Gpu& gpu) = 0;

 private:
  int warmup_;
  u64 intervals_seen_ = 0;
  std::vector<SlowdownEstimate> latest_;
  std::array<RunningMean, kMaxApps> accum_;
};

}  // namespace gpusim
