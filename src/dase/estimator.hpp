// Common interface for run-time slowdown estimators (DASE and the MISE /
// ASM baselines).
//
// An estimator observes the hardware-counter sample of every estimation
// interval and produces, per application, the predicted slowdown relative
// to running alone on the *entire* GPU (paper Eq. 1) — the quantity the
// evaluation compares against the measured actual slowdown.
#pragma once

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/simulator.hpp"

namespace gpusim {

struct SlowdownEstimate {
  bool valid = false;  ///< enough activity this interval to estimate
  bool mbb = false;    ///< classified memory-bandwidth-bound (Eq. 19-22)
  double slowdown_assigned = 1.0;  ///< vs. alone on the assigned SMs
  double slowdown_all = 1.0;       ///< vs. alone on all SMs (reported value)
  double alpha = 0.0;              ///< memory stall fraction used
  double interference_cycles = 0.0;  ///< T_interference (Eq. 14), NMBB only
};

class SlowdownEstimator : public IntervalObserver {
 public:
  /// `warmup_intervals` initial intervals are estimated but excluded from
  /// the running per-application mean (caches and queues still filling).
  explicit SlowdownEstimator(int warmup_intervals = 1)
      : warmup_(warmup_intervals) {}

  void on_interval(const IntervalSample& sample, Gpu& gpu) final {
    ++intervals_seen_;
    latest_ = estimate(sample, gpu);
    // NaN/overflow guard: injected faults (lost requests, frozen
    // partitions) can starve an interval of the activity the estimators
    // divide by.  Sanitize at this single accumulation choke point so no
    // non-finite or absurd slowdown ever reaches the running means or the
    // fairness policies.
    for (SlowdownEstimate& e : latest_) sanitized_ += sanitize(e) ? 1 : 0;
    if (intervals_seen_ <= static_cast<u64>(warmup_)) return;
    for (const SlowdownEstimate& e : latest_) {
      if (e.valid) {
        accum_[&e - latest_.data()].add(e.slowdown_all);
      }
    }
  }

  const std::vector<SlowdownEstimate>& latest() const { return latest_; }

  /// Mean of per-interval slowdown_all estimates past warm-up; 1.0 when no
  /// valid interval was observed.
  double mean_slowdown(AppId app) const {
    const RunningMean& m = accum_[app];
    return m.count() == 0 ? 1.0 : m.mean();
  }

  u64 intervals_seen() const { return intervals_seen_; }
  /// Estimates that had a non-finite or out-of-range field repaired by the
  /// NaN/overflow guard (0 on healthy runs — the clamp range is far wider
  /// than any legitimate estimate).
  u64 sanitized_estimates() const { return sanitized_; }
  virtual std::string name() const = 0;

  /// Slowdown estimates outside [kMinSlowdown, kMaxSlowdown] are clamped;
  /// non-finite values invalidate the estimate and reset it to neutral.
  static constexpr double kMinSlowdown = 1e-3;
  static constexpr double kMaxSlowdown = 1e6;

  /// Repairs one estimate in place; returns true when anything changed.
  static bool sanitize(SlowdownEstimate& e) {
    bool touched = false;
    if (!std::isfinite(e.slowdown_assigned) || !std::isfinite(e.slowdown_all) ||
        !std::isfinite(e.alpha) || !std::isfinite(e.interference_cycles)) {
      e = SlowdownEstimate{};  // valid=false, neutral slowdowns
      return true;
    }
    auto clamp = [&touched](double& v) {
      if (v < kMinSlowdown) {
        v = kMinSlowdown;
        touched = true;
      } else if (v > kMaxSlowdown) {
        v = kMaxSlowdown;
        touched = true;
      }
    };
    clamp(e.slowdown_assigned);
    clamp(e.slowdown_all);
    return touched;
  }

  // SimState: all estimator accumulation lives in this base (the DASE /
  // MISE / ASM subclasses are pure functions of the interval sample), so
  // serializing it here covers every estimator.
  void save_state(StateWriter& w) const final { write_obs_state(w); }
  void hash_state(Hasher& h) const final { write_obs_state(h); }
  void load_state(StateReader& r) final {
    r.expect_tag("ESTM");
    intervals_seen_ = r.get_u64();
    latest_.resize(r.get_count(kMaxApps, "estimator latest"));
    for (SlowdownEstimate& e : latest_) {
      e.valid = r.get_bool();
      e.mbb = r.get_bool();
      e.slowdown_assigned = r.get_double();
      e.slowdown_all = r.get_double();
      e.alpha = r.get_double();
      e.interference_cycles = r.get_double();
    }
    for (RunningMean& m : accum_) m.load(r);
    sanitized_ = r.get_u64();
  }

 protected:
  virtual std::vector<SlowdownEstimate> estimate(const IntervalSample& sample,
                                                 Gpu& gpu) = 0;

 private:
  template <typename Sink>
  void write_obs_state(Sink& s) const {
    s.put_tag("ESTM");
    s.put_u64(intervals_seen_);
    s.put_u64(latest_.size());
    for (const SlowdownEstimate& e : latest_) {
      s.put_bool(e.valid);
      s.put_bool(e.mbb);
      s.put_double(e.slowdown_assigned);
      s.put_double(e.slowdown_all);
      s.put_double(e.alpha);
      s.put_double(e.interference_cycles);
    }
    for (const RunningMean& m : accum_) m.write_state(s);
    s.put_u64(sanitized_);
  }

  int warmup_;
  u64 intervals_seen_ = 0;
  u64 sanitized_ = 0;
  std::vector<SlowdownEstimate> latest_;
  std::array<RunningMean, kMaxApps> accum_;
};

}  // namespace gpusim
