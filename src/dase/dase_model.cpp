#include "dase/dase_model.hpp"

#include <algorithm>
#include <cmath>

namespace gpusim {

double DaseModel::request_max(const GpuConfig& cfg, Cycle interval) {
  // Eq. 20: Requestmax = Time_shared / Time_perReq * 0.6.  Each partition
  // owns an independent data bus, so the GPU-wide ceiling is the
  // per-partition ceiling times the partition count.
  const double per_partition =
      static_cast<double>(interval) / cfg.time_per_request();
  return per_partition * cfg.num_partitions * cfg.requestmax_factor;
}

std::vector<SlowdownEstimate> DaseModel::estimate(
    const IntervalSample& sample, Gpu& gpu) {
  std::vector<SlowdownEstimate> out(sample.apps.size());
  for (std::size_t a = 0; a < sample.apps.size(); ++a) {
    out[a] = estimate_app(sample.apps[a], sample, gpu.config());
  }
  return out;
}

SlowdownEstimate DaseModel::estimate_app(const AppIntervalData& d,
                                         const IntervalSample& sample,
                                         const GpuConfig& cfg) const {
  SlowdownEstimate est;
  if (d.num_sms == 0 || d.sm_cycles == 0 || sample.length == 0) {
    return est;  // not resident this interval
  }
  est.valid = true;

  const double t_shared = static_cast<double>(sample.length);
  const double req_max = request_max(cfg, sample.length);
  const double ellc_miss = static_cast<double>(d.ellc_miss_scaled);
  // Eq. 17: shared request count purged of contention-miss traffic.
  const double request_shared = std::max(
      1.0, static_cast<double>(d.requests_served) - ellc_miss);

  // --- MBB classification (Eq. 19, 21, 22) ---
  const double total_served =
      static_cast<double>(sample.total_requests_served);
  const bool cond_total = total_served >= req_max;                 // Eq. 19
  const bool cond_share =
      request_shared / req_max >= 1.0 / sample.count_apps;         // Eq. 21
  const double alpha_raw = std::clamp(d.alpha, 0.0, 1.0);
  const bool cond_demand =
      request_shared / std::max(1e-9, 1.0 - alpha_raw) >= req_max;  // Eq. 22
  est.mbb = cond_total && cond_share && cond_demand;

  double alpha = alpha_raw;
  if (options_.clamp_alpha && alpha > cfg.alpha_clamp_threshold) {
    alpha = 1.0;  // Section 4.1 accuracy note
  }
  est.alpha = alpha;

  if (est.mbb) {
    // Eq. 16 + Eq. 18: alone, this kernel would have absorbed the service
    // capacity all concurrent apps consumed together.
    est.slowdown_assigned = std::max(1.0, total_served / request_shared);
    // Section 4.3: MBB kernels do not speed up with more SMs, so the
    // assigned-SM estimate already matches the all-SM baseline.
    est.slowdown_all = est.slowdown_assigned;
    return est;
  }

  // --- NMBB path (Eq. 7-15) ---
  const double blp = std::max(d.blp, 1.0);
  const double t_bank =
      t_shared * std::max(0.0, d.blp - d.blp_access);           // Eq. 9
  const double t_rowbuf =
      static_cast<double>(d.erb_miss) *
      static_cast<double>(cfg.t_rp() + cfg.t_rcd());            // Eq. 10
  const double t_avg_req =
      d.requests_served > 0
          ? static_cast<double>(d.bank_service_time) / d.requests_served
          : 0.0;                                                // Eq. 12
  const double t_llc = ellc_miss * t_avg_req;                   // Eq. 11
  double t_interf = t_bank + t_rowbuf + t_llc;
  if (options_.divide_by_blp) t_interf /= blp;                  // Eq. 14
  t_interf = std::min(t_interf, options_.max_interference_fraction * t_shared);
  est.interference_cycles = t_interf;

  const double ratio = t_shared / (t_shared - t_interf);        // Eq. 7/8
  est.slowdown_assigned = 1.0 - alpha + alpha * ratio;          // Eq. 15
  est.slowdown_assigned = std::max(1.0, est.slowdown_assigned);

  // --- all-SM extrapolation (Eq. 23-25) ---
  const double sm_scale =
      static_cast<double>(sample.total_sms) / d.num_sms;
  double all = est.slowdown_assigned * sm_scale;                // Eq. 23
  if (options_.apply_tlp_cap && d.active_blocks > 0) {
    const double tlp_cap = est.slowdown_assigned *
                           static_cast<double>(d.remaining_blocks) /
                           d.active_blocks;                     // Eq. 24
    all = std::min(all, tlp_cap);
  }
  if (options_.apply_bw_cap) {
    const double bw_cap = req_max / request_shared;             // Eq. 25
    all = std::min(all, bw_cap);
  }
  est.slowdown_all = std::max(1.0, all);
  return est;
}

}  // namespace gpusim
