// DASE — Dynamical Application Slowdown Estimation (paper Section IV).
//
// Per estimation interval and per application, DASE:
//   1. classifies the application as memory-bandwidth-bound (MBB) or not
//      (NMBB) from served-request counts and the stall fraction α
//      (Eq. 19-22, with the empirical Requestmax of Eq. 20);
//   2. for NMBB apps, estimates the interference cycles other applications
//      injected into the shared memory system — bank occupancy (Eq. 9),
//      extra row-buffer misses (Eq. 10), contention cache misses via the
//      sampled ATD (Eq. 11-13) — divides by the app's bank-level
//      parallelism (Eq. 14) and folds in TLP latency hiding via α
//      (Eq. 15);
//   3. for MBB apps, uses the served-request ratio (Eq. 16-18): alone, a
//      bandwidth-bound kernel would absorb all requests the DRAM served;
//   4. extrapolates the assigned-SM slowdown to the all-SM baseline the
//      metric demands (Eq. 23), capped by remaining thread-block
//      parallelism (Eq. 24) and by memory-bandwidth headroom (Eq. 25).
#pragma once

#include "dase/estimator.hpp"

namespace gpusim {

struct DaseOptions {
  /// Section 4.1: "setting α to 1 makes DASE more accurate when α is
  /// large"; the threshold comes from GpuConfig::alpha_clamp_threshold.
  bool clamp_alpha = true;
  /// Eq. 14 divides aggregate interference by BLP_i; disable to ablate.
  bool divide_by_blp = true;
  /// Apply the Eq. 24 / Eq. 25 caps on the all-SM extrapolation.
  bool apply_tlp_cap = true;
  bool apply_bw_cap = true;
  /// Fraction of the interval T_interference may not exceed (guards the
  /// Eq. 7 denominator).
  double max_interference_fraction = 0.95;
};

class DaseModel final : public SlowdownEstimator {
 public:
  explicit DaseModel(DaseOptions options = {}, int warmup_intervals = 1)
      : SlowdownEstimator(warmup_intervals), options_(options) {}

  std::string name() const override { return "DASE"; }

  /// Eq. 20: the empirical maximum number of requests DRAM can serve in
  /// `interval` cycles across all partitions.
  static double request_max(const GpuConfig& cfg, Cycle interval);

 protected:
  std::vector<SlowdownEstimate> estimate(const IntervalSample& sample,
                                         Gpu& gpu) override;

 private:
  SlowdownEstimate estimate_app(const AppIntervalData& d,
                                const IntervalSample& sample,
                                const GpuConfig& cfg) const;

  DaseOptions options_;
};

}  // namespace gpusim
