#include "gpu/simulator.hpp"

#include <algorithm>

#include "common/sim_error.hpp"

namespace gpusim {

namespace {
/// How often the watchdog samples the progress counters.  Sampling is a
/// handful of counter reads, so a fine period keeps detection latency low
/// without measurable overhead.
constexpr Cycle kWatchdogCheckPeriod = 1024;
}  // namespace

void Simulation::run(Cycle cycles) {
  if (next_interval_end_ == 0) {
    next_interval_end_ = gpu_.now() + interval_length_;
  }
  // A cycle budget clips the requested stop: the run advances to the budget
  // boundary (keeping interval/watchdog bookkeeping exact up to it) and the
  // overrun is reported as a typed error *after* the loop, so the state at
  // the throw point is a valid simulation state at exactly budget cycles.
  const Cycle requested_stop = gpu_.now() + cycles;
  const bool budget_clips =
      cycle_budget_ != 0 && requested_stop > cycle_budget_;
  const Cycle stop =
      budget_clips ? std::max(gpu_.now(), cycle_budget_) : requested_stop;
  const bool watchdog_on = watchdog_cycles_ != 0;
  const bool limits_on = limits_armed();

  // The loop advances in *chunks* bounded by the next cycle at which
  // per-chunk bookkeeping (interval boundary, watchdog sampling point) is
  // due, so the inner loop carries neither the hook dispatch nor the
  // watchdog modulo when they have nothing to do.  Chunking changes no
  // observable behaviour: intervals fire at the same cycles as the old
  // per-cycle checks, and the watchdog still samples at every multiple of
  // kWatchdogCheckPeriod.
  while (gpu_.now() < stop) {
    Cycle chunk_end = std::min(stop, next_interval_end_);
    if (watchdog_on || limits_on) {
      const Cycle wd_next =
          (gpu_.now() / kWatchdogCheckPeriod + 1) * kWatchdogCheckPeriod;
      chunk_end = std::min(chunk_end, wd_next);
    }
    if (cycle_hooks_.empty()) {
      while (gpu_.now() < chunk_end) {
        if (fast_forward_) {
          const Cycle dead = gpu_.dead_cycles_until(chunk_end - gpu_.now());
          if (dead > 0) {
            gpu_.skip_dead_cycles(dead);
            continue;
          }
        }
        gpu_.cycle();
      }
    } else {
      // Per-cycle hooks observe (and may mutate) the GPU every cycle, so
      // neither the fast-forward nor the hoisted loop applies — and the
      // activity engine is pinned off for the hooked stretch so every
      // counter a hook reads is accrued through the previous cycle.
      const bool engine_was_on = gpu_.activity_sched();
      gpu_.set_activity_sched(false);
      while (gpu_.now() < chunk_end) {
        for (CycleHook* hook : cycle_hooks_) hook->on_cycle(gpu_.now(), gpu_);
        gpu_.cycle();
      }
      gpu_.set_activity_sched(engine_was_on);
    }
    maybe_fire_interval();
    if (gpu_.now() % kWatchdogCheckPeriod == 0) {
      if (watchdog_on) check_watchdog();
      if (limits_on) check_limits();
    }
  }
  // At least one limit check per run() call, so short runs (and the final
  // partial chunk) cannot outrun a tripped limit.
  if (limits_on) check_limits();
  if (budget_clips) {
    SIM_FAIL(SimError(SimErrorKind::kBudgetExceeded, "gpu.simulation",
                      "cycle budget exhausted before the requested run "
                      "length completed")
                 .cycle(gpu_.now())
                 .detail("cycle_budget", cycle_budget_)
                 .detail("requested_stop", requested_stop));
  }
}

void Simulation::run_until_instructions(AppId app, u64 target,
                                        Cycle max_cycles) {
  const Cycle stop = gpu_.now() + max_cycles;
  while (gpu_.instructions().total(app) < target && gpu_.now() < stop) {
    // Advance in interval-sized strides so observers keep firing.
    const Cycle stride =
        std::min<Cycle>(interval_length_, stop - gpu_.now());
    run(stride);
  }
}

void Simulation::maybe_fire_interval() {
  if (gpu_.now() < next_interval_end_) return;
  ProfScope prof(profiler_, LoopProfiler::kIntervalBookkeeping);
  const IntervalSample sample = gpu_.end_interval();
  ++intervals_completed_;
  for (IntervalObserver* obs : observers_) obs->on_interval(sample, gpu_);
  next_interval_end_ = gpu_.now() + interval_length_;
}

u64 Simulation::total_requests_served() const {
  u64 served = 0;
  for (int p = 0; p < gpu_.num_partitions(); ++p) {
    served += gpu_.partition(p).mc().counters().requests_served.grand_total();
  }
  return served;
}

void Simulation::check_limits() {
  // Order matters: an operator interrupt beats a deadline beats a budget —
  // the most externally-driven condition wins so a drain is reported as a
  // drain even when a deadline lapsed while the drain was pending.
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    SIM_FAIL(SimError(SimErrorKind::kInterrupted, "gpu.simulation",
                      "cooperative cancellation requested — state is "
                      "intact and snapshot-able at this cycle")
                 .cycle(gpu_.now()));
  }
  if (wall_deadline_ != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    SIM_FAIL(SimError(SimErrorKind::kDeadlineExceeded, "gpu.simulation",
                      "wall-clock deadline passed mid-simulation")
                 .cycle(gpu_.now()));
  }
  if (mem_budget_ != 0) {
    const u64 served = total_requests_served();
    if (served > mem_budget_) {
      SIM_FAIL(SimError(SimErrorKind::kBudgetExceeded, "gpu.simulation",
                        "memory-traffic budget exhausted")
                   .cycle(gpu_.now())
                   .detail("mem_budget", mem_budget_)
                   .detail("requests_served", served));
    }
  }
}

u64 Simulation::progress_signature() const {
  // Any retired instruction or served DRAM request counts as progress; a
  // co-run mid-drain retires nothing for a while but its DRAM still moves.
  // Recovery traffic (reissues, absorbed duplicates) also counts: an SM
  // backing off and retrying a lost miss is recovering, not deadlocked —
  // the watchdog should only fire once the retry path itself goes silent.
  u64 sig = gpu_.instructions().grand_total();
  for (int p = 0; p < gpu_.num_partitions(); ++p) {
    sig += gpu_.partition(p).mc().counters().requests_served.grand_total();
  }
  sig += gpu_.conservation_taps().retries_issued.grand_total();
  sig += gpu_.conservation_taps().duplicates_absorbed.grand_total();
  return sig;
}

void Simulation::check_watchdog() {
  const u64 sig = progress_signature();
  if (sig != last_progress_sig_) {
    last_progress_sig_ = sig;
    last_progress_cycle_ = gpu_.now();
    return;
  }
  if (gpu_.now() - last_progress_cycle_ < watchdog_cycles_) return;
  // Zero progress for the full threshold.  An intentionally idle GPU
  // (every SM released, nothing in flight) is not a deadlock.
  if (gpu_.memory_system_quiescent()) {
    bool any_live = false;
    for (int s = 0; s < gpu_.num_sms() && !any_live; ++s) {
      any_live = gpu_.sm(s).live_warps() > 0;
    }
    if (!any_live) return;
  }
  SIM_FAIL(SimError(SimErrorKind::kWatchdogStall, "gpu.simulation",
                    "no instruction retired and no DRAM request served — "
                    "deadlock or livelock")
               .cycle(gpu_.now())
               .detail("stalled_for_cycles", gpu_.now() - last_progress_cycle_)
               .detail("watchdog_threshold", watchdog_cycles_)
               .detail("pipeline_state", gpu_.dump_state()));
}

void Simulation::save(StateWriter& w) const {
  w.put_tag("SIM ");
  gpu_.save(w);
  w.put_u64(next_interval_end_);
  w.put_u64(intervals_completed_);
  w.put_u64(last_progress_cycle_);
  w.put_u64(last_progress_sig_);
  w.put_u64(observers_.size());
  for (const IntervalObserver* obs : observers_) obs->save_state(w);
  w.put_u64(cycle_hooks_.size());
  for (const CycleHook* hook : cycle_hooks_) hook->save_state(w);
}

void Simulation::load(StateReader& r) {
  r.expect_tag("SIM ");
  gpu_.load(r);
  next_interval_end_ = r.get_u64();
  intervals_completed_ = r.get_u64();
  last_progress_cycle_ = r.get_u64();
  last_progress_sig_ = r.get_u64();
  const u64 n_obs = r.get_u64();
  SIM_CHECK(n_obs == observers_.size(),
            SimError(SimErrorKind::kSnapshot, "gpu.simulation",
                     "snapshot observer count does not match this simulation "
                     "(register the same models before restoring)")
                .detail("snapshot_observers", n_obs)
                .detail("registered_observers", observers_.size()));
  for (IntervalObserver* obs : observers_) obs->load_state(r);
  const u64 n_hooks = r.get_u64();
  SIM_CHECK(n_hooks == cycle_hooks_.size(),
            SimError(SimErrorKind::kSnapshot, "gpu.simulation",
                     "snapshot cycle-hook count does not match this "
                     "simulation")
                .detail("snapshot_hooks", n_hooks)
                .detail("registered_hooks", cycle_hooks_.size()));
  for (CycleHook* hook : cycle_hooks_) hook->load_state(r);
}

std::vector<u8> Simulation::snapshot() const {
  StateWriter w;
  save(w);
  return w.take();
}

void Simulation::restore(const std::vector<u8>& bytes) {
  StateReader r(bytes);
  load(r);
  r.require_end();
}

u64 Simulation::state_hash() const {
  Hasher h;
  h.put_tag("SIM ");
  gpu_.hash(h);
  h.put_u64(next_interval_end_);
  h.put_u64(intervals_completed_);
  h.put_u64(last_progress_cycle_);
  h.put_u64(last_progress_sig_);
  h.put_u64(observers_.size());
  for (const IntervalObserver* obs : observers_) obs->hash_state(h);
  h.put_u64(cycle_hooks_.size());
  for (const CycleHook* hook : cycle_hooks_) hook->hash_state(h);
  return h.digest();
}

std::vector<std::pair<std::string, u64>> Simulation::component_hashes()
    const {
  std::vector<std::pair<std::string, u64>> out = gpu_.component_hashes();
  {
    Hasher h;
    h.put_u64(next_interval_end_);
    h.put_u64(intervals_completed_);
    h.put_u64(last_progress_cycle_);
    h.put_u64(last_progress_sig_);
    out.emplace_back("sim.intervals", h.digest());
  }
  for (std::size_t i = 0; i < observers_.size(); ++i) {
    Hasher h;
    observers_[i]->hash_state(h);
    out.emplace_back("observer[" + std::to_string(i) + "]", h.digest());
  }
  for (std::size_t i = 0; i < cycle_hooks_.size(); ++i) {
    Hasher h;
    cycle_hooks_[i]->hash_state(h);
    out.emplace_back("cycle_hook[" + std::to_string(i) + "]", h.digest());
  }
  return out;
}

}  // namespace gpusim
