#include "gpu/simulator.hpp"

namespace gpusim {

void Simulation::run(Cycle cycles) {
  if (next_interval_end_ == 0) {
    next_interval_end_ = gpu_.now() + interval_length_;
  }
  const Cycle stop = gpu_.now() + cycles;
  while (gpu_.now() < stop) {
    for (CycleHook* hook : cycle_hooks_) hook->on_cycle(gpu_.now(), gpu_);
    gpu_.cycle();
    maybe_fire_interval();
  }
}

void Simulation::run_until_instructions(AppId app, u64 target,
                                        Cycle max_cycles) {
  const Cycle stop = gpu_.now() + max_cycles;
  while (gpu_.instructions().total(app) < target && gpu_.now() < stop) {
    // Advance in interval-sized strides so observers keep firing.
    const Cycle stride =
        std::min<Cycle>(interval_length_, stop - gpu_.now());
    run(stride);
  }
}

void Simulation::maybe_fire_interval() {
  if (gpu_.now() < next_interval_end_) return;
  const IntervalSample sample = gpu_.end_interval();
  ++intervals_completed_;
  for (IntervalObserver* obs : observers_) obs->on_interval(sample, gpu_);
  next_interval_end_ = gpu_.now() + interval_length_;
}

}  // namespace gpusim
