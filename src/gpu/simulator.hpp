// Simulation driver: advances a Gpu, fires the fixed-length estimation
// intervals (paper Section 4.4: 50K cycles), and dispatches per-interval
// samples and per-cycle hooks to registered components (estimation models,
// scheduling policies, epoch drivers).
#pragma once

#include <atomic>
#include <chrono>
#include <vector>

#include "gpu/gpu.hpp"
#include "gpu/interval.hpp"

namespace gpusim {

/// Receives the aggregated counter sample at every interval boundary.
/// Estimation models and SM-allocation policies implement this.
///
/// Stateful observers override the SimState hooks so snapshot/restore
/// captures their accumulated estimates; the defaults are no-ops for
/// stateless observers.  Simulation::save()/load() walk observers in
/// registration order, so a restore must register the same observers in the
/// same order as the run that wrote the snapshot.
class IntervalObserver {
 public:
  virtual ~IntervalObserver() = default;
  virtual void on_interval(const IntervalSample& sample, Gpu& gpu) = 0;

  virtual void save_state(StateWriter&) const {}
  virtual void load_state(StateReader&) {}
  virtual void hash_state(Hasher&) const {}
};

/// Fired every cycle before the GPU advances; used by the MISE/ASM
/// priority-epoch drivers.  Same SimState contract as IntervalObserver.
class CycleHook {
 public:
  virtual ~CycleHook() = default;
  virtual void on_cycle(Cycle now, Gpu& gpu) = 0;

  virtual void save_state(StateWriter&) const {}
  virtual void load_state(StateReader&) {}
  virtual void hash_state(Hasher&) const {}
};

class Simulation {
 public:
  /// Progress-watchdog default: if no instruction retires and no DRAM
  /// request is served for this many cycles while work is outstanding, the
  /// run is declared dead(locked).  Generous enough that no legitimate
  /// workload trips it; tighten per run via set_watchdog().
  static constexpr Cycle kDefaultWatchdogCycles = 1'000'000;

  Simulation(const GpuConfig& cfg, std::vector<AppLaunch> launches)
      : gpu_(cfg, std::move(launches)),
        interval_length_(cfg.estimation_interval) {}

  Gpu& gpu() { return gpu_; }
  const Gpu& gpu() const { return gpu_; }

  void add_observer(IntervalObserver* obs) { observers_.push_back(obs); }
  void add_cycle_hook(CycleHook* hook) { cycle_hooks_.push_back(hook); }

  /// Sets the watchdog stall threshold in cycles; 0 disables the watchdog.
  void set_watchdog(Cycle stall_cycles) { watchdog_cycles_ = stall_cycles; }
  Cycle watchdog_cycles() const { return watchdog_cycles_; }

  /// Enables/disables the idle-cycle fast-forward (on by default).  The
  /// fast-forward is an invariant-preserving optimization: simulated
  /// output — interval samples, counters, watchdog firing cycles — is
  /// byte-identical either way; only wall-clock changes.  The off switch
  /// exists for the determinism tests and for bisecting suspected
  /// fast-forward bugs.
  void set_fast_forward(bool on) { fast_forward_ = on; }
  bool fast_forward() const { return fast_forward_; }

  /// Enables/disables the GPU's activity-tracked cycle engine (on by
  /// default; --no-activity-sched clears it).  Same contract as the
  /// fast-forward switch: simulated output is bit-identical either way.
  /// While per-cycle hooks are registered, run() pins the engine off for
  /// the hooked stretch regardless — hooks observe (and may mutate) the
  /// GPU every cycle, which the lazily-accrued engine counters would
  /// violate — and restores this setting afterwards.
  void set_activity_sched(bool on) { gpu_.set_activity_sched(on); }
  bool activity_sched() const { return gpu_.activity_sched(); }

  /// Attaches a loop profiler to the GPU's cycle phases plus this driver's
  /// fast-forward and interval bookkeeping (nullptr detaches).
  void set_loop_profiler(LoopProfiler* prof) {
    profiler_ = prof;
    gpu_.set_loop_profiler(prof);
  }

  // --- Run limits (JobManager hooks) ------------------------------------
  // All limits are caller configuration, not simulated state: like the
  // watchdog threshold they are neither serialized nor hashed, and hitting
  // one raises a typed SimError instead of silently truncating the run.
  // Limits are sampled at the same chunk boundaries as the watchdog (every
  // kWatchdogCheckPeriod cycles at most), so the hot loop stays clean, and
  // once more when run() returns normally, so even a short run sees at
  // least one check.

  /// Wall-clock deadline: run() throws SimError(kDeadlineExceeded) at the
  /// first sampling point past `deadline`.  A default-constructed
  /// time_point disables the check.
  void set_wall_deadline(std::chrono::steady_clock::time_point deadline) {
    wall_deadline_ = deadline;
  }
  /// Absolute cycle cap: run() advances to `max_cycles` at most and throws
  /// SimError(kBudgetExceeded) when the caller asked to go further.  0
  /// disables the cap.
  void set_cycle_budget(Cycle max_cycles) { cycle_budget_ = max_cycles; }
  /// Memory-traffic cap: run() throws SimError(kBudgetExceeded) once the
  /// total DRAM requests served across all partitions exceed `max_served`.
  /// 0 disables the cap.
  void set_mem_budget(u64 max_served) { mem_budget_ = max_served; }
  /// Cooperative cancellation: run() throws SimError(kInterrupted) at the
  /// first sampling point where `*cancel` is true (nullptr disables).  The
  /// simulation state is intact and snapshot-able at the throw point —
  /// graceful-shutdown drains rely on that.
  void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Runs for `cycles`, firing interval boundaries as they pass.  Throws
  /// SimError(kWatchdogStall) with a full pipeline-state dump when the
  /// watchdog detects a deadlock/livelock, and the typed limit errors
  /// described above when a configured limit trips.
  void run(Cycle cycles);

  /// Runs whole intervals until `app` has issued at least `target`
  /// instructions in total, or `max_cycles` elapse.
  void run_until_instructions(AppId app, u64 target, Cycle max_cycles);

  u64 intervals_completed() const { return intervals_completed_; }

  // --- SimState ----------------------------------------------------------
  // snapshot()/restore() capture the complete simulation: the GPU plus the
  // interval/watchdog bookkeeping plus every registered observer and cycle
  // hook (in registration order).  watchdog_cycles_ and fast_forward_ are
  // caller configuration, not simulated state: a restore keeps whatever the
  // restoring caller configured, and fast-forward on/off cannot change
  // simulated output by construction.
  void save(StateWriter& w) const;
  void load(StateReader& r);

  /// Serializes the full simulation into a byte buffer.
  std::vector<u8> snapshot() const;
  /// Restores from a buffer produced by snapshot() on an identically
  /// configured simulation (same config, launches, observers, hooks).
  void restore(const std::vector<u8>& bytes);

  /// 64-bit digest of the complete simulation state (GPU + observers +
  /// interval bookkeeping) — the unit of divergence detection.
  u64 state_hash() const;

  /// Per-component digests: the Gpu's components plus one entry per
  /// registered observer/hook and the interval bookkeeping.
  std::vector<std::pair<std::string, u64>> component_hashes() const;

 private:
  void maybe_fire_interval();
  void check_watchdog();
  void check_limits();
  bool limits_armed() const {
    return cancel_ != nullptr || mem_budget_ != 0 ||
           wall_deadline_ != std::chrono::steady_clock::time_point{};
  }
  u64 progress_signature() const;
  u64 total_requests_served() const;

  Gpu gpu_;
  Cycle interval_length_;
  Cycle next_interval_end_ = 0;
  u64 intervals_completed_ = 0;
  std::vector<IntervalObserver*> observers_;
  std::vector<CycleHook*> cycle_hooks_;

  Cycle watchdog_cycles_ = kDefaultWatchdogCycles;
  Cycle last_progress_cycle_ = 0;
  u64 last_progress_sig_ = 0;
  bool fast_forward_ = true;
  LoopProfiler* profiler_ = nullptr;

  std::chrono::steady_clock::time_point wall_deadline_{};
  Cycle cycle_budget_ = 0;
  u64 mem_budget_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace gpusim
