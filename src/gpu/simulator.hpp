// Simulation driver: advances a Gpu, fires the fixed-length estimation
// intervals (paper Section 4.4: 50K cycles), and dispatches per-interval
// samples and per-cycle hooks to registered components (estimation models,
// scheduling policies, epoch drivers).
#pragma once

#include <vector>

#include "gpu/gpu.hpp"
#include "gpu/interval.hpp"

namespace gpusim {

/// Receives the aggregated counter sample at every interval boundary.
/// Estimation models and SM-allocation policies implement this.
class IntervalObserver {
 public:
  virtual ~IntervalObserver() = default;
  virtual void on_interval(const IntervalSample& sample, Gpu& gpu) = 0;
};

/// Fired every cycle before the GPU advances; used by the MISE/ASM
/// priority-epoch drivers.
class CycleHook {
 public:
  virtual ~CycleHook() = default;
  virtual void on_cycle(Cycle now, Gpu& gpu) = 0;
};

class Simulation {
 public:
  Simulation(const GpuConfig& cfg, std::vector<AppLaunch> launches)
      : gpu_(cfg, std::move(launches)),
        interval_length_(cfg.estimation_interval) {}

  Gpu& gpu() { return gpu_; }
  const Gpu& gpu() const { return gpu_; }

  void add_observer(IntervalObserver* obs) { observers_.push_back(obs); }
  void add_cycle_hook(CycleHook* hook) { cycle_hooks_.push_back(hook); }

  /// Runs for `cycles`, firing interval boundaries as they pass.
  void run(Cycle cycles);

  /// Runs whole intervals until `app` has issued at least `target`
  /// instructions in total, or `max_cycles` elapse.
  void run_until_instructions(AppId app, u64 target, Cycle max_cycles);

  u64 intervals_completed() const { return intervals_completed_; }

 private:
  void maybe_fire_interval();

  Gpu gpu_;
  Cycle interval_length_;
  Cycle next_interval_end_ = 0;
  u64 intervals_completed_ = 0;
  std::vector<IntervalObserver*> observers_;
  std::vector<CycleHook*> cycle_hooks_;
};

}  // namespace gpusim
