// Top-level GPU: SMs, two crossbar directions, memory partitions, the
// spatial partition table, and the interval-sampling machinery feeding the
// slowdown estimators (paper Fig. 1 architecture).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/audit.hpp"
#include "common/config.hpp"
#include "common/fault_injection.hpp"
#include "common/flight_recorder.hpp"
#include "common/loop_profiler.hpp"
#include "common/sim_error.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/app_runtime.hpp"
#include "gpu/interval.hpp"
#include "kernels/kernel_profile.hpp"
#include "mem/address_map.hpp"
#include "mem/partition.hpp"
#include "noc/crossbar.hpp"
#include "sm/sm_core.hpp"

namespace gpusim {

struct AppLaunch {
  KernelProfile profile;
  u64 seed = 1;
  bool restart_on_finish = true;
};

/// App id for each SM under an even split: app i owns a contiguous chunk of
/// num_sms / num_apps SMs (the paper's default policy), with any remainder
/// given to the lowest-numbered apps.
std::vector<AppId> even_partition(int num_sms, int num_apps);

/// Concrete crossbar routers (devirtualized: these inline into the
/// arbitration loop instead of going through a std::function thunk).
struct RouteRequestToPartition {
  int operator()(const MemRequestPacket& p) const {
    return static_cast<int>(p.dest);
  }
};
struct RouteResponseToSm {
  int operator()(const MemResponsePacket& p) const {
    return static_cast<int>(p.sm);
  }
};

class Gpu {
 public:
  Gpu(const GpuConfig& cfg, std::vector<AppLaunch> launches);

  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  int num_apps() const { return static_cast<int>(runtimes_.size()); }
  int num_sms() const { return cfg_.num_sms; }
  Cycle now() const { return now_; }
  const GpuConfig& config() const { return cfg_; }

  /// Requests the partition described by `desired` (one AppId per SM;
  /// kInvalidApp leaves the SM idle).  SMs that must change owner drain
  /// first (paper Section VII "SM Draining") and are handed over as they
  /// empty; already-matching SMs are untouched.
  void set_partition(const std::vector<AppId>& desired);

  std::vector<AppId> current_partition() const;
  /// The most recently requested partition — what current_partition()
  /// converges to once every pending drain completes.  All-kInvalidApp
  /// until the first set_partition call.
  const std::vector<AppId>& desired_partition() const {
    return desired_partition_;
  }
  bool migration_in_progress() const;
  int sms_assigned(AppId app) const;

  /// Gives one application's DRAM requests absolute priority in every
  /// memory controller (MISE/ASM estimation epochs); kInvalidApp clears.
  void set_priority_app(AppId app);

  void cycle();
  void run(Cycle cycles);

  // --- Activity-tracked cycle engine (DESIGN.md §12) ---------------------
  // By default cycle() dispatches to an engine that keeps a per-SM and
  // per-partition wake cycle (the quiet_at()/next-event machinery from the
  // fast-forward path, maintained every cycle) plus pending-source
  // occupancy masks for the two crossbars, so one cycle only touches
  // components with work.  Idle components are bulk-advanced with the
  // skip_cycles() accounting when they next wake, which keeps every
  // simulated observable — state hashes, snapshots, interval samples —
  // bit-identical to the per-cycle walk.  A fault injector or a pending SM
  // migration pins the whole GPU to the per-cycle path, exactly as
  // dead_cycles_until() refuses to skip under them.

  /// Enables/disables the activity engine (--no-activity-sched escape
  /// hatch).  Safe at any cycle: owed accruals are settled first, so
  /// flipping mid-run never changes simulated state.
  void set_activity_sched(bool on);
  bool activity_sched() const { return activity_sched_; }

  /// True when the next cycle() will take the activity-tracked path.
  bool activity_engine_active() const { return engine_enabled(); }

  /// Attaches a loop profiler (nullptr detaches).  Must outlive the Gpu or
  /// be detached first.
  void set_loop_profiler(LoopProfiler* prof) { profiler_ = prof; }

  /// Idle-cycle fast-forward probe: returns how many cycles starting at
  /// now() are provably *dead* — cycle() would change nothing except the
  /// per-cycle counter accruals — capped at `max_skip`.  Returns 0 when the
  /// current cycle may do real work (or when a fault injector is attached /
  /// a migration is pending, where per-cycle hooks must run).  The bound is
  /// the earliest head-of-line event time across every SM, crossbar
  /// delivery queue and memory partition; nothing in flight can act before
  /// its queue front does.
  Cycle dead_cycles_until(Cycle max_skip) const;

  /// Applies `n` dead cycles in one jump: advances now() and adds the exact
  /// counter accruals cycle() would have performed `n` times.  Caller must
  /// have obtained `n` from dead_cycles_until().
  void skip_dead_cycles(Cycle n);

  /// Total cycles elapsed via skip_dead_cycles() (observability for tests
  /// and benchmarks; not part of simulated state).
  u64 fast_forwarded_cycles() const { return fast_forwarded_; }

  /// Aggregates all counters accumulated since the previous call into an
  /// IntervalSample and snapshots the counters.
  IntervalSample end_interval();

  // --- accessors for models, policies, harnesses and tests ---
  PerAppCounter& instructions() { return instructions_; }
  const PerAppCounter& instructions() const { return instructions_; }
  SmCore& sm(int i) { return *sms_[i]; }
  const SmCore& sm(int i) const { return *sms_[i]; }
  MemoryPartition& partition(int p) { return *partitions_[p]; }
  const MemoryPartition& partition(int p) const { return *partitions_[p]; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  AppRuntime& runtime(AppId app) { return *runtimes_[app]; }
  const AppRuntime& runtime(AppId app) const { return *runtimes_[app]; }

  /// True when no packet is in flight anywhere (tests, drain checks).
  bool memory_system_quiescent() const;

  // --- SimGuard ---

  /// Attaches a fault injector (nullptr detaches).  Hooks: response drops
  /// at SM delivery, request drops at partition intake, whole-partition
  /// stalls.  The injector must outlive the Gpu or be detached first.
  void set_fault_injector(FaultInjector* injector);

  /// Request-conservation audit: combines the always-on taps with a walk of
  /// every queue and MSHR to determine whether any packet leaked or
  /// completed twice.  Valid at any cycle, quiescent or not.
  AuditReport audit_conservation() const;

  /// Throws SimError(kConservation) carrying the full report when the audit
  /// finds an imbalance.
  void verify_conservation() const;

  /// Human-readable pipeline-state snapshot: per-SM occupancy and warp
  /// states, per-partition queue/MSHR/DRAM occupancies, crossbar backlogs.
  /// Attached to watchdog and conservation errors.
  std::string dump_state() const;

  const ConservationTaps& conservation_taps() const { return taps_; }

  /// Black-box flight recorder (sized by cfg.flight_recorder_events).  The
  /// ring rides along in snapshots and crash bundles; --triage prints it.
  FlightRecorder& flight_recorder() { return recorder_; }
  const FlightRecorder& flight_recorder() const { return recorder_; }

  // --- SimState ----------------------------------------------------------
  // Serializes every run-time-evolving field of the whole GPU: clock,
  // interval bookkeeping, partition table, app runtimes, SMs (with their
  // owning app id, resolved back to a BlockSource on load), memory
  // partitions and both crossbars.  Config and wiring are construction-time
  // and excluded.  An attached fault injector's progress counters and RNG
  // *are* captured (and load() requires the same attachment state), so an
  // armed nth-event fault replays at the same event after a restore; the
  // FaultSchedule itself is configuration, covered by the snapshot
  // fingerprint via the harness context.
  template <typename Sink>
  void write_state(Sink& s) const;
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r);

  /// 64-bit digest over the full write_state() field walk.
  u64 state_hash() const;

  /// Per-component digests for divergence drill-down: which subsystem's
  /// state differs between two runs that disagree on state_hash().
  std::vector<std::pair<std::string, u64>> component_hashes() const;

 private:
  void progress_migration();

  // --- activity engine internals (see DESIGN.md §12) ---------------------
  bool engine_enabled() const {
    return activity_sched_ && engine_supported_ && injector_ == nullptr &&
           !migration_pending_;
  }
  void rebuild_engine_state();
  void cycle_engine();
  void cycle_full();
  /// Settles component `x`'s owed bulk accruals up to (excluding) `target`.
  void sync_sm_to(int s, Cycle target);
  void sync_partition_to(int p, Cycle target);
  void sync_all_to(Cycle target);
  /// Settles all owed accruals so externally visible counters match what
  /// the per-cycle walk would show at now().  Mutates only lazily-deferred
  /// bookkeeping to its canonical value — semantically const.
  void sync_for_observation() const {
    const_cast<Gpu*>(this)->sync_all_to(now_);
  }

  GpuConfig cfg_;
  AddressMap address_map_;
  std::vector<std::unique_ptr<AppRuntime>> runtimes_;
  std::vector<std::unique_ptr<SmCore>> sms_;
  std::vector<std::unique_ptr<MemoryPartition>> partitions_;
  CrossbarChannel<MemRequestPacket, RouteRequestToPartition> req_net_;
  CrossbarChannel<MemResponsePacket, RouteResponseToSm> resp_net_;
  std::vector<BoundedQueue<MemRequestPacket>*> sm_out_ptrs_;
  std::vector<BoundedQueue<MemResponsePacket>*> part_resp_ptrs_;

  std::vector<AppId> desired_partition_;
  bool migration_pending_ = false;

  Cycle now_ = 0;
  u64 fast_forwarded_ = 0;
  Cycle last_interval_end_ = 0;
  PerAppCounter instructions_;
  PerAppCounter sm_cycles_;
  ConservationTaps taps_;
  FaultInjector* injector_ = nullptr;
  FlightRecorder recorder_;

  // Activity-engine bookkeeping.  None of it is simulated state: wakes and
  // masks are derivable from component state, and the synced cursors only
  // track how much bulk accrual is still owed — all settled before any
  // observation.  Deliberately excluded from write_state().
  bool activity_sched_ = true;   ///< --no-activity-sched clears this
  bool engine_supported_ = false;  ///< geometry fits the 64-bit masks
  bool engine_dirty_ = true;     ///< wakes/masks need a rebuild
  std::vector<Cycle> sm_wake_;    ///< next cycle SM s must be processed
  std::vector<Cycle> part_wake_;  ///< next cycle partition p must be processed
  std::vector<Cycle> sm_synced_;  ///< first cycle not yet accrued for SM s
  std::vector<Cycle> part_synced_;
  u64 req_src_mask_ = 0;   ///< SMs with a non-empty out-queue
  u64 resp_src_mask_ = 0;  ///< partitions with a non-empty response queue
  LoopProfiler* profiler_ = nullptr;
};

}  // namespace gpusim
