#include "gpu/gpu.hpp"

#include <sstream>

namespace gpusim {

std::vector<AppId> even_partition(int num_sms, int num_apps) {
  SIM_CHECK(num_apps > 0 && num_sms >= num_apps,
            SimError(SimErrorKind::kConfig, "gpu",
                     "even_partition needs at least one SM per application")
                .detail("num_sms", num_sms)
                .detail("num_apps", num_apps));
  std::vector<AppId> out(num_sms, kInvalidApp);
  const int base = num_sms / num_apps;
  const int extra = num_sms % num_apps;
  int sm = 0;
  for (AppId a = 0; a < num_apps; ++a) {
    const int share = base + (a < extra ? 1 : 0);
    for (int k = 0; k < share; ++k) out[sm++] = a;
  }
  return out;
}

Gpu::Gpu(const GpuConfig& cfg, std::vector<AppLaunch> launches)
    : cfg_(cfg),
      address_map_(cfg_),
      req_net_(cfg_.num_sms, cfg_.num_partitions, cfg_.noc_latency,
               cfg_.noc_accepts_per_cycle, cfg_.noc_queue_depth,
               RouteRequestToPartition{}),
      resp_net_(cfg_.num_partitions, cfg_.num_sms, cfg_.noc_latency,
                cfg_.noc_accepts_per_cycle, cfg_.noc_queue_depth,
                RouteResponseToSm{}),
      desired_partition_(cfg_.num_sms, kInvalidApp),
      engine_supported_(cfg_.num_sms <= 64 && cfg_.num_partitions <= 64),
      sm_wake_(cfg_.num_sms, 0),
      part_wake_(cfg_.num_partitions, 0),
      sm_synced_(cfg_.num_sms, 0),
      part_synced_(cfg_.num_partitions, 0) {
  cfg_.validate();
  SIM_CHECK(!launches.empty() && static_cast<int>(launches.size()) <= kMaxApps,
            SimError(SimErrorKind::kConfig, "gpu",
                     "application count out of range")
                .detail("launches", launches.size())
                .detail("kMaxApps", kMaxApps));

  recorder_.init(cfg_.flight_recorder_events, cfg_.num_partitions);

  runtimes_.reserve(launches.size());
  for (std::size_t a = 0; a < launches.size(); ++a) {
    runtimes_.push_back(std::make_unique<AppRuntime>(
        std::move(launches[a].profile), static_cast<AppId>(a),
        launches[a].seed, launches[a].restart_on_finish));
  }

  sms_.reserve(cfg_.num_sms);
  for (SmId s = 0; s < cfg_.num_sms; ++s) {
    sms_.push_back(std::make_unique<SmCore>(cfg_, s, address_map_));
    sms_.back()->set_instr_sink(&instructions_);
    sms_.back()->set_taps(&taps_);
    sms_.back()->set_flight_recorder(&recorder_);
    sm_out_ptrs_.push_back(&sms_.back()->out_queue());
  }
  partitions_.reserve(cfg_.num_partitions);
  for (PartitionId p = 0; p < cfg_.num_partitions; ++p) {
    partitions_.push_back(
        std::make_unique<MemoryPartition>(cfg_, num_apps(), p));
    partitions_.back()->set_taps(&taps_);
    partitions_.back()->set_flight_recorder(&recorder_);
    part_resp_ptrs_.push_back(&partitions_.back()->resp_queue());
  }
}

void Gpu::set_fault_injector(FaultInjector* injector) {
  // An injector hooks individual cycles, so the activity engine pins to the
  // per-cycle path while one is attached; settle owed accruals at the
  // transition either way.
  sync_all_to(now_);
  engine_dirty_ = true;
  injector_ = injector;
  for (auto& p : partitions_) p->set_fault_injector(injector);
}

void Gpu::set_activity_sched(bool on) {
  if (activity_sched_ == on) return;
  sync_all_to(now_);
  engine_dirty_ = true;
  activity_sched_ = on;
}

void Gpu::set_partition(const std::vector<AppId>& desired) {
  SIM_CHECK(static_cast<int>(desired.size()) == cfg_.num_sms,
            SimError(SimErrorKind::kHarness, "gpu",
                     "partition request must name one owner per SM")
                .cycle(now_)
                .detail("requested", desired.size())
                .detail("num_sms", cfg_.num_sms));
  for (AppId a : desired) {
    SIM_CHECK(a == kInvalidApp || (a >= 0 && a < num_apps()),
              SimError(SimErrorKind::kHarness, "gpu",
                       "partition request names an unknown application")
                  .cycle(now_)
                  .app(a)
                  .detail("num_apps", num_apps()));
  }
  // Repartitioning reassigns SM owners (which changes whose counters the
  // bulk accruals feed) and may leave a pending migration that pins the
  // per-cycle path — settle and invalidate the engine first.
  sync_all_to(now_);
  engine_dirty_ = true;
  u64 changing = 0;
  for (int s = 0; s < cfg_.num_sms; ++s) {
    if (sms_[s]->app() != desired[s]) ++changing;
  }
  if (changing != 0) {
    recorder_.record(now_, FrEvent::kMigrationRequested, -1, -1, changing, 0);
  }
  desired_partition_ = desired;
  migration_pending_ = true;
  progress_migration();
}

std::vector<AppId> Gpu::current_partition() const {
  std::vector<AppId> out(cfg_.num_sms, kInvalidApp);
  for (int s = 0; s < cfg_.num_sms; ++s) out[s] = sms_[s]->app();
  return out;
}

bool Gpu::migration_in_progress() const { return migration_pending_; }

int Gpu::sms_assigned(AppId app) const {
  int n = 0;
  for (const auto& sm : sms_) n += sm->app() == app ? 1 : 0;
  return n;
}

void Gpu::set_priority_app(AppId app) {
  // The priority app feeds the controllers' per-cycle accounting
  // classification; settle owed bulk accruals under the old priority so a
  // sleeping controller's skip window never straddles the flip.
  sync_all_to(now_);
  for (auto& p : partitions_) p->mc().set_priority_app(app);
}

void Gpu::progress_migration() {
  const bool was_pending = migration_pending_;
  bool pending = false;
  for (int s = 0; s < cfg_.num_sms; ++s) {
    SmCore& sm = *sms_[s];
    const AppId want = desired_partition_[s];
    if (sm.app() == want) {
      // Matching owner again: cancel any drain from a superseded request.
      if (sm.draining() && want != kInvalidApp && sm.assigned()) {
        sm.cancel_drain();
      }
      continue;
    }
    const AppId old_owner = sm.app();
    if (sm.assigned()) {
      if (!sm.draining()) sm.start_drain();
      if (sm.drained()) {
        sm.release();
      } else {
        pending = true;
        continue;
      }
    }
    recorder_.record(now_, FrEvent::kMigrationHandover, s, want,
                     old_owner == kInvalidApp
                         ? 0
                         : static_cast<u64>(old_owner) + 1,
                     0);
    if (want != kInvalidApp) {
      sm.assign(runtimes_[want].get(), now_);
    }
    // (Re-check: newly assigned SM now matches `want`.)
  }
  migration_pending_ = pending;
  if (was_pending && !pending) {
    recorder_.record(now_, FrEvent::kMigrationComplete, -1, -1, 0, 0);
  }
}

void Gpu::cycle() {
  if (engine_enabled()) {
    if (engine_dirty_) rebuild_engine_state();
    cycle_engine();
  } else {
    cycle_full();
  }
}

void Gpu::sync_sm_to(int s, Cycle target) {
  const Cycle from = sm_synced_[s];
  if (from >= target) return;
  const Cycle n = target - from;
  sms_[s]->skip_cycles(n);
  const AppId app = sms_[s]->app();
  if (app != kInvalidApp) sm_cycles_.add(app, n);
  sm_synced_[s] = target;
}

void Gpu::sync_partition_to(int p, Cycle target) {
  const Cycle from = part_synced_[p];
  if (from >= target) return;
  partitions_[p]->mc().skip_cycles(from, target - from);
  part_synced_[p] = target;
}

void Gpu::sync_all_to(Cycle target) {
  for (int s = 0; s < cfg_.num_sms; ++s) sync_sm_to(s, target);
  for (int p = 0; p < cfg_.num_partitions; ++p) sync_partition_to(p, target);
}

void Gpu::rebuild_engine_state() {
  // Wake everything for the next cycle; components re-earn their sleep from
  // live quiet_at() probes.  The synced cursors stay valid across a rebuild
  // (every dirtying mutator settles them first; SIM_INVARIANT guards the
  // contract), so no accrual is lost or doubled here.
  for (int s = 0; s < cfg_.num_sms; ++s) {
    SIM_INVARIANT(sm_synced_[s] == now_, "gpu.engine",
                  "engine rebuild with unsettled SM accruals");
    sm_wake_[s] = now_;
  }
  for (int p = 0; p < cfg_.num_partitions; ++p) {
    SIM_INVARIANT(part_synced_[p] == now_, "gpu.engine",
                  "engine rebuild with unsettled partition accruals");
    part_wake_[p] = now_;
  }
  req_src_mask_ = 0;
  resp_src_mask_ = 0;
  for (int s = 0; s < cfg_.num_sms; ++s) {
    if (!sms_[s]->out_queue().empty()) req_src_mask_ |= u64{1} << s;
  }
  for (int p = 0; p < cfg_.num_partitions; ++p) {
    if (!partitions_[p]->resp_queue().empty()) resp_src_mask_ |= u64{1} << p;
  }
  engine_dirty_ = false;
}

void Gpu::cycle_engine() {
  // Same phase order as cycle_full(), with the injector/migration hooks
  // compiled out (engine_enabled() excludes both) and every phase gated on
  // tracked activity.  A component skipped here is provably quiet: its
  // cycle() would only have accrued counters, which sync_*_to() settles in
  // one lump when it wakes.

  // 1. SMs due this cycle: settle owed accruals, deliver matured responses,
  //    advance, then re-arm the wake cycle.
  for (int s = 0; s < cfg_.num_sms; ++s) {
    if (sm_wake_[s] > now_) continue;
    sync_sm_to(s, now_);
    auto& rq = resp_net_.dest_queue(s);
    if (!rq.empty() && rq.front().ready <= now_) {
      ProfScope prof(profiler_, LoopProfiler::kRespDelivery, 0);
      u64 delivered = 0;
      while (!rq.empty() && rq.front().ready <= now_) {
        MemResponsePacket resp = rq.pop();
        taps_.responses_delivered.add(resp.app);
        sms_[s]->receive(resp);
        ++delivered;
      }
      prof.set_visits(delivered);
    }
    {
      ProfScope prof(profiler_, LoopProfiler::kSmAdvance);
      sms_[s]->cycle(now_);
    }
    const AppId app = sms_[s]->app();
    if (app != kInvalidApp) sm_cycles_.add(app);
    sm_synced_[s] = now_ + 1;
    // Sleep decision: quiet_at() on the post-cycle state proves every
    // cycle before the next local event or deliverable response is a
    // pure-accounting no-op for this SM.
    Cycle wake = now_ + 1;
    if (sms_[s]->quiet_at(now_)) {
      wake = sms_[s]->wake_after(rq);
      if (wake <= now_) wake = now_ + 1;
    }
    sm_wake_[s] = wake;
    // An SM with outbound traffic is never quiet, so this bit is refreshed
    // every cycle it could matter.
    if (!sms_[s]->out_queue().empty()) {
      req_src_mask_ |= u64{1} << s;
    } else {
      req_src_mask_ &= ~(u64{1} << s);
    }
  }

  // 2. Request crossbar, only when some SM has a packet to inject.  An
  //    accepted packet matures at now + latency; wake its partition then.
  if (req_src_mask_ != 0) {
    ProfScope prof(profiler_, LoopProfiler::kXbarReq);
    u64 blocked = 0;
    const u64 accepted = req_net_.transfer(
        now_, sm_out_ptrs_, recorder_.enabled() ? &blocked : nullptr);
    recorder_.note_xbar_stall(now_, /*resp_channel=*/false, blocked);
    if (accepted != 0) {
      const Cycle arrive = now_ + cfg_.noc_latency;
      for (int p = 0; p < cfg_.num_partitions; ++p) {
        if (((accepted >> p) & 1) != 0 && part_wake_[p] > arrive) {
          part_wake_[p] = arrive;
        }
      }
    }
  }

  // 3. Memory partitions due this cycle.
  for (int p = 0; p < cfg_.num_partitions; ++p) {
    if (part_wake_[p] > now_) continue;
    sync_partition_to(p, now_);
    auto& inq = req_net_.dest_queue(p);
    {
      ProfScope prof(profiler_, LoopProfiler::kPartition);
      partitions_[p]->cycle(now_, inq);
    }
    part_synced_[p] = now_ + 1;
    Cycle wake = now_ + 1;
    if (partitions_[p]->quiet_at(now_, inq)) {
      wake = partitions_[p]->next_event_after(now_, inq);
      if (wake <= now_) wake = now_ + 1;
    }
    part_wake_[p] = wake;
    // Unlike the request side, a partition may sleep on a not-yet-mature
    // response head, so this bit persists across its sleep; it is cleared
    // the cycle after the response crossbar drains the queue (the
    // partition is provably awake whenever its head is ready).
    if (!partitions_[p]->resp_queue().empty()) {
      resp_src_mask_ |= u64{1} << p;
    } else {
      resp_src_mask_ &= ~(u64{1} << p);
    }
  }

  // 4. Response crossbar, only when some partition holds responses.  An
  //    accepted packet matures at its SM at now + latency.
  if (resp_src_mask_ != 0) {
    ProfScope prof(profiler_, LoopProfiler::kXbarResp);
    u64 blocked = 0;
    const u64 accepted = resp_net_.transfer(
        now_, part_resp_ptrs_, recorder_.enabled() ? &blocked : nullptr);
    recorder_.note_xbar_stall(now_, /*resp_channel=*/true, blocked);
    if (accepted != 0) {
      const Cycle arrive = now_ + cfg_.noc_latency;
      for (int s = 0; s < cfg_.num_sms; ++s) {
        if (((accepted >> s) & 1) != 0 && sm_wake_[s] > arrive) {
          sm_wake_[s] = arrive;
        }
      }
    }
  }

  ++now_;
}

void Gpu::cycle_full() {
  // 1. Deliver matured responses to SMs, then advance each SM.
  for (int s = 0; s < cfg_.num_sms; ++s) {
    auto& rq = resp_net_.dest_queue(s);
    {
      ProfScope dprof(profiler_, LoopProfiler::kRespDelivery, 0);
      u64 delivered = 0;
      while (!rq.empty() && rq.front().ready <= now_) {
        MemResponsePacket resp = rq.pop();
        if (injector_ != nullptr) {
          const ResponseDecision d = injector_->on_response(now_);
          if (d.action == ResponseAction::kDrop) {
            // Injected fault: the response vanishes at delivery, stranding
            // its warp.  Taps stay silent so the auditor must detect the
            // leak; the flight recorder logs what really happened.
            recorder_.record(now_, FrEvent::kFaultDropResp, s, resp.app,
                             resp.line_addr, 0);
            continue;
          }
          if (d.action == ResponseAction::kNack) {
            // Injected fault: delivery refused; the packet re-queues with a
            // later ready time (>= now_+1, so this loop terminates).  If the
            // queue refilled meanwhile, the NACK has nowhere to park and the
            // packet is delivered after all.
            resp.ready = now_ + d.delay;
            if (rq.try_push(resp)) {
              recorder_.record(now_, FrEvent::kFaultNack, s, resp.app,
                               resp.line_addr, d.delay);
              continue;
            }
          }
        }
        taps_.responses_delivered.add(resp.app);
        sms_[s]->receive(resp);
        ++delivered;
      }
      dprof.set_visits(delivered);
    }
    {
      ProfScope prof(profiler_, LoopProfiler::kSmAdvance);
      sms_[s]->cycle(now_);
    }
    const AppId app = sms_[s]->app();
    if (app != kInvalidApp) sm_cycles_.add(app);
  }

  // 1b. Injected misroute: rewrite the destination of the first ready
  // request packet waiting at any SM's out-queue head.  Done here — not in
  // the crossbar's RouteFn, which is re-evaluated every arbitration probe —
  // so the corruption happens exactly once and deterministically.
  if (injector_ != nullptr && injector_->misroute_due(now_)) {
    for (int s = 0; s < cfg_.num_sms; ++s) {
      auto& oq = sms_[s]->out_queue();
      if (oq.empty() || oq.front().ready > now_) continue;
      MemRequestPacket& pkt = oq.front();
      const PartitionId intended = pkt.dest;
      pkt.dest = (pkt.dest + 1) % cfg_.num_partitions;
      injector_->note_misroute_fired();
      recorder_.record(now_, FrEvent::kFaultMisroute, pkt.dest, pkt.app,
                       pkt.line_addr, static_cast<u64>(intended));
      break;
    }
  }

  // 2. Request crossbar: SM output FIFOs -> partition delivery queues.
  {
    ProfScope prof(profiler_, LoopProfiler::kXbarReq);
    u64 blocked = 0;
    req_net_.transfer(now_, sm_out_ptrs_,
                      recorder_.enabled() ? &blocked : nullptr);
    recorder_.note_xbar_stall(now_, /*resp_channel=*/false, blocked);
  }

  // 3. Memory partitions (L2 + DRAM).
  {
    ProfScope prof(profiler_, LoopProfiler::kPartition, 0);
    u64 visited = 0;
    for (int p = 0; p < cfg_.num_partitions; ++p) {
      if (injector_ != nullptr && injector_->partition_stalled(p, now_)) {
        continue;  // injected fault: the whole partition is frozen
      }
      partitions_[p]->cycle(now_, req_net_.dest_queue(p));
      ++visited;
    }
    prof.set_visits(visited);
  }

  // 4. Response crossbar: partition response FIFOs -> SM delivery queues.
  {
    ProfScope prof(profiler_, LoopProfiler::kXbarResp);
    u64 blocked = 0;
    resp_net_.transfer(now_, part_resp_ptrs_,
                       recorder_.enabled() ? &blocked : nullptr);
    recorder_.note_xbar_stall(now_, /*resp_channel=*/true, blocked);
  }

  // 5. Hand over any drained SMs under a pending repartition.
  if (migration_pending_) progress_migration();

  ++now_;

  // This path accrues everything eagerly, so the sync cursors track the
  // clock; re-entering the engine later starts from a clean rebuild.
  for (int s = 0; s < cfg_.num_sms; ++s) sm_synced_[s] = now_;
  for (int p = 0; p < cfg_.num_partitions; ++p) part_synced_[p] = now_;
  engine_dirty_ = true;
}

void Gpu::run(Cycle cycles) {
  for (Cycle c = 0; c < cycles; ++c) cycle();
}

Cycle Gpu::dead_cycles_until(Cycle max_skip) const {
  // A fault injector hooks individual cycles (stall windows, nth-event
  // drops), and a pending migration re-polls drained() every cycle — both
  // need the full per-cycle path.
  if (max_skip == 0 || injector_ != nullptr || migration_pending_) return 0;

  if (engine_enabled() && !engine_dirty_) {
    // The engine already maintains every component's next event as its
    // wake cycle, so the probe is a scan of two small arrays.  A component
    // due now (or pending request traffic, whose SM is due by invariant)
    // means this cycle may do real work.
    if (req_src_mask_ != 0) return 0;
    Cycle next = now_ + max_skip;
    for (int s = 0; s < cfg_.num_sms; ++s) {
      if (sm_wake_[s] <= now_) return 0;
      next = std::min(next, sm_wake_[s]);
    }
    for (int p = 0; p < cfg_.num_partitions; ++p) {
      if (part_wake_[p] <= now_) return 0;
      next = std::min(next, part_wake_[p]);
    }
    return next - now_;
  }

  Cycle next = now_ + max_skip;
  for (int s = 0; s < cfg_.num_sms; ++s) {
    if (!sms_[s]->quiet_at(now_)) return 0;
    const auto& rq = resp_net_.dest_queue(s);
    if (!rq.empty()) {
      if (rq.front().ready <= now_) return 0;
      next = std::min(next, rq.front().ready);
    }
    next = std::min(next, sms_[s]->next_local_event());
  }
  for (int p = 0; p < cfg_.num_partitions; ++p) {
    const auto& inq = req_net_.dest_queue(p);
    if (!partitions_[p]->quiet_at(now_, inq)) return 0;
    next = std::min(next, partitions_[p]->next_event_after(now_, inq));
  }
  // Quietness guarantees every head-of-line timestamp above is > now_.
  return next - now_;
}

void Gpu::skip_dead_cycles(Cycle n) {
  ProfScope prof(profiler_, LoopProfiler::kFastForward, n);
  if (engine_enabled() && !engine_dirty_) {
    // Every component sleeps past now_ + n, so their owed accruals are
    // settled lazily at their next wake (or observation) — the jump itself
    // only moves the clock.
    now_ += n;
    fast_forwarded_ += n;
    return;
  }
  sync_all_to(now_ + n);
  now_ += n;
  fast_forwarded_ += n;
}

IntervalSample Gpu::end_interval() {
  // Interval samples read the lazily-accrued stall/idle/bus counters, so
  // settle every sleeping component up to the boundary first.
  sync_all_to(now_);
  IntervalSample sample;
  sample.start = last_interval_end_;
  sample.length = now_ - last_interval_end_;
  sample.total_sms = cfg_.num_sms;
  sample.count_apps = num_apps();
  sample.apps.resize(num_apps());

  for (AppId a = 0; a < num_apps(); ++a) {
    AppIntervalData& d = sample.apps[a];
    d.app = a;
    d.sm_cycles = sm_cycles_.interval(a);
    d.instructions = instructions_.interval(a);
    d.remaining_blocks = runtimes_[a]->remaining_blocks();

    u64 stall = 0;
    for (const auto& sm : sms_) {
      if (sm->app() != a) continue;
      ++d.num_sms;
      d.active_blocks += sm->active_blocks();
      stall += sm->counters().mem_stall_cycles.interval();
    }
    d.alpha = d.sm_cycles > 0 ? static_cast<double>(stall) / d.sm_cycles : 0.0;

    u64 blp_occ = 0;
    u64 blp_acc = 0;
    u64 blp_time = 0;
    for (const auto& p : partitions_) {
      const McCounters& mcc = p->mc().counters();
      d.requests_served += mcc.requests_served.interval(a);
      d.bank_service_time += mcc.bank_service_time.interval(a);
      d.erb_miss += mcc.erb_miss.interval(a);
      d.priority_served += mcc.priority_served.interval(a);
      d.priority_cycles += mcc.priority_cycles.interval(a);
      d.nonpriority_served += mcc.nonpriority_served.interval(a);
      d.l2_accesses_priority += p->counters().l2_accesses_priority.interval(a);
      d.l2_accesses_nonpriority +=
          p->counters().l2_accesses_nonpriority.interval(a);
      blp_occ += mcc.blp_occupancy_int.interval(a);
      blp_acc += mcc.blp_access_int.interval(a);
      blp_time += mcc.blp_time.interval(a);
      d.l2_accesses += p->counters().l2_accesses.interval(a);
      d.l2_hits += p->counters().l2_hits.interval(a);
      d.ellc_miss_scaled += p->interval_scaled_extra_misses(a);
    }
    d.blp = blp_time > 0 ? static_cast<double>(blp_occ) / blp_time : 0.0;
    d.blp_access =
        blp_time > 0 ? static_cast<double>(blp_acc) / blp_time : 0.0;
    sample.total_requests_served += d.requests_served;
  }
  for (const auto& p : partitions_) {
    sample.nonpriority_cycles +=
        p->mc().counters().nonpriority_cycles.interval();
  }

  // Snapshot everything for the next interval.
  instructions_.snapshot();
  sm_cycles_.snapshot();
  for (auto& sm : sms_) sm->counters().snapshot_all();
  for (auto& p : partitions_) {
    p->mc().counters().snapshot_all();
    p->counters().snapshot_all();
  }
  last_interval_end_ = now_;
  return sample;
}

bool Gpu::memory_system_quiescent() const {
  for (const auto& p : partitions_) {
    if (!p->quiescent()) return false;
  }
  if (!req_net_.all_empty() || !resp_net_.all_empty()) return false;
  for (const auto& sm : sms_) {
    if (!sm->out_queue().empty()) return false;
  }
  return true;
}

AuditReport Gpu::audit_conservation() const {
  AuditReport report;
  report.cycle = now_;
  for (int a = 0; a < kMaxApps; ++a) {
    report.sent[a] = taps_.requests_sent.total(a);
    report.consumed[a] = taps_.requests_consumed.total(a);
    report.enqueued[a] = taps_.responses_enqueued.total(a);
    report.delivered[a] = taps_.responses_delivered.total(a);
    report.retried[a] = taps_.retries_issued.total(a);
    report.absorbed[a] = taps_.duplicates_absorbed.total(a);
  }
  for (const auto& sm : sms_) {
    sm->count_recovery_outstanding(report.recovery_outstanding);
  }

  // Walk everything currently in flight, stage by stage.
  auto tally = [&report](AppId app) {
    if (app >= 0 && app < kMaxApps) ++report.in_flight[app];
  };
  for (const auto& sm : sms_) {
    for (const MemRequestPacket& pkt : sm->out_queue()) tally(pkt.app);
  }
  for (int d = 0; d < req_net_.num_dests(); ++d) {
    for (const MemRequestPacket& pkt : req_net_.dest_queue(d)) tally(pkt.app);
  }
  std::array<u64, kMaxApps> partition_flight{};
  for (const auto& p : partitions_) p->count_in_flight(partition_flight);
  for (int a = 0; a < kMaxApps; ++a) report.in_flight[a] += partition_flight[a];
  for (int d = 0; d < resp_net_.num_dests(); ++d) {
    for (const MemResponsePacket& pkt : resp_net_.dest_queue(d)) {
      tally(pkt.app);
    }
  }

  for (int a = 0; a < kMaxApps; ++a) {
    report.leaked[a] = static_cast<i64>(report.sent[a]) -
                       static_cast<i64>(report.delivered[a]) -
                       static_cast<i64>(report.in_flight[a]);
  }
  return report;
}

void Gpu::verify_conservation() const {
  const AuditReport report = audit_conservation();
  if (report.ok()) return;
  SIM_FAIL(SimError(SimErrorKind::kConservation, "gpu",
                    report.total_leaked() >= 0
                        ? "memory request(s) leaked"
                        : "memory request(s) completed more than once")
               .cycle(now_)
               .detail("total_leaked", report.total_leaked())
               .detail("report", report.to_string())
               .detail("pipeline_state", dump_state()));
}

std::string Gpu::dump_state() const {
  std::ostringstream ss;
  ss << "=== GPU pipeline state @ cycle " << now_ << " ===";
  for (int s = 0; s < cfg_.num_sms; ++s) {
    const SmCore& sm = *sms_[s];
    ss << "\n    SM " << s << ": app=" << sm.app()
       << (sm.draining() ? " (draining)" : "")
       << " blocks=" << sm.active_blocks() << " live_warps=" << sm.live_warps()
       << " waiting_warps=" << sm.waiting_warps()
       << " out_queue=" << sm.out_queue().size() << '/'
       << sm.out_queue().capacity();
  }
  for (int p = 0; p < num_partitions(); ++p) {
    const MemoryPartition& part = *partitions_[p];
    ss << "\n    partition " << p
       << ": req_net_in=" << req_net_.dest_queue(p).size()
       << " mc_queue=" << part.mc().queue_size()
       << " mc_inflight=" << part.mc().inflight_size()
       << " mc_bus_ready=" << part.mc().bus_ready_size()
       << " mc_outstanding=" << part.mc().total_outstanding()
       << " l2_mshr=" << part.mshr_in_flight()
       << " resp_queue=" << part.resp_queue().size()
       << " deferred=" << part.deferred_responses();
  }
  u64 resp_net_backlog = 0;
  for (int d = 0; d < resp_net_.num_dests(); ++d) {
    resp_net_backlog += resp_net_.dest_queue(d).size();
  }
  ss << "\n    resp_net backlog=" << resp_net_backlog
     << " instructions=" << instructions_.grand_total()
     << " quiescent=" << (memory_system_quiescent() ? "yes" : "no");
  // Activity-engine view: which components the scheduler believes are
  // asleep and until when, plus how much lazily-deferred accrual each one
  // still owes.  A watchdog stall with a far-future wake here points at a
  // lost wake-up; an owed accrual at a stall points at a settle bug.
  ss << "\n    activity engine: "
     << (engine_enabled() ? "active" : "inactive")
     << (activity_sched_ ? "" : " (disabled)")
     << (engine_supported_ ? "" : " (unsupported geometry)")
     << (injector_ != nullptr ? " (pinned: fault injector)" : "")
     << (migration_pending_ ? " (pinned: migration pending)" : "")
     << (engine_dirty_ ? " dirty" : "")
     << " req_src_mask=0x" << std::hex << req_src_mask_
     << " resp_src_mask=0x" << resp_src_mask_ << std::dec;
  auto dump_cursors = [&ss, this](const char* what,
                                  const std::vector<Cycle>& wake,
                                  const std::vector<Cycle>& synced) {
    ss << "\n    " << what << " wake/owed:";
    for (std::size_t i = 0; i < wake.size(); ++i) {
      ss << ' ' << i << ":";
      if (wake[i] <= now_) {
        ss << "due";
      } else if (wake[i] == kNeverCycle) {
        ss << "never";
      } else {
        ss << "+" << (wake[i] - now_);
      }
      if (synced[i] < now_) ss << "(owed " << (now_ - synced[i]) << ")";
    }
  };
  dump_cursors("sm", sm_wake_, sm_synced_);
  dump_cursors("partition", part_wake_, part_synced_);
  ss << "\n    flight recorder: "
     << (recorder_.enabled()
             ? std::to_string(recorder_.size()) + "/" +
                   std::to_string(recorder_.capacity()) + " events held, " +
                   std::to_string(recorder_.total_recorded()) +
                   " recorded in total"
             : std::string("disabled"));
  return ss.str();
}

template <typename Sink>
void Gpu::write_state(Sink& s) const {
  // fast_forwarded_ is deliberately absent: it counts cycles the idle-cycle
  // fast-forward *skipped*, which is execution-strategy bookkeeping, not
  // simulated state — including it would make the fast-forward-on and -off
  // hashes differ even though every simulated observable is identical.
  // The activity-engine wakes/masks/cursors are likewise execution
  // strategy, not state; settling owed accruals here makes the serialized
  // counters identical to what the per-cycle walk would have written.
  sync_for_observation();
  s.put_tag("GPU ");
  s.put_u64(now_);
  s.put_u64(last_interval_end_);
  s.put_bool(migration_pending_);
  s.put_u64(desired_partition_.size());
  for (AppId a : desired_partition_) s.put_i32(a);
  instructions_.write_state(s);
  sm_cycles_.write_state(s);
  taps_.write_state(s);
  for (const auto& rt : runtimes_) rt->write_state(s);
  for (const auto& sm : sms_) {
    s.put_i32(sm->app());
    sm->write_state(s);
  }
  for (const auto& part : partitions_) part->write_state(s);
  req_net_.write_state(s);
  resp_net_.write_state(s);
  // Fault-injector progress (counters + RNG).  The *schedule* is runtime
  // configuration and is covered by the snapshot fingerprint through the
  // harness context; serializing the counters here makes armed nth-event
  // faults fire at the same event after a restore.
  s.put_bool(injector_ != nullptr);
  if (injector_ != nullptr) injector_->write_state(s);
  // The flight-recorder ring is simulated state: its taps fire on simulated
  // transitions only, so the ring contents are deterministic and must
  // survive snapshot/restore for --triage replays to hash-match.
  recorder_.write_state(s);
}

template void Gpu::write_state<StateWriter>(StateWriter&) const;
template void Gpu::write_state<Hasher>(Hasher&) const;

void Gpu::load(StateReader& r) {
  r.expect_tag("GPU ");
  now_ = r.get_u64();
  last_interval_end_ = r.get_u64();
  migration_pending_ = r.get_bool();
  const u64 parts = r.get_u64();
  SIM_CHECK(parts == desired_partition_.size(),
            SimError(SimErrorKind::kSnapshot, "gpu",
                     "snapshot partition-table size does not match this GPU")
                .detail("snapshot_sms", parts)
                .detail("gpu_sms", desired_partition_.size()));
  for (AppId& a : desired_partition_) a = r.get_i32();
  instructions_.load(r);
  sm_cycles_.load(r);
  taps_.load(r);
  for (auto& rt : runtimes_) rt->load(r);
  for (auto& sm : sms_) {
    const AppId app = r.get_i32();
    SIM_CHECK(app == kInvalidApp || (app >= 0 && app < num_apps()),
              SimError(SimErrorKind::kSnapshot, "gpu",
                       "snapshot SM owner is not a launched application")
                  .detail("sm", sm->id())
                  .detail("app", app));
    BlockSource* source = app == kInvalidApp ? nullptr : runtimes_[app].get();
    sm->load(r, source);
  }
  for (auto& part : partitions_) part->load(r);
  req_net_.load(r);
  resp_net_.load(r);
  const bool had_injector = r.get_bool();
  SIM_CHECK(had_injector == (injector_ != nullptr),
            SimError(SimErrorKind::kSnapshot, "gpu",
                     "snapshot fault-injector attachment does not match this "
                     "simulation (attach the same FaultSchedule before "
                     "restoring)")
                .detail("snapshot_has_injector", had_injector)
                .detail("gpu_has_injector", injector_ != nullptr));
  if (injector_ != nullptr) injector_->load(r);
  recorder_.load(r);
  // Restored state is exactly what the per-cycle walk would hold at the
  // restored clock: nothing is owed, and wakes/masks must be rebuilt.
  for (Cycle& c : sm_synced_) c = now_;
  for (Cycle& c : part_synced_) c = now_;
  engine_dirty_ = true;
}

u64 Gpu::state_hash() const {
  Hasher h;
  write_state(h);
  return h.digest();
}

std::vector<std::pair<std::string, u64>> Gpu::component_hashes() const {
  sync_for_observation();
  std::vector<std::pair<std::string, u64>> out;
  {
    Hasher h;
    h.put_u64(now_);
    h.put_u64(last_interval_end_);
    h.put_bool(migration_pending_);
    for (AppId a : desired_partition_) h.put_i32(a);
    instructions_.write_state(h);
    sm_cycles_.write_state(h);
    taps_.write_state(h);
    out.emplace_back("gpu.core", h.digest());
  }
  for (int a = 0; a < num_apps(); ++a) {
    out.emplace_back("app_runtime[" + std::to_string(a) + "]",
                     state_hash_of(*runtimes_[a]));
  }
  for (int i = 0; i < num_sms(); ++i) {
    Hasher h;
    h.put_i32(sms_[i]->app());
    sms_[i]->write_state(h);
    out.emplace_back("sm[" + std::to_string(i) + "]", h.digest());
  }
  for (int p = 0; p < num_partitions(); ++p) {
    out.emplace_back("partition[" + std::to_string(p) + "]",
                     state_hash_of(*partitions_[p]));
  }
  out.emplace_back("req_net", state_hash_of(req_net_));
  out.emplace_back("resp_net", state_hash_of(resp_net_));
  if (injector_ != nullptr) {
    out.emplace_back("fault_injector", state_hash_of(*injector_));
  }
  out.emplace_back("flight_recorder", state_hash_of(recorder_));
  return out;
}

}  // namespace gpusim
