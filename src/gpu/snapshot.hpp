// SimState snapshot files: versioned, self-validating, atomically published.
//
// File layout (all fields little-endian, written via StateWriter):
//
//   magic        8 bytes  "GPUSIMSS"
//   version      u32      kSnapshotVersion
//   endianness   u32      0x01020304 (byte order probe)
//   fingerprint  u64      hash of config + workload + harness context
//   build        u64      build_fingerprint() of the writer (informational)
//   cycle        u64      gpu.now() at save time
//   state_hash   u64      Simulation::state_hash() at save time
//   payload_size u64
//   payload_hash u64      digest over the raw payload bytes
//   payload      bytes    Simulation::snapshot()
//
// Forward-compat policy: the version is bumped on ANY payload layout change
// and old versions are rejected — a cycle-accurate snapshot is only
// meaningful against the exact component layout that wrote it, so there is
// deliberately no cross-version migration.  The fingerprint rejects a
// restore into a different config/workload/harness; payload_hash rejects
// torn or corrupted files; after loading, the recomputed state hash is
// checked against the stored one, which catches save/load asymmetry bugs in
// any component.  Files are published via write-to-temp + rename, so a
// crash mid-write can never destroy the previous good snapshot.
#pragma once

#include <string>

#include "common/types.hpp"
#include "gpu/simulator.hpp"

namespace gpusim {

// Version 2: recovery-tap counters, SM retry/dup-expect maps, estimator
// sanitization counters, and fault-injector progress joined the state walk.
// Version 3: flight-recorder ring joined the state walk; header gained the
// writer's build fingerprint (informational — mismatch is surfaced by
// --triage, not rejected, since the config/workload fingerprint already
// gates restorability).
// Version 4: the TelemetryHub observer ("TELE" section — per-interval
// records, drained flight-recorder events, drop counters) joined the
// observer walk of every assembled co-run, so kill+resume reproduces
// byte-identical telemetry files.
inline constexpr u32 kSnapshotVersion = 4;

struct SnapshotHeader {
  u32 version = 0;
  u64 fingerprint = 0;
  u64 build = 0;
  Cycle cycle = 0;
  u64 state_hash = 0;
  u64 payload_size = 0;
  u64 payload_hash = 0;
};

/// Fingerprint of everything a snapshot is only valid against: the full
/// GpuConfig plus, per application, the kernel profile, seed and restart
/// flag.  `harness_context` lets the caller mix in its own setup (attached
/// models, policy, planned run length) so a snapshot cannot be restored
/// into a differently assembled experiment.
u64 simulation_fingerprint(const Simulation& sim, u64 harness_context = 0);

/// Serializes `sim` and atomically publishes it at `path`.
/// Throws SimError(kSnapshot) on I/O failure.
void write_snapshot_file(const std::string& path, const Simulation& sim,
                         u64 fingerprint);

/// Parses and validates only the header (magic/version/endianness).
SnapshotHeader read_snapshot_header(const std::string& path);

/// Restores `sim` from `path`, validating magic, version, endianness,
/// fingerprint, payload integrity, and — after loading — that the
/// recomputed state hash matches the stored one.  Returns the header.
SnapshotHeader restore_snapshot_file(const std::string& path, Simulation& sim,
                                     u64 fingerprint);

}  // namespace gpusim
