#include "gpu/snapshot.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/build_info.hpp"
#include "common/sim_error.hpp"
#include "common/simstate.hpp"

namespace gpusim {

namespace {

constexpr char kMagic[8] = {'G', 'P', 'U', 'S', 'I', 'M', 'S', 'S'};
constexpr u32 kEndianProbe = 0x01020304;

u64 hash_bytes(const u8* data, std::size_t size) {
  Hasher h;
  h.put_u64(size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    u64 word = 0;
    for (int b = 0; b < 8; ++b) word |= static_cast<u64>(data[i + b]) << (8 * b);
    h.put_u64(word);
  }
  for (; i < size; ++i) h.put_u8(data[i]);
  return h.digest();
}

SimError io_error(const std::string& path, const char* what) {
  return SimError(SimErrorKind::kSnapshot, "gpu.snapshot", what)
      .detail("path", path);
}

}  // namespace

u64 simulation_fingerprint(const Simulation& sim, u64 harness_context) {
  Hasher h;
  h.put_tag("FPRT");
  h.put_u64(harness_context);
  sim.gpu().config().write_fingerprint(h);
  const int num_apps = sim.gpu().num_apps();
  h.put_i32(num_apps);
  for (AppId a = 0; a < num_apps; ++a) {
    const AppRuntime& rt = sim.gpu().runtime(a);
    rt.profile().write_fingerprint(h);
    h.put_u64(rt.app_seed());
    h.put_bool(rt.restart_on_finish());
  }
  return h.digest();
}

void write_snapshot_file(const std::string& path, const Simulation& sim,
                         u64 fingerprint) {
  const std::vector<u8> payload = sim.snapshot();

  StateWriter w;
  for (char c : kMagic) w.put_u8(static_cast<u8>(c));
  w.put_u32(kSnapshotVersion);
  w.put_u32(kEndianProbe);
  w.put_u64(fingerprint);
  w.put_u64(build_fingerprint());
  w.put_u64(sim.gpu().now());
  w.put_u64(sim.state_hash());
  w.put_u64(payload.size());
  w.put_u64(hash_bytes(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) SIM_FAIL(io_error(tmp, "cannot open snapshot temp file"));
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.bytes().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) SIM_FAIL(io_error(tmp, "short write to snapshot temp file"));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    SIM_FAIL(io_error(path, "cannot publish snapshot file")
                 .detail("error", ec.message()));
  }
}

namespace {

/// Reads the whole file and splits header fields; shared by header-only and
/// full restores.
SnapshotHeader parse(const std::string& path, std::vector<u8>& bytes,
                     std::size_t& payload_offset) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) SIM_FAIL(io_error(path, "cannot open snapshot file"));
  const std::streamsize size = in.tellg();
  in.seekg(0);
  bytes.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) SIM_FAIL(io_error(path, "cannot read snapshot file"));

  StateReader r(bytes);
  for (char c : kMagic) {
    if (r.remaining() == 0 || r.get_u8() != static_cast<u8>(c)) {
      SIM_FAIL(io_error(path, "not a gpusim snapshot (bad magic)"));
    }
  }
  SnapshotHeader hdr;
  hdr.version = r.get_u32();
  SIM_CHECK(hdr.version == kSnapshotVersion,
            io_error(path, "unsupported snapshot version")
                .detail("file_version", hdr.version)
                .detail("supported_version", kSnapshotVersion));
  const u32 endian = r.get_u32();
  SIM_CHECK(endian == kEndianProbe,
            io_error(path, "snapshot endianness probe mismatch")
                .detail("probe", endian));
  hdr.fingerprint = r.get_u64();
  hdr.build = r.get_u64();
  hdr.cycle = r.get_u64();
  hdr.state_hash = r.get_u64();
  hdr.payload_size = r.get_u64();
  hdr.payload_hash = r.get_u64();
  payload_offset = bytes.size() - r.remaining();
  SIM_CHECK(r.remaining() == hdr.payload_size,
            io_error(path, "snapshot payload size mismatch (truncated file?)")
                .detail("expected", hdr.payload_size)
                .detail("actual", r.remaining()));
  return hdr;
}

}  // namespace

SnapshotHeader read_snapshot_header(const std::string& path) {
  std::vector<u8> bytes;
  std::size_t payload_offset = 0;
  return parse(path, bytes, payload_offset);
}

SnapshotHeader restore_snapshot_file(const std::string& path, Simulation& sim,
                                     u64 fingerprint) {
  std::vector<u8> bytes;
  std::size_t payload_offset = 0;
  const SnapshotHeader hdr = parse(path, bytes, payload_offset);

  SIM_CHECK(hdr.fingerprint == fingerprint,
            io_error(path,
                     "snapshot fingerprint mismatch — different config, "
                     "workload or harness setup")
                .detail("file_fingerprint", hdr.fingerprint)
                .detail("expected_fingerprint", fingerprint));
  const u64 payload_hash =
      hash_bytes(bytes.data() + payload_offset, hdr.payload_size);
  SIM_CHECK(payload_hash == hdr.payload_hash,
            io_error(path, "snapshot payload corrupted (integrity hash "
                           "mismatch)")
                .detail("stored", hdr.payload_hash)
                .detail("computed", payload_hash));

  StateReader r(bytes.data() + payload_offset,
                static_cast<std::size_t>(hdr.payload_size));
  sim.load(r);
  r.require_end();

  const u64 restored_hash = sim.state_hash();
  SIM_CHECK(restored_hash == hdr.state_hash,
            io_error(path,
                     "restored state hash differs from the hash recorded at "
                     "save time (save/load asymmetry)")
                .detail("stored", hdr.state_hash)
                .detail("restored", restored_hash)
                .cycle(sim.gpu().now()));
  return hdr;
}

}  // namespace gpusim
