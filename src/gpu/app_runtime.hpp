// Per-application launch state: the grid of thread blocks an application's
// kernel supplies to its assigned SMs.
//
// Following the paper's methodology (Section V), a finished kernel is
// restarted so concurrent execution continues for the whole measurement
// window; the instruction counters keep accumulating across restarts.
#pragma once

#include <optional>

#include "common/simstate.hpp"
#include "common/types.hpp"
#include "kernels/kernel_profile.hpp"
#include "sm/block_source.hpp"

namespace gpusim {

class AppRuntime final : public BlockSource {
 public:
  AppRuntime(KernelProfile profile, AppId app, u64 seed,
             bool restart_on_finish = true)
      : profile_(std::move(profile)),
        app_(app),
        seed_(seed),
        restart_on_finish_(restart_on_finish) {}

  std::optional<u64> try_alloc_block() override {
    if (next_block_ >= static_cast<u64>(profile_.blocks_total)) {
      if (!restart_on_finish_) return std::nullopt;
      ++kernel_restarts_;
      next_block_ = 0;
    }
    return next_block_++;
  }

  void on_block_complete(u64 /*block_index*/) override { ++blocks_completed_; }

  const KernelProfile& profile() const override { return profile_; }
  AppId app() const override { return app_; }
  u64 app_seed() const override { return seed_; }
  bool restart_on_finish() const { return restart_on_finish_; }

  u64 blocks_completed() const { return blocks_completed_; }
  u64 kernel_restarts() const { return kernel_restarts_; }

  // SimState: profile/app/seed are construction-time launch parameters.
  template <typename Sink>
  void write_state(Sink& s) const {
    s.put_tag("APPR");
    s.put_u64(next_block_);
    s.put_u64(blocks_completed_);
    s.put_u64(kernel_restarts_);
  }
  void save(StateWriter& w) const { write_state(w); }
  void hash(Hasher& h) const { write_state(h); }
  void load(StateReader& r) {
    r.expect_tag("APPR");
    next_block_ = r.get_u64();
    blocks_completed_ = r.get_u64();
    kernel_restarts_ = r.get_u64();
  }

  /// TB_sum of Eq. 24: unfinished thread blocks.  Unbounded under
  /// restart-on-finish, so report the full grid size in that case.
  u64 remaining_blocks() const {
    if (restart_on_finish_) return static_cast<u64>(profile_.blocks_total);
    const u64 total = static_cast<u64>(profile_.blocks_total);
    return blocks_completed_ >= total ? 0 : total - blocks_completed_;
  }

 private:
  KernelProfile profile_;
  AppId app_;
  u64 seed_;
  bool restart_on_finish_;
  u64 next_block_ = 0;
  u64 blocks_completed_ = 0;
  u64 kernel_restarts_ = 0;
};

}  // namespace gpusim
