// Per-interval counter sample handed to slowdown estimators.
//
// At the end of every estimation interval (paper Section 4.4: fixed 50K
// cycles) the GPU aggregates the interval deltas of all hardware counters
// into this plain-data snapshot.  Estimation models consume only this
// struct — exactly the information the paper's Table I counters expose —
// so they cannot "cheat" by peeking at simulator internals.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace gpusim {

struct AppIntervalData {
  AppId app = kInvalidApp;
  // --- SM-side (Table I "other hardware counters") ---
  double alpha = 0.0;     ///< fraction of SM time stalled on memory
  u64 sm_cycles = 0;      ///< Σ over assigned SMs of interval cycles
  int num_sms = 0;        ///< SMs assigned at interval end
  u64 instructions = 0;   ///< warp instructions issued this interval
  int active_blocks = 0;  ///< TB_shared (Eq. 24), sampled at interval end
  u64 remaining_blocks = 0;  ///< TB_sum (Eq. 24)
  // --- memory-side, summed across all partitions ---
  u64 requests_served = 0;    ///< Request_i
  u64 bank_service_time = 0;  ///< Time_request_i
  u64 erb_miss = 0;           ///< ERBMiss_i
  u64 ellc_miss_scaled = 0;   ///< ELLCMiss_i (Eq. 13, already scaled)
  u64 l2_accesses = 0;
  u64 l2_hits = 0;
  double blp = 0.0;         ///< BLP_i (Eq. 9, time-averaged)
  double blp_access = 0.0;  ///< BLPAccess_i
  // --- MISE/ASM priority-epoch measurements ---
  u64 priority_served = 0;   ///< requests served while holding priority
  u64 priority_cycles = 0;   ///< cycles this app held priority (Σ partitions)
  u64 nonpriority_served = 0;  ///< requests served while nobody had priority
  u64 l2_accesses_priority = 0;
  u64 l2_accesses_nonpriority = 0;
};

struct IntervalSample {
  Cycle start = 0;
  Cycle length = 0;
  int total_sms = 0;
  int count_apps = 0;  ///< CountApp in Eq. 21
  u64 total_requests_served = 0;
  u64 nonpriority_cycles = 0;  ///< cycles with no priority app (Σ partitions)
  std::vector<AppIntervalData> apps;
};

}  // namespace gpusim
