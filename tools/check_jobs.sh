#!/usr/bin/env bash
# JobManager gate: prove the long-campaign resilience contract end-to-end
# on the real CLI binary:
#
#   1. a mixed batch (runs + sweep + chaos) completes with a manifest, and
#      the final report is byte-identical for any worker count;
#   2. SIGTERM mid-batch drains gracefully (exit 6), and --jobs-resume
#      finishes the remainder to a report byte-identical to a batch that
#      was never interrupted;
#   3. deadline, budget and quarantine failures map to their documented
#      exit codes (7, 8, 9), and a quarantined config's stored reproducer
#      replays through the CLI to the same failure.
#
#   tools/check_jobs.sh [build-dir]     (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cat > "$TMP/batch.jobs" <<'EOF'
# mixed batch: two runs, a random sweep slice, a small chaos campaign
run apps=SD,SA cycles=60000
run apps=VA,CT policy=dase-fair cycles=60000
sweep which=random:3 cycles=30000
chaos schedules=3 seed=7 cycles=20000
run apps=AA,SD cycles=60000
EOF

echo "== batch runs to completion, serial"
"$CLI" --job-file "$TMP/batch.jobs" --manifest "$TMP/ref.jsonl" \
       --jobs 1 --out "$TMP/ref.json" > /dev/null

echo "== same batch, 4 workers: report must be byte-identical"
"$CLI" --job-file "$TMP/batch.jobs" --manifest "$TMP/par.jsonl" \
       --jobs 4 --out "$TMP/par.json" > /dev/null
cmp "$TMP/ref.json" "$TMP/par.json"

echo "== SIGTERM mid-batch drains with exit 6"
"$CLI" --job-file "$TMP/batch.jobs" --manifest "$TMP/killed.jsonl" \
       --jobs 2 --out "$TMP/killed.json" > /dev/null 2>&1 &
CLI_PID=$!
# Signal as soon as the first result lands so jobs are mid-flight.
SIGNALLED=0
for _ in $(seq 1 600); do
  if grep -q '"status":"' "$TMP/killed.jsonl" 2>/dev/null; then
    kill -TERM "$CLI_PID"
    SIGNALLED=1
    break
  fi
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.1
done
RC=0
wait "$CLI_PID" || RC=$?
if [[ "$SIGNALLED" == "1" && "$RC" != "6" ]]; then
  echo "error: interrupted batch exited $RC, expected 6" >&2
  exit 1
fi

echo "== --jobs-resume finishes the batch byte-identically"
if [[ "$SIGNALLED" == "1" ]]; then
  "$CLI" --jobs-resume "$TMP/killed.jsonl" --jobs 3 \
         --out "$TMP/resumed.json" > /dev/null
  cmp "$TMP/ref.json" "$TMP/resumed.json"
else
  echo "   (batch won the race against the signal — resume replays verbatim)"
  "$CLI" --jobs-resume "$TMP/killed.jsonl" --out "$TMP/resumed.json" > /dev/null
  cmp "$TMP/ref.json" "$TMP/resumed.json"
fi

echo "== a blown wall-clock deadline exits 7"
RC=0
"$CLI" --apps SD,SA --cycles 5000000 --deadline-ms 1 \
       > /dev/null 2>&1 || RC=$?
[[ "$RC" == "7" ]] || { echo "error: deadline exited $RC, expected 7" >&2; exit 1; }

echo "== a blown cycle budget exits 8"
RC=0
"$CLI" --apps SD,SA --cycles 50000 --cycle-budget 10000 \
       > /dev/null 2>&1 || RC=$?
[[ "$RC" == "8" ]] || { echo "error: cycle budget exited $RC, expected 8" >&2; exit 1; }

echo "== a repeatedly failing config is quarantined, batch exits 9"
cat > "$TMP/quarantine.jobs" <<'EOF'
run apps=SD,SA cycles=20000 watchdog=2000 faults=stall:part=0,from=10 max-retries=0
run apps=SD,SA cycles=20000 watchdog=2000 faults=stall:part=0,from=10 max-retries=0
run apps=SD,SA cycles=20000 watchdog=2000 faults=stall:part=0,from=10 max-retries=0
run apps=VA,CT cycles=20000
EOF
RC=0
"$CLI" --job-file "$TMP/quarantine.jobs" --manifest "$TMP/quar.jsonl" \
       --quarantine-after 2 --jobs 1 --out "$TMP/quar.json" \
       > /dev/null 2>&1 || RC=$?
[[ "$RC" == "9" ]] || { echo "error: quarantine batch exited $RC, expected 9" >&2; exit 1; }

echo "== the quarantined config's reproducer replays to the same failure"
python3 - "$TMP/quar.json" <<'EOF' > "$TMP/replay.txt"
import json, sys
report = json.load(open(sys.argv[1]))["job_batch"]
quarantined = [j for j in report["jobs"] if j["status"] == "quarantined"]
assert quarantined, "batch had no quarantined job"
assert report["quarantined"] == len(quarantined)
print(quarantined[0]["reproducer"])
EOF
# Fault replays go through the chaos-replay path, which classifies the
# outcome on stdout and exits 0; a failure is either a non-zero exit or a
# failing outcome class (same convention as check_chaos.sh).
REPLAY="$(cat "$TMP/replay.txt")"
RC=0
eval "\"$CLI\" ${REPLAY#gpusim_cli}" > "$TMP/replayed.txt" 2>&1 || RC=$?
if [[ "$RC" == "0" ]] &&
   ! grep -Eq 'outcome (guard-caught|wrong-result|hang)' "$TMP/replayed.txt"; then
  echo "error: quarantine reproducer replayed clean: $REPLAY" >&2
  cat "$TMP/replayed.txt" >&2
  exit 1
fi
echo "   replayed (exit $RC): $REPLAY"

echo "jobs check: OK"
