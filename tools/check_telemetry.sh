#!/usr/bin/env bash
# Telemetry gate: prove the TelemetryHub's four contracts end to end.
#
#   1. Schema: a DASE-Fair co-run with --telemetry-out produces JSONL whose
#      header carries the schema id and whose body has exactly one record
#      per estimation interval, each with per-app estimated + actual
#      slowdowns and the Eq. 26 error (validated with python3's json
#      module — no third-party deps).
#   2. Trace: --trace-out produces well-formed Chrome trace-event JSON
#      (Perfetto-loadable): a traceEvents array with per-app epoch spans,
#      at least one migration drain span for a repartitioning policy, and
#      counter tracks.
#   3. Transparency: enabling every telemetry flag changes neither the
#      printed result (stdout byte-identity) nor the simulated state
#      (--audit-determinism stays green with flags set), and a kill+resume
#      run rewrites byte-identical telemetry files (check_determinism.sh
#      covers the kill half; here we assert flag on/off identity).
#   4. Overhead: the hub's attached-vs-absent throughput ratio holds the
#      <=2% floor (a small relative-only bench run).
#
#   tools/check_telemetry.sh [build-dir]     (default: build)
#
# Environment:
#   GPUSIM_TELEMETRY_CYCLES   co-run length (default 300000; must span
#                             several 50K-cycle estimation intervals)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CYCLES="${GPUSIM_TELEMETRY_CYCLES:-300000}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== telemetry files from a 16-SM SD+SA DASE-Fair co-run"
"$CLI" --apps SD,SA --policy dase-fair --cycles "$CYCLES" --alone cached \
       --telemetry-out "$TMP/run.telemetry.jsonl" \
       --trace-out "$TMP/run.trace.json" \
       --metrics-out "$TMP/run.metrics.prom" > "$TMP/on.txt"

echo "== JSONL schema: one record per interval, estimates + actuals + error"
python3 - "$TMP/run.telemetry.jsonl" "$CYCLES" <<'EOF'
import json, sys
path, cycles = sys.argv[1], int(sys.argv[2])
lines = [json.loads(l) for l in open(path)]
header, records = lines[0], lines[1:]
assert header["schema"] == "gpusim-telemetry-v1", header
assert header["apps"] == ["SD", "SA"], header
assert header["records"] == len(records), (header["records"], len(records))
expected = cycles // header["interval"]
assert len(records) == expected, (len(records), expected)
for i, r in enumerate(records):
    assert r["epoch"] == i, r
    assert r["length"] == header["interval"], r
    assert len(r["apps"]) == 2, r
    for app in r["apps"]:
        assert app["sms"] >= 1, app
        assert isinstance(app["estimates"]["DASE"], (int, float)), app
        assert isinstance(app["actual_slowdown"], (int, float)), app
        assert isinstance(app["error"]["DASE"], (int, float)), app
    assert 0.0 <= r["dram_bw_util"] <= 1.0, r
print(f"   {len(records)} records, schema OK")
EOF

echo "== trace: well-formed, epoch spans, migration drain, counters"
python3 - "$TMP/run.trace.json" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
ev = t["traceEvents"]
assert all({"ph", "name", "pid"} <= set(e) for e in ev), "malformed event"
spans = [e for e in ev if e["ph"] == "X"]
assert any(e["name"].startswith("epoch") for e in spans), "no epoch spans"
assert any(e["name"].startswith("migration drain") for e in spans), \
    "no migration drain span in a repartitioning run"
assert any(e["ph"] == "C" for e in ev), "no counter tracks"
assert any(e["ph"] == "M" for e in ev), "no thread-name metadata"
print(f"   {len(ev)} events, {len(spans)} spans, trace OK")
EOF

echo "== metrics: Prometheus text format shape"
python3 - "$TMP/run.metrics.prom" <<'EOF'
import sys
typed = set()
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if line.startswith("# TYPE "):
        family = line.split()[2]
        assert family not in typed, f"duplicate TYPE for {family}"
        typed.add(family)
    elif line and not line.startswith("#"):
        name = line.split("{")[0].split(" ")[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
        assert base in typed, f"sample {name} has no TYPE"
assert "gpusim_intervals_total" in typed
assert "gpusim_estimation_error" in typed
print(f"   {len(typed)} metric families, format OK")
EOF

echo "== transparency: printed result identical with telemetry off"
"$CLI" --apps SD,SA --policy dase-fair --cycles "$CYCLES" --alone cached \
       > "$TMP/off.txt"
cmp "$TMP/on.txt" "$TMP/off.txt"

echo "== transparency: determinism audit green with telemetry flags set"
"$CLI" --apps SD,SA --audit-determinism --cycles 100000 \
       --telemetry-out "$TMP/audit.jsonl" --trace-out "$TMP/audit.trace"

echo "== batch form: sweep writes per-label files under the directory"
"$CLI" --sweep random:1 --cycles 60000 --telemetry-out "$TMP/teldir" \
       --out "$TMP/sweep.json" > /dev/null
count=$(find "$TMP/teldir" -name '*.telemetry.jsonl' | wc -l)
if [[ "$count" -lt 1 ]]; then
  echo "FAIL: sweep wrote no per-label telemetry files" >&2
  exit 1
fi
echo "   $count per-pair series file(s)"

echo "== overhead: hub attached-vs-absent ratio holds the 0.98 floor"
GPUSIM_PERF_RELATIVE_ONLY=1 BENCH_CYCLES=150000 BENCH_SWEEP_PAIRS=1 \
  BENCH_SWEEP_CYCLES=20000 tools/check_perf.sh "$BUILD_DIR" \
  | grep -E "telemetry_overhead_ratio|perf check"

echo "telemetry check: OK"
