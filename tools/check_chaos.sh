#!/usr/bin/env bash
# Chaos gate: run a bounded fault-injection campaign through the CLI and
# prove the three ChaosLab properties end-to-end on the real binary:
#
#   1. every job classifies into one of the four outcome classes (the
#      report's outcome counts sum to the campaign size);
#   2. the campaign report is byte-identical for any worker count;
#   3. a failing job's minimized reproducer replays through
#      --fault-schedule to a failure (non-zero or watchdog/typed-error
#      exit), and recovery visibly changes the outcome of a canonical
#      dropped-response fault.
#
#   tools/check_chaos.sh [build-dir]     (default: build)
#
# Environment:
#   GPUSIM_CHAOS_SCHEDULES   campaign size (default 12)
#   GPUSIM_CHAOS_CYCLES      cycle budget per job (default 20000)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SCHEDULES="${GPUSIM_CHAOS_SCHEDULES:-12}"
CYCLES="${GPUSIM_CHAOS_CYCLES:-20000}"
CLI="$BUILD_DIR/tools/gpusim_cli"

if [[ ! -x "$CLI" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target gpusim_cli
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== chaos campaign ($SCHEDULES schedules, $CYCLES cycles, serial)"
"$CLI" --chaos "$SCHEDULES" --chaos-seed 7 --cycles "$CYCLES" \
       --jobs 1 --out "$TMP/serial.json"

echo "== same campaign, 4 workers: report must be byte-identical"
"$CLI" --chaos "$SCHEDULES" --chaos-seed 7 --cycles "$CYCLES" \
       --jobs 4 --out "$TMP/parallel.json" > /dev/null
cmp "$TMP/serial.json" "$TMP/parallel.json"

echo "== outcome counts must sum to the campaign size"
python3 - "$TMP/serial.json" "$SCHEDULES" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))["chaos_campaign"]
total = sum(report["outcomes"].values())
assert set(report["outcomes"]) == {"recovered", "guard-caught",
                                   "wrong-result", "hang"}, report["outcomes"]
assert total == int(sys.argv[2]), (total, sys.argv[2])
assert len(report["jobs"]) == int(sys.argv[2])
for job in report["jobs"]:
    assert job["detail"], job
    assert job["replay"], job
print(f"   {report['outcomes']}")
EOF

echo "== recovery flips the canonical dropped-response outcome"
# Recovery on: the reissue path absorbs the drop and the run completes.
"$CLI" --apps SD,SA --cycles 100000 \
       --fault-schedule 'drop-resp:nth=200' | grep -q 'outcome recovered'
# Recovery off: the conservation audit must catch the leak instead.
"$CLI" --apps SD,SA --cycles 100000 --no-recovery \
       --fault-schedule 'drop-resp:nth=200' | grep -q 'outcome guard-caught'

echo "== a minimized reproducer from the report replays to a failure"
python3 - "$TMP/serial.json" <<'EOF' > "$TMP/replay.txt"
import json, sys
report = json.load(open(sys.argv[1]))["chaos_campaign"]
failing = [j for j in report["jobs"] if j["outcome"] != "recovered"]
print(failing[0]["replay"] if failing else "")
EOF
REPLAY="$(cat "$TMP/replay.txt")"
if [[ -n "$REPLAY" ]]; then
  # The stored command starts with "gpusim_cli"; run it via the built CLI.
  eval "\"$CLI\" ${REPLAY#gpusim_cli}" > "$TMP/replayed.txt" 2>&1
  if ! grep -Eq 'outcome (guard-caught|wrong-result|hang)' "$TMP/replayed.txt"; then
    echo "error: minimized reproducer did not replay to a failure" >&2
    cat "$TMP/replayed.txt" >&2
    exit 1
  fi
  echo "   replayed: $REPLAY"
else
  echo "   (campaign had no failing jobs at this size — skipping replay)"
fi

echo "chaos check: OK"
