#!/usr/bin/env bash
# The one merge gate: tier-1 build + full test suite, then every
# specialised checker — ASan/UBSan, TSan over the concurrency-heavy
# tests, the state-hash determinism audit, a bounded chaos campaign, the
# JobManager kill/resume gate, the policy-governor safety gate, and the
# performance-regression gate.
# CI invokes exactly this script; run it locally before pushing anything
# that touches simulator, harness or serialization code.
#
# Every step runs under a wall-clock timeout so a hung checker fails the
# gate instead of wedging it (exit 124 = the step timed out).
#
#   tools/check_all.sh [--skip-perf]
#
# Environment:
#   GPUSIM_JOBS           parallel build/test jobs (default: nproc)
#   GPUSIM_STEP_TIMEOUT   per-step timeout in seconds (default: 1200)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${GPUSIM_JOBS:-$(nproc)}"
STEP_TIMEOUT="${GPUSIM_STEP_TIMEOUT:-1200}"
SKIP_PERF=0
if [[ "${1:-}" == "--skip-perf" ]]; then
  SKIP_PERF=1
fi

step() {
  local title="$1"
  shift
  echo "===== $title ====="
  local rc=0
  timeout --foreground "$STEP_TIMEOUT" "$@" || rc=$?
  if [[ "$rc" == "124" ]]; then
    echo "check_all: step '$title' timed out after ${STEP_TIMEOUT}s" >&2
  fi
  return "$rc"
}

step "[1/10] tier-1: configure + build" bash -c \
  "cmake -B build -S . && cmake --build build -j '$JOBS'"
step "[1/10] tier-1: ctest" ctest --test-dir build -j "$JOBS" --output-on-failure

step "[2/10] determinism audit" tools/check_determinism.sh build

step "[3/10] chaos campaign" tools/check_chaos.sh build

step "[4/10] job batches: kill, resume, exit codes" tools/check_jobs.sh build

step "[5/10] crash forensics: bundle + triage" tools/check_triage.sh build

step "[6/10] policy governor: watchdog, breakers, transparency" tools/check_governor.sh build

step "[7/10] ASan + UBSan" tools/check_sanitize.sh

step "[8/10] TSan (worker pool, queue, job manager)" tools/check_tsan.sh

step "[9/10] telemetry: schema, trace, transparency, overhead" tools/check_telemetry.sh build

if [[ "$SKIP_PERF" == "1" ]]; then
  echo "===== [10/10] perf gate: SKIPPED ====="
else
  step "[10/10] perf gate" tools/check_perf.sh build
fi

echo "check_all: OK"
